//===- bench/bench_ablation_epochhist.cpp - Access-history ablation ---------=/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation A4: FastTrack's epoch optimization applied to the sampling
/// engines' access histories (the paper notes it is orthogonal to its
/// contributions, Section 2.1). Compares SO with Djit-style vector-clock
/// histories (Algorithm 2 as printed) against SO with epoch histories:
/// full-clock operations spent on accesses, at several sampling rates.
///
/// Expected shape: the gap grows with the sampling rate (access-side work
/// is O(|S| T) with clock histories, amortized O(|S|) with epochs), while
/// race *locations* are identical.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace sampletrack;
using namespace stbench;

int main(int argc, char **argv) {
  Options O = Options::parse(argc, argv);
  std::printf(
      "== Ablation: vector-clock vs epoch access histories (SO) ==\n\n");

  const double Rates[] = {0.003, 0.03, 0.10, 1.0};
  const char *RateNames[] = {"0.3%", "3%", "10%", "100%"};

  Table Out({"benchmark", "rate", "|S|", "clk ops (VC hist)",
             "clk ops (epoch hist)", "racy locs equal"});

  for (const char *Name : {"luindex", "zxing", "sunflow", "xalan",
                           "cassandra"}) {
    Trace Base = generateSuiteTrace(Name, O.Scale, O.Seed);
    for (size_t RI = 0; RI < 4; ++RI) {
      Trace T = Base;
      rapid::markTrace(T, Rates[RI], O.Seed * 71 + RI);

      SamplingOrderedListDetector Vc(T.numThreads(), true,
                                     HistoryKind::VectorClocks);
      SamplingOrderedListDetector Eh(T.numThreads(), true,
                                     HistoryKind::Epochs);
      MarkedSampler S1, S2;
      rapid::run(T, Vc, S1);
      rapid::run(T, Eh, S2);

      Out.addRow({Name, RateNames[RI], std::to_string(T.countMarked()),
                  std::to_string(Vc.metrics().FullClockOps),
                  std::to_string(Eh.metrics().FullClockOps),
                  Vc.racyLocations() == Eh.racyLocations() ? "yes" : "NO"});
    }
  }

  finish(Out, O);
  std::printf("\nepoch histories cut the access-side O(|S| T) term to "
              "amortized O(|S|) without changing racy locations.\n");
  return 0;
}
