//===- bench/bench_fig8_releases_deepcopies.cpp - Fig. 8 reproduction -------=/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 8 (appendix A.1): release-side O(T) work — the fraction of
/// release events at which SU performs a full copy versus the fraction of
/// releases that cost SO a deep copy, for the 3% and 100% engines.
///
/// Expected shape: SO's deep-copy ratio is generally much smaller than
/// SU's processed-release ratio (lazy copies shift and amortize the O(T)
/// cost); even SU-(100%) does not process all releases on traces whose
/// critical sections contain no accesses.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace sampletrack;
using namespace stbench;

int main(int argc, char **argv) {
  Options O = Options::parse(argc, argv);
  std::printf("== Fig 8: releases processed (SU) / deep copies (SO) over "
              "total releases ==\n\n");

  Table Out({"benchmark", "releases", "SU-(3%)", "SO-(3%)", "SU-(100%)",
             "SO-(100%)"});
  // SnapshotPool economics of the SO lanes: deep copies actually paid
  // (all of them CoW breaks under the lazy scheme) and how many were
  // served allocation-free from the pool's free list.
  Table Pool({"benchmark", "cow(3%)", "hit(3%)", "cow(100%)", "hit(100%)"});
  JsonReport Json("fig8", O);

  size_t Count = 0, SoBelowSu = 0;
  uint64_t SoDeep = 0, SoCow = 0, SoHits = 0;

  for (const SuiteEntry &E : suiteEntries()) {
    Trace Base = generateSuiteTrace(E.Name, O.Scale, O.Seed);
    std::vector<std::string> Row = {E.Name};
    std::vector<std::string> PoolRow = {E.Name};
    double Su3 = 0, So3 = 0;
    const std::pair<EngineKind, double> Cfgs[4] = {
        {EngineKind::SamplingU, 0.03},
        {EngineKind::SamplingO, 0.03},
        {EngineKind::SamplingU, 1.0},
        {EngineKind::SamplingO, 1.0},
    };
    for (size_t I = 0; I < 4; ++I) {
      Trace T = Base;
      rapid::markTrace(T, Cfgs[I].second, O.Seed * 13 + 7);
      rapid::RunResult R = runMarked(T, Cfgs[I].first, O.Workers);
      const Metrics &M = R.Stats;
      bool IsSu = Cfgs[I].first == EngineKind::SamplingU;
      Json.addRow(E.Name, IsSu ? "SU" : "SO", Cfgs[I].second, T.size(),
                  R.WallNanos, M);
      // SU's release cost is the full copies it performs; SO's is the deep
      // copies the lazy scheme eventually pays.
      uint64_t Work = IsSu ? M.ReleasesProcessed : M.DeepCopies;
      double Ratio = M.ReleasesTotal ? static_cast<double>(Work) /
                                           static_cast<double>(M.ReleasesTotal)
                                     : 0;
      if (Row.size() == 1)
        Row.push_back(std::to_string(M.ReleasesTotal));
      Row.push_back(Table::fmt(Ratio, 3));
      if (!IsSu) {
        PoolRow.push_back(std::to_string(M.CowBreaks));
        PoolRow.push_back(std::to_string(M.PoolHits));
        SoDeep += M.DeepCopies;
        SoCow += M.CowBreaks;
        SoHits += M.PoolHits;
      }
      if (I == 0)
        Su3 = Ratio;
      if (I == 1)
        So3 = Ratio;
    }
    Out.addRow(Row);
    Pool.addRow(PoolRow);
    ++Count;
    if (So3 <= Su3 + 1e-9)
      ++SoBelowSu;
  }

  finish(Out, O);
  std::printf("\nSO-(3%%) deep-copy ratio <= SU-(3%%) processed ratio on "
              "%zu/%zu traces\n",
              SoBelowSu, Count);
  std::printf("paper shape: deep copies are generally much rarer than SU's "
              "processed releases.\n");

  std::printf("\n== SO copy economics (lazy CoW + SnapshotPool) ==\n\n");
  Pool.print();
  std::printf("\nSO totals: %llu deep copies, all %llu CoW breaks, %llu "
              "served from the pool free list (%.1f%% allocation-free)\n",
              static_cast<unsigned long long>(SoDeep),
              static_cast<unsigned long long>(SoCow),
              static_cast<unsigned long long>(SoHits),
              SoCow ? 100.0 * static_cast<double>(SoHits) /
                          static_cast<double>(SoCow)
                    : 0.0);
  // Self-profile attachment + chrome trace: one profiled SU/SO session
  // over the suite's first trace (separate run; timed rows unperturbed).
  {
    Trace T = generateSuiteTrace(suiteEntries().front().Name, O.Scale,
                                 O.Seed);
    rapid::markTrace(T, 0.03, O.Seed * 13 + 7);
    const EngineKind Kinds[] = {EngineKind::SamplingU, EngineKind::SamplingO};
    std::unique_ptr<prof::Profiler> P;
    api::SessionResult PR =
        runMarkedAllProfiled(T, Kinds, O.Workers, O.Shards, &P);
    Json.attachProfile(PR.Profile);
    if (P)
      writeTraceIfRequested(O, prof::toChromeTrace(*P, "fig8-session"));
  }
  Json.writeIfRequested(O);
  return 0;
}
