//===- bench/bench_ablation_treeclock.cpp - Tree clock ablation -------------=/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation A3 (DESIGN.md / Section 7 related work): tree clocks are the
/// optimal data structure for the *full* happens-before relation, but they
/// cannot soundly prune under the *sampling* timestamp (equal component
/// values no longer identify equal knowledge). The honest comparison is
/// therefore: TC computing full-HB timestamps with pruned joins versus SO
/// computing sampling timestamps with ordered lists — both doing race
/// checks on the same sampled events.
///
/// Expected shape: at low sampling rates, SO does orders of magnitude
/// fewer node/entry visits and deep copies, because the sampling timestamp
/// makes almost all communication redundant; TC must still distinguish
/// every epoch of the full relation.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace sampletrack;
using namespace stbench;

int main(int argc, char **argv) {
  Options O = Options::parse(argc, argv);
  std::printf("== Ablation: tree clock (full HB) vs SO (sampling) ==\n\n");

  const double Rates[] = {0.003, 0.03, 1.0};
  const char *RateNames[] = {"0.3%", "3%", "100%"};

  Table Out({"benchmark", "rate", "TC nodes visited", "SO entries visited",
             "TC deep copies", "SO deep copies", "TC acq skip%",
             "SO acq skip%"});

  // Mutex-structured traces only (the TC ablation engine's release-join
  // fallback is conservative; see TreeClockDetector.h).
  for (const char *Name : {"lusearch", "linkedlist", "derby", "bubblesort",
                           "cassandra"}) {
    Trace Base = generateSuiteTrace(Name, O.Scale, O.Seed);
    for (size_t RI = 0; RI < 3; ++RI) {
      Trace T = Base;
      rapid::markTrace(T, Rates[RI], O.Seed * 61 + RI);
      rapid::RunResult Tc = runMarked(T, EngineKind::TreeClockFull, O.Workers);
      rapid::RunResult So = runMarked(T, EngineKind::SamplingO, O.Workers);
      auto Pct = [](uint64_t N, uint64_t D) {
        return D ? Table::fmt(100.0 * N / D, 1) : std::string("-");
      };
      Out.addRow(
          {Name, RateNames[RI], std::to_string(Tc.Stats.EntriesTraversed),
           std::to_string(So.Stats.EntriesTraversed),
           std::to_string(Tc.Stats.DeepCopies),
           std::to_string(So.Stats.DeepCopies),
           Pct(Tc.Stats.AcquiresSkipped, Tc.Stats.AcquiresTotal),
           Pct(So.Stats.AcquiresSkipped, So.Stats.AcquiresTotal)});
    }
  }

  finish(Out, O);
  std::printf("\npaper claim (Section 7): tree clocks cease to be optimal "
              "for the sampling partial order; the ordered list exploits "
              "the redundancy they cannot.\n");
  return 0;
}
