//===- bench/bench_fig6c_so_traversals.cpp - Fig. 6(c) reproduction ---------=/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 6(c): work done by SO — the average number of ordered-list
/// entries traversed per acquire, per sampling rate.
///
/// Expected shape (Section 6.2.6): in most runs SO traverses six or fewer
/// entries per acquire, far below the thread count and the fixed 256-slot
/// clocks ThreadSanitizer uses.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace sampletrack;
using namespace stbench;

int main(int argc, char **argv) {
  Options O = Options::parse(argc, argv);
  std::printf(
      "== Fig 6(c): ordered-list traversals per acquire under SO ==\n\n");

  const double Rates[] = {0.003, 0.03, 0.10};
  Table Out({"benchmark", "threads", "acquires", "trav/acq 0.3%",
             "trav/acq 3%", "trav/acq 10%"});

  size_t AtMost6[3] = {0, 0, 0};
  size_t Count = 0;

  for (const SuiteEntry &E : suiteEntries()) {
    Trace Base = generateSuiteTrace(E.Name, O.Scale, O.Seed);
    std::vector<std::string> Row = {E.Name,
                                    std::to_string(Base.numThreads())};
    for (size_t RI = 0; RI < 3; ++RI) {
      // On-the-fly Bernoulli sampling in the session; no per-rate trace
      // copy or pre-marking pass needed.
      api::SessionConfig Cfg;
      Cfg.Engines = {EngineKind::SamplingO};
      Cfg.SamplingRate = Rates[RI];
      Cfg.Seed = O.Seed * 29 + RI;
      Cfg.NumWorkers = O.Workers;
      api::SessionResult R = api::AnalysisSession(Cfg).run(Base);
      const Metrics &M = R.Engines.front().Stats;
      if (Row.size() == 2)
        Row.push_back(std::to_string(M.AcquiresTotal));
      double PerAcq = M.AcquiresTotal
                          ? static_cast<double>(M.EntriesTraversed) /
                                static_cast<double>(M.AcquiresTotal)
                          : 0;
      if (PerAcq <= 6.0)
        ++AtMost6[RI];
      Row.push_back(Table::fmt(PerAcq, 2));
    }
    Out.addRow(Row);
    ++Count;
  }

  finish(Out, O);
  std::printf("\nruns with <=6 traversals/acquire: %zu/%zu at 0.3%%, %zu/%zu "
              "at 3%%, %zu/%zu at 10%%\n",
              AtMost6[0], Count, AtMost6[1], Count, AtMost6[2], Count);
  std::printf("paper shape: most runs average six or fewer traversals per "
              "acquire, far below T and the fixed 256-entry clock.\n");
  return 0;
}
