//===- bench/bench_fig6a_racy_locations.cpp - Fig. 6(a) reproduction --------=/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 6(a): number of racy locations exposed by the sampling
/// configurations relative to full detection (FT), under a fixed
/// wall-clock budget per configuration — the paper's stress-test setup,
/// where cheaper configurations process more requests in the same time and
/// therefore keep finding races despite sampling.
///
/// Expected shape (Section 6.2.5): no strong correlation with overhead,
/// but low rates still expose a substantial portion of FT's racy
/// locations.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <thread>

using namespace sampletrack;
using namespace sampletrack::workload;
using namespace stbench;

int main(int argc, char **argv) {
  Options O = Options::parse(argc, argv);
  std::printf("== Fig 6(a): racy locations found relative to FT ==\n\n");

  // Racier variants of a few suite members: more unprotected traffic and a
  // bigger scratch pool so the counts have room to differ.
  std::vector<BenchmarkSpec> Specs;
  for (const char *Name : {"smallbank", "tpcc", "twitter", "ycsb", "seats",
                           "epinions"}) {
    BenchmarkSpec S = *findBenchmark(Name);
    // Racy fast paths: frequent bursts of unprotected traffic over a small
    // pool, so racy locations see heavy reuse (as MySQL's racy code paths
    // do over an hour of stress).
    S.UnprotectedProb = 0.6;
    S.UnprotectedOpsPerTxn = 8;
    S.ScratchCells = 32;
    Specs.push_back(S);
  }

  RunConfig Base;
  Base.NumClients =
      std::max<size_t>(2, std::min<size_t>(4, std::thread::hardware_concurrency()));
  Base.TimeBudgetSec = 0.35 * O.Scale + 0.1;
  Base.Seed = O.Seed;

  // One SessionConfig shapes every runtime in the ladder. TSan v3 uses
  // fixed-size clocks (256 slots; the paper disables slot preemption); we
  // use 64-slot clocks, the paper's concurrently-runnable thread count, so
  // O(T) analysis costs are realistic.
  api::SessionConfig Analysis;
  Analysis.MaxThreads = 64;
  Analysis.Seed = O.Seed;

  struct Cfg {
    const char *Label;
    rt::Mode Mode;
    double Rate;
  };
  const Cfg Configs[] = {
      {"ST0.3%", rt::Mode::ST, 0.003}, {"ST3%", rt::Mode::ST, 0.03},
      {"SU0.3%", rt::Mode::SU, 0.003}, {"SU3%", rt::Mode::SU, 0.03},
      {"SO0.3%", rt::Mode::SO, 0.003}, {"SO3%", rt::Mode::SO, 0.03},
  };

  // The dedup column is the warehouse's economics at a glance: what
  // fraction of FT's race declarations were duplicates of an
  // already-known signature (fleet runs spend almost all declarations on
  // re-sightings — exactly what the triage sink absorbs in O(1)).
  Table Out({"benchmark", "FT locs", "FT dedup%", "ST0.3%", "ST3%",
             "SU0.3%", "SU3%", "SO0.3%", "SO3%"});
  std::vector<double> Sums(6, 0);
  JsonReport Json("fig6a", O);

  auto DedupExtra = [](const RunStats &R) {
    return "\"racyLocations\": " + std::to_string(R.RacyLocations) +
           ", \"distinctRaces\": " + std::to_string(R.DistinctRaces);
  };

  for (const BenchmarkSpec &Spec : Specs) {
    RunConfig C = Base;
    C.Rt = Analysis.runtimeConfig(rt::Mode::FT);
    RunStats Ft = runBenchmark(Spec, C);
    double FtLocs = std::max<double>(1.0, static_cast<double>(Ft.RacyLocations));
    double Dedup =
        Ft.Races ? 100.0 * (1.0 - static_cast<double>(Ft.DistinctRaces) /
                                      static_cast<double>(Ft.Races))
                 : 0.0;
    Json.addRow(Spec.Name, "FT", 1.0, Ft.Stats.Events, Ft.WallNanos,
                Ft.Stats, DedupExtra(Ft));

    std::vector<std::string> Row = {Spec.Name,
                                    std::to_string(Ft.RacyLocations),
                                    Table::fmt(Dedup, 1)};
    for (size_t I = 0; I < 6; ++I) {
      Analysis.SamplingRate = Configs[I].Rate;
      C.Rt = Analysis.runtimeConfig(Configs[I].Mode);
      RunStats R = runBenchmark(Spec, C);
      double Ratio = static_cast<double>(R.RacyLocations) / FtLocs;
      Sums[I] += Ratio;
      Row.push_back(Table::fmt(Ratio, 2));
      Json.addRow(Spec.Name, Configs[I].Label, Configs[I].Rate,
                  R.Stats.Events, R.WallNanos, R.Stats, DedupExtra(R));
    }
    Out.addRow(Row);
  }

  std::vector<std::string> MeanRow = {"mean", "-", "-"};
  for (size_t I = 0; I < 6; ++I)
    MeanRow.push_back(Table::fmt(Sums[I] / Specs.size(), 2));
  Out.addRow(MeanRow);

  finish(Out, O);
  // Self-profile attachment + chrome trace: one profiled online run (first
  // spec, SO-3%) with the runtime's hook spans enabled. A separate run —
  // the timed rows above never pay the profiling branch.
  {
    RunConfig C = Base;
    Analysis.SamplingRate = 0.03;
    C.Rt = Analysis.runtimeConfig(rt::Mode::SO);
    C.Rt.ProfilingEnabled = true;
    std::unique_ptr<rt::Runtime> Rt;
    runBenchmark(Specs.front(), C, &Rt);
    Json.attachProfile(Rt->profileReport());
    writeTraceIfRequested(O, prof::toChromeTrace(*Rt->profiler(), "fig6a-runtime"));
  }
  Json.writeIfRequested(O);
  std::printf("\npaper shape: sampling exposes a substantial fraction of "
              "FT's racy locations under equal time budgets, without a "
              "strong rate/overhead correlation; the dedup column shows "
              "how few distinct signatures those declarations collapse "
              "to.\n");
  return 0;
}
