//===- bench/bench_explore_schedules.cpp - Exploration throughput -----------=/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Throughput of the schedule-exploration pipeline, split into its two
/// costs so regressions are attributable:
///
///  - enumerate: the scheduler alone (walk generation + dedup +
///    materialization), schedules/second;
///  - explore: the full api::runExploration loop — per-schedule sampling,
///    a multi-engine AnalysisSession, the O(N T) exact-HB oracle and the
///    signature cross-check — schedules/second and events/second.
///
/// The oracle dominates by design (it is the per-schedule correctness
/// gate); this bench is what keeps that cost visible as workloads scale.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <algorithm>
#include <chrono>

using namespace sampletrack;
using namespace stbench;

namespace {

uint64_t nowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

} // namespace

int main(int argc, char **argv) {
  Options O = Options::parse(argc, argv);
  std::printf("== explore: schedule enumeration + analysis throughput ==\n\n");

  GenConfig G;
  G.NumThreads = 6;
  G.NumLocks = 6;
  G.NumVars = 128;
  G.NumEvents = static_cast<size_t>(2000 * O.Scale) + 200;
  G.UnprotectedFraction = 0.04;
  G.Seed = O.Seed;
  explore::Workload W = explore::Workload::fromTrace(generateWorkload(G));
  const size_t Budget = static_cast<size_t>(120 * O.Scale) + 8;

  Table Out({"phase", "mode", "schedules", "events", "ms", "sched/s",
             "Mevents/s"});
  JsonReport Json("explore", O);

  for (explore::ExploreMode M :
       {explore::ExploreMode::Random, explore::ExploreMode::Pct}) {
    explore::ExploreConfig EC;
    EC.Mode = M;
    EC.Seed = O.Seed;
    EC.MaxSchedules = Budget;

    // Phase 1: enumeration alone.
    uint64_t T0 = nowNanos();
    explore::Scheduler Sched(W, EC);
    explore::Schedule S;
    uint64_t Emitted = 0, Events = 0;
    while (Sched.next(S)) {
      Trace T = explore::Scheduler::materialize(W, S.Choices);
      ++Emitted;
      Events += T.size();
    }
    uint64_t EnumNanos = nowNanos() - T0;
    double EnumMs = EnumNanos / 1e6;
    Out.addRow({"enumerate", exploreModeName(M), std::to_string(Emitted),
                std::to_string(Events), Table::fmt(EnumMs),
                Table::fmt(Emitted / (EnumNanos / 1e9)),
                Table::fmt(Events / (EnumNanos / 1e3))});
    Metrics None;
    Json.addRow(std::string("enumerate-") + exploreModeName(M), "none", 0,
                Events, EnumNanos, None,
                "\"schedules\": " + std::to_string(Emitted));

    // Phase 2: the full exploration pipeline (session + oracle + gate).
    api::SessionConfig Cfg;
    Cfg.Engines = {EngineKind::Djit, EngineKind::FastTrack,
                   EngineKind::SamplingO};
    Cfg.Sampling = api::SamplerKind::Bernoulli;
    Cfg.SamplingRate = 0.03;
    Cfg.Seed = O.Seed;
    Cfg.NumWorkers = O.Workers;
    T0 = nowNanos();
    explore::ExploreReport R = api::runExploration(Cfg, W, EC);
    uint64_t RunNanos = nowNanos() - T0;
    double RunMs = RunNanos / 1e6;
    if (!R.AllAgreed) {
      std::fprintf(stderr, "FATAL: exploration disagreed with the oracle\n");
      return 1;
    }
    Out.addRow({"explore", exploreModeName(M),
                std::to_string(R.SchedulesRun),
                std::to_string(R.EventsAnalyzed), Table::fmt(RunMs),
                Table::fmt(R.SchedulesRun / (RunNanos / 1e9)),
                Table::fmt(R.EventsAnalyzed / (RunNanos / 1e3))});
    Json.addRow(std::string("explore-") + exploreModeName(M), "Djit+FT+SO",
                Cfg.SamplingRate, R.EventsAnalyzed, RunNanos, None,
                "\"schedules\": " + std::to_string(R.SchedulesRun) +
                    ", \"racySchedules\": " +
                    std::to_string(R.SchedulesWithOracleRaces));
  }

  finish(Out, O);
  // Self-profile attachment + chrome trace: one profiled Random-mode
  // exploration at a reduced budget. A separate run — the timed rows above
  // never pay the profiling branch.
  {
    explore::ExploreConfig EC;
    EC.Mode = explore::ExploreMode::Random;
    EC.Seed = O.Seed;
    EC.MaxSchedules = std::min<size_t>(Budget, 8);
    api::SessionConfig Cfg;
    Cfg.Engines = {EngineKind::Djit, EngineKind::FastTrack,
                   EngineKind::SamplingO};
    Cfg.Sampling = api::SamplerKind::Bernoulli;
    Cfg.SamplingRate = 0.03;
    Cfg.Seed = O.Seed;
    prof::Profiler P;
    api::runExploration(Cfg, W, EC, &P);
    Json.attachProfile(P.report());
    writeTraceIfRequested(O, prof::toChromeTrace(P, "explore"));
  }
  Json.writeIfRequested(O);
  return 0;
}
