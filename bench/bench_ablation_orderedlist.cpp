//===- bench/bench_ablation_orderedlist.cpp - Data structure ablation -------=/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation A1 (DESIGN.md): what does the ordered list itself buy over a
/// plain vector clock guided only by the freshness scalar? SU (Algorithm 3)
/// is exactly SO's skip logic with flat clocks: every non-skipped acquire
/// costs a full T-entry join, and every non-skipped release a full copy.
/// This bench compares the entries examined per processed acquire and the
/// total timestamping work of SU vs SO on the same sample sets.
///
/// Expected shape: SO examines a small constant number of entries per
/// processed acquire (Fig. 6(c)) against SU's T, and its release-side work
/// no longer scales with the number of locks (Lemma 8 vs Lemma 7).
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace sampletrack;
using namespace stbench;

int main(int argc, char **argv) {
  Options O = Options::parse(argc, argv);
  std::printf("== Ablation: ordered list (SO) vs flat clocks (SU) ==\n\n");

  Table Out({"benchmark", "T", "entries/proc-acq SU", "entries/proc-acq SO",
             "work SU", "work SO", "work ratio"});

  double WorkRatioSum = 0;
  size_t Count = 0;

  for (const SuiteEntry &E : suiteEntries()) {
    Trace Base = generateSuiteTrace(E.Name, O.Scale, O.Seed);
    Trace T = Base;
    rapid::markTrace(T, 0.03, O.Seed * 53 + 1);

    // One session, one pass: both engines replay the same Marked bits.
    const EngineKind Kinds[] = {EngineKind::SamplingU, EngineKind::SamplingO};
    api::SessionResult R = runMarkedAll(T, Kinds, O.Workers);
    const api::EngineRun &Su = R.Engines[0];
    const api::EngineRun &So = R.Engines[1];

    // SU's joins always touch all T entries (twice: U and C clocks).
    double SuPer = static_cast<double>(T.numThreads());
    double SoPer =
        So.Stats.AcquiresProcessed
            ? static_cast<double>(So.Stats.EntriesTraversed) /
                  static_cast<double>(So.Stats.AcquiresProcessed)
            : 0;
    // Entry-granular work: every O(T) clock operation costs T entries,
    // plus any explicitly counted per-entry traversals.
    uint64_t SuWork = Su.Stats.EntriesTraversed +
                      Su.Stats.FullClockOps * T.numThreads();
    uint64_t SoWork = So.Stats.EntriesTraversed +
                      So.Stats.FullClockOps * T.numThreads();
    double Ratio = SoWork ? static_cast<double>(SuWork) /
                                static_cast<double>(SoWork)
                          : 0;
    WorkRatioSum += Ratio;
    ++Count;
    Out.addRow({E.Name, std::to_string(T.numThreads()),
                Table::fmt(SuPer, 1), Table::fmt(SoPer, 2),
                std::to_string(SuWork), std::to_string(SoWork),
                Table::fmt(Ratio, 1)});
  }

  finish(Out, O);
  std::printf("\nmean SU/SO entry-level work ratio at 3%%: %.1fx\n",
              WorkRatioSum / Count);
  return 0;
}
