//===- bench/bench_micro_clocks.cpp - Clock primitive microbenches ----------=/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks of the clock primitives underlying the
/// engines: vector-clock join/copy/compare, ordered-list point operations
/// and prefix traversal, deep copies, and tree-clock joins — across the
/// clock sizes that matter (8 to 256 threads, 256 being TSan's fixed clock
/// size).
///
//===----------------------------------------------------------------------===//

#include "sampletrack/support/OrderedList.h"
#include "sampletrack/support/Rng.h"
#include "sampletrack/support/TreeClock.h"
#include "sampletrack/support/VectorClock.h"

#include <benchmark/benchmark.h>

using namespace sampletrack;

namespace {

VectorClock randomClock(size_t N, uint64_t Seed) {
  SplitMix64 Rng(Seed);
  VectorClock C(N);
  for (ThreadId T = 0; T < N; ++T)
    C.set(T, Rng.nextBelow(1000));
  return C;
}

void BM_VectorClockJoin(benchmark::State &State) {
  size_t N = State.range(0);
  VectorClock A = randomClock(N, 1), B = randomClock(N, 2);
  for (auto _ : State) {
    A.joinWith(B);
    benchmark::DoNotOptimize(A);
  }
}
BENCHMARK(BM_VectorClockJoin)->Arg(8)->Arg(64)->Arg(256);

void BM_VectorClockLeq(benchmark::State &State) {
  size_t N = State.range(0);
  VectorClock A = randomClock(N, 1), B = A;
  for (auto _ : State)
    benchmark::DoNotOptimize(A.leq(B));
}
BENCHMARK(BM_VectorClockLeq)->Arg(8)->Arg(64)->Arg(256);

void BM_VectorClockCopy(benchmark::State &State) {
  size_t N = State.range(0);
  VectorClock A = randomClock(N, 1), B(N);
  for (auto _ : State) {
    B.copyFrom(A);
    benchmark::DoNotOptimize(B);
  }
}
BENCHMARK(BM_VectorClockCopy)->Arg(8)->Arg(64)->Arg(256);

void BM_OrderedListSet(benchmark::State &State) {
  size_t N = State.range(0);
  OrderedList O(N);
  SplitMix64 Rng(3);
  ClockValue V = 0;
  for (auto _ : State) {
    O.set(static_cast<ThreadId>(Rng.nextBelow(N)), ++V);
    benchmark::DoNotOptimize(O);
  }
}
BENCHMARK(BM_OrderedListSet)->Arg(8)->Arg(64)->Arg(256);

void BM_OrderedListVisitPrefix(benchmark::State &State) {
  size_t N = 256;
  size_t K = State.range(0);
  OrderedList O(N);
  SplitMix64 Rng(4);
  for (int I = 0; I < 1000; ++I)
    O.set(static_cast<ThreadId>(Rng.nextBelow(N)), I);
  for (auto _ : State) {
    uint64_t Sum = 0;
    O.visitPrefix(K, [&](ThreadId, ClockValue V) { Sum += V; });
    benchmark::DoNotOptimize(Sum);
  }
}
BENCHMARK(BM_OrderedListVisitPrefix)->Arg(1)->Arg(6)->Arg(64)->Arg(256);

void BM_OrderedListDeepCopy(benchmark::State &State) {
  size_t N = State.range(0);
  OrderedList O(N);
  SplitMix64 Rng(5);
  for (int I = 0; I < 100; ++I)
    O.set(static_cast<ThreadId>(Rng.nextBelow(N)), I);
  for (auto _ : State) {
    OrderedList Copy(O);
    benchmark::DoNotOptimize(Copy);
  }
}
BENCHMARK(BM_OrderedListDeepCopy)->Arg(8)->Arg(64)->Arg(256);

void BM_TreeClockJoinFresh(benchmark::State &State) {
  // Join where the source root is ahead by one epoch: the common case in a
  // lock handoff chain.
  size_t N = State.range(0);
  TreeClock A(N, 0), B(N, 1);
  ClockValue V = 1;
  for (auto _ : State) {
    B.setRootTime(++V);
    unsigned Work = A.joinFrom(B);
    benchmark::DoNotOptimize(Work);
  }
}
BENCHMARK(BM_TreeClockJoinFresh)->Arg(8)->Arg(64)->Arg(256);

void BM_TreeClockJoinSubsumed(benchmark::State &State) {
  // The O(1) fast path: nothing new to learn.
  size_t N = State.range(0);
  TreeClock A(N, 0), B(N, 1);
  B.setRootTime(5);
  A.joinFrom(B);
  for (auto _ : State)
    benchmark::DoNotOptimize(A.joinFrom(B));
}
BENCHMARK(BM_TreeClockJoinSubsumed)->Arg(8)->Arg(64)->Arg(256);

} // namespace

BENCHMARK_MAIN();
