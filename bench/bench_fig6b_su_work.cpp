//===- bench/bench_fig6b_su_work.cpp - Fig. 6(b) reproduction ---------------=/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 6(b): work done by SU — of all acquire/release events that
/// occurred, how many triggered an O(T) vector-clock operation, per
/// sampling rate (0.3%, 3%, 10%).
///
/// Expected shape (Section 6.2.6): in most runs SU skips more than 50% of
/// acquires and releases combined; the handled fraction rises with the
/// sampling rate.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace sampletrack;
using namespace stbench;

int main(int argc, char **argv) {
  Options O = Options::parse(argc, argv);
  std::printf("== Fig 6(b): acquires/releases handled by SU vs occurred ==\n\n");

  const double Rates[] = {0.003, 0.03, 0.10};
  Table Out({"benchmark", "acq+rel total", "handled 0.3%", "handled 3%",
             "handled 10%", "ratio 0.3%", "ratio 3%", "ratio 10%"});

  size_t Above50[3] = {0, 0, 0};
  size_t Count = 0;

  for (const SuiteEntry &E : suiteEntries()) {
    Trace Base = generateSuiteTrace(E.Name, O.Scale, O.Seed);
    std::vector<std::string> Row = {E.Name};
    std::vector<std::string> Ratios;
    uint64_t Total = 0;
    for (size_t RI = 0; RI < 3; ++RI) {
      // On-the-fly Bernoulli sampling in the session; no per-rate trace
      // copy or pre-marking pass needed.
      api::SessionConfig Cfg;
      Cfg.Engines = {EngineKind::SamplingU};
      Cfg.SamplingRate = Rates[RI];
      Cfg.Seed = O.Seed * 17 + RI;
      Cfg.NumWorkers = O.Workers;
      api::SessionResult R = api::AnalysisSession(Cfg).run(Base);
      const Metrics &M = R.Engines.front().Stats;
      Total = M.AcquiresTotal + M.ReleasesTotal;
      uint64_t Handled = M.AcquiresProcessed + M.ReleasesProcessed;
      double Ratio = Total ? static_cast<double>(Handled) / Total : 0;
      if (Ratio < 0.5)
        ++Above50[RI];
      if (Row.size() == 1)
        Row.push_back(std::to_string(Total));
      Row.push_back(std::to_string(Handled));
      Ratios.push_back(Table::fmt(Ratio, 3));
    }
    Row.insert(Row.end(), Ratios.begin(), Ratios.end());
    Out.addRow(Row);
    ++Count;
  }

  finish(Out, O);
  std::printf("\nruns with >50%% of acq/rel skipped: %zu/%zu at 0.3%%, "
              "%zu/%zu at 3%%, %zu/%zu at 10%%\n",
              Above50[0], Count, Above50[1], Count, Above50[2], Count);
  std::printf("paper shape: most runs skip >50%% combined.\n");
  return 0;
}
