//===- bench/BenchCommon.h - Shared bench harness helpers ------*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the figure-reproduction benches: scale-flag parsing
/// and common offline-run plumbing. Every bench prints the same rows/series
/// the corresponding paper figure reports, plus a CSV next to the binary
/// when --csv is passed.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_BENCH_BENCHCOMMON_H
#define SAMPLETRACK_BENCH_BENCHCOMMON_H

#include "sampletrack/SampleTrack.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <vector>

namespace stbench {

/// Common bench options. Scale multiplies trace sizes / request counts so
/// the default "for b in build/bench/*; do $b; done" loop stays fast while
/// --scale 1 approaches paper-sized runs.
struct Options {
  double Scale = 0.25;
  uint64_t Seed = 1;
  /// Detector-lane worker threads for the offline session runs (the
  /// --workers axis; 0 = sequential). Results are bit-identical across
  /// values — only wall-clock changes — so every figure is safe to run at
  /// any worker count.
  size_t Workers = 0;
  /// Intra-engine shard count for the offline session runs (the --shards
  /// axis; 0 = unsharded). Same determinism contract as Workers: results
  /// are bit-identical across values, only wall-clock changes.
  size_t Shards = 0;
  std::string CsvPath;
  /// Machine-readable results (--json PATH): the perf-trajectory format CI
  /// snapshots as BENCH_<fig>.json at the repo root.
  std::string JsonPath;
  /// Chrome-trace output (--trace OUT.json): the bench re-runs one
  /// representative configuration with profiling on and writes the span
  /// timeline as Trace Event Format JSON, loadable in Perfetto /
  /// chrome://tracing. Profiled runs are separate from the timed rows, so
  /// --trace never perturbs the recorded numbers.
  std::string TracePath;

  static Options parse(int Argc, char **Argv) {
    Options O;
    for (int A = 1; A < Argc; ++A) {
      std::string Arg = Argv[A];
      auto Next = [&]() -> const char * {
        if (A + 1 >= Argc) {
          std::fprintf(stderr, "missing value for %s\n", Arg.c_str());
          exit(2);
        }
        return Argv[++A];
      };
      if (Arg == "--scale")
        O.Scale = std::atof(Next());
      else if (Arg == "--seed")
        O.Seed = std::strtoull(Next(), nullptr, 10);
      else if (Arg == "--workers")
        O.Workers = std::strtoull(Next(), nullptr, 10);
      else if (Arg == "--shards")
        O.Shards = std::strtoull(Next(), nullptr, 10);
      else if (Arg == "--csv")
        O.CsvPath = Next();
      else if (Arg == "--json")
        O.JsonPath = Next();
      else if (Arg == "--trace")
        O.TracePath = Next();
      else {
        std::fprintf(stderr,
                     "usage: %s [--scale S] [--seed N] [--workers W] "
                     "[--shards S] [--csv PATH] [--json PATH] "
                     "[--trace OUT.json]\n",
                     Argv[0]);
        exit(2);
      }
    }
    return O;
  }
};

/// Machine-readable bench output: one row per measurement, one JSON
/// document per bench run. The schema is the repo's perf trajectory —
/// CI runs fig5b/fig8 with --json and keeps BENCH_<fig>.json at the repo
/// root so every PR is held to the previous numbers:
///
///   {"bench": "fig8", "scale": 0.25, "seed": 1, "rows": [
///     {"series": "...", "engine": "SO", "rate": 0.03, "events": N,
///      "wallNanos": W, "nsPerEvent": W/N, "deepCopies": ..,
///      "cowBreaks": .., "poolHits": .., "shallowCopies": ..,
///      "releasesTotal": .., "racesDeclared": ..}, ...]}
class JsonReport {
public:
  JsonReport(std::string Bench, const Options &O)
      : Bench(std::move(Bench)), Scale(O.Scale), Seed(O.Seed) {}

  /// Records one measurement. \p Series names the workload/config axis
  /// (trace name, "workers=4", ...); \p Rate is the sampling rate (1.0 for
  /// full analysis, 0 when not applicable).
  /// \p Extra is an optional raw JSON fragment appended to the row (e.g.
  /// "\"racyLocations\": 5, \"distinctRaces\": 3" — fig6a's dedup axis).
  void addRow(const std::string &Series, const std::string &Engine,
              double Rate, uint64_t Events, uint64_t WallNanos,
              const sampletrack::Metrics &M, const std::string &Extra = "") {
    double NsPerEvent =
        Events ? static_cast<double>(WallNanos) / static_cast<double>(Events)
               : 0.0;
    char RateS[64], NsS[64];
    std::snprintf(RateS, sizeof(RateS), "%g", Rate);
    std::snprintf(NsS, sizeof(NsS), "%.2f", NsPerEvent);
    std::string Row = "    {\"series\": \"" + Series + "\", \"engine\": \"" +
                      Engine + "\", \"rate\": " + RateS +
                      ", \"events\": " + std::to_string(Events) +
                      ", \"wallNanos\": " + std::to_string(WallNanos);
    Row += std::string(", \"nsPerEvent\": ") + NsS +
           ", \"deepCopies\": " + std::to_string(M.DeepCopies) +
           ", \"cowBreaks\": " + std::to_string(M.CowBreaks) +
           ", \"poolHits\": " + std::to_string(M.PoolHits) +
           ", \"shallowCopies\": " + std::to_string(M.ShallowCopies) +
           ", \"releasesTotal\": " + std::to_string(M.ReleasesTotal) +
           ", \"racesDeclared\": " + std::to_string(M.RacesDeclared);
    if (!Extra.empty())
      Row += ", " + Extra;
    Row += "}";
    Rows.push_back(std::move(Row));
  }

  /// Attaches a self-profile summary: the document gains a top-level
  /// "profile" key (flat span array, see prof::toJsonArray). The perf gate
  /// skips it — span nanos are not gated metrics — so baselines may carry
  /// it freely.
  void attachProfile(const sampletrack::prof::Report &R) {
    Profile = sampletrack::prof::toJsonArray(R);
  }

  /// Writes the document if --json was passed; returns false only on I/O
  /// failure (missing --json is not an error).
  bool writeIfRequested(const Options &O) const {
    if (O.JsonPath.empty())
      return true;
    std::FILE *F = std::fopen(O.JsonPath.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "warning: cannot write %s\n", O.JsonPath.c_str());
      return false;
    }
    std::fprintf(F, "{\"bench\": \"%s\", \"scale\": %g, \"seed\": %llu, "
                    "\"rows\": [\n",
                 Bench.c_str(), Scale, static_cast<unsigned long long>(Seed));
    for (size_t I = 0; I < Rows.size(); ++I)
      std::fprintf(F, "%s%s\n", Rows[I].c_str(),
                   I + 1 < Rows.size() ? "," : "");
    std::fprintf(F, "]");
    if (!Profile.empty())
      std::fprintf(F, ",\n\"profile\": %s", Profile.c_str());
    std::fprintf(F, "}\n");
    std::fclose(F);
    std::printf("\n(json written to %s)\n", O.JsonPath.c_str());
    return true;
  }

private:
  std::string Bench;
  double Scale;
  uint64_t Seed;
  std::vector<std::string> Rows;
  std::string Profile;
};

/// Runs engine \p K over a pre-marked trace \p T, replaying the Marked bits
/// as the sample set, and returns the single-lane result. \p NumWorkers
/// threads drive the lane(s) when nonzero (bit-identical to sequential).
inline sampletrack::rapid::RunResult
runMarked(const sampletrack::Trace &T, sampletrack::EngineKind K,
          size_t NumWorkers = 0) {
  sampletrack::api::SessionConfig Cfg;
  Cfg.Engines = {K};
  Cfg.Sampling = sampletrack::api::SamplerKind::Marked;
  Cfg.NumWorkers = NumWorkers;
  sampletrack::api::SessionResult R =
      sampletrack::api::AnalysisSession(Cfg).run(T);
  return sampletrack::rapid::fromEngineRun(R.Engines.front());
}

/// Fans every engine in \p Kinds out over a single traversal of the
/// pre-marked trace \p T (identical sample sets by construction), with
/// \p NumWorkers lane worker threads (0 = sequential).
inline sampletrack::api::SessionResult
runMarkedAll(const sampletrack::Trace &T,
             std::span<const sampletrack::EngineKind> Kinds,
             size_t NumWorkers = 0) {
  sampletrack::api::SessionConfig Cfg;
  Cfg.Engines.assign(Kinds.begin(), Kinds.end());
  Cfg.Sampling = sampletrack::api::SamplerKind::Marked;
  Cfg.NumWorkers = NumWorkers;
  return sampletrack::api::AnalysisSession(Cfg).run(T);
}

/// Writes \p Trace (chrome Trace Event Format JSON) to O.TracePath if
/// --trace was passed. Benches call this with
/// prof::toChromeTrace(...) of a profiled re-run.
inline void writeTraceIfRequested(const Options &O, const std::string &Trace) {
  if (O.TracePath.empty())
    return;
  if (sampletrack::api::writeFile(O.TracePath, Trace))
    std::printf("(chrome trace written to %s)\n", O.TracePath.c_str());
  else
    std::fprintf(stderr, "warning: cannot write %s\n", O.TracePath.c_str());
}

/// Runs one profiled session over the pre-marked trace \p T (the same
/// configuration as runMarkedAll) and returns the full result including
/// SessionResult::Profile. Used for the --trace export and the "profile"
/// attachment — a separate run, so profiling never perturbs timed rows.
inline sampletrack::api::SessionResult
runMarkedAllProfiled(const sampletrack::Trace &T,
                     std::span<const sampletrack::EngineKind> Kinds,
                     size_t NumWorkers, size_t Shards,
                     std::unique_ptr<sampletrack::prof::Profiler> *ProfOut =
                         nullptr) {
  sampletrack::api::SessionConfig Cfg;
  Cfg.Engines.assign(Kinds.begin(), Kinds.end());
  Cfg.Sampling = sampletrack::api::SamplerKind::Marked;
  Cfg.NumWorkers = NumWorkers;
  Cfg.Shards = Shards;
  Cfg.ProfilingEnabled = true;
  sampletrack::api::AnalysisSession S(Cfg);
  sampletrack::api::SessionResult R = S.run(T);
  if (ProfOut)
    *ProfOut = S.takeProfiler();
  return R;
}

/// \p Num / \p Den with the trajectory's zero convention: rows whose
/// denominator never accumulated (empty traces, skipped configs) report 0
/// rather than poisoning the JSON/CSV with inf or nan — the same guard
/// JsonReport::addRow applies to nsPerEvent.
inline double safeRatio(double Num, double Den) {
  return Den > 0 ? Num / Den : 0.0;
}

/// Emits the table and optional CSV.
inline void finish(sampletrack::Table &T, const Options &O) {
  T.print();
  if (!O.CsvPath.empty()) {
    if (T.writeCsv(O.CsvPath))
      std::printf("\n(csv written to %s)\n", O.CsvPath.c_str());
    else
      std::fprintf(stderr, "warning: cannot write %s\n", O.CsvPath.c_str());
  }
}

} // namespace stbench

#endif // SAMPLETRACK_BENCH_BENCHCOMMON_H
