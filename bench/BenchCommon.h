//===- bench/BenchCommon.h - Shared bench harness helpers ------*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the figure-reproduction benches: scale-flag parsing
/// and common offline-run plumbing. Every bench prints the same rows/series
/// the corresponding paper figure reports, plus a CSV next to the binary
/// when --csv is passed.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_BENCH_BENCHCOMMON_H
#define SAMPLETRACK_BENCH_BENCHCOMMON_H

#include "sampletrack/SampleTrack.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>

namespace stbench {

/// Common bench options. Scale multiplies trace sizes / request counts so
/// the default "for b in build/bench/*; do $b; done" loop stays fast while
/// --scale 1 approaches paper-sized runs.
struct Options {
  double Scale = 0.25;
  uint64_t Seed = 1;
  /// Detector-lane worker threads for the offline session runs (the
  /// --workers axis; 0 = sequential). Results are bit-identical across
  /// values — only wall-clock changes — so every figure is safe to run at
  /// any worker count.
  size_t Workers = 0;
  std::string CsvPath;

  static Options parse(int Argc, char **Argv) {
    Options O;
    for (int A = 1; A < Argc; ++A) {
      std::string Arg = Argv[A];
      auto Next = [&]() -> const char * {
        if (A + 1 >= Argc) {
          std::fprintf(stderr, "missing value for %s\n", Arg.c_str());
          exit(2);
        }
        return Argv[++A];
      };
      if (Arg == "--scale")
        O.Scale = std::atof(Next());
      else if (Arg == "--seed")
        O.Seed = std::strtoull(Next(), nullptr, 10);
      else if (Arg == "--workers")
        O.Workers = std::strtoull(Next(), nullptr, 10);
      else if (Arg == "--csv")
        O.CsvPath = Next();
      else {
        std::fprintf(
            stderr,
            "usage: %s [--scale S] [--seed N] [--workers W] [--csv PATH]\n",
            Argv[0]);
        exit(2);
      }
    }
    return O;
  }
};

/// Runs engine \p K over a pre-marked trace \p T, replaying the Marked bits
/// as the sample set, and returns the single-lane result. \p NumWorkers
/// threads drive the lane(s) when nonzero (bit-identical to sequential).
inline sampletrack::rapid::RunResult
runMarked(const sampletrack::Trace &T, sampletrack::EngineKind K,
          size_t NumWorkers = 0) {
  sampletrack::api::SessionConfig Cfg;
  Cfg.Engines = {K};
  Cfg.Sampling = sampletrack::api::SamplerKind::Marked;
  Cfg.NumWorkers = NumWorkers;
  sampletrack::api::SessionResult R =
      sampletrack::api::AnalysisSession(Cfg).run(T);
  return sampletrack::rapid::fromEngineRun(R.Engines.front());
}

/// Fans every engine in \p Kinds out over a single traversal of the
/// pre-marked trace \p T (identical sample sets by construction), with
/// \p NumWorkers lane worker threads (0 = sequential).
inline sampletrack::api::SessionResult
runMarkedAll(const sampletrack::Trace &T,
             std::span<const sampletrack::EngineKind> Kinds,
             size_t NumWorkers = 0) {
  sampletrack::api::SessionConfig Cfg;
  Cfg.Engines.assign(Kinds.begin(), Kinds.end());
  Cfg.Sampling = sampletrack::api::SamplerKind::Marked;
  Cfg.NumWorkers = NumWorkers;
  return sampletrack::api::AnalysisSession(Cfg).run(T);
}

/// Emits the table and optional CSV.
inline void finish(sampletrack::Table &T, const Options &O) {
  T.print();
  if (!O.CsvPath.empty()) {
    if (T.writeCsv(O.CsvPath))
      std::printf("\n(csv written to %s)\n", O.CsvPath.c_str());
    else
      std::fprintf(stderr, "warning: cannot write %s\n", O.CsvPath.c_str());
  }
}

} // namespace stbench

#endif // SAMPLETRACK_BENCH_BENCHCOMMON_H
