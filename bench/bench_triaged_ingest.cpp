//===- bench/bench_triaged_ingest.cpp - Fleet upload throughput -------------=/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Many-client upload throughput of the triaged fleet service, split by
/// content type so regressions are attributable:
///
///  - summary-upload: pre-deduplicated "STSG" signature summaries — the
///    cheap path a CI shard takes; the server's cost is frame verification
///    plus a single-writer mergeRun;
///  - trace-upload: raw binary traces — the expensive path; the server runs
///    a full api::AnalysisSession (FT + SO, Always sampling) per upload
///    before merging.
///  - durable-summary: the summary path against a real TriageLog store
///    directory, fsync per upload. Reports bytes persisted per upload
///    (journal appends + compactions) next to the counterfactual
///    whole-file-rewrite cost, pinning the O(R * run) vs O(R * store)
///    I/O claim.
///
/// One in-process server on an ephemeral loopback port, N concurrent
/// client threads (--workers, default 4) partitioning one corpus of
/// related runs. Rows report uploads/s, end-to-end MB/s of body bytes, and
/// the per-event analysis rate for the trace series.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <sstream>
#include <thread>

using namespace sampletrack;
using namespace stbench;

namespace {

uint64_t nowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

} // namespace

int main(int argc, char **argv) {
  Options O = Options::parse(argc, argv);
  size_t Clients = O.Workers ? O.Workers : 4;
  std::printf("== triaged: many-client ingest throughput ==\n\n");

  // One corpus of related runs: one workload shape, rotated seeds, a
  // shared racy pool — the realistic fleet input (cf. tracegen --corpus).
  const size_t Runs = static_cast<size_t>(24 * O.Scale) + 4;
  GenConfig G;
  G.NumThreads = 4;
  G.NumLocks = 6;
  G.NumVars = 128;
  G.NumEvents = static_cast<size_t>(20000 * O.Scale) + 1000;
  G.UnprotectedFraction = 0.05;
  G.RacyVars = 6;

  std::vector<std::string> TraceBodies, SummaryBodies;
  uint64_t CorpusEvents = 0;
  for (size_t I = 0; I < Runs; ++I) {
    GenConfig C = G;
    C.Seed = O.Seed + I;
    Trace T = generateWorkload(C);
    CorpusEvents += T.size();
    std::ostringstream Os(std::ios::binary);
    writeTraceBinary(Os, T);
    TraceBodies.push_back(Os.str());
    api::SessionResult R =
        api::AnalysisSession(triaged::fleetAnalysisConfig()).run(T);
    SummaryBodies.push_back(triaged::encodeSummary(R.Triage));
  }
  std::printf("corpus: %zu run(s), %llu event(s), %zu client(s)\n\n", Runs,
              static_cast<unsigned long long>(CorpusEvents), Clients);

  Table Out({"series", "uploads", "bytes", "ms", "uploads/s", "MB/s"});
  JsonReport Json("triaged", O);

  struct Series {
    const char *Name;
    triaged::WireContent Content;
    const std::vector<std::string> *Bodies;
    bool Durable;
  } AllSeries[] = {
      {"summary-upload", triaged::WireContent::SignatureSummary,
       &SummaryBodies, false},
      {"trace-upload", triaged::WireContent::BinaryTrace, &TraceBodies,
       false},
      {"durable-summary", triaged::WireContent::SignatureSummary,
       &SummaryBodies, true},
  };

  for (const Series &S : AllSeries) {
    triaged::ServerConfig Cfg;
    Cfg.NumWorkers = Clients;
    std::string StoreDir;
    if (S.Durable) {
      StoreDir = "/tmp/sampletrack_bench_triaged_store_" +
                 std::to_string(::getpid());
      std::filesystem::remove_all(StoreDir);
      Cfg.StorePath = StoreDir;
    }
    triaged::Server Server(Cfg);
    std::string Err;
    if (!Server.start(&Err)) {
      std::fprintf(stderr, "FATAL: %s\n", Err.c_str());
      return 1;
    }

    // N clients partition the corpus round-robin; unsequenced uploads —
    // throughput is the axis here, merge order is the tests' business.
    uint64_t Bytes = 0;
    for (const std::string &B : *S.Bodies)
      Bytes += B.size();
    std::vector<int> Failed(Clients, 0);
    uint64_t T0 = nowNanos();
    std::vector<std::thread> Threads;
    for (size_t W = 0; W < Clients; ++W)
      Threads.emplace_back([&, W] {
        triaged::Client C("127.0.0.1", Server.port());
        for (size_t I = W; I < S.Bodies->size(); I += Clients) {
          triaged::Client::Response Resp;
          std::string PErr;
          if (!C.post("/v1/runs", "application/x-sampletrack-upload",
                      triaged::frame(S.Content, (*S.Bodies)[I]), Resp,
                      &PErr) ||
              Resp.Status != 200)
            Failed[W] = 1;
        }
      });
    for (std::thread &T : Threads)
      T.join();
    uint64_t Nanos = nowNanos() - T0;
    triaged::ServerStats St = Server.stats();
    // What one whole-file save per upload would have written: every upload
    // rewrites the store it just produced (the pre-TriageLog behavior;
    // using the *final* size even underestimates nothing but run 1).
    uint64_t FinalStoreBytes = Server.snapshotStore().serialize().size();
    Server.stop();
    if (!StoreDir.empty())
      std::filesystem::remove_all(StoreDir);
    // The trace-upload series exercises the full request pipeline
    // (parse/decode/analyze/merge spans): its server profile is the one we
    // attach and export. The workers are joined, so the trees are quiescent.
    if (S.Content == triaged::WireContent::BinaryTrace &&
        Server.profiler()) {
      Json.attachProfile(Server.profiler()->report());
      writeTraceIfRequested(O,
                            prof::toChromeTrace(*Server.profiler(), "triaged"));
    }
    for (int F : Failed)
      if (F) {
        std::fprintf(stderr, "FATAL: %s: upload failed\n", S.Name);
        return 1;
      }

    double Ms = Nanos / 1e6;
    double UploadsPerSec = S.Bodies->size() / (Nanos / 1e9);
    double MbPerSec = (Bytes / 1e6) / (Nanos / 1e9);
    Out.addRow({S.Name, std::to_string(S.Bodies->size()),
                std::to_string(Bytes), Table::fmt(Ms),
                Table::fmt(UploadsPerSec), Table::fmt(MbPerSec)});
    if (S.Durable) {
      uint64_t Persisted = St.BytesAppended + St.BytesCompacted;
      uint64_t WholeFile = FinalStoreBytes * S.Bodies->size();
      std::printf("%s: %llu byte(s) persisted (%llu/upload, %llu "
                  "compaction(s)) vs %llu (%llu/upload) for a whole-file "
                  "save per upload\n",
                  S.Name, static_cast<unsigned long long>(Persisted),
                  static_cast<unsigned long long>(Persisted /
                                                  S.Bodies->size()),
                  static_cast<unsigned long long>(St.Compactions),
                  static_cast<unsigned long long>(WholeFile),
                  static_cast<unsigned long long>(FinalStoreBytes));
    }
    Metrics None;
    char Extra[360];
    std::snprintf(Extra, sizeof(Extra),
                  "\"uploads\": %zu, \"clients\": %zu, \"bytes\": %llu, "
                  "\"uploadsPerSec\": %.1f, \"bytesPersisted\": %llu, "
                  "\"bytesPerUpload\": %llu, \"compactions\": %llu, "
                  "\"wholeFileCounterfactualBytes\": %llu",
                  S.Bodies->size(), Clients,
                  static_cast<unsigned long long>(Bytes), UploadsPerSec,
                  static_cast<unsigned long long>(St.BytesAppended +
                                                  St.BytesCompacted),
                  static_cast<unsigned long long>(
                      (St.BytesAppended + St.BytesCompacted) /
                      S.Bodies->size()),
                  static_cast<unsigned long long>(St.Compactions),
                  static_cast<unsigned long long>(FinalStoreBytes *
                                                  S.Bodies->size()));
    Json.addRow(S.Name, "FT+SO", 1.0,
                S.Content == triaged::WireContent::BinaryTrace ? CorpusEvents
                                                               : 0,
                Nanos, None, Extra);
  }

  finish(Out, O);
  Json.writeIfRequested(O);
  return 0;
}
