//===- bench/bench_triaged_ingest.cpp - Fleet upload throughput -------------=/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Many-client upload throughput of the triaged fleet service, split by
/// content type so regressions are attributable:
///
///  - summary-upload: pre-deduplicated "STSG" signature summaries — the
///    cheap path a CI shard takes; the server's cost is frame verification
///    plus a single-writer mergeRun;
///  - trace-upload: raw binary traces — the expensive path; the server runs
///    a full api::AnalysisSession (FT + SO, Always sampling) per upload
///    before merging.
///
/// One in-process server on an ephemeral loopback port, N concurrent
/// client threads (--workers, default 4) partitioning one corpus of
/// related runs. Rows report uploads/s, end-to-end MB/s of body bytes, and
/// the per-event analysis rate for the trace series.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <chrono>
#include <sstream>
#include <thread>

using namespace sampletrack;
using namespace stbench;

namespace {

uint64_t nowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

} // namespace

int main(int argc, char **argv) {
  Options O = Options::parse(argc, argv);
  size_t Clients = O.Workers ? O.Workers : 4;
  std::printf("== triaged: many-client ingest throughput ==\n\n");

  // One corpus of related runs: one workload shape, rotated seeds, a
  // shared racy pool — the realistic fleet input (cf. tracegen --corpus).
  const size_t Runs = static_cast<size_t>(24 * O.Scale) + 4;
  GenConfig G;
  G.NumThreads = 4;
  G.NumLocks = 6;
  G.NumVars = 128;
  G.NumEvents = static_cast<size_t>(20000 * O.Scale) + 1000;
  G.UnprotectedFraction = 0.05;
  G.RacyVars = 6;

  std::vector<std::string> TraceBodies, SummaryBodies;
  uint64_t CorpusEvents = 0;
  for (size_t I = 0; I < Runs; ++I) {
    GenConfig C = G;
    C.Seed = O.Seed + I;
    Trace T = generateWorkload(C);
    CorpusEvents += T.size();
    std::ostringstream Os(std::ios::binary);
    writeTraceBinary(Os, T);
    TraceBodies.push_back(Os.str());
    api::SessionResult R =
        api::AnalysisSession(triaged::fleetAnalysisConfig()).run(T);
    SummaryBodies.push_back(triaged::encodeSummary(R.Triage));
  }
  std::printf("corpus: %zu run(s), %llu event(s), %zu client(s)\n\n", Runs,
              static_cast<unsigned long long>(CorpusEvents), Clients);

  Table Out({"series", "uploads", "bytes", "ms", "uploads/s", "MB/s"});
  JsonReport Json("triaged", O);

  struct Series {
    const char *Name;
    triaged::WireContent Content;
    const std::vector<std::string> *Bodies;
  } AllSeries[] = {
      {"summary-upload", triaged::WireContent::SignatureSummary,
       &SummaryBodies},
      {"trace-upload", triaged::WireContent::BinaryTrace, &TraceBodies},
  };

  for (const Series &S : AllSeries) {
    triaged::ServerConfig Cfg;
    Cfg.NumWorkers = Clients;
    triaged::Server Server(Cfg);
    std::string Err;
    if (!Server.start(&Err)) {
      std::fprintf(stderr, "FATAL: %s\n", Err.c_str());
      return 1;
    }

    // N clients partition the corpus round-robin; unsequenced uploads —
    // throughput is the axis here, merge order is the tests' business.
    uint64_t Bytes = 0;
    for (const std::string &B : *S.Bodies)
      Bytes += B.size();
    std::vector<int> Failed(Clients, 0);
    uint64_t T0 = nowNanos();
    std::vector<std::thread> Threads;
    for (size_t W = 0; W < Clients; ++W)
      Threads.emplace_back([&, W] {
        triaged::Client C("127.0.0.1", Server.port());
        for (size_t I = W; I < S.Bodies->size(); I += Clients) {
          triaged::Client::Response Resp;
          std::string PErr;
          if (!C.post("/v1/runs", "application/x-sampletrack-upload",
                      triaged::frame(S.Content, (*S.Bodies)[I]), Resp,
                      &PErr) ||
              Resp.Status != 200)
            Failed[W] = 1;
        }
      });
    for (std::thread &T : Threads)
      T.join();
    uint64_t Nanos = nowNanos() - T0;
    Server.stop();
    for (int F : Failed)
      if (F) {
        std::fprintf(stderr, "FATAL: %s: upload failed\n", S.Name);
        return 1;
      }

    double Ms = Nanos / 1e6;
    double UploadsPerSec = S.Bodies->size() / (Nanos / 1e9);
    double MbPerSec = (Bytes / 1e6) / (Nanos / 1e9);
    Out.addRow({S.Name, std::to_string(S.Bodies->size()),
                std::to_string(Bytes), Table::fmt(Ms),
                Table::fmt(UploadsPerSec), Table::fmt(MbPerSec)});
    Metrics None;
    char Extra[160];
    std::snprintf(Extra, sizeof(Extra),
                  "\"uploads\": %zu, \"clients\": %zu, \"bytes\": %llu, "
                  "\"uploadsPerSec\": %.1f",
                  S.Bodies->size(), Clients,
                  static_cast<unsigned long long>(Bytes), UploadsPerSec);
    Json.addRow(S.Name, "FT+SO", 1.0,
                S.Content == triaged::WireContent::BinaryTrace ? CorpusEvents
                                                               : 0,
                Nanos, None, Extra);
  }

  finish(Out, O);
  Json.writeIfRequested(O);
  return 0;
}
