//===- bench/bench_storage_ladder.cpp - Fig. 5 on the storage engine --------=/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Fig. 5(a)/(b) measurements repeated on the mini storage engine —
/// the most MySQL-faithful substrate in this repository (B-tree latch
/// crabbing, buffer-pool map latch, WAL latch). Reports per-op latency of
/// every configuration relative to NT and the SU/SO improvement in
/// algorithmic overhead over ST at 3%.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "sampletrack/workload/StorageEngine.h"

#include <chrono>
#include <thread>

using namespace sampletrack;
using namespace sampletrack::db;
using namespace stbench;

namespace {

double runNsPerOp(rt::Mode M, double Rate, size_t Workers, size_t Ops,
                  uint64_t Seed) {
  rt::Config C;
  C.AnalysisMode = M;
  C.SamplingRate = Rate;
  // 64-slot clocks as in the paper's TSan setup: O(T) joins must cost
  // something for the skip machinery to pay off.
  C.MaxThreads = 64;
  C.Seed = Seed;
  rt::Runtime Rt(C);
  Database Db(Rt, 4, 512, 16384);

  std::vector<ThreadId> Tids;
  for (size_t W = 0; W < Workers; ++W) {
    ThreadId T = Rt.registerThread();
    Rt.onFork(0, T);
    Tids.push_back(T);
  }
  auto Start = std::chrono::steady_clock::now();
  std::vector<std::thread> Threads;
  for (size_t W = 0; W < Workers; ++W) {
    Threads.emplace_back([&, W] {
      ThreadId T = Tids[W];
      SplitMix64 Rng(Seed * 131 + W);
      for (size_t I = 0; I < Ops; ++I) {
        size_t Table = Rng.nextBelow(4);
        uint64_t Key = Rng.nextBelow(4000);
        if (Rng.nextBool(0.4))
          Db.put(T, Table, Key, I);
        else {
          uint64_t V;
          Db.get(T, Table, Key, V);
        }
      }
    });
  }
  for (size_t W = 0; W < Workers; ++W) {
    Threads[W].join();
    Rt.onJoin(0, Tids[W]);
  }
  auto End = std::chrono::steady_clock::now();
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(End -
                                                                  Start)
                 .count()) /
         static_cast<double>(Workers * Ops);
}

double bestOf(int Reps, rt::Mode M, double Rate, size_t Workers, size_t Ops,
              uint64_t Seed) {
  double Best = -1;
  for (int R = 0; R < Reps; ++R) {
    double V = runNsPerOp(M, Rate, Workers, Ops, Seed + R);
    if (Best < 0 || V < Best)
      Best = V;
  }
  return Best;
}

} // namespace

int main(int argc, char **argv) {
  Options O = Options::parse(argc, argv);
  std::printf("== Storage-engine latency ladder (Fig. 5 analogue) ==\n\n");

  const size_t Workers = 4;
  const size_t Ops = static_cast<size_t>(6000 * O.Scale) + 500;

  bestOf(1, rt::Mode::NT, 0, Workers, Ops, O.Seed); // Warmup.
  double Nt = bestOf(2, rt::Mode::NT, 0, Workers, Ops, O.Seed);
  double Et = bestOf(2, rt::Mode::ET, 0, Workers, Ops, O.Seed);
  double Ft = bestOf(2, rt::Mode::FT, 0, Workers, Ops, O.Seed);

  Table Out({"config", "ns/op", "rel vs NT", "AO improvement vs ST"});
  Out.addRow({"NT", Table::fmt(Nt, 0), "1.00", "-"});
  Out.addRow({"ET", Table::fmt(Et, 0), Table::fmt(Et / Nt, 2), "-"});
  Out.addRow({"FT", Table::fmt(Ft, 0), Table::fmt(Ft / Nt, 2), "-"});

  for (double Rate : {0.003, 0.03, 0.10}) {
    double St = bestOf(2, rt::Mode::ST, Rate, Workers, Ops, O.Seed);
    double Su = bestOf(2, rt::Mode::SU, Rate, Workers, Ops, O.Seed);
    double So = bestOf(2, rt::Mode::SO, Rate, Workers, Ops, O.Seed);
    double AoSt = std::max(St - Et, Et * 0.02);
    char Label[32];
    auto AddRow = [&](const char *Engine, double Lat) {
      std::snprintf(Label, sizeof(Label), "%s%.3g%%", Engine, Rate * 100);
      double Improvement = Engine[0] == 'S' && Engine[1] != 'T'
                               ? 1.0 - (Lat - Et) / AoSt
                               : 0.0;
      Out.addRow({Label, Table::fmt(Lat, 0), Table::fmt(Lat / Nt, 2),
                  Engine[1] == 'T' ? "-" : Table::fmt(Improvement, 2)});
    };
    AddRow("ST", St);
    AddRow("SU", Su);
    AddRow("SO", So);
  }

  finish(Out, O);
  std::printf("\nexpected shape: NT < ET < sampling < FT; SU/SO beat ST "
              "most at the lowest rate (deep latch hierarchies make "
              "acquire skips count).\n");
  return 0;
}
