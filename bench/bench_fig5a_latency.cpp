//===- bench/bench_fig5a_latency.cpp - Fig. 5(a) reproduction ---------------=/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 5(a): relative average request latency of ET, FT and ST at 0.3%,
/// 3% and 10% sampling, each normalized to the uninstrumented baseline NT,
/// across the BenchBase-style workload suite.
///
/// Expected shape (paper, Section 6.2.3): ET ~= 3.1x NT; FT ~= 9x NT; ST
/// in between and rising with the sampling rate (4.5x / 5.1x / 5.8x).
/// Absolute factors depend on the host (the paper used 64 cores); the
/// ordering NT < ET < ST0.3 <= ST3 <= ST10 < FT is the reproduction target.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <thread>

using namespace sampletrack;
using namespace sampletrack::workload;
using namespace stbench;

int main(int argc, char **argv) {
  Options O = Options::parse(argc, argv);
  std::printf("== Fig 5(a): relative average latency w.r.t. NT ==\n\n");

  RunConfig Base;
  Base.NumClients =
      std::max<size_t>(2, std::min<size_t>(4, std::thread::hardware_concurrency()));
  Base.RequestsPerClient = static_cast<size_t>(1200 * O.Scale) + 100;
  Base.Seed = O.Seed;

  // One SessionConfig shapes every runtime in the ladder. TSan v3 uses
  // fixed-size clocks (256 slots; the paper disables slot preemption); we
  // use 64-slot clocks, the paper's concurrently-runnable thread count, so
  // O(T) analysis costs are realistic.
  api::SessionConfig Analysis;
  Analysis.MaxThreads = 64;
  Analysis.Seed = O.Seed;

  struct Cfg {
    const char *Label;
    rt::Mode Mode;
    double Rate;
  };
  const Cfg Configs[] = {
      {"ET", rt::Mode::ET, 0},        {"FT", rt::Mode::FT, 0},
      {"ST0.3%", rt::Mode::ST, 0.003}, {"ST3%", rt::Mode::ST, 0.03},
      {"ST10%", rt::Mode::ST, 0.10},
  };

  Table Out({"benchmark", "NT us", "ET", "FT", "ST0.3%", "ST3%", "ST10%"});
  std::vector<double> Ratios[5];

  for (const BenchmarkSpec &Spec : benchbaseSuite()) {
    RunConfig C = Base;
    // Best-of-3 median latency tames scheduler noise on small hosts (the
    // paper's 1-hour stress runs average it out instead).
    auto Measure = [&](rt::Mode M, double Rate) {
      Analysis.SamplingRate = Rate;
      C.Rt = Analysis.runtimeConfig(M);
      double Best = -1.0;
      for (int Rep = 0; Rep < 3; ++Rep) {
        double P50 = runBenchmark(Spec, C).LatencyNs.P50;
        if (Best < 0 || P50 < Best)
          Best = P50;
      }
      return Best;
    };
    C.Rt = Analysis.runtimeConfig(rt::Mode::NT);
    runBenchmark(Spec, C); // Warmup: pages, caches, allocator.
    double NtLat = Measure(rt::Mode::NT, 0);

    std::vector<std::string> Row = {Spec.Name, Table::fmt(NtLat / 1e3, 1)};
    for (size_t I = 0; I < 5; ++I) {
      double Lat = Measure(Configs[I].Mode, Configs[I].Rate);
      double Ratio = NtLat > 0 ? Lat / NtLat : 0;
      Ratios[I].push_back(Ratio);
      Row.push_back(Table::fmt(Ratio, 2));
    }
    Out.addRow(Row);
  }

  std::vector<std::string> MeanRow = {"geomean", "-"};
  for (size_t I = 0; I < 5; ++I) {
    double LogSum = 0;
    for (double R : Ratios[I])
      LogSum += std::log(std::max(R, 1e-9));
    MeanRow.push_back(
        Table::fmt(std::exp(LogSum / Ratios[I].size()), 2));
  }
  Out.addRow(MeanRow);

  finish(Out, O);
  std::printf("\npaper shape: ET ~3.1x, FT ~9x, ST rises with rate "
              "(4.5x/5.1x/5.8x on a 64-core testbed).\n");
  return 0;
}
