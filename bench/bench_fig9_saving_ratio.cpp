//===- bench/bench_fig9_saving_ratio.cpp - Fig. 9 reproduction --------------=/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 9 (appendix A.1): the saving ratio of the ordered-list data
/// structure — over the acquires that were NOT skipped, the fraction of
/// vector-clock entries that the prefix traversal avoided visiting:
///
///   saving = (sum_e T - visited_e) / (sum_e T)   over non-skipped acquires
///
/// Expected shape: high for both SO-(3%) and SO-(100%), and always higher
/// at 3% than at 100% — the data structure is particularly suited to the
/// sampling partial order.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace sampletrack;
using namespace stbench;

int main(int argc, char **argv) {
  Options O = Options::parse(argc, argv);
  std::printf("== Fig 9: ordered-list saving ratio of SO ==\n\n");

  Table Out({"benchmark", "SO-(3%)", "SO-(100%)"});
  size_t Count = 0, ThreePctHigher = 0;
  double Sum3 = 0, Sum100 = 0;

  for (const SuiteEntry &E : suiteEntries()) {
    Trace Base = generateSuiteTrace(E.Name, O.Scale, O.Seed);
    double Ratios[2] = {0, 0};
    const double Rates[2] = {0.03, 1.0};
    for (size_t I = 0; I < 2; ++I) {
      Trace T = Base;
      rapid::markTrace(T, Rates[I], O.Seed * 13 + 7);
      rapid::RunResult R = runMarked(T, EngineKind::SamplingO, O.Workers);
      const Metrics &M = R.Stats;
      uint64_t All = M.TraversalOpportunities;
      uint64_t Saved = All > M.EntriesTraversed ? All - M.EntriesTraversed
                                                : 0;
      Ratios[I] = All ? static_cast<double>(Saved) /
                            static_cast<double>(All)
                      : 0;
    }
    Out.addRow({E.Name, Table::fmt(Ratios[0], 3), Table::fmt(Ratios[1], 3)});
    ++Count;
    Sum3 += Ratios[0];
    Sum100 += Ratios[1];
    if (Ratios[0] >= Ratios[1] - 1e-9)
      ++ThreePctHigher;
  }
  Out.addRow({"mean", Table::fmt(Sum3 / Count, 3),
              Table::fmt(Sum100 / Count, 3)});

  finish(Out, O);
  std::printf("\nSO-(3%%) saving ratio >= SO-(100%%) on %zu/%zu traces\n",
              ThreePctHigher, Count);
  std::printf("paper shape: both ratios high, 3%% consistently above "
              "100%%.\n");
  return 0;
}
