//===- bench/bench_fig7_acquires_skipped.cpp - Fig. 7 reproduction ----------=/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 7 (appendix A.1): ratio of acquire events skipped over total
/// acquires, for the four offline engines SU-(3%), SO-(3%), SU-(100%) and
/// SO-(100%), across the 26 suite traces (ordered by total acquires).
///
/// Expected shape: at 3% sampling, >50% skipped on the vast majority of
/// traces and >80% on most; SU skips at least as much as SO (it keeps full
/// freshness clocks) but the difference is small; even the 100% engines
/// skip substantially thanks to self-reacquisition and reverse-order lock
/// communication.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace sampletrack;
using namespace stbench;

int main(int argc, char **argv) {
  Options O = Options::parse(argc, argv);
  std::printf("== Fig 7: acquires skipped / total acquires ==\n\n");

  Table Out({"benchmark", "acquires", "SU-(3%)", "SO-(3%)", "SU-(100%)",
             "SO-(100%)"});

  size_t Count = 0, Above50 = 0, Above80 = 0;
  double SuMinusSoMax = -1.0;

  for (const SuiteEntry &E : suiteEntries()) {
    Trace Base = generateSuiteTrace(E.Name, O.Scale, O.Seed);
    std::vector<std::string> Row = {E.Name};
    double Ratios[4] = {0, 0, 0, 0};
    const std::pair<EngineKind, double> Cfgs[4] = {
        {EngineKind::SamplingU, 0.03},
        {EngineKind::SamplingO, 0.03},
        {EngineKind::SamplingU, 1.0},
        {EngineKind::SamplingO, 1.0},
    };
    for (size_t I = 0; I < 4; ++I) {
      Trace T = Base;
      rapid::markTrace(T, Cfgs[I].second, O.Seed * 13 + 7);
      rapid::RunResult R = runMarked(T, Cfgs[I].first, O.Workers);
      const Metrics &M = R.Stats;
      Ratios[I] = M.AcquiresTotal ? static_cast<double>(M.AcquiresSkipped) /
                                        static_cast<double>(M.AcquiresTotal)
                                  : 0;
      if (Row.size() == 1)
        Row.push_back(std::to_string(M.AcquiresTotal));
      Row.push_back(Table::fmt(Ratios[I], 3));
    }
    Out.addRow(Row);
    ++Count;
    if (Ratios[0] > 0.5)
      ++Above50;
    if (Ratios[0] > 0.8)
      ++Above80;
    SuMinusSoMax = std::max(SuMinusSoMax, Ratios[0] - Ratios[1]);
  }

  finish(Out, O);
  std::printf("\nSU-(3%%): >50%% skipped on %zu/%zu traces, >80%% on %zu/%zu; "
              "max(SU - SO) skip gap = %.3f\n",
              Above50, Count, Above80, Count, SuMinusSoMax);
  std::printf("paper shape: >50%% for 23/26, >80%% for 16/26; SU >= SO with "
              "a small gap.\n");
  return 0;
}
