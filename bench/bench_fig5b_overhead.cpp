//===- bench/bench_fig5b_overhead.cpp - Fig. 5(b) reproduction --------------=/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 5(b): improvement in *algorithmic overhead* of SU and SO over the
/// naive sampling engine ST, per sampling rate:
///
///   AO(S)        = latency(S) - latency(ET)
///   improvement  = 1 - AO(S) / AO(ST)
///
/// Expected shape (Section 6.2.4): largest gains at 0.3% (~37% average for
/// both SU and SO, up to >60% on some benchmarks), shrinking at 3%
/// (~17-19%) and nearly vanishing at 10% (~3%); occasional small negative
/// values on benchmarks with few synchronizations per access.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <algorithm>
#include <thread>

using namespace sampletrack;
using namespace sampletrack::workload;
using namespace stbench;

int main(int argc, char **argv) {
  Options O = Options::parse(argc, argv);
  std::printf(
      "== Fig 5(b): improvement in algorithmic overhead of SU/SO vs ST ==\n\n");

  RunConfig Base;
  Base.NumClients =
      std::max<size_t>(2, std::min<size_t>(4, std::thread::hardware_concurrency()));
  Base.RequestsPerClient = static_cast<size_t>(2500 * O.Scale) + 200;
  Base.Seed = O.Seed;

  // One SessionConfig shapes every runtime in the ladder. TSan v3 uses
  // fixed-size clocks (256 slots; the paper disables slot preemption); we
  // use 64-slot clocks, the paper's concurrently-runnable thread count, so
  // O(T) analysis costs are realistic.
  api::SessionConfig Analysis;
  Analysis.MaxThreads = 64;
  Analysis.Seed = O.Seed;

  const double Rates[] = {0.003, 0.03, 0.10};

  Table Out({"benchmark", "SU0.3%", "SO0.3%", "SU3%", "SO3%", "SU10%",
             "SO10%"});
  std::vector<double> Sums(6, 0);
  size_t Count = 0;

  for (const BenchmarkSpec &Spec : benchbaseSuite()) {
    RunConfig C = Base;
    // Median of repeated runs tames scheduler noise on small hosts; the
    // paper's 1-hour stress runs average it out instead.
    auto Measure = [&](rt::Mode M, double Rate) {
      Analysis.SamplingRate = Rate;
      C.Rt = Analysis.runtimeConfig(M);
      double Best = -1.0;
      for (int Rep = 0; Rep < 3; ++Rep) {
        double P50 = runBenchmark(Spec, C).LatencyNs.P50;
        if (Best < 0 || P50 < Best)
          Best = P50;
      }
      return Best;
    };
    runBenchmark(Spec, C); // Warmup: pages, caches, allocator.
    double EtLat = Measure(rt::Mode::ET, 0);

    std::vector<std::string> Row = {Spec.Name};
    std::vector<double> Cells(6, 0);
    for (size_t RI = 0; RI < 3; ++RI) {
      double AoSt = Measure(rt::Mode::ST, Rates[RI]) - EtLat;
      double AoSu = Measure(rt::Mode::SU, Rates[RI]) - EtLat;
      double AoSo = Measure(rt::Mode::SO, Rates[RI]) - EtLat;
      // Guard tiny denominators (a benchmark where sampling analysis is
      // already in the noise).
      double Denom = std::max(AoSt, EtLat * 0.02);
      Cells[RI * 2 + 0] = 1.0 - AoSu / Denom;
      Cells[RI * 2 + 1] = 1.0 - AoSo / Denom;
    }
    // Column order: SU0.3, SO0.3, SU3, SO3, SU10, SO10.
    for (size_t I = 0; I < 6; ++I) {
      Row.push_back(Table::fmt(Cells[I], 2));
      Sums[I] += Cells[I];
    }
    ++Count;
    Out.addRow(Row);
  }

  std::vector<std::string> MeanRow = {"mean"};
  for (size_t I = 0; I < 6; ++I)
    MeanRow.push_back(
        Table::fmt(safeRatio(Sums[I], static_cast<double>(Count)), 2));
  Out.addRow(MeanRow);

  finish(Out, O);
  std::printf("\npaper shape: avg ~0.37 at 0.3%%, ~0.17-0.19 at 3%%, ~0.03 "
              "at 10%%; a few mildly negative entries are expected.\n");

  // -- Lane parallelism: the --workers axis ------------------------------
  // Record one interleaving of the suite's first workload (ET mode: full
  // instrumentation, no analysis perturbing the schedule), then replay it
  // through the 4-lane comparison session (FT, ST, SO, SU). Sequential
  // mode pays the sum of the lanes; parallel mode approaches the slowest
  // lane. Results are bit-identical at every worker count — the table's
  // last column re-checks that on this very run.
  const BenchmarkSpec &RecSpec = benchbaseSuite().front();
  RunConfig RecC = Base;
  Analysis.SamplingRate = 0;
  Analysis.RecordTrace = true;
  RecC.Rt = Analysis.runtimeConfig(rt::Mode::ET);
  Trace Rec = runBenchmark(RecSpec, RecC).Recorded;
  Analysis.RecordTrace = false;
  std::printf("\n== 4-lane offline session over the recorded '%s' workload "
              "(%zu events) ==\n\n",
              RecSpec.Name.c_str(), Rec.size());

  std::vector<size_t> WorkerAxis = {0, 1, 2, 4};
  if (O.Workers &&
      std::find(WorkerAxis.begin(), WorkerAxis.end(), O.Workers) ==
          WorkerAxis.end())
    WorkerAxis.push_back(O.Workers);

  const double LaneRates[2] = {0.03, 1.0};
  Table Par({"workers", "wall ms (3%)", "speedup", "wall ms (100%)",
             "speedup", "identical"});
  JsonReport Json("fig5b", O);
  double BaseMs[2] = {0, 0};
  api::SessionResult Ref[2];
  bool AllIdentical = true;
  for (size_t W : WorkerAxis) {
    double Ms[2] = {0, 0};
    bool Same = true;
    for (int RI = 0; RI < 2; ++RI) {
      api::SessionConfig Cfg;
      Cfg.Engines = {EngineKind::FastTrack, EngineKind::SamplingNaive,
                     EngineKind::SamplingO, EngineKind::SamplingU};
      Cfg.SamplingRate = LaneRates[RI]; // 1.0 degrades to always-sample.
      Cfg.Seed = O.Seed;
      Cfg.NumWorkers = W;
      uint64_t Best = ~uint64_t(0);
      api::SessionResult R;
      for (int Rep = 0; Rep < 3; ++Rep) {
        R = api::AnalysisSession(Cfg).run(Rec);
        Best = std::min(Best, R.WallNanos);
      }
      Ms[RI] = static_cast<double>(Best) / 1e6;
      std::string Series =
          "workers=" + std::to_string(W) + ",session"; // Whole-session row.
      Metrics SessionAgg; // Engine rows carry the real metrics below.
      Json.addRow(Series, "all-lanes", LaneRates[RI], R.EventsProcessed,
                  Best, SessionAgg);
      for (const api::EngineRun &E : R.Engines)
        Json.addRow("workers=" + std::to_string(W), E.Engine, LaneRates[RI],
                    R.EventsProcessed, E.WallNanos, E.Stats);
      if (W == 0) {
        BaseMs[RI] = Ms[RI];
        Ref[RI] = api::stripTiming(std::move(R));
      } else {
        Same = Same && api::stripTiming(std::move(R)) == Ref[RI];
      }
    }
    AllIdentical = AllIdentical && Same;
    Par.addRow({std::to_string(W), Table::fmt(Ms[0], 2),
                Table::fmt(safeRatio(BaseMs[0], Ms[0]), 2),
                Table::fmt(Ms[1], 2),
                Table::fmt(safeRatio(BaseMs[1], Ms[1]), 2),
                W == 0 ? "baseline" : (Same ? "yes" : "NO")});
  }
  Par.print();
  std::printf("\nexpected: >= 2x at --workers 4 with >= 4 usable cores "
              "(this host has %u); bit-identical results at every worker "
              "count.\n",
              std::thread::hardware_concurrency());

  // -- Intra-engine sharding: the --shards axis --------------------------
  // The lane axis above plateaus for a *single* engine: one lane is one
  // serial detector no matter how many workers idle. Sharding the variable
  // space (SessionConfig::Shards, VarId % S routing) splits that one lane
  // into S schedulable shard detectors, so one engine on one trace finally
  // uses the cores. FT and SO at 100% sampling — access work dominating —
  // are the series the paper-scale "fleet trace in minutes" claim rests
  // on; results stay bit-identical at every shard count (re-checked here).
  std::printf("\n== single-engine sharded session over the same recorded "
              "workload (100%% sampling) ==\n\n");

  std::vector<size_t> ShardAxis = {0, 2, 4};
  if (O.Shards &&
      std::find(ShardAxis.begin(), ShardAxis.end(), O.Shards) ==
          ShardAxis.end())
    ShardAxis.push_back(O.Shards);

  Table Shard({"engine", "shards", "workers", "wall ms", "speedup",
               "ns/event", "identical"});
  for (EngineKind K : {EngineKind::FastTrack, EngineKind::SamplingO}) {
    double ShardBaseMs = 0;
    api::SessionResult ShardRef;
    for (size_t S : ShardAxis) {
      api::SessionConfig Cfg;
      Cfg.Engines = {K};
      Cfg.SamplingRate = 1.0; // Degrades to always-sample.
      Cfg.Seed = O.Seed;
      Cfg.Shards = S;
      Cfg.NumWorkers = S; // One worker per shard (clamped by the session).
      uint64_t Best = ~uint64_t(0);
      api::SessionResult R;
      for (int Rep = 0; Rep < 3; ++Rep) {
        R = api::AnalysisSession(Cfg).run(Rec);
        Best = std::min(Best, R.WallNanos);
      }
      double Ms = static_cast<double>(Best) / 1e6;
      const api::EngineRun &E = R.Engines.front();
      std::string Engine(E.Engine);
      uint64_t Events = R.EventsProcessed;
      Json.addRow("shards=" + std::to_string(S) + ",single-engine",
                  E.Engine, 1.0, Events, Best, E.Stats);
      bool Same = true;
      if (S == 0) {
        ShardBaseMs = Ms;
        ShardRef = api::stripTiming(std::move(R));
      } else {
        Same = api::stripTiming(std::move(R)) == ShardRef;
        AllIdentical = AllIdentical && Same;
      }
      Shard.addRow({Engine, std::to_string(S), std::to_string(S),
                    Table::fmt(Ms, 2),
                    Table::fmt(safeRatio(ShardBaseMs, Ms), 2),
                    Table::fmt(safeRatio(static_cast<double>(Best),
                                         static_cast<double>(Events)),
                               2),
                    S == 0 ? "baseline" : (Same ? "yes" : "NO")});
    }
  }
  Shard.print();
  std::printf("\nexpected: the single-engine ns/event plateau breaks past "
              "--shards 4 on >= 4 usable cores (this host has %u); "
              "bit-identical results at every shard count.\n",
              std::thread::hardware_concurrency());
  // -- Self-profile attachment + chrome trace -----------------------------
  // One profiled re-run of the 4-lane session: its merged span tree rides
  // along in the bench JSON ("profile", not gated) and, with --trace, the
  // span timeline exports as chrome Trace Event Format.
  {
    api::SessionConfig Cfg;
    Cfg.Engines = {EngineKind::FastTrack, EngineKind::SamplingNaive,
                   EngineKind::SamplingO, EngineKind::SamplingU};
    Cfg.SamplingRate = 0.03;
    Cfg.Seed = O.Seed;
    Cfg.NumWorkers = O.Workers;
    Cfg.Shards = O.Shards;
    Cfg.ProfilingEnabled = true;
    api::AnalysisSession Sess(Cfg);
    api::SessionResult PR = Sess.run(Rec);
    Json.attachProfile(PR.Profile);
    if (!O.TracePath.empty()) {
      std::unique_ptr<prof::Profiler> P = Sess.takeProfiler();
      writeTraceIfRequested(O, prof::toChromeTrace(*P, "fig5b-session"));
    }
  }

  // -- Disabled-profiler overhead contract --------------------------------
  // With profiling off, the session's only profiler cost is a null Tree*
  // check per unit per batch (plus two for the ingest/finish probes).
  // Measure that branch directly and bound the implied per-event cost at
  // <= 1% of this run's own 100%-sampling ns/event. Skipped under TSan —
  // instrumented clock reads are orders of magnitude off.
  bool OverheadOk = true;
  {
#if defined(__SANITIZE_THREAD__)
#define SAMPLETRACK_BENCH_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SAMPLETRACK_BENCH_TSAN 1
#endif
#endif
#if defined(SAMPLETRACK_BENCH_TSAN)
    constexpr bool TsanBuild = true;
#else
    constexpr bool TsanBuild = false;
#endif
    prof::Tree *volatile NullTree = nullptr;
    constexpr uint64_t Iters = 1 << 22;
    uint64_t T0 = prof::nowNanos();
    for (uint64_t I = 0; I < Iters; ++I)
      prof::Scope Sc(NullTree, "off");
    uint64_t ScopeNanos = prof::nowNanos() - T0;
    double PerScope = static_cast<double>(ScopeNanos) / Iters;
    // 4 lanes + the ingest and finish probes, amortized over one batch.
    double ChecksPerEvent = 6.0 / 4096.0;
    double OverheadNs = PerScope * ChecksPerEvent;
    double SessionNsPerEvent =
        safeRatio(BaseMs[1] * 1e6, static_cast<double>(Rec.size()));
    double Pct = 100.0 * safeRatio(OverheadNs, SessionNsPerEvent);
    std::printf("\ndisabled-profiler hot path: %.2f ns/scope-check, %.5f "
                "ns/event implied (%.3f%% of the sequential 100%%-sampling "
                "session)%s\n",
                PerScope, OverheadNs, Pct,
                TsanBuild ? " [TSan build: threshold not enforced]" : "");
    char Extra[160];
    std::snprintf(Extra, sizeof(Extra),
                  "\"overheadNsPerEvent\": %.5f, \"overheadPct\": %.4f",
                  OverheadNs, Pct);
    Metrics None;
    Json.addRow("prof-overhead", "disabled-scope", 0, Iters, ScopeNanos,
                None, Extra);
    if (!TsanBuild && Pct > 1.0) {
      std::fprintf(stderr, "FAIL: disabled-profiler overhead %.3f%% exceeds "
                           "the 1%% budget\n",
                   Pct);
      OverheadOk = false;
    }
  }

  Json.writeIfRequested(O);
  if (!OverheadOk)
    return 1;
  if (!AllIdentical) {
    std::fprintf(stderr, "FAIL: parallel lanes diverged from sequential "
                         "results (see 'identical' column)\n");
    return 1; // Fails CI's bench-smoke step on a determinism regression.
  }
  return 0;
}
