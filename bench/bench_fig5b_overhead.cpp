//===- bench/bench_fig5b_overhead.cpp - Fig. 5(b) reproduction --------------=/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Figure 5(b): improvement in *algorithmic overhead* of SU and SO over the
/// naive sampling engine ST, per sampling rate:
///
///   AO(S)        = latency(S) - latency(ET)
///   improvement  = 1 - AO(S) / AO(ST)
///
/// Expected shape (Section 6.2.4): largest gains at 0.3% (~37% average for
/// both SU and SO, up to >60% on some benchmarks), shrinking at 3%
/// (~17-19%) and nearly vanishing at 10% (~3%); occasional small negative
/// values on benchmarks with few synchronizations per access.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include <thread>

using namespace sampletrack;
using namespace sampletrack::workload;
using namespace stbench;

int main(int argc, char **argv) {
  Options O = Options::parse(argc, argv);
  std::printf(
      "== Fig 5(b): improvement in algorithmic overhead of SU/SO vs ST ==\n\n");

  RunConfig Base;
  Base.NumClients =
      std::max<size_t>(2, std::min<size_t>(4, std::thread::hardware_concurrency()));
  Base.RequestsPerClient = static_cast<size_t>(2500 * O.Scale) + 200;
  Base.Seed = O.Seed;

  // One SessionConfig shapes every runtime in the ladder. TSan v3 uses
  // fixed-size clocks (256 slots; the paper disables slot preemption); we
  // use 64-slot clocks, the paper's concurrently-runnable thread count, so
  // O(T) analysis costs are realistic.
  api::SessionConfig Analysis;
  Analysis.MaxThreads = 64;
  Analysis.Seed = O.Seed;

  const double Rates[] = {0.003, 0.03, 0.10};

  Table Out({"benchmark", "SU0.3%", "SO0.3%", "SU3%", "SO3%", "SU10%",
             "SO10%"});
  std::vector<double> Sums(6, 0);
  size_t Count = 0;

  for (const BenchmarkSpec &Spec : benchbaseSuite()) {
    RunConfig C = Base;
    // Median of repeated runs tames scheduler noise on small hosts; the
    // paper's 1-hour stress runs average it out instead.
    auto Measure = [&](rt::Mode M, double Rate) {
      Analysis.SamplingRate = Rate;
      C.Rt = Analysis.runtimeConfig(M);
      double Best = -1.0;
      for (int Rep = 0; Rep < 3; ++Rep) {
        double P50 = runBenchmark(Spec, C).LatencyNs.P50;
        if (Best < 0 || P50 < Best)
          Best = P50;
      }
      return Best;
    };
    runBenchmark(Spec, C); // Warmup: pages, caches, allocator.
    double EtLat = Measure(rt::Mode::ET, 0);

    std::vector<std::string> Row = {Spec.Name};
    std::vector<double> Cells(6, 0);
    for (size_t RI = 0; RI < 3; ++RI) {
      double AoSt = Measure(rt::Mode::ST, Rates[RI]) - EtLat;
      double AoSu = Measure(rt::Mode::SU, Rates[RI]) - EtLat;
      double AoSo = Measure(rt::Mode::SO, Rates[RI]) - EtLat;
      // Guard tiny denominators (a benchmark where sampling analysis is
      // already in the noise).
      double Denom = std::max(AoSt, EtLat * 0.02);
      Cells[RI * 2 + 0] = 1.0 - AoSu / Denom;
      Cells[RI * 2 + 1] = 1.0 - AoSo / Denom;
    }
    // Column order: SU0.3, SO0.3, SU3, SO3, SU10, SO10.
    for (size_t I = 0; I < 6; ++I) {
      Row.push_back(Table::fmt(Cells[I], 2));
      Sums[I] += Cells[I];
    }
    ++Count;
    Out.addRow(Row);
  }

  std::vector<std::string> MeanRow = {"mean"};
  for (size_t I = 0; I < 6; ++I)
    MeanRow.push_back(Table::fmt(Sums[I] / Count, 2));
  Out.addRow(MeanRow);

  finish(Out, O);
  std::printf("\npaper shape: avg ~0.37 at 0.3%%, ~0.17-0.19 at 3%%, ~0.03 "
              "at 10%%; a few mildly negative entries are expected.\n");
  return 0;
}
