//===- bench/bench_ablation_localepoch.cpp - Section 6.1 ablation -----------=/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation A2 (DESIGN.md): the local-epoch ("dirty epoch") optimization of
/// Section 6.1 carries the thread's own clock component out-of-line so
/// publishing a new epoch never forces a deep copy. This bench compares SO
/// with and without the optimization: deep copies and total timestamping
/// work, per sampling rate.
///
/// Expected shape: without the optimization, every flush of a shared list
/// costs a deep copy, so deep copies rise sharply (roughly one per
/// RelAfter_S release); with it they are driven by genuine cross-thread
/// communication only.
///
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

using namespace sampletrack;
using namespace stbench;

int main(int argc, char **argv) {
  Options O = Options::parse(argc, argv);
  std::printf("== Ablation: SO local-epoch optimization on/off ==\n\n");

  const double Rates[] = {0.003, 0.03, 0.10, 1.0};
  const char *RateNames[] = {"0.3%", "3%", "10%", "100%"};

  Table Out({"benchmark", "rate", "deep copies (opt)", "deep copies (off)",
             "work (opt)", "work (off)", "copy reduction"});

  for (const char *Name : {"linkedlist", "bufwriter", "derby", "hsqldb",
                           "cassandra", "bubblesort"}) {
    Trace Base = generateSuiteTrace(Name, O.Scale, O.Seed);
    for (size_t RI = 0; RI < 4; ++RI) {
      Trace T = Base;
      rapid::markTrace(T, Rates[RI], O.Seed * 43 + RI);
      rapid::RunResult On = runMarked(T, EngineKind::SamplingO, O.Workers);
      rapid::RunResult Off = runMarked(T, EngineKind::SamplingONoEpochOpt, O.Workers);
      double Reduction =
          Off.Stats.DeepCopies
              ? 1.0 - static_cast<double>(On.Stats.DeepCopies) /
                          static_cast<double>(Off.Stats.DeepCopies)
              : 0.0;
      Out.addRow({Name, RateNames[RI],
                  std::to_string(On.Stats.DeepCopies),
                  std::to_string(Off.Stats.DeepCopies),
                  std::to_string(On.Stats.totalTimestampingWork()),
                  std::to_string(Off.Stats.totalTimestampingWork()),
                  Table::fmt(Reduction, 3)});
    }
  }

  finish(Out, O);
  return 0;
}
