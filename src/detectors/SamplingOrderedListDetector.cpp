//===- detectors/SamplingOrderedListDetector.cpp - SO -------------------------/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/detectors/SamplingOrderedListDetector.h"

using namespace sampletrack;

SamplingOrderedListDetector::SamplingOrderedListDetector(
    size_t NumThreads, bool LocalEpochOpt, HistoryKind Histories)
    : SamplingDetectorBase(NumThreads, Histories),
      LocalEpochOpt(LocalEpochOpt) {
  Threads.resize(NumThreads);
  for (ThreadState &TS : Threads) {
    TS.O = Pool.acquire();
    TS.O->reset(NumThreads);
    TS.U = VectorClock(NumThreads);
  }
}

void SamplingOrderedListDetector::processBatch(
    std::span<const Event> Events, std::span<const uint8_t> Sampled) {
  if (shardCount())
    batchDispatchSharded</*SkipUnsampled=*/true>(*this, Events, Sampled);
  else
    batchDispatch</*SkipUnsampled=*/true>(*this, Events, Sampled);
}

SamplingOrderedListDetector::SyncState &
SamplingOrderedListDetector::syncState(SyncId S) {
  growToIndex(Syncs, S);
  return Syncs[S];
}

void SamplingOrderedListDetector::ensureOwned(ThreadId T) {
  ThreadState &TS = Threads[T];
  if (!TS.SharedFlag)
    return;
  if (TS.O.unique()) {
    // Every published reference has been dropped (the snapshots were
    // overwritten by newer releases): mutate in place, no copy owed.
    TS.SharedFlag = false;
    return;
  }
  ++Stats.CowBreaks;
  bool Reused = false;
  ListRef Copy = Pool.acquire(&Reused);
  Stats.PoolHits += Reused ? 1 : 0;
  *Copy = *TS.O; // Flat copy; a recycled buffer reuses its node storage.
  TS.O = std::move(Copy);
  TS.SharedFlag = false;
  ++Stats.DeepCopies;
  ++Stats.FullClockOps;
}

void SamplingOrderedListDetector::publishLocalTime(ThreadId T,
                                                   ClockValue Time) {
  ThreadState &TS = Threads[T];
  TS.OwnTime = Time;
  TS.U.bump(T);
  if (!LocalEpochOpt) {
    // Without the Section 6.1 optimization the epoch lands in the list
    // itself, which may force a deep copy right here.
    ensureOwned(T);
    TS.O->set(T, Time);
  }
}

unsigned SamplingOrderedListDetector::applyEntry(ThreadId T, ThreadId Of,
                                                 ClockValue Val) {
  // A thread's own component is authored locally; foreign copies of it can
  // never be fresher.
  if (Of == T)
    return 0;
  ThreadState &TS = Threads[T];
  if (Val <= TS.O->get(Of))
    return 0;
  ensureOwned(T);
  TS.O->set(Of, Val);
  return 1;
}

void SamplingOrderedListDetector::acquireLike(ThreadId T, SyncId L) {
  ++Stats.AcquiresTotal;
  SyncState &S = syncState(L);
  if (S.MultiSource) {
    joinFromVectorClock(T, S.C, &S.U);
    ++Stats.AcquiresProcessed;
    return;
  }
  if (S.LastReleaser == NoThread) {
    ++Stats.AcquiresSkipped;
    return;
  }
  ThreadState &TS = Threads[T];
  ClockValue Known = TS.U.get(S.LastReleaser);
  // Line 7 of Algorithm 4: scalar freshness check.
  if (S.UScalar <= Known) {
    ++Stats.AcquiresSkipped;
    return;
  }
  ++Stats.AcquiresProcessed;
  ClockValue D = S.UScalar - Known;
  TS.U.set(S.LastReleaser, S.UScalar);

  unsigned Changed = 0;
  // The releaser's own component travels as a scalar (LocalEpochOpt keeps
  // it out of the shared list); apply it first.
  ++Stats.EntriesTraversed;
  Changed += applyEntry(T, S.LastReleaser, S.OwnTimeAtRelease);
  // Only the first D list entries can be ahead of us (Proposition 6).
  S.Ref->visitPrefix(static_cast<size_t>(D),
                     [&](ThreadId Of, ClockValue Val) {
                       ++Stats.EntriesTraversed;
                       Changed += applyEntry(T, Of, Val);
                     });
  Stats.TraversalOpportunities += numThreads();
  TS.U.bump(T, Changed);
}

void SamplingOrderedListDetector::releaseLike(ThreadId T, SyncId L) {
  ++Stats.ReleasesTotal;
  SyncState &S = syncState(L);
  flushLocalEpoch(T);
  ThreadState &TS = Threads[T];
  // Lines 24-27 of Algorithm 4: O(1) shallow publication. Snapshot
  // validity relies on copy-on-write: once shared, the list is immutable.
  S.Ref = TS.O;
  S.LastReleaser = T;
  S.UScalar = TS.U.get(T);
  S.OwnTimeAtRelease = TS.OwnTime;
  S.MultiSource = false;
  TS.SharedFlag = true;
  ++Stats.ShallowCopies;
}

void SamplingOrderedListDetector::joinFromVectorClock(ThreadId T,
                                                      const VectorClock &C,
                                                      const VectorClock *U) {
  ThreadState &TS = Threads[T];
  if (U) {
    TS.U.joinWith(*U);
    ++Stats.FullClockOps;
  }
  unsigned Changed = 0;
  for (ThreadId Of = 0; Of < numThreads(); ++Of) {
    ++Stats.EntriesTraversed;
    Changed += applyEntry(T, Of, C.get(Of));
  }
  Stats.TraversalOpportunities += numThreads();
  ++Stats.FullClockOps;
  TS.U.bump(T, Changed);
}

void SamplingOrderedListDetector::convertToMultiSource(SyncState &S) {
  if (S.MultiSource)
    return;
  if (S.C.size() == 0) {
    S.C = VectorClock(numThreads());
    S.U = VectorClock(numThreads());
  }
  if (S.Ref) {
    // Materialize the single-source snapshot, honoring the out-of-line
    // releaser component.
    S.Ref->toVectorClock(S.C, S.LastReleaser, S.OwnTimeAtRelease);
    S.U.clear();
    S.U.set(S.LastReleaser, S.UScalar);
    Stats.FullClockOps += 2;
    S.Ref.reset();
  }
  S.MultiSource = true;
}

void SamplingOrderedListDetector::onAcquire(ThreadId T, SyncId L) {
  acquireLike(T, L);
}

void SamplingOrderedListDetector::onRelease(ThreadId T, SyncId L) {
  releaseLike(T, L);
}

void SamplingOrderedListDetector::onFork(ThreadId Parent, ThreadId Child) {
  ++Stats.ReleasesTotal;
  ++Stats.ReleasesProcessed;
  flushLocalEpoch(Parent);
  // Direct thread-to-thread edge: the child imports the parent's effective
  // clock (list plus out-of-line own component) and freshness clock.
  ThreadState &P = Threads[Parent];
  ThreadState &C = Threads[Child];
  C.U.joinWith(P.U);
  ++Stats.FullClockOps;
  unsigned Changed = 0;
  for (ThreadId Of = 0; Of < numThreads(); ++Of) {
    ++Stats.EntriesTraversed;
    ClockValue Val = (Of == Parent) ? P.OwnTime : P.O->get(Of);
    Changed += applyEntry(Child, Of, Val);
  }
  Stats.TraversalOpportunities += numThreads();
  ++Stats.FullClockOps;
  C.U.bump(Child, Changed);
}

void SamplingOrderedListDetector::onJoin(ThreadId Parent, ThreadId Child) {
  ++Stats.AcquiresTotal;
  ++Stats.AcquiresProcessed;
  flushLocalEpoch(Child);
  ThreadState &P = Threads[Parent];
  ThreadState &C = Threads[Child];
  P.U.joinWith(C.U);
  ++Stats.FullClockOps;
  unsigned Changed = 0;
  for (ThreadId Of = 0; Of < numThreads(); ++Of) {
    ++Stats.EntriesTraversed;
    ClockValue Val = (Of == Child) ? C.OwnTime : C.O->get(Of);
    Changed += applyEntry(Parent, Of, Val);
  }
  Stats.TraversalOpportunities += numThreads();
  ++Stats.FullClockOps;
  P.U.bump(Parent, Changed);
}

void SamplingOrderedListDetector::onReleaseStore(ThreadId T, SyncId S) {
  // A shallow snapshot implements replacement semantics exactly, so no
  // monotonicity precondition is needed (appendix A.2).
  releaseLike(T, S);
}

void SamplingOrderedListDetector::onReleaseJoin(ThreadId T, SyncId S) {
  ++Stats.ReleasesTotal;
  ++Stats.ReleasesProcessed;
  SyncState &St = syncState(S);
  flushLocalEpoch(T);
  convertToMultiSource(St);
  ThreadState &TS = Threads[T];
  // Blend this thread's effective clock into the owned content.
  for (ThreadId Of = 0; Of < numThreads(); ++Of) {
    ClockValue Val = (Of == T) ? TS.OwnTime : TS.O->get(Of);
    if (Val > St.C.get(Of))
      St.C.set(Of, Val);
  }
  St.U.joinWith(TS.U);
  Stats.FullClockOps += 2;
}

void SamplingOrderedListDetector::onAcquireLoad(ThreadId T, SyncId S) {
  acquireLike(T, S);
}
