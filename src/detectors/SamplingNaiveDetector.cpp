//===- detectors/SamplingNaiveDetector.cpp - ST -------------------------------/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/detectors/SamplingNaiveDetector.h"

using namespace sampletrack;

SamplingNaiveDetector::SamplingNaiveDetector(size_t NumThreads,
                                             HistoryKind Histories)
    : SamplingDetectorBase(NumThreads, Histories) {
  // Unlike Djit+, sampling clocks start at bottom: C_t(t) tracks the local
  // time of the last *sampled* event, not the live epoch (Algorithm 2).
  Threads.assign(NumThreads, VectorClock(NumThreads));
}

void SamplingNaiveDetector::processBatch(std::span<const Event> Events,
                                         std::span<const uint8_t> Sampled) {
  if (shardCount())
    batchDispatchSharded</*SkipUnsampled=*/true>(*this, Events, Sampled);
  else
    batchDispatch</*SkipUnsampled=*/true>(*this, Events, Sampled);
}

VectorClock &SamplingNaiveDetector::syncClock(SyncId S) {
  if (S >= Syncs.size()) // Guard: no Fill construction on the hot path.
    growToIndexFilled(Syncs, S, VectorClock(numThreads()));
  return Syncs[S];
}

void SamplingNaiveDetector::onAcquire(ThreadId T, SyncId L) {
  ++Stats.AcquiresTotal;
  ++Stats.AcquiresProcessed;
  ++Stats.FullClockOps;
  Threads[T].joinWith(syncClock(L));
}

void SamplingNaiveDetector::onRelease(ThreadId T, SyncId L) {
  ++Stats.ReleasesTotal;
  ++Stats.ReleasesProcessed;
  flushLocalEpoch(T);
  ++Stats.FullClockOps;
  syncClock(L).copyFrom(Threads[T]);
}

void SamplingNaiveDetector::onFork(ThreadId Parent, ThreadId Child) {
  // A fork is a release-like HB edge from parent to child: flush the
  // parent's epoch so the child sees any sampled events that precede the
  // fork, then communicate directly thread-to-thread.
  ++Stats.ReleasesTotal;
  ++Stats.ReleasesProcessed;
  flushLocalEpoch(Parent);
  ++Stats.FullClockOps;
  Threads[Child].joinWith(Threads[Parent]);
}

void SamplingNaiveDetector::onJoin(ThreadId Parent, ThreadId Child) {
  ++Stats.AcquiresTotal;
  ++Stats.AcquiresProcessed;
  flushLocalEpoch(Child);
  ++Stats.FullClockOps;
  Threads[Parent].joinWith(Threads[Child]);
}

void SamplingNaiveDetector::onReleaseStore(ThreadId T, SyncId S) {
  ++Stats.ReleasesTotal;
  ++Stats.ReleasesProcessed;
  flushLocalEpoch(T);
  ++Stats.FullClockOps;
  syncClock(S).copyFrom(Threads[T]);
}

void SamplingNaiveDetector::onReleaseJoin(ThreadId T, SyncId S) {
  ++Stats.ReleasesTotal;
  ++Stats.ReleasesProcessed;
  flushLocalEpoch(T);
  ++Stats.FullClockOps;
  syncClock(S).joinWith(Threads[T]);
}

void SamplingNaiveDetector::onAcquireLoad(ThreadId T, SyncId S) {
  ++Stats.AcquiresTotal;
  ++Stats.AcquiresProcessed;
  ++Stats.FullClockOps;
  Threads[T].joinWith(syncClock(S));
}
