//===- detectors/Detector.cpp - Detector interface --------------------------=//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/detectors/Detector.h"

#include <cassert>
#include <sstream>

using namespace sampletrack;

void Detector::processEvent(const Event &E, bool Sampled) {
  assert(ShardCnt <= 1 && "sharded instances are driven via processBatch / "
                          "processBatchGeneric, not processEvent");
#ifndef NDEBUG
  DriverScope Guard(*this); // Lane-affinity: no concurrent re-entry.
#endif
  ++Stats.Events;
  switch (E.Kind) {
  case OpKind::Read:
    ++Stats.Accesses;
    if (Sampled)
      ++Stats.SampledAccesses;
    onRead(E.Tid, E.var(), Sampled);
    break;
  case OpKind::Write:
    ++Stats.Accesses;
    if (Sampled)
      ++Stats.SampledAccesses;
    onWrite(E.Tid, E.var(), Sampled);
    break;
  case OpKind::Acquire:
    onAcquire(E.Tid, E.sync());
    break;
  case OpKind::Release:
    onRelease(E.Tid, E.sync());
    break;
  case OpKind::Fork:
    onFork(E.Tid, E.childThread());
    break;
  case OpKind::Join:
    onJoin(E.Tid, E.childThread());
    break;
  case OpKind::ReleaseStore:
    onReleaseStore(E.Tid, E.sync());
    break;
  case OpKind::ReleaseJoin:
    onReleaseJoin(E.Tid, E.sync());
    break;
  case OpKind::AcquireLoad:
    onAcquireLoad(E.Tid, E.sync());
    break;
  }
  ++Position;
}

void Detector::processEventSharded(const Event &E, bool Sampled) {
#ifndef NDEBUG
  DriverScope Guard(*this); // Lane-affinity: no concurrent re-entry.
#endif
  switch (E.Kind) {
  case OpKind::Read:
  case OpKind::Write:
    if (static_cast<uint32_t>(E.var() % ShardCnt) == ShardIdx) {
      ++Stats.Events;
      ++Stats.Accesses;
      if (Sampled)
        ++Stats.SampledAccesses;
      if (E.Kind == OpKind::Read)
        onRead(E.Tid, E.var(), Sampled);
      else
        onWrite(E.Tid, E.var(), Sampled);
    } else if (Sampled) {
      onForeignSampledAccess(E.Tid);
    }
    break;
  default: {
    // Sync events replicate into every shard for their clock-state effect;
    // only shard 0 accounts for them (batchDispatchSharded explains why the
    // shard-summed metrics then match sequential field-for-field).
    const bool CountsSync = ShardIdx == 0;
    Metrics Saved;
    if (!CountsSync)
      Saved = Stats;
    else
      ++Stats.Events;
    switch (E.Kind) {
    case OpKind::Acquire:
      onAcquire(E.Tid, E.sync());
      break;
    case OpKind::Release:
      onRelease(E.Tid, E.sync());
      break;
    case OpKind::Fork:
      onFork(E.Tid, E.childThread());
      break;
    case OpKind::Join:
      onJoin(E.Tid, E.childThread());
      break;
    case OpKind::ReleaseStore:
      onReleaseStore(E.Tid, E.sync());
      break;
    case OpKind::ReleaseJoin:
      onReleaseJoin(E.Tid, E.sync());
      break;
    case OpKind::AcquireLoad:
      onAcquireLoad(E.Tid, E.sync());
      break;
    default:
      break; // Read/Write handled above.
    }
    if (!CountsSync)
      Stats = Saved;
    break;
  }
  }
  ++Position;
}

void Detector::processBatch(std::span<const Event> Events,
                            std::span<const uint8_t> Sampled) {
  processBatchGeneric(Events, Sampled);
}

void Detector::processBatchGeneric(std::span<const Event> Events,
                                   std::span<const uint8_t> Sampled) {
  assert(Events.size() == Sampled.size() && "one decision per event");
  if (ShardCnt >= 2) {
    for (size_t I = 0, N = Events.size(); I < N; ++I)
      processEventSharded(Events[I], Sampled[I] != 0);
    return;
  }
  for (size_t I = 0, N = Events.size(); I < N; ++I)
    processEvent(Events[I], Sampled[I] != 0);
}

std::string Metrics::str() const {
  std::ostringstream OS;
  OS << "events=" << Events << " accesses=" << Accesses
     << " sampled=" << SampledAccesses << '\n'
     << "acquires: total=" << AcquiresTotal << " skipped=" << AcquiresSkipped
     << " processed=" << AcquiresProcessed << '\n'
     << "releases: total=" << ReleasesTotal << " skipped=" << ReleasesSkipped
     << " processed=" << ReleasesProcessed << '\n'
     << "copies: shallow=" << ShallowCopies << " deep=" << DeepCopies
     << " cow-breaks=" << CowBreaks << " pool-hits=" << PoolHits << '\n'
     << "ordered-list: traversed=" << EntriesTraversed
     << " opportunities=" << TraversalOpportunities << '\n'
     << "full-clock ops=" << FullClockOps << " race checks=" << RaceChecks
     << " races=" << RacesDeclared << '\n';
  return OS.str();
}
