//===- detectors/Detector.cpp - Detector interface --------------------------=//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/detectors/Detector.h"

#include <cassert>
#include <sstream>

using namespace sampletrack;

void Detector::processEvent(const Event &E, bool Sampled) {
#ifndef NDEBUG
  DriverScope Guard(*this); // Lane-affinity: no concurrent re-entry.
#endif
  ++Stats.Events;
  switch (E.Kind) {
  case OpKind::Read:
    ++Stats.Accesses;
    if (Sampled)
      ++Stats.SampledAccesses;
    onRead(E.Tid, E.var(), Sampled);
    break;
  case OpKind::Write:
    ++Stats.Accesses;
    if (Sampled)
      ++Stats.SampledAccesses;
    onWrite(E.Tid, E.var(), Sampled);
    break;
  case OpKind::Acquire:
    onAcquire(E.Tid, E.sync());
    break;
  case OpKind::Release:
    onRelease(E.Tid, E.sync());
    break;
  case OpKind::Fork:
    onFork(E.Tid, E.childThread());
    break;
  case OpKind::Join:
    onJoin(E.Tid, E.childThread());
    break;
  case OpKind::ReleaseStore:
    onReleaseStore(E.Tid, E.sync());
    break;
  case OpKind::ReleaseJoin:
    onReleaseJoin(E.Tid, E.sync());
    break;
  case OpKind::AcquireLoad:
    onAcquireLoad(E.Tid, E.sync());
    break;
  }
  ++Position;
}

void Detector::processBatch(std::span<const Event> Events,
                            std::span<const uint8_t> Sampled) {
  processBatchGeneric(Events, Sampled);
}

void Detector::processBatchGeneric(std::span<const Event> Events,
                                   std::span<const uint8_t> Sampled) {
  assert(Events.size() == Sampled.size() && "one decision per event");
  for (size_t I = 0, N = Events.size(); I < N; ++I)
    processEvent(Events[I], Sampled[I] != 0);
}

std::string Metrics::str() const {
  std::ostringstream OS;
  OS << "events=" << Events << " accesses=" << Accesses
     << " sampled=" << SampledAccesses << '\n'
     << "acquires: total=" << AcquiresTotal << " skipped=" << AcquiresSkipped
     << " processed=" << AcquiresProcessed << '\n'
     << "releases: total=" << ReleasesTotal << " skipped=" << ReleasesSkipped
     << " processed=" << ReleasesProcessed << '\n'
     << "copies: shallow=" << ShallowCopies << " deep=" << DeepCopies
     << " cow-breaks=" << CowBreaks << " pool-hits=" << PoolHits << '\n'
     << "ordered-list: traversed=" << EntriesTraversed
     << " opportunities=" << TraversalOpportunities << '\n'
     << "full-clock ops=" << FullClockOps << " race checks=" << RaceChecks
     << " races=" << RacesDeclared << '\n';
  return OS.str();
}
