//===- detectors/FastTrackDetector.cpp - FastTrack ---------------------------=/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/detectors/FastTrackDetector.h"

using namespace sampletrack;

FastTrackDetector::FastTrackDetector(size_t NumThreads)
    : Detector(NumThreads) {
  Threads.resize(NumThreads);
  for (size_t T = 0; T < NumThreads; ++T) {
    Threads[T] = VectorClock(NumThreads);
    Threads[T].set(static_cast<ThreadId>(T), 1);
  }
}

void FastTrackDetector::processBatch(std::span<const Event> Events,
                                     std::span<const uint8_t> Sampled) {
  // Full analysis processes unsampled accesses too (it ignores S).
  if (shardCount())
    batchDispatchSharded</*SkipUnsampled=*/false>(*this, Events, Sampled);
  else
    batchDispatch</*SkipUnsampled=*/false>(*this, Events, Sampled);
}

VectorClock &FastTrackDetector::syncClock(SyncId S) {
  if (S >= Syncs.size()) // Guard: no Fill construction on the hot path.
    growToIndexFilled(Syncs, S, VectorClock(numThreads()));
  return Syncs[S];
}

FastTrackDetector::VarState &FastTrackDetector::varState(VarId X) {
  // Dense per-shard slot (see Detector::varSlot): identity when unsharded.
  size_t Slot = varSlot(X);
  growToIndex(Vars, Slot);
  return Vars[Slot];
}

void FastTrackDetector::onRead(ThreadId T, VarId X, bool) {
  VarState &V = varState(X);
  Epoch E = epochOf(T);
  // Same-epoch fast path.
  if (!V.ReadShared && V.REpoch == E)
    return;
  if (V.ReadShared && V.RVC.get(T) == E.Clk)
    return;

  ++Stats.RaceChecks;
  if (!epochLeq(V.W, T))
    declareRace(T, X, OpKind::Read);

  if (V.ReadShared) {
    V.RVC.set(T, E.Clk);
    return;
  }
  if (epochLeq(V.REpoch, T)) {
    // Reads stay thread-exclusive.
    V.REpoch = E;
    return;
  }
  // Concurrent reads: promote to a read vector clock.
  if (V.RVC.size() == 0)
    V.RVC = VectorClock(numThreads());
  else
    V.RVC.clear();
  ++Stats.FullClockOps;
  V.RVC.set(V.REpoch.Tid, V.REpoch.Clk);
  V.RVC.set(T, E.Clk);
  V.ReadShared = true;
}

void FastTrackDetector::onWrite(ThreadId T, VarId X, bool) {
  VarState &V = varState(X);
  Epoch E = epochOf(T);
  if (V.W == E)
    return;

  ++Stats.RaceChecks;
  if (!epochLeq(V.W, T))
    declareRace(T, X, OpKind::Write);
  if (V.ReadShared) {
    ++Stats.FullClockOps;
    if (!V.RVC.leq(Threads[T]))
      declareRace(T, X, OpKind::Write);
    // Demote: the new write supersedes the read set.
    V.RVC.clear();
    V.REpoch = Epoch();
    V.ReadShared = false;
  } else if (!(V.REpoch.Clk == 0) && !epochLeq(V.REpoch, T)) {
    declareRace(T, X, OpKind::Write);
  }
  V.W = E;
}

void FastTrackDetector::onAcquire(ThreadId T, SyncId L) {
  ++Stats.AcquiresTotal;
  ++Stats.AcquiresProcessed;
  ++Stats.FullClockOps;
  Threads[T].joinWith(syncClock(L));
}

void FastTrackDetector::onRelease(ThreadId T, SyncId L) {
  ++Stats.ReleasesTotal;
  ++Stats.ReleasesProcessed;
  ++Stats.FullClockOps;
  syncClock(L).copyFrom(Threads[T]);
  incrementLocal(T);
}

void FastTrackDetector::onFork(ThreadId Parent, ThreadId Child) {
  ++Stats.ReleasesTotal;
  ++Stats.ReleasesProcessed;
  ++Stats.FullClockOps;
  Threads[Child].joinWith(Threads[Parent]);
  incrementLocal(Parent);
}

void FastTrackDetector::onJoin(ThreadId Parent, ThreadId Child) {
  ++Stats.AcquiresTotal;
  ++Stats.AcquiresProcessed;
  ++Stats.FullClockOps;
  Threads[Parent].joinWith(Threads[Child]);
  incrementLocal(Child);
}

void FastTrackDetector::onReleaseStore(ThreadId T, SyncId S) {
  ++Stats.ReleasesTotal;
  ++Stats.ReleasesProcessed;
  ++Stats.FullClockOps;
  syncClock(S).copyFrom(Threads[T]);
  incrementLocal(T);
}

void FastTrackDetector::onReleaseJoin(ThreadId T, SyncId S) {
  ++Stats.ReleasesTotal;
  ++Stats.ReleasesProcessed;
  ++Stats.FullClockOps;
  syncClock(S).joinWith(Threads[T]);
  incrementLocal(T);
}

void FastTrackDetector::onAcquireLoad(ThreadId T, SyncId S) {
  ++Stats.AcquiresTotal;
  ++Stats.AcquiresProcessed;
  ++Stats.FullClockOps;
  Threads[T].joinWith(syncClock(S));
}
