//===- detectors/HBClosureOracle.cpp - Reference HB ---------------------------/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/detectors/HBClosureOracle.h"

#include "sampletrack/triage/RaceSink.h"

#include <cassert>

using namespace sampletrack;

HBClosureOracle::HBClosureOracle(const Trace &T) : Tr(T) {
  size_t NT = T.numThreads();
  std::vector<VectorClock> Threads(NT, VectorClock(NT));
  for (ThreadId I = 0; I < NT; ++I)
    Threads[I].set(I, 1);
  std::vector<VectorClock> Syncs(T.numSyncs(), VectorClock(NT));

  Stamps.reserve(T.size());
  Locals.reserve(T.size());

  for (const Event &E : T) {
    ThreadId Tid = E.Tid;
    // Acquire-like edges land before the event is stamped: the event's
    // HB-past includes the matching release.
    switch (E.Kind) {
    case OpKind::Acquire:
    case OpKind::AcquireLoad:
      Threads[Tid].joinWith(Syncs[E.sync()]);
      break;
    case OpKind::Join:
      Threads[Tid].joinWith(Threads[E.childThread()]);
      break;
    default:
      break;
    }

    Stamps.push_back(Threads[Tid]);
    Locals.push_back(Threads[Tid].get(Tid));

    // Release-like edges publish the stamped clock, then advance local
    // time so later events of this thread are distinguishable.
    switch (E.Kind) {
    case OpKind::Release:
    case OpKind::ReleaseStore:
      Syncs[E.sync()].copyFrom(Threads[Tid]);
      Threads[Tid].bump(Tid);
      break;
    case OpKind::ReleaseJoin:
      Syncs[E.sync()].joinWith(Threads[Tid]);
      Threads[Tid].bump(Tid);
      break;
    case OpKind::Fork:
      Threads[E.childThread()].joinWith(Threads[Tid]);
      Threads[Tid].bump(Tid);
      break;
    case OpKind::Join:
      Threads[E.childThread()].bump(E.childThread());
      break;
    default:
      break;
    }
  }
}

bool HBClosureOracle::happensBefore(size_t I, size_t J) const {
  if (I == J)
    return true;
  // The trace order is a linearization of HB (releases precede their
  // matching acquires in the stream), so an event later in the trace can
  // never happen-before an earlier one. Answering backward queries — the
  // tests ask them to assert non-orderings — instead of asserting on them.
  if (I > J)
    return false;
  ThreadId Ti = Tr[I].Tid;
  if (Ti == Tr[J].Tid)
    return true;
  // Proposition 1.
  return Stamps[I].get(Ti) <= Stamps[J].get(Ti);
}

bool HBClosureOracle::conflicting(size_t I, size_t J) const {
  const Event &A = Tr[I];
  const Event &B = Tr[J];
  if (!isAccess(A.Kind) || !isAccess(B.Kind))
    return false;
  if (A.Tid == B.Tid || A.var() != B.var())
    return false;
  return A.Kind == OpKind::Write || B.Kind == OpKind::Write;
}

std::vector<std::pair<size_t, size_t>> HBClosureOracle::allRacePairs() const {
  std::vector<std::pair<size_t, size_t>> Out;
  for (size_t J = 0; J < Tr.size(); ++J)
    for (size_t I = 0; I < J; ++I)
      if (isRace(I, J))
        Out.push_back({I, J});
  return Out;
}

std::vector<std::pair<size_t, size_t>>
HBClosureOracle::markedRacePairs() const {
  std::vector<std::pair<size_t, size_t>> Out;
  for (size_t J = 0; J < Tr.size(); ++J) {
    if (!Tr[J].Marked)
      continue;
    for (size_t I = 0; I < J; ++I)
      if (Tr[I].Marked && isRace(I, J))
        Out.push_back({I, J});
  }
  return Out;
}

std::vector<size_t> HBClosureOracle::racyEvents(bool MarkedOnly) const {
  std::vector<size_t> Out;
  for (size_t J = 0; J < Tr.size(); ++J) {
    if (MarkedOnly && !Tr[J].Marked)
      continue;
    for (size_t I = 0; I < J; ++I) {
      if (MarkedOnly && !Tr[I].Marked)
        continue;
      if (isRace(I, J)) {
        Out.push_back(J);
        break;
      }
    }
  }
  return Out;
}

std::vector<size_t> HBClosureOracle::declaredRaces(bool MarkedOnly) const {
  std::vector<size_t> Out;
  // Last write event per variable; last read event per (variable, thread).
  std::vector<size_t> LastWrite(Tr.numVars(), SIZE_MAX);
  std::vector<std::vector<size_t>> LastRead(Tr.numVars());

  for (size_t J = 0; J < Tr.size(); ++J) {
    const Event &E = Tr[J];
    if (!isAccess(E.Kind))
      continue;
    if (MarkedOnly && !E.Marked)
      continue;
    VarId X = E.var();
    bool Racy = false;
    size_t LW = LastWrite[X];
    if (LW != SIZE_MAX && !happensBefore(LW, J))
      Racy = true;
    if (E.Kind == OpKind::Write && !LastRead[X].empty())
      for (size_t LR : LastRead[X])
        if (LR != SIZE_MAX && !happensBefore(LR, J))
          Racy = true;
    if (Racy)
      Out.push_back(J);

    if (E.Kind == OpKind::Write) {
      LastWrite[X] = J;
    } else {
      if (LastRead[X].empty())
        LastRead[X].assign(Tr.numThreads(), SIZE_MAX);
      LastRead[X][E.Tid] = J;
    }
  }
  return Out;
}

std::vector<ClockValue> HBClosureOracle::samplingLocalTimes() const {
  std::vector<ClockValue> Out;
  Out.reserve(Tr.size());
  std::vector<ClockValue> Esam(Tr.numThreads(), 1);
  std::vector<bool> Dirty(Tr.numThreads(), false);
  for (const Event &E : Tr) {
    Out.push_back(Esam[E.Tid]);
    if (isAccess(E.Kind) && E.Marked)
      Dirty[E.Tid] = true;
    if (isReleaseLike(E.Kind) && Dirty[E.Tid]) {
      ++Esam[E.Tid];
      Dirty[E.Tid] = false;
    }
  }
  return Out;
}

std::vector<VectorClock> HBClosureOracle::samplingTimestamps() const {
  std::vector<ClockValue> Lsam = samplingLocalTimes();
  std::vector<VectorClock> Out(Tr.size(), VectorClock(Tr.numThreads()));
  // Direct evaluation of Eq. 7: C_sam(e)(t) = max L_sam over marked f of
  // thread t with f <=HB e. O(N^2); oracle use only.
  for (size_t J = 0; J < Tr.size(); ++J)
    for (size_t I = 0; I <= J; ++I) {
      const Event &F = Tr[I];
      if (!F.Marked)
        continue;
      if (!happensBefore(I, J))
        continue;
      if (Lsam[I] > Out[J].get(F.Tid))
        Out[J].set(F.Tid, Lsam[I]);
    }
  return Out;
}

std::vector<VectorClock> HBClosureOracle::freshnessTimestamps() const {
  std::vector<VectorClock> Csam = samplingTimestamps();
  size_t NT = Tr.numThreads();

  // VT(e) (Eq. 9): per thread, accumulate the number of components by which
  // consecutive same-thread sampling timestamps differ.
  std::vector<ClockValue> VT(Tr.size(), 0);
  std::vector<ClockValue> Acc(NT, 0);
  std::vector<size_t> LastOfThread(NT, SIZE_MAX);
  for (size_t J = 0; J < Tr.size(); ++J) {
    ThreadId Tid = Tr[J].Tid;
    if (LastOfThread[Tid] != SIZE_MAX) {
      size_t P = LastOfThread[Tid];
      unsigned Diff = 0;
      for (ThreadId K = 0; K < NT; ++K)
        if (Csam[P].get(K) != Csam[J].get(K))
          ++Diff;
      Acc[Tid] += Diff;
    }
    VT[J] = Acc[Tid];
    LastOfThread[Tid] = J;
  }

  // U(e) (Eq. 10): max VT over marked HB-predecessors, per thread.
  std::vector<VectorClock> Out(Tr.size(), VectorClock(NT));
  for (size_t J = 0; J < Tr.size(); ++J)
    for (size_t I = 0; I <= J; ++I) {
      const Event &F = Tr[I];
      if (!F.Marked)
        continue;
      if (!happensBefore(I, J))
        continue;
      if (VT[I] > Out[J].get(F.Tid))
        Out[J].set(F.Tid, VT[I]);
    }
  return Out;
}

std::vector<size_t>
sampletrack::dedupDeclaredRaces(const Trace &T,
                                const std::vector<size_t> &Declared) {
  triage::RaceSink Sink(Declared.size() + 1);
  std::vector<size_t> Out;
  for (size_t I : Declared) {
    const Event &E = T[I];
    if (Sink.insert(RaceReport{I, E.Tid, E.var(), E.Kind}))
      Out.push_back(I);
  }
  return Out;
}
