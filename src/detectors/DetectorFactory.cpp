//===- detectors/DetectorFactory.cpp - Engine registry ------------------------/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/detectors/DetectorFactory.h"

#include "sampletrack/detectors/DjitDetector.h"
#include "sampletrack/detectors/FastTrackDetector.h"
#include "sampletrack/detectors/SamplingNaiveDetector.h"
#include "sampletrack/detectors/SamplingOrderedListDetector.h"
#include "sampletrack/detectors/SamplingUClockDetector.h"
#include "sampletrack/detectors/TreeClockDetector.h"

#include <algorithm>
#include <cctype>

using namespace sampletrack;

namespace {

std::string toLower(const std::string &S) {
  std::string Out = S;
  std::transform(Out.begin(), Out.end(), Out.begin(), [](unsigned char C) {
    return static_cast<char>(std::tolower(C));
  });
  return Out;
}

} // namespace

const char *sampletrack::engineKindName(EngineKind K) {
  switch (K) {
  case EngineKind::Djit:
    return "Djit+";
  case EngineKind::FastTrack:
    return "FT";
  case EngineKind::SamplingNaive:
    return "ST";
  case EngineKind::SamplingU:
    return "SU";
  case EngineKind::SamplingO:
    return "SO";
  case EngineKind::SamplingONoEpochOpt:
    return "SO-noepoch";
  case EngineKind::TreeClockFull:
    return "TC";
  }
  return "?";
}

std::optional<EngineKind> sampletrack::parseEngineKind(const std::string &N) {
  std::string Needle = toLower(N);
  for (EngineKind K : allEngineKinds())
    if (Needle == toLower(engineKindName(K)))
      return K;
  // Long-form aliases (the canonical short names above always win, so the
  // parse/print pair round-trips for every kind).
  if (Needle == "djit")
    return EngineKind::Djit;
  if (Needle == "fasttrack")
    return EngineKind::FastTrack;
  if (Needle == "treeclock")
    return EngineKind::TreeClockFull;
  return std::nullopt;
}

std::vector<EngineKind> sampletrack::allEngineKinds() {
  return {EngineKind::Djit,
          EngineKind::FastTrack,
          EngineKind::SamplingNaive,
          EngineKind::SamplingU,
          EngineKind::SamplingO,
          EngineKind::SamplingONoEpochOpt,
          EngineKind::TreeClockFull};
}

std::unique_ptr<Detector> sampletrack::createDetector(EngineKind K,
                                                      size_t NumThreads) {
  switch (K) {
  case EngineKind::Djit:
    return std::make_unique<DjitDetector>(NumThreads);
  case EngineKind::FastTrack:
    return std::make_unique<FastTrackDetector>(NumThreads);
  case EngineKind::SamplingNaive:
    return std::make_unique<SamplingNaiveDetector>(NumThreads);
  case EngineKind::SamplingU:
    return std::make_unique<SamplingUClockDetector>(NumThreads);
  case EngineKind::SamplingO:
    return std::make_unique<SamplingOrderedListDetector>(NumThreads,
                                                         /*LocalEpochOpt=*/
                                                         true);
  case EngineKind::SamplingONoEpochOpt:
    return std::make_unique<SamplingOrderedListDetector>(NumThreads,
                                                         /*LocalEpochOpt=*/
                                                         false);
  case EngineKind::TreeClockFull:
    return std::make_unique<TreeClockDetector>(NumThreads);
  }
  return nullptr;
}

std::vector<std::unique_ptr<Detector>>
sampletrack::createDetectors(std::span<const EngineKind> Kinds,
                             size_t NumThreads) {
  std::vector<std::unique_ptr<Detector>> Out;
  Out.reserve(Kinds.size());
  for (EngineKind K : Kinds)
    Out.push_back(createDetector(K, NumThreads));
  return Out;
}
