//===- detectors/DjitDetector.cpp - Djit+ baseline ---------------------------=//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/detectors/DjitDetector.h"

using namespace sampletrack;

DjitDetector::DjitDetector(size_t NumThreads) : Detector(NumThreads) {
  Threads.resize(NumThreads);
  for (size_t T = 0; T < NumThreads; ++T) {
    Threads[T] = VectorClock(NumThreads);
    // C_t starts at bottom[t -> 1] (Line 3 of Algorithm 1).
    Threads[T].set(static_cast<ThreadId>(T), 1);
  }
}

void DjitDetector::processBatch(std::span<const Event> Events,
                                std::span<const uint8_t> Sampled) {
  // Full analysis processes unsampled accesses too (it ignores S).
  if (shardCount())
    batchDispatchSharded</*SkipUnsampled=*/false>(*this, Events, Sampled);
  else
    batchDispatch</*SkipUnsampled=*/false>(*this, Events, Sampled);
}

VectorClock &DjitDetector::syncClock(SyncId S) {
  if (S >= Syncs.size()) // Guard: no Fill construction on the hot path.
    growToIndexFilled(Syncs, S, VectorClock(numThreads()));
  return Syncs[S];
}

DjitDetector::VarState &DjitDetector::varState(VarId X) {
  // Dense per-shard slot (see Detector::varSlot): identity when unsharded.
  size_t Slot = varSlot(X);
  growToIndex(Vars, Slot);
  VarState &V = Vars[Slot];
  if (V.W.size() == 0) {
    V.W = VectorClock(numThreads());
    V.R = VectorClock(numThreads());
  }
  return V;
}

void DjitDetector::incrementLocal(ThreadId T) { Threads[T].bump(T); }

void DjitDetector::onRead(ThreadId T, VarId X, bool) {
  VarState &V = varState(X);
  ++Stats.RaceChecks;
  if (!V.W.leq(Threads[T]))
    declareRace(T, X, OpKind::Read);
  V.R.set(T, Threads[T].get(T));
}

void DjitDetector::onWrite(ThreadId T, VarId X, bool) {
  VarState &V = varState(X);
  ++Stats.RaceChecks;
  if (!V.R.leq(Threads[T]) || !V.W.leq(Threads[T]))
    declareRace(T, X, OpKind::Write);
  V.W.copyFrom(Threads[T]);
  ++Stats.FullClockOps;
}

void DjitDetector::onAcquire(ThreadId T, SyncId L) {
  ++Stats.AcquiresTotal;
  ++Stats.AcquiresProcessed;
  ++Stats.FullClockOps;
  Threads[T].joinWith(syncClock(L));
}

void DjitDetector::onRelease(ThreadId T, SyncId L) {
  ++Stats.ReleasesTotal;
  ++Stats.ReleasesProcessed;
  ++Stats.FullClockOps;
  syncClock(L).copyFrom(Threads[T]);
  incrementLocal(T);
}

void DjitDetector::onFork(ThreadId Parent, ThreadId Child) {
  ++Stats.ReleasesTotal;
  ++Stats.ReleasesProcessed;
  ++Stats.FullClockOps;
  Threads[Child].joinWith(Threads[Parent]);
  incrementLocal(Parent);
}

void DjitDetector::onJoin(ThreadId Parent, ThreadId Child) {
  ++Stats.AcquiresTotal;
  ++Stats.AcquiresProcessed;
  ++Stats.FullClockOps;
  Threads[Parent].joinWith(Threads[Child]);
  incrementLocal(Child);
}

void DjitDetector::onReleaseStore(ThreadId T, SyncId S) {
  ++Stats.ReleasesTotal;
  ++Stats.ReleasesProcessed;
  ++Stats.FullClockOps;
  syncClock(S).copyFrom(Threads[T]);
  incrementLocal(T);
}

void DjitDetector::onReleaseJoin(ThreadId T, SyncId S) {
  ++Stats.ReleasesTotal;
  ++Stats.ReleasesProcessed;
  ++Stats.FullClockOps;
  syncClock(S).joinWith(Threads[T]);
  incrementLocal(T);
}

void DjitDetector::onAcquireLoad(ThreadId T, SyncId S) {
  ++Stats.AcquiresTotal;
  ++Stats.AcquiresProcessed;
  ++Stats.FullClockOps;
  Threads[T].joinWith(syncClock(S));
}
