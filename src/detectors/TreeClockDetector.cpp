//===- detectors/TreeClockDetector.cpp - TC ablation --------------------------/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/detectors/TreeClockDetector.h"

using namespace sampletrack;

TreeClockDetector::TreeClockDetector(size_t NumThreads)
    : Detector(NumThreads) {
  Threads.resize(NumThreads);
  for (ThreadId T = 0; T < NumThreads; ++T) {
    Threads[T].TC = Pool.acquire();
    Threads[T].TC->reset(NumThreads, T);
    // Full-HB local time starts at 1, as in Djit+/FastTrack.
    Threads[T].TC->setRootTime(1);
  }
}

void TreeClockDetector::processBatch(std::span<const Event> Events,
                                     std::span<const uint8_t> Sampled) {
  if (shardCount())
    batchDispatchSharded</*SkipUnsampled=*/true>(*this, Events, Sampled);
  else
    batchDispatch</*SkipUnsampled=*/true>(*this, Events, Sampled);
}

TreeClockDetector::SyncState &TreeClockDetector::syncState(SyncId S) {
  growToIndex(Syncs, S);
  return Syncs[S];
}

TreeClockDetector::VarState &TreeClockDetector::varState(VarId X) {
  // Dense per-shard slot (see Detector::varSlot): identity when unsharded.
  size_t Slot = varSlot(X);
  growToIndex(Vars, Slot);
  VarState &V = Vars[Slot];
  if (V.W.size() == 0) {
    V.W = VectorClock(numThreads());
    V.R = VectorClock(numThreads());
  }
  return V;
}

void TreeClockDetector::ensureOwned(ThreadId T) {
  ThreadState &TS = Threads[T];
  if (!TS.SharedFlag)
    return;
  if (TS.TC.unique()) {
    // Snapshot no longer referenced by any sync: mutate in place.
    TS.SharedFlag = false;
    return;
  }
  ++Stats.CowBreaks;
  bool Reused = false;
  ClockRef Copy = Pool.acquire(&Reused);
  Stats.PoolHits += Reused ? 1 : 0;
  Copy->deepCopyFrom(*TS.TC);
  TS.TC = std::move(Copy);
  TS.SharedFlag = false;
  ++Stats.DeepCopies;
  ++Stats.FullClockOps;
}

void TreeClockDetector::joinInto(ThreadId T, const TreeClock &Src) {
  ThreadState &TS = Threads[T];
  // Fast path (sound under full-HB timestamps: equal root values imply
  // equal knowledge, since the local component advances at every release).
  if (Src.get(Src.root()) <= TS.TC->get(Src.root())) {
    ++Stats.AcquiresSkipped;
    return;
  }
  ensureOwned(T);
  unsigned Examined = TS.TC->joinFrom(Src);
  Stats.EntriesTraversed += Examined;
  Stats.TraversalOpportunities += numThreads();
  ++Stats.AcquiresProcessed;
}

void TreeClockDetector::acquireLike(ThreadId T, SyncId L) {
  ++Stats.AcquiresTotal;
  SyncState &S = syncState(L);
  if (!S.Ref) {
    ++Stats.AcquiresSkipped;
    return;
  }
  joinInto(T, *S.Ref);
}

void TreeClockDetector::releaseLike(ThreadId T, SyncId L) {
  ++Stats.ReleasesTotal;
  ++Stats.ReleasesProcessed;
  ThreadState &TS = Threads[T];
  SyncState &S = syncState(L);
  // Publish a snapshot, then advance local time; the increment forces a
  // deep copy (full-HB timestamps change at every release — the redundancy
  // the sampling timestamp eliminates).
  S.Ref = TS.TC;
  TS.SharedFlag = true;
  ++Stats.ShallowCopies;
  ensureOwned(T);
  TS.TC->incrementRoot();
}

bool TreeClockDetector::dominates(ThreadId T, const VectorClock &C) const {
  const TreeClock &TC = *Threads[T].TC;
  for (ThreadId I = 0; I < numThreads(); ++I)
    if (C.get(I) > TC.get(I))
      return false;
  return true;
}

void TreeClockDetector::onRead(ThreadId T, VarId X, bool Sampled) {
  if (!Sampled)
    return;
  VarState &V = varState(X);
  ++Stats.RaceChecks;
  if (!dominates(T, V.W))
    declareRace(T, X, OpKind::Read);
  V.R.set(T, Threads[T].TC->get(T));
}

void TreeClockDetector::onWrite(ThreadId T, VarId X, bool Sampled) {
  if (!Sampled)
    return;
  VarState &V = varState(X);
  ++Stats.RaceChecks;
  if (!dominates(T, V.R) || !dominates(T, V.W))
    declareRace(T, X, OpKind::Write);
  Threads[T].TC->toVectorClock(V.W);
  ++Stats.FullClockOps;
}

void TreeClockDetector::onAcquire(ThreadId T, SyncId L) { acquireLike(T, L); }

void TreeClockDetector::onRelease(ThreadId T, SyncId L) { releaseLike(T, L); }

void TreeClockDetector::onFork(ThreadId Parent, ThreadId Child) {
  ++Stats.ReleasesTotal;
  ++Stats.ReleasesProcessed;
  // Count the child's import as acquire-side work, mirroring the other
  // engines.
  ++Stats.AcquiresTotal;
  joinInto(Child, *Threads[Parent].TC);
  ensureOwned(Parent);
  Threads[Parent].TC->incrementRoot();
}

void TreeClockDetector::onJoin(ThreadId Parent, ThreadId Child) {
  ++Stats.AcquiresTotal;
  joinInto(Parent, *Threads[Child].TC);
  ensureOwned(Child);
  Threads[Child].TC->incrementRoot();
}

void TreeClockDetector::onReleaseStore(ThreadId T, SyncId S) {
  releaseLike(T, S);
}

void TreeClockDetector::onReleaseJoin(ThreadId T, SyncId S) {
  // Conservative fallback: treated as a release-store (replacement). This
  // ablation engine is only exercised on mutex/fork-join traces; see the
  // header comment.
  releaseLike(T, S);
}

void TreeClockDetector::onAcquireLoad(ThreadId T, SyncId S) {
  acquireLike(T, S);
}
