//===- detectors/SamplingUClockDetector.cpp - SU ------------------------------/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/detectors/SamplingUClockDetector.h"

using namespace sampletrack;

SamplingUClockDetector::SamplingUClockDetector(size_t NumThreads,
                                               HistoryKind Histories)
    : SamplingDetectorBase(NumThreads, Histories) {
  Threads.resize(NumThreads);
  for (ThreadState &TS : Threads) {
    TS.C = VectorClock(NumThreads);
    TS.U = VectorClock(NumThreads);
  }
}

void SamplingUClockDetector::processBatch(std::span<const Event> Events,
                                          std::span<const uint8_t> Sampled) {
  if (shardCount())
    batchDispatchSharded</*SkipUnsampled=*/true>(*this, Events, Sampled);
  else
    batchDispatch</*SkipUnsampled=*/true>(*this, Events, Sampled);
}

SamplingUClockDetector::SyncState &
SamplingUClockDetector::syncState(SyncId S) {
  growToIndex(Syncs, S);
  SyncState &St = Syncs[S];
  if (St.C.size() == 0) {
    St.C = VectorClock(numThreads());
    St.U = VectorClock(numThreads());
    St.AcquiredSince.assign(numThreads(), false);
  }
  return St;
}

void SamplingUClockDetector::joinFromSync(ThreadId T, SyncState &S) {
  ThreadState &TS = Threads[T];
  TS.U.joinWith(S.U);
  ++Stats.FullClockOps;
  unsigned Changed = TS.C.joinCountingChanges(S.C);
  ++Stats.FullClockOps;
  // Each changed entry of C_t is one tick of the VT timestamp (Line 12 of
  // Algorithm 3).
  TS.U.bump(T, Changed);
  ++Stats.AcquiresProcessed;
}

void SamplingUClockDetector::storeToSync(ThreadId T, SyncState &S) {
  ThreadState &TS = Threads[T];
  S.C.copyFrom(TS.C);
  S.U.copyFrom(TS.U);
  Stats.FullClockOps += 2;
  ++Stats.ReleasesProcessed;
}

void SamplingUClockDetector::joinThreadFromThread(ThreadId Dst,
                                                  ThreadId Src) {
  ThreadState &D = Threads[Dst];
  ThreadState &SrcState = Threads[Src];
  D.U.joinWith(SrcState.U);
  ++Stats.FullClockOps;
  unsigned Changed = D.C.joinCountingChanges(SrcState.C);
  ++Stats.FullClockOps;
  D.U.bump(Dst, Changed);
}

void SamplingUClockDetector::onAcquire(ThreadId T, SyncId L) {
  ++Stats.AcquiresTotal;
  SyncState &S = syncState(L);
  S.AcquiredSince[T] = true;
  if (S.MultiSource) {
    // Blended content: the scalar freshness check does not apply (A.2).
    joinFromSync(T, S);
    return;
  }
  if (S.LastReleaser == NoThread) {
    // Never released: the sync clock is bottom, nothing to learn.
    ++Stats.AcquiresSkipped;
    return;
  }
  // The freshness check of Line 7 of Algorithm 3: if the acquiring thread
  // already knows the releaser's clock at the version stored in the lock,
  // the whole join is redundant (Proposition 5).
  if (S.U.get(S.LastReleaser) <= Threads[T].U.get(S.LastReleaser)) {
    ++Stats.AcquiresSkipped;
    return;
  }
  joinFromSync(T, S);
}

void SamplingUClockDetector::onRelease(ThreadId T, SyncId L) {
  ++Stats.ReleasesTotal;
  SyncState &S = syncState(L);
  flushLocalEpoch(T);
  S.LastReleaser = T;
  S.MultiSource = false;
  // Mutex discipline guarantees this thread acquired L beforehand, so the
  // copy below is a monotone update and the release-side skip of Line 19 of
  // Algorithm 3 is sound: if the lock already holds the latest version of
  // this thread's clock, skip the O(T) copy.
  if (Threads[T].U.get(T) == S.U.get(T)) {
    ++Stats.ReleasesSkipped;
    S.AcquiredSince[T] = true;
    return;
  }
  storeToSync(T, S);
  S.AcquiredSince.assign(numThreads(), false);
  S.AcquiredSince[T] = true;
}

void SamplingUClockDetector::onFork(ThreadId Parent, ThreadId Child) {
  ++Stats.ReleasesTotal;
  ++Stats.ReleasesProcessed;
  flushLocalEpoch(Parent);
  joinThreadFromThread(Child, Parent);
}

void SamplingUClockDetector::onJoin(ThreadId Parent, ThreadId Child) {
  ++Stats.AcquiresTotal;
  ++Stats.AcquiresProcessed;
  flushLocalEpoch(Child);
  joinThreadFromThread(Parent, Child);
}

void SamplingUClockDetector::onReleaseStore(ThreadId T, SyncId S) {
  ++Stats.ReleasesTotal;
  SyncState &St = syncState(S);
  flushLocalEpoch(T);
  // A.2: the skip rule needs the update to be monotone, which holds only if
  // this thread has observed the object's current content.
  bool Monotone = !St.MultiSource && St.AcquiredSince[T];
  if (Monotone && Threads[T].U.get(T) == St.U.get(T)) {
    ++Stats.ReleasesSkipped;
    St.LastReleaser = T;
    St.MultiSource = false;
    St.AcquiredSince[T] = true;
    return;
  }
  storeToSync(T, St);
  St.LastReleaser = T;
  St.MultiSource = false;
  St.AcquiredSince.assign(numThreads(), false);
  St.AcquiredSince[T] = true;
}

void SamplingUClockDetector::onReleaseJoin(ThreadId T, SyncId S) {
  ++Stats.ReleasesTotal;
  ++Stats.ReleasesProcessed;
  SyncState &St = syncState(S);
  flushLocalEpoch(T);
  // The object now carries information from multiple threads; disable the
  // scalar skip machinery until the next exclusive release (A.2).
  St.C.joinWith(Threads[T].C);
  St.U.joinWith(Threads[T].U);
  Stats.FullClockOps += 2;
  St.MultiSource = true;
  St.LastReleaser = T;
  // Nobody (including T, whose clock may lack other contributors' info) is
  // known to dominate the blended content.
  St.AcquiredSince.assign(numThreads(), false);
}

void SamplingUClockDetector::onAcquireLoad(ThreadId T, SyncId S) {
  onAcquire(T, S);
}
