//===- detectors/SamplingBase.cpp - Shared sampling core ---------------------=/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/detectors/SamplingBase.h"

using namespace sampletrack;

void SamplingDetectorBase::onRead(ThreadId T, VarId X, bool Sampled) {
  // Unsampled accesses are skipped entirely (Algorithm 2, Line 9).
  if (!Sampled)
    return;
  Dirty[T] = true;
  if (Histories == HistoryKind::Epochs) {
    readWithEpochHistories(T, X);
    return;
  }
  VarState &V = varState(X);
  ++Stats.RaceChecks;
  if (!clockDominatesHistory(T, V.W))
    declareRace(T, X, OpKind::Read);
  V.R.set(T, Epochs[T]);
}

void SamplingDetectorBase::onWrite(ThreadId T, VarId X, bool Sampled) {
  if (!Sampled)
    return;
  Dirty[T] = true;
  if (Histories == HistoryKind::Epochs) {
    writeWithEpochHistories(T, X);
    return;
  }
  VarState &V = varState(X);
  ++Stats.RaceChecks;
  if (!clockDominatesHistory(T, V.R) || !clockDominatesHistory(T, V.W))
    declareRace(T, X, OpKind::Write);
  snapshotEffectiveClock(T, V.W);
  ++Stats.FullClockOps;
}

void SamplingDetectorBase::readWithEpochHistories(ThreadId T, VarId X) {
  VarState &V = varState(X);
  ClockValue MyEpoch = Epochs[T];
  // Same-epoch fast path (FastTrack): this exact read is already recorded.
  if (!V.ReadShared && V.RTid == T && V.RClk == MyEpoch)
    return;
  if (V.ReadShared && V.R.get(T) == MyEpoch)
    return;

  ++Stats.RaceChecks;
  // Write-read race: by Proposition 3 the scalar comparison against the
  // effective clock is exact for marked events.
  if (V.WClk > effectiveClockComponent(T, V.WTid))
    declareRace(T, X, OpKind::Read);

  if (V.ReadShared) {
    V.R.set(T, MyEpoch);
    return;
  }
  if (V.RClk <= effectiveClockComponent(T, V.RTid)) {
    // Reads stay thread-exclusive: the previous read happens-before us.
    V.RTid = T;
    V.RClk = MyEpoch;
    return;
  }
  // Concurrent reads: promote to a read vector clock.
  if (V.R.size() == 0)
    V.R = VectorClock(numThreads());
  else
    V.R.clear();
  ++Stats.FullClockOps;
  V.R.set(V.RTid, V.RClk);
  V.R.set(T, MyEpoch);
  V.ReadShared = true;
}

void SamplingDetectorBase::writeWithEpochHistories(ThreadId T, VarId X) {
  VarState &V = varState(X);
  ClockValue MyEpoch = Epochs[T];
  // Same-epoch fast path.
  if (V.WTid == T && V.WClk == MyEpoch)
    return;

  ++Stats.RaceChecks;
  if (V.WClk > effectiveClockComponent(T, V.WTid))
    declareRace(T, X, OpKind::Write);
  if (V.ReadShared) {
    ++Stats.FullClockOps;
    if (!clockDominatesHistory(T, V.R))
      declareRace(T, X, OpKind::Write);
    // Demote: this write supersedes the read set (FastTrack).
    V.R.clear();
    V.RTid = 0;
    V.RClk = 0;
    V.ReadShared = false;
  } else if (V.RClk > effectiveClockComponent(T, V.RTid)) {
    declareRace(T, X, OpKind::Write);
  }
  V.WTid = T;
  V.WClk = MyEpoch;
}
