//===- triaged/Client.cpp - Blocking upload client ---------------------------=//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/triaged/Client.h"

#include "sampletrack/trace/TraceIO.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <fstream>
#include <iterator>
#include <sstream>

using namespace sampletrack;
using namespace sampletrack::triaged;

namespace {

bool fail(std::string *Error, const std::string &Msg) {
  if (Error)
    *Error = Msg;
  return false;
}

bool sendAll(int Fd, std::string_view Bytes) {
  size_t Off = 0;
  while (Off < Bytes.size()) {
    ssize_t N = ::send(Fd, Bytes.data() + Off, Bytes.size() - Off,
                       MSG_NOSIGNAL);
    if (N <= 0) {
      if (N < 0 && errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

/// Pulls "<Key>: <uint>" out of the upload-response JSON the server
/// renders. The format is ours end to end, so a line scan is enough — no
/// JSON parser dependency for one integer per field.
bool jsonUInt(const std::string &Body, const std::string &Key,
              uint64_t &Out) {
  std::string Needle = "\"" + Key + "\": ";
  size_t At = Body.find(Needle);
  if (At == std::string::npos)
    return false;
  Out = std::strtoull(Body.c_str() + At + Needle.size(), nullptr, 10);
  return true;
}

} // namespace

bool Client::roundTrip(const std::string &Request, Response &Out,
                       std::string *Error) {
  int Fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0)
    return fail(Error, std::string("socket: ") + std::strerror(errno));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    ::close(Fd);
    return fail(Error, "bad host address '" + Host + "'");
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0) {
    ::close(Fd);
    return fail(Error, "connect " + Host + ":" + std::to_string(Port) +
                           ": " + std::strerror(errno));
  }
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));

  if (!sendAll(Fd, Request)) {
    ::close(Fd);
    return fail(Error, std::string("send: ") + std::strerror(errno));
  }

  // The client always sends Connection: close, so the response is simply
  // everything until EOF; Content-Length is still honored as a cross-check.
  std::string Raw;
  char Chunk[64 << 10];
  for (;;) {
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      ::close(Fd);
      return fail(Error, std::string("recv: ") + std::strerror(errno));
    }
    if (N == 0)
      break;
    Raw.append(Chunk, static_cast<size_t>(N));
  }
  ::close(Fd);

  // Status line.
  size_t HeaderEnd = Raw.find("\r\n\r\n");
  if (HeaderEnd == std::string::npos)
    return fail(Error, "malformed response (no header terminator)");
  std::string Head = Raw.substr(0, HeaderEnd);
  if (Head.rfind("HTTP/1.1 ", 0) != 0 && Head.rfind("HTTP/1.0 ", 0) != 0)
    return fail(Error, "malformed response status line");
  Out.Status = std::atoi(Head.c_str() + std::strlen("HTTP/1.x "));
  if (Out.Status < 100 || Out.Status > 599)
    return fail(Error, "malformed response status code");

  // Headers we care about.
  Out.ContentType.clear();
  uint64_t ContentLength = 0;
  bool HaveLength = false;
  std::istringstream Hs(Head);
  std::string Line;
  std::getline(Hs, Line); // Status line.
  while (std::getline(Hs, Line)) {
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    size_t Colon = Line.find(':');
    if (Colon == std::string::npos)
      continue;
    std::string Name = Line.substr(0, Colon);
    for (char &C : Name)
      C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
    std::string Value = Line.substr(Colon + 1);
    size_t B = Value.find_first_not_of(" \t");
    if (B != std::string::npos)
      Value = Value.substr(B);
    if (Name == "content-type")
      Out.ContentType = Value;
    else if (Name == "content-length") {
      ContentLength = std::strtoull(Value.c_str(), nullptr, 10);
      HaveLength = true;
    }
  }

  Out.Body = Raw.substr(HeaderEnd + 4);
  if (HaveLength && Out.Body.size() != ContentLength)
    return fail(Error, "truncated response body (Content-Length " +
                           std::to_string(ContentLength) + ", got " +
                           std::to_string(Out.Body.size()) + ")");
  return true;
}

bool Client::get(const std::string &Path, Response &Out,
                 std::string *Error) {
  std::string Req = "GET " + Path + " HTTP/1.1\r\nHost: " + Host +
                    "\r\nConnection: close\r\n\r\n";
  return roundTrip(Req, Out, Error);
}

bool Client::post(const std::string &Path, const std::string &ContentType,
                  std::string_view Body, Response &Out, std::string *Error,
                  uint64_t Sequence) {
  std::string Req = "POST " + Path + " HTTP/1.1\r\nHost: " + Host +
                    "\r\nContent-Type: " + ContentType +
                    "\r\nContent-Length: " + std::to_string(Body.size()) +
                    "\r\nConnection: close\r\n";
  if (Sequence > 0)
    Req += "X-Sampletrack-Sequence: " + std::to_string(Sequence) + "\r\n";
  Req += "\r\n";
  Req.append(Body.data(), Body.size());
  return roundTrip(Req, Out, Error);
}

bool Client::uploadFramed(WireContent Content, std::string_view Payload,
                          UploadOutcome &Out, std::string *Error,
                          uint64_t Sequence) {
  Response Resp;
  if (!post("/v1/runs", "application/x-sampletrack-upload",
            frame(Content, Payload), Resp, Error, Sequence))
    return false;
  if (Resp.Status != 200)
    return fail(Error, "upload rejected: HTTP " +
                           std::to_string(Resp.Status) + ": " + Resp.Body);
  uint64_t Run = 0;
  if (!jsonUInt(Resp.Body, "run", Run) ||
      !jsonUInt(Resp.Body, "declared", Out.Declared) ||
      !jsonUInt(Resp.Body, "distinct", Out.Distinct) ||
      !jsonUInt(Resp.Body, "new", Out.NewCount) ||
      !jsonUInt(Resp.Body, "known", Out.KnownCount) ||
      !jsonUInt(Resp.Body, "regressed", Out.RegressedCount) ||
      !jsonUInt(Resp.Body, "suppressed", Out.SuppressedCount))
    return fail(Error, "malformed upload response: " + Resp.Body);
  Out.Run = static_cast<uint32_t>(Run);
  return true;
}

bool Client::uploadTrace(const Trace &T, UploadOutcome &Out,
                         std::string *Error, uint64_t Sequence) {
  std::ostringstream Os(std::ios::binary);
  writeTraceBinary(Os, T);
  std::string Bytes = Os.str();
  return uploadFramed(WireContent::BinaryTrace, Bytes, Out, Error,
                      Sequence);
}

bool Client::uploadSummary(const triage::TriageSummary &S,
                           UploadOutcome &Out, std::string *Error,
                           uint64_t Sequence) {
  return uploadFramed(WireContent::SignatureSummary, encodeSummary(S), Out,
                      Error, Sequence);
}

bool Client::uploadFile(const std::string &Path, UploadOutcome &Out,
                        std::string *Error, uint64_t Sequence) {
  std::ifstream Is(Path, std::ios::binary);
  if (!Is)
    return fail(Error, "cannot open '" + Path + "'");
  std::string Bytes((std::istreambuf_iterator<char>(Is)),
                    std::istreambuf_iterator<char>());
  if (sniffSummary(Bytes))
    return uploadFramed(WireContent::SignatureSummary, Bytes, Out, Error,
                        Sequence);
  std::istringstream Sniff(Bytes);
  if (sniffBinaryTrace(Sniff))
    return uploadFramed(WireContent::BinaryTrace, Bytes, Out, Error,
                        Sequence);
  return fail(Error, "'" + Path +
                         "' is neither a binary trace nor a signature "
                         "summary");
}
