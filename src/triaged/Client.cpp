//===- triaged/Client.cpp - Blocking upload client ---------------------------=//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/triaged/Client.h"

#include "sampletrack/support/Rng.h"
#include "sampletrack/trace/TraceIO.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <random>
#include <sstream>
#include <thread>

using namespace sampletrack;
using namespace sampletrack::triaged;

namespace {

bool fail(std::string *Error, const std::string &Msg) {
  if (Error)
    *Error = Msg;
  return false;
}

using Clock = std::chrono::steady_clock;

/// An absolute deadline; Millis == 0 means "none".
Clock::time_point deadlineAfter(uint64_t Millis) {
  return Millis == 0 ? Clock::time_point::max()
                     : Clock::now() + std::chrono::milliseconds(Millis);
}

/// Remaining budget as a poll() timeout: -1 for "no deadline", clamped to
/// >= 0 once expired (poll then returns immediately and the caller sees
/// the timeout).
int pollBudget(Clock::time_point Deadline) {
  if (Deadline == Clock::time_point::max())
    return -1;
  auto Left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  Deadline - Clock::now())
                  .count();
  if (Left <= 0)
    return 0;
  return Left > 60'000 ? 60'000 : static_cast<int>(Left);
}

/// Waits until \p Fd is ready for \p Events (POLLIN/POLLOUT) or the
/// deadline passes. Returns true on ready, false on timeout or poll error
/// (errno-style detail in \p Why).
bool waitReady(int Fd, short Events, Clock::time_point Deadline,
               const char *Phase, std::string &Why) {
  for (;;) {
    pollfd Pfd{Fd, Events, 0};
    int Budget = pollBudget(Deadline);
    int R = ::poll(&Pfd, 1, Budget);
    if (R > 0)
      return true; // Ready (POLLERR/POLLHUP included: let the I/O call
                   // observe and report the real error).
    if (R < 0 && errno == EINTR)
      continue;
    if (R == 0) {
      Why = std::string(Phase) + " timed out";
      return false;
    }
    Why = std::string(Phase) + " poll: " + std::strerror(errno);
    return false;
  }
}

bool sendAll(int Fd, std::string_view Bytes, Clock::time_point Deadline,
             std::string &Why) {
  size_t Off = 0;
  while (Off < Bytes.size()) {
    if (!waitReady(Fd, POLLOUT, Deadline, "send", Why))
      return false;
    ssize_t N = ::send(Fd, Bytes.data() + Off, Bytes.size() - Off,
                       MSG_NOSIGNAL | MSG_DONTWAIT);
    if (N <= 0) {
      if (N < 0 && (errno == EINTR || errno == EAGAIN ||
                    errno == EWOULDBLOCK))
        continue;
      Why = std::string("send: ") + std::strerror(errno);
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

/// Parses the 3-digit status code after "HTTP/1.x " with explicit bounds —
/// no atoi: a garbage status line must be a loud transport error, not a
/// silently-zero Status.
bool parseStatus(const std::string &Head, int &Status) {
  constexpr size_t At = 9; // strlen("HTTP/1.x ")
  if (Head.size() < At + 3)
    return false;
  const char *B = Head.data() + At, *E = B + 3;
  auto [Ptr, Ec] = std::from_chars(B, E, Status);
  if (Ec != std::errc() || Ptr != E)
    return false;
  // The code must terminate cleanly (end of line or the reason phrase).
  if (Head.size() > At + 3 && Head[At + 3] != ' ' && Head[At + 3] != '\r')
    return false;
  return Status >= 100 && Status <= 599;
}

/// Pulls "<Key>: <uint>" out of the upload-response JSON the server
/// renders. The format is ours end to end, so a line scan is enough — no
/// JSON parser dependency for one integer per field.
bool jsonUInt(const std::string &Body, const std::string &Key,
              uint64_t &Out) {
  std::string Needle = "\"" + Key + "\": ";
  size_t At = Body.find(Needle);
  if (At == std::string::npos)
    return false;
  Out = std::strtoull(Body.c_str() + At + Needle.size(), nullptr, 10);
  return true;
}

bool jsonBool(const std::string &Body, const std::string &Key, bool &Out) {
  std::string Needle = "\"" + Key + "\": ";
  size_t At = Body.find(Needle);
  if (At == std::string::npos)
    return false;
  Out = Body.compare(At + Needle.size(), 4, "true") == 0;
  return true;
}

/// A fresh idempotency key: 16 hex chars of system entropy. Deliberately
/// random, never payload-derived — two distinct runs that happen to
/// produce identical bytes must both count.
std::string randomRunId() {
  std::random_device Rd;
  uint64_t Seed = (static_cast<uint64_t>(Rd()) << 32) ^ Rd();
  SplitMix64 G(Seed ^ static_cast<uint64_t>(::getpid()));
  char Buf[20];
  std::snprintf(Buf, sizeof(Buf), "r-%016llx",
                static_cast<unsigned long long>(G.next()));
  return Buf;
}

} // namespace

bool Client::roundTrip(const std::string &Request, Response &Out,
                       std::string *Error) {
  // The socket is non-blocking for its whole life: connect completion is a
  // POLLOUT + SO_ERROR check, send and recv gate every syscall on poll
  // against an absolute per-phase deadline (Config; 0 = unbounded).
  int Fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (Fd < 0)
    return fail(Error, std::string("socket: ") + std::strerror(errno));
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    ::close(Fd);
    return fail(Error, "bad host address '" + Host + "'");
  }
  const std::string Peer = Host + ":" + std::to_string(Port);
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 &&
      errno != EINPROGRESS) {
    ::close(Fd);
    return fail(Error, "connect " + Peer + ": " + std::strerror(errno));
  }
  std::string Why;
  if (!waitReady(Fd, POLLOUT, deadlineAfter(Config.ConnectTimeoutMillis),
                 "connect", Why)) {
    ::close(Fd);
    return fail(Error, "connect " + Peer + ": " + Why);
  }
  int SoErr = 0;
  socklen_t SoLen = sizeof(SoErr);
  if (::getsockopt(Fd, SOL_SOCKET, SO_ERROR, &SoErr, &SoLen) < 0 ||
      SoErr != 0) {
    ::close(Fd);
    return fail(Error, "connect " + Peer + ": " +
                           std::strerror(SoErr ? SoErr : errno));
  }
  int One = 1;
  ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));

  if (!sendAll(Fd, Request, deadlineAfter(Config.SendTimeoutMillis), Why)) {
    ::close(Fd);
    return fail(Error, Why);
  }

  // The client always sends Connection: close, so the response is simply
  // everything until EOF; Content-Length is still honored as a cross-check.
  // One deadline bounds the whole read, so a drip-feeding peer cannot
  // stretch it recv by recv.
  std::string Raw;
  char Chunk[64 << 10];
  const Clock::time_point RecvDeadline =
      deadlineAfter(Config.RecvTimeoutMillis);
  for (;;) {
    if (!waitReady(Fd, POLLIN, RecvDeadline, "recv", Why)) {
      ::close(Fd);
      return fail(Error, Why);
    }
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), MSG_DONTWAIT);
    if (N < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
        continue;
      ::close(Fd);
      return fail(Error, std::string("recv: ") + std::strerror(errno));
    }
    if (N == 0)
      break;
    Raw.append(Chunk, static_cast<size_t>(N));
  }
  ::close(Fd);

  // Status line.
  size_t HeaderEnd = Raw.find("\r\n\r\n");
  if (HeaderEnd == std::string::npos)
    return fail(Error, "malformed response (no header terminator)");
  std::string Head = Raw.substr(0, HeaderEnd);
  if (Head.rfind("HTTP/1.1 ", 0) != 0 && Head.rfind("HTTP/1.0 ", 0) != 0)
    return fail(Error, "malformed response status line");
  if (!parseStatus(Head, Out.Status))
    return fail(Error, "malformed response status code");

  // Headers we care about.
  Out.ContentType.clear();
  uint64_t ContentLength = 0;
  bool HaveLength = false;
  std::istringstream Hs(Head);
  std::string Line;
  std::getline(Hs, Line); // Status line.
  while (std::getline(Hs, Line)) {
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    size_t Colon = Line.find(':');
    if (Colon == std::string::npos)
      continue;
    std::string Name = Line.substr(0, Colon);
    for (char &C : Name)
      C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
    std::string Value = Line.substr(Colon + 1);
    size_t B = Value.find_first_not_of(" \t");
    if (B != std::string::npos)
      Value = Value.substr(B);
    if (Name == "content-type")
      Out.ContentType = Value;
    else if (Name == "content-length") {
      ContentLength = std::strtoull(Value.c_str(), nullptr, 10);
      HaveLength = true;
    } else if (Name == "retry-after")
      Out.RetryAfterSeconds =
          static_cast<unsigned>(std::strtoul(Value.c_str(), nullptr, 10));
  }

  Out.Body = Raw.substr(HeaderEnd + 4);
  if (HaveLength && Out.Body.size() != ContentLength)
    return fail(Error, "truncated response body (Content-Length " +
                           std::to_string(ContentLength) + ", got " +
                           std::to_string(Out.Body.size()) + ")");
  return true;
}

bool Client::get(const std::string &Path, Response &Out,
                 std::string *Error) {
  std::string Req = "GET " + Path + " HTTP/1.1\r\nHost: " + Host +
                    "\r\nConnection: close\r\n\r\n";
  return roundTrip(Req, Out, Error);
}

bool Client::post(const std::string &Path, const std::string &ContentType,
                  std::string_view Body, Response &Out, std::string *Error,
                  uint64_t Sequence, const std::string &RunId) {
  std::string Req = "POST " + Path + " HTTP/1.1\r\nHost: " + Host +
                    "\r\nContent-Type: " + ContentType +
                    "\r\nContent-Length: " + std::to_string(Body.size()) +
                    "\r\nConnection: close\r\n";
  if (Sequence > 0)
    Req += "X-Sampletrack-Sequence: " + std::to_string(Sequence) + "\r\n";
  if (!RunId.empty())
    Req += "X-Sampletrack-Run-Id: " + RunId + "\r\n";
  Req += "\r\n";
  Req.append(Body.data(), Body.size());
  return roundTrip(Req, Out, Error);
}

bool Client::uploadFramed(WireContent Content, std::string_view Payload,
                          UploadOutcome &Out, std::string *Error,
                          uint64_t Sequence, const std::string &RunId) {
  // One run id across every attempt: that is what makes retrying safe.
  const std::string Id = RunId.empty() ? randomRunId() : RunId;
  const std::string Body = frame(Content, Payload);
  uint64_t JitterSeed = Retry.JitterSeed;
  if (JitterSeed == 0) {
    std::random_device Rd;
    JitterSeed = (static_cast<uint64_t>(Rd()) << 32) ^ Rd();
  }
  SplitMix64 Jitter(JitterSeed);

  const unsigned Attempts = Retry.MaxAttempts > 0 ? Retry.MaxAttempts : 1;
  std::string LastErr;
  unsigned RetryAfterSec = 0;
  for (unsigned A = 0; A < Attempts; ++A) {
    if (A > 0) {
      // Capped exponential backoff, jittered down by up to half; a
      // Retry-After hint from shedding raises the floor.
      unsigned Shift = A - 1 < 20 ? A - 1 : 20;
      uint64_t Delay = Retry.BaseDelayMillis << Shift;
      if (Delay > Retry.MaxDelayMillis)
        Delay = Retry.MaxDelayMillis;
      if (Delay > 1)
        Delay -= Jitter.nextBelow(Delay / 2 + 1);
      uint64_t Floor = static_cast<uint64_t>(RetryAfterSec) * 1000;
      if (Floor > Retry.MaxDelayMillis)
        Floor = Retry.MaxDelayMillis;
      if (Delay < Floor)
        Delay = Floor;
      std::this_thread::sleep_for(std::chrono::milliseconds(Delay));
    }
    Response Resp;
    std::string Err;
    if (!post("/v1/runs", "application/x-sampletrack-upload", Body, Resp,
              &Err, Sequence, Id)) {
      // Transport failure: connect refused, or the peer vanished
      // mid-exchange (the response to a merged upload may be the casualty
      // — exactly what the run id dedups on retry).
      LastErr = Err;
      RetryAfterSec = 0;
      continue;
    }
    if (Resp.Status >= 500 || Resp.Status == 503) {
      LastErr = "HTTP " + std::to_string(Resp.Status) + ": " + Resp.Body;
      RetryAfterSec = Resp.RetryAfterSeconds;
      continue;
    }
    if (Resp.Status != 200)
      return fail(Error, "upload rejected: HTTP " +
                             std::to_string(Resp.Status) + ": " + Resp.Body);
    uint64_t Run = 0;
    if (!jsonUInt(Resp.Body, "run", Run) ||
        !jsonUInt(Resp.Body, "declared", Out.Declared) ||
        !jsonUInt(Resp.Body, "distinct", Out.Distinct) ||
        !jsonUInt(Resp.Body, "new", Out.NewCount) ||
        !jsonUInt(Resp.Body, "known", Out.KnownCount) ||
        !jsonUInt(Resp.Body, "regressed", Out.RegressedCount) ||
        !jsonUInt(Resp.Body, "suppressed", Out.SuppressedCount))
      return fail(Error, "malformed upload response: " + Resp.Body);
    Out.Run = static_cast<uint32_t>(Run);
    Out.RunId = Id;
    Out.Deduplicated = false;
    (void)jsonBool(Resp.Body, "deduplicated", Out.Deduplicated);
    return true;
  }
  return fail(Error, "upload failed after " + std::to_string(Attempts) +
                         " attempt(s): " + LastErr);
}

bool Client::uploadTrace(const Trace &T, UploadOutcome &Out,
                         std::string *Error, uint64_t Sequence,
                         const std::string &RunId) {
  std::ostringstream Os(std::ios::binary);
  writeTraceBinary(Os, T);
  std::string Bytes = Os.str();
  return uploadFramed(WireContent::BinaryTrace, Bytes, Out, Error, Sequence,
                      RunId);
}

bool Client::uploadSummary(const triage::TriageSummary &S,
                           UploadOutcome &Out, std::string *Error,
                           uint64_t Sequence, const std::string &RunId) {
  return uploadFramed(WireContent::SignatureSummary, encodeSummary(S), Out,
                      Error, Sequence, RunId);
}

bool Client::uploadFile(const std::string &Path, UploadOutcome &Out,
                        std::string *Error, uint64_t Sequence,
                        const std::string &RunId) {
  std::ifstream Is(Path, std::ios::binary);
  if (!Is)
    return fail(Error, "cannot open '" + Path + "'");
  std::string Bytes((std::istreambuf_iterator<char>(Is)),
                    std::istreambuf_iterator<char>());
  if (sniffSummary(Bytes))
    return uploadFramed(WireContent::SignatureSummary, Bytes, Out, Error,
                        Sequence, RunId);
  std::istringstream Sniff(Bytes);
  if (sniffBinaryTrace(Sniff))
    return uploadFramed(WireContent::BinaryTrace, Bytes, Out, Error,
                        Sequence, RunId);
  return fail(Error, "'" + Path +
                         "' is neither a binary trace nor a signature "
                         "summary");
}
