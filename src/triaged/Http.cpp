//===- triaged/Http.cpp - Minimal HTTP/1.1 codec ----------------------------=//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/triaged/Http.h"

#include <algorithm>
#include <cctype>

using namespace sampletrack;
using namespace sampletrack::triaged;

namespace {

bool iequals(std::string_view A, std::string_view B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I)
    if (std::tolower(static_cast<unsigned char>(A[I])) !=
        std::tolower(static_cast<unsigned char>(B[I])))
      return false;
  return true;
}

std::string_view trim(std::string_view S) {
  while (!S.empty() && (S.front() == ' ' || S.front() == '\t'))
    S.remove_prefix(1);
  while (!S.empty() && (S.back() == ' ' || S.back() == '\t'))
    S.remove_suffix(1);
  return S;
}

/// RFC 7230 token characters — what a method or header name may contain.
bool isTokenChar(char C) {
  if (std::isalnum(static_cast<unsigned char>(C)))
    return true;
  switch (C) {
  case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
  case '+': case '-': case '.': case '^': case '_': case '`': case '|':
  case '~':
    return true;
  default:
    return false;
  }
}

bool isToken(std::string_view S) {
  return !S.empty() && std::all_of(S.begin(), S.end(), isTokenChar);
}

HttpParse bad(int Code, const std::string &Msg, int &Status,
              std::string *Error) {
  Status = Code;
  if (Error)
    *Error = Msg;
  return HttpParse::Bad;
}

} // namespace

const std::string *HttpRequest::header(std::string_view Name) const {
  for (const auto &[K, V] : Headers)
    if (iequals(K, Name))
      return &V;
  return nullptr;
}

bool HttpRequest::wantsClose() const {
  if (const std::string *C = header("Connection"))
    return iequals(*C, "close");
  return Version == "HTTP/1.0"; // 1.0 defaults to close, 1.1 to keep-alive.
}

std::string HttpRequest::queryParam(std::string_view Key) const {
  std::string_view Q = Query;
  while (!Q.empty()) {
    size_t Amp = Q.find('&');
    std::string_view Pair = Q.substr(0, Amp);
    size_t Eq = Pair.find('=');
    std::string_view K = Eq == std::string_view::npos ? Pair
                                                      : Pair.substr(0, Eq);
    if (K == Key)
      return Eq == std::string_view::npos
                 ? std::string()
                 : std::string(Pair.substr(Eq + 1));
    if (Amp == std::string_view::npos)
      break;
    Q.remove_prefix(Amp + 1);
  }
  return std::string();
}

HttpParse sampletrack::triaged::parseRequest(std::string_view Buffer,
                                             const HttpLimits &Limits,
                                             HttpRequest &Out,
                                             size_t &Consumed, int &Status,
                                             std::string *Error) {
  // The whole header block first: everything up to the blank line. Until it
  // arrives the only verdicts are "keep reading" and "too big".
  size_t HeaderEnd = Buffer.find("\r\n\r\n");
  if (HeaderEnd == std::string_view::npos) {
    if (Buffer.size() > Limits.MaxHeaderBytes)
      return bad(431, "header block exceeds " +
                          std::to_string(Limits.MaxHeaderBytes) + " bytes",
                 Status, Error);
    return HttpParse::NeedMore;
  }
  std::string_view Head = Buffer.substr(0, HeaderEnd);
  if (Head.size() > Limits.MaxHeaderBytes)
    return bad(431, "header block exceeds " +
                        std::to_string(Limits.MaxHeaderBytes) + " bytes",
               Status, Error);

  // Request line: METHOD SP TARGET SP VERSION.
  size_t LineEnd = Head.find("\r\n");
  std::string_view Line =
      LineEnd == std::string_view::npos ? Head : Head.substr(0, LineEnd);
  size_t Sp1 = Line.find(' ');
  size_t Sp2 = Sp1 == std::string_view::npos ? std::string_view::npos
                                             : Line.find(' ', Sp1 + 1);
  if (Sp1 == std::string_view::npos || Sp2 == std::string_view::npos ||
      Line.find(' ', Sp2 + 1) != std::string_view::npos)
    return bad(400, "malformed request line", Status, Error);
  std::string_view Method = Line.substr(0, Sp1);
  std::string_view Target = Line.substr(Sp1 + 1, Sp2 - Sp1 - 1);
  std::string_view Version = Line.substr(Sp2 + 1);
  if (!isToken(Method))
    return bad(400, "malformed method token", Status, Error);
  if (Target.empty() || Target[0] != '/')
    return bad(400, "request target must be an absolute path", Status,
               Error);
  if (Version != "HTTP/1.1" && Version != "HTTP/1.0") {
    if (Version.substr(0, 5) == "HTTP/")
      return bad(505, "unsupported HTTP version '" + std::string(Version) +
                          "'",
                 Status, Error);
    return bad(400, "malformed HTTP version", Status, Error);
  }

  HttpRequest R;
  R.Method = std::string(Method);
  R.Version = std::string(Version);
  size_t Q = Target.find('?');
  R.Path = std::string(Target.substr(0, Q));
  if (Q != std::string_view::npos)
    R.Query = std::string(Target.substr(Q + 1));

  // Header fields.
  std::string_view Rest =
      LineEnd == std::string_view::npos ? std::string_view()
                                        : Head.substr(LineEnd + 2);
  while (!Rest.empty()) {
    size_t Eol = Rest.find("\r\n");
    std::string_view HLine =
        Eol == std::string_view::npos ? Rest : Rest.substr(0, Eol);
    size_t Colon = HLine.find(':');
    if (Colon == std::string_view::npos || !isToken(HLine.substr(0, Colon)))
      return bad(400, "malformed header field", Status, Error);
    R.Headers.emplace_back(std::string(HLine.substr(0, Colon)),
                           std::string(trim(HLine.substr(Colon + 1))));
    if (Eol == std::string_view::npos)
      break;
    Rest.remove_prefix(Eol + 2);
  }

  // Body framing. Chunked encoding is out of scope for this service.
  if (R.header("Transfer-Encoding"))
    return bad(501, "Transfer-Encoding is not supported", Status, Error);
  // Exactly one Content-Length may frame the body. Accepting the first of
  // several (even byte-identical ones) is how request-smuggling desyncs
  // start: two parsers disagreeing on which value frames the body disagree
  // on where the next request begins (RFC 7230 section 3.3.3 lets a server
  // reject outright, the conservative reading).
  size_t ContentLengths = 0;
  for (const auto &[K, V] : R.Headers)
    if (iequals(K, "Content-Length"))
      ++ContentLengths;
  if (ContentLengths > 1)
    return bad(400, "duplicate Content-Length", Status, Error);
  uint64_t BodyLen = 0;
  if (const std::string *CL = R.header("Content-Length")) {
    if (CL->empty() || CL->size() > 19 ||
        !std::all_of(CL->begin(), CL->end(), [](char C) {
          return C >= '0' && C <= '9';
        }))
      return bad(400, "malformed Content-Length", Status, Error);
    BodyLen = std::stoull(*CL);
    if (BodyLen > Limits.MaxBodyBytes)
      return bad(413, "body of " + *CL + " bytes exceeds the " +
                          std::to_string(Limits.MaxBodyBytes) + "-byte cap",
                 Status, Error);
  }

  size_t Total = HeaderEnd + 4 + BodyLen;
  if (Buffer.size() < Total)
    return HttpParse::NeedMore;
  R.Body = std::string(Buffer.substr(HeaderEnd + 4, BodyLen));
  Out = std::move(R);
  Consumed = Total;
  return HttpParse::Ok;
}

const char *sampletrack::triaged::httpStatusText(int Status) {
  switch (Status) {
  case 200: return "OK";
  case 400: return "Bad Request";
  case 404: return "Not Found";
  case 405: return "Method Not Allowed";
  case 408: return "Request Timeout";
  case 409: return "Conflict";
  case 413: return "Payload Too Large";
  case 415: return "Unsupported Media Type";
  case 422: return "Unprocessable Entity";
  case 431: return "Request Header Fields Too Large";
  case 500: return "Internal Server Error";
  case 501: return "Not Implemented";
  case 503: return "Service Unavailable";
  case 505: return "HTTP Version Not Supported";
  default:  return "Unknown";
  }
}

std::string sampletrack::triaged::renderResponse(int Status,
                                                 std::string_view ContentType,
                                                 std::string_view Body,
                                                 bool KeepAlive,
                                                 std::string_view ExtraHeaders) {
  std::string Out;
  Out.reserve(128 + ExtraHeaders.size() + Body.size());
  Out += "HTTP/1.1 ";
  Out += std::to_string(Status);
  Out += ' ';
  Out += httpStatusText(Status);
  Out += "\r\nServer: sampletrack-triaged\r\nContent-Type: ";
  Out += ContentType;
  Out += "\r\nContent-Length: ";
  Out += std::to_string(Body.size());
  Out += "\r\nConnection: ";
  Out += KeepAlive ? "keep-alive" : "close";
  Out += "\r\n";
  Out += ExtraHeaders;
  Out += "\r\n";
  Out += Body;
  return Out;
}

std::string sampletrack::triaged::renderError(int Status,
                                              std::string_view Detail,
                                              bool KeepAlive,
                                              unsigned RetryAfterSeconds) {
  std::string Body = std::to_string(Status);
  Body += ' ';
  Body += httpStatusText(Status);
  if (!Detail.empty()) {
    Body += ": ";
    Body += Detail;
  }
  Body += '\n';
  std::string Extra;
  if (RetryAfterSeconds > 0)
    Extra = "Retry-After: " + std::to_string(RetryAfterSeconds) + "\r\n";
  return renderResponse(Status, "text/plain", Body, KeepAlive, Extra);
}
