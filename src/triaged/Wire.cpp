//===- triaged/Wire.cpp - Upload framing + summaries ------------------------=//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/triaged/Wire.h"

#include "sampletrack/support/Common.h"

#include <cstdio>
#include <fstream>
#include <iterator>
#include <unordered_set>

using namespace sampletrack;
using namespace sampletrack::triaged;

const char *sampletrack::triaged::wireContentName(WireContent C) {
  switch (C) {
  case WireContent::BinaryTrace:
    return "binary-trace";
  case WireContent::SignatureSummary:
    return "signature-summary";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Little-endian string builders/readers (the same byte discipline as the
// TriageStore format; kept local — each format owns its framing).
//===----------------------------------------------------------------------===//

namespace {

constexpr char SummaryMagic[4] = {'S', 'T', 'S', 'G'};
constexpr uint32_t SummaryFormatVersion = 1;
constexpr char FrameMagic[4] = {'S', 'T', 'W', 'F'};
constexpr uint32_t FrameVersion = 1;

void putU32(std::string &S, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    S.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putU64(std::string &S, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    S.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

uint64_t fnv1a(std::string_view Bytes) {
  Fnv1a H;
  H.bytes(Bytes.data(), Bytes.size());
  return H.value();
}

/// Bounds-checked little-endian reader over a byte view.
struct ViewReader {
  std::string_view Bytes;
  size_t Pos = 0;

  bool getU32(uint32_t &V) {
    if (Bytes.size() - Pos < 4)
      return false;
    V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(static_cast<unsigned char>(Bytes[Pos + I]))
           << (8 * I);
    Pos += 4;
    return true;
  }

  bool getU64(uint64_t &V) {
    if (Bytes.size() - Pos < 8)
      return false;
    V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(static_cast<unsigned char>(Bytes[Pos + I]))
           << (8 * I);
    Pos += 8;
    return true;
  }

  bool getByte(uint8_t &V) {
    if (Pos >= Bytes.size())
      return false;
    V = static_cast<unsigned char>(Bytes[Pos++]);
    return true;
  }

  bool getMagic(const char (&M)[4]) {
    if (Bytes.size() - Pos < 4)
      return false;
    for (int I = 0; I < 4; ++I)
      if (Bytes[Pos + I] != M[I])
        return false;
    Pos += 4;
    return true;
  }

  bool exhausted() const { return Pos == Bytes.size(); }
};

bool fail(std::string *Error, const std::string &Msg) {
  if (Error)
    *Error = Msg;
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// Signature summaries
//===----------------------------------------------------------------------===//

std::string sampletrack::triaged::encodeSummary(const triage::TriageSummary &S) {
  std::string Payload;
  Payload.reserve(29 + S.Entries.size() * 37);
  putU32(Payload, triage::RaceSignature::Version);
  putU64(Payload, S.RacesDeclared);
  putU64(Payload, S.DroppedDeclarations);
  Payload.push_back(S.Capped ? 1 : 0);
  putU64(Payload, S.Entries.size());
  for (const triage::TriageEntry &E : S.Entries) {
    putU64(Payload, E.Signature);
    putU64(Payload, E.Hits);
    putU64(Payload, E.Exemplar.EventIndex);
    putU32(Payload, E.Exemplar.Tid);
    putU64(Payload, E.Exemplar.Var);
    Payload.push_back(static_cast<char>(E.Exemplar.Kind));
  }

  std::string Out;
  Out.reserve(16 + Payload.size());
  Out.append(SummaryMagic, 4);
  putU32(Out, SummaryFormatVersion);
  putU64(Out, fnv1a(Payload));
  Out += Payload;
  return Out;
}

bool sampletrack::triaged::decodeSummary(std::string_view Bytes,
                                         triage::TriageSummary &Out,
                                         std::string *Error) {
  ViewReader Rd{Bytes};
  if (!Rd.getMagic(SummaryMagic))
    return fail(Error, "not a signature summary (bad magic)");
  uint32_t Fmt = 0;
  uint64_t Sum = 0;
  if (!Rd.getU32(Fmt) || !Rd.getU64(Sum))
    return fail(Error, "truncated summary header");
  if (Fmt != SummaryFormatVersion)
    return fail(Error, "unsupported summary format version " +
                           std::to_string(Fmt) + " (this build reads " +
                           std::to_string(SummaryFormatVersion) + ")");
  std::string_view Payload = Bytes.substr(Rd.Pos);
  if (fnv1a(Payload) != Sum)
    return fail(Error,
                "summary checksum mismatch (truncated or corrupted upload)");

  ViewReader Pd{Payload};
  triage::TriageSummary S;
  uint32_t SigVer = 0;
  uint64_t Count = 0;
  uint8_t Capped = 0;
  if (!Pd.getU32(SigVer) || !Pd.getU64(S.RacesDeclared) ||
      !Pd.getU64(S.DroppedDeclarations) || !Pd.getByte(Capped) ||
      !Pd.getU64(Count))
    return fail(Error, "truncated summary payload");
  if (SigVer != triage::RaceSignature::Version)
    return fail(Error, "race-signature version mismatch (summary has v" +
                           std::to_string(SigVer) + ", this build speaks v" +
                           std::to_string(triage::RaceSignature::Version) +
                           ")");
  if (Capped > 1)
    return fail(Error, "corrupt summary (bad capped flag)");
  S.Capped = Capped != 0;
  std::unordered_set<uint64_t> Seen;
  S.Entries.reserve(Count < (1u << 20) ? Count : (1u << 20));
  uint64_t HitTotal = 0;
  for (uint64_t I = 0; I < Count; ++I) {
    triage::TriageEntry E;
    uint32_t Tid = 0;
    uint8_t Kind = 0;
    if (!Pd.getU64(E.Signature) || !Pd.getU64(E.Hits) ||
        !Pd.getU64(E.Exemplar.EventIndex) || !Pd.getU32(Tid) ||
        !Pd.getU64(E.Exemplar.Var) || !Pd.getByte(Kind))
      return fail(Error, "truncated summary entry");
    if (Kind > static_cast<uint8_t>(OpKind::AcquireLoad))
      return fail(Error, "corrupt summary entry (bad op kind)");
    if (E.Hits == 0)
      return fail(Error, "corrupt summary entry (zero hit count)");
    if (!Seen.insert(E.Signature).second)
      return fail(Error, "corrupt summary (duplicate signature)");
    E.Exemplar.Tid = Tid;
    E.Exemplar.Kind = static_cast<OpKind>(Kind);
    HitTotal += E.Hits;
    S.Entries.push_back(E);
  }
  if (!Pd.exhausted())
    return fail(Error, "trailing garbage after the last summary entry");
  // Declared counts every insert, stored or dropped; it can never be less
  // than what the stored entries account for.
  if (S.RacesDeclared < HitTotal + S.DroppedDeclarations)
    return fail(Error, "corrupt summary (declaration counts inconsistent)");
  if (S.Capped != (S.DroppedDeclarations != 0))
    return fail(Error, "corrupt summary (capped flag inconsistent)");
  Out = std::move(S);
  return true;
}

bool sampletrack::triaged::writeSummaryFile(support::FileSystem &Fs,
                                            const std::string &Path,
                                            const triage::TriageSummary &S,
                                            std::string *Error) {
  std::string Bytes = encodeSummary(S);
  std::unique_ptr<support::WritableFile> Os =
      Fs.openWrite(Path, /*Append=*/false);
  if (!Os)
    return fail(Error, "cannot write '" + Path + "'");
  // writeAll loops over short writes; a hard error mid-file removes the
  // partial artifact so a failed write never leaves a sniffable summary.
  if (!support::writeAll(*Os, Bytes) || !Os->close()) {
    Os->close();
    Fs.remove(Path);
    return fail(Error, "I/O error writing '" + Path + "'");
  }
  return true;
}

bool sampletrack::triaged::writeSummaryFile(const std::string &Path,
                                            const triage::TriageSummary &S,
                                            std::string *Error) {
  return writeSummaryFile(support::FileSystem::real(), Path, S, Error);
}

bool sampletrack::triaged::readSummaryFile(support::FileSystem &Fs,
                                           const std::string &Path,
                                           triage::TriageSummary &Out,
                                           std::string *Error) {
  std::string Bytes;
  if (!Fs.readFile(Path, Bytes, Error))
    return false;
  std::string Err;
  if (!decodeSummary(Bytes, Out, &Err))
    return fail(Error, "'" + Path + "': " + Err);
  return true;
}

bool sampletrack::triaged::readSummaryFile(const std::string &Path,
                                           triage::TriageSummary &Out,
                                           std::string *Error) {
  return readSummaryFile(support::FileSystem::real(), Path, Out, Error);
}

bool sampletrack::triaged::sniffSummary(std::string_view Bytes) {
  return Bytes.size() >= 4 && Bytes[0] == 'S' && Bytes[1] == 'T' &&
         Bytes[2] == 'S' && Bytes[3] == 'G';
}

//===----------------------------------------------------------------------===//
// Upload frames
//===----------------------------------------------------------------------===//

std::string sampletrack::triaged::frame(WireContent C,
                                        std::string_view Payload) {
  std::string Out;
  Out.reserve(25 + Payload.size());
  Out.append(FrameMagic, 4);
  putU32(Out, FrameVersion);
  Out.push_back(static_cast<char>(C));
  putU64(Out, Payload.size());
  putU64(Out, fnv1a(Payload));
  Out.append(Payload.data(), Payload.size());
  return Out;
}

bool sampletrack::triaged::parseFrame(std::string_view Bytes, WireFrame &Out,
                                      std::string *Error) {
  ViewReader Rd{Bytes};
  if (!Rd.getMagic(FrameMagic))
    return fail(Error, "not an upload frame (bad magic)");
  uint32_t Ver = 0;
  uint8_t Content = 0;
  uint64_t Len = 0, Sum = 0;
  if (!Rd.getU32(Ver) || !Rd.getByte(Content) || !Rd.getU64(Len) ||
      !Rd.getU64(Sum))
    return fail(Error, "truncated frame header");
  if (Ver != FrameVersion)
    return fail(Error, "unsupported frame version " + std::to_string(Ver) +
                           " (this build speaks " +
                           std::to_string(FrameVersion) + ")");
  if (Content > static_cast<uint8_t>(WireContent::SignatureSummary))
    return fail(Error, "unknown frame content kind " +
                           std::to_string(Content));
  std::string_view Payload = Bytes.substr(Rd.Pos);
  if (Payload.size() < Len)
    return fail(Error, "truncated frame payload (header promises " +
                           std::to_string(Len) + " bytes, got " +
                           std::to_string(Payload.size()) + ")");
  if (Payload.size() > Len)
    return fail(Error, "trailing garbage after the frame payload");
  if (fnv1a(Payload) != Sum)
    return fail(Error,
                "frame checksum mismatch (corrupted in transit)");
  Out.Content = static_cast<WireContent>(Content);
  Out.Payload = Payload;
  return true;
}
