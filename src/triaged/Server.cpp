//===- triaged/Server.cpp - Fleet ingestion service -------------------------=//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/triaged/Server.h"

#include "sampletrack/api/AnalysisSession.h"
#include "sampletrack/trace/TraceIO.h"
#include "sampletrack/triage/Exporters.h"
#include "sampletrack/triaged/Wire.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <sstream>

using namespace sampletrack;
using namespace sampletrack::triaged;

api::SessionConfig sampletrack::triaged::fleetAnalysisConfig() {
  api::SessionConfig Cfg;
  Cfg.Engines = {EngineKind::FastTrack, EngineKind::SamplingO};
  Cfg.Sampling = api::SamplerKind::Always;
  return Cfg;
}

namespace {

/// send() the whole buffer, suppressing SIGPIPE. Returns false once the
/// peer is gone — the caller just closes.
bool sendAll(int Fd, std::string_view Bytes) {
  size_t Off = 0;
  while (Off < Bytes.size()) {
    ssize_t N = ::send(Fd, Bytes.data() + Off, Bytes.size() - Off,
                       MSG_NOSIGNAL);
    if (N <= 0) {
      if (N < 0 && errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

std::string jsonStringArray(const std::vector<std::string> &Items) {
  std::string Out = "[";
  for (size_t I = 0; I < Items.size(); ++I) {
    Out += "\"" + Items[I] + "\"";
    if (I + 1 < Items.size())
      Out += ", ";
  }
  Out += "]";
  return Out;
}

/// The POST /v1/runs response body and the /v1/runs/{id}/classified body
/// share one rendering: what this run's merge did to the warehouse. RunId
/// needs no JSON escaping — the upload handler constrains it to
/// [A-Za-z0-9._-].
std::string renderRunRecord(const RunRecord &R) {
  std::ostringstream OS;
  OS << "{\n"
     << "  \"run\": " << R.Run << ",\n"
     << "  \"runId\": \"" << R.RunId << "\",\n"
     << "  \"deduplicated\": " << (R.Deduplicated ? "true" : "false")
     << ",\n"
     << "  \"content\": \"" << wireContentName(R.Content) << "\",\n"
     << "  \"declared\": " << R.Declared << ",\n"
     << "  \"distinct\": " << R.Distinct << ",\n"
     << "  \"new\": " << R.NewCount << ",\n"
     << "  \"known\": " << R.KnownCount << ",\n"
     << "  \"regressed\": " << R.RegressedCount << ",\n"
     << "  \"suppressed\": " << R.SuppressedCount << ",\n"
     << "  \"newRaces\": " << jsonStringArray(R.NewSigs) << ",\n"
     << "  \"regressedRaces\": " << jsonStringArray(R.RegressedSigs) << "\n"
     << "}\n";
  return OS.str();
}

/// Rebuilds a RunRecord from a journal-replayed run, so restart answers
/// /v1/runs/{id}/classified exactly as the original ingest did.
RunRecord recordFromInfo(const triage::TriageLog::RunInfo &I) {
  RunRecord R;
  R.Run = I.Run;
  R.RunId = I.RunId;
  R.Content = static_cast<WireContent>(I.Content);
  R.Declared = I.Declared;
  R.Distinct = I.Distinct;
  R.NewCount = I.Merge.NewSignatures;
  R.KnownCount = I.Merge.KnownSignatures;
  R.RegressedCount = I.Merge.RegressedSignatures;
  R.SuppressedCount = I.Merge.SuppressedSignatures;
  for (const triage::TriageEntry &E : I.Merge.NewRaces)
    R.NewSigs.push_back(triage::RaceSignature{E.Signature}.hex());
  for (const triage::TriageEntry &E : I.Merge.RegressedRaces)
    R.RegressedSigs.push_back(triage::RaceSignature{E.Signature}.hex());
  return R;
}

constexpr std::string_view RunIdAlphabet =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789._-";

/// Bounded route set: histogram slots and request-span names. Classified
/// lookups fold their run id away; unknown paths fold into "other" — the
/// profile's cardinality cannot be driven by attacker-chosen paths.
const char *const RouteNames[] = {
    "/healthz",      "/v1/runs",  "/v1/ranked",
    "/v1/sarif",     "/v1/dashboard", "/v1/suppressions",
    "/v1/stats",     "/v1/runs/{id}/classified", "other",
};
static_assert(sizeof(RouteNames) / sizeof(RouteNames[0]) == 9,
              "RouteNames must match Server::NumRoutes");

size_t routeOf(const std::string &Path) {
  for (size_t R = 0; R + 2 < sizeof(RouteNames) / sizeof(RouteNames[0]); ++R)
    if (Path == RouteNames[R])
      return R;
  if (Path.rfind("/v1/runs/", 0) == 0)
    return 7;
  return 8;
}

} // namespace

Server::Server(ServerConfig C) : Cfg(std::move(C)) {
  if (Cfg.NumWorkers == 0)
    Cfg.NumWorkers = 1;
}

Server::~Server() { stop(); }

bool Server::start(std::string *Error) {
  int Fd = -1;
  auto Fail = [&](const std::string &Msg) {
    if (Error)
      *Error = Msg;
    if (Fd >= 0)
      ::close(Fd);
    return false;
  };
  if (Running.load(std::memory_order_acquire))
    return Fail("server already running");

  // The warehouse first: refusing to serve beats silently forking history.
  std::string Err;
  if (!Cfg.StorePath.empty()) {
    triage::TriageLog::Options LO;
    LO.Fs = Cfg.Fs;
    LO.SuppressionFile = Cfg.SuppressionFile;
    LO.CompactionRatio = Cfg.CompactionRatio;
    LO.MinCompactionBytes = Cfg.MinCompactionBytes;
    if (!Log.open(Cfg.StorePath, LO, &Err))
      return Fail(Err);
  } else if (!Cfg.SuppressionFile.empty() &&
             !Log.store().loadSuppressionFile(Cfg.SuppressionFile, &Err)) {
    return Fail(Err);
  }
  LoadedRuns = Log.baseRunsAtOpen();
  RunRecords.clear();
  RunIdIndex.clear();
  for (const triage::TriageLog::RunInfo &I : Log.journalRuns()) {
    RunRecords.push_back(recordFromInfo(I));
    if (!I.RunId.empty())
      RunIdIndex[I.RunId] = RunRecords.size() - 1;
  }

  Fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (Fd < 0)
    return Fail(std::string("socket: ") + std::strerror(errno));
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Cfg.Port);
  if (::inet_pton(AF_INET, Cfg.BindAddress.c_str(), &Addr.sin_addr) != 1)
    return Fail("bad bind address '" + Cfg.BindAddress + "'");
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0)
    return Fail("bind " + Cfg.BindAddress + ":" +
                std::to_string(Cfg.Port) + ": " + std::strerror(errno));
  if (::listen(Fd, 128) < 0)
    return Fail(std::string("listen: ") + std::strerror(errno));

  socklen_t Len = sizeof(Addr);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) < 0)
    return Fail(std::string("getsockname: ") + std::strerror(errno));
  BoundPort = ntohs(Addr.sin_port);

  ListenFd.store(Fd, std::memory_order_release);
  Running.store(true, std::memory_order_release);
  Draining.store(false, std::memory_order_release);
  StopCompactor = false;
  // Locked trees: each worker writes its own, but /v1/stats and
  // chrome-trace export read them while requests are in flight.
  if (Cfg.ProfilingEnabled)
    Prof = std::make_unique<prof::Profiler>(/*LockTrees=*/true);
  for (size_t I = 0; I < Cfg.NumWorkers; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
  Compactor = std::thread([this] { compactionLoop(); });
  Acceptor = std::thread([this] { acceptLoop(); });
  return true;
}

void Server::acceptLoop() {
  // The fd never changes while the acceptor runs; drain() invalidates the
  // member and closes the socket, which pops accept4 out with an error.
  int Listener = ListenFd.load(std::memory_order_acquire);
  for (;;) {
    int Fd = ::accept4(Listener, nullptr, nullptr, SOCK_CLOEXEC);
    if (Fd < 0) {
      if (errno == EINTR)
        continue;
      // drain()/stop() closed the listen socket under us: done serving.
      break;
    }
    if (Draining.load(std::memory_order_acquire)) {
      ::close(Fd);
      continue;
    }
    int One = 1;
    ::setsockopt(Fd, IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));
    CConnections.fetch_add(1, std::memory_order_relaxed);
    bool Shed = false;
    {
      std::lock_guard<std::mutex> L(QueueMutex);
      if (Cfg.MaxQueueDepth != 0 && Queue.size() >= Cfg.MaxQueueDepth)
        Shed = true;
      else
        Queue.push_back(Fd);
    }
    if (Shed) {
      // Every worker is busy and the backlog is full: shed now with a
      // backoff hint instead of queueing without bound (an overloaded
      // warehouse answering slowly to everyone helps no one).
      CShed.fetch_add(1, std::memory_order_relaxed);
      sendAll(Fd, renderError(503, "server overloaded, try again",
                              /*KeepAlive=*/false, /*RetryAfterSeconds=*/1));
      ::close(Fd);
      continue;
    }
    QueueCv.notify_one();
  }
}

void Server::workerLoop(size_t Worker) {
  prof::Tree *PT =
      Prof ? Prof->makeTree("http-worker-" + std::to_string(Worker)) : nullptr;
  for (;;) {
    int Fd = -1;
    {
      std::unique_lock<std::mutex> L(QueueMutex);
      QueueCv.wait(L, [&] {
        return !Queue.empty() || !Running.load(std::memory_order_acquire);
      });
      if (Queue.empty())
        return; // Shutting down.
      Fd = Queue.front();
      Queue.pop_front();
      ++InFlight;
    }
    serveConnection(Fd, PT);
    {
      std::lock_guard<std::mutex> L(QueueMutex);
      --InFlight;
    }
    IdleCv.notify_all();
  }
}

void Server::compactionLoop() {
  // The journal-into-base fold runs here so the O(store) write never sits
  // on an upload's critical path: appendRun wakes this thread past the
  // ratio trigger, beginCompaction snapshots under the writer lock, the
  // expensive prepare runs unlocked (appends keep landing in the old
  // journal meanwhile), and the commit — a rename and a pointer swap —
  // takes the lock again only briefly.
  std::unique_lock<std::mutex> L(WriterMutex);
  for (;;) {
    CompactionCv.wait(L, [&] { return StopCompactor || Log.needsCompaction(); });
    if (StopCompactor)
      return;
    triage::TriageLog::CompactionPlan P;
    if (!Log.beginCompaction(P)) {
      // Poisoned (or closed): nothing more to do until a restart heals it.
      CompactionCv.wait(L, [&] { return StopCompactor; });
      return;
    }
    L.unlock();
    std::string Err;
    bool Ok = Log.prepareCompaction(P, &Err);
    L.lock();
    if (Ok)
      Ok = Log.commitCompaction(P, &Err);
    if (!Ok) {
      // The old generation is still live and appends continue against it;
      // back off so a persistently failing disk does not spin this loop.
      CompactionCv.wait_for(L, std::chrono::seconds(1),
                            [&] { return StopCompactor; });
    }
  }
}

void Server::serveConnection(int Fd, prof::Tree *PT) {
  std::string Buf;
  uint64_t IdleMillis = 0;
  // The per-request deadline counts wall-clock from the first byte of a
  // request — poll ticks alone cannot see a slowloris client trickling one
  // byte per tick, which never lets the connection look idle.
  bool InRequest = false;
  std::chrono::steady_clock::time_point ReqStart{};
  char Chunk[64 << 10];
  auto DeadlineExpired = [&] {
    if (!InRequest || Cfg.Limits.RequestDeadlineMillis == 0)
      return false;
    auto Elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - ReqStart)
                       .count();
    return static_cast<uint64_t>(Elapsed) >= Cfg.Limits.RequestDeadlineMillis;
  };
  for (;;) {
    // Serve every complete (possibly pipelined) request already buffered.
    HttpRequest Req;
    size_t Consumed = 0;
    int Status = 0;
    std::string PErr;
    HttpParse P =
        parseRequest(Buf, Cfg.Limits, Req, Consumed, Status, &PErr);
    if (P == HttpParse::Bad) {
      CBadRequests.fetch_add(1, std::memory_order_relaxed);
      sendAll(Fd, renderError(Status, PErr, /*KeepAlive=*/false));
      break;
    }
    if (P == HttpParse::Ok) {
      Buf.erase(0, Consumed);
      IdleMillis = 0;
      // A pipelined successor's bytes are already here: its clock started.
      InRequest = !Buf.empty();
      if (InRequest)
        ReqStart = std::chrono::steady_clock::now();
      CRequests.fetch_add(1, std::memory_order_relaxed);
      bool Close = false;
      // Request latency covers routing through the last response byte; the
      // span lands under request/<route> in the worker's tree.
      size_t Route = routeOf(Req.Path);
      uint64_t T0 = Cfg.ProfilingEnabled ? prof::nowNanos() : 0;
      std::string Response = handle(Req, Close, PT);
      bool Sent = sendAll(Fd, Response);
      if (Cfg.ProfilingEnabled) {
        uint64_t T1 = prof::nowNanos();
        RouteLatency[Route].record((T1 - T0) / 1000);
        if (PT)
          PT->addSpan(PT->internPath({"request", RouteNames[Route]}), T0, T1);
      }
      if (!Sent || Close)
        break;
      continue;
    }

    // NeedMore: a partial request is in progress once any byte of it is.
    if (!Buf.empty() && !InRequest) {
      InRequest = true;
      ReqStart = std::chrono::steady_clock::now();
    }
    if (DeadlineExpired()) {
      CReqTimeouts.fetch_add(1, std::memory_order_relaxed);
      sendAll(Fd, renderError(408,
                              "request not completed within " +
                                  std::to_string(
                                      Cfg.Limits.RequestDeadlineMillis) +
                                  " ms",
                              /*KeepAlive=*/false));
      break;
    }

    // Poll in short ticks so drain() is honored promptly even on idle
    // keep-alive connections.
    pollfd Pfd{Fd, POLLIN, 0};
    int Ready = ::poll(&Pfd, 1, 100);
    if (Ready < 0) {
      if (errno == EINTR)
        continue;
      break;
    }
    if (Ready == 0) {
      if (Buf.empty()) {
        // Between requests: idle bookkeeping. (A request in progress is
        // governed by the deadline above, not the idle timeout.)
        IdleMillis += 100;
        if (Draining.load(std::memory_order_acquire))
          break;
        if (IdleMillis >= Cfg.IdleTimeoutMillis)
          break;
      }
      continue;
    }
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N <= 0)
      break; // Peer closed (or errored); a partial request just drops.
    Buf.append(Chunk, static_cast<size_t>(N));
  }
  ::close(Fd);
}

std::string Server::handle(const HttpRequest &Req, bool &Close,
                           prof::Tree *PT) {
  bool KeepAlive =
      !Req.wantsClose() && !Draining.load(std::memory_order_acquire);
  Close = !KeepAlive;

  const std::string &Path = Req.Path;
  auto MethodIs = [&](const char *M) { return Req.Method == M; };
  auto WrongMethod = [&](const char *Allowed) {
    CBadRequests.fetch_add(1, std::memory_order_relaxed);
    return renderError(405, std::string("use ") + Allowed, KeepAlive);
  };

  if (Path == "/healthz") {
    if (!MethodIs("GET"))
      return WrongMethod("GET");
    return renderResponse(200, "text/plain", "ok\n", KeepAlive);
  }
  if (Path == "/v1/runs") {
    if (!MethodIs("POST"))
      return WrongMethod("POST");
    return handleUpload(Req, KeepAlive, PT);
  }
  if (Path == "/v1/ranked") {
    if (!MethodIs("GET"))
      return WrongMethod("GET");
    size_t TopN = 10;
    std::string N = Req.queryParam("n");
    if (!N.empty())
      TopN = std::strtoull(N.c_str(), nullptr, 10);
    std::lock_guard<std::mutex> L(WriterMutex);
    return renderResponse(200, "text/plain",
                          triage::toText(Log.store(), TopN), KeepAlive);
  }
  if (Path == "/v1/sarif") {
    if (!MethodIs("GET"))
      return WrongMethod("GET");
    std::lock_guard<std::mutex> L(WriterMutex);
    return renderResponse(200, "application/sarif+json",
                          triage::toSarif(Log.store(), Cfg.ToolVersion),
                          KeepAlive);
  }
  if (Path == "/v1/dashboard") {
    if (!MethodIs("GET"))
      return WrongMethod("GET");
    std::lock_guard<std::mutex> L(WriterMutex);
    return renderResponse(200, "application/json",
                          triage::toJson(Log.store()), KeepAlive);
  }
  if (Path == "/v1/suppressions") {
    if (!MethodIs("GET"))
      return WrongMethod("GET");
    std::lock_guard<std::mutex> L(WriterMutex);
    std::string Body = "# sampletrack suppressions, one hex race signature "
                       "per line\n";
    for (const triage::TriageStore::Record &R : Log.store().records())
      if (R.Suppressed)
        Body += triage::RaceSignature{R.Signature}.hex() + "\n";
    return renderResponse(200, "text/plain", Body, KeepAlive);
  }
  if (Path == "/v1/stats") {
    if (!MethodIs("GET"))
      return WrongMethod("GET");
    return renderResponse(200, "application/json", statsJson(), KeepAlive);
  }
  if (Path.rfind("/v1/runs/", 0) == 0) {
    if (!MethodIs("GET"))
      return WrongMethod("GET");
    return handleClassified(Path, KeepAlive);
  }
  CNotFound.fetch_add(1, std::memory_order_relaxed);
  return renderError(404, "no route for " + Path, KeepAlive);
}

std::string Server::handleUpload(const HttpRequest &Req, bool KeepAlive,
                                 prof::Tree *PT) {
  auto Reject = [&](int Status, const std::string &Detail) {
    CUploadsBad.fetch_add(1, std::memory_order_relaxed);
    return renderError(Status, Detail, KeepAlive);
  };

  // Upload stage spans, nested under the route's request span: header
  // validation + frame parse / payload decode (incl. server-side analysis
  // of trace uploads) / single-writer merge.
  prof::NodeId ParseNode = 0, DecodeNode = 0, AnalyzeNode = 0, MergeNode = 0;
  if (PT) {
    ParseNode = PT->internPath({"request", "/v1/runs", "parse"});
    DecodeNode = PT->internPath({"request", "/v1/runs", "decode"});
    AnalyzeNode = PT->internPath({"request", "/v1/runs", "analyze"});
    MergeNode = PT->internPath({"request", "/v1/runs", "merge"});
  }
  uint64_t StageT0 = PT ? prof::nowNanos() : 0;

  uint64_t Sequence = 0; // 0 = unsequenced (arrival order).
  if (const std::string *Seq = Req.header("X-Sampletrack-Sequence")) {
    char *End = nullptr;
    Sequence = std::strtoull(Seq->c_str(), &End, 10);
    if (Seq->empty() || *End != '\0' || Sequence == 0)
      return Reject(400, "malformed X-Sampletrack-Sequence");
  }

  std::string RunId; // "" = no idempotency key.
  if (const std::string *Rid = Req.header("X-Sampletrack-Run-Id")) {
    RunId = *Rid;
    if (RunId.empty() || RunId.size() > 128 ||
        RunId.find_first_not_of(RunIdAlphabet) != std::string::npos)
      return Reject(400, "malformed X-Sampletrack-Run-Id (want 1-128 chars "
                         "of [A-Za-z0-9._-])");
  }

  WireFrame Frame;
  std::string Err;
  if (!parseFrame(Req.Body, Frame, &Err))
    return Reject(400, Err);
  if (PT) {
    uint64_t Now = prof::nowNanos();
    PT->addSpan(ParseNode, StageT0, Now);
    StageT0 = Now;
  }

  triage::TriageSummary Summary;
  uint64_t Events = 0;
  if (Frame.Content == WireContent::BinaryTrace) {
    std::istringstream Is{std::string(Frame.Payload)};
    if (!sniffBinaryTrace(Is))
      return Reject(422, "frame payload is not a binary trace");
    Trace T;
    if (!readTraceBinary(Is, T, &Err))
      return Reject(422, Err);
    if (PT) {
      uint64_t Now = prof::nowNanos();
      PT->addSpan(DecodeNode, StageT0, Now);
      StageT0 = Now;
    }
    // Analyze with the server's engines; the triage knobs are the
    // server's own (the store behind this very endpoint).
    api::SessionConfig A = Cfg.Analysis;
    A.TriageStorePath.clear();
    A.SuppressionFile.clear();
    api::SessionResult R = api::AnalysisSession(A).run(T);
    Summary = std::move(R.Triage);
    Events = R.EventsProcessed;
    CTraceUploads.fetch_add(1, std::memory_order_relaxed);
    if (PT) {
      uint64_t Now = prof::nowNanos();
      PT->addSpan(AnalyzeNode, StageT0, Now);
      StageT0 = Now;
    }
  } else {
    if (!decodeSummary(Frame.Payload, Summary, &Err))
      return Reject(422, Err);
    CSummaryUploads.fetch_add(1, std::memory_order_relaxed);
    if (PT) {
      uint64_t Now = prof::nowNanos();
      PT->addSpan(DecodeNode, StageT0, Now);
      StageT0 = Now;
    }
  }

  RunRecord Rec;
  int Status = 0;
  std::string Detail;
  bool Merged = mergeUpload(Summary, Frame.Content, Sequence, RunId, Rec,
                            Status, Detail);
  if (PT)
    PT->addSpan(MergeNode, StageT0, prof::nowNanos());
  if (!Merged)
    return Reject(Status, Detail);

  if (Rec.Deduplicated)
    CDeduplicated.fetch_add(1, std::memory_order_relaxed);
  else
    CUploadsOk.fetch_add(1, std::memory_order_relaxed);
  CBytes.fetch_add(Req.Body.size(), std::memory_order_relaxed);
  CEvents.fetch_add(Events, std::memory_order_relaxed);
  CRaces.fetch_add(Summary.RacesDeclared, std::memory_order_relaxed);
  return renderResponse(200, "application/json", renderRunRecord(Rec),
                        KeepAlive);
}

bool Server::mergeUpload(const triage::TriageSummary &S, WireContent Content,
                         uint64_t Sequence, const std::string &RunId,
                         RunRecord &Out, int &Status, std::string &Detail) {
  std::unique_lock<std::mutex> L(WriterMutex);
  // Idempotency first, before any sequence wait: a retry of a run that
  // already merged must answer its original breakdown immediately — the
  // original already advanced the sequence, so waiting for "its" slot
  // again would deadlock into a 409.
  auto Replay = [&]() -> bool {
    if (RunId.empty())
      return false;
    auto It = RunIdIndex.find(RunId);
    if (It == RunIdIndex.end())
      return false;
    Out = RunRecords[It->second];
    Out.Deduplicated = true;
    return true;
  };
  if (Replay())
    return true;

  if (Sequence != 0) {
    bool Admitted = SequenceCv.wait_for(
        L, std::chrono::milliseconds(Cfg.SequenceTimeoutMillis), [&] {
          return NextSequence == Sequence ||
                 (!RunId.empty() && RunIdIndex.count(RunId) != 0);
        });
    if (!Admitted) {
      CSeqTimeouts.fetch_add(1, std::memory_order_relaxed);
      Status = 409;
      Detail = "sequence " + std::to_string(Sequence) +
               " timed out waiting for " + std::to_string(NextSequence);
      return false;
    }
    // A concurrent retry of the same run id may have merged while this
    // request waited; it still answers the one original breakdown.
    if (Replay())
      return true;
  }

  // The append is durable (journal record fsynced) before it returns, so
  // a 200 never precedes persistence; on failure nothing merged and the
  // client may retry — against this process only after a restart heals
  // the poisoned journal.
  triage::TriageStore::MergeResult M;
  std::string Err;
  if (!Log.appendRun(S, RunId, static_cast<uint8_t>(Content), M, &Err)) {
    Status = 500;
    Detail = "run not merged: " + Err;
    return false;
  }

  Out = RunRecord{};
  Out.Run = Log.store().runCount();
  Out.RunId = RunId;
  Out.Content = Content;
  Out.Declared = S.RacesDeclared;
  Out.Distinct = S.distinct();
  Out.NewCount = M.NewSignatures;
  Out.KnownCount = M.KnownSignatures;
  Out.RegressedCount = M.RegressedSignatures;
  Out.SuppressedCount = M.SuppressedSignatures;
  for (const triage::TriageEntry &E : M.NewRaces)
    Out.NewSigs.push_back(triage::RaceSignature{E.Signature}.hex());
  for (const triage::TriageEntry &E : M.RegressedRaces)
    Out.RegressedSigs.push_back(triage::RaceSignature{E.Signature}.hex());
  RunRecords.push_back(Out);
  if (!RunId.empty())
    RunIdIndex[RunId] = RunRecords.size() - 1;

  if (Sequence != 0) {
    NextSequence = Sequence + 1;
    SequenceCv.notify_all();
  }
  if (Log.needsCompaction())
    CompactionCv.notify_one();
  return true;
}

std::string Server::handleClassified(const std::string &Path,
                                     bool KeepAlive) {
  auto NotFound = [&](const std::string &Detail) {
    CNotFound.fetch_add(1, std::memory_order_relaxed);
    return renderError(404, Detail, KeepAlive);
  };
  // "/v1/runs/{id}/classified"
  std::string Rest = Path.substr(std::strlen("/v1/runs/"));
  size_t Slash = Rest.find('/');
  if (Slash == std::string::npos || Rest.substr(Slash) != "/classified")
    return NotFound("no route for " + Path);
  std::string Id = Rest.substr(0, Slash);
  if (Id.empty() || Id.find_first_not_of("0123456789") != std::string::npos)
    return NotFound("run id must be a positive integer");
  uint64_t Run = std::strtoull(Id.c_str(), nullptr, 10);

  std::lock_guard<std::mutex> L(WriterMutex);
  if (Run == 0 || Run > Log.store().runCount())
    return NotFound("run " + Id + " does not exist (store has " +
                    std::to_string(Log.store().runCount()) + " run(s))");
  if (Run <= LoadedRuns)
    return NotFound("run " + Id + " was compacted into the base segment "
                                  "(per-run breakdown no longer available)");
  const RunRecord &Rec = RunRecords[Run - LoadedRuns - 1];
  return renderResponse(200, "application/json", renderRunRecord(Rec),
                        KeepAlive);
}

std::string Server::statsJson() const {
  size_t StoreSize, StoreRuns;
  uint64_t NextSeq, Gen, BaseBytes, JournalBytes, Appended, Compacted,
      Compactions;
  bool Poisoned;
  {
    std::lock_guard<std::mutex> L(WriterMutex);
    StoreSize = Log.store().size();
    StoreRuns = Log.store().runCount();
    NextSeq = NextSequence;
    Gen = Log.generation();
    BaseBytes = Log.baseBytes();
    JournalBytes = Log.journalBytes();
    Appended = Log.bytesAppended();
    Compacted = Log.bytesCompacted();
    Compactions = Log.compactions();
    Poisoned = Log.poisoned();
  }
  std::ostringstream OS;
  OS << "{\n"
     << "  \"store\": {\"runs\": " << StoreRuns
     << ", \"distinctSignatures\": " << StoreSize
     << ", \"generation\": " << Gen << ", \"baseBytes\": " << BaseBytes
     << ", \"journalBytes\": " << JournalBytes << "},\n"
     << "  \"durability\": {\"bytesAppended\": " << Appended
     << ", \"bytesCompacted\": " << Compacted
     << ", \"compactions\": " << Compactions << ", \"poisoned\": "
     << (Poisoned ? "true" : "false") << "},\n"
     << "  \"nextSequence\": " << NextSeq << ",\n"
     << "  \"draining\": "
     << (Draining.load(std::memory_order_acquire) ? "true" : "false")
     << ",\n"
     << "  \"connectionsAccepted\": " << CConnections.load() << ",\n"
     << "  \"connectionsShed\": " << CShed.load() << ",\n"
     << "  \"requestsServed\": " << CRequests.load() << ",\n"
     << "  \"requestTimeouts\": " << CReqTimeouts.load() << ",\n"
     << "  \"uploadsAccepted\": " << CUploadsOk.load() << ",\n"
     << "  \"uploadsRejected\": " << CUploadsBad.load() << ",\n"
     << "  \"uploadsDeduplicated\": " << CDeduplicated.load() << ",\n"
     << "  \"traceUploads\": " << CTraceUploads.load() << ",\n"
     << "  \"summaryUploads\": " << CSummaryUploads.load() << ",\n"
     << "  \"bytesIngested\": " << CBytes.load() << ",\n"
     << "  \"eventsAnalyzed\": " << CEvents.load() << ",\n"
     << "  \"racesDeclared\": " << CRaces.load() << ",\n"
     << "  \"badRequests\": " << CBadRequests.load() << ",\n"
     << "  \"notFound\": " << CNotFound.load() << ",\n"
     << "  \"sequenceTimeouts\": " << CSeqTimeouts.load() << ",\n";
  // Per-route request latency (routes that served at least one request) and
  // the merged span profile. Both empty when profiling is off.
  OS << "  \"latency\": {";
  bool FirstRoute = true;
  for (size_t R = 0; R < NumRoutes; ++R) {
    support::LatencyHistogram::Snapshot S = RouteLatency[R].snapshot();
    if (!S.Count)
      continue;
    if (!FirstRoute)
      OS << ", ";
    FirstRoute = false;
    OS << "\"" << RouteNames[R] << "\": {\"count\": " << S.Count
       << ", \"p50Micros\": " << S.P50Micros
       << ", \"p95Micros\": " << S.P95Micros
       << ", \"maxMicros\": " << S.MaxMicros << "}";
  }
  OS << "},\n";
  OS << "  \"profile\": "
     << (Prof ? prof::toJsonArray(Prof->report()) : std::string("[]"))
     << "\n}\n";
  return OS.str();
}

void Server::drain() {
  if (!Running.load(std::memory_order_acquire))
    return;
  bool Expected = false;
  if (!Draining.compare_exchange_strong(Expected, true))
    return; // Another drain already ran (or is running).

  // Closing the listen socket pops the acceptor out of accept().
  int Fd = ListenFd.exchange(-1, std::memory_order_acq_rel);
  if (Fd >= 0) {
    ::shutdown(Fd, SHUT_RDWR);
    ::close(Fd);
  }
  if (Acceptor.joinable())
    Acceptor.join();
  SequenceCv.notify_all();

  // Wait for queued and in-flight connections to finish; the poll loop in
  // serveConnection notices Draining within one tick. No final save: every
  // acknowledged merge was journaled and fsynced before its 200.
  {
    std::unique_lock<std::mutex> L(QueueMutex);
    IdleCv.wait(L, [&] { return Queue.empty() && InFlight == 0; });
  }
}

void Server::stop() {
  if (!Running.load(std::memory_order_acquire))
    return;
  drain();
  {
    std::lock_guard<std::mutex> L(WriterMutex);
    StopCompactor = true;
  }
  CompactionCv.notify_all();
  if (Compactor.joinable())
    Compactor.join();
  Running.store(false, std::memory_order_release);
  QueueCv.notify_all();
  for (std::thread &W : Workers)
    if (W.joinable())
      W.join();
  Workers.clear();
}

triage::TriageStore Server::snapshotStore() const {
  std::lock_guard<std::mutex> L(WriterMutex);
  return Log.store();
}

ServerStats Server::stats() const {
  ServerStats S;
  S.ConnectionsAccepted = CConnections.load(std::memory_order_relaxed);
  S.ConnectionsShed = CShed.load(std::memory_order_relaxed);
  S.RequestsServed = CRequests.load(std::memory_order_relaxed);
  S.RequestTimeouts = CReqTimeouts.load(std::memory_order_relaxed);
  S.UploadsAccepted = CUploadsOk.load(std::memory_order_relaxed);
  S.UploadsRejected = CUploadsBad.load(std::memory_order_relaxed);
  S.UploadsDeduplicated = CDeduplicated.load(std::memory_order_relaxed);
  S.TraceUploads = CTraceUploads.load(std::memory_order_relaxed);
  S.SummaryUploads = CSummaryUploads.load(std::memory_order_relaxed);
  S.BytesIngested = CBytes.load(std::memory_order_relaxed);
  S.EventsAnalyzed = CEvents.load(std::memory_order_relaxed);
  S.RacesDeclared = CRaces.load(std::memory_order_relaxed);
  S.BadRequests = CBadRequests.load(std::memory_order_relaxed);
  S.NotFound = CNotFound.load(std::memory_order_relaxed);
  S.SequenceTimeouts = CSeqTimeouts.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> L(WriterMutex);
    S.BytesAppended = Log.bytesAppended();
    S.BytesCompacted = Log.bytesCompacted();
    S.Compactions = Log.compactions();
  }
  return S;
}
