//===- trace/Trace.cpp - Execution trace implementation -------------------==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/trace/Trace.h"

#include <sstream>

using namespace sampletrack;

void Trace::append(const Event &E) {
  size_t NeededThreads = static_cast<size_t>(E.Tid) + 1;
  if (E.Kind == OpKind::Fork || E.Kind == OpKind::Join)
    NeededThreads =
        std::max(NeededThreads, static_cast<size_t>(E.Target) + 1);
  if (NeededThreads > NumThreads)
    NumThreads = NeededThreads;

  if (isAccess(E.Kind)) {
    if (E.Target + 1 > NumVars)
      NumVars = E.Target + 1;
  } else if (E.Kind != OpKind::Fork && E.Kind != OpKind::Join) {
    if (E.Target + 1 > NumSyncs)
      NumSyncs = E.Target + 1;
  }
  Events.push_back(E);
}

size_t Trace::countMarked() const {
  size_t N = 0;
  for (const Event &E : Events)
    if (E.Marked)
      ++N;
  return N;
}

size_t Trace::countKind(OpKind K) const {
  size_t N = 0;
  for (const Event &E : Events)
    if (E.Kind == K)
      ++N;
  return N;
}

bool Trace::validate(std::string *Error) const {
  auto Fail = [&](size_t Idx, const std::string &Msg) {
    if (Error) {
      std::ostringstream OS;
      OS << "event " << Idx << " (" << Events[Idx].str() << "): " << Msg;
      *Error = OS.str();
    }
    return false;
  };

  // Holder[l] is the thread holding mutex l, or NoThread.
  std::vector<ThreadId> Holder(NumSyncs, NoThread);
  // Threads that have been forked (may not act before their fork event),
  // and threads that have been joined (may not act after).
  std::vector<bool> Started(NumThreads, false);
  std::vector<bool> Forked(NumThreads, false);
  std::vector<bool> Joined(NumThreads, false);

  for (size_t I = 0; I < Events.size(); ++I) {
    const Event &E = Events[I];
    if (E.Tid >= NumThreads)
      return Fail(I, "thread id out of range");
    if (Joined[E.Tid])
      return Fail(I, "event in a thread that was already joined");
    Started[E.Tid] = true;

    switch (E.Kind) {
    case OpKind::Read:
    case OpKind::Write:
      if (E.Target >= NumVars)
        return Fail(I, "variable id out of range");
      break;
    case OpKind::Acquire:
      if (E.sync() >= NumSyncs)
        return Fail(I, "sync id out of range");
      if (Holder[E.sync()] != NoThread)
        return Fail(I, "acquire of a held lock");
      Holder[E.sync()] = E.Tid;
      break;
    case OpKind::Release:
      if (E.sync() >= NumSyncs)
        return Fail(I, "sync id out of range");
      if (Holder[E.sync()] != E.Tid)
        return Fail(I, "release by a non-holder");
      Holder[E.sync()] = NoThread;
      break;
    case OpKind::Fork: {
      ThreadId Child = E.childThread();
      if (Child >= NumThreads)
        return Fail(I, "forked thread id out of range");
      if (Child == E.Tid)
        return Fail(I, "thread forks itself");
      if (Forked[Child])
        return Fail(I, "thread forked twice");
      if (Started[Child])
        return Fail(I, "thread forked after it already acted");
      Forked[Child] = true;
      break;
    }
    case OpKind::Join: {
      ThreadId Child = E.childThread();
      if (Child >= NumThreads)
        return Fail(I, "joined thread id out of range");
      if (Child == E.Tid)
        return Fail(I, "thread joins itself");
      Joined[Child] = true;
      break;
    }
    case OpKind::ReleaseStore:
    case OpKind::ReleaseJoin:
    case OpKind::AcquireLoad:
      if (E.sync() >= NumSyncs)
        return Fail(I, "sync id out of range");
      break;
    }
  }
  return true;
}
