//===- trace/TraceGen.cpp - Synthetic execution generators -----------------==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/trace/TraceGen.h"

#include "sampletrack/support/Rng.h"

#include <algorithm>
#include <cassert>
#include <vector>

using namespace sampletrack;

namespace {

/// Per-thread state of the general generator: the stack of held locks with
/// the number of accesses still to perform in each critical section.
struct HeldLock {
  SyncId Lock;
  unsigned AccessesLeft;
};

struct ThreadState {
  std::vector<HeldLock> Stack;
  SyncId LastReleased = NoSync;
};

} // namespace

Trace sampletrack::generateWorkload(const GenConfig &Config) {
  assert(Config.NumThreads > 0 && Config.NumLocks > 0 && Config.NumVars > 0);
  SplitMix64 Rng(Config.Seed);
  ZipfDistribution LockDist(Config.NumLocks, Config.LockZipfTheta);

  Trace T;
  std::vector<ThreadState> Threads(Config.NumThreads);
  std::vector<ThreadId> Holder(Config.NumLocks, NoThread);

  // Mean accesses per critical section chosen so that accesses make up
  // roughly AccessFraction of events: a CS contributes 2 sync events and
  // MeanAccesses accesses.
  double Af = std::clamp(Config.AccessFraction, 0.05, 0.95);
  double MeanAccesses = 2.0 * Af / (1.0 - Af);

  size_t VarsPerLock = std::max<size_t>(1, Config.NumVars / Config.NumLocks);

  auto PickCsLength = [&]() -> unsigned {
    if (Rng.nextBool(Config.EmptyCsFraction))
      return 0;
    // Geometric with the requested mean (shifted so the mean is right even
    // with the empty-CS mass).
    double P = 1.0 / (1.0 + MeanAccesses);
    unsigned N = 0;
    while (!Rng.nextBool(P) && N < 64)
      ++N;
    return N;
  };

  auto EmitAccess = [&](ThreadId Tid, SyncId Lock) {
    VarId X = static_cast<VarId>(Lock) * VarsPerLock +
              Rng.nextBelow(VarsPerLock);
    if (Rng.nextBool(Config.WriteFraction))
      T.write(Tid, X);
    else
      T.read(Tid, X);
  };

  auto EmitUnprotected = [&](ThreadId Tid) {
    VarId X = Config.NumLocks * VarsPerLock +
              Rng.nextBelow(std::max<size_t>(1, Config.RacyVars));
    if (Rng.nextBool(Config.WriteFraction))
      T.write(Tid, X);
    else
      T.read(Tid, X);
  };

  auto TryAcquire = [&](ThreadId Tid) {
    ThreadState &TS = Threads[Tid];
    // Prefer the last lock this thread released (self-reacquisition), else
    // draw from the Zipf popularity distribution. A handful of retries
    // avoids getting stuck on contended locks.
    for (int Attempt = 0; Attempt < 4; ++Attempt) {
      SyncId L;
      if (TS.LastReleased != NoSync && Rng.nextBool(Config.SelfReacquireBias))
        L = TS.LastReleased;
      else
        L = static_cast<SyncId>(LockDist.sample(Rng));
      if (Holder[L] != NoThread)
        continue;
      bool AlreadyHeld = false;
      for (const HeldLock &H : TS.Stack)
        if (H.Lock == L)
          AlreadyHeld = true;
      if (AlreadyHeld)
        continue;
      Holder[L] = Tid;
      T.acquire(Tid, L);
      TS.Stack.push_back({L, PickCsLength()});
      return;
    }
    // All attempts hit busy locks; fall back to an unprotected access so the
    // step still makes progress.
    EmitUnprotected(Tid);
  };

  auto ReleaseTop = [&](ThreadId Tid) {
    ThreadState &TS = Threads[Tid];
    assert(!TS.Stack.empty() && "no lock to release");
    SyncId L = TS.Stack.back().Lock;
    TS.Stack.pop_back();
    Holder[L] = NoThread;
    TS.LastReleased = L;
    T.release(Tid, L);
  };

  ThreadId Current = 0;
  double BurstContinue =
      Config.MeanBurst > 1.0 ? 1.0 - 1.0 / Config.MeanBurst : 0.0;
  bool InBurst = false;
  while (T.size() < Config.NumEvents) {
    if (!InBurst || !Rng.nextBool(BurstContinue)) {
      Current = static_cast<ThreadId>(Rng.nextBelow(Config.NumThreads));
      InBurst = true;
    }
    ThreadId Tid = Current;
    ThreadState &TS = Threads[Tid];

    if (TS.Stack.empty()) {
      if (Rng.nextBool(Config.UnprotectedFraction))
        EmitUnprotected(Tid);
      else
        TryAcquire(Tid);
      continue;
    }

    HeldLock &Top = TS.Stack.back();
    if (Top.AccessesLeft == 0) {
      ReleaseTop(Tid);
      continue;
    }
    // Occasionally nest another lock inside the current critical section.
    if (TS.Stack.size() < Config.MaxNesting && Rng.nextBool(0.1)) {
      TryAcquire(Tid);
      continue;
    }
    --Top.AccessesLeft;
    EmitAccess(Tid, Top.Lock);
  }

  // Close every open critical section so the trace is well formed.
  for (ThreadId Tid = 0; Tid < Config.NumThreads; ++Tid)
    while (!Threads[Tid].Stack.empty())
      ReleaseTop(Tid);

  return T;
}

Trace sampletrack::generateProducerConsumer(size_t Producers, size_t Consumers,
                                            size_t ItemsPerProducer,
                                            uint64_t Seed) {
  assert(Producers > 0 && Consumers > 0 && ItemsPerProducer > 0);
  SplitMix64 Rng(Seed);
  Trace T;

  // Thread 0 is the main thread; workers follow.
  size_t Workers = Producers + Consumers;
  for (ThreadId W = 1; W <= Workers; ++W)
    T.fork(0, W);

  const SyncId QueueLock = 0;
  const VarId HeadVar = 0, TailVar = 1;
  const VarId SlotBase = 2;
  const size_t RingSize = 16;

  size_t Produced = 0, Consumed = 0;
  size_t Total = Producers * ItemsPerProducer;
  while (Consumed < Total) {
    bool DoProduce =
        Produced < Total && (Consumed == Produced || Rng.nextBool(0.5));
    if (DoProduce) {
      ThreadId P = static_cast<ThreadId>(1 + Rng.nextBelow(Producers));
      T.acquire(P, QueueLock);
      T.read(P, TailVar);
      T.write(P, SlotBase + (Produced % RingSize));
      T.write(P, TailVar);
      T.release(P, QueueLock);
      ++Produced;
    } else {
      ThreadId C =
          static_cast<ThreadId>(1 + Producers + Rng.nextBelow(Consumers));
      T.acquire(C, QueueLock);
      T.read(C, HeadVar);
      T.read(C, SlotBase + (Consumed % RingSize));
      T.write(C, HeadVar);
      T.release(C, QueueLock);
      ++Consumed;
    }
  }

  for (ThreadId W = 1; W <= Workers; ++W)
    T.join(0, W);
  // The main thread aggregates without holding the lock: safe because every
  // worker was joined.
  T.read(0, HeadVar);
  T.read(0, TailVar);
  return T;
}

namespace {

/// Helper for generateForkJoin: emits the subtree rooted at \p Tid, using
/// \p NextTid as a counter for fresh thread ids. Returns the variable range
/// [Lo, Hi) this subtree wrote.
struct ForkJoinBuilder {
  Trace &T;
  ThreadId NextTid;
  VarId NextVar = 0;
  size_t WorkPerLeaf;
  SplitMix64 &Rng;
  bool UseProgressLock;

  /// Log-lock protected progress note (mirrors instrumented Java runs).
  void logProgress(ThreadId Tid) {
    if (!UseProgressLock)
      return;
    T.acquire(Tid, 0);
    T.write(Tid, 0); // Shared progress counter, always lock-protected.
    T.release(Tid, 0);
  }

  std::pair<VarId, VarId> emit(ThreadId Tid, unsigned Depth) {
    if (Depth == 0) {
      logProgress(Tid);
      VarId Lo = NextVar;
      for (size_t I = 0; I < WorkPerLeaf; ++I) {
        T.write(Tid, NextVar);
        if (Rng.nextBool(0.5))
          T.read(Tid, Lo + Rng.nextBelow(NextVar - Lo + 1));
        ++NextVar;
      }
      logProgress(Tid);
      return {Lo, NextVar};
    }
    ThreadId Left = NextTid++;
    ThreadId Right = NextTid++;
    T.fork(Tid, Left);
    T.fork(Tid, Right);
    auto [LLo, LHi] = emit(Left, Depth - 1);
    auto [RLo, RHi] = emit(Right, Depth - 1);
    T.join(Tid, Left);
    T.join(Tid, Right);
    // Merge phase: the parent reads both halves and writes a summary.
    for (VarId V = LLo; V < LHi; ++V)
      T.read(Tid, V);
    for (VarId V = RLo; V < RHi; ++V)
      T.read(Tid, V);
    VarId Out = NextVar++;
    T.write(Tid, Out);
    logProgress(Tid);
    return {LLo, NextVar};
  }
};

} // namespace

Trace sampletrack::generateForkJoin(unsigned Depth, size_t WorkPerLeaf,
                                    uint64_t Seed, bool UseProgressLock) {
  SplitMix64 Rng(Seed);
  Trace T;
  // Variable 0 and lock 0 are reserved for the progress log.
  ForkJoinBuilder B{T,   /*NextTid=*/1, /*NextVar=*/UseProgressLock ? 1u : 0u,
                    WorkPerLeaf, Rng, UseProgressLock};
  B.emit(0, Depth);
  return T;
}

Trace sampletrack::generateLockBarrierRounds(size_t Threads, size_t Rounds,
                                             size_t WorkPerRound,
                                             uint64_t Seed) {
  assert(Threads > 0);
  SplitMix64 Rng(Seed);
  Trace T;
  for (ThreadId W = 1; W < Threads; ++W)
    T.fork(0, W);

  const SyncId BarrierLock = 0;
  const VarId Counter = 0;
  const VarId RowBase = 1;
  const VarId BufferStride = static_cast<VarId>(Threads) * WorkPerRound;

  for (size_t R = 0; R < Rounds; ++R) {
    VarId WriteBuf = RowBase + (R % 2) * BufferStride;
    VarId ReadBuf = RowBase + ((R + 1) % 2) * BufferStride;
    // Compute phase on the round's buffer (double-buffered rows).
    for (ThreadId W = 0; W < Threads; ++W) {
      for (size_t I = 0; I < WorkPerRound; ++I) {
        if (R > 0 && Threads > 1) {
          ThreadId Neighbor =
              static_cast<ThreadId>((W + 1 + Rng.nextBelow(Threads - 1)) %
                                    Threads);
          T.read(W, ReadBuf + static_cast<VarId>(Neighbor) * WorkPerRound +
                        Rng.nextBelow(WorkPerRound));
        }
        T.write(W, WriteBuf + static_cast<VarId>(W) * WorkPerRound + I);
      }
    }
    // Deposit phase: every thread checks in under the barrier lock; the
    // lock's clock chains so the last deposit dominates everyone.
    for (ThreadId W = 0; W < Threads; ++W) {
      T.acquire(W, BarrierLock);
      T.write(W, Counter);
      T.release(W, BarrierLock);
    }
    // Collect phase: every thread checks out, importing the chained clock.
    for (ThreadId W = 0; W < Threads; ++W) {
      T.acquire(W, BarrierLock);
      T.read(W, Counter);
      T.release(W, BarrierLock);
    }
  }

  for (ThreadId W = 1; W < Threads; ++W)
    T.join(0, W);
  return T;
}

Trace sampletrack::generateBarrierRounds(size_t Threads, size_t Rounds,
                                         size_t WorkPerRound, uint64_t Seed) {
  assert(Threads > 0);
  SplitMix64 Rng(Seed);
  Trace T;
  for (ThreadId W = 1; W < Threads; ++W)
    T.fork(0, W);

  // Double-buffered rows: each round writes one buffer while reading the
  // other, so cross-thread reads only see data sealed by the previous
  // barrier.
  const VarId BufferStride = static_cast<VarId>(Threads) * WorkPerRound;
  for (size_t R = 0; R < Rounds; ++R) {
    SyncId Barrier = static_cast<SyncId>(R);
    VarId WriteBuf = (R % 2) * BufferStride;
    VarId ReadBuf = ((R + 1) % 2) * BufferStride;
    for (ThreadId W = 0; W < Threads; ++W) {
      for (size_t I = 0; I < WorkPerRound; ++I) {
        if (R > 0 && Threads > 1) {
          ThreadId Neighbor =
              static_cast<ThreadId>((W + 1 + Rng.nextBelow(Threads - 1)) %
                                    Threads);
          T.read(W, ReadBuf + static_cast<VarId>(Neighbor) * WorkPerRound +
                        Rng.nextBelow(WorkPerRound));
        }
        T.write(W, WriteBuf + static_cast<VarId>(W) * WorkPerRound + I);
      }
    }
    // Barrier: everyone joins their clock into the round's sync object,
    // then everyone acquires it (appendix A.2 semantics).
    for (ThreadId W = 0; W < Threads; ++W)
      T.releaseJoin(W, Barrier);
    for (ThreadId W = 0; W < Threads; ++W)
      T.acquireLoad(W, Barrier);
  }

  for (ThreadId W = 1; W < Threads; ++W)
    T.join(0, W);
  return T;
}

Trace sampletrack::generatePipeline(size_t Stage1, size_t Stage2, size_t Items,
                                    uint64_t Seed) {
  assert(Stage1 > 0 && Stage2 > 0);
  SplitMix64 Rng(Seed);
  Trace T;
  size_t Workers = Stage1 + Stage2;
  for (ThreadId W = 1; W <= Workers; ++W)
    T.fork(0, W);

  // One handoff lock and one mailbox variable per (stage1, stage2) pair.
  auto PairLock = [&](size_t P, size_t C) {
    return static_cast<SyncId>(P * Stage2 + C);
  };
  auto Mailbox = [&](size_t P, size_t C) {
    return static_cast<VarId>(P * Stage2 + C);
  };
  VarId OutBase = static_cast<VarId>(Stage1 * Stage2);

  for (size_t I = 0; I < Items; ++I) {
    size_t P = Rng.nextBelow(Stage1);
    size_t C = Rng.nextBelow(Stage2);
    ThreadId Producer = static_cast<ThreadId>(1 + P);
    ThreadId Consumer = static_cast<ThreadId>(1 + Stage1 + C);
    T.acquire(Producer, PairLock(P, C));
    T.write(Producer, Mailbox(P, C));
    T.release(Producer, PairLock(P, C));
    T.acquire(Consumer, PairLock(P, C));
    T.read(Consumer, Mailbox(P, C));
    T.release(Consumer, PairLock(P, C));
    T.write(Consumer, OutBase + static_cast<VarId>(C));
  }

  for (ThreadId W = 1; W <= Workers; ++W)
    T.join(0, W);
  return T;
}

Trace sampletrack::generatePingPong(size_t Threads, size_t Locks,
                                    size_t Exchanges, uint64_t Seed) {
  assert(Threads > 0 && Locks > 0);
  SplitMix64 Rng(Seed);
  Trace T;
  for (size_t E = 0; E < Exchanges; ++E) {
    ThreadId Tid = static_cast<ThreadId>(E % Threads);
    // Acquire all locks in index order, touch one protected variable per
    // lock, then release in reverse order. The next thread thus reads lock
    // timestamps in the reverse order of their release, the pattern the
    // appendix identifies as skip-friendly.
    for (SyncId L = 0; L < Locks; ++L)
      T.acquire(Tid, L);
    for (SyncId L = 0; L < Locks; ++L) {
      if (Rng.nextBool(0.5))
        T.write(Tid, L);
      else
        T.read(Tid, L);
    }
    for (SyncId L = static_cast<SyncId>(Locks); L-- > 0;)
      T.release(Tid, L);
  }
  return T;
}
