//===- trace/SuiteGen.cpp - Offline benchmark suite ------------------------==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// Profiles are reconstructed from the descriptions of the original Java
/// benchmarks (IBM Contest, DaCapo, Java Grande, standalone) and from the
/// properties the paper reports for them: position in the acquire-count
/// ordering of Fig. 7, whether the trace is sync-heavy or access-heavy, and
/// whether critical sections tend to be empty.
///
//===----------------------------------------------------------------------===//

#include "sampletrack/trace/SuiteGen.h"

#include "sampletrack/trace/TraceGen.h"

#include <cassert>
#include <cmath>
#include <functional>
#include <map>

using namespace sampletrack;

namespace {

struct SuiteImpl {
  SuiteEntry Entry;
  /// Builds the trace at the given scale and seed.
  std::function<Trace(double, uint64_t)> Build;
};

/// Convenience builder for GenConfig-based entries.
std::function<Trace(double, uint64_t)>
workload(size_t Threads, size_t Locks, size_t Vars, size_t Events,
         double AccessFrac, double WriteFrac, double Zipf, double EmptyCs,
         double SelfRe, unsigned Nesting) {
  return [=](double Scale, uint64_t Seed) {
    GenConfig C;
    C.NumThreads = Threads;
    C.NumLocks = Locks;
    C.NumVars = Vars;
    C.NumEvents = static_cast<size_t>(std::max(1.0, Events * Scale));
    C.AccessFraction = AccessFrac;
    C.WriteFraction = WriteFrac;
    C.LockZipfTheta = Zipf;
    C.EmptyCsFraction = EmptyCs;
    C.SelfReacquireBias = SelfRe;
    C.MaxNesting = Nesting;
    C.Seed = Seed;
    return generateWorkload(C);
  };
}

size_t scaled(size_t N, double Scale) {
  return static_cast<size_t>(std::max(1.0, N * Scale));
}

const std::vector<SuiteImpl> &suiteImpls() {
  static const std::vector<SuiteImpl> Impls = [] {
    std::vector<SuiteImpl> V;
    auto Add = [&V](const char *Name, const char *Profile, size_t BaseEvents,
                    std::function<Trace(double, uint64_t)> Build) {
      V.push_back({{Name, Profile, BaseEvents}, std::move(Build)});
    };

    // --- Small, sync-light micro benchmarks (IBM Contest) ---------------
    Add("wronglock", "2 locks misused over one shared object, tiny trace",
        4000, workload(3, 2, 8, 4000, 0.5, 0.5, 0.2, 0.02, 0.5, 1));
    Add("twostage", "two-stage pipeline handing items via pair locks", 6000,
        [](double Scale, uint64_t Seed) {
          return generatePipeline(3, 3, scaled(700, Scale), Seed);
        });
    Add("producerconsumer", "bounded buffer with one queue lock", 9000,
        [](double Scale, uint64_t Seed) {
          return generateProducerConsumer(4, 4, scaled(320, Scale), Seed);
        });
    Add("mergesort", "fork/join divide and conquer, parents read children",
        12000, [](double Scale, uint64_t Seed) {
          return generateForkJoin(4, scaled(220, Scale) / 16 + 4, Seed,
                                  /*UseProgressLock=*/true);
        });
    Add("lusearch", "search workers with per-index locks, read heavy", 20000,
        workload(8, 12, 512, 20000, 0.35, 0.15, 0.6, 0.05, 0.4, 1));
    Add("tsp", "branch and bound, one bound lock polled in short CS", 24000,
        workload(8, 3, 128, 24000, 0.2, 0.3, 1.2, 0.25, 0.6, 1));
    Add("bubblesort", "lock ping-pong over neighbors, reverse-order releases",
        30000, [](double Scale, uint64_t Seed) {
          return generatePingPong(6, 4, scaled(2400, Scale), Seed);
        });
    Add("clean", "task queue with frequent empty critical sections", 30000,
        workload(6, 4, 64, 30000, 0.15, 0.4, 0.8, 0.5, 0.5, 1));
    Add("graphchi", "graph shards processed under shard locks", 50000,
        workload(8, 24, 2048, 50000, 0.4, 0.35, 0.7, 0.05, 0.3, 2));
    Add("biojava", "sequence analysis, mostly thread-local with rare sync",
        60000, workload(6, 8, 1024, 60000, 0.5, 0.25, 0.4, 0.05, 0.5, 1));
    Add("sunflow", "raytracer, read-mostly shared scene, per-bucket locks",
        80000, workload(12, 16, 4096, 80000, 0.45, 0.1, 0.5, 0.05, 0.4, 1));
    Add("linkedlist", "one list lock, small hot critical sections", 80000,
        workload(8, 1, 64, 80000, 0.2, 0.4, 0.0, 0.1, 1.0, 1));
    Add("jigsaw", "web server, session locks plus logging lock", 100000,
        workload(10, 32, 2048, 100000, 0.25, 0.3, 1.0, 0.15, 0.3, 2));
    Add("bufwriter", "one buffer lock, write-heavy tiny CS", 120000,
        workload(6, 1, 32, 120000, 0.2, 0.7, 0.0, 0.05, 1.0, 1));
    Add("readerswriters", "rw discipline over one lock, read-mostly", 140000,
        workload(8, 2, 128, 140000, 0.25, 0.15, 0.3, 0.1, 0.7, 1));
    Add("zxing", "barcode decoding, parallel images, modest sharing", 160000,
        workload(8, 20, 4096, 160000, 0.45, 0.3, 0.5, 0.05, 0.4, 1));
    Add("ftpserver", "connection threads, per-session plus global locks",
        200000, workload(12, 40, 2048, 200000, 0.18, 0.35, 1.1, 0.2, 0.35, 2));
    Add("luindex", "indexing, single writer lock hot path", 220000,
        workload(4, 6, 2048, 220000, 0.4, 0.45, 0.9, 0.08, 0.6, 1));
    Add("derby", "embedded DB, lock-manager heavy, nested locks", 300000,
        workload(12, 64, 4096, 300000, 0.12, 0.35, 1.0, 0.2, 0.3, 3));
    Add("tradesoap", "app-server transactions, deep sync chains", 340000,
        workload(16, 96, 4096, 340000, 0.1, 0.3, 0.9, 0.25, 0.25, 3));
    Add("tradebeans", "like tradesoap with bean-level locking", 360000,
        workload(16, 96, 4096, 360000, 0.1, 0.3, 0.9, 0.25, 0.25, 3));
    Add("cryptorsa", "crypto workers, sync-dominated key table", 400000,
        workload(10, 24, 512, 400000, 0.08, 0.3, 0.8, 0.3, 0.5, 2));
    Add("hsqldb", "in-memory DB, global engine lock plus table locks",
        450000, workload(12, 48, 8192, 450000, 0.15, 0.35, 1.3, 0.15, 0.45, 2));
    Add("xalan", "XSLT workers, shared DTM pools under contention", 500000,
        workload(12, 32, 8192, 500000, 0.18, 0.25, 1.1, 0.12, 0.4, 2));
    Add("sor", "barrier-synchronized stencil rounds (lock barrier)", 520000,
        [](double Scale, uint64_t Seed) {
          return generateLockBarrierRounds(8, scaled(160, Scale),
                                           scaled(380, Scale) / 8 + 8, Seed);
        });
    Add("cassandra", "wide-column store, many threads/locks, largest trace",
        700000, workload(24, 128, 16384, 700000, 0.15, 0.3, 1.0, 0.18, 0.35,
                         3));
    return V;
  }();
  return Impls;
}

} // namespace

const std::vector<SuiteEntry> &sampletrack::suiteEntries() {
  static const std::vector<SuiteEntry> Entries = [] {
    std::vector<SuiteEntry> V;
    for (const SuiteImpl &I : suiteImpls())
      V.push_back(I.Entry);
    return V;
  }();
  return Entries;
}

bool sampletrack::isSuiteBenchmark(const std::string &Name) {
  for (const SuiteImpl &I : suiteImpls())
    if (I.Entry.Name == Name)
      return true;
  return false;
}

Trace sampletrack::generateSuiteTrace(const std::string &Name, double Scale,
                                      uint64_t Seed) {
  for (const SuiteImpl &I : suiteImpls())
    if (I.Entry.Name == Name)
      return I.Build(Scale, Seed);
  assert(false && "unknown suite benchmark");
  return Trace();
}
