//===- trace/TraceStats.cpp - Structural statistics ------------------------==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/trace/TraceStats.h"

#include <algorithm>
#include <sstream>

using namespace sampletrack;

TraceStats TraceStats::of(const Trace &T) {
  TraceStats S;
  S.Events = T.size();
  S.PerThreadEvents.assign(T.numThreads(), 0);
  S.PerLockAcquires.assign(T.numSyncs(), 0);

  // Per-thread critical-section tracking: the lock stack with per-CS
  // access counters, and the most recently released lock.
  struct CsFrame {
    SyncId Lock;
    size_t Accesses = 0;
  };
  std::vector<std::vector<CsFrame>> Stacks(T.numThreads());
  std::vector<SyncId> LastReleased(T.numThreads(), NoSync);

  size_t CsCount = 0, EmptyCs = 0, CsAccessTotal = 0, SelfReacquires = 0;

  for (const Event &E : T) {
    ++S.PerThreadEvents[E.Tid];
    switch (E.Kind) {
    case OpKind::Read:
      ++S.Reads;
      break;
    case OpKind::Write:
      ++S.Writes;
      break;
    case OpKind::Acquire:
      ++S.Acquires;
      ++S.PerLockAcquires[E.sync()];
      if (LastReleased[E.Tid] == E.sync())
        ++SelfReacquires;
      Stacks[E.Tid].push_back({E.sync()});
      break;
    case OpKind::Release: {
      ++S.Releases;
      auto &Stack = Stacks[E.Tid];
      // Find the matching frame (locks may release out of stack order).
      for (size_t I = Stack.size(); I-- > 0;) {
        if (Stack[I].Lock != E.sync())
          continue;
        ++CsCount;
        CsAccessTotal += Stack[I].Accesses;
        if (Stack[I].Accesses == 0)
          ++EmptyCs;
        Stack.erase(Stack.begin() + static_cast<ptrdiff_t>(I));
        break;
      }
      LastReleased[E.Tid] = E.sync();
      break;
    }
    case OpKind::Fork:
      ++S.Forks;
      break;
    case OpKind::Join:
      ++S.Joins;
      break;
    case OpKind::ReleaseStore:
    case OpKind::ReleaseJoin:
    case OpKind::AcquireLoad:
      ++S.Atomics;
      break;
    }
    if (isAccess(E.Kind)) {
      if (E.Marked)
        ++S.Marked;
      // Attribute the access to the innermost open critical section.
      if (!Stacks[E.Tid].empty())
        ++Stacks[E.Tid].back().Accesses;
    }
  }

  size_t Accesses = S.Reads + S.Writes;
  if (S.Events)
    S.AccessFraction = static_cast<double>(Accesses) / S.Events;
  if (Accesses)
    S.SyncPerAccess =
        static_cast<double>(S.Events - Accesses) / Accesses;
  if (CsCount) {
    S.EmptyCsFraction = static_cast<double>(EmptyCs) / CsCount;
    S.MeanCsLength = static_cast<double>(CsAccessTotal) / CsCount;
  }
  if (S.Acquires)
    S.SelfReacquireFraction =
        static_cast<double>(SelfReacquires) / S.Acquires;
  if (S.Acquires && !S.PerLockAcquires.empty())
    S.HottestLockShare =
        static_cast<double>(*std::max_element(S.PerLockAcquires.begin(),
                                              S.PerLockAcquires.end())) /
        S.Acquires;
  return S;
}

std::string TraceStats::str() const {
  std::ostringstream OS;
  OS << "events " << Events << " (r " << Reads << ", w " << Writes
     << ", acq " << Acquires << ", rel " << Releases << ", fork " << Forks
     << ", join " << Joins << ", atomic " << Atomics << ")\n";
  OS << "threads " << PerThreadEvents.size() << ", locks "
     << PerLockAcquires.size() << ", marked " << Marked << '\n';
  char Buf[160];
  std::snprintf(Buf, sizeof(Buf),
                "access frac %.2f, sync/access %.2f, empty CS %.2f, mean "
                "CS len %.2f,\nself-reacquire %.2f, hottest lock share %.2f",
                AccessFraction, SyncPerAccess, EmptyCsFraction, MeanCsLength,
                SelfReacquireFraction, HottestLockShare);
  OS << Buf << '\n';
  return OS.str();
}
