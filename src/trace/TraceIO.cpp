//===- trace/TraceIO.cpp - Trace (de)serialization -------------------------==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/trace/TraceIO.h"

#include <cstring>
#include <fstream>
#include <sstream>

using namespace sampletrack;

namespace {

/// Consumes a decimal number prefixed by \p Prefix from Line[Pos...].
/// Returns true and advances \p Pos past the digits on success.
bool parsePrefixedId(const std::string &Line, size_t &Pos, char Prefix,
                     uint64_t &Out) {
  if (Pos >= Line.size() || Line[Pos] != Prefix)
    return false;
  ++Pos;
  if (Pos >= Line.size() || !isdigit(static_cast<unsigned char>(Line[Pos])))
    return false;
  uint64_t V = 0;
  while (Pos < Line.size() && isdigit(static_cast<unsigned char>(Line[Pos]))) {
    V = V * 10 + static_cast<uint64_t>(Line[Pos] - '0');
    ++Pos;
  }
  Out = V;
  return true;
}

struct OpSpec {
  const char *Name;
  OpKind Kind;
  char TargetPrefix;
};

constexpr OpSpec OpSpecs[] = {
    {"r", OpKind::Read, 'V'},          {"w", OpKind::Write, 'V'},
    {"acq", OpKind::Acquire, 'L'},     {"rel", OpKind::Release, 'L'},
    {"fork", OpKind::Fork, 'T'},       {"join", OpKind::Join, 'T'},
    {"st", OpKind::ReleaseStore, 'L'}, {"rj", OpKind::ReleaseJoin, 'L'},
    {"ld", OpKind::AcquireLoad, 'L'},
};

} // namespace

bool sampletrack::parseEventLine(const std::string &Line, Event &Out,
                                 std::string *Error) {
  auto Fail = [&](const char *Msg) {
    if (Error)
      *Error = std::string(Msg) + " in '" + Line + "'";
    return false;
  };

  size_t Pos = 0;
  uint64_t Tid = 0;
  if (!parsePrefixedId(Line, Pos, 'T', Tid))
    return Fail("expected thread id 'T<n>'");
  if (Pos >= Line.size() || Line[Pos] != '|')
    return Fail("expected '|' after thread id");
  ++Pos;

  size_t OpStart = Pos;
  while (Pos < Line.size() && isalpha(static_cast<unsigned char>(Line[Pos])))
    ++Pos;
  std::string OpName = Line.substr(OpStart, Pos - OpStart);

  const OpSpec *Spec = nullptr;
  for (const OpSpec &S : OpSpecs)
    if (OpName == S.Name) {
      Spec = &S;
      break;
    }
  if (!Spec)
    return Fail("unknown operation");

  if (Pos >= Line.size() || Line[Pos] != '(')
    return Fail("expected '(' after operation");
  ++Pos;
  uint64_t Target = 0;
  if (!parsePrefixedId(Line, Pos, Spec->TargetPrefix, Target))
    return Fail("bad operand");
  if (Pos >= Line.size() || Line[Pos] != ')')
    return Fail("expected ')'");
  ++Pos;

  bool Marked = false;
  if (Pos < Line.size() && Line[Pos] == '*') {
    Marked = true;
    ++Pos;
  }
  // Allow trailing whitespace only.
  while (Pos < Line.size()) {
    if (!isspace(static_cast<unsigned char>(Line[Pos])))
      return Fail("trailing garbage");
    ++Pos;
  }
  if (Marked && !isAccess(Spec->Kind))
    return Fail("only access events can be marked");

  Out = Event(static_cast<ThreadId>(Tid), Spec->Kind, Target, Marked);
  return true;
}

bool sampletrack::readTrace(std::istream &Is, Trace &Out, std::string *Error) {
  Out = Trace();
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(Is, Line)) {
    ++LineNo;
    // Strip \r for robustness against CRLF inputs.
    if (!Line.empty() && Line.back() == '\r')
      Line.pop_back();
    size_t First = Line.find_first_not_of(" \t");
    if (First == std::string::npos)
      continue;
    if (Line[First] == '#')
      continue;
    Event E;
    std::string LineError;
    if (!parseEventLine(Line.substr(First), E, &LineError)) {
      if (Error) {
        std::ostringstream OS;
        OS << "line " << LineNo << ": " << LineError;
        *Error = OS.str();
      }
      return false;
    }
    Out.append(E);
  }
  return true;
}

bool sampletrack::readTraceFile(const std::string &Path, Trace &Out,
                                std::string *Error) {
  std::ifstream Is(Path, std::ios::binary);
  if (!Is) {
    if (Error)
      *Error = "cannot open '" + Path + "'";
    return false;
  }
  // Auto-detect the binary format by its magic.
  if (sniffBinaryTrace(Is))
    return readTraceBinary(Is, Out, Error);
  return readTrace(Is, Out, Error);
}

void sampletrack::writeTrace(std::ostream &Os, const Trace &T) {
  Os << "# sampletrack trace: " << T.size() << " events, " << T.numThreads()
     << " threads, " << T.numSyncs() << " syncs, " << T.numVars()
     << " vars\n";
  for (const Event &E : T)
    Os << E.str() << '\n';
}

bool sampletrack::writeTraceFile(const std::string &Path, const Trace &T) {
  std::ofstream Os(Path);
  if (!Os)
    return false;
  writeTrace(Os, T);
  return static_cast<bool>(Os);
}


//===----------------------------------------------------------------------===//
// Binary format
//===----------------------------------------------------------------------===//

namespace {

constexpr char BinaryMagic[5] = {'S', 'T', 'R', 'C', '\1'};

void writeVarint(std::ostream &Os, uint64_t V) {
  while (V >= 0x80) {
    Os.put(static_cast<char>((V & 0x7f) | 0x80));
    V >>= 7;
  }
  Os.put(static_cast<char>(V));
}

bool readVarint(std::istream &Is, uint64_t &Out) {
  Out = 0;
  for (unsigned Shift = 0; Shift < 64; Shift += 7) {
    int C = Is.get();
    if (C == EOF)
      return false;
    Out |= static_cast<uint64_t>(C & 0x7f) << Shift;
    if (!(C & 0x80))
      return true;
  }
  return false; // Overlong encoding.
}

} // namespace

void sampletrack::writeTraceBinary(std::ostream &Os, const Trace &T) {
  Os.write(BinaryMagic, sizeof(BinaryMagic));
  writeVarint(Os, T.numThreads());
  writeVarint(Os, T.numSyncs());
  writeVarint(Os, T.numVars());
  writeVarint(Os, T.size());
  for (const Event &E : T) {
    // Low 4 bits: kind; bit 4: marked.
    uint8_t Tag = static_cast<uint8_t>(E.Kind) | (E.Marked ? 0x10 : 0);
    Os.put(static_cast<char>(Tag));
    writeVarint(Os, E.Tid);
    writeVarint(Os, E.Target);
  }
}

bool sampletrack::writeTraceFileBinary(const std::string &Path,
                                       const Trace &T) {
  std::ofstream Os(Path, std::ios::binary);
  if (!Os)
    return false;
  writeTraceBinary(Os, T);
  return static_cast<bool>(Os);
}

bool sampletrack::sniffBinaryTrace(std::istream &Is) {
  char Buf[sizeof(BinaryMagic)] = {};
  std::streampos Pos = Is.tellg();
  Is.read(Buf, sizeof(Buf));
  bool Match = Is.gcount() == sizeof(Buf) &&
               std::memcmp(Buf, BinaryMagic, sizeof(Buf)) == 0;
  Is.clear();
  if (!Match)
    Is.seekg(Pos);
  return Match;
}

bool BinaryTraceReader::open(std::istream &Stream, std::string *Error) {
  Is = &Stream;
  Position = 0;
  uint64_t Threads, Syncs, Vars;
  if (!readVarint(*Is, Threads) || !readVarint(*Is, Syncs) ||
      !readVarint(*Is, Vars) || !readVarint(*Is, NumEvents)) {
    if (Error)
      *Error = "truncated binary trace header";
    return false;
  }
  NumThreads = static_cast<size_t>(Threads);
  NumSyncs = static_cast<size_t>(Syncs);
  NumVars = static_cast<size_t>(Vars);
  return true;
}

bool BinaryTraceReader::read(std::vector<Event> &Out, size_t Max,
                             std::string *Error) {
  auto Fail = [&](const char *Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  Out.clear();
  if (!Is)
    return Fail("reader not opened");
  if (Max == 0)
    return Fail("zero batch size"); // A while(!done()) loop would never end.
  constexpr uint8_t MaxKind = static_cast<uint8_t>(OpKind::AcquireLoad);
  while (Out.size() < Max && Position < NumEvents) {
    int Tag = Is->get();
    if (Tag == EOF)
      return Fail("truncated binary trace body");
    uint8_t Kind = static_cast<uint8_t>(Tag) & 0x0f;
    bool Marked = (Tag & 0x10) != 0;
    if (Kind > MaxKind)
      return Fail("invalid event kind");
    uint64_t Tid, Target;
    if (!readVarint(*Is, Tid) || !readVarint(*Is, Target))
      return Fail("truncated event");
    OpKind K = static_cast<OpKind>(Kind);
    if (Marked && !isAccess(K))
      return Fail("marked non-access event");
    // Events are handed to detectors batch by batch, so unlike the whole-
    // trace loader the ids must be validated against the header universes
    // here, before any consumer indexes per-thread state with them.
    bool TargetOk = isAccess(K) ? Target < NumVars
                    : (K == OpKind::Fork || K == OpKind::Join)
                        ? Target < NumThreads
                        : Target < NumSyncs;
    if (Tid >= NumThreads || !TargetOk)
      return Fail("binary trace header inconsistent with events");
    Out.emplace_back(static_cast<ThreadId>(Tid), K, Target, Marked);
    ++Position;
  }
  return true;
}

bool sampletrack::readTraceBinary(std::istream &Is, Trace &Out,
                                  std::string *Error) {
  Out = Trace();
  BinaryTraceReader Reader;
  if (!Reader.open(Is, Error))
    return false;
  std::vector<Event> Batch;
  while (!Reader.done()) {
    // read() validates every id against the header universes, so the
    // loaded trace can never outgrow the header.
    if (!Reader.read(Batch, 4096, Error))
      return false;
    for (const Event &E : Batch)
      Out.append(E);
  }
  return true;
}
