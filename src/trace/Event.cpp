//===- trace/Event.cpp - Event rendering ----------------------------------==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/trace/Event.h"

#include <sstream>

using namespace sampletrack;

const char *sampletrack::opKindName(OpKind K) {
  switch (K) {
  case OpKind::Read:
    return "r";
  case OpKind::Write:
    return "w";
  case OpKind::Acquire:
    return "acq";
  case OpKind::Release:
    return "rel";
  case OpKind::Fork:
    return "fork";
  case OpKind::Join:
    return "join";
  case OpKind::ReleaseStore:
    return "st";
  case OpKind::ReleaseJoin:
    return "rj";
  case OpKind::AcquireLoad:
    return "ld";
  }
  return "?";
}

std::string Event::str() const {
  std::ostringstream OS;
  OS << 'T' << Tid << '|' << opKindName(Kind) << '(';
  switch (Kind) {
  case OpKind::Read:
  case OpKind::Write:
    OS << 'V' << Target;
    break;
  case OpKind::Fork:
  case OpKind::Join:
    OS << 'T' << Target;
    break;
  case OpKind::Acquire:
  case OpKind::Release:
  case OpKind::ReleaseStore:
  case OpKind::ReleaseJoin:
  case OpKind::AcquireLoad:
    OS << 'L' << Target;
    break;
  }
  OS << ')';
  if (Marked)
    OS << '*';
  return OS.str();
}
