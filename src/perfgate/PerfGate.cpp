//===- perfgate/PerfGate.cpp - Bench regression gate -----------------------=//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/perfgate/PerfGate.h"

#include "sampletrack/support/Json.h"

#include <cmath>
#include <cstdio>
#include <map>

namespace sampletrack {
namespace perfgate {

namespace {

enum class MetricClass { Timing, Throughput, Counter, Skip };

/// The schema knowledge: how each row metric is judged. Anything not listed
/// is skipped with a note, so a bench can grow new columns without
/// tripping the gate until the gate learns their semantics.
MetricClass classify(const std::string &Name) {
  if (Name == "wallNanos" || Name == "nsPerEvent")
    return MetricClass::Timing;
  if (Name == "uploadsPerSec")
    return MetricClass::Throughput;
  if (Name == "events" || Name == "deepCopies" || Name == "cowBreaks" ||
      Name == "shallowCopies" || Name == "releasesTotal" ||
      Name == "racesDeclared" || Name == "racyLocations" ||
      Name == "distinctRaces" || Name == "uploads" || Name == "clients" ||
      Name == "bytes")
    return MetricClass::Counter;
  // Known-nondeterministic or derived columns: pool behavior depends on
  // thread interleaving in the online benches, persistence/compaction
  // totals on background timing, ratio columns on the timing class above.
  return MetricClass::Skip;
}

std::string rowKey(const support::JsonValue &Row) {
  char Rate[64];
  std::snprintf(Rate, sizeof(Rate), "%g", Row.getNumber("rate"));
  return Row.getString("series") + "|" + Row.getString("engine") + "|" + Rate;
}

bool rowsOf(const support::JsonValue &Doc,
            std::map<std::string, const support::JsonValue *> &Out,
            const char *Which, std::string *Error) {
  const support::JsonValue *Rows = Doc.get("rows");
  if (!Doc.isObject() || !Rows || !Rows->isArray()) {
    if (Error)
      *Error = std::string(Which) + " document has no \"rows\" array";
    return false;
  }
  for (const support::JsonValue &Row : Rows->Array) {
    if (!Row.isObject()) {
      if (Error)
        *Error = std::string(Which) + " document has a non-object row";
      return false;
    }
    Out[rowKey(Row)] = &Row;
  }
  return true;
}

std::string fmt(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%g", V);
  return Buf;
}

} // namespace

bool diffBenchJson(const support::JsonValue &Baseline,
                   const support::JsonValue &Fresh, const Tolerances &T,
                   GateResult &Out, std::string *Error) {
  std::map<std::string, const support::JsonValue *> BRows, FRows;
  if (!rowsOf(Baseline, BRows, "baseline", Error) ||
      !rowsOf(Fresh, FRows, "fresh", Error))
    return false;

  // Counters are only exact when both documents measured the same
  // workload.
  bool SameWorkload =
      Baseline.getNumber("scale") == Fresh.getNumber("scale") &&
      Baseline.getNumber("seed") == Fresh.getNumber("seed");
  if (!SameWorkload)
    Out.Notes.push_back("scale/seed differ between baseline and fresh: "
                        "deterministic counters not compared");

  for (const auto &[Key, BRow] : BRows) {
    std::string Series = BRow->getString("series");
    std::string Engine = BRow->getString("engine");
    auto FIt = FRows.find(Key);
    if (FIt == FRows.end()) {
      Finding F;
      F.Series = Series;
      F.Engine = Engine;
      F.Metric = "(row)";
      F.Message = "series=" + Series + " engine=" + Engine +
                  ": row present in baseline but missing from fresh run";
      Out.Regressions.push_back(std::move(F));
      continue;
    }
    const support::JsonValue *FRow = FIt->second;
    ++Out.RowsCompared;

    for (const auto &[Metric, BVal] : BRow->Object) {
      if (!BVal.isNumber())
        continue;
      MetricClass C = classify(Metric);
      if (C == MetricClass::Skip)
        continue;
      bool Found = false;
      double FVal = FRow->getNumber(Metric, 0, &Found);
      if (!Found) {
        Finding F;
        F.Series = Series;
        F.Engine = Engine;
        F.Metric = Metric;
        F.Baseline = BVal.Number;
        F.Message = "series=" + Series + " engine=" + Engine + ": metric " +
                    Metric + " present in baseline but missing from fresh row";
        Out.Regressions.push_back(std::move(F));
        continue;
      }
      ++Out.MetricsCompared;

      Finding F;
      F.Series = Series;
      F.Engine = Engine;
      F.Metric = Metric;
      F.Baseline = BVal.Number;
      F.Fresh = FVal;
      switch (C) {
      case MetricClass::Timing: {
        double Limit = BVal.Number * T.TimingRatio;
        // A zero baseline (empty trace rows) can't scale; skip it.
        if (BVal.Number <= 0)
          break;
        if (FVal > Limit) {
          F.Limit = Limit;
          F.Message = "series=" + Series + " engine=" + Engine +
                      ": timing metric " + Metric + " regressed: fresh " +
                      fmt(FVal) + " > limit " + fmt(Limit) + " (baseline " +
                      fmt(BVal.Number) + " x tolerance " +
                      fmt(T.TimingRatio) + ")";
          Out.Regressions.push_back(std::move(F));
        }
        break;
      }
      case MetricClass::Throughput: {
        if (BVal.Number <= 0)
          break;
        double Limit = BVal.Number / T.ThroughputRatio;
        if (FVal < Limit) {
          F.Limit = Limit;
          F.Message = "series=" + Series + " engine=" + Engine +
                      ": throughput metric " + Metric + " regressed: fresh " +
                      fmt(FVal) + " < limit " + fmt(Limit) + " (baseline " +
                      fmt(BVal.Number) + " / tolerance " +
                      fmt(T.ThroughputRatio) + ")";
          Out.Regressions.push_back(std::move(F));
        }
        break;
      }
      case MetricClass::Counter: {
        if (!SameWorkload || !T.ExactCounters)
          break;
        if (FVal != BVal.Number) {
          F.Message =
              "series=" + Series + " engine=" + Engine +
              ": deterministic counter " + Metric + " drifted: fresh " +
              fmt(FVal) + " != baseline " + fmt(BVal.Number) +
              " at identical scale/seed (regenerate the baseline if this "
              "change is intentional)";
          Out.Regressions.push_back(std::move(F));
        }
        break;
      }
      case MetricClass::Skip:
        break;
      }
    }
  }

  for (const auto &[Key, FRow] : FRows)
    if (!BRows.count(Key))
      Out.Notes.push_back("fresh-only row (no baseline yet): series=" +
                          FRow->getString("series") +
                          " engine=" + FRow->getString("engine"));
  return true;
}

bool gateFiles(const std::string &BaselinePath, const std::string &FreshPath,
               const Tolerances &T, GateResult &Out, std::string *Error) {
  support::JsonValue B, F;
  std::string E;
  if (!support::JsonValue::parseFile(BaselinePath, B, &E)) {
    if (Error)
      *Error = BaselinePath + ": " + E;
    return false;
  }
  if (!support::JsonValue::parseFile(FreshPath, F, &E)) {
    if (Error)
      *Error = FreshPath + ": " + E;
    return false;
  }
  return diffBenchJson(B, F, T, Out, Error);
}

std::string render(const GateResult &R, const std::string &BenchName) {
  std::string Out;
  for (const Finding &F : R.Regressions)
    Out += "PERF GATE FAILURE [" + BenchName + "] " + F.Message + "\n";
  for (const std::string &N : R.Notes)
    Out += "note [" + BenchName + "]: " + N + "\n";
  Out += "[" + BenchName + "] " +
         (R.passed() ? std::string("PASS") : std::string("FAIL")) + ": " +
         std::to_string(R.RowsCompared) + " row(s), " +
         std::to_string(R.MetricsCompared) + " metric(s) compared, " +
         std::to_string(R.Regressions.size()) + " regression(s)\n";
  return Out;
}

} // namespace perfgate
} // namespace sampletrack
