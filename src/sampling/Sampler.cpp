//===- sampling/Sampler.cpp - Sampling strategies --------------------------==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/sampling/Sampler.h"
#include "sampletrack/sampling/PeriodSamplers.h"

#include <cstdio>

using namespace sampletrack;

std::string BernoulliSampler::name() const {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "bernoulli(%.3g%%)", Rate * 100.0);
  return Buf;
}

std::string PacerSampler::name() const {
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "pacer(%.3g%%, period %llu)", Rate * 100.0,
                static_cast<unsigned long long>(PeriodLength));
  return Buf;
}

std::string ColdRegionSampler::name() const {
  char Buf[48];
  std::snprintf(Buf, sizeof(Buf), "coldregion(backoff %llu)",
                static_cast<unsigned long long>(Backoff));
  return Buf;
}
