//===- sampletrack/rapid/Engine.h - Offline analysis engine ----*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The offline trace-analysis engine standing in for RAPID (Section 6's
/// offline experiments): it streams a trace through a detector, consulting a
/// sampler for each access event, and reports metrics, races and wall time.
/// Sampler seeds are caller-controlled so that different engines can be run
/// on identical sample sets, as the paper's appendix A.1 requires
/// ("the same sequence of seeds is used to ensure apples-to-apples
/// comparison").
///
/// Deprecated entry points: run() and runEngine() are kept for existing
/// callers but are now thin wrappers over api::AnalysisSession, which is
/// the preferred interface — it fans any number of engines out over a
/// single trace traversal and adds streaming sources and structured
/// reporting (see README.md's migration table).
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_RAPID_ENGINE_H
#define SAMPLETRACK_RAPID_ENGINE_H

#include "sampletrack/detectors/DetectorFactory.h"
#include "sampletrack/sampling/Sampler.h"
#include "sampletrack/trace/Trace.h"

#include <memory>

namespace sampletrack {

namespace api {
struct EngineRun;
} // namespace api

namespace rapid {

/// Result of one engine run over one trace.
struct RunResult {
  std::string Engine;
  std::string SamplerName;
  Metrics Stats;
  uint64_t NumRaces = 0;
  uint64_t NumRacyLocations = 0;
  /// Distinct race signatures the NumRaces declarations deduplicated to.
  uint64_t DistinctRaces = 0;
  /// Number of access events placed in S during this run.
  uint64_t SampleSize = 0;
  /// Wall-clock analysis time in nanoseconds.
  uint64_t WallNanos = 0;
  /// True iff the race sink ran out of distinct-signature capacity (some
  /// logical race kept no exemplar; NumRaces still counts every
  /// declaration).
  bool RacesTruncated = false;
};

/// Converts one api::AnalysisSession lane result into the legacy record
/// (used by the wrappers below and by bench harnesses bridging both APIs).
RunResult fromEngineRun(const api::EngineRun &E);

/// Streams \p T through \p D, consulting \p S for each access event.
/// Deprecated: prefer api::AnalysisSession (addDetector + withSampler).
RunResult run(const Trace &T, Detector &D, Sampler &S);

/// Convenience: creates the detector for \p K, runs a Bernoulli sampler at
/// \p Rate with \p Seed (Rate >= 1.0 uses AlwaysSampler so the run is
/// deterministic), and returns the result.
/// Deprecated: prefer api::AnalysisSession with a SessionConfig.
RunResult runEngine(const Trace &T, EngineKind K, double Rate, uint64_t Seed);

/// Pre-marks a trace: draws the sampling decision for every access with a
/// Bernoulli sampler and stores it in the Marked bits. Running engines with
/// a MarkedSampler on the result guarantees identical sample sets across
/// engines.
void markTrace(Trace &T, double Rate, uint64_t Seed);

} // namespace rapid
} // namespace sampletrack

#endif // SAMPLETRACK_RAPID_ENGINE_H
