//===- sampletrack/workload/StorageEngine.h - Mini storage engine -*- C++ -*-//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniature database storage engine, fully instrumented through
/// rt::Runtime: the substrate standing in for MySQL's storage layer in the
/// paper's online evaluation. It reproduces the synchronization patterns
/// that make database servers the paper's motivating workload:
///
///  - a buffer pool with per-frame latches and LRU bookkeeping,
///  - B-tree indexes descended with latch crabbing (hold parent + child,
///    release parent), with preemptive splits on the way down,
///  - a write-ahead log appended under a global log latch,
///  - a Database facade executing get/put/scan transactions.
///
/// Every latch is an rt::Mutex and every touched byte of page payload, log
/// buffer or metadata goes through onRead/onWrite — so the analysis
/// configurations (NT/ET/FT/ST/SU/SO) see the real thing: deep lock
/// hierarchies, hot root latches, self-reacquisition on leaf pages, and
/// lock chains across threads.
///
/// The engine is race-free by construction (all shared state is
/// latch-protected); the concurrency tests assert that every analysis mode
/// agrees.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_WORKLOAD_STORAGEENGINE_H
#define SAMPLETRACK_WORKLOAD_STORAGEENGINE_H

#include "sampletrack/runtime/Runtime.h"

#include <cassert>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

namespace sampletrack {
namespace db {

using PageId = uint32_t;
inline constexpr PageId NoPage = UINT32_MAX;

/// One fixed-size page of 64-bit words.
struct Page {
  static constexpr size_t NumWords = 128;
  uint64_t Words[NumWords] = {};
};

/// A buffer-pool frame: a page plus its latch and pin/LRU bookkeeping.
struct Frame {
  explicit Frame(rt::Runtime &Rt) : Latch(Rt) {}

  Page Data;
  PageId Id = NoPage;
  rt::Mutex Latch;
  /// Pin count and LRU stamp are maintained under the pool's map latch.
  uint32_t Pins = 0;
  uint64_t LruStamp = 0;
  bool Dirty = false;
};

/// A buffer pool over an in-memory "disk". Pages are fetched (pinned),
/// latched by the caller, and unpinned when done; unpinned pages are
/// evictable in LRU order when the pool is full.
class BufferPool {
public:
  /// \p Capacity frames backed by a disk of \p DiskPages pages.
  BufferPool(rt::Runtime &Rt, size_t Capacity, size_t DiskPages);

  /// Allocates a fresh on-disk page and returns its id.
  PageId allocatePage(ThreadId T);

  /// Pins the frame holding \p Id (reading it from disk, possibly evicting
  /// an unpinned LRU victim). The caller must latch the frame before
  /// touching Data and unpin it afterwards.
  Frame &pin(ThreadId T, PageId Id);
  void unpin(ThreadId T, Frame &F, bool Dirtied);

  /// Pool statistics (for tests and the demo).
  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }
  uint64_t evictions() const { return Evictions; }

  rt::Runtime &runtime() { return Rt; }

private:
  Frame *findVictim();

  rt::Runtime &Rt;
  rt::Mutex MapLatch; ///< Guards PageTable, pins, LRU stamps, NextPage.
  std::deque<Frame> Frames;
  std::unordered_map<PageId, Frame *> PageTable;
  std::vector<Page> Disk;
  PageId NextPage = 0;
  uint64_t LruClock = 0;
  uint64_t Hits = 0, Misses = 0, Evictions = 0;
};

/// A fixed-fanout B-tree over uint64 keys and values, stored in buffer-pool
/// pages and traversed with latch crabbing.
///
/// Node layout inside a page (word indices):
///   [0] = 1 if leaf else 0, [1] = key count,
///   keys at [2 .. 2+Fanout), children/values at [2+Fanout .. 2+2*Fanout].
class BTree {
public:
  static constexpr size_t Fanout = 16;

  BTree(BufferPool &Pool, ThreadId Creator);

  /// Inserts or overwrites \p Key. Thread-safe via latch crabbing.
  void put(ThreadId T, uint64_t Key, uint64_t Value);

  /// Looks up \p Key; returns false if absent.
  bool get(ThreadId T, uint64_t Key, uint64_t &Value);

  /// Visits up to \p Limit keys >= \p Lo in ascending order within their
  /// leaf; returns the number visited. (Single-leaf scan: enough to model
  /// short range queries.)
  size_t scanLeaf(ThreadId T, uint64_t Lo, size_t Limit,
                  std::vector<uint64_t> &Out);

  /// Height of the tree (root latch taken briefly).
  size_t height(ThreadId T);

private:
  struct Guard; // Latched, pinned frame (RAII).

  /// Splits full child \p ChildIdx of latched node \p Parent; both child
  /// halves end up consistent. Caller holds Parent's latch (the child is
  /// latched internally; nobody else can reach it through the parent).
  void splitChild(ThreadId T, Frame &Parent, size_t ChildIdx);

  /// Split when the caller already holds the child's latch (the root-growth
  /// path, where releasing the old root's latch first would let a racing
  /// writer insert into a node that is about to stop being the root).
  void splitChildLatched(ThreadId T, Frame &Parent, size_t ChildIdx,
                         Frame &Child);

  BufferPool &Pool;
  rt::Mutex RootLatch; ///< Guards RootId (the root pointer, not the page).
  PageId RootId;
};

/// A write-ahead log: fixed ring buffer appended under one latch.
class WriteAheadLog {
public:
  WriteAheadLog(rt::Runtime &Rt, size_t Slots = 4096);

  /// Appends one record; returns its LSN.
  uint64_t append(ThreadId T, uint64_t TableId, uint64_t Key,
                  uint64_t Value);

  /// Appends a commit marker for \p Tid.
  uint64_t commit(ThreadId T);

  uint64_t lsn() const { return Lsn; }

private:
  rt::Runtime &Rt;
  rt::Mutex Latch;
  std::vector<uint64_t> Ring;
  uint64_t Lsn = 0;
};

/// The engine facade: named tables over B-trees plus the WAL.
class Database {
public:
  Database(rt::Runtime &Rt, size_t NumTables, size_t PoolFrames,
           size_t DiskPages);

  size_t numTables() const { return Trees.size(); }

  /// Transactional write: WAL append, then index update, then commit mark.
  void put(ThreadId T, size_t Table, uint64_t Key, uint64_t Value);
  bool get(ThreadId T, size_t Table, uint64_t Key, uint64_t &Value);
  size_t scan(ThreadId T, size_t Table, uint64_t Lo, size_t Limit);

  BufferPool &bufferPool() { return Pool; }
  WriteAheadLog &wal() { return Wal; }

private:
  BufferPool Pool;
  WriteAheadLog Wal;
  std::vector<std::unique_ptr<BTree>> Trees;
};

} // namespace db
} // namespace sampletrack

#endif // SAMPLETRACK_WORKLOAD_STORAGEENGINE_H
