//===- sampletrack/workload/Workload.h - OLTP workload driver --*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A multithreaded database-server workload simulator standing in for
/// MySQL + BenchBase in the paper's online evaluation (Section 6.2): client
/// threads execute transactions that acquire table/row locks (Zipf
/// popularity) and read/write row data, with every lock operation and
/// memory access instrumented through rt::Runtime. Average request latency
/// is the evaluation metric, exactly as in the paper.
///
/// The suite mirrors the BenchBase benchmarks the paper keeps (15 minus the
/// three excluded outliers): each named spec varies contention, transaction
/// length, read/write mix and sync-to-access ratio.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_WORKLOAD_WORKLOAD_H
#define SAMPLETRACK_WORKLOAD_WORKLOAD_H

#include "sampletrack/detectors/Metrics.h"
#include "sampletrack/explore/Workload.h"
#include "sampletrack/runtime/Runtime.h"
#include "sampletrack/support/Table.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace sampletrack {
namespace workload {

/// Static description of one OLTP-style benchmark.
struct BenchmarkSpec {
  std::string Name;
  /// Number of lock-protected tables.
  size_t NumTables = 16;
  /// Rows per table (the unit of data touched by operations).
  size_t RowsPerTable = 256;
  /// Operations (row touches) per transaction, uniform in [Min, Max].
  size_t OpsMin = 8, OpsMax = 32;
  /// Fraction of row touches that are writes.
  double WriteFraction = 0.3;
  /// Zipf exponent for table popularity (higher = more lock contention).
  double ZipfTheta = 0.8;
  /// Probability that a transaction takes a second table lock (nested).
  double SecondLockProb = 0.2;
  /// Fraction of transactions that also touch a small unprotected shared
  /// scratch area — these seed real races.
  double UnprotectedProb = 0.01;
  /// Number of scratch touches performed when a transaction does touch the
  /// unprotected area.
  size_t UnprotectedOpsPerTxn = 1;
  /// Probability that an individual row operation additionally takes a
  /// fine-grained row-group lock (MySQL-style two-level locking). Raises
  /// the sync-to-access ratio, the regime the paper targets.
  double RowLockProb = 0.3;
  /// Number of row fields touched per operation (each is one instrumented
  /// access): real engines read/write many columns per row op, which is
  /// what makes access analysis dominate at high sampling rates.
  size_t FieldsPerOp = 4;
  /// Extra CPU work (iterations of a mixing loop) per operation, modelling
  /// non-instrumented computation between accesses.
  unsigned ComputePerOp = 4;
  /// Size of the unprotected shared scratch area (number of distinct racy
  /// locations available).
  size_t ScratchCells = 64;
};

/// The 12 BenchBase-style benchmarks (suite of Section 6.2.1 after
/// exclusions).
const std::vector<BenchmarkSpec> &benchbaseSuite();

/// Looks up a spec by name; returns nullptr if unknown.
const BenchmarkSpec *findBenchmark(const std::string &Name);

/// Run configuration: how many clients, how much work, which analysis.
struct RunConfig {
  size_t NumClients = 12;
  size_t RequestsPerClient = 2000;
  /// If positive, clients run until the deadline instead of a fixed request
  /// count — the paper's stress-testing setup, where configurations with
  /// lower overhead get through more requests in the same budget (this is
  /// what makes low sampling rates competitive in Fig. 6(a)).
  double TimeBudgetSec = 0.0;
  rt::Config Rt;
  uint64_t Seed = 1;
};

/// Results of one benchmark run.
struct RunStats {
  std::string Benchmark;
  std::string ModeLabel;
  /// Per-request latency summary in nanoseconds.
  Summary LatencyNs;
  uint64_t TotalRequests = 0;
  uint64_t Races = 0;
  uint64_t RacyLocations = 0;
  /// Distinct race signatures the runtime's warehouse sinks deduplicated
  /// the Races declarations into (merged across threads).
  uint64_t DistinctRaces = 0;
  Metrics Stats;
  /// Wall-clock time of the whole run in nanoseconds.
  uint64_t WallNanos = 0;
  /// The recorded execution, populated iff Config.Rt.RecordTrace was set:
  /// one interleaving of the workload, replayable offline through an
  /// api::AnalysisSession (how the fig5b harness measures multi-lane
  /// analysis cost on its own workload).
  Trace Recorded;
};

/// Executes \p Spec under \p Config: spawns the client threads, runs all
/// requests, measures per-request latency, and tears the runtime down.
/// If \p RtOut is nonnull the quiescent runtime is handed back instead of
/// destroyed, so callers can inspect post-mortem state the stats do not
/// carry — in particular \ref rt::Runtime::profileReport and
/// \ref rt::Runtime::profiler when Config.Rt.ProfilingEnabled was set
/// (the fig6a bench's --trace export).
RunStats runBenchmark(const BenchmarkSpec &Spec, const RunConfig &Config,
                      std::unique_ptr<rt::Runtime> *RtOut = nullptr);

/// The schedule-point bridge into sampletrack::explore: runs \p Spec with
/// trace recording forced on (every instrumented lock operation and memory
/// access is a schedule point) and projects the recorded execution onto
/// per-thread programs. The OS-chosen interleaving the run happened to
/// take becomes one point of the returned workload's schedule space; the
/// explorer enumerates its neighbors, turning "would another interleaving
/// of this very workload have raced?" into a measured quantity
/// (api::runExploration). If \p Stats is nonnull the full run statistics
/// (including the recorded trace) are moved into it.
explore::Workload recordPrograms(const BenchmarkSpec &Spec, RunConfig Config,
                                 RunStats *Stats = nullptr);

} // namespace workload
} // namespace sampletrack

#endif // SAMPLETRACK_WORKLOAD_WORKLOAD_H
