//===- sampletrack/sampling/PeriodSamplers.h - Pacer/RPT styles -*- C++ -*-==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sampling strategies modelled on the prior systems the paper positions
/// itself against (Section 3 / Section 7). The Analysis Problem engines are
/// agnostic to the strategy, so these compose with ST/SU/SO unchanged —
/// demonstrating the paper's claim that its timestamping improvements
/// benefit *all* sampling-based approaches:
///
///  - PacerSampler: Pacer (Bond et al., PLDI 2010) alternates global
///    sampling and non-sampling periods; during a sampling period every
///    access is observed.
///  - BudgetSampler: RPT-style (Al Thokair et al., POPL 2023) — a fixed
///    budget of k samples spread uniformly over an execution of estimated
///    length N via reservoir-like skipping.
///  - ColdRegionSampler: LiteRace-style (Marino et al., PLDI 2009) — a
///    per-location budget that samples a location's first accesses heavily
///    and backs off exponentially as the location gets hot.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_SAMPLING_PERIODSAMPLERS_H
#define SAMPLETRACK_SAMPLING_PERIODSAMPLERS_H

#include "sampletrack/sampling/Sampler.h"

#include <unordered_map>

namespace sampletrack {

/// Pacer-style alternating sampling periods: with probability \p Rate a
/// period of \p PeriodLength accesses is a sampling period, during which
/// every access is in S.
class PacerSampler final : public Sampler {
public:
  PacerSampler(double Rate, uint64_t PeriodLength, uint64_t Seed)
      : Rng(Seed), Rate(Rate), PeriodLength(PeriodLength) {
    assert(PeriodLength > 0 && "period must be positive");
  }

  bool shouldSample(const Event &) override {
    if (LeftInPeriod == 0) {
      InSamplingPeriod = Rng.nextBool(Rate);
      LeftInPeriod = PeriodLength;
    }
    --LeftInPeriod;
    return InSamplingPeriod;
  }

  std::string name() const override;

private:
  SplitMix64 Rng;
  double Rate;
  uint64_t PeriodLength;
  uint64_t LeftInPeriod = 0;
  bool InSamplingPeriod = false;
};

/// RPT-style fixed budget: approximately \p Budget samples uniformly spread
/// over an execution with \p EstimatedAccesses access events. Once the
/// budget is exhausted, nothing more is sampled.
class BudgetSampler final : public Sampler {
public:
  BudgetSampler(uint64_t Budget, uint64_t EstimatedAccesses, uint64_t Seed)
      : Rng(Seed), Remaining(Budget),
        Rate(EstimatedAccesses
                 ? static_cast<double>(Budget) / EstimatedAccesses
                 : 0.0) {}

  bool shouldSample(const Event &) override {
    if (Remaining == 0)
      return false;
    if (!Rng.nextBool(Rate))
      return false;
    --Remaining;
    return true;
  }

  std::string name() const override {
    return "budget(" + std::to_string(Remaining) + " left)";
  }

  uint64_t remaining() const { return Remaining; }

private:
  SplitMix64 Rng;
  uint64_t Remaining;
  double Rate;
};

/// LiteRace-style cold-region sampling: each location starts with a 100%
/// sampling rate that halves every \p Backoff samples, down to \p FloorRate.
/// Cold (rarely-touched) code keeps getting sampled; hot locations fade.
class ColdRegionSampler final : public Sampler {
public:
  ColdRegionSampler(uint64_t Backoff, double FloorRate, uint64_t Seed)
      : Rng(Seed), Backoff(Backoff), FloorRate(FloorRate) {
    assert(Backoff > 0 && "backoff must be positive");
  }

  bool shouldSample(const Event &E) override {
    State &S = PerVar[E.var()];
    double Rate = S.Rate;
    if (!Rng.nextBool(Rate))
      return false;
    if (++S.Sampled % Backoff == 0)
      S.Rate = std::max(FloorRate, S.Rate * 0.5);
    return true;
  }

  std::string name() const override;

private:
  struct State {
    double Rate = 1.0;
    uint64_t Sampled = 0;
  };

  SplitMix64 Rng;
  uint64_t Backoff;
  double FloorRate;
  std::unordered_map<VarId, State> PerVar;
};

} // namespace sampletrack

#endif // SAMPLETRACK_SAMPLING_PERIODSAMPLERS_H
