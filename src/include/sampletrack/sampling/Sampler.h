//===- sampletrack/sampling/Sampler.h - Sampling strategies ----*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Strategies for choosing the sample set S (the Sampling Problem of
/// Section 3). The detectors are agnostic to the strategy; the paper
/// evaluates Bernoulli sampling of access events at fixed rates (0.3%, 3%,
/// 10%, 100%), which \ref BernoulliSampler implements. Only access events
/// are eligible: synchronization events must always be processed for
/// soundness.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_SAMPLING_SAMPLER_H
#define SAMPLETRACK_SAMPLING_SAMPLER_H

#include "sampletrack/support/Rng.h"
#include "sampletrack/trace/Event.h"

#include <cassert>
#include <memory>
#include <string>
#include <unordered_set>

namespace sampletrack {

/// Decides, on the fly, whether an access event belongs to the sample set S.
///
/// The decision may be consulted exactly once per event, in trace order;
/// stateful samplers rely on that.
class Sampler {
public:
  virtual ~Sampler() = default;

  /// Returns true iff \p E is in the sample set. Only called for access
  /// events.
  virtual bool shouldSample(const Event &E) = 0;

  /// Human-readable configuration, e.g. "bernoulli(3%)".
  virtual std::string name() const = 0;
};

/// Samples every access (the 100% configurations; also used to compare the
/// sampling engines against FastTrack on the full trace).
class AlwaysSampler final : public Sampler {
public:
  bool shouldSample(const Event &) override { return true; }
  std::string name() const override { return "always"; }
};

/// Samples nothing; isolates pure streaming overhead.
class NeverSampler final : public Sampler {
public:
  bool shouldSample(const Event &) override { return false; }
  std::string name() const override { return "never"; }
};

/// Independent Bernoulli sampling of access events at a fixed \p Rate, the
/// paper's strategy (Section 6.1): "we generate a random number and skip the
/// event if the number is above a fixed threshold".
class BernoulliSampler final : public Sampler {
public:
  BernoulliSampler(double Rate, uint64_t Seed) : Rng(Seed), Rate(Rate) {
    assert(Rate >= 0.0 && Rate <= 1.0 && "rate must be a probability");
  }

  bool shouldSample(const Event &) override { return Rng.nextBool(Rate); }

  std::string name() const override;

  double rate() const { return Rate; }

private:
  SplitMix64 Rng;
  double Rate;
};

/// Samples every K-th access event (deterministic; useful in tests where a
/// predictable S is needed).
class PeriodicSampler final : public Sampler {
public:
  explicit PeriodicSampler(uint64_t Period, uint64_t Offset = 0)
      : Period(Period), Counter(Offset) {
    assert(Period > 0 && "period must be positive");
  }

  bool shouldSample(const Event &) override {
    return Counter++ % Period == 0;
  }

  std::string name() const override {
    return "periodic(" + std::to_string(Period) + ")";
  }

private:
  uint64_t Period;
  uint64_t Counter;
};

/// Samples accesses to a fixed set of memory locations (RaceMob-style
/// static-analysis-driven sampling; Section 3's "accesses to specific
/// shared data structures").
class TargetedSampler final : public Sampler {
public:
  explicit TargetedSampler(std::unordered_set<VarId> Targets)
      : Targets(std::move(Targets)) {}

  bool shouldSample(const Event &E) override {
    return Targets.count(E.var()) != 0;
  }

  std::string name() const override {
    return "targeted(" + std::to_string(Targets.size()) + " vars)";
  }

private:
  std::unordered_set<VarId> Targets;
};

/// Defers to the Marked bit carried by the trace (the Analysis Problem's
/// "marked events" formulation; used to replay a fixed S).
class MarkedSampler final : public Sampler {
public:
  bool shouldSample(const Event &E) override { return E.Marked; }
  std::string name() const override { return "marked"; }
};

} // namespace sampletrack

#endif // SAMPLETRACK_SAMPLING_SAMPLER_H
