//===- sampletrack/support/simd/ClockKernels.h - SIMD clock ops -*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The vectorized inner loops of every engine: pointwise max (the vector
/// clock join of Eq. 4), pointwise <= (the \f$ \sqsubseteq \f$ of Eq. 3),
/// the change-counting join Algorithm 3 charges to U_t(t), and component
/// sums. All kernels operate on flat uint64_t arrays — the SoA storage of
/// VectorClock and OrderedList — and are selected once at startup from a
/// small tier ladder:
///
///   - Avx2   x86-64 with AVX2, detected at runtime via cpuid (the binary
///            itself is built without -mavx2; the kernels carry a target
///            attribute, so a non-AVX2 host simply never calls them).
///   - Neon   AArch64 (Advanced SIMD is baseline there, so compile-time).
///   - Scalar portable fallback, and the reference semantics: every tier
///            must be *bit-identical* to it — this is fuzzed by the
///            SimdTier axis of the differential harness and pinned by
///            ClockTest property cases across vector-width boundaries.
///
/// Setting SAMPLETRACK_FORCE_SCALAR=1 in the environment pins the scalar
/// tier (CI runs a whole matrix leg this way so the fallback stays green);
/// tests flip tiers programmatically with forceTier().
///
/// Calls below the dispatch threshold inline a scalar loop directly: most
/// traces have a handful of threads, and an indirect call per 4-element
/// pass would cost more than it saves. The threshold is semantically
/// invisible — every tier computes the same function.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_SUPPORT_SIMD_CLOCKKERNELS_H
#define SAMPLETRACK_SUPPORT_SIMD_CLOCKKERNELS_H

#include "sampletrack/support/Common.h"

#include <atomic>
#include <cstddef>

namespace sampletrack {
namespace simd {

/// Kernel implementation tiers, best-first where supported.
enum class Tier : unsigned { Scalar = 0, Avx2 = 1, Neon = 2 };

/// Human-readable tier name ("scalar", "avx2", "neon") for logs and bench
/// metadata.
const char *tierName(Tier T);

/// The tier every dispatched call currently uses. Resolved on first use:
/// the best tier the host supports, unless SAMPLETRACK_FORCE_SCALAR pins
/// the fallback.
Tier activeTier();

/// Pins the dispatch to \p T. Returns false (and changes nothing) when the
/// host cannot execute that tier. Tests use this to compare tiers on the
/// same host; production code never calls it. Not safe to call while other
/// threads are inside an analysis — flip tiers between runs only.
bool forceTier(Tier T);

namespace detail {

/// One dispatch table per tier; kernels take raw arrays.
struct KernelTable {
  void (*JoinMax)(ClockValue *Dst, const ClockValue *Src, size_t N);
  unsigned (*JoinMaxCount)(ClockValue *Dst, const ClockValue *Src, size_t N);
  bool (*AllLeq)(const ClockValue *A, const ClockValue *B, size_t N);
  ClockValue (*Sum)(const ClockValue *V, size_t N);
  Tier T;
};

/// Active table; lazily resolved, atomically swapped by forceTier.
const KernelTable *table();

/// Below this element count the inline scalar loop wins over an indirect
/// call into a vector kernel (AVX2 is 4 lanes; NEON 2).
inline constexpr size_t DispatchThreshold = 8;

} // namespace detail

/// Dst[i] = max(Dst[i], Src[i]) for i in [0, N).
inline void joinMax(ClockValue *Dst, const ClockValue *Src, size_t N) {
  if (N < detail::DispatchThreshold) {
    for (size_t I = 0; I < N; ++I)
      if (Src[I] > Dst[I])
        Dst[I] = Src[I];
    return;
  }
  detail::table()->JoinMax(Dst, Src, N);
}

/// joinMax that also returns how many components strictly increased.
inline unsigned joinMaxCount(ClockValue *Dst, const ClockValue *Src,
                             size_t N) {
  if (N < detail::DispatchThreshold) {
    unsigned Changed = 0;
    for (size_t I = 0; I < N; ++I)
      if (Src[I] > Dst[I]) {
        Dst[I] = Src[I];
        ++Changed;
      }
    return Changed;
  }
  return detail::table()->JoinMaxCount(Dst, Src, N);
}

/// True iff A[i] <= B[i] for every i in [0, N).
inline bool allLeq(const ClockValue *A, const ClockValue *B, size_t N) {
  if (N < detail::DispatchThreshold) {
    for (size_t I = 0; I < N; ++I)
      if (A[I] > B[I])
        return false;
    return true;
  }
  return detail::table()->AllLeq(A, B, N);
}

/// Sum of V[0..N) (mod 2^64; addition commutes, so lane order is free).
inline ClockValue sum(const ClockValue *V, size_t N) {
  if (N < detail::DispatchThreshold) {
    ClockValue S = 0;
    for (size_t I = 0; I < N; ++I)
      S += V[I];
    return S;
  }
  return detail::table()->Sum(V, N);
}

} // namespace simd
} // namespace sampletrack

#endif // SAMPLETRACK_SUPPORT_SIMD_CLOCKKERNELS_H
