//===- sampletrack/support/Common.h - Basic identifiers --------*- C++ -*-===//
//
// Part of the SampleTrack project: a reproduction of "Efficient Timestamping
// for Sampling-Based Race Detection" (PLDI 2025).
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fundamental identifier and timestamp types shared by every SampleTrack
/// library. Thread, lock and memory-location identifiers are small dense
/// integers so that vector clocks and shadow state can be array-indexed.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_SUPPORT_COMMON_H
#define SAMPLETRACK_SUPPORT_COMMON_H

#include <cstddef>
#include <cstdint>
#include <limits>

namespace sampletrack {

/// Dense identifier of a thread. Threads are numbered 0..T-1.
using ThreadId = uint32_t;

/// Dense identifier of a synchronization object (lock, atomic variable,
/// thread-join channel). Numbered 0..L-1 within a trace.
using SyncId = uint32_t;

/// Identifier of a memory location (variable). Numbered 0..V-1 within a
/// trace; the online runtime hashes raw addresses into this space.
using VarId = uint64_t;

/// A single component of a vector timestamp.
using ClockValue = uint64_t;

/// Sentinel for "no thread", used e.g. for a lock that was never released
/// (the LR_l variable of Algorithms 3 and 4).
inline constexpr ThreadId NoThread = std::numeric_limits<ThreadId>::max();

/// Sentinel for "no sync object".
inline constexpr SyncId NoSync = std::numeric_limits<SyncId>::max();

/// Sentinel for "no variable".
inline constexpr VarId NoVar = std::numeric_limits<VarId>::max();

/// Grows \p Vec (any std::vector-like container of default-constructible
/// elements) so that index \p I is valid, reserving geometrically. A plain
/// resize(I + 1) per new maximum is O(n^2) total on ascending-index streams
/// with libraries that size the new buffer exactly; doubling the capacity
/// makes lazily-grown per-variable / per-sync state amortized O(1) per
/// element on every implementation.
template <typename VecT>
inline void growToIndex(VecT &Vec, std::size_t I) {
  if (I < Vec.size())
    return;
  if (I >= Vec.capacity()) {
    std::size_t Doubled = Vec.capacity() * 2;
    Vec.reserve(I + 1 > Doubled ? I + 1 : Doubled);
  }
  Vec.resize(I + 1);
}

/// Incremental FNV-1a 64 — the repo's one non-cryptographic byte hash
/// (schedule identities, persisted-store checksums). Feed values through
/// the fixed-width helpers so the hash is byte-order independent.
struct Fnv1a {
  uint64_t H = 0xcbf29ce484222325ULL;

  void byte(uint8_t B) {
    H ^= B;
    H *= 0x100000001b3ULL;
  }

  void bytes(const void *P, std::size_t N) {
    const unsigned char *C = static_cast<const unsigned char *>(P);
    for (std::size_t I = 0; I < N; ++I)
      byte(C[I]);
  }

  void u32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      byte((V >> (8 * I)) & 0xff);
  }

  uint64_t value() const { return H; }
};

/// \ref growToIndex, assigning \p Fill to every newly created element
/// (only the new tail is touched — a full re-scan per growth would bring
/// the O(n^2) right back).
template <typename VecT>
inline void growToIndexFilled(VecT &Vec, std::size_t I,
                              const typename VecT::value_type &Fill) {
  std::size_t Old = Vec.size();
  growToIndex(Vec, I);
  for (std::size_t K = Old; K < Vec.size(); ++K)
    Vec[K] = Fill;
}

} // namespace sampletrack

#endif // SAMPLETRACK_SUPPORT_COMMON_H
