//===- sampletrack/support/Rng.h - Deterministic randomness ----*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic pseudo-random generators used by the samplers and workload
/// generators. Every experiment in the paper fixes its seeds so that all
/// configurations process the same request/event distribution; SplitMix64
/// gives us that reproducibility without std::mt19937's weight.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_SUPPORT_RNG_H
#define SAMPLETRACK_SUPPORT_RNG_H

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace sampletrack {

/// SplitMix64: a tiny, fast, statistically solid 64-bit generator.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed = 0x9e3779b97f4a7c15ULL) : State(Seed) {}

  /// Next raw 64-bit value.
  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "empty range");
    // Multiply-shift rejection-free mapping; bias is negligible for the
    // bounds used here (all << 2^64).
    return static_cast<uint64_t>(
        (static_cast<__uint128_t>(next()) * Bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability \p P.
  bool nextBool(double P) { return nextDouble() < P; }

private:
  uint64_t State;
};

/// Zipf-distributed integer sampler over {0, ..., N-1} with exponent
/// \p Theta, using the precomputed-CDF method. Models the skewed lock/row
/// popularity of OLTP workloads (BenchBase uses the same family).
class ZipfDistribution {
public:
  ZipfDistribution(uint64_t N, double Theta) : Cdf(N) {
    assert(N > 0 && "empty support");
    double Sum = 0;
    for (uint64_t I = 0; I < N; ++I) {
      Sum += 1.0 / std::pow(static_cast<double>(I + 1), Theta);
      Cdf[I] = Sum;
    }
    for (uint64_t I = 0; I < N; ++I)
      Cdf[I] /= Sum;
  }

  /// Draws one sample using randomness from \p Rng. O(log N).
  uint64_t sample(SplitMix64 &Rng) const {
    double U = Rng.nextDouble();
    // Binary search for the first CDF entry >= U.
    size_t Lo = 0, Hi = Cdf.size();
    while (Lo < Hi) {
      size_t Mid = Lo + (Hi - Lo) / 2;
      if (Cdf[Mid] < U)
        Lo = Mid + 1;
      else
        Hi = Mid;
    }
    return Lo < Cdf.size() ? Lo : Cdf.size() - 1;
  }

private:
  std::vector<double> Cdf;
};

} // namespace sampletrack

#endif // SAMPLETRACK_SUPPORT_RNG_H
