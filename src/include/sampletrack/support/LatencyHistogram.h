//===- sampletrack/support/LatencyHistogram.h - Bounded p50/p95 -*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size, lock-free latency histogram: 32 power-of-two microsecond
/// buckets (bucket B holds samples in [2^B, 2^(B+1)) µs, bucket 0 holds
/// [0, 2) µs), relaxed atomic counts, and an atomic running maximum.
/// Quantiles are read back as the upper edge of the bucket containing the
/// requested rank — a ≤2x overestimate by construction, bounded memory
/// forever, no allocation on the record path. Made for the triaged server's
/// per-endpoint request-latency tracking.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_SUPPORT_LATENCYHISTOGRAM_H
#define SAMPLETRACK_SUPPORT_LATENCYHISTOGRAM_H

#include <array>
#include <atomic>
#include <cstdint>

namespace sampletrack {
namespace support {

class LatencyHistogram {
public:
  static constexpr size_t NumBuckets = 32;

  /// Records one sample (thread-safe, wait-free).
  void record(uint64_t Micros) {
    Buckets[bucketOf(Micros)].fetch_add(1, std::memory_order_relaxed);
    uint64_t Prev = MaxMicros.load(std::memory_order_relaxed);
    while (Micros > Prev &&
           !MaxMicros.compare_exchange_weak(Prev, Micros,
                                            std::memory_order_relaxed))
      ;
  }

  struct Snapshot {
    uint64_t Count = 0;
    uint64_t P50Micros = 0;
    uint64_t P95Micros = 0;
    uint64_t MaxMicros = 0;
  };

  /// Consistent-enough read for a live server: counts are summed with
  /// relaxed loads; quantiles are bucket upper edges.
  Snapshot snapshot() const {
    std::array<uint64_t, NumBuckets> C;
    uint64_t Total = 0;
    for (size_t I = 0; I < NumBuckets; ++I) {
      C[I] = Buckets[I].load(std::memory_order_relaxed);
      Total += C[I];
    }
    Snapshot S;
    S.Count = Total;
    S.MaxMicros = MaxMicros.load(std::memory_order_relaxed);
    if (!Total)
      return S;
    S.P50Micros = quantile(C, Total, 50);
    S.P95Micros = quantile(C, Total, 95);
    return S;
  }

private:
  static size_t bucketOf(uint64_t Micros) {
    size_t B = 0;
    while (Micros > 1 && B + 1 < NumBuckets) {
      Micros >>= 1;
      ++B;
    }
    return B;
  }

  static uint64_t upperEdge(size_t Bucket) {
    return Bucket + 1 >= 64 ? ~0ull : (uint64_t(1) << (Bucket + 1));
  }

  static uint64_t quantile(const std::array<uint64_t, NumBuckets> &C,
                           uint64_t Total, uint64_t Percent) {
    // Rank is 1-based and rounded up, so p100 is the last sample.
    uint64_t Rank = (Total * Percent + 99) / 100;
    if (!Rank)
      Rank = 1;
    uint64_t Seen = 0;
    for (size_t I = 0; I < NumBuckets; ++I) {
      Seen += C[I];
      if (Seen >= Rank)
        return upperEdge(I);
    }
    return upperEdge(NumBuckets - 1);
  }

  std::array<std::atomic<uint64_t>, NumBuckets> Buckets{};
  std::atomic<uint64_t> MaxMicros{0};
};

} // namespace support
} // namespace sampletrack

#endif // SAMPLETRACK_SUPPORT_LATENCYHISTOGRAM_H
