//===- sampletrack/support/Json.h - Minimal JSON DOM ------------*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small recursive-descent JSON parser producing an owning DOM. It exists
/// for the repo's own machine-readable outputs — the bench trajectory files
/// the perf gate diffs, and the chrome-trace/stats documents the tests
/// schema-check — so it favors simplicity over speed: strings are plain
/// std::string (\uXXXX escapes outside Latin-1 are replaced, not decoded),
/// numbers are double, object keys keep insertion order.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_SUPPORT_JSON_H
#define SAMPLETRACK_SUPPORT_JSON_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sampletrack {
namespace support {

/// One JSON value. Sum-type-by-enum; only the members matching \ref K are
/// meaningful.
class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind K = Kind::Null;
  bool Bool = false;
  double Number = 0;
  std::string Str;
  std::vector<JsonValue> Array;
  /// Insertion-ordered; duplicate keys keep the last value on lookup.
  std::vector<std::pair<std::string, JsonValue>> Object;

  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue *get(std::string_view Key) const;
  /// get() that also requires the member to be a number; \p Found reports
  /// presence.
  double getNumber(std::string_view Key, double Default = 0,
                   bool *Found = nullptr) const;
  /// get() that also requires the member to be a string.
  std::string getString(std::string_view Key,
                        std::string Default = "") const;

  /// Parses \p Text (one complete document; trailing garbage is an error).
  /// On failure returns false and, when \p Error is non-null, describes the
  /// problem with a byte offset.
  static bool parse(std::string_view Text, JsonValue &Out,
                    std::string *Error = nullptr);
  /// Reads and parses a file.
  static bool parseFile(const std::string &Path, JsonValue &Out,
                        std::string *Error = nullptr);
};

} // namespace support
} // namespace sampletrack

#endif // SAMPLETRACK_SUPPORT_JSON_H
