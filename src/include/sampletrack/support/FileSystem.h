//===- sampletrack/support/FileSystem.h - File-ops seam --------*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The virtual file-operations seam every durability-critical path writes
/// through: TriageStore saves, Wire summary files, and the TriageLog
/// journal all take a \ref FileSystem so the crash tests can swap the real
/// POSIX backend for \ref FaultInjectionFs and fail any single operation,
/// shorten any write, or cut the power mid-sequence.
///
/// The interface deliberately mirrors the POSIX contract the durability
/// code must survive, not a convenience wrapper over it:
///
///  - \ref WritableFile::write may write *fewer* bytes than asked (short
///    writes, EINTR) — callers loop via \ref writeAll, and that loop is
///    itself code under test.
///  - Data reaches stable storage only at \ref WritableFile::sync;
///    renames and creations reach it only at \ref FileSystem::syncDirectory
///    on the parent directory. Anything else may vanish at power cut.
///  - \ref FileSystem::rename is atomic within one directory tree: a
///    reader sees the old file or the new one, never a mix.
///
/// \ref FileSystem::real() is the process-wide POSIX implementation.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_SUPPORT_FILESYSTEM_H
#define SAMPLETRACK_SUPPORT_FILESYSTEM_H

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace sampletrack {
namespace support {

/// A writable file handle with POSIX write semantics.
class WritableFile {
public:
  virtual ~WritableFile() = default;

  /// Appends up to \p Len bytes at the current position. Returns the number
  /// actually written (possibly fewer — a short write) or -1 on error.
  virtual long write(const char *Data, size_t Len) = 0;

  /// Flushes written bytes to stable storage (fsync). Until this returns
  /// true, nothing written is guaranteed to survive a power cut.
  virtual bool sync() = 0;

  /// Closes the handle. Further writes are invalid. Idempotent.
  virtual bool close() = 0;
};

/// Abstract file operations. Implementations: the POSIX \ref real()
/// backend, and support::FaultInjectionFs for crash testing.
class FileSystem {
public:
  virtual ~FileSystem() = default;

  /// Reads the whole file into \p Out. False (with \p Error) when missing
  /// or unreadable.
  virtual bool readFile(const std::string &Path, std::string &Out,
                        std::string *Error = nullptr) = 0;

  /// Opens \p Path for writing: truncated when \p Append is false,
  /// positioned at the end otherwise (creating it either way). Returns
  /// nullptr on failure.
  virtual std::unique_ptr<WritableFile>
  openWrite(const std::string &Path, bool Append,
            std::string *Error = nullptr) = 0;

  virtual bool exists(const std::string &Path) = 0;
  virtual bool isDirectory(const std::string &Path) = 0;

  /// Creates one directory (parent must exist). False if it already exists
  /// or cannot be created.
  virtual bool mkdir(const std::string &Path) = 0;

  /// Atomically renames \p From to \p To (replacing \p To if present).
  virtual bool rename(const std::string &From, const std::string &To) = 0;

  /// Removes a file (not a directory).
  virtual bool remove(const std::string &Path) = 0;

  /// Removes an *empty* directory.
  virtual bool removeDir(const std::string &Path) = 0;

  /// Truncates the file to \p Size bytes (must be <= current size here —
  /// the journal recovery path only ever cuts a torn tail off).
  virtual bool truncate(const std::string &Path, uint64_t Size) = 0;

  /// fsyncs the directory itself, making the names it contains (creations,
  /// renames, removals) durable.
  virtual bool syncDirectory(const std::string &Path) = 0;

  /// Names (final components) of the entries in directory \p Path,
  /// excluding "." and "..". False when \p Path is not a listable
  /// directory.
  virtual bool list(const std::string &Path,
                    std::vector<std::string> &Names) = 0;

  /// Size of the file at \p Path; false when missing or not a file.
  virtual bool fileSize(const std::string &Path, uint64_t &Size) = 0;

  /// The process-wide POSIX filesystem.
  static FileSystem &real();
};

/// Writes all of \p Bytes through \p File, looping over short writes. This
/// loop — not any one write() — is the unit the EINTR/short-write
/// schedules exercise. Returns false on the first hard error.
bool writeAll(WritableFile &File, std::string_view Bytes);

/// Directory component of \p Path ("." when it has none) — where the
/// post-rename syncDirectory must land.
std::string parentDirOf(const std::string &Path);

} // namespace support
} // namespace sampletrack

#endif // SAMPLETRACK_SUPPORT_FILESYSTEM_H
