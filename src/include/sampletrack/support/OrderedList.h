//===- sampletrack/support/OrderedList.h - Recency-ordered clock -*- C++ -*-==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ordered-list data structure of Section 5 of the paper: a vector
/// timestamp stored as a doubly-linked list whose node order records the
/// recency of per-entry updates. get/set/increment are O(1); set and
/// increment move the updated node to the head. An acquire in Algorithm 4
/// only walks the first (U_l - U_t(LR_l)) nodes, because by Proposition 6
/// those are the only entries that can be ahead of the acquiring thread.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_SUPPORT_ORDEREDLIST_H
#define SAMPLETRACK_SUPPORT_ORDEREDLIST_H

#include "sampletrack/support/Common.h"
#include "sampletrack/support/VectorClock.h"

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

namespace sampletrack {

/// A vector timestamp whose entries are kept in most-recently-updated-first
/// order.
///
/// The list is stored as an array of nodes indexed by thread id with
/// intrusive prev/next links, so there is one allocation per list and a deep
/// copy is a flat memcpy. The thread map required by the paper's definition
/// (ThrMap) is the array index itself.
class OrderedList {
public:
  OrderedList() = default;

  /// Creates the bottom timestamp over \p NumThreads threads. The initial
  /// list order is thread 0 at the head; it is arbitrary because all entries
  /// are equal (zero).
  explicit OrderedList(size_t NumThreads) { reset(NumThreads); }

  /// Reinitializes to the bottom timestamp over \p NumThreads threads.
  void reset(size_t NumThreads) {
    Nodes.assign(NumThreads, Node());
    for (size_t I = 0; I < NumThreads; ++I) {
      Nodes[I].Time = 0;
      Nodes[I].Prev = (I == 0) ? NoThread : static_cast<ThreadId>(I - 1);
      Nodes[I].Next =
          (I + 1 == NumThreads) ? NoThread : static_cast<ThreadId>(I + 1);
    }
    Head = NumThreads == 0 ? NoThread : 0;
    Tail = NumThreads == 0 ? NoThread
                           : static_cast<ThreadId>(NumThreads - 1);
  }

  /// Number of entries.
  size_t size() const { return Nodes.size(); }

  /// O(1) lookup of thread \p T's component (the paper's O.get(tid)).
  ClockValue get(ThreadId T) const {
    assert(T < Nodes.size() && "thread out of range");
    return Nodes[T].Time;
  }

  /// O(1) update of thread \p T's component to \p V, moving the node to the
  /// head of the list (the paper's O.set(tid, time)).
  void set(ThreadId T, ClockValue V) {
    assert(T < Nodes.size() && "thread out of range");
    Nodes[T].Time = V;
    moveToHead(T);
  }

  /// O(1) increment of thread \p T's component by \p K, moving the node to
  /// the head of the list (the paper's O.increment(tid, k)).
  void increment(ThreadId T, ClockValue K) {
    assert(T < Nodes.size() && "thread out of range");
    Nodes[T].Time += K;
    moveToHead(T);
  }

  /// Thread id at the head of the list, or NoThread when empty.
  ThreadId head() const { return Head; }

  /// Thread id following \p T in list order, or NoThread at the tail.
  ThreadId next(ThreadId T) const {
    assert(T < Nodes.size() && "thread out of range");
    return Nodes[T].Next;
  }

  /// Visits the first min(K, T) entries in list order (the paper's
  /// O[0 : k]). \p Visit receives (ThreadId, ClockValue) and returns void.
  template <typename VisitorT> void visitPrefix(size_t K, VisitorT Visit) const {
    ThreadId Cur = Head;
    for (size_t I = 0; I < K && Cur != NoThread; ++I) {
      Visit(Cur, Nodes[Cur].Time);
      Cur = Nodes[Cur].Next;
    }
  }

  /// Pointwise comparison against a plain vector clock: every component of
  /// \p C is <= the corresponding component here, where component
  /// \p OverrideTid of *this* is taken to be \p OverrideVal (the effective
  /// local epoch e_t). Used by the SO race checks.
  bool dominatesWithOverride(const VectorClock &C, ThreadId OverrideTid,
                             ClockValue OverrideVal) const {
    assert(C.size() == Nodes.size() && "clock size mismatch");
    for (size_t I = 0, E = Nodes.size(); I != E; ++I) {
      ClockValue Mine = (I == OverrideTid) ? OverrideVal : Nodes[I].Time;
      if (C.get(static_cast<ThreadId>(I)) > Mine)
        return false;
    }
    return true;
  }

  /// Materializes the timestamp into \p Out, overriding component
  /// \p OverrideTid with \p OverrideVal. Used to snapshot C_t[t -> e_t] into
  /// a write access history.
  void toVectorClock(VectorClock &Out, ThreadId OverrideTid,
                     ClockValue OverrideVal) const {
    assert(Out.size() == Nodes.size() && "clock size mismatch");
    for (size_t I = 0, E = Nodes.size(); I != E; ++I)
      Out.set(static_cast<ThreadId>(I),
              (I == OverrideTid) ? OverrideVal : Nodes[I].Time);
  }

  /// Structural invariant check used by tests: the links form a single
  /// doubly-linked chain visiting every node exactly once.
  bool checkStructure() const;

  /// Renders entries in list order as "[t3:5 t0:2 ...]" for diagnostics.
  std::string str() const;

private:
  struct Node {
    ClockValue Time = 0;
    ThreadId Prev = NoThread;
    ThreadId Next = NoThread;
  };

  void moveToHead(ThreadId T) {
    if (Head == T)
      return;
    Node &N = Nodes[T];
    // Unlink.
    if (N.Prev != NoThread)
      Nodes[N.Prev].Next = N.Next;
    if (N.Next != NoThread)
      Nodes[N.Next].Prev = N.Prev;
    if (Tail == T)
      Tail = N.Prev;
    // Relink at head.
    N.Prev = NoThread;
    N.Next = Head;
    if (Head != NoThread)
      Nodes[Head].Prev = T;
    Head = T;
  }

  std::vector<Node> Nodes;
  ThreadId Head = NoThread;
  ThreadId Tail = NoThread;
};

} // namespace sampletrack

#endif // SAMPLETRACK_SUPPORT_ORDEREDLIST_H
