//===- sampletrack/support/OrderedList.h - Recency-ordered clock -*- C++ -*-==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ordered-list data structure of Section 5 of the paper: a vector
/// timestamp stored as a doubly-linked list whose node order records the
/// recency of per-entry updates. get/set/increment are O(1); set and
/// increment move the updated node to the head. An acquire in Algorithm 4
/// only walks the first (U_l - U_t(LR_l)) nodes, because by Proposition 6
/// those are the only entries that can be ahead of the acquiring thread.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_SUPPORT_ORDEREDLIST_H
#define SAMPLETRACK_SUPPORT_ORDEREDLIST_H

#include "sampletrack/support/Common.h"
#include "sampletrack/support/VectorClock.h"
#include "sampletrack/support/simd/ClockKernels.h"

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

namespace sampletrack {

/// A vector timestamp whose entries are kept in most-recently-updated-first
/// order.
///
/// Storage is SoA: the times live in their own contiguous array (indexed by
/// thread id, the paper's ThrMap being the index itself), with the
/// intrusive prev/next links in two parallel arrays beside it. The split
/// keeps the pointwise passes — \ref dominatesWithOverride and
/// \ref toVectorClock, the SO engines' race-check inner loops — straight
/// runs over a flat uint64_t array that the simd clock kernels consume
/// directly, instead of striding over link-padded nodes. A deep copy is
/// still three flat memcpys, one allocation each at most.
class OrderedList {
public:
  OrderedList() = default;

  /// Creates the bottom timestamp over \p NumThreads threads. The initial
  /// list order is thread 0 at the head; it is arbitrary because all entries
  /// are equal (zero).
  explicit OrderedList(size_t NumThreads) { reset(NumThreads); }

  /// Reinitializes to the bottom timestamp over \p NumThreads threads.
  void reset(size_t NumThreads) {
    Times.assign(NumThreads, 0);
    PrevLink.resize(NumThreads);
    NextLink.resize(NumThreads);
    for (size_t I = 0; I < NumThreads; ++I) {
      PrevLink[I] = (I == 0) ? NoThread : static_cast<ThreadId>(I - 1);
      NextLink[I] =
          (I + 1 == NumThreads) ? NoThread : static_cast<ThreadId>(I + 1);
    }
    Head = NumThreads == 0 ? NoThread : 0;
    Tail = NumThreads == 0 ? NoThread
                           : static_cast<ThreadId>(NumThreads - 1);
  }

  /// Number of entries.
  size_t size() const { return Times.size(); }

  /// O(1) lookup of thread \p T's component (the paper's O.get(tid)).
  ClockValue get(ThreadId T) const {
    assert(T < Times.size() && "thread out of range");
    return Times[T];
  }

  /// O(1) update of thread \p T's component to \p V, moving the node to the
  /// head of the list (the paper's O.set(tid, time)).
  void set(ThreadId T, ClockValue V) {
    assert(T < Times.size() && "thread out of range");
    Times[T] = V;
    moveToHead(T);
  }

  /// O(1) increment of thread \p T's component by \p K, moving the node to
  /// the head of the list (the paper's O.increment(tid, k)).
  void increment(ThreadId T, ClockValue K) {
    assert(T < Times.size() && "thread out of range");
    Times[T] += K;
    moveToHead(T);
  }

  /// Thread id at the head of the list, or NoThread when empty.
  ThreadId head() const { return Head; }

  /// Thread id following \p T in list order, or NoThread at the tail.
  ThreadId next(ThreadId T) const {
    assert(T < Times.size() && "thread out of range");
    return NextLink[T];
  }

  /// Visits the first min(K, T) entries in list order (the paper's
  /// O[0 : k]). \p Visit receives (ThreadId, ClockValue) and returns void.
  template <typename VisitorT> void visitPrefix(size_t K, VisitorT Visit) const {
    ThreadId Cur = Head;
    for (size_t I = 0; I < K && Cur != NoThread; ++I) {
      Visit(Cur, Times[Cur]);
      Cur = NextLink[Cur];
    }
  }

  /// Pointwise comparison against a plain vector clock: every component of
  /// \p C is <= the corresponding component here, where component
  /// \p OverrideTid of *this* is taken to be \p OverrideVal (the effective
  /// local epoch e_t). Used by the SO race checks. A straight kernel pass
  /// over the SoA time array, clipped to C's active prefix (C's trailing
  /// zeros are <= anything).
  bool dominatesWithOverride(const VectorClock &C, ThreadId OverrideTid,
                             ClockValue OverrideVal) const {
    assert(C.size() == Times.size() && "clock size mismatch");
    const ClockValue *Theirs = C.data();
    const ClockValue *Mine = Times.data();
    size_t N = C.activeLen();
    if (OverrideTid >= N)
      return simd::allLeq(Theirs, Mine, N);
    return Theirs[OverrideTid] <= OverrideVal &&
           simd::allLeq(Theirs, Mine, OverrideTid) &&
           simd::allLeq(Theirs + OverrideTid + 1, Mine + OverrideTid + 1,
                        N - OverrideTid - 1);
  }

  /// Materializes the timestamp into \p Out, overriding component
  /// \p OverrideTid with \p OverrideVal. Used to snapshot C_t[t -> e_t] into
  /// a write access history. One flat copy; Out's high-water mark is
  /// rebuilt exactly.
  void toVectorClock(VectorClock &Out, ThreadId OverrideTid,
                     ClockValue OverrideVal) const {
    assert(Out.size() == Times.size() && "clock size mismatch");
    Out.assignWithOverride(Times.data(), Times.size(), OverrideTid,
                           OverrideVal);
  }

  /// Structural invariant check used by tests: the links form a single
  /// doubly-linked chain visiting every node exactly once.
  bool checkStructure() const;

  /// Renders entries in list order as "[t3:5 t0:2 ...]" for diagnostics.
  std::string str() const;

private:
  void moveToHead(ThreadId T) {
    if (Head == T)
      return;
    // Unlink.
    ThreadId P = PrevLink[T], N = NextLink[T];
    if (P != NoThread)
      NextLink[P] = N;
    if (N != NoThread)
      PrevLink[N] = P;
    if (Tail == T)
      Tail = P;
    // Relink at head.
    PrevLink[T] = NoThread;
    NextLink[T] = Head;
    if (Head != NoThread)
      PrevLink[Head] = T;
    Head = T;
  }

  /// SoA storage: contiguous times, links alongside.
  std::vector<ClockValue> Times;
  std::vector<ThreadId> PrevLink;
  std::vector<ThreadId> NextLink;
  ThreadId Head = NoThread;
  ThreadId Tail = NoThread;
};

} // namespace sampletrack

#endif // SAMPLETRACK_SUPPORT_ORDEREDLIST_H
