//===- sampletrack/support/VectorClock.h - Vector timestamps ---*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A classic vector clock: a map Threads -> N stored as a flat array, with
/// the pointwise-max join and pointwise-leq comparison used by Djit+ and
/// FastTrack (Algorithm 1 of the paper). The sampling detectors reuse it for
/// the freshness (U) clocks of Algorithms 3 and 4 and for access histories.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_SUPPORT_VECTORCLOCK_H
#define SAMPLETRACK_SUPPORT_VECTORCLOCK_H

#include "sampletrack/support/Common.h"

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

namespace sampletrack {

/// A vector timestamp over a fixed set of threads.
///
/// All operations that touch every component are O(T); \ref get, \ref set and
/// \ref bump are O(1). The clock is value-semantic and cheap to move.
class VectorClock {
public:
  VectorClock() = default;

  /// Creates the bottom clock (all components zero) over \p NumThreads
  /// threads.
  explicit VectorClock(size_t NumThreads) : Values(NumThreads, 0) {}

  /// Number of components.
  size_t size() const { return Values.size(); }

  /// Grows the clock to \p NumThreads components, zero-filling new entries.
  /// Shrinking is not supported.
  void resize(size_t NumThreads) {
    assert(NumThreads >= Values.size() && "vector clocks never shrink");
    Values.resize(NumThreads, 0);
  }

  /// Returns the component of thread \p T.
  ClockValue get(ThreadId T) const {
    assert(T < Values.size() && "thread out of range");
    return Values[T];
  }

  /// Sets the component of thread \p T to \p V.
  void set(ThreadId T, ClockValue V) {
    assert(T < Values.size() && "thread out of range");
    Values[T] = V;
  }

  /// Increments the component of thread \p T by \p By.
  void bump(ThreadId T, ClockValue By = 1) {
    assert(T < Values.size() && "thread out of range");
    Values[T] += By;
  }

  /// Pointwise comparison: *this <= Other on every component (the \f$
  /// \sqsubseteq \f$ of Eq. 3).
  bool leq(const VectorClock &Other) const {
    assert(Values.size() == Other.Values.size() && "clock size mismatch");
    for (size_t I = 0, E = Values.size(); I != E; ++I)
      if (Values[I] > Other.Values[I])
        return false;
    return true;
  }

  /// Like \ref leq but treats component \p OverrideTid of \p Other as having
  /// value \p OverrideVal. The sampling detectors use this to compare an
  /// access history against the *effective* clock C_t[t -> e_t] without
  /// materializing it (see DESIGN.md, "Same-thread soundness").
  bool leqWithOverride(const VectorClock &Other, ThreadId OverrideTid,
                       ClockValue OverrideVal) const {
    assert(Values.size() == Other.Values.size() && "clock size mismatch");
    for (size_t I = 0, E = Values.size(); I != E; ++I) {
      ClockValue Theirs = (I == OverrideTid) ? OverrideVal : Other.Values[I];
      if (Values[I] > Theirs)
        return false;
    }
    return true;
  }

  /// Pointwise maximum with \p Other (the join of Eq. 4).
  void joinWith(const VectorClock &Other) {
    assert(Values.size() == Other.Values.size() && "clock size mismatch");
    for (size_t I = 0, E = Values.size(); I != E; ++I)
      if (Other.Values[I] > Values[I])
        Values[I] = Other.Values[I];
  }

  /// Joins with \p Other and returns how many components strictly increased.
  /// Algorithm 3 uses this count to maintain the freshness timestamp U_t(t)
  /// (one increment per changed entry, Eq. 9).
  unsigned joinCountingChanges(const VectorClock &Other) {
    assert(Values.size() == Other.Values.size() && "clock size mismatch");
    unsigned Changed = 0;
    for (size_t I = 0, E = Values.size(); I != E; ++I)
      if (Other.Values[I] > Values[I]) {
        Values[I] = Other.Values[I];
        ++Changed;
      }
    return Changed;
  }

  /// Copies \p Other into *this (an O(T) "send" as on Line 17 of
  /// Algorithm 1).
  void copyFrom(const VectorClock &Other) { Values = Other.Values; }

  /// Resets every component to zero.
  void clear() { Values.assign(Values.size(), 0); }

  /// Sum of all components; the paper bounds this by |S| for sampling
  /// timestamps (Section 4.1).
  ClockValue componentSum() const {
    ClockValue Sum = 0;
    for (ClockValue V : Values)
      Sum += V;
    return Sum;
  }

  bool operator==(const VectorClock &Other) const {
    return Values == Other.Values;
  }
  bool operator!=(const VectorClock &Other) const {
    return Values != Other.Values;
  }

  /// Renders the clock as "<a,b,c>" for diagnostics and tests.
  std::string str() const;

private:
  std::vector<ClockValue> Values;
};

} // namespace sampletrack

#endif // SAMPLETRACK_SUPPORT_VECTORCLOCK_H
