//===- sampletrack/support/VectorClock.h - Vector timestamps ---*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A classic vector clock: a map Threads -> N stored as a flat array, with
/// the pointwise-max join and pointwise-leq comparison used by Djit+ and
/// FastTrack (Algorithm 1 of the paper). The sampling detectors reuse it for
/// the freshness (U) clocks of Algorithms 3 and 4 and for access histories.
///
/// Two performance layers sit under the unchanged value semantics:
///
/// - The flat array is SoA-contiguous and every O(T) pass runs through the
///   simd::* clock kernels (AVX2/NEON with a runtime-dispatched scalar
///   fallback, proven bit-identical by the differential fuzz harness).
/// - Epoch-delta compression for mostly-idle threads: each clock carries a
///   high-water mark \ref activeLen — every component at or beyond it is
///   zero. Joins scan only the source's active prefix, comparisons only the
///   receiver's, so wide clocks whose trailing threads never acted stop
///   paying O(T) per event and pay O(active threads) instead.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_SUPPORT_VECTORCLOCK_H
#define SAMPLETRACK_SUPPORT_VECTORCLOCK_H

#include "sampletrack/support/Common.h"
#include "sampletrack/support/simd/ClockKernels.h"

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstring>
#include <string>
#include <vector>

namespace sampletrack {

/// A vector timestamp over a fixed set of threads.
///
/// All operations that touch every component are O(active) — bounded by
/// O(T) but typically much smaller on mostly-idle thread sets; \ref get,
/// \ref set and \ref bump are O(1). The clock is value-semantic and cheap
/// to move.
///
/// Invariant: Values[I] == 0 for every I >= Active. Active is conservative
/// (it may over-approximate the true nonzero prefix, never under-), which
/// is why it needs no maintenance on any zero-preserving operation.
class VectorClock {
public:
  VectorClock() = default;

  /// Creates the bottom clock (all components zero) over \p NumThreads
  /// threads.
  explicit VectorClock(size_t NumThreads) : Values(NumThreads, 0) {}

  /// Number of components.
  size_t size() const { return Values.size(); }

  /// The high-water mark: components at index >= activeLen() are all zero.
  size_t activeLen() const { return Active; }

  /// The contiguous component array (full \ref size length); the raw
  /// operand the simd kernels and OrderedList interop consume.
  const ClockValue *data() const { return Values.data(); }

  /// Grows the clock to \p NumThreads components, zero-filling new entries.
  /// Shrinking is not supported.
  void resize(size_t NumThreads) {
    assert(NumThreads >= Values.size() && "vector clocks never shrink");
    Values.resize(NumThreads, 0);
  }

  /// Returns the component of thread \p T.
  ClockValue get(ThreadId T) const {
    assert(T < Values.size() && "thread out of range");
    return Values[T];
  }

  /// Sets the component of thread \p T to \p V.
  void set(ThreadId T, ClockValue V) {
    assert(T < Values.size() && "thread out of range");
    Values[T] = V;
    if (T >= Active)
      Active = T + 1;
  }

  /// Increments the component of thread \p T by \p By.
  void bump(ThreadId T, ClockValue By = 1) {
    assert(T < Values.size() && "thread out of range");
    Values[T] += By;
    if (T >= Active)
      Active = T + 1;
  }

  /// Pointwise comparison: *this <= Other on every component (the \f$
  /// \sqsubseteq \f$ of Eq. 3). Scans only this clock's active prefix: our
  /// trailing zeros are <= anything.
  bool leq(const VectorClock &Other) const {
    assert(Values.size() == Other.Values.size() && "clock size mismatch");
    return simd::allLeq(Values.data(), Other.Values.data(), Active);
  }

  /// Like \ref leq but treats component \p OverrideTid of \p Other as having
  /// value \p OverrideVal. The sampling detectors use this to compare an
  /// access history against the *effective* clock C_t[t -> e_t] without
  /// materializing it (see DESIGN.md, "Same-thread soundness").
  bool leqWithOverride(const VectorClock &Other, ThreadId OverrideTid,
                       ClockValue OverrideVal) const {
    assert(Values.size() == Other.Values.size() && "clock size mismatch");
    const ClockValue *A = Values.data(), *B = Other.Values.data();
    if (OverrideTid >= Active) // Our component there is zero: always <=.
      return simd::allLeq(A, B, Active);
    return A[OverrideTid] <= OverrideVal &&
           simd::allLeq(A, B, OverrideTid) &&
           simd::allLeq(A + OverrideTid + 1, B + OverrideTid + 1,
                        Active - OverrideTid - 1);
  }

  /// Pointwise maximum with \p Other (the join of Eq. 4). Scans only the
  /// source's active prefix: its trailing zeros cannot raise anything.
  void joinWith(const VectorClock &Other) {
    assert(Values.size() == Other.Values.size() && "clock size mismatch");
    simd::joinMax(Values.data(), Other.Values.data(), Other.Active);
    Active = std::max(Active, Other.Active);
  }

  /// Joins with \p Other and returns how many components strictly increased.
  /// Algorithm 3 uses this count to maintain the freshness timestamp U_t(t)
  /// (one increment per changed entry, Eq. 9).
  unsigned joinCountingChanges(const VectorClock &Other) {
    assert(Values.size() == Other.Values.size() && "clock size mismatch");
    unsigned Changed =
        simd::joinMaxCount(Values.data(), Other.Values.data(), Other.Active);
    Active = std::max(Active, Other.Active);
    return Changed;
  }

  /// Copies \p Other into *this (an O(T) "send" as on Line 17 of
  /// Algorithm 1) — O(active) when sizes already match.
  void copyFrom(const VectorClock &Other) {
    if (Values.size() != Other.Values.size()) {
      Values = Other.Values;
      Active = Other.Active;
      return;
    }
    // Copy their active prefix; zero whatever of ours extends past it.
    std::copy_n(Other.Values.data(), Other.Active, Values.data());
    if (Active > Other.Active)
      std::fill(Values.begin() + Other.Active, Values.begin() + Active, 0);
    Active = Other.Active;
  }

  /// Overwrites *this with the flat array \p Src of \p N components,
  /// substituting \p OverrideVal at \p OverrideTid. The OrderedList
  /// materialization path (snapshotting C_t[t -> e_t] into a write access
  /// history) lands here so the high-water mark is rebuilt exactly.
  void assignWithOverride(const ClockValue *Src, size_t N,
                          ThreadId OverrideTid, ClockValue OverrideVal) {
    assert(N == Values.size() && "clock size mismatch");
    std::copy_n(Src, N, Values.data());
    if (OverrideTid < N)
      Values[OverrideTid] = OverrideVal;
    // Exact high-water mark: scan off the zero tail (cheap — it is
    // precisely the idle suffix this clock will then skip forever).
    size_t A = N;
    while (A > 0 && Values[A - 1] == 0)
      --A;
    Active = A;
  }

  /// Resets every component to zero.
  void clear() {
    std::fill(Values.begin(), Values.begin() + Active, 0);
    Active = 0;
  }

  /// Sum of all components; the paper bounds this by |S| for sampling
  /// timestamps (Section 4.1).
  ClockValue componentSum() const {
    return simd::sum(Values.data(), Active);
  }

  bool operator==(const VectorClock &Other) const {
    return Values == Other.Values;
  }
  bool operator!=(const VectorClock &Other) const {
    return Values != Other.Values;
  }

  /// Renders the clock as "<a,b,c>" for diagnostics and tests.
  std::string str() const;

private:
  std::vector<ClockValue> Values;
  /// High-water mark: Values[I] == 0 for I >= Active (conservative).
  size_t Active = 0;
};

} // namespace sampletrack

#endif // SAMPLETRACK_SUPPORT_VECTORCLOCK_H
