//===- sampletrack/support/Table.h - Result table printing -----*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small aligned-table printer used by the benchmark harnesses to emit the
/// rows/series each paper figure reports, plus CSV export for plotting.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_SUPPORT_TABLE_H
#define SAMPLETRACK_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace sampletrack {

/// Collects rows of string cells and prints them with aligned columns.
class Table {
public:
  explicit Table(std::vector<std::string> Header);

  /// Appends a row; pads or truncates to the header width.
  void addRow(std::vector<std::string> Cells);

  /// Formats a double with \p Precision digits after the point.
  static std::string fmt(double V, int Precision = 2);

  /// Prints the table with aligned columns to stdout.
  void print() const;

  /// Writes the table as CSV to \p Path. Returns false on I/O failure.
  bool writeCsv(const std::string &Path) const;

  size_t numRows() const { return Rows.size(); }

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

/// Summary statistics over a sample of doubles (latencies, ratios).
struct Summary {
  double Mean = 0;
  double Min = 0;
  double Max = 0;
  double P50 = 0;
  double P95 = 0;

  /// Computes all fields from \p Samples (empty input yields zeros).
  static Summary of(std::vector<double> Samples);
};

} // namespace sampletrack

#endif // SAMPLETRACK_SUPPORT_TABLE_H
