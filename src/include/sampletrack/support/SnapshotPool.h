//===- sampletrack/support/SnapshotPool.h - Pooled CoW snapshots -*- C++ -*-==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A free-list pool of refcounted snapshot buffers (OrderedList, TreeClock,
/// VectorClock) backing the zero-allocation hot path of the copy-on-write
/// publish scheme (Algorithm 4's shared lists, and the analogous tree-clock
/// and shadow-history buffers).
///
/// The cycle: a thread publishes its clock as an immutable shared snapshot
/// (a cheap \ref SnapshotPool::Ref copy), keeps mutating only after a
/// CoW break, and the break's replacement buffer comes from the pool's
/// free list instead of the allocator. When the last reference to a buffer
/// drops — typically when a sync object's snapshot is overwritten by a
/// newer release — the buffer (vector capacity and all) returns to the
/// free list, so a steady-state run recycles a small working set of
/// buffers instead of allocating one per deep copy.
///
/// Refs also expose \ref Ref::unique, which is what makes the copy *lazy*:
/// an owner whose publication has since been dropped by every reader can
/// simply resume mutating in place — copy only when contended.
///
/// Thread-safety: acquire/release are safe from any thread (the online
/// Runtime drops snapshot references across threads); the buffers
/// themselves follow the usual CoW discipline — immutable while shared,
/// mutated only by their unique owner.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_SUPPORT_SNAPSHOTPOOL_H
#define SAMPLETRACK_SUPPORT_SNAPSHOTPOOL_H

#include <atomic>
#include <cassert>
#include <cstdint>
#include <mutex>
#include <utility>

namespace sampletrack {

/// Free-list pool of intrusively refcounted \p T buffers.
///
/// \p T must be default-constructible; recycled buffers keep their previous
/// contents (that is the point — their heap capacity is the asset), so the
/// caller re-initializes or copy-assigns over them after \ref acquire.
template <typename T> class SnapshotPool {
  struct Core;
  struct Node {
    T Value;
    /// Intrusive reference count: no control-block allocation per snapshot,
    /// unlike std::shared_ptr with a custom deleter.
    std::atomic<uint64_t> Refs{0};
    Core *C = nullptr;
    Node *NextFree = nullptr;
  };

  struct Core {
    std::mutex M;
    Node *FreeHead = nullptr;
    size_t FreeCount = 0;
    bool Dying = false;
    bool Enabled = true;
    uint64_t Hits = 0;
    uint64_t Misses = 0;
    /// One reference per live Node plus one for the pool object itself;
    /// whoever drops the last one frees the Core. This lets outstanding
    /// Refs outlive the pool (they fall back to plain deletion).
    std::atomic<uint64_t> CoreRefs{1};
  };

  static void dropCore(Core *C) {
    if (C->CoreRefs.fetch_sub(1, std::memory_order_acq_rel) == 1)
      delete C;
  }

  static void releaseNode(Node *N) {
    if (N->Refs.fetch_sub(1, std::memory_order_acq_rel) != 1)
      return;
    Core *C = N->C;
    bool Recycled = false;
    {
      std::lock_guard<std::mutex> G(C->M);
      if (!C->Dying && C->Enabled) {
        N->NextFree = C->FreeHead;
        C->FreeHead = N;
        ++C->FreeCount;
        Recycled = true;
      }
    }
    if (!Recycled) {
      delete N;
      dropCore(C);
    }
  }

public:
  /// A shared reference to a pooled buffer. Pointer-sized; copying bumps
  /// the intrusive refcount. When the last Ref drops, the buffer returns
  /// to its pool's free list (or is deleted if the pool is gone).
  class Ref {
  public:
    Ref() = default;
    Ref(const Ref &O) : N(O.N) {
      if (N)
        N->Refs.fetch_add(1, std::memory_order_relaxed);
    }
    Ref(Ref &&O) noexcept : N(O.N) { O.N = nullptr; }
    Ref &operator=(const Ref &O) {
      if (O.N)
        O.N->Refs.fetch_add(1, std::memory_order_relaxed);
      Node *Old = N;
      N = O.N;
      if (Old)
        releaseNode(Old);
      return *this;
    }
    Ref &operator=(Ref &&O) noexcept {
      if (this != &O) {
        Node *Old = N;
        N = O.N;
        O.N = nullptr;
        if (Old)
          releaseNode(Old);
      }
      return *this;
    }
    ~Ref() { reset(); }

    void reset() {
      if (N) {
        releaseNode(N);
        N = nullptr;
      }
    }

    explicit operator bool() const { return N != nullptr; }
    T *get() const { return N ? &N->Value : nullptr; }
    T &operator*() const { return N->Value; }
    T *operator->() const { return &N->Value; }

    /// True iff this is the only reference — the owner may mutate in place
    /// (the lazy-CoW check: no reader holds the published snapshot).
    bool unique() const {
      return N && N->Refs.load(std::memory_order_acquire) == 1;
    }

    /// Identity comparison (same buffer, not same contents); tests use it
    /// to check snapshot sharing and recycling.
    bool operator==(const Ref &O) const { return N == O.N; }
    bool operator!=(const Ref &O) const { return N != O.N; }

  private:
    friend class SnapshotPool;
    explicit Ref(Node *N) : N(N) {}
    Node *N = nullptr;
  };

  /// A read-only reference to a published snapshot: same refcounting as
  /// \ref Ref, const-only access. Sync objects hold their snapshots
  /// through this, restoring the compile-time "immutable while shared"
  /// guarantee the shared_ptr<const T> representation used to give.
  class ConstRef {
  public:
    ConstRef() = default;
    ConstRef(Ref R) : R(std::move(R)) {}
    ConstRef &operator=(Ref O) {
      R = std::move(O);
      return *this;
    }

    void reset() { R.reset(); }
    explicit operator bool() const { return static_cast<bool>(R); }
    const T *get() const { return R.get(); }
    const T &operator*() const { return *R; }
    const T *operator->() const { return R.get(); }

    /// Identity comparison against the owner's mutable ref (tests check
    /// snapshot sharing).
    bool operator==(const Ref &O) const { return R == O; }

  private:
    Ref R;
  };

  SnapshotPool() : C(new Core) {}
  SnapshotPool(const SnapshotPool &) = delete;
  SnapshotPool &operator=(const SnapshotPool &) = delete;

  ~SnapshotPool() {
    Node *Head;
    {
      std::lock_guard<std::mutex> G(C->M);
      C->Dying = true;
      Head = C->FreeHead;
      C->FreeHead = nullptr;
      C->FreeCount = 0;
    }
    while (Head) {
      Node *N = Head;
      Head = N->NextFree;
      delete N;
      dropCore(C);
    }
    dropCore(C); // The pool's own Core reference.
  }

  /// Returns a buffer with refcount 1. Served from the free list when
  /// possible (\p Reused set true — a PoolHit; the contents are stale and
  /// must be overwritten), else freshly allocated (\p Reused false).
  Ref acquire(bool *Reused = nullptr) {
    Node *N = nullptr;
    {
      std::lock_guard<std::mutex> G(C->M);
      if (C->Enabled && C->FreeHead) {
        N = C->FreeHead;
        C->FreeHead = N->NextFree;
        --C->FreeCount;
        ++C->Hits;
      } else {
        ++C->Misses;
      }
    }
    if (Reused)
      *Reused = N != nullptr;
    if (!N) {
      C->CoreRefs.fetch_add(1, std::memory_order_relaxed);
      N = new Node;
      N->C = C;
    }
    N->NextFree = nullptr;
    N->Refs.store(1, std::memory_order_relaxed);
    return Ref(N);
  }

  /// Disables (or re-enables) recycling: disabled, every acquire allocates
  /// and every final release deletes — the unpooled reference behavior the
  /// differential harness compares against. Disabling drains the free list.
  void setEnabled(bool Enabled) {
    Node *Head = nullptr;
    {
      std::lock_guard<std::mutex> G(C->M);
      C->Enabled = Enabled;
      if (!Enabled) {
        Head = C->FreeHead;
        C->FreeHead = nullptr;
        C->FreeCount = 0;
      }
    }
    while (Head) {
      Node *N = Head;
      Head = N->NextFree;
      delete N;
      dropCore(C);
    }
  }

  bool enabled() const {
    std::lock_guard<std::mutex> G(C->M);
    return C->Enabled;
  }

  /// Buffers currently parked on the free list.
  size_t freeCount() const {
    std::lock_guard<std::mutex> G(C->M);
    return C->FreeCount;
  }

  /// Acquires served by the free list / by the allocator.
  uint64_t hits() const {
    std::lock_guard<std::mutex> G(C->M);
    return C->Hits;
  }
  uint64_t misses() const {
    std::lock_guard<std::mutex> G(C->M);
    return C->Misses;
  }

private:
  Core *C;
};

} // namespace sampletrack

#endif // SAMPLETRACK_SUPPORT_SNAPSHOTPOOL_H
