//===- sampletrack/support/FaultInjectionFs.h - Crash testing --*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An entirely in-memory \ref FileSystem that models exactly the durability
/// contract the real one promises — and nothing more. Every file carries
/// two byte strings: what the process sees (\c Bytes) and what would
/// survive a power cut (\c Durable, advanced only by \c sync()).
/// Namespace changes — creations, renames, removals — become durable only
/// when \ref syncDirectory runs on the parent directory, mirroring POSIX.
///
/// Fault schedule: operations are numbered from 1 (reads, writes, syncs,
/// renames — every call that could fail on a real kernel); \c FailAtOp
/// makes that operation fail, and with \c StayDown (the default) every
/// later one too, modeling a process whose disk just died under it. A
/// failing write can deposit a *torn prefix* (\c TornWriteBytes) first,
/// and \c MaxWriteBytes caps every write() so callers' short-write loops
/// actually loop.
///
/// \ref powerCut then simulates the machine dying: the namespace reverts
/// to the last directory syncs, and every file's bytes revert to its last
/// fsync — optionally keeping the first \p KeepUnsyncedBytes of the
/// unsynced suffix, because a real power cut may persist any prefix of
/// in-flight appends.
///
/// The crash-point harness in CrashRecoveryTest drives an ingest sequence
/// once per failpoint, power-cuts, reopens, and asserts the store holds
/// exactly a clean prefix of the acknowledged runs.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_SUPPORT_FAULTINJECTIONFS_H
#define SAMPLETRACK_SUPPORT_FAULTINJECTIONFS_H

#include "sampletrack/support/FileSystem.h"

#include <map>
#include <mutex>
#include <set>

namespace sampletrack {
namespace support {

class FaultInjectionFs final : public FileSystem {
public:
  struct FaultConfig {
    /// 1-based index of the operation that fails; 0 = never.
    uint64_t FailAtOp = 0;
    /// After the failing op, every further op fails too (the disk is
    /// gone). false = a one-shot transient error.
    bool StayDown = true;
    /// When the failing op is a write(), this many bytes still reach the
    /// file before the error — a torn final write.
    size_t TornWriteBytes = 0;
    /// Nonzero caps every write() at this many bytes (short writes).
    /// Applies to all writes, not just the failing one.
    size_t MaxWriteBytes = 0;
  };

  // -- FileSystem --------------------------------------------------------
  bool readFile(const std::string &Path, std::string &Out,
                std::string *Error = nullptr) override;
  std::unique_ptr<WritableFile> openWrite(const std::string &Path,
                                          bool Append,
                                          std::string *Error = nullptr) override;
  bool exists(const std::string &Path) override;
  bool isDirectory(const std::string &Path) override;
  bool mkdir(const std::string &Path) override;
  bool rename(const std::string &From, const std::string &To) override;
  bool remove(const std::string &Path) override;
  bool removeDir(const std::string &Path) override;
  bool truncate(const std::string &Path, uint64_t Size) override;
  bool syncDirectory(const std::string &Path) override;
  bool list(const std::string &Path, std::vector<std::string> &Names) override;
  bool fileSize(const std::string &Path, uint64_t &Size) override;

  // -- Fault schedule ----------------------------------------------------
  void setFaults(const FaultConfig &C);
  /// Clears the schedule and revives a StayDown filesystem (the "new
  /// process after the crash" moment).
  void clearFaults();
  /// Operations counted so far (so a clean run measures the failpoint
  /// space: every N in [1, opCount()] is a schedule).
  uint64_t opCount() const;
  /// True once the configured failpoint has fired.
  bool faultFired() const;

  /// Simulates a power cut: the namespace reverts to what directory syncs
  /// made durable, every file's content to its last fsync — plus at most
  /// \p KeepUnsyncedBytes of the unsynced appended suffix (a real crash
  /// may persist any prefix of in-flight writes).
  void powerCut(size_t KeepUnsyncedBytes = 0);

  /// Every live file path, sorted (introspection for tests).
  std::vector<std::string> allFiles() const;

private:
  struct Inode {
    std::string Bytes;   ///< What the process reads back.
    std::string Durable; ///< What survives a power cut (last sync()).
  };
  class Handle;

  /// Counts one fallible operation; true if it must fail.
  bool faultOp();
  bool isDirLocked(const std::string &Path) const;

  mutable std::mutex M;
  std::map<std::string, std::shared_ptr<Inode>> Files;
  std::map<std::string, std::shared_ptr<Inode>> DurableFiles;
  std::set<std::string> Dirs;
  std::set<std::string> DurableDirs;

  FaultConfig Faults;
  uint64_t Ops = 0;
  bool Fired = false;
};

} // namespace support
} // namespace sampletrack

#endif // SAMPLETRACK_SUPPORT_FAULTINJECTIONFS_H
