//===- sampletrack/support/TreeClock.h - Tree clock baseline ---*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tree clock (Mathur, Pavlogiannis, Tunc, Viswanathan, ASPLOS 2022): a
/// vector timestamp organized as a tree whose structure records *where* each
/// component was learned from, enabling joins that only traverse updated
/// subtrees. The paper under reproduction argues (Section 7) that tree
/// clocks, while optimal for the full HB relation, do not exploit the
/// redundancy introduced by the *sampling* timestamp as well as the ordered
/// list does; bench_ablation_treeclock quantifies that claim.
///
/// This implementation supports the operations the race detectors need:
/// O(1) root reads/increments, pruned join with work counting, and flat deep
/// copies (sharing/copy-on-write is handled by the detector, as for
/// OrderedList).
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_SUPPORT_TREECLOCK_H
#define SAMPLETRACK_SUPPORT_TREECLOCK_H

#include "sampletrack/support/Common.h"
#include "sampletrack/support/VectorClock.h"

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

namespace sampletrack {

/// A tree-structured vector timestamp rooted at its owner thread.
class TreeClock {
public:
  TreeClock() = default;

  /// Creates the bottom timestamp over \p NumThreads threads, rooted at
  /// \p Root. Only the root is initially part of the tree.
  TreeClock(size_t NumThreads, ThreadId Root) { reset(NumThreads, Root); }

  /// Reinitializes to the bottom timestamp over \p NumThreads threads,
  /// rooted at \p Root (recycled pool buffers keep their node storage).
  void reset(size_t NumThreads, ThreadId NewRoot) {
    assert(NewRoot < NumThreads && "root out of range");
    Nodes.assign(NumThreads, Node());
    Root = NewRoot;
    Nodes[Root].Attached = true;
  }

  /// Number of components.
  size_t size() const { return Nodes.size(); }

  /// Owner thread (the tree root).
  ThreadId root() const { return Root; }

  /// Component of thread \p T. O(1).
  ClockValue get(ThreadId T) const {
    assert(T < Nodes.size() && "thread out of range");
    return Nodes[T].Clk;
  }

  /// Sets the root component to \p V (monotone: \p V must not decrease it).
  /// O(1); used when a sampling detector publishes its local epoch.
  void setRootTime(ClockValue V) {
    assert(Root != NoThread && "empty clock");
    assert(V >= Nodes[Root].Clk && "root time must be monotone");
    Nodes[Root].Clk = V;
  }

  /// Increments the root component. O(1).
  void incrementRoot(ClockValue By = 1) {
    assert(Root != NoThread && "empty clock");
    Nodes[Root].Clk += By;
  }

  /// Joins \p Other into this clock using the pruned subtree traversal.
  /// Returns the number of tree nodes *examined* (updated nodes plus
  /// boundary children inspected before pruning); this is the work metric
  /// the ablation bench reports. The fast path (root of \p Other already
  /// known) examines zero nodes.
  ///
  /// Precondition: \p Other is rooted at a different thread, or is this very
  /// clock (in which case the join is a no-op).
  unsigned joinFrom(const TreeClock &Other);

  /// Flat O(T) copy (deep copy in the copy-on-write scheme).
  void deepCopyFrom(const TreeClock &Other) {
    Nodes = Other.Nodes;
    Root = Other.Root;
  }

  /// Materializes into a plain vector clock (tests and race checks).
  void toVectorClock(VectorClock &Out) const {
    assert(Out.size() == Nodes.size() && "clock size mismatch");
    for (size_t I = 0, E = Nodes.size(); I != E; ++I)
      Out.set(static_cast<ThreadId>(I), Nodes[I].Clk);
  }

  /// Structural invariant check used by tests: parent/child/sibling links
  /// are consistent, attachment times do not exceed parent times, and child
  /// lists are in nonincreasing attachment-time order.
  bool checkStructure() const;

  /// Renders as "(root t0:5 [t2:3@4 ...])" for diagnostics.
  std::string str() const;

private:
  struct Node {
    /// Component value (the thread's local time as known here).
    ClockValue Clk = 0;
    /// Attachment time: the parent's component value when this subtree was
    /// attached. Meaningless for the root.
    ClockValue Aclk = 0;
    ThreadId Parent = NoThread;
    ThreadId HeadChild = NoThread;
    ThreadId PrevSib = NoThread;
    ThreadId NextSib = NoThread;
    /// Whether the node is part of the tree (roots are always attached).
    bool Attached = false;
  };

  void detach(ThreadId T);
  void attachAsHeadChild(ThreadId Parent, ThreadId Child);

  std::vector<Node> Nodes;
  ThreadId Root = NoThread;
};

} // namespace sampletrack

#endif // SAMPLETRACK_SUPPORT_TREECLOCK_H
