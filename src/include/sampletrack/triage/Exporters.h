//===- sampletrack/triage/Exporters.h - Warehouse renderings ---*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Human- and machine-readable renderings of the race warehouse: a ranked
/// top-N text report for terminals, a JSON document for dashboards, and a
/// SARIF 2.1.0 log so CI systems and code-scanning UIs ingest the races
/// like any other static-analysis result. The race signature travels in
/// SARIF's partialFingerprints ("raceSignature/v1"), which is exactly the
/// mechanism SARIF consumers use to dedup findings across runs — the same
/// contract the warehouse enforces internally.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_TRIAGE_EXPORTERS_H
#define SAMPLETRACK_TRIAGE_EXPORTERS_H

#include "sampletrack/triage/TriageStore.h"

#include <string>

namespace sampletrack {
namespace triage {

/// Ranked text report: header, one line per record (hits, signature,
/// status, exemplar), top \p TopN by the store's ranking (0 = all).
std::string toText(const TriageStore &Store, size_t TopN = 10);

/// JSON document: run counter, totals, and every record (ranked).
std::string toJson(const TriageStore &Store);

/// SARIF 2.1.0 log with one result per unsuppressed record. Exemplar
/// locations are logical (thread/variable ids — the event model has no
/// source coordinates); the signature rides in partialFingerprints.
/// \p ToolVersion names the producing build in the SARIF driver block.
std::string toSarif(const TriageStore &Store,
                    const std::string &ToolVersion = "1.0.0");

} // namespace triage
} // namespace sampletrack

#endif // SAMPLETRACK_TRIAGE_EXPORTERS_H
