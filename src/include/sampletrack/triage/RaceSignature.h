//===- sampletrack/triage/RaceSignature.h - Stable race identity -*- C++ -*-=//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The identity layer of the race warehouse: \ref RaceReport (one declared
/// race, moved here from Detector.h so the triage layer sits below the
/// detectors) and \ref RaceSignature, a stable 64-bit fingerprint that maps
/// every re-declaration of the same logical race to one key.
///
/// Stability contract (version \ref RaceSignature::Version):
///
///  - The signature is computed from the racy location, the operation kind
///    of the access the race was declared at, and the *role* of the
///    declaring thread (main thread vs worker) — never from the stream
///    position, the raw thread id, or any engine state.
///  - It is therefore invariant under SessionConfig::NumWorkers,
///    PoolingEnabled and PerEventDispatch (those axes are bit-identical by
///    construction), under engine choice (every engine declares races with
///    the event's own thread/var/kind), and under worker-thread renumbering
///    in symmetric workloads — the duplicate flood a fleet produces differs
///    only in thread ids and positions, which the signature ignores.
///  - Golden values are pinned by tests/TriageTest.cpp; changing the mixing
///    function is a format break and must bump Version (persisted stores
///    refuse to merge across versions).
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_TRIAGE_RACESIGNATURE_H
#define SAMPLETRACK_TRIAGE_RACESIGNATURE_H

#include "sampletrack/trace/Event.h"

#include <optional>
#include <string>

namespace sampletrack {

/// One declared race: the event (by stream position) at which the race was
/// detected, plus its location and thread. Detectors keep the *first*
/// report per signature as the exemplar; positions of re-declarations are
/// not retained (the warehouse counts them instead).
struct RaceReport {
  uint64_t EventIndex;
  ThreadId Tid;
  VarId Var;
  OpKind Kind;

  bool operator==(const RaceReport &O) const {
    return EventIndex == O.EventIndex && Tid == O.Tid && Var == O.Var &&
           Kind == O.Kind;
  }
};

namespace triage {

/// The thread-role normalization of the signature: production fleets spawn
/// symmetric worker pools, so two workers tripping the same racy pair must
/// dedup to one signature while a main-vs-worker race stays distinct.
enum class ThreadRole : uint8_t { Main = 0, Worker = 1 };

inline ThreadRole threadRole(ThreadId T) {
  return T == 0 ? ThreadRole::Main : ThreadRole::Worker;
}

/// A stable 64-bit race fingerprint (see the file comment for the
/// stability contract).
struct RaceSignature {
  /// Format version; persisted alongside every store.
  static constexpr uint32_t Version = 1;

  uint64_t Value = 0;

  /// Fingerprint of a declared race: mixes (Var, Kind, threadRole(Tid)).
  static RaceSignature of(VarId Var, OpKind Kind, ThreadId Tid);
  static RaceSignature of(const RaceReport &R) {
    return of(R.Var, R.Kind, R.Tid);
  }

  /// 16-digit lowercase hex, the form used by suppression files and SARIF
  /// partialFingerprints.
  std::string hex() const;

  /// Parses the \ref hex form (with or without a "0x" prefix). Returns
  /// nullopt on anything that is not exactly a 1-16 digit hex number.
  static std::optional<RaceSignature> parseHex(const std::string &S);

  bool operator==(const RaceSignature &O) const { return Value == O.Value; }
};

} // namespace triage
} // namespace sampletrack

#endif // SAMPLETRACK_TRIAGE_RACESIGNATURE_H
