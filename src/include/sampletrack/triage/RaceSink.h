//===- sampletrack/triage/RaceSink.h - Dedup table at ingest ---*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ingest side of the race warehouse: a bounded, open-addressed dedup
/// table keyed by \ref RaceSignature. Every declareRace lands here instead
/// of a grow-only vector — the sink keeps the first report per signature as
/// the exemplar and counts the rest, so a week-long online run over a
/// million duplicate declarations holds O(distinct races) memory, not
/// O(declarations).
///
/// Hot-path contract: inserting an already-known signature is O(1) probe +
/// counter bump and never allocates; inserting a *new* signature allocates
/// only through amortized geometric growth (and never again once the
/// signature universe has been seen — the "warm sink" state the
/// no-allocation test pins down). The table is single-writer, matching the
/// detector lane-locality contract; concurrent producers (the online
/// runtime) shard one sink per thread and \ref absorb them at the end.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_TRIAGE_RACESINK_H
#define SAMPLETRACK_TRIAGE_RACESINK_H

#include "sampletrack/triage/RaceSignature.h"

#include <cstdint>
#include <vector>

namespace sampletrack {
namespace triage {

/// One deduplicated race: its signature, how many times it was declared,
/// and the first report that declared it.
struct TriageEntry {
  uint64_t Signature = 0;
  uint64_t Hits = 0;
  RaceReport Exemplar{0, 0, 0, OpKind::Read};

  bool operator==(const TriageEntry &O) const {
    return Signature == O.Signature && Hits == O.Hits &&
           Exemplar == O.Exemplar;
  }
};

/// A deduplicated view of one run (or one merged set of runs): entries in
/// first-seen order plus the overflow accounting that distinguishes "the
/// sink deduplicated" from "the sink dropped signatures".
struct TriageSummary {
  std::vector<TriageEntry> Entries;
  /// Every declareRace, deduplicated or not.
  uint64_t RacesDeclared = 0;
  /// Declarations whose signature could not be stored because the sink was
  /// at capacity (each is a *distinct-signature* loss; duplicate hits on
  /// stored signatures are never dropped).
  uint64_t DroppedDeclarations = 0;
  /// True iff any declaration was dropped.
  bool Capped = false;

  size_t distinct() const { return Entries.size(); }

  bool operator==(const TriageSummary &O) const = default;
};

/// The bounded dedup table. See the file comment for the hot-path and
/// concurrency contracts.
class RaceSink {
public:
  /// Default distinct-signature capacity, matching the race-retention cap
  /// the detectors historically enforced on stored reports.
  static constexpr size_t DefaultCapacity = 1 << 20;

  explicit RaceSink(size_t Capacity = DefaultCapacity);

  /// Rebounds the distinct-signature capacity. Must be called before the
  /// first insert (the table is sized from it lazily).
  void setCapacity(size_t Capacity);
  size_t capacity() const { return Cap; }

  /// Records one race declaration. Returns true iff the signature is new
  /// (an exemplar was stored). Known signatures never allocate; new ones
  /// allocate only via amortized table growth up to the capacity.
  bool insert(const RaceReport &R) {
    return insert(RaceSignature::of(R).Value, R);
  }
  /// Same, with the signature precomputed by the caller.
  bool insert(uint64_t Sig, const RaceReport &R) { return add(Sig, R, 1); }

  /// Bulk variant: one entry carrying \p HitCount declarations (the merge
  /// paths use it so merging stays linear in distinct signatures, not in
  /// declarations). Returns true iff the signature is new.
  bool add(uint64_t Sig, const RaceReport &Exemplar, uint64_t HitCount);

  /// Folds another sink's deduplicated content into this one (hit counts
  /// accumulate, first exemplar wins, capacity still applies). The merge
  /// half of the per-thread sharding scheme.
  void absorb(const RaceSink &O);

  // -- Results ----------------------------------------------------------
  size_t distinct() const { return Exemplars.size(); }
  /// Every insert(), deduplicated or dropped.
  uint64_t totalDeclared() const { return Total; }
  /// True iff a distinct signature was dropped because the table was full.
  bool capped() const { return Dropped != 0; }
  uint64_t droppedDeclarations() const { return Dropped; }

  /// First report per signature, in first-seen order — the compatibility
  /// view behind Detector::races().
  const std::vector<RaceReport> &exemplars() const { return Exemplars; }
  /// Hit count of exemplars()[I].
  uint64_t hitsAt(size_t I) const { return Hits[I]; }
  /// Hit count for a signature (0 if absent).
  uint64_t hitsFor(uint64_t Sig) const;

  /// Moves the exemplar list out (the warehouse hand-off; the sink's
  /// per-signature counts remain valid). The sink must not be inserted
  /// into afterwards.
  std::vector<RaceReport> takeExemplars() { return std::move(Exemplars); }

  /// Snapshot of the deduplicated content, in first-seen order.
  TriageSummary summary() const;

  void clear();

private:
  /// Open-addressed slot: signature plus index into Exemplars/Hits.
  /// EmptyIdx marks a free slot (signature values are unrestricted).
  struct Slot {
    uint64_t Sig = 0;
    uint32_t Idx = EmptyIdx;
  };
  static constexpr uint32_t EmptyIdx = ~uint32_t(0);

  /// Finds the slot for \p Sig (present or the insertion point). The table
  /// is never full: growth keeps load factor <= 1/2 until the capacity
  /// bound, and at the bound Slots.size() >= 2 * Cap still holds.
  size_t probe(uint64_t Sig) const;
  void growTable();

  size_t Cap;
  uint64_t Total = 0;
  uint64_t Dropped = 0;
  std::vector<Slot> Slots;
  std::vector<RaceReport> Exemplars;
  std::vector<uint64_t> Hits;
};

/// Merges per-lane summaries in order (the session's deterministic
/// cross-lane dedup): hits accumulate per signature, the first lane's
/// exemplar wins, entries keep first-seen order. One scratch sink probes
/// every part, so the merge is linear in total distinct signatures.
TriageSummary mergeSummaries(const std::vector<TriageSummary> &Parts);

/// Merges the per-shard summaries of ONE sharded lane back into the exact
/// summary the unsharded run would have produced. Each shard ran with the
/// full lane capacity \p Capacity and advanced its stream position over
/// *every* event (owned or not), so exemplar positions are globally
/// comparable: sorting all shard entries by exemplar position recovers
/// sequential first-seen order, and re-capping at \p Capacity drops exactly
/// the signatures the sequential sink would have dropped (a signature with
/// first-seen rank <= Capacity has at most Capacity-1 in-shard
/// predecessors, so no shard sink can have dropped it). Hits of re-capped
/// signatures move to DroppedDeclarations, exactly as sequential counts
/// every declaration of a never-stored signature as dropped.
TriageSummary mergeShardSummaries(const std::vector<TriageSummary> &Shards,
                                  size_t Capacity);

} // namespace triage
} // namespace sampletrack

#endif // SAMPLETRACK_TRIAGE_RACESINK_H
