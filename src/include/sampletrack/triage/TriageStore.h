//===- sampletrack/triage/TriageStore.h - Cross-run persistence -*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The warehouse proper: a persistent, mergeable store of deduplicated
/// races across runs. The fleet workflow is load → mergeRun → save:
///
/// \code
///   triage::TriageStore Store;
///   Store.loadIfExists("triage.store");
///   Store.loadSuppressionFile("suppressions.txt");      // optional
///   triage::TriageStore::MergeResult M = Store.mergeRun(Result.Triage);
///   // M.NewRaces is what a fleet operator actually reads: races this
///   // deployment introduced, net of everything known or suppressed.
///   Store.save("triage.store");
/// \endcode
///
/// Classification across runs: a signature seen for the first time is New;
/// seen in this run and in the immediately preceding one, Known; seen in
/// this run after being absent for at least one whole run, Regressed (it
/// had gone quiet — a "fixed" race that came back). Suppressed signatures
/// are counted but never surface as New or Regressed.
///
/// The on-disk format is a compact little-endian binary ("STTS" magic,
/// format version 2): the header carries an FNV-1a checksum of the whole
/// payload, and load() rejects — with a specific diagnostic, leaving the
/// in-memory store untouched — bad magic, other format versions, a
/// mismatched RaceSignature::Version, truncation, bit flips, trailing
/// garbage, and records violating the merge invariants (duplicate
/// signatures, sighting runs out of range). A JSON rendering for
/// dashboards and the SARIF 2.1.0 export live in Exporters.h.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_TRIAGE_TRIAGESTORE_H
#define SAMPLETRACK_TRIAGE_TRIAGESTORE_H

#include "sampletrack/support/FileSystem.h"
#include "sampletrack/triage/RaceSink.h"

#include <string>
#include <unordered_map>

namespace sampletrack {
namespace triage {

/// Cross-run status of a signature after a merge.
enum class RaceStatus : uint8_t { New, Known, Regressed, Suppressed };

const char *raceStatusName(RaceStatus S);

/// Persistent, mergeable race warehouse. Not thread-safe (the merge happens
/// once per run, off the hot path).
class TriageStore {
public:
  struct Record {
    uint64_t Signature = 0;
    /// Declarations accumulated over every merged run.
    uint64_t Hits = 0;
    /// Number of runs in which the signature appeared.
    uint32_t Runs = 0;
    /// 1-based run indices (run 0 means "never seen", which no persisted
    /// record has).
    uint32_t FirstSeenRun = 0;
    uint32_t LastSeenRun = 0;
    bool Suppressed = false;
    /// Classification from the most recent merge that saw this signature
    /// (New/Known/Regressed/Suppressed) — what the ranked report prints.
    RaceStatus LastStatus = RaceStatus::New;
    /// First report ever seen for this signature.
    RaceReport Exemplar{0, 0, 0, OpKind::Read};

    bool operator==(const Record &O) const = default;
  };

  /// Outcome of merging one run, the per-run report the workflow prints.
  struct MergeResult {
    uint64_t NewSignatures = 0;
    uint64_t KnownSignatures = 0;
    uint64_t RegressedSignatures = 0;
    uint64_t SuppressedSignatures = 0;
    /// The entries classified New, in the run's first-seen order — what a
    /// regression gate inspects ("this deployment introduced N races").
    std::vector<TriageEntry> NewRaces;
    /// The entries classified Regressed, same order.
    std::vector<TriageEntry> RegressedRaces;
  };

  /// Runs merged so far (including loaded history).
  uint32_t runCount() const { return RunCounter; }
  size_t size() const { return Records.size(); }
  bool empty() const { return Records.empty(); }

  /// All records, in first-ever-seen order (stable across save/load).
  const std::vector<Record> &records() const { return Records; }
  /// Lookup by signature; nullptr if absent.
  const Record *find(uint64_t Sig) const;

  /// Classifies and folds one run's deduplicated summary into the store,
  /// advancing the run counter.
  MergeResult mergeRun(const TriageSummary &S);

  /// Marks \p Sig suppressed (creating a hit-less record if unknown, so a
  /// suppression can predate the first occurrence).
  void suppress(uint64_t Sig);
  bool isSuppressed(uint64_t Sig) const;

  /// Loads a suppression list: one hex signature per line, '#' comments and
  /// blank lines ignored. Returns false (filling \p Error) on I/O failure
  /// or an unparsable line.
  bool loadSuppressionFile(const std::string &Path,
                           std::string *Error = nullptr);

  /// Records ranked for reporting: hits descending, then signature
  /// ascending (fully deterministic). Suppressed records sort last.
  /// \p TopN bounds the result (0 = all).
  std::vector<const Record *> ranked(size_t TopN = 0) const;

  // -- Persistence ------------------------------------------------------
  // All I/O goes through a support::FileSystem so the crash tests can
  // inject failures; the path-only overloads use the real one. The
  // single-file format stays the *base segment* format of the
  // log-structured TriageLog (and its read-only migration source).

  /// Serializes the store into the complete single-file/"segment" byte
  /// image (header + checksum + payload).
  std::string serialize() const;
  /// Parses a byte image produced by \ref serialize. On any defect the
  /// store is left untouched and \p Error gets a diagnostic ("" context —
  /// callers prepend the path).
  bool deserialize(const std::string &Bytes, std::string *Error = nullptr);

  /// Crash-safe: writes a temp file next to \p Path and renames it into
  /// place, so a crash mid-save leaves the previous store intact.
  bool save(const std::string &Path, std::string *Error = nullptr) const;
  bool save(support::FileSystem &Fs, const std::string &Path,
            std::string *Error = nullptr) const;
  /// Replaces the store's content with the file's. Fails on missing file.
  bool load(const std::string &Path, std::string *Error = nullptr);
  bool load(support::FileSystem &Fs, const std::string &Path,
            std::string *Error = nullptr);
  /// Like \ref load, but a missing file is a fresh (empty) store, not an
  /// error. Returns false only on a corrupt or version-mismatched file.
  bool loadIfExists(const std::string &Path, std::string *Error = nullptr);
  bool loadIfExists(support::FileSystem &Fs, const std::string &Path,
                    std::string *Error = nullptr);

  bool operator==(const TriageStore &O) const {
    return RunCounter == O.RunCounter && Records == O.Records;
  }

private:
  Record &findOrCreate(uint64_t Sig);

  uint32_t RunCounter = 0;
  std::vector<Record> Records;
  /// Signature -> index into Records (merges stay linear on big stores).
  std::unordered_map<uint64_t, size_t> Index;
};

} // namespace triage
} // namespace sampletrack

#endif // SAMPLETRACK_TRIAGE_TRIAGESTORE_H
