//===- sampletrack/triage/TriageLog.h - Log-structured store ---*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The log-structured backend of the race warehouse: a store *directory*
/// holding a sealed base segment plus an append-only run journal, so
/// ingesting one run costs O(run), not O(store) — the difference between
/// "every CI shard of every service uploads here" and rewriting a
/// million-signature file per upload.
///
/// Directory layout (`<dir>/`):
///
///   CURRENT            the live generation number ("3\n"), swapped
///                      atomically via temp + rename + directory fsync
///   base-<gen>.seg     a complete TriageStore image (the single-file
///                      "STTS" format v2, unchanged — old stores migrate
///                      by becoming the first base segment)
///   journal-<gen>.log  "STTJ" header + one checksummed, length-prefixed
///                      record per run merged since the base was sealed
///
/// Contracts:
///
///  - **Ack == fsynced.** \ref appendRun returns only after the record's
///    bytes AND the fsync completed; the in-memory merge happens after the
///    fsync, so no acknowledged run can be lost and no unacknowledged run
///    is ever visible in memory.
///  - **Recovery = replay.** \ref open loads the base, applies the
///    suppression file, then replays the journal record by record —
///    reproducing the exact classification sequence (New/Known/Regressed)
///    a never-crashed sequential ingest would have produced, byte for
///    byte.
///  - **Torn tail vs corruption.** A final record with fewer bytes than
///    its length prefix promises is a torn append (the crash window) —
///    recovery truncates it and continues. A checksum or structural
///    violation anywhere else is real corruption and fails open() loudly;
///    no partial or reordered data is ever served.
///  - **Compaction is an atomic generation swap.** When the journal
///    outgrows `CompactionRatio * base`, the in-memory store is sealed
///    into `base-<gen+1>.seg` (the existing temp+fsync+rename dance), a
///    fresh journal carries any records appended meanwhile, and the
///    `CURRENT` swap commits both; a crash at any point leaves either
///    generation fully intact. The three-phase API (begin/prepare/commit)
///    lets a server do the O(store) prepare step off the request path.
///
/// All I/O goes through \ref support::FileSystem; CrashRecoveryTest proves
/// the contracts by injecting a fault at *every* operation index of an
/// ingest sequence and reopening after a simulated power cut.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_TRIAGE_TRIAGELOG_H
#define SAMPLETRACK_TRIAGE_TRIAGELOG_H

#include "sampletrack/support/FileSystem.h"
#include "sampletrack/triage/TriageStore.h"

#include <memory>
#include <string>
#include <vector>

namespace sampletrack {
namespace triage {

class TriageLog {
public:
  struct Options {
    /// File operations seam; nullptr = the real filesystem.
    support::FileSystem *Fs = nullptr;
    /// Optional suppression list applied between the base load and the
    /// journal replay (the same point the server applied it at ingest
    /// time, so replayed classification matches). Always read from the
    /// real filesystem.
    std::string SuppressionFile;
    /// Compact when journalBytes() > CompactionRatio * baseBytes() ...
    double CompactionRatio = 0.5;
    /// ... and the journal is at least this big (a tiny base must not
    /// force a compaction per run).
    uint64_t MinCompactionBytes = 64 << 10;
  };

  /// One run as the journal knows it — everything a server needs to
  /// rebuild its per-run answers (and its idempotency index) on restart.
  struct RunInfo {
    /// Store run index (1-based, == TriageStore::runCount() after merge).
    uint32_t Run = 0;
    /// Client-chosen idempotency key; empty if the upload carried none.
    std::string RunId;
    /// Opaque content tag (the server stores its WireContent here).
    uint8_t Content = 0;
    uint64_t Declared = 0;
    uint64_t Dropped = 0;
    bool Capped = false;
    uint64_t Distinct = 0;
    TriageStore::MergeResult Merge;
  };

  /// Snapshot state carried across the three compaction phases.
  struct CompactionPlan {
    TriageStore Snapshot;
    uint64_t JournalOffset = 0;
    uint64_t Generation = 0;
    bool Prepared = false;
  };

  /// An in-memory log (no directory): appendRun just merges. open() turns
  /// it into a durable one.
  TriageLog() = default;
  ~TriageLog();

  TriageLog(const TriageLog &) = delete;
  TriageLog &operator=(const TriageLog &) = delete;

  /// Opens (creating, migrating, or recovering) the store directory at
  /// \p Dir. If \p Dir is a legacy single-file "STTS" store, it becomes
  /// the first base segment of a fresh directory (the original file is
  /// kept next to it as `<dir>.legacy`). Returns false on corruption —
  /// never on a mere torn tail, which is truncated and noted in
  /// \ref recoveryNote.
  bool open(const std::string &Dir, const Options &O,
            std::string *Error = nullptr);

  bool inMemory() const { return Dir.empty(); }
  /// True once an append failed mid-record: the on-disk journal may end in
  /// a torn record, so further appends are refused until a reopen
  /// truncates it (crash-only: the process restarts, recovery heals).
  bool poisoned() const { return Poisoned; }
  /// Human-readable note when open() had to heal something (torn tail
  /// truncated, interrupted migration finished); empty otherwise.
  const std::string &recoveryNote() const { return RecoveryNote; }

  TriageStore &store() { return Store; }
  const TriageStore &store() const { return Store; }

  /// O(run) ingest: encodes one journal record, appends it, fsyncs, and
  /// only then merges into the in-memory store. On I/O failure the store
  /// is untouched, the log is poisoned, and false is returned — the
  /// caller must not ack the run.
  bool appendRun(const TriageSummary &S, const std::string &RunId,
                 uint8_t Content, TriageStore::MergeResult &Out,
                 std::string *Error = nullptr);

  /// Runs individually replayable from the live journal (everything since
  /// the current base was sealed), oldest first.
  const std::vector<RunInfo> &journalRuns() const { return Runs; }
  /// Runs folded into the base segment as of open() — their per-run
  /// breakdown is no longer individually available.
  uint32_t baseRunsAtOpen() const { return BaseRunsAtOpen; }

  uint64_t generation() const { return Gen; }
  uint64_t journalBytes() const { return JournalSize; }
  uint64_t baseBytes() const { return BaseSize; }
  /// Journal record bytes appended over this object's lifetime (the
  /// per-upload I/O cost the bench reports).
  uint64_t bytesAppended() const { return BytesAppended; }
  /// Bytes written by compactions (base + carried journal).
  uint64_t bytesCompacted() const { return BytesCompacted; }
  uint64_t compactions() const { return Compactions; }

  /// True when the ratio trigger says the journal should fold into a new
  /// base. Always false in memory-only mode.
  bool needsCompaction() const;

  /// Inline compaction: begin + prepare + commit.
  bool compact(std::string *Error = nullptr);

  // Three-phase compaction for callers that serialize appends with a lock
  // but want the O(store) write off the critical path:
  //   lock { beginCompaction(P) } ; prepareCompaction(P) ;
  //   lock { commitCompaction(P) }
  // prepareCompaction may run concurrently with appendRun (they touch
  // different files); begin/commit must be externally serialized with it.

  /// Snapshots the store; false when in-memory, poisoned, or not open.
  /// Deliberately does NOT re-check the ratio trigger, so tests and tools
  /// can force a compaction at any size.
  bool beginCompaction(CompactionPlan &P);
  /// Writes the new base segment. No shared state touched.
  bool prepareCompaction(CompactionPlan &P, std::string *Error = nullptr);
  /// Writes the carried journal, swaps CURRENT, updates in-memory state,
  /// and removes the old generation's files. On failure the old
  /// generation stays live and appends continue against it.
  bool commitCompaction(CompactionPlan &P, std::string *Error = nullptr);

private:
  support::FileSystem &fs() const;
  std::string basePath(uint64_t G) const;
  std::string journalPath(uint64_t G) const;
  bool initializeFresh(std::string *Error);
  bool migrateLegacyFile(std::string *Error);
  bool openDirectory(const Options &O, std::string *Error);
  bool writeCurrentPointer(const std::string &InDir, uint64_t G,
                           bool ViaRename, std::string *Error);
  void removeStaleFiles();
  void destroyTree(const std::string &D);

  std::string Dir;
  Options Opts;
  TriageStore Store;
  std::vector<RunInfo> Runs;
  std::unique_ptr<support::WritableFile> Journal;

  uint64_t Gen = 0;
  uint64_t JournalSize = 0;
  uint64_t BaseSize = 0;
  uint32_t BaseRunsAtOpen = 0;
  uint64_t BytesAppended = 0;
  uint64_t BytesCompacted = 0;
  uint64_t Compactions = 0;
  bool Poisoned = false;
  std::string RecoveryNote;
};

} // namespace triage
} // namespace sampletrack

#endif // SAMPLETRACK_TRIAGE_TRIAGELOG_H
