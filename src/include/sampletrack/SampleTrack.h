//===- sampletrack/SampleTrack.h - Umbrella header -------------*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience umbrella header exposing the whole public API:
///
///  - api: AnalysisSession, the composable analysis pipeline (the preferred
///    entry point — see README.md for a quickstart and the migration table
///    from the older rapid/rt interfaces)
///  - support: VectorClock, OrderedList, TreeClock, RNG, tables
///  - trace: events, traces, text I/O, synthetic generators, the offline
///    benchmark suite
///  - sampling: the Sampler strategies
///  - detectors: Djit+/FastTrack and the paper's ST/SU/SO engines, plus the
///    reference oracle
///  - rapid: the legacy offline engine (a thin wrapper over api)
///  - rt/workload: the online runtime and the OLTP workload simulator
///  - triage: the race warehouse (signature dedup, cross-run store,
///    ranked/SARIF/JSON export)
///  - triaged: the fleet ingestion service (HTTP/1.1 run uploads,
///    single-writer merge, ranked/new/regressed queries, SARIF pulls)
///  - explore: deterministic schedule exploration (random / PCT /
///    exhaustive interleaving enumeration, per-schedule oracle
///    cross-checks via api::runExploration)
///  - prof: the hierarchical self-profiler (RAII spans, deterministic
///    merged reports, chrome-trace export)
///  - perfgate: the CI bench regression gate over the BENCH_*.json
///    trajectory
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_SAMPLETRACK_H
#define SAMPLETRACK_SAMPLETRACK_H

#include "sampletrack/api/AnalysisSession.h"
#include "sampletrack/api/Exploration.h"
#include "sampletrack/api/Report.h"
#include "sampletrack/api/SessionConfig.h"
#include "sampletrack/explore/Coverage.h"
#include "sampletrack/explore/Scheduler.h"
#include "sampletrack/explore/Workload.h"
#include "sampletrack/detectors/DetectorFactory.h"
#include "sampletrack/detectors/DjitDetector.h"
#include "sampletrack/detectors/FastTrackDetector.h"
#include "sampletrack/detectors/HBClosureOracle.h"
#include "sampletrack/detectors/SamplingNaiveDetector.h"
#include "sampletrack/detectors/SamplingOrderedListDetector.h"
#include "sampletrack/detectors/SamplingUClockDetector.h"
#include "sampletrack/detectors/TreeClockDetector.h"
#include "sampletrack/perfgate/PerfGate.h"
#include "sampletrack/prof/ChromeTrace.h"
#include "sampletrack/prof/Profiler.h"
#include "sampletrack/prof/Report.h"
#include "sampletrack/rapid/Engine.h"
#include "sampletrack/runtime/Runtime.h"
#include "sampletrack/sampling/Sampler.h"
#include "sampletrack/support/FaultInjectionFs.h"
#include "sampletrack/support/FileSystem.h"
#include "sampletrack/support/Json.h"
#include "sampletrack/support/LatencyHistogram.h"
#include "sampletrack/support/OrderedList.h"
#include "sampletrack/support/Rng.h"
#include "sampletrack/support/Table.h"
#include "sampletrack/support/TreeClock.h"
#include "sampletrack/support/VectorClock.h"
#include "sampletrack/trace/SuiteGen.h"
#include "sampletrack/trace/Trace.h"
#include "sampletrack/trace/TraceGen.h"
#include "sampletrack/trace/TraceIO.h"
#include "sampletrack/trace/TraceStats.h"
#include "sampletrack/triage/Exporters.h"
#include "sampletrack/triage/RaceSignature.h"
#include "sampletrack/triage/RaceSink.h"
#include "sampletrack/triage/TriageLog.h"
#include "sampletrack/triage/TriageStore.h"
#include "sampletrack/triaged/Client.h"
#include "sampletrack/triaged/Http.h"
#include "sampletrack/triaged/Server.h"
#include "sampletrack/triaged/Wire.h"
#include "sampletrack/workload/Workload.h"

#endif // SAMPLETRACK_SAMPLETRACK_H
