//===- sampletrack/runtime/Runtime.h - Online instrumented runtime -*- C++ -*-/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The online race-detection runtime standing in for the paper's modified
/// ThreadSanitizer (Section 6.1). Real application threads call the hook
/// API (onRead/onWrite/onAcquire/onRelease/...) and the runtime performs
/// the configured engine's analysis concurrently:
///
///  - NT: hooks return immediately (uninstrumented baseline),
///  - ET: hooks pay only "instrumentation" cost — address hashing and a
///        per-thread counter — with no analysis (Empty-TSan),
///  - FT: FastTrack full analysis (Full-TSan),
///  - ST/SU/SO: the paper's sampling engines at a configurable rate.
///
/// Concurrency discipline (mirrors TSan's): a thread's clocks are owned by
/// that thread; each sync object's state is guarded by its own mutex (the
/// analysis work there nests inside the application's critical section,
/// which is exactly how vanilla timestamping "exacerbates existing lock
/// contention"); shadow cells live in a sharded hash table with per-shard
/// mutexes. SO's shared ordered lists are immutable once published
/// (copy-on-write), so references can be handed across threads under the
/// sync mutex alone.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_RUNTIME_RUNTIME_H
#define SAMPLETRACK_RUNTIME_RUNTIME_H

#include "sampletrack/detectors/Metrics.h"
#include "sampletrack/prof/Profiler.h"
#include "sampletrack/prof/Report.h"
#include "sampletrack/support/OrderedList.h"
#include "sampletrack/trace/Trace.h"
#include "sampletrack/triage/RaceSink.h"
#include "sampletrack/support/Rng.h"
#include "sampletrack/support/VectorClock.h"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

namespace sampletrack {
namespace rt {

/// Analysis configuration ladder of Section 6.2.2.
enum class Mode {
  NT, ///< No instrumentation.
  ET, ///< Instrumentation callbacks without analysis.
  FT, ///< Full FastTrack analysis.
  ST, ///< Sampling, naive synchronization handling (Algorithm 2).
  SU, ///< Sampling with freshness clocks (Algorithm 3).
  SO, ///< Sampling with ordered lists and lazy copies (Algorithm 4).
};

const char *modeName(Mode M);

/// True for the three sampling modes.
inline bool isSamplingMode(Mode M) {
  return M == Mode::ST || M == Mode::SU || M == Mode::SO;
}

struct Config {
  Mode AnalysisMode = Mode::FT;
  /// Sampling rate for ST/SU/SO (fraction of accesses in S).
  double SamplingRate = 0.03;
  uint64_t Seed = 1;
  /// Fixed vector-clock size; threads beyond this cannot register (TSan v3
  /// uses a fixed 256-slot clock; we default lower to match our workloads).
  size_t MaxThreads = 64;
  /// Number of shadow cells (addresses are hashed into this space).
  size_t ShadowCells = 1 << 16;
  /// Number of shard mutexes protecting the shadow table.
  size_t ShadowShards = 256;
  /// Record every hook invocation as an offline trace event (under a global
  /// mutex — slow; for debugging and cross-validation against the offline
  /// engines). Access events carry their sampling decision in the Marked
  /// bit, so an offline replay sees the identical sample set.
  bool RecordTrace = false;
  /// Serve snapshot buffers (SO's copy-on-write lists, lazily allocated
  /// shadow-history clocks) from a recycling SnapshotPool instead of the
  /// allocator. Results are identical either way; only the PoolHits metric
  /// (and allocator traffic) moves. The differential tests run both.
  bool PoolingEnabled = true;
  /// Distinct-signature capacity of each thread's race sink (0 = the
  /// default, 1<<16 per thread). Race declarations dedup into per-thread
  /// sinks lock-free; \ref Runtime::triageSummary merges the shards.
  size_t TriageCapacity = 0;
  /// Build the hierarchical span profile (sampletrack/prof) while the
  /// runtime runs: per-thread access/sync span trees, merged by
  /// \ref Runtime::profileReport. Off by default — hooks pay only one
  /// predictable branch when disabled.
  bool ProfilingEnabled = false;
};

/// One detected race, as reported online.
struct OnlineRace {
  ThreadId Tid;
  uint64_t Address;
  bool OnWrite;
};

/// The concurrent analysis runtime. Thread-compatible: each registered
/// thread may invoke hooks concurrently with all others.
class Runtime {
public:
  explicit Runtime(const Config &C);
  ~Runtime();

  Runtime(const Runtime &) = delete;
  Runtime &operator=(const Runtime &) = delete;

  const Config &config() const { return Cfg; }

  /// Registers the calling thread; returns its dense id. Must be called
  /// before any other hook from that thread. Thread 0 is pre-registered as
  /// the "main" thread.
  ThreadId registerThread();

  /// Creates a new sync object (lock/atomic) id.
  SyncId registerSync();

  // -- Instrumentation hooks -------------------------------------------
  void onRead(ThreadId T, uint64_t Addr);
  void onWrite(ThreadId T, uint64_t Addr);
  void onAcquire(ThreadId T, SyncId L);
  void onRelease(ThreadId T, SyncId L);
  void onFork(ThreadId Parent, ThreadId Child);
  void onJoin(ThreadId Parent, ThreadId Child);

  // Non-mutex synchronization (appendix A.2): atomic release-stores
  // (replacement semantics), release-joins (RMW/shared release sequences,
  // blending semantics) and acquire-loads.
  void onReleaseStore(ThreadId T, SyncId S);
  void onReleaseJoin(ThreadId T, SyncId S);
  void onAcquireLoad(ThreadId T, SyncId S);

  // -- Results ----------------------------------------------------------
  /// Total races declared (cheap, atomic).
  uint64_t raceCount() const;
  /// Distinct racy shadow cells ("racy locations", Fig. 6(a)).
  size_t racyLocationCount() const;
  /// Deduplicated race warehouse view: per-thread sink shards merged in
  /// thread order. Call only when no hooks are running (like
  /// aggregatedMetrics).
  triage::TriageSummary triageSummary() const;
  /// Distinct race signatures across all threads (quiescent-only).
  uint64_t distinctRaceCount() const;
  /// Merged per-thread metrics. Call only when no hooks are running.
  Metrics aggregatedMetrics() const;
  /// The recorded execution (empty unless Config::RecordTrace). The order
  /// is a valid linearization of the hooks: per-thread order and per-sync
  /// release-before-acquire order are preserved; only mutually racing
  /// accesses may be permuted. Call only when no hooks are running.
  Trace recordedTrace() const;
  /// Merged self-profile across all registered threads (empty unless
  /// Config::ProfilingEnabled). Spans: rt-thread trees with
  /// runtime/access/{read,write} aggregate samples and
  /// runtime/sync/{acquire,release,...} timed spans. Call only when no
  /// hooks are running.
  prof::Report profileReport() const;
  /// The underlying profiler (null unless Config::ProfilingEnabled), for
  /// chrome-trace export alongside other profilers. Quiescent-only.
  const prof::Profiler *profiler() const;

private:
  struct ThreadState;
  struct SyncState;
  struct Shadow;
  struct Impl;

  /// Records a race (atomic counter plus racy-cell set).
  void reportRace(ThreadId T, uint64_t Cell, bool OnWrite);
  /// Direct-mapped shadow ownership: claims the cell for \p Addr, dropping
  /// a colliding address's history (see Shadow::Owner). Shard lock held.
  void reclaimCell(Shadow &Sh, uint64_t Addr);
  /// Sampling modes: history <= effective clock C_t[t -> e_t]?
  bool dominatesHistory(ThreadId T, const VectorClock &H);
  /// Sampling modes: materialize the effective clock into \p Out.
  void snapshotEffective(ThreadId T, VectorClock &Out);
  /// Lines 19-21 of Algorithm 2: publish e_t if the thread performed a
  /// sampled access since the last release-like event.
  void flushLocalEpoch(ThreadId T);
  /// SO: apply one foreign component, copy-on-write. Returns 1 on change.
  unsigned soApplyEntry(ThreadId T, ThreadId Of, ClockValue Val);
  /// Appends \p E to the recorded trace if recording is enabled.
  void record(const Event &E);

  Config Cfg;
  std::unique_ptr<Impl> I;
};

/// An instrumented mutex: wraps a real std::mutex and reports acquire and
/// release to the runtime, in the same order TSan does (acquire hook after
/// locking, release hook before unlocking).
class Mutex {
public:
  explicit Mutex(Runtime &Rt) : Rt(Rt), Id(Rt.registerSync()) {}

  void lock(ThreadId T) {
    M.lock();
    Rt.onAcquire(T, Id);
  }
  void unlock(ThreadId T) {
    Rt.onRelease(T, Id);
    M.unlock();
  }
  SyncId id() const { return Id; }

private:
  Runtime &Rt;
  SyncId Id;
  std::mutex M;
};

/// An instrumented atomic word with release/acquire message-passing
/// semantics: store publishes the writer's timestamp (release-store),
/// load imports it (acquire-load).
class AtomicFlag {
public:
  explicit AtomicFlag(Runtime &Rt) : Rt(Rt), Id(Rt.registerSync()) {}

  void store(ThreadId T, uint64_t V) {
    Rt.onReleaseStore(T, Id);
    Value.store(V, std::memory_order_release);
  }
  uint64_t load(ThreadId T) {
    uint64_t V = Value.load(std::memory_order_acquire);
    Rt.onAcquireLoad(T, Id);
    return V;
  }
  SyncId id() const { return Id; }

private:
  Runtime &Rt;
  SyncId Id;
  std::atomic<uint64_t> Value{0};
};

/// An instrumented N-party barrier. Arrivals blend their timestamps into
/// the barrier's sync object (release-join); departures import the blend
/// (acquire-load) — every pre-barrier event happens-before every
/// post-barrier event, in both the real execution and the analysis.
class Barrier {
public:
  Barrier(Runtime &Rt, size_t Parties)
      : Rt(Rt), Id(Rt.registerSync()), Parties(Parties) {}

  void arriveAndWait(ThreadId T) {
    Rt.onReleaseJoin(T, Id);
    std::unique_lock<std::mutex> G(M);
    size_t MyGen = Generation;
    if (++Waiting == Parties) {
      Waiting = 0;
      ++Generation;
      Cv.notify_all();
    } else {
      Cv.wait(G, [&] { return Generation != MyGen; });
    }
    G.unlock();
    Rt.onAcquireLoad(T, Id);
  }

private:
  Runtime &Rt;
  SyncId Id;
  size_t Parties;
  std::mutex M;
  std::condition_variable Cv;
  size_t Waiting = 0;
  size_t Generation = 0;
};

} // namespace rt
} // namespace sampletrack

#endif // SAMPLETRACK_RUNTIME_RUNTIME_H
