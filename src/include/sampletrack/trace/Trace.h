//===- sampletrack/trace/Trace.h - Execution traces ------------*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An in-memory program execution: a sequence of events plus the sizes of
/// its thread/lock/variable universes. A builder API keeps generators and
/// tests terse, and \ref Trace::validate checks the well-formedness rules of
/// Section 2 (lock alternation, fork-before-first-event, ...).
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_TRACE_TRACE_H
#define SAMPLETRACK_TRACE_TRACE_H

#include "sampletrack/trace/Event.h"

#include <string>
#include <vector>

namespace sampletrack {

/// A finite execution with dense thread/sync/var identifier spaces.
class Trace {
public:
  Trace() = default;
  Trace(size_t NumThreads, size_t NumSyncs, size_t NumVars)
      : NumThreads(NumThreads), NumSyncs(NumSyncs), NumVars(NumVars) {}

  size_t numThreads() const { return NumThreads; }
  size_t numSyncs() const { return NumSyncs; }
  size_t numVars() const { return NumVars; }
  size_t size() const { return Events.size(); }
  bool empty() const { return Events.empty(); }

  const Event &operator[](size_t I) const { return Events[I]; }
  Event &operator[](size_t I) { return Events[I]; }
  const std::vector<Event> &events() const { return Events; }

  std::vector<Event>::const_iterator begin() const { return Events.begin(); }
  std::vector<Event>::const_iterator end() const { return Events.end(); }

  /// Appends an event, growing the universes if the ids are new.
  void append(const Event &E);

  // Convenience builders (all grow the universes as needed). \p Marked
  // realizes membership in the sample set S for offline analyses.
  void read(ThreadId T, VarId X, bool Marked = false) {
    append(Event(T, OpKind::Read, X, Marked));
  }
  void write(ThreadId T, VarId X, bool Marked = false) {
    append(Event(T, OpKind::Write, X, Marked));
  }
  void acquire(ThreadId T, SyncId L) {
    append(Event(T, OpKind::Acquire, L));
  }
  void release(ThreadId T, SyncId L) {
    append(Event(T, OpKind::Release, L));
  }
  void fork(ThreadId Parent, ThreadId Child) {
    append(Event(Parent, OpKind::Fork, Child));
  }
  void join(ThreadId Parent, ThreadId Child) {
    append(Event(Parent, OpKind::Join, Child));
  }
  void releaseStore(ThreadId T, SyncId S) {
    append(Event(T, OpKind::ReleaseStore, S));
  }
  void releaseJoin(ThreadId T, SyncId S) {
    append(Event(T, OpKind::ReleaseJoin, S));
  }
  void acquireLoad(ThreadId T, SyncId S) {
    append(Event(T, OpKind::AcquireLoad, S));
  }

  /// Number of events currently marked (|S|).
  size_t countMarked() const;

  /// Number of events of kind \p K.
  size_t countKind(OpKind K) const;

  /// Checks well-formedness: ids within range, lock acquire/release
  /// alternation per lock with matching holder thread, no self-fork/join,
  /// and forked threads not acting before their fork. On failure returns
  /// false and, if \p Error is nonnull, stores a diagnostic.
  bool validate(std::string *Error = nullptr) const;

private:
  std::vector<Event> Events;
  size_t NumThreads = 0;
  size_t NumSyncs = 0;
  size_t NumVars = 0;
};

} // namespace sampletrack

#endif // SAMPLETRACK_TRACE_TRACE_H
