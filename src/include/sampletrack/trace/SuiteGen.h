//===- sampletrack/trace/SuiteGen.h - Offline benchmark suite --*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 26 offline benchmark traces of the paper's RAPID evaluation
/// (Figures 7-9), reconstructed as synthetic generators. Each entry mimics
/// the structural profile of the original Java benchmark (thread count,
/// sync-to-access ratio, contention pattern); the generated traces are
/// deterministic in the seed. The suite is ordered by total number of
/// acquires, as in the paper's figures.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_TRACE_SUITEGEN_H
#define SAMPLETRACK_TRACE_SUITEGEN_H

#include "sampletrack/trace/Trace.h"

#include <string>
#include <vector>

namespace sampletrack {

/// Static description of one suite benchmark.
struct SuiteEntry {
  /// Name as it appears in the paper's figures (e.g. "bufwriter").
  std::string Name;
  /// One-line description of the structural profile being mimicked.
  std::string Profile;
  /// Baseline event count at Scale = 1.0.
  size_t BaseEvents;
};

/// All 26 entries in paper order (ascending total acquires).
const std::vector<SuiteEntry> &suiteEntries();

/// True if \p Name is a suite benchmark.
bool isSuiteBenchmark(const std::string &Name);

/// Generates the trace for suite benchmark \p Name. \p Scale multiplies the
/// event count (1.0 reproduces BaseEvents within a small factor). Aborts via
/// assert on unknown names; check with \ref isSuiteBenchmark first.
Trace generateSuiteTrace(const std::string &Name, double Scale, uint64_t Seed);

} // namespace sampletrack

#endif // SAMPLETRACK_TRACE_SUITEGEN_H
