//===- sampletrack/trace/TraceIO.h - Trace (de)serialization ---*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reader and writer for the RAPID-like text trace format, one event per
/// line:
///
/// \code
///   T0|acq(L1)
///   T0|w(V3)*        <- '*' marks membership in the sample set S
///   T0|rel(L1)
///   T0|fork(T1)
///   T1|ld(L2)
/// \endcode
///
/// Blank lines and lines starting with '#' are ignored. Identifiers are
/// nonnegative integers prefixed by T/L/V; the op mnemonics match
/// \ref opKindName.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_TRACE_TRACEIO_H
#define SAMPLETRACK_TRACE_TRACEIO_H

#include "sampletrack/trace/Trace.h"

#include <iosfwd>
#include <string>

namespace sampletrack {

/// Parses one event line. Returns true on success; on failure returns false
/// and fills \p Error if nonnull.
bool parseEventLine(const std::string &Line, Event &Out,
                    std::string *Error = nullptr);

/// Reads a whole trace from \p Is. Returns true on success; on failure
/// returns false and fills \p Error (with a line number) if nonnull.
bool readTrace(std::istream &Is, Trace &Out, std::string *Error = nullptr);

/// Reads a trace from the file at \p Path.
bool readTraceFile(const std::string &Path, Trace &Out,
                   std::string *Error = nullptr);

/// Writes \p T to \p Os, one event per line, with a header comment.
void writeTrace(std::ostream &Os, const Trace &T);

/// Writes \p T to the file at \p Path. Returns false on I/O failure.
bool writeTraceFile(const std::string &Path, const Trace &T);

/// Binary trace format: a fixed magic ("STRC\\1"), three varint universe
/// sizes, a varint event count, then per event one kind/marked byte and two
/// varints (tid, target). Roughly 3-5 bytes per event — an order of
/// magnitude smaller than the text format for large traces.
void writeTraceBinary(std::ostream &Os, const Trace &T);

/// Writes \p T in the binary format. Returns false on I/O failure.
bool writeTraceFileBinary(const std::string &Path, const Trace &T);

/// Reads a binary trace. Returns false (with \p Error filled if nonnull)
/// on malformed input.
bool readTraceBinary(std::istream &Is, Trace &Out,
                     std::string *Error = nullptr);

/// True if the stream starts with the binary trace magic (the stream
/// position is restored).
bool sniffBinaryTrace(std::istream &Is);

/// Incremental reader for the binary trace format: decodes the header
/// eagerly (so consumers learn the thread/sync/var universes before any
/// event is materialized) and then yields events in caller-sized batches.
/// api::AnalysisSession streams multi-gigabyte traces through this without
/// ever holding more than one batch in memory.
class BinaryTraceReader {
public:
  /// Binds to \p Is and decodes the header. The caller must already have
  /// consumed the magic via \ref sniffBinaryTrace (which consumes it on a
  /// match), mirroring readTraceBinary's contract. Returns false (filling
  /// \p Error if nonnull) on a truncated header.
  bool open(std::istream &Is, std::string *Error = nullptr);

  size_t numThreads() const { return NumThreads; }
  size_t numSyncs() const { return NumSyncs; }
  size_t numVars() const { return NumVars; }
  /// Total events promised by the header.
  uint64_t size() const { return NumEvents; }
  /// Events decoded so far.
  uint64_t position() const { return Position; }
  /// True once every header-promised event has been decoded.
  bool done() const { return Position == NumEvents; }

  /// Decodes up to \p Max further events into \p Out (cleared first).
  /// Returns false on malformed or truncated input.
  bool read(std::vector<Event> &Out, size_t Max,
            std::string *Error = nullptr);

private:
  std::istream *Is = nullptr;
  size_t NumThreads = 0, NumSyncs = 0, NumVars = 0;
  uint64_t NumEvents = 0, Position = 0;
};

} // namespace sampletrack

#endif // SAMPLETRACK_TRACE_TRACEIO_H
