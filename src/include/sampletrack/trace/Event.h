//===- sampletrack/trace/Event.h - Execution events ------------*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The event model of Section 2 of the paper, extended with the fork/join
/// and non-mutex synchronization operations that ThreadSanitizer handles
/// (appendix A.2): release-store, release-join (shared/RMW release
/// sequences) and acquire-load.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_TRACE_EVENT_H
#define SAMPLETRACK_TRACE_EVENT_H

#include "sampletrack/support/Common.h"

#include <cassert>
#include <string>

namespace sampletrack {

/// The operation performed by an event.
enum class OpKind : uint8_t {
  Read,         ///< r(x): read of memory location x.
  Write,        ///< w(x): write of memory location x.
  Acquire,      ///< acq(l): mutex lock of l.
  Release,      ///< rel(l): mutex unlock of l.
  Fork,         ///< fork(t'): creation of thread t'.
  Join,         ///< join(t'): join with thread t'.
  ReleaseStore, ///< st(s): atomic release-store to sync object s (A.2).
  ReleaseJoin,  ///< rj(s): RMW/shared release joining into s (A.2).
  AcquireLoad,  ///< ld(s): atomic acquire-load of sync object s (A.2).
};

/// True for the two memory-access kinds, the only events eligible for
/// sampling.
inline bool isAccess(OpKind K) {
  return K == OpKind::Read || K == OpKind::Write;
}

/// True for operations with release semantics (they publish the thread's
/// timestamp through a synchronization object).
inline bool isReleaseLike(OpKind K) {
  return K == OpKind::Release || K == OpKind::Fork ||
         K == OpKind::ReleaseStore || K == OpKind::ReleaseJoin;
}

/// True for operations with acquire semantics (they import a timestamp from
/// a synchronization object).
inline bool isAcquireLike(OpKind K) {
  return K == OpKind::Acquire || K == OpKind::Join || K == OpKind::AcquireLoad;
}

/// Short mnemonic used by the trace text format ("r", "acq", ...).
const char *opKindName(OpKind K);

/// One event of a program execution.
///
/// \c Target is overloaded by kind: a VarId for accesses, a SyncId for
/// lock/atomic operations, and a ThreadId for fork/join. The \c Marked bit
/// realizes the paper's "marked events" (the sample set S of the Analysis
/// Problem) for offline traces; online, samplers decide on the fly.
struct Event {
  ThreadId Tid = 0;
  OpKind Kind = OpKind::Read;
  uint64_t Target = 0;
  bool Marked = false;

  Event() = default;
  Event(ThreadId Tid, OpKind Kind, uint64_t Target, bool Marked = false)
      : Tid(Tid), Kind(Kind), Target(Target), Marked(Marked) {}

  /// Memory location of an access event.
  VarId var() const {
    assert(isAccess(Kind) && "not an access event");
    return Target;
  }

  /// Sync object of a lock/atomic event.
  SyncId sync() const {
    assert(!isAccess(Kind) && Kind != OpKind::Fork && Kind != OpKind::Join &&
           "not a sync-object event");
    return static_cast<SyncId>(Target);
  }

  /// Child thread of a fork/join event.
  ThreadId childThread() const {
    assert((Kind == OpKind::Fork || Kind == OpKind::Join) &&
           "not a fork/join event");
    return static_cast<ThreadId>(Target);
  }

  bool operator==(const Event &O) const {
    return Tid == O.Tid && Kind == O.Kind && Target == O.Target &&
           Marked == O.Marked;
  }

  /// Renders like the trace format, e.g. "T1|acq(L2)" or "T0|w(V7)*".
  std::string str() const;
};

} // namespace sampletrack

#endif // SAMPLETRACK_TRACE_EVENT_H
