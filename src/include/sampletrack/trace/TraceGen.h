//===- sampletrack/trace/TraceGen.h - Synthetic executions -----*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic synthetic execution generators. They stand in for the
/// paper's workload sources (MySQL/BenchBase executions online, 26 Java
/// benchmark traces offline); see DESIGN.md for the substitution argument.
/// The generators expose the structural knobs the paper's results depend
/// on: lock contention/popularity skew, sync-to-access ratio, critical
/// sections without accesses, self-reacquisition, and reverse-order lock
/// communication.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_TRACE_TRACEGEN_H
#define SAMPLETRACK_TRACE_TRACEGEN_H

#include "sampletrack/trace/Trace.h"

#include <cstdint>

namespace sampletrack {

/// Knobs for the general lock-structured workload generator.
struct GenConfig {
  size_t NumThreads = 8;
  size_t NumLocks = 16;
  size_t NumVars = 256;
  /// Approximate number of events to generate (the generator stops at the
  /// first clean point past this count).
  size_t NumEvents = 10000;

  /// Fraction of generated steps that are memory accesses (the rest are
  /// synchronization operations). Lock-heavy apps like MySQL sit low.
  double AccessFraction = 0.6;
  /// Fraction of accesses that are writes.
  double WriteFraction = 0.3;
  /// Zipf exponent for lock popularity (0 = uniform; higher = contended).
  double LockZipfTheta = 0.8;
  /// Fraction of critical sections that perform no access at all (the
  /// paper observes these make even non-sampling engines skip work).
  double EmptyCsFraction = 0.1;
  /// Probability that a thread's next acquire targets the lock it released
  /// most recently (self-reacquisition lets engines skip the join).
  double SelfReacquireBias = 0.3;
  /// Maximum lock nesting depth per thread.
  unsigned MaxNesting = 2;
  /// Mean scheduling-burst length: the generator keeps stepping the same
  /// thread for a geometric number of steps, modelling OS scheduling
  /// quanta. Longer bursts mean more consecutive critical sections by one
  /// thread (self-reacquisition, skip-friendly). 1 = uniform interleaving.
  double MeanBurst = 6.0;
  /// Fraction of accesses performed outside any critical section, drawn
  /// from a small shared pool: these seed real races.
  double UnprotectedFraction = 0.02;
  /// Number of variables in the shared racy pool.
  size_t RacyVars = 4;

  uint64_t Seed = 1;
};

/// Generates a well-formed execution according to \p Config. The
/// interleaving, lock choices and access targets are deterministic in
/// Config.Seed. Variables are partitioned per lock so that protected
/// accesses are race-free; only the unprotected pool races.
Trace generateWorkload(const GenConfig &Config);

/// Producer/consumer rings: producers write slots under a lock, consumers
/// read them. High communication, few distinct locks.
Trace generateProducerConsumer(size_t Producers, size_t Consumers,
                               size_t ItemsPerProducer, uint64_t Seed);

/// Fork/join divide-and-conquer over an array (mergesort-like): a tree of
/// forks, leaf work, then joins; parents read children's results. With
/// \p UseProgressLock, every node additionally logs progress under a
/// global lock (as the Java benchmark's instrumented runs do), giving the
/// trace mutex events.
Trace generateForkJoin(unsigned Depth, size_t WorkPerLeaf, uint64_t Seed,
                       bool UseProgressLock = false);

/// Barrier-style rounds (SOR-like): threads compute on their own rows, then
/// cross a barrier built from release-join/acquire-load operations.
Trace generateBarrierRounds(size_t Threads, size_t Rounds, size_t WorkPerRound,
                            uint64_t Seed);

/// Barrier rounds realized with mutex deposit/collect phases on a single
/// barrier lock — how lock-only trace formats (like RAPID's) encode
/// barriers. Every thread's pre-barrier events happen-before every
/// thread's post-barrier events.
Trace generateLockBarrierRounds(size_t Threads, size_t Rounds,
                                size_t WorkPerRound, uint64_t Seed);

/// Two-stage pipeline: stage-1 threads hand items to stage-2 threads via
/// per-pair locks (twostage-like).
Trace generatePipeline(size_t Stage1, size_t Stage2, size_t Items,
                       uint64_t Seed);

/// Lock ping-pong (bubblesort-like): threads repeatedly pass a small set of
/// locks around in alternating order, with tiny critical sections. Exhibits
/// reverse-order lock communication.
Trace generatePingPong(size_t Threads, size_t Locks, size_t Exchanges,
                       uint64_t Seed);

} // namespace sampletrack

#endif // SAMPLETRACK_TRACE_TRACEGEN_H
