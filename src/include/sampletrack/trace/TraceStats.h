//===- sampletrack/trace/TraceStats.h - Structural statistics --*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural statistics of an execution: the axes the paper's results
/// depend on (sync-to-access ratio, empty critical sections,
/// self-reacquisition, lock popularity skew). Used by the CLIs to describe
/// traces and by tests to validate that the synthetic suite actually has
/// the profiles DESIGN.md claims.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_TRACE_TRACESTATS_H
#define SAMPLETRACK_TRACE_TRACESTATS_H

#include "sampletrack/trace/Trace.h"

#include <string>
#include <vector>

namespace sampletrack {

/// Aggregate structural statistics of one trace.
struct TraceStats {
  size_t Events = 0;
  size_t Reads = 0, Writes = 0;
  size_t Acquires = 0, Releases = 0;
  size_t Forks = 0, Joins = 0;
  size_t Atomics = 0; ///< st + rj + ld events.
  size_t Marked = 0;

  /// Accesses / all events.
  double AccessFraction = 0;
  /// Synchronization events (everything non-access) / accesses.
  double SyncPerAccess = 0;
  /// Fraction of critical sections containing no access by the holder.
  double EmptyCsFraction = 0;
  /// Mean accesses performed inside a critical section by its holder.
  double MeanCsLength = 0;
  /// Fraction of acquires that re-take the lock the same thread released
  /// most recently (the skip-friendly pattern of appendix A.1).
  double SelfReacquireFraction = 0;
  /// Share of acquires going to the single most popular lock.
  double HottestLockShare = 0;

  /// Events per thread (indexed by ThreadId).
  std::vector<size_t> PerThreadEvents;
  /// Acquires per lock (indexed by SyncId).
  std::vector<size_t> PerLockAcquires;

  /// Computes all statistics in one pass over \p T.
  static TraceStats of(const Trace &T);

  /// Multi-line human-readable rendering.
  std::string str() const;
};

} // namespace sampletrack

#endif // SAMPLETRACK_TRACE_TRACESTATS_H
