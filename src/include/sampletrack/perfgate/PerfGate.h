//===- sampletrack/perfgate/PerfGate.h - Bench regression gate -*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The CI perf gate: diffs a freshly produced bench trajectory JSON
/// document (bench/BenchCommon.h's JsonReport schema) against the committed
/// repo-root BENCH_*.json baseline and fails on regression. Three metric
/// classes, each with its own rule:
///
///  - timing metrics (wallNanos, nsPerEvent): fresh may not exceed
///    baseline * TimingRatio — absolute nanos vary with hardware, so the
///    ratio absorbs runner variance while still catching real slowdowns;
///  - throughput metrics (uploadsPerSec): fresh may not fall below
///    baseline / ThroughputRatio;
///  - deterministic counters (events, deepCopies, cowBreaks,
///    shallowCopies, releasesTotal, racesDeclared, racyLocations,
///    distinctRaces, uploads, clients, bytes): exact equality when the two
///    documents ran at the same scale and seed — a drifted counter means
///    the hot path changed behavior and the baseline must be regenerated
///    deliberately.
///
/// Rows are matched by (series, engine, rate); a baseline row missing from
/// the fresh document is itself a regression (a silently dropped
/// measurement is how gates rot). Unknown numeric metrics and the "profile"
/// attachment are noted and skipped.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_PERFGATE_PERFGATE_H
#define SAMPLETRACK_PERFGATE_PERFGATE_H

#include <cstddef>
#include <string>
#include <vector>

namespace sampletrack {
namespace support {
class JsonValue;
}
namespace perfgate {

struct Tolerances {
  /// Upper ratio for timing metrics: fail when fresh > baseline * this.
  double TimingRatio = 1.6;
  /// Lower ratio for throughput metrics: fail when
  /// fresh < baseline / this.
  double ThroughputRatio = 1.6;
  /// Require exact equality for the deterministic counters when scale and
  /// seed match (off: counters are skipped).
  bool ExactCounters = true;
};

/// One regression.
struct Finding {
  std::string Series, Engine, Metric;
  double Baseline = 0, Fresh = 0, Limit = 0;
  /// Human-readable one-liner naming the regressed metric.
  std::string Message;
};

struct GateResult {
  std::vector<Finding> Regressions;
  /// Skipped comparisons, fresh-only rows, unknown metrics.
  std::vector<std::string> Notes;
  size_t RowsCompared = 0;
  size_t MetricsCompared = 0;

  bool passed() const { return Regressions.empty(); }
};

/// Diffs two parsed trajectory documents. Returns false (with \p Error)
/// only when a document is structurally not a trajectory — a gate that
/// cannot read its inputs must not pass.
bool diffBenchJson(const support::JsonValue &Baseline,
                   const support::JsonValue &Fresh, const Tolerances &T,
                   GateResult &Out, std::string *Error = nullptr);

/// File-path convenience wrapper: parse both, then diff.
bool gateFiles(const std::string &BaselinePath, const std::string &FreshPath,
               const Tolerances &T, GateResult &Out,
               std::string *Error = nullptr);

/// Renders the result for CI logs: every regression as one
/// "PERF GATE FAILURE [...]" line, then a pass/fail summary.
std::string render(const GateResult &R, const std::string &BenchName);

} // namespace perfgate
} // namespace sampletrack

#endif // SAMPLETRACK_PERFGATE_PERFGATE_H
