//===- sampletrack/api/AnalysisSession.h - Composable pipeline -*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unified analysis pipeline: one event source (an in-memory Trace, a
/// streamed trace file, or live instrumentation hooks), one shared sampling
/// decision stream, and any number of detector lanes fanned out over a
/// single traversal of the source.
///
/// \code
///   api::SessionConfig Cfg;
///   Cfg.Engines = {EngineKind::SamplingNaive, EngineKind::SamplingO};
///   Cfg.SamplingRate = 0.03;
///   api::SessionResult R = api::AnalysisSession(Cfg).run(T);
///   std::puts(api::toJson(R).c_str());
/// \endcode
///
/// Because every lane consumes the same per-event decision, K engines in
/// one session see the identical sample set S that K standalone
/// rapid::Engine runs with the same seed would see (appendix A.1), while
/// the trace is read exactly once instead of K times. Ingestion is batched
/// (\ref AnalysisSession::process over a span); the single-event overload
/// remains as a compatibility shim for per-event producers.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_API_ANALYSISSESSION_H
#define SAMPLETRACK_API_ANALYSISSESSION_H

#include "sampletrack/api/SessionConfig.h"
#include "sampletrack/prof/Profiler.h"
#include "sampletrack/trace/Trace.h"
#include "sampletrack/triage/RaceSink.h"

#include <iosfwd>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace sampletrack {
namespace api {

/// Structured result of one detector lane over one session run.
struct EngineRun {
  /// Engine name as used in the paper ("FT", "ST", ...).
  std::string Engine;
  /// The shared sampler's configuration string.
  std::string SamplerName;
  Metrics Stats;
  uint64_t NumRaces = 0;
  uint64_t NumRacyLocations = 0;
  /// Distinct race signatures this lane's sink deduplicated NumRaces
  /// declarations into.
  uint64_t DistinctRaces = 0;
  /// Number of access events placed in S (identical across lanes).
  uint64_t SampleSize = 0;
  /// Wall-clock nanoseconds spent inside this lane's detector(s); for a
  /// sharded lane, summed over its shard detectors.
  uint64_t WallNanos = 0;
  /// Shard count this lane's shadow state was partitioned into
  /// (SessionConfig::Shards; 0 = unsharded). Execution shape only: Stats,
  /// Races and every other field are bit-identical across shard counts
  /// (stripTiming zeroes this echo so the determinism tests can say so).
  size_t Shards = 0;
  /// The deduplicated race exemplars (first report per signature, in
  /// first-seen order; signatures beyond the sink capacity are missing if
  /// RacesTruncated is set). Only populated for session-owned engine
  /// lanes; a lane added via addDetector leaves this empty because the
  /// caller still holds the detector and its races().
  std::vector<RaceReport> Races;
  bool RacesTruncated = false;

  /// Memberwise equality, including the nondeterministic WallNanos; strip
  /// timing first (\ref stripTiming) to compare runs for determinism.
  bool operator==(const EngineRun &O) const = default;
};

/// Result of one session run: one EngineRun per lane, in lane order, plus
/// stream-level totals.
struct SessionResult {
  std::vector<EngineRun> Engines;
  /// The run's race-warehouse view: every lane's sink merged in lane order
  /// (hits accumulate per signature, first lane's exemplar wins). Feed it
  /// to triage::TriageStore::mergeRun — or api::runTriage, which also
  /// handles persistence and suppressions — for the cross-run workflow.
  triage::TriageSummary Triage;
  /// Events ingested from the source (each lane saw all of them).
  uint64_t EventsProcessed = 0;
  /// Thread-universe size the detectors were built with.
  size_t NumThreads = 0;
  /// Lane worker threads the run actually used (0 = sequential mode).
  size_t NumWorkers = 0;
  /// Intra-engine shard count the run used (0 = unsharded). With S shards
  /// and K engine lanes the session drives K*S shard detectors; NumWorkers
  /// clamps against that product, not the lane count.
  size_t Shards = 0;
  /// End-to-end wall-clock nanoseconds, begin() to finish().
  uint64_t WallNanos = 0;
  /// Nanoseconds the ingest thread spent drawing sampling decisions and (in
  /// parallel mode) handing batches off to the workers. In sequential mode
  /// this is pure sampling cost; in parallel mode it also absorbs
  /// back-pressure stalls when the slowest lane falls behind.
  uint64_t IngestNanos = 0;
  /// Merged span profile (empty unless SessionConfig::ProfilingEnabled).
  /// The tree's shape, counts and counters are deterministic — identical
  /// across worker and shard counts — and the same single measurements
  /// feed the legacy fields: session/ingest's nanos are IngestNanos,
  /// session/analyze/<engine>'s nanos are that lane's WallNanos. Strip
  /// timing (\ref stripTiming) before comparing runs.
  prof::Report Profile;

  /// Lane lookup by engine name; nullptr if absent.
  const EngineRun *find(const std::string &Engine) const;

  /// Memberwise equality, including the nondeterministic timing fields;
  /// strip timing first (\ref stripTiming) to compare runs for determinism.
  bool operator==(const SessionResult &O) const = default;
};

/// Returns \p R with every execution-shape field zeroed: the wall-clock
/// fields (WallNanos, IngestNanos, per-lane WallNanos, every nanosecond in
/// the Profile tree) and the NumWorkers and Shards echoes. Two runs of an
/// identically configured session are guaranteed byte-identical after
/// stripping, for any worker count *and* any shard count — the determinism
/// contract the tests enforce.
SessionResult stripTiming(SessionResult R);

/// Builder-style analysis pipeline. Configure (engines, sampling), then
/// either hand it a whole source (\ref run, \ref runFile) — one traversal,
/// however many lanes — or drive it incrementally with
/// \ref begin / \ref process / \ref finish.
///
/// The ingest side is single-threaded: callers feeding events from several
/// threads serialize through \ref SessionHooks. With
/// SessionConfig::NumWorkers > 0 the detector work runs on worker threads
/// behind a bounded hand-off ring; with SessionConfig::Shards >= 2 each
/// engine lane is additionally split into per-shard detectors partitioning
/// the variable space (N lanes x S shards schedulable drives). Every
/// detector instance is still driven by exactly one thread in trace order,
/// so no detector state is ever shared.
class AnalysisSession {
public:
  AnalysisSession(); // Out of line: ParallelExecutor is incomplete here.
  explicit AnalysisSession(SessionConfig C);
  /// Joins any still-running lane workers (a session abandoned without
  /// finish() must not leak threads).
  ~AnalysisSession();

  // -- Builder ----------------------------------------------------------
  AnalysisSession &configure(SessionConfig C);
  AnalysisSession &addEngine(EngineKind K);
  AnalysisSession &addEngines(std::span<const EngineKind> Kinds);
  /// Adds a caller-owned detector lane (legacy interop: rapid::run routes
  /// through this). The detector must outlive the run and is single-use.
  AnalysisSession &addDetector(Detector &D);
  /// Replaces the config-made sampler with a caller-owned one (borrowed) or
  /// a session-owned one. Decisions are drawn once per access event and
  /// shared by every lane.
  AnalysisSession &withSampler(Sampler &S);
  AnalysisSession &withSampler(std::unique_ptr<Sampler> S);

  const SessionConfig &config() const { return Cfg; }

  // -- Incremental ingestion -------------------------------------------
  /// Materializes the lanes and the sampler. The thread-universe size is
  /// Config.NumThreads when nonzero (an explicit override always wins),
  /// else \p NumThreads (the source-derived size), else Config.MaxThreads
  /// (the live-hook fallback). Fails if already active or if no lane is
  /// configured.
  bool begin(size_t NumThreads = 0, std::string *Error = nullptr);
  bool active() const { return Active; }
  /// Thread-universe size of the active run (0 when inactive).
  size_t numThreads() const { return Active ? RunThreads : 0; }

  /// Batched hot path: draws the sampling decision for every access in
  /// \p Batch once, then feeds the batch to every lane.
  void process(std::span<const Event> Batch);
  /// Compatibility shim for per-event producers. With NumWorkers > 0 each
  /// call pays a full ring hand-off for a one-event batch — correct, but
  /// far slower than sequential mode; per-event sources (SessionHooks
  /// included) should keep NumWorkers = 0 or batch upstream.
  void process(const Event &E) { process(std::span<const Event>(&E, 1)); }

  /// Tears down the run and returns the per-lane results.
  SessionResult finish();

  // -- One-shot sources (each is a single traversal) -------------------
  /// In-memory source. Returns an empty result if begin() would fail (no
  /// lanes configured, or the session is already active).
  SessionResult run(const Trace &T);
  /// Streamed source: binary traces are decoded incrementally in
  /// Config.BatchSize chunks (the whole trace is never materialized); text
  /// traces, whose header carries no universe sizes, are loaded in-memory
  /// first. Returns false on malformed input or a begin() failure.
  bool run(std::istream &Is, SessionResult &Out, std::string *Error = nullptr);
  /// Streamed source from a file, with format auto-detection.
  bool runFile(const std::string &Path, SessionResult &Out,
               std::string *Error = nullptr);

  // -- Self-profiling ---------------------------------------------------
  /// The last run's profiler (timelines for prof::toChromeTrace), alive
  /// until the next begin(). Null unless Config.ProfilingEnabled.
  prof::Profiler *profiler() { return Prof.get(); }
  /// Transfers ownership of the profiler (e.g. to outlive the session for
  /// trace export). The next profiled begin() makes a fresh one.
  std::unique_ptr<prof::Profiler> takeProfiler() { return std::move(Prof); }

private:
  /// One schedulable detector drive: an unsharded lane contributes one
  /// unit, a sharded lane one unit per shard. Units are what the executor
  /// distributes over workers — N lanes x S shards flatten into N*S units,
  /// so Shards composes with NumWorkers with no second fan-out layer.
  struct Unit {
    Detector *D = nullptr;
    uint64_t Nanos = 0;
    /// Differential-harness axis (SessionConfig::PerEventDispatch): route
    /// this unit through the per-event reference loop instead of the
    /// engine's devirtualized batch override.
    bool PerEvent = false;
    /// Profiling (null when disabled): the driving thread's tree and this
    /// unit's session/analyze/<engine> node in it, assigned by whichever
    /// thread owns the unit (ingest thread in sequential mode, the owning
    /// worker in parallel mode).
    prof::Tree *PT = nullptr;
    prof::NodeId PNode = 0;
    /// Only the lane's primary drive (shard 0 / unsharded) bumps the span
    /// count; other shards contribute nanos only — that keeps the merged
    /// count equal to the batch count at every shard count.
    bool CountsProfile = false;
    /// Engine name for interning PNode (workers intern lazily at startup).
    std::string ProfLabel;

    void feed(std::span<const Event> Events, std::span<const uint8_t> Ds) {
      if (PerEvent)
        D->processBatchGeneric(Events, Ds);
      else
        D->processBatch(Events, Ds);
    }
  };

  /// One reported detector lane (one EngineRun): its detectors (one, or
  /// one per shard) plus the [FirstUnit, FirstUnit+NumUnits) slice of
  /// \ref Units that drives them.
  struct Lane {
    /// Session-owned detectors; empty for a borrowed (addDetector) lane.
    /// Borrowed lanes never shard: the caller reads races() off their own
    /// detector, which must therefore see the full variable space.
    std::vector<std::unique_ptr<Detector>> Owned;
    Detector *Borrowed = nullptr;
    size_t FirstUnit = 0;
    size_t NumUnits = 1;
    /// Shard count of this lane (0 = unsharded).
    size_t Shards = 0;

    /// The result-bearing detector: shard 0 (whose sink feeds the merge
    /// first) or the single unsharded/borrowed detector.
    Detector *primary() const {
      return Borrowed ? Borrowed : Owned.front().get();
    }
  };

  /// The parallel engine (defined in AnalysisSession.cpp): a bounded
  /// single-producer broadcast ring plus one thread per worker, each worker
  /// owning a fixed subset of units.
  class ParallelExecutor;

  /// Shared driver behind run(Trace) and the text-stream fallback:
  /// begin + batched feed + finish, propagating begin() failures.
  bool runLoaded(const Trace &T, SessionResult &Out, std::string *Error);

  SessionConfig Cfg;
  std::vector<Detector *> BorrowedDetectors;
  Sampler *BorrowedSampler = nullptr;
  std::unique_ptr<Sampler> OwnedSampler;

  // Active-run state.
  bool Active = false;
  /// Set while feeding from a source that outlives the run (an in-memory
  /// Trace): parallel hand-off then ships spans of the caller's memory
  /// instead of copying each batch into the ring.
  bool StableSource = false;
  std::vector<Lane> Lanes;
  std::vector<Unit> Units;
  std::unique_ptr<ParallelExecutor> Par;
  Sampler *S = nullptr;
  std::vector<uint8_t> Decisions;
  uint64_t SampleSize = 0;
  uint64_t EventsProcessed = 0;
  uint64_t IngestNanos = 0;
  size_t RunThreads = 0;
  size_t RunWorkers = 0;
  uint64_t StartNanos = 0;

  // Self-profiling state (all null/0 unless Cfg.ProfilingEnabled). The
  // profiler outlives finish() so callers can export the timeline; a new
  // begin() replaces it.
  std::unique_ptr<prof::Profiler> Prof;
  prof::Tree *IngestTree = nullptr;
  prof::NodeId SessionNode = 0;
  prof::NodeId IngestNode = 0;
  prof::NodeId DecodeNode = 0;
  prof::NodeId FinishNode = 0;
};

/// Live event source: translates instrumentation hooks (the rt::Runtime
/// hook vocabulary) into session events, serializing concurrent callers
/// through one mutex. This is deliberately the cheap-and-correct adapter —
/// the contended-performance path remains rt::Runtime; SessionHooks is for
/// feeding the offline engines from a live program or simulator. Emits one
/// event per hook, so pair it with a sequential session (NumWorkers = 0);
/// see the per-event process() shim's note.
class SessionHooks {
public:
  /// The session must already be begun (with capacity for every thread id
  /// that will register).
  explicit SessionHooks(AnalysisSession &Session) : Session(Session) {}

  /// Dense thread ids; 0 is pre-registered as the main thread. Asserts
  /// that the id stays within the session's thread universe (mirroring
  /// rt::Runtime::registerThread).
  ThreadId registerThread();
  SyncId registerSync();

  void onRead(ThreadId T, VarId X);
  void onWrite(ThreadId T, VarId X);
  void onAcquire(ThreadId T, SyncId L);
  void onRelease(ThreadId T, SyncId L);
  void onFork(ThreadId Parent, ThreadId Child);
  void onJoin(ThreadId Parent, ThreadId Child);
  void onReleaseStore(ThreadId T, SyncId Sy);
  void onReleaseJoin(ThreadId T, SyncId Sy);
  void onAcquireLoad(ThreadId T, SyncId Sy);

private:
  void emit(const Event &E);

  AnalysisSession &Session;
  std::mutex M;
  ThreadId NextThread = 1;
  SyncId NextSync = 0;
};

} // namespace api
} // namespace sampletrack

#endif // SAMPLETRACK_API_ANALYSISSESSION_H
