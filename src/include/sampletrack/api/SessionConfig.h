//===- sampletrack/api/SessionConfig.h - Pipeline configuration -*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One configuration record for the whole analysis pipeline. SessionConfig
/// subsumes the knobs that used to be scattered across rapid::runEngine
/// (rate/seed), rt::Config (clock size, shadow table geometry, recording)
/// and bench/BenchCommon.h (engine sets), so an AnalysisSession, an online
/// Runtime and a bench harness can all be driven from the same record.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_API_SESSIONCONFIG_H
#define SAMPLETRACK_API_SESSIONCONFIG_H

#include "sampletrack/detectors/DetectorFactory.h"
#include "sampletrack/runtime/Runtime.h"
#include "sampletrack/sampling/Sampler.h"

#include <memory>
#include <vector>

namespace sampletrack {
namespace api {

/// Which sampling strategy the session instantiates (Section 3's Sampling
/// Problem). All engines of one session share one decision stream, so they
/// see the identical sample set S (appendix A.1's apples-to-apples rule).
enum class SamplerKind : uint8_t {
  Always,    ///< Every access is in S (full detection).
  Never,     ///< Empty S; isolates streaming overhead.
  Bernoulli, ///< Independent coin per access at SamplingRate (the paper's
             ///< strategy). A rate >= 1.0 degrades to Always so runs stay
             ///< deterministic, mirroring rapid::runEngine.
  Periodic,  ///< Every SamplePeriod-th access (deterministic; tests).
  Marked,    ///< Replay the Marked bits carried by the trace.
};

/// Printable name ("always", "bernoulli", ...).
const char *samplerKindName(SamplerKind K);

/// Configuration of an analysis pipeline: which engines run, how the sample
/// set is chosen, and how the (optional) online runtime is shaped.
struct SessionConfig {
  /// Engines fanned out over the event stream, in presentation order.
  std::vector<EngineKind> Engines;

  // -- Sampling ---------------------------------------------------------
  SamplerKind Sampling = SamplerKind::Bernoulli;
  /// Bernoulli rate (fraction of accesses in S).
  double SamplingRate = 0.03;
  /// Seed for the Bernoulli decision stream.
  uint64_t Seed = 1;
  /// Period for SamplerKind::Periodic.
  uint64_t SamplePeriod = 32;

  // -- Ingestion --------------------------------------------------------
  /// Events decoded per batch when streaming from a file/istream source.
  size_t BatchSize = 4096;
  /// Detector-lane worker threads. 0 runs every lane inline on the ingest
  /// thread (the classic sequential mode); N > 0 fans batches out to
  /// min(N, #lanes) workers over a bounded hand-off ring, each worker
  /// owning a fixed subset of lanes. The sampler always runs on the ingest
  /// thread and its decision stream is shipped alongside each batch, so
  /// every lane sees the identical event + decision sequence regardless of
  /// the worker count: results are bit-identical to sequential mode by
  /// construction (only wall-clock timing fields differ).
  size_t NumWorkers = 0;
  /// Intra-engine sharding: partition each engine lane's variable shadow
  /// state into S detectors by VarId % S. Access events are analyzed by
  /// the owning shard only; sync events are replicated into every shard
  /// (the per-thread clock state is lightweight, so replication beats
  /// cross-shard coordination); per-shard race sinks and metrics merge
  /// back into one EngineRun. 0 or 1 = unsharded. Results are
  /// bit-identical to unsharded runs by construction — signature sets,
  /// metrics, racesTruncated, everything but the timing/shape echoes.
  /// Composes with NumWorkers: N lanes x S shards yield N*S schedulable
  /// units, so a *single* engine on a huge trace finally scales past one
  /// core (the fig5b plateau ROADMAP item 1 calls out). Sharding pays
  /// when access work dominates (high sampling rates / full detection);
  /// at very low rates the replicated sync work caps the win.
  size_t Shards = 0;
  /// Thread-universe size for detector construction. 0 means "derive from
  /// the source" (trace header or Trace::numThreads); live-hook sessions
  /// fall back to MaxThreads.
  size_t NumThreads = 0;

  // -- Hot-path toggles (differential-harness axes) ---------------------
  /// Serve clock-snapshot buffers from the per-detector SnapshotPool (the
  /// zero-allocation copy-on-write path). Off = plain heap allocation per
  /// copy. Results are bit-identical either way; only Metrics::PoolHits
  /// (and allocator traffic) moves. Also forwarded to the online runtime
  /// via \ref runtimeConfig.
  bool PoolingEnabled = true;
  /// Drive lanes through the generic per-event reference loop instead of
  /// the engines' devirtualized processBatch overrides. Bit-identical and
  /// slower; exists so the differential harness can prove the batch paths
  /// equivalent.
  bool PerEventDispatch = false;

  // -- Race triage (the warehouse workflow) -----------------------------
  /// Distinct-signature capacity of every lane's race sink (0 = the
  /// detector default, ~1M). Duplicate declarations dedup and never
  /// truncate; only exceeding this many *distinct* signatures sets
  /// racesTruncated. Also forwarded to the online runtime's per-thread
  /// sinks via \ref runtimeConfig.
  size_t TriageCapacity = 0;
  /// Cross-run warehouse file for api::runTriage: loaded (if present)
  /// before the run's summary is merged, saved after. Empty disables
  /// persistence (the merge still classifies against an empty store).
  std::string TriageStorePath;
  /// Optional suppression list for api::runTriage: one hex race signature
  /// per line, '#' comments. Suppressed signatures never surface as new.
  std::string SuppressionFile;

  // -- Online runtime shape (subsumes rt::Config) -----------------------
  /// Fixed vector-clock size for the online runtime, and the live-hook
  /// thread capacity when NumThreads is 0.
  size_t MaxThreads = 64;
  size_t ShadowCells = 1 << 16;
  size_t ShadowShards = 256;
  /// Record online hooks as an offline trace for record/replay triage.
  bool RecordTrace = false;

  // -- Self-profiling ---------------------------------------------------
  /// Build the hierarchical span profile (sampletrack/prof) while the
  /// session runs: per-phase and per-engine counts/nanos land in
  /// SessionResult::Profile (deterministic modulo nanos across worker and
  /// shard counts), and the session's profiler is exposed for chrome-trace
  /// export. Off (the default) costs one pointer test per batch; analysis
  /// results are bit-identical either way. Also forwarded to the online
  /// runtime via \ref runtimeConfig.
  bool ProfilingEnabled = false;

  /// Instantiates the configured sampling strategy. Each call returns a
  /// fresh sampler whose decision stream starts over (so two sessions with
  /// equal configs see identical sample sets).
  std::unique_ptr<Sampler> makeSampler() const;

  /// Derives the rt::Runtime configuration for online mode \p M from the
  /// shared knobs (rate, seed, clock size, shadow geometry, recording).
  rt::Config runtimeConfig(rt::Mode M) const;
};

} // namespace api
} // namespace sampletrack

#endif // SAMPLETRACK_API_SESSIONCONFIG_H
