//===- sampletrack/api/Exploration.h - Schedule-space analysis -*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The bridge between the schedule explorer and the analysis pipeline:
/// \ref runExploration enumerates interleavings of an explore::Workload,
/// fans each one through a full api::AnalysisSession (every configured
/// engine, the shared sample set, the parallel lanes if NumWorkers is set),
/// cross-checks every engine's deduplicated race-signature set against the
/// HBClosureOracle's dedupDeclaredRaces on that very schedule, and
/// aggregates the per-schedule verdicts into an explore::ExploreReport.
///
/// \code
///   explore::Workload W = explore::Workload::fromTrace(Recorded);
///   api::SessionConfig Cfg;            // engines, sampling, workers
///   explore::ExploreConfig EC;         // mode, seed, budget
///   explore::ExploreReport R = api::runExploration(Cfg, W, EC);
///   assert(R.AllAgreed);               // engines == oracle, per schedule
///   std::puts(explore::toJson(R).c_str());
/// \endcode
///
/// Per-schedule sampling: the session config's sampler is instantiated
/// fresh for each schedule and its decisions are frozen into the trace's
/// Marked bits before analysis, so the engines and the oracle provably see
/// the same sample set S (the lanes then run with SamplerKind::Marked).
///
/// Per-engine oracle references (what "agreed" means):
///  - Djit+ — event-exact match of dedupDeclaredRaces(declaredRaces(false)).
///  - FT — same racy-location set as that reference (FastTrack's epochs
///    declare at the same locations, not necessarily the same events).
///  - ST / SU / SO / SO-noepoch — event-exact match of
///    dedupDeclaredRaces(declaredRaces(true)), Lemma 4's semantics.
///  - TC-full — the sampled reference, checked only on schedules without
///    non-mutex atomics (its conservative atomic handling is documented to
///    diverge there); unchecked schedules don't count toward agreement.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_API_EXPLORATION_H
#define SAMPLETRACK_API_EXPLORATION_H

#include "sampletrack/api/SessionConfig.h"
#include "sampletrack/explore/Coverage.h"
#include "sampletrack/prof/Profiler.h"

namespace sampletrack {
namespace api {

/// Explores \p W's schedule space under \p EC and analyzes every emitted
/// schedule with a session configured by \p Cfg (an empty Cfg.Engines runs
/// the paper's six: Djit+, FT, ST, SU, SO, SO-noepoch). Deterministic in
/// (Cfg, W, EC), including the report's byte-level JSON rendering.
///
/// When \p Prof is non-null the exploration self-profiles into a fresh
/// "explore" tree there: per-schedule enumerate (scheduler step, trace
/// materialization, sample freezing) / analyze (the full session) / oracle
/// (HB closure plus the agreement checks) spans. The report itself never
/// carries timing, so profiling cannot perturb its bytes; the per-schedule
/// sessions always run with profiling off.
explore::ExploreReport runExploration(const SessionConfig &Cfg,
                                      const explore::Workload &W,
                                      const explore::ExploreConfig &EC,
                                      prof::Profiler *Prof = nullptr);

} // namespace api
} // namespace sampletrack

#endif // SAMPLETRACK_API_EXPLORATION_H
