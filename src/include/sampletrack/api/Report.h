//===- sampletrack/api/Report.h - Session result reporters -----*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machine-readable renderings of a SessionResult: a JSON document with the
/// full per-engine metrics (including distinctRaces and the racesTruncated
/// flag, so consumers can tell a deduplicated run from a capped one), a
/// flat CSV with one row per engine for spreadsheet/plotting pipelines, a
/// SARIF 2.1.0 export of the run's deduplicated races, and the
/// \ref runTriage helper driving the cross-run warehouse workflow from the
/// session config's triage knobs.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_API_REPORT_H
#define SAMPLETRACK_API_REPORT_H

#include "sampletrack/api/AnalysisSession.h"
#include "sampletrack/triage/TriageStore.h"

#include <string>

namespace sampletrack {
namespace api {

/// Renders \p R as a pretty-printed JSON document. \p MaxRaces bounds the
/// number of race reports embedded per engine (0 = none; counts and the
/// truncation flag are always present).
std::string toJson(const SessionResult &R, size_t MaxRaces = 0);

/// Renders \p R as CSV: a header line, then one row per engine.
std::string toCsv(const SessionResult &R);

/// Renders the run's self-profile (\ref SessionResult::Profile) as CSV:
/// "path,count,inclusiveNanos,exclusiveNanos", one row per span in
/// pre-order. Header-only when profiling was disabled.
std::string toProfileCsv(const SessionResult &R);

/// Renders the run's deduplicated race set (\ref SessionResult::Triage) as
/// a SARIF 2.1.0 log — the single-run form of triage::toSarif, for
/// pipelines that upload per-run scans and let the SARIF consumer dedup by
/// the embedded raceSignature fingerprint.
std::string toSarif(const SessionResult &R);

/// Result of one \ref runTriage step: the (possibly persisted) warehouse
/// after the merge, plus the merge classification.
struct TriageOutcome {
  triage::TriageStore Store;
  triage::TriageStore::MergeResult Merge;
};

/// The cross-run warehouse step, driven by the config's triage knobs:
/// loads Cfg.TriageStorePath if it exists (empty path = in-memory only),
/// applies Cfg.SuppressionFile if set, merges R.Triage as one run, and
/// saves the store back. Returns false (filling \p Error) on a corrupt
/// store, an unreadable suppression file, or a failed save.
bool runTriage(const SessionConfig &Cfg, const SessionResult &R,
               TriageOutcome &Out, std::string *Error = nullptr);

/// Writes \p Content to \p Path. Returns false on I/O failure.
bool writeFile(const std::string &Path, const std::string &Content);

} // namespace api
} // namespace sampletrack

#endif // SAMPLETRACK_API_REPORT_H
