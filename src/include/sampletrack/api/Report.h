//===- sampletrack/api/Report.h - Session result reporters -----*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machine-readable renderings of a SessionResult: a JSON document with the
/// full per-engine metrics (including the racesTruncated flag, so consumers
/// can tell a complete race list from a capped one), and a flat CSV with
/// one row per engine for spreadsheet/plotting pipelines.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_API_REPORT_H
#define SAMPLETRACK_API_REPORT_H

#include "sampletrack/api/AnalysisSession.h"

#include <string>

namespace sampletrack {
namespace api {

/// Renders \p R as a pretty-printed JSON document. \p MaxRaces bounds the
/// number of race reports embedded per engine (0 = none; counts and the
/// truncation flag are always present).
std::string toJson(const SessionResult &R, size_t MaxRaces = 0);

/// Renders \p R as CSV: a header line, then one row per engine.
std::string toCsv(const SessionResult &R);

/// Writes \p Content to \p Path. Returns false on I/O failure.
bool writeFile(const std::string &Path, const std::string &Content);

} // namespace api
} // namespace sampletrack

#endif // SAMPLETRACK_API_REPORT_H
