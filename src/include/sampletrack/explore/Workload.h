//===- sampletrack/explore/Workload.h - Schedulable programs ---*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The unit of schedule exploration: a concurrent program factored into one
/// straight-line operation sequence per thread. Where a \ref Trace is one
/// *interleaving* (a total order of events), an explore::Workload is the
/// program that interleaving came from — the per-thread projections — and
/// the explore::Scheduler re-interleaves it, emitting each schedule as a
/// standard Trace so every existing consumer (the engines, the oracle,
/// api::AnalysisSession, triage) runs on it unmodified.
///
/// Every operation is a schedule point: the scheduler may switch threads
/// before any of them, subject to the enabledness rules (a thread blocks on
/// acquiring a held lock, on joining an unfinished thread, and before its
/// own fork executes; atomics never block). Projecting a well-formed Trace
/// with \ref Workload::fromTrace yields a workload whose schedule space
/// contains the original interleaving — record one execution online
/// (rt::Config::RecordTrace), project it, and explore the neighbors the
/// scheduler can reach.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_EXPLORE_WORKLOAD_H
#define SAMPLETRACK_EXPLORE_WORKLOAD_H

#include "sampletrack/trace/Trace.h"

#include <string>
#include <vector>

namespace sampletrack {
namespace explore {

/// One schedule-point operation of a thread program: an Event minus the
/// thread id (implied by the owning program) and the Marked bit (sampling
/// is decided per schedule, after materialization).
struct Op {
  OpKind Kind = OpKind::Read;
  /// Overloaded like Event::Target: VarId for accesses, SyncId for
  /// lock/atomic operations, ThreadId for fork/join.
  uint64_t Target = 0;

  bool operator==(const Op &O) const {
    return Kind == O.Kind && Target == O.Target;
  }
};

/// A concurrent program as the scheduler sees it: dense thread/sync/var
/// universes and one operation sequence per thread. Build it with the
/// Trace-style appenders, or project an existing execution with
/// \ref fromTrace.
class Workload {
public:
  Workload() = default;

  /// Adds an (initially empty) thread program and returns its id.
  ThreadId addThread();

  size_t numThreads() const { return Programs.size(); }
  size_t numSyncs() const { return NumSyncs; }
  size_t numVars() const { return NumVars; }
  /// Total operations across all programs (the length of every complete
  /// schedule).
  size_t numOps() const;

  const std::vector<Op> &program(ThreadId T) const { return Programs[T]; }

  // Appenders mirror the Trace builders; all grow the universes as needed.
  void read(ThreadId T, VarId X) { append(T, {OpKind::Read, X}); }
  void write(ThreadId T, VarId X) { append(T, {OpKind::Write, X}); }
  void acquire(ThreadId T, SyncId L) { append(T, {OpKind::Acquire, L}); }
  void release(ThreadId T, SyncId L) { append(T, {OpKind::Release, L}); }
  void fork(ThreadId Parent, ThreadId Child) {
    append(Parent, {OpKind::Fork, Child});
  }
  void join(ThreadId Parent, ThreadId Child) {
    append(Parent, {OpKind::Join, Child});
  }
  void releaseStore(ThreadId T, SyncId S) {
    append(T, {OpKind::ReleaseStore, S});
  }
  void releaseJoin(ThreadId T, SyncId S) {
    append(T, {OpKind::ReleaseJoin, S});
  }
  void acquireLoad(ThreadId T, SyncId S) {
    append(T, {OpKind::AcquireLoad, S});
  }

  /// Appends one raw operation to thread \p T's program, growing the
  /// universes (threads, syncs, vars) to cover its ids.
  void append(ThreadId T, Op O);

  /// Projects an execution onto per-thread programs: Events[i] with tid t
  /// becomes the next operation of program t, in stream order; universes
  /// carry over; Marked bits are dropped. The original interleaving is the
  /// schedule whose choice sequence is the trace's own tid sequence.
  static Workload fromTrace(const Trace &T);

  /// Per-thread ids the scheduler needs to know must not run before their
  /// fork: Out[t] is true iff some program contains fork(t).
  std::vector<uint8_t> forkTargets() const;

  /// True iff any program contains an operation that can block or gate
  /// enabledness (Acquire, Join) or that gates another thread's start
  /// (Fork). Workloads without blocking structure have exactly
  /// \ref unconstrainedInterleavingCount complete schedules.
  bool hasBlockingOps() const;

  /// True iff any program contains a non-mutex synchronization operation
  /// (release-store / release-join / acquire-load).
  bool hasAtomicOps() const;

  /// The multinomial coefficient numOps()! / prod(len(program)!): the exact
  /// number of distinct interleavings when \ref hasBlockingOps is false
  /// (and an upper bound otherwise). Saturates at UINT64_MAX. Note the
  /// empty workload counts 1 here (the empty product) while the scheduler
  /// emits no schedules for it — there is nothing to schedule.
  uint64_t unconstrainedInterleavingCount() const;

  /// Checks the static half of schedulability: ids in range, per-thread
  /// lock discipline (a thread never acquires a lock it already holds in
  /// program order, never releases one it does not), no self-fork/join, and
  /// no thread forked twice. Dynamic properties (deadlock freedom, fork
  /// cycles) are the scheduler's to detect per schedule. On failure returns
  /// false and, if \p Error is nonnull, stores a diagnostic.
  bool validate(std::string *Error = nullptr) const;

  bool operator==(const Workload &O) const {
    return Programs == O.Programs && NumSyncs == O.NumSyncs &&
           NumVars == O.NumVars;
  }

private:
  std::vector<std::vector<Op>> Programs;
  size_t NumSyncs = 0;
  size_t NumVars = 0;
};

} // namespace explore
} // namespace sampletrack

#endif // SAMPLETRACK_EXPLORE_WORKLOAD_H
