//===- sampletrack/explore/Coverage.h - Exploration coverage ----*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The coverage report aggregated over one exploration run: how many
/// distinct schedules were analyzed, how many exposed races (by the exact
/// HBClosureOracle), how each engine's deduplicated race-signature set
/// compared against the oracle's per schedule, and the per-engine detection
/// rate — "how many schedules expose this race" as a measured quantity.
///
/// Reports are pure functions of (Workload, SessionConfig, ExploreConfig):
/// no timing fields, no pointers, no iteration-order dependence. The same
/// seed reproduces the same report byte for byte, including its
/// \ref toJson rendering — the determinism contract ExploreTest enforces.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_EXPLORE_COVERAGE_H
#define SAMPLETRACK_EXPLORE_COVERAGE_H

#include "sampletrack/explore/Scheduler.h"

#include <string>
#include <vector>

namespace sampletrack {
namespace explore {

/// One engine's record over the whole exploration.
struct EngineCoverage {
  /// Engine name as used in the paper ("Djit+", "FT", "ST", ...).
  std::string Engine;
  /// Schedules on which this engine was cross-checked against its oracle
  /// reference. Equal to the report's SchedulesRun except for engines
  /// without an exact reference on some trace shapes (the tree-clock
  /// ablation is only checked on atomics-free schedules).
  uint64_t SchedulesChecked = 0;
  /// Checked schedules whose deduplicated signature set matched the oracle.
  uint64_t SchedulesAgreed = 0;
  /// Checked schedules on which the engine's oracle reference declared at
  /// least one race.
  uint64_t OracleRacySchedules = 0;
  /// Of those, schedules where the engine declared at least one race too.
  uint64_t DetectedRacySchedules = 0;
  /// Distinct race signatures this engine found, unioned across all
  /// schedules (the warehouse view of the whole exploration).
  uint64_t DistinctSignatures = 0;
  /// DetectedRacySchedules / OracleRacySchedules (1.0 when the oracle
  /// found nothing anywhere): the per-engine detection rate vs oracle.
  double DetectionRate = 1.0;

  bool operator==(const EngineCoverage &O) const = default;
};

/// One schedule's outcome (kept per schedule so "which interleaving exposed
/// it" is answerable from the report alone).
struct ScheduleOutcome {
  /// Schedule identity: FNV-1a of the thread-choice sequence.
  uint64_t Hash = 0;
  /// Events in the materialized trace (== Workload::numOps()).
  uint64_t Events = 0;
  /// Distinct signatures of the oracle's deduplicated *marked* declaration
  /// list (the sampling engines' reference) on this schedule.
  uint64_t OracleSignatures = 0;
  /// Same for the unrestricted list (the full engines' reference).
  uint64_t OracleFullSignatures = 0;
  /// True iff every engine checked on this schedule matched its reference.
  bool Agreed = true;

  bool operator==(const ScheduleOutcome &O) const = default;
};

/// Aggregate coverage of one exploration run.
struct ExploreReport {
  /// exploreModeName of the mode that ran.
  std::string Mode;
  uint64_t Seed = 0;
  /// ExploreConfig::MaxSchedules as configured (0 = unbounded exhaustive).
  uint64_t SchedulesRequested = 0;
  /// Distinct schedules actually analyzed.
  uint64_t SchedulesRun = 0;
  /// Walks (or DFS branches) that dead-ended with unfinished threads.
  uint64_t DeadlockedSchedules = 0;
  /// Walks discarded because the interleaving was already analyzed.
  uint64_t DuplicateSchedules = 0;
  /// Total events fanned through the analysis sessions.
  uint64_t EventsAnalyzed = 0;
  /// Union of the oracle's marked-declaration signatures over all
  /// schedules.
  uint64_t OracleDistinctSignatures = 0;
  /// Union of the oracle's unrestricted-declaration signatures.
  uint64_t OracleFullDistinctSignatures = 0;
  /// Schedules on which the oracle (unrestricted) declared >= 1 race — the
  /// numerator of "how many schedules expose a race".
  uint64_t SchedulesWithOracleRaces = 0;
  /// True iff every engine agreed with its oracle reference on every
  /// checked schedule — the exploration smoke gate CI asserts.
  bool AllAgreed = true;
  /// Per-engine coverage, in the session's lane order.
  std::vector<EngineCoverage> Engines;
  /// Per-schedule outcomes, in emission order.
  std::vector<ScheduleOutcome> Schedules;

  bool operator==(const ExploreReport &O) const = default;
};

/// Renders the report as a pretty-printed JSON document. Deterministic:
/// equal reports render to equal bytes.
std::string toJson(const ExploreReport &R);

} // namespace explore
} // namespace sampletrack

#endif // SAMPLETRACK_EXPLORE_COVERAGE_H
