//===- sampletrack/explore/Scheduler.h - Interleaving enumeration -*- C++ -*-=//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deterministic cooperative scheduler behind sampletrack::explore: it
/// takes a \ref Workload and enumerates bounded interleavings, each emitted
/// as a choice sequence (one ThreadId per step) that \ref
/// Scheduler::materialize renders into a standard \ref Trace.
///
/// Three exploration strategies, all fully deterministic in the config:
///
///  - Random: each attempt repeatedly picks a uniformly random thread among
///    the enabled ones (seeded per attempt, so attempt k is reproducible in
///    isolation).
///  - Pct: PCT-style priority walks (Burckhardt et al.): each attempt draws
///    a random thread priority order plus PriorityChangePoints random step
///    depths; at every step the highest-priority enabled thread runs, and
///    crossing a change point demotes the running thread below everyone —
///    a preemption-bounded walk that provably hits rare interleavings with
///    known probability.
///  - Exhaustive: depth-first enumeration of *every* complete interleaving
///    (in ascending thread-id order at each choice point), for small
///    thread/op counts; the closed-form count for lock-free workloads is
///    Workload::unconstrainedInterleavingCount.
///
/// Enabledness rules: a thread must have started (its fork executed, or it
/// is not fork-gated), an Acquire requires the lock free, a Join requires
/// the child program finished; atomics and accesses never block. Attempts
/// that reach a state where unfinished threads exist but none is enabled
/// are deadlocked: counted, never emitted (in exhaustive mode the DFS
/// prunes the dead branch).
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_EXPLORE_SCHEDULER_H
#define SAMPLETRACK_EXPLORE_SCHEDULER_H

#include "sampletrack/explore/Workload.h"
#include "sampletrack/support/Rng.h"

#include <memory>
#include <unordered_set>
#include <vector>

namespace sampletrack {
namespace explore {

/// Which exploration strategy the scheduler runs.
enum class ExploreMode : uint8_t { Random, Pct, Exhaustive };

/// Printable name ("random", "pct", "exhaustive").
const char *exploreModeName(ExploreMode M);

/// Exploration configuration. Everything the scheduler does is a pure
/// function of (Workload, ExploreConfig): the same config enumerates the
/// same schedule set, byte for byte.
struct ExploreConfig {
  ExploreMode Mode = ExploreMode::Random;
  /// Seed for the Random/Pct walks (ignored by Exhaustive, whose order is
  /// structural).
  uint64_t Seed = 1;
  /// Random/Pct: number of generation attempts (deadlocked or duplicate
  /// attempts consume budget, so the emitted count can be lower). Must be
  /// nonzero. Exhaustive: cap on emitted schedules, 0 = enumerate all.
  size_t MaxSchedules = 64;
  /// Pct: number of priority change points per walk (the "d - 1" of
  /// PCT's depth-d guarantee).
  size_t PriorityChangePoints = 2;
  /// Drop schedules whose choice sequence was already emitted (compared by
  /// 64-bit hash), so consumers see each distinct interleaving once.
  bool DedupSchedules = true;
};

/// One explored interleaving.
struct Schedule {
  /// Emission index (0-based, in emission order).
  size_t Index = 0;
  /// The thread executed at each step; length == Workload::numOps().
  std::vector<ThreadId> Choices;
  /// FNV-1a hash of the choice sequence — the schedule's identity for
  /// dedup and reporting.
  uint64_t Hash = 0;
};

/// Streaming schedule enumerator. Construct once, then drain with
/// \ref next; generation counters (attempts, deadlocks, duplicates) are
/// valid whenever next has returned false — or at any point midway.
class Scheduler {
public:
  Scheduler(const Workload &W, ExploreConfig C);
  ~Scheduler();

  /// Produces the next schedule. Returns false when the budget is spent
  /// (Random/Pct) or the space is exhausted (Exhaustive). A workload with
  /// no operations has nothing to schedule: next() returns false
  /// immediately in every mode (the empty interleaving is not emitted).
  bool next(Schedule &Out);

  /// Schedules emitted so far.
  uint64_t emitted() const { return Emitted; }
  /// Random/Pct generation attempts consumed so far.
  uint64_t attempts() const { return Attempts; }
  /// Attempts (or DFS branches) that dead-ended with unfinished threads.
  uint64_t deadlocked() const { return Deadlocked; }
  /// Attempts discarded because the schedule was already emitted.
  uint64_t duplicates() const { return Duplicates; }

  /// Renders a choice sequence into a Trace over the workload's universes
  /// (Marked bits all clear — sampling is a per-consumer decision).
  /// Asserts that every choice is enabled when taken.
  static Trace materialize(const Workload &W,
                           const std::vector<ThreadId> &Choices);

  /// FNV-1a over the choice sequence.
  static uint64_t hashChoices(const std::vector<ThreadId> &Choices);

private:
  struct Sim; // The enabledness state machine (Scheduler.cpp).

  bool nextRandomLike(Schedule &Out);
  bool nextExhaustive(Schedule &Out);
  /// Runs one seeded Random/Pct walk; returns false on deadlock.
  bool runWalk(uint64_t AttemptSeed, std::vector<ThreadId> &Choices);
  bool emit(std::vector<ThreadId> Choices, Schedule &Out);

  const Workload &W;
  ExploreConfig Cfg;
  uint64_t Emitted = 0;
  uint64_t Attempts = 0;
  uint64_t Deadlocked = 0;
  uint64_t Duplicates = 0;
  std::unordered_set<uint64_t> Seen;

  // Exhaustive-mode DFS state, persisted across next() calls: the current
  // partial choice sequence plus, per depth, the enabled set and the index
  // of the alternative currently taken.
  struct DfsFrame {
    std::vector<ThreadId> Enabled;
    size_t NextAlt = 0;
  };
  std::unique_ptr<Sim> DfsSim;
  std::vector<DfsFrame> DfsStack;
  std::vector<ThreadId> DfsChoices;
  bool DfsDone = false;
};

} // namespace explore
} // namespace sampletrack

#endif // SAMPLETRACK_EXPLORE_SCHEDULER_H
