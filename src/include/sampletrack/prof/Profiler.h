//===- sampletrack/prof/Profiler.h - Hierarchical self-profiler -*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A lightweight hierarchical self-profiler: nestable RAII scopes build a
/// per-thread tree of named spans (call counts, inclusive nanoseconds, user
/// counters), and \ref Profiler::report merges the per-thread trees into one
/// deterministic \ref prof::Report keyed by span *path* — the merged tree's
/// shape and counts are independent of which thread recorded which span, so
/// an AnalysisSession profile is bit-identical (modulo nanos) across worker
/// and shard counts.
///
/// Cost model:
///  - disabled (the default): call sites hold a null \ref Tree pointer, a
///    \ref Scope constructed from it is a single branch — no clock read, no
///    allocation. Compiling with -DSAMPLETRACK_PROF_DISABLED empties the
///    Scope bodies entirely for a hard zero.
///  - enabled: one steady-clock read per scope boundary plus a linear child
///    lookup on first entry (node ids are interned; hot paths pre-intern and
///    use \ref Tree::addSample to fold an already-measured duration in).
///
/// Trees are single-writer: one thread records into one tree. Reading a
/// tree while its writer is live is only safe for trees created with
/// locking enabled (\ref Profiler::Profiler(bool)) — the triaged server
/// uses that mode so /v1/stats can snapshot mid-request; batch sessions
/// read only after workers join.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_PROF_PROFILER_H
#define SAMPLETRACK_PROF_PROFILER_H

#include "sampletrack/prof/Report.h"

#include <chrono>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sampletrack {
namespace prof {

/// Monotonic clock used for every span boundary.
inline uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Index of a span node within one \ref Tree. 0 is the tree's (unnamed)
/// root; ids are stable for the tree's lifetime.
using NodeId = uint32_t;

/// One timeline instance of a span — the chrome-trace side of the data.
/// Aggregates (counts/nanos) live on the nodes; the timeline is a bounded
/// ring of individual occurrences for trace export only and takes no part
/// in \ref Report equality.
struct TimelineEvent {
  NodeId Node = 0;
  uint64_t StartNanos = 0;
  uint64_t EndNanos = 0;
};

/// One timestamped counter observation (a chrome-trace "C" track point).
struct CounterSample {
  std::string Name;
  uint64_t Nanos = 0;
  uint64_t Value = 0;
};

/// One thread's span tree. Create via \ref Profiler::makeTree; record via
/// \ref Scope (RAII) or the manual addSample/addSpan calls (for folding a
/// duration that was already measured for another purpose — one clock read,
/// two consumers).
class Tree {
public:
  /// Caps keep a long run's timeline bounded; aggregates keep counting
  /// after the timeline fills.
  static constexpr size_t MaxTimelineEvents = 1 << 15;
  static constexpr size_t MaxCounterSamples = 1 << 12;

  NodeId root() const { return 0; }

  /// Interns (finds or creates) the child of \p Parent named \p Name.
  NodeId intern(NodeId Parent, std::string_view Name);
  /// Interns a chain of children starting at the root; returns the last
  /// node. Creating a path records nothing — counts stay 0 until samples
  /// arrive — so threads can intern under a shared path (e.g.
  /// session/analyze/FT) without perturbing the merged tree's counts.
  NodeId internPath(std::initializer_list<std::string_view> Path);

  /// Scope interface: descends into the child named \p Name (interning it)
  /// and returns its id; \ref pop ascends and records the span.
  NodeId push(std::string_view Name);
  void pop(NodeId Id, uint64_t StartNanos, uint64_t EndNanos);

  /// Folds an externally measured duration into \p Id: aggregate only, no
  /// timeline event, no clock read. \p Count 0 adds nanoseconds without a
  /// call (how non-primary shard drives keep the merged tree's counts
  /// shard-count-invariant).
  void addSample(NodeId Id, uint64_t Nanos, uint64_t Count = 1);
  /// Like addSample but with endpoints, so the occurrence also lands on the
  /// export timeline (subject to the cap).
  void addSpan(NodeId Id, uint64_t StartNanos, uint64_t EndNanos,
               uint64_t Count = 1);
  /// Accumulates \p Delta into the user counter \p Name on node \p Id.
  void addCounter(NodeId Id, std::string_view Name, uint64_t Delta);
  /// addCounter plus a timestamped sample for the chrome-trace counter
  /// track.
  void counterEvent(NodeId Id, std::string_view Name, uint64_t Value);

  const std::string &name() const { return TreeName; }
  const std::vector<TimelineEvent> &timeline() const { return Timeline; }
  const std::vector<CounterSample> &counterSamples() const {
    return CounterTrack;
  }
  /// Resolves a node's name (export helper).
  const std::string &nodeName(NodeId Id) const { return Nodes[Id].Name; }

private:
  friend class Profiler;
  Tree(std::string Name, bool Locked);

  struct NodeData {
    std::string Name;
    NodeId Parent = 0;
    std::vector<NodeId> Children;
    uint64_t Count = 0;
    uint64_t Nanos = 0;
    /// Unsorted accumulation order; report() sorts by name.
    std::vector<std::pair<std::string, uint64_t>> Counters;
  };

  NodeId internLocked(NodeId Parent, std::string_view Name);
  void mergeInto(ReportMergeNode &Root) const;

  std::string TreeName;
  bool Locked;
  mutable std::mutex Mu;
  std::vector<NodeData> Nodes;
  std::vector<NodeId> Stack;
  std::vector<TimelineEvent> Timeline;
  std::vector<CounterSample> CounterTrack;
  size_t TimelineDropped = 0;
};

/// RAII span: enters on construction, records on destruction. A null tree
/// (profiling disabled) costs one branch.
class Scope {
public:
  Scope() = default;
  Scope(Tree *T, std::string_view Name) {
#if !defined(SAMPLETRACK_PROF_DISABLED)
    if (!T)
      return;
    this->T = T;
    Id = T->push(Name);
    Start = nowNanos();
#endif
  }
  ~Scope() { reset(); }
  Scope(const Scope &) = delete;
  Scope &operator=(const Scope &) = delete;

  /// Ends the span early (idempotent).
  void reset() {
#if !defined(SAMPLETRACK_PROF_DISABLED)
    if (!T)
      return;
    T->pop(Id, Start, nowNanos());
    T = nullptr;
#endif
  }

private:
#if !defined(SAMPLETRACK_PROF_DISABLED)
  Tree *T = nullptr;
  NodeId Id = 0;
  uint64_t Start = 0;
#endif
};

/// Owns the per-thread trees and merges them. makeTree is thread-safe; a
/// tree is then used by exactly one recording thread.
class Profiler {
public:
  /// \p LockTrees makes every tree internally locked so report() /
  /// toChromeTrace can run concurrently with recording (live servers).
  explicit Profiler(bool LockTrees = false)
      : LockTrees(LockTrees), Epoch(nowNanos()) {}

  Tree *makeTree(std::string Name);

  /// Merges every tree into one deterministic report: nodes keyed by name
  /// path, children sorted by name, counts and nanos summed across trees,
  /// exclusive = inclusive - sum(children) (saturating at 0).
  Report report() const;

  std::vector<const Tree *> trees() const;
  /// Creation time; chrome-trace timestamps are exported relative to this.
  uint64_t epochNanos() const { return Epoch; }

private:
  bool LockTrees;
  uint64_t Epoch;
  mutable std::mutex Mu;
  std::vector<std::unique_ptr<Tree>> Trees;
};

} // namespace prof
} // namespace sampletrack

#endif // SAMPLETRACK_PROF_PROFILER_H
