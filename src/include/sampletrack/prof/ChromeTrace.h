//===- sampletrack/prof/ChromeTrace.h - Trace Event Format ------*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Chrome Trace Event Format export of a \ref prof::Profiler's timelines:
/// load the output in Perfetto (https://ui.perfetto.dev) or
/// chrome://tracing. Each profiler becomes one process (pid), each of its
/// trees one thread (tid) with process_name/thread_name metadata; span
/// occurrences become complete ("X") events in microseconds and counter
/// samples become counter ("C") track points.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_PROF_CHROMETRACE_H
#define SAMPLETRACK_PROF_CHROMETRACE_H

#include <span>
#include <string>
#include <string_view>

namespace sampletrack {
namespace prof {

class Profiler;

/// One process row in the exported trace.
struct TraceSource {
  const Profiler *Prof = nullptr;
  std::string ProcessName;
};

/// Renders \p Sources as one Trace Event Format JSON document
/// ({"traceEvents": [...], "displayTimeUnit": "ms"}). Timestamps are
/// microseconds relative to the earliest source epoch.
std::string toChromeTrace(std::span<const TraceSource> Sources);

/// Single-process convenience overload.
std::string toChromeTrace(const Profiler &P,
                          std::string_view ProcessName = "sampletrack");

} // namespace prof
} // namespace sampletrack

#endif // SAMPLETRACK_PROF_CHROMETRACE_H
