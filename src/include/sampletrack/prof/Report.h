//===- sampletrack/prof/Report.h - Merged span-tree report ------*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deterministic, merged view of a \ref prof::Profiler: one tree of
/// named spans with call counts, inclusive/exclusive nanoseconds and user
/// counters, children sorted by name, counters sorted by name. Two runs of
/// the same workload produce byte-identical reports after
/// \ref prof::stripTiming, for any worker or shard count — the same
/// determinism contract api::stripTiming gives SessionResult.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_PROF_REPORT_H
#define SAMPLETRACK_PROF_REPORT_H

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace sampletrack {
namespace prof {

/// One merged span: aggregates summed over every thread tree that recorded
/// this path. Children and counters are name-sorted, so the default
/// memberwise equality is structural equality.
struct ReportNode {
  std::string Name;
  /// Times the span was entered (RAII scopes) or counted (manual samples).
  uint64_t Count = 0;
  /// Total nanoseconds inside this span, children included.
  uint64_t InclusiveNanos = 0;
  /// InclusiveNanos minus the children's InclusiveNanos, saturating at 0
  /// (parallel children can overlap a sequential parent).
  uint64_t ExclusiveNanos = 0;
  /// User counters, sorted by name.
  std::vector<std::pair<std::string, uint64_t>> Counters;
  /// Child spans, sorted by name.
  std::vector<ReportNode> Children;

  bool operator==(const ReportNode &O) const = default;
};

/// A merged profile. Root is an unnamed container; the top-level spans
/// ("session", "runtime", "explore", "request") are its children. A
/// default-constructed Report is the empty profile (profiling disabled).
struct Report {
  ReportNode Root;

  bool empty() const {
    return Root.Children.empty() && Root.Count == 0 && Root.Counters.empty();
  }
  bool operator==(const Report &O) const = default;
};

/// Returns \p R with every nanosecond field zeroed, recursively. Counts and
/// counters survive — they are the deterministic structure the tests
/// compare.
Report stripTiming(Report R);

/// Human-readable indented rendering (stable: a function of the report
/// bytes only), e.g.
///   session                 count=1  incl=1.2ms  excl=0.1ms
///     analyze               ...
std::string toText(const Report &R);

/// Flat JSON array fragment, one object per span in pre-order:
///   [{"path": "session/analyze/FT", "count": 3, "inclusiveNanos": ...,
///     "exclusiveNanos": ..., "counters": {...}}, ...]
/// Embedded by the session JSON reporter, the bench trajectory files and
/// the triaged /v1/stats endpoint.
std::string toJsonArray(const Report &R);

/// CSV rendering: header "path,count,inclusiveNanos,exclusiveNanos" plus
/// one row per span in pre-order.
std::string toCsv(const Report &R);

/// Merge workspace shared by Profiler::report and Tree (std::map keys give
/// the sorted order the report promises). Implementation detail.
struct ReportMergeNode {
  uint64_t Count = 0;
  uint64_t Nanos = 0;
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, ReportMergeNode> Children;
};

} // namespace prof
} // namespace sampletrack

#endif // SAMPLETRACK_PROF_REPORT_H
