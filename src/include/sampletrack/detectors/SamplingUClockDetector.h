//===- sampletrack/detectors/SamplingUClockDetector.h - SU -----*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The freshness-timestamp engine "SU" (Algorithm 3). Each thread and lock
/// additionally carries a U vector clock counting per-entry updates of the
/// sampling clocks (the VT timestamp, Eq. 9). Scalar freshness comparisons
/// let acquires skip joins that would not bring new information
/// (Proposition 5) and releases skip copies when the thread's clock has not
/// changed since the lock last saw it. Timestamping work drops to
/// O(|S| T (T + L)); the joins that do happen (including the
/// change-counting join that maintains U, Eq. 9) are kernel passes over
/// the source clock's active prefix.
///
/// Non-mutex synchronization follows appendix A.2: release-stores can only
/// use the skip rule when the storing thread observed the sync object's
/// current content (monotone update); release-joins mark the sync object
/// multi-source, disabling acquire-side skips until the next exclusive
/// release.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_DETECTORS_SAMPLINGUCLOCKDETECTOR_H
#define SAMPLETRACK_DETECTORS_SAMPLINGUCLOCKDETECTOR_H

#include "sampletrack/detectors/SamplingBase.h"

namespace sampletrack {

/// SU: Algorithm 3, sampling clocks plus freshness (U) clocks.
class SamplingUClockDetector final : public SamplingDetectorBase {
public:
  explicit SamplingUClockDetector(size_t NumThreads,
                                  HistoryKind Histories =
                                      HistoryKind::VectorClocks);

  std::string name() const override { return "SU"; }

  void onAcquire(ThreadId T, SyncId L) override;
  void onRelease(ThreadId T, SyncId L) override;
  void onFork(ThreadId Parent, ThreadId Child) override;
  void onJoin(ThreadId Parent, ThreadId Child) override;
  void onReleaseStore(ThreadId T, SyncId S) override;
  void onReleaseJoin(ThreadId T, SyncId S) override;
  void onAcquireLoad(ThreadId T, SyncId S) override;

  void processBatch(std::span<const Event> Events,
                    std::span<const uint8_t> Sampled) override;

  const VectorClock &threadClock(ThreadId T) const { return Threads[T].C; }
  const VectorClock &freshnessClock(ThreadId T) const { return Threads[T].U; }

protected:
  bool clockDominatesHistory(ThreadId T, const VectorClock &C) override {
    return C.leqWithOverride(Threads[T].C, T, Epochs[T]);
  }
  void snapshotEffectiveClock(ThreadId T, VectorClock &Out) override {
    Out.copyFrom(Threads[T].C);
    Out.set(T, Epochs[T]);
  }
  void publishLocalTime(ThreadId T, ClockValue Time) override {
    // Publishing the epoch is itself one entry update (Line 17 of
    // Algorithm 3).
    Threads[T].C.set(T, Time);
    Threads[T].U.bump(T);
  }
  ClockValue effectiveClockComponent(ThreadId T, ThreadId Of) override {
    return Of == T ? Epochs[T] : Threads[T].C.get(Of);
  }

private:
  struct ThreadState {
    VectorClock C, U;
  };

  struct SyncState {
    VectorClock C, U;
    /// Thread that performed the last exclusive release (LR_l), or NoThread.
    ThreadId LastReleaser = NoThread;
    /// Set by release-joins: the content blends multiple threads and the
    /// scalar freshness check no longer applies (appendix A.2).
    bool MultiSource = false;
    /// AcquiredSince[t]: thread t has imported this object's current
    /// content; its clock therefore dominates it and a release-store by t
    /// is a monotone update.
    std::vector<bool> AcquiredSince;
  };

  SyncState &syncState(SyncId S);

  /// The join path of the acquire handler (Lines 8-12 of Algorithm 3):
  /// joins U clocks, joins C clocks counting changed entries, and charges
  /// those changes to U_t(t).
  void joinFromSync(ThreadId T, SyncState &S);

  /// Full (unskippable) copy of thread state into the sync object.
  void storeToSync(ThreadId T, SyncState &S);

  /// Direct thread-to-thread edge (fork/join), always processed.
  void joinThreadFromThread(ThreadId Dst, ThreadId Src);

  std::vector<ThreadState> Threads;
  std::vector<SyncState> Syncs;
};

} // namespace sampletrack

#endif // SAMPLETRACK_DETECTORS_SAMPLINGUCLOCKDETECTOR_H
