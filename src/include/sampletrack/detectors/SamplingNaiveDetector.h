//===- sampletrack/detectors/SamplingNaiveDetector.h - ST ------*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The naive sampling engine "ST" (Algorithm 2): Djit+ specialized to the
/// sampling timestamp C_sam. Local clocks advance only at the first release
/// after a sampled event (RelAfter_S), so thread/lock clocks change at most
/// |S| times — but every synchronization event still pays a whole-clock
/// vector operation (O(T) worst case; O(active) via the high-water mark,
/// through the simd kernels). ST is the baseline the paper's SU/SO engines
/// are measured against (Fig. 5(b)).
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_DETECTORS_SAMPLINGNAIVEDETECTOR_H
#define SAMPLETRACK_DETECTORS_SAMPLINGNAIVEDETECTOR_H

#include "sampletrack/detectors/SamplingBase.h"

namespace sampletrack {

/// ST: Algorithm 2, the sampling timestamp with naive communication.
class SamplingNaiveDetector final : public SamplingDetectorBase {
public:
  explicit SamplingNaiveDetector(size_t NumThreads,
                                 HistoryKind Histories =
                                     HistoryKind::VectorClocks);

  std::string name() const override { return "ST"; }

  void onAcquire(ThreadId T, SyncId L) override;
  void onRelease(ThreadId T, SyncId L) override;
  void onFork(ThreadId Parent, ThreadId Child) override;
  void onJoin(ThreadId Parent, ThreadId Child) override;
  void onReleaseStore(ThreadId T, SyncId S) override;
  void onReleaseJoin(ThreadId T, SyncId S) override;
  void onAcquireLoad(ThreadId T, SyncId S) override;

  void processBatch(std::span<const Event> Events,
                    std::span<const uint8_t> Sampled) override;

  /// Current sampling clock C_t of thread \p T (tests inspect this).
  const VectorClock &threadClock(ThreadId T) const { return Threads[T]; }

protected:
  bool clockDominatesHistory(ThreadId T, const VectorClock &C) override {
    return C.leqWithOverride(Threads[T], T, Epochs[T]);
  }
  void snapshotEffectiveClock(ThreadId T, VectorClock &Out) override {
    Out.copyFrom(Threads[T]);
    Out.set(T, Epochs[T]);
  }
  void publishLocalTime(ThreadId T, ClockValue Time) override {
    Threads[T].set(T, Time);
  }
  ClockValue effectiveClockComponent(ThreadId T, ThreadId Of) override {
    return Of == T ? Epochs[T] : Threads[T].get(Of);
  }

private:
  VectorClock &syncClock(SyncId S);

  std::vector<VectorClock> Threads;
  std::vector<VectorClock> Syncs;
};

} // namespace sampletrack

#endif // SAMPLETRACK_DETECTORS_SAMPLINGNAIVEDETECTOR_H
