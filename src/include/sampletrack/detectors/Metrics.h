//===- sampletrack/detectors/Metrics.h - Work counters ---------*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fine-grained work counters mirroring the metrics of the paper's RAPID
/// evaluation (appendix A.1): skipped acquires/releases, deep/shallow
/// copies, ordered-list entries traversed and saved. The figure benches and
/// the complexity-bound tests read these.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_DETECTORS_METRICS_H
#define SAMPLETRACK_DETECTORS_METRICS_H

#include <cstdint>
#include <string>

namespace sampletrack {

/// Counters accumulated by a detector over one run.
struct Metrics {
  /// Events dispatched to the detector, by class.
  uint64_t Events = 0;
  uint64_t Accesses = 0;
  uint64_t SampledAccesses = 0;

  /// Acquire-side work (acquire, join, acquire-load).
  uint64_t AcquiresTotal = 0;
  /// Acquires whose join was skipped entirely thanks to the freshness check
  /// (Line 7 of Algorithm 3 / Line 7 of Algorithm 4).
  uint64_t AcquiresSkipped = 0;
  /// Acquires that performed a join.
  uint64_t AcquiresProcessed = 0;

  /// Release-side work (release, fork, release-store, release-join).
  uint64_t ReleasesTotal = 0;
  /// Releases that skipped updating the sync object (Line 19 of
  /// Algorithm 3).
  uint64_t ReleasesSkipped = 0;
  /// Releases that performed an O(T) copy/join into the sync object.
  uint64_t ReleasesProcessed = 0;

  /// Copy-on-write traffic of Algorithm 4.
  uint64_t ShallowCopies = 0;
  uint64_t DeepCopies = 0;

  /// Zero-allocation hot-path economics (SnapshotPool). CowBreaks counts
  /// deep copies forced because a published snapshot was still referenced
  /// when its owner mutated; on the lazy-CoW path every deep copy is a
  /// break, so CowBreaks == DeepCopies there (uncontended re-owns are
  /// free, which is why DeepCopies drops versus the eager scheme).
  /// PoolHits counts buffer requests the pool's free list served without
  /// touching the allocator — it is the only counter that moves when
  /// pooling is toggled, and the differential harness zeroes it before
  /// comparing pooled against unpooled runs.
  uint64_t PoolHits = 0;
  uint64_t CowBreaks = 0;

  /// Ordered-list join economics: entries actually visited during acquire
  /// joins, and the number that a vanilla vector clock would have visited
  /// (T per non-skipped acquire). SavedTraversals = Opportunities - Visited.
  uint64_t EntriesTraversed = 0;
  uint64_t TraversalOpportunities = 0;

  /// Number of O(T) whole-clock operations (joins, copies,
  /// materializations) performed anywhere; the complexity-bound tests check
  /// this against the paper's O(|S| T) style bounds.
  uint64_t FullClockOps = 0;

  /// Race-detection activity.
  uint64_t RaceChecks = 0;
  uint64_t RacesDeclared = 0;

  /// Sum of all counters relevant to "algorithmic work"; used as a crude
  /// cross-engine comparison in tests.
  uint64_t totalTimestampingWork() const {
    return EntriesTraversed + FullClockOps;
  }

  /// Multi-line human-readable dump.
  std::string str() const;

  /// Field-wise accumulation. Sharded sessions sum the per-shard counters
  /// into the lane's reported Metrics; the sharded dispatch contract
  /// (access work partitioned by VarId, replicated sync work attributed to
  /// shard 0 only) is what makes the sum land field-for-field on the
  /// unsharded run's numbers.
  Metrics &operator+=(const Metrics &O) {
    Events += O.Events;
    Accesses += O.Accesses;
    SampledAccesses += O.SampledAccesses;
    AcquiresTotal += O.AcquiresTotal;
    AcquiresSkipped += O.AcquiresSkipped;
    AcquiresProcessed += O.AcquiresProcessed;
    ReleasesTotal += O.ReleasesTotal;
    ReleasesSkipped += O.ReleasesSkipped;
    ReleasesProcessed += O.ReleasesProcessed;
    ShallowCopies += O.ShallowCopies;
    DeepCopies += O.DeepCopies;
    PoolHits += O.PoolHits;
    CowBreaks += O.CowBreaks;
    EntriesTraversed += O.EntriesTraversed;
    TraversalOpportunities += O.TraversalOpportunities;
    FullClockOps += O.FullClockOps;
    RaceChecks += O.RaceChecks;
    RacesDeclared += O.RacesDeclared;
    return *this;
  }

  /// Field-wise equality; the engine-equivalence tests use it to assert that
  /// a session fan-out lane did bit-identical work to a standalone run.
  bool operator==(const Metrics &) const = default;
};

} // namespace sampletrack

#endif // SAMPLETRACK_DETECTORS_METRICS_H
