//===- sampletrack/detectors/HBClosureOracle.h - Reference HB --*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reference implementation used only by tests and examples: it stores a
/// full Djit+ timestamp for *every* event of a trace (O(N T) space), which
/// makes happens-before queries, exhaustive race-pair enumeration, and the
/// declarative timestamp definitions of the paper (Eqs. 1-2, 5-7, 8-10)
/// directly computable. The property tests check the streaming engines
/// against these definitions.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_DETECTORS_HBCLOSUREORACLE_H
#define SAMPLETRACK_DETECTORS_HBCLOSUREORACLE_H

#include "sampletrack/support/VectorClock.h"
#include "sampletrack/trace/Trace.h"

#include <utility>
#include <vector>

namespace sampletrack {

/// Per-event happens-before information for a whole trace.
class HBClosureOracle {
public:
  /// Builds timestamps for every event of \p T. O(N T) time and space.
  explicit HBClosureOracle(const Trace &T);

  const Trace &trace() const { return Tr; }

  /// The Djit+ timestamp C_FT(e_i) (Eq. 2).
  const VectorClock &timestamp(size_t I) const { return Stamps[I]; }

  /// The Djit+ local time L_FT(e_i) (Eq. 1).
  ClockValue localTime(size_t I) const { return Locals[I]; }

  /// True iff e_i <=HB e_j. Backward queries (i > j) answer false: the
  /// trace order linearizes HB, so a later event never happens-before an
  /// earlier one.
  bool happensBefore(size_t I, size_t J) const;

  /// True iff (e_i, e_j) is a conflicting pair (Section 2).
  bool conflicting(size_t I, size_t J) const;

  /// True iff (e_i, e_j), i < j, is an HB-race.
  bool isRace(size_t I, size_t J) const {
    return conflicting(I, J) && !happensBefore(I, J);
  }

  /// All HB-race pairs (i, j), i < j. O(N^2); intended for small traces.
  std::vector<std::pair<size_t, size_t>> allRacePairs() const;

  /// Race pairs restricted to marked events (the Analysis Problem's
  /// verdict set).
  std::vector<std::pair<size_t, size_t>> markedRacePairs() const;

  /// Events e_j such that some earlier conflicting e_i is unordered; when
  /// \p MarkedOnly, both events must be marked.
  std::vector<size_t> racyEvents(bool MarkedOnly) const;

  /// Event indices at which a streaming detector with last-access histories
  /// (last write per variable, last read per variable and thread) declares
  /// a race, computed against exact HB. With \p MarkedOnly this is the
  /// per-event declaration semantics of Lemma 4 that ST/SU/SO must
  /// reproduce exactly; without it, Djit+'s.
  std::vector<size_t> declaredRaces(bool MarkedOnly) const;

  /// The sampling local time L_sam (Eq. 6) for every event, taking S = the
  /// trace's marked events. Release-like events other than rel() also flush
  /// (see DESIGN.md).
  std::vector<ClockValue> samplingLocalTimes() const;

  /// The sampling timestamp C_sam (Eq. 7) for every event.
  std::vector<VectorClock> samplingTimestamps() const;

  /// The freshness timestamp U (Eq. 10) for every event, derived from the
  /// sampling timestamps via VT (Eq. 9).
  std::vector<VectorClock> freshnessTimestamps() const;

private:
  const Trace &Tr;
  std::vector<VectorClock> Stamps;
  std::vector<ClockValue> Locals;
};

/// Dedups a full declared-race event list exactly as the detectors' race
/// sink does (first event per RaceSignature, in declaration order), so
/// oracle output stays comparable to Detector::races() now that detectors
/// warehouse duplicates instead of storing every declaration.
std::vector<size_t> dedupDeclaredRaces(const Trace &T,
                                       const std::vector<size_t> &Declared);

} // namespace sampletrack

#endif // SAMPLETRACK_DETECTORS_HBCLOSUREORACLE_H
