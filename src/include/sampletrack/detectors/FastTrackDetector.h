//===- sampletrack/detectors/FastTrackDetector.h - FastTrack ---*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The FastTrack race detector (Flanagan & Freund, PLDI 2009): Djit+ with
/// the epoch optimization on access histories. This is the paper's "FT"
/// baseline (full ThreadSanitizer-style analysis, no sampling). Its epoch
/// optimization is orthogonal to the paper's contributions (Section 2.1),
/// which is why the sampling engines are derived from Djit+ instead. The
/// whole-clock joins that remain on its sync path run through the simd
/// clock kernels, clipped to each clock's active prefix.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_DETECTORS_FASTTRACKDETECTOR_H
#define SAMPLETRACK_DETECTORS_FASTTRACKDETECTOR_H

#include "sampletrack/detectors/Detector.h"
#include "sampletrack/support/VectorClock.h"

#include <vector>

namespace sampletrack {

/// FastTrack: epoch-optimized full happens-before race detection.
class FastTrackDetector final : public Detector {
public:
  explicit FastTrackDetector(size_t NumThreads);

  std::string name() const override { return "FT"; }

  void onRead(ThreadId T, VarId X, bool Sampled) override;
  void onWrite(ThreadId T, VarId X, bool Sampled) override;
  void onAcquire(ThreadId T, SyncId L) override;
  void onRelease(ThreadId T, SyncId L) override;
  void onFork(ThreadId Parent, ThreadId Child) override;
  void onJoin(ThreadId Parent, ThreadId Child) override;
  void onReleaseStore(ThreadId T, SyncId S) override;
  void onReleaseJoin(ThreadId T, SyncId S) override;
  void onAcquireLoad(ThreadId T, SyncId S) override;

  void processBatch(std::span<const Event> Events,
                    std::span<const uint8_t> Sampled) override;

  const VectorClock &threadClock(ThreadId T) const { return Threads[T]; }

private:
  /// An epoch c@t: one clock component plus the thread that owns it.
  struct Epoch {
    ThreadId Tid = 0;
    ClockValue Clk = 0;

    bool operator==(const Epoch &O) const {
      return Tid == O.Tid && Clk == O.Clk;
    }
  };

  struct VarState {
    Epoch W;
    /// Last-read state: an epoch while reads are thread-exclusive, promoted
    /// to a full vector clock once concurrent reads are seen.
    Epoch REpoch;
    VectorClock RVC;
    bool ReadShared = false;
  };

  Epoch epochOf(ThreadId T) const { return {T, Threads[T].get(T)}; }
  /// True iff epoch \p E happens-before thread \p T's current time.
  bool epochLeq(const Epoch &E, ThreadId T) const {
    return E.Clk <= Threads[T].get(E.Tid);
  }

  VectorClock &syncClock(SyncId S);
  VarState &varState(VarId X);
  void incrementLocal(ThreadId T) { Threads[T].bump(T); }

  std::vector<VectorClock> Threads;
  std::vector<VectorClock> Syncs;
  std::vector<VarState> Vars;
};

} // namespace sampletrack

#endif // SAMPLETRACK_DETECTORS_FASTTRACKDETECTOR_H
