//===- sampletrack/detectors/DetectorFactory.h - Engine registry -*- C++ -*-=//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Names and constructs the race-detection engines evaluated in the paper.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_DETECTORS_DETECTORFACTORY_H
#define SAMPLETRACK_DETECTORS_DETECTORFACTORY_H

#include "sampletrack/detectors/Detector.h"

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace sampletrack {

/// The engines of the evaluation (Section 6.2.2), plus ablation variants.
enum class EngineKind {
  Djit,          ///< Algorithm 1 (Djit+), full analysis.
  FastTrack,     ///< FT: epoch-optimized full analysis.
  SamplingNaive, ///< ST: Algorithm 2.
  SamplingU,     ///< SU: Algorithm 3.
  SamplingO,     ///< SO: Algorithm 4 with the local-epoch optimization.
  SamplingONoEpochOpt, ///< SO without the Section 6.1 optimization.
  TreeClockFull, ///< Ablation: full-HB timestamps in tree clocks, sampled
                 ///< race checks (Section 7's related-work comparison).
};

/// Short name as used in the paper ("Djit+", "FT", "ST", "SU", "SO", ...).
const char *engineKindName(EngineKind K);

/// Parses an engine name, case-insensitively: the names printed by
/// engineKindName (so parseEngineKind(engineKindName(K)) == K for every K),
/// plus the aliases "djit", "fasttrack" and "treeclock".
std::optional<EngineKind> parseEngineKind(const std::string &Name);

/// All engines, in presentation order.
std::vector<EngineKind> allEngineKinds();

/// Constructs a fresh detector of kind \p K over \p NumThreads threads.
std::unique_ptr<Detector> createDetector(EngineKind K, size_t NumThreads);

/// Constructs one fresh detector per kind in \p Kinds, preserving order (the
/// presentation-order fan-out set used by the benches and by
/// api::AnalysisSession).
std::vector<std::unique_ptr<Detector>>
createDetectors(std::span<const EngineKind> Kinds, size_t NumThreads);

} // namespace sampletrack

#endif // SAMPLETRACK_DETECTORS_DETECTORFACTORY_H
