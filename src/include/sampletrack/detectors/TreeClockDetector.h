//===- sampletrack/detectors/TreeClockDetector.h - TC ablation -*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ablation engine for the related-work comparison of Section 7: tree
/// clocks are an *optimal* data structure for computing the full
/// happens-before relation, but they cannot soundly prune joins under the
/// *sampling* timestamp (the same component value may stand for growing
/// knowledge, defeating the value-based subtree pruning). This engine
/// therefore computes full-HB timestamps in tree clocks — incrementing the
/// local component at every release, as FastTrack does — while performing
/// race checks only on sampled events. bench_ablation_treeclock compares
/// its acquire-side traversal work against SO's ordered-list prefix walks.
///
/// Locks publish copy-on-write snapshots of the releasing thread's tree
/// (deep copies are charged to the releasing thread's next mutation, which
/// under full-HB timestamps means essentially every release — exactly the
/// redundancy the sampling timestamp removes).
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_DETECTORS_TREECLOCKDETECTOR_H
#define SAMPLETRACK_DETECTORS_TREECLOCKDETECTOR_H

#include "sampletrack/detectors/Detector.h"
#include "sampletrack/support/SnapshotPool.h"
#include "sampletrack/support/TreeClock.h"
#include "sampletrack/support/VectorClock.h"

#include <vector>

namespace sampletrack {

/// Tree-clock full-HB engine with sampled race checks.
class TreeClockDetector final : public Detector {
public:
  explicit TreeClockDetector(size_t NumThreads);

  std::string name() const override { return "TC"; }

  void onRead(ThreadId T, VarId X, bool Sampled) override;
  void onWrite(ThreadId T, VarId X, bool Sampled) override;
  void onAcquire(ThreadId T, SyncId L) override;
  void onRelease(ThreadId T, SyncId L) override;
  void onFork(ThreadId Parent, ThreadId Child) override;
  void onJoin(ThreadId Parent, ThreadId Child) override;
  void onReleaseStore(ThreadId T, SyncId S) override;
  void onReleaseJoin(ThreadId T, SyncId S) override;
  void onAcquireLoad(ThreadId T, SyncId S) override;

  void processBatch(std::span<const Event> Events,
                    std::span<const uint8_t> Sampled) override;
  void setPoolingEnabled(bool Enabled) override { Pool.setEnabled(Enabled); }

  const TreeClock &threadClock(ThreadId T) const { return *Threads[T].TC; }

private:
  using ClockRef = SnapshotPool<TreeClock>::Ref;

  struct ThreadState {
    ClockRef TC;
    bool SharedFlag = false;
  };

  struct SyncState {
    /// Published snapshot; immutable while shared (const-enforced).
    SnapshotPool<TreeClock>::ConstRef Ref;
  };

  struct VarState {
    VectorClock W, R;
  };

  SyncState &syncState(SyncId S);
  VarState &varState(VarId X);
  void ensureOwned(ThreadId T);
  /// Joins \p Src into thread \p T's clock with counting; handles COW.
  void joinInto(ThreadId T, const TreeClock &Src);
  void releaseLike(ThreadId T, SyncId L);
  void acquireLike(ThreadId T, SyncId L);
  bool dominates(ThreadId T, const VectorClock &C) const;

  SnapshotPool<TreeClock> Pool;
  std::vector<ThreadState> Threads;
  std::vector<SyncState> Syncs;
  std::vector<VarState> Vars;
};

} // namespace sampletrack

#endif // SAMPLETRACK_DETECTORS_TREECLOCKDETECTOR_H
