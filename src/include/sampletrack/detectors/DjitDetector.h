//===- sampletrack/detectors/DjitDetector.h - Djit+ baseline ---*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Djit+ vector-clock race detector (Algorithm 1 of the paper;
/// Pozniansky & Schuster 2003). Processes every event with whole-clock
/// vector-clock operations — O(T) worst case, O(active threads) in
/// practice through VectorClock's high-water mark, executed by the simd
/// clock kernels; ignores sampling decisions. This is the conceptual
/// baseline against which the sampling timestamps are defined, and the
/// reference implementation the oracle tests trust.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_DETECTORS_DJITDETECTOR_H
#define SAMPLETRACK_DETECTORS_DJITDETECTOR_H

#include "sampletrack/detectors/Detector.h"
#include "sampletrack/support/VectorClock.h"

#include <vector>

namespace sampletrack {

/// Djit+ (Algorithm 1): full happens-before race detection.
class DjitDetector final : public Detector {
public:
  explicit DjitDetector(size_t NumThreads);

  std::string name() const override { return "Djit+"; }

  void onRead(ThreadId T, VarId X, bool Sampled) override;
  void onWrite(ThreadId T, VarId X, bool Sampled) override;
  void onAcquire(ThreadId T, SyncId L) override;
  void onRelease(ThreadId T, SyncId L) override;
  void onFork(ThreadId Parent, ThreadId Child) override;
  void onJoin(ThreadId Parent, ThreadId Child) override;
  void onReleaseStore(ThreadId T, SyncId S) override;
  void onReleaseJoin(ThreadId T, SyncId S) override;
  void onAcquireLoad(ThreadId T, SyncId S) override;

  void processBatch(std::span<const Event> Events,
                    std::span<const uint8_t> Sampled) override;

  /// Current clock of thread \p T (tests inspect this).
  const VectorClock &threadClock(ThreadId T) const { return Threads[T]; }

private:
  struct VarState {
    VectorClock W, R;
  };

  VectorClock &syncClock(SyncId S);
  VarState &varState(VarId X);
  /// Post-release local increment shared by all release-like handlers.
  void incrementLocal(ThreadId T);

  std::vector<VectorClock> Threads;
  std::vector<VectorClock> Syncs;
  std::vector<VarState> Vars;
};

} // namespace sampletrack

#endif // SAMPLETRACK_DETECTORS_DJITDETECTOR_H
