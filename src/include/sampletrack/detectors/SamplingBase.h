//===- sampletrack/detectors/SamplingBase.h - Shared sampling core -*- C++ -*-//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Infrastructure shared by the three sampling engines (ST/SU/SO): the
/// per-thread local epoch e_t with its dirty bit (implementing RelAfter_S,
/// Eq. 5), and the access-history race checks of Algorithm 2's read/write
/// handlers, parameterized over the engine's clock representation.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_DETECTORS_SAMPLINGBASE_H
#define SAMPLETRACK_DETECTORS_SAMPLINGBASE_H

#include "sampletrack/detectors/Detector.h"
#include "sampletrack/support/VectorClock.h"

#include <vector>

namespace sampletrack {

/// How access histories (Cw_x / Cr_x) are represented.
///
/// The paper presents Djit+-style vector-clock histories (Algorithm 2) and
/// notes that FastTrack's epoch optimization "is independent of our
/// innovations" (Section 2.1): under sampling, Proposition 3 makes the
/// scalar epoch comparison exact for marked events, so histories can be
/// epochs with adaptive read promotion exactly as in FastTrack, cutting the
/// per-access cost from O(T) to amortized O(1).
enum class HistoryKind {
  VectorClocks, ///< Algorithm 2 as printed: full Cw/Cr vector clocks.
  Epochs,       ///< FastTrack-style write epoch + adaptive read history.
};

/// Common state and handlers of the sampling engines.
///
/// Subclasses provide the clock representation through two hooks:
/// \ref clockDominatesHistory (is a history timestamp <= the thread's
/// effective clock C_t[t -> e_t]?) and \ref snapshotEffectiveClock (copy the
/// effective clock into a history). Everything else about the read/write
/// handlers is identical across engines (the paper presents them once, in
/// Algorithm 2).
class SamplingDetectorBase : public Detector {
public:
  explicit SamplingDetectorBase(size_t NumThreads,
                                HistoryKind Histories =
                                    HistoryKind::VectorClocks)
      : Detector(NumThreads), Histories(Histories) {
    Epochs.assign(NumThreads, 1); // e_t starts at 1 (Algorithm 2, Line 3).
    Dirty.assign(NumThreads, false);
  }

  void onRead(ThreadId T, VarId X, bool Sampled) final;
  void onWrite(ThreadId T, VarId X, bool Sampled) final;

  /// Sharded runs: a sampled access that another shard analyzed. Its only
  /// thread-local side effect is the dirty bit (every sampled access sets
  /// it; Algorithm 2, Lines 6/12), which gates the release-side epoch
  /// flush — replicate it so this shard's epochs and clocks advance
  /// byte-identically to an unsharded run's.
  void onForeignSampledAccess(ThreadId T) final { Dirty[T] = true; }

  HistoryKind historyKind() const { return Histories; }

  /// Local epoch e_t of thread \p T (tests inspect this).
  ClockValue localEpoch(ThreadId T) const { return Epochs[T]; }

  /// Whether thread \p T has performed a sampled event since its last
  /// release-like event (the guard of Algorithm 2, Line 19).
  bool isDirty(ThreadId T) const { return Dirty[T]; }

protected:
  /// True iff history timestamp \p C is pointwise <= the thread's effective
  /// clock C_t[t -> e_t].
  virtual bool clockDominatesHistory(ThreadId T, const VectorClock &C) = 0;

  /// Copies the effective clock C_t[t -> e_t] into \p Out (sized T).
  virtual void snapshotEffectiveClock(ThreadId T, VectorClock &Out) = 0;

  /// Called by the release-like handlers of subclasses: if the thread
  /// performed a sampled event since the last flush, publish e_t into the
  /// thread clock and advance the epoch (Lines 19-21 of Algorithm 2).
  /// Returns true if an increment happened. Subclasses update their clock
  /// representation in \ref publishLocalTime, which this calls first.
  bool flushLocalEpoch(ThreadId T) {
    if (!Dirty[T])
      return false;
    publishLocalTime(T, Epochs[T]);
    ++Epochs[T];
    Dirty[T] = false;
    return true;
  }

  /// Records e_t as the thread's own clock component C_t(t) (engine
  /// specific: plain set for ST/SU, possibly deferred for SO).
  virtual void publishLocalTime(ThreadId T, ClockValue Time) = 0;

  /// The effective clock component C_t[t -> e_t](Of) — subclasses answer
  /// single-component queries for the epoch-history checks.
  virtual ClockValue effectiveClockComponent(ThreadId T, ThreadId Of) = 0;

  /// Read/write access histories (Cw_x and Cr_x of Algorithm 2), allocated
  /// on first touch. Only sampled events reach them, so total work here is
  /// O(|S| T) with vector-clock histories and amortized O(|S|) with epochs.
  struct VarState {
    // HistoryKind::VectorClocks representation.
    VectorClock W, R;
    // HistoryKind::Epochs representation (FastTrack-style).
    ThreadId WTid = 0;
    ClockValue WClk = 0;
    ThreadId RTid = 0;
    ClockValue RClk = 0;
    bool ReadShared = false;
  };

  VarState &varState(VarId X) {
    // Sharded lanes only ever see their own residue class, so the table is
    // indexed by the dense per-shard slot (X / shards) — 1/Count the
    // unsharded footprint. Geometric growth either way: ascending-VarId
    // traces would otherwise reallocate (and move every VarState) once per
    // new variable.
    size_t Slot = varSlot(X);
    growToIndex(Vars, Slot);
    VarState &V = Vars[Slot];
    if (Histories == HistoryKind::VectorClocks) {
      if (V.W.size() == 0) {
        V.W = VectorClock(numThreads());
        V.R = VectorClock(numThreads());
      }
    } else if (V.ReadShared && V.R.size() == 0) {
      V.R = VectorClock(numThreads());
    }
    return V;
  }

  HistoryKind Histories;
  std::vector<ClockValue> Epochs;
  std::vector<bool> Dirty;

private:
  void readWithEpochHistories(ThreadId T, VarId X);
  void writeWithEpochHistories(ThreadId T, VarId X);

  std::vector<VarState> Vars;
};

} // namespace sampletrack

#endif // SAMPLETRACK_DETECTORS_SAMPLINGBASE_H
