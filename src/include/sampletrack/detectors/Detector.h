//===- sampletrack/detectors/Detector.h - Detector interface ---*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The streaming race-detector interface shared by all engines (Djit+,
/// FastTrack, and the three sampling engines ST/SU/SO). A detector consumes
/// one event at a time; access events carry the sampling decision, realizing
/// the adaptive "marked events" formulation of the Analysis Problem
/// (Problem 1). Synchronization events are always processed.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_DETECTORS_DETECTOR_H
#define SAMPLETRACK_DETECTORS_DETECTOR_H

#include "sampletrack/detectors/Metrics.h"
#include "sampletrack/trace/Event.h"
#include "sampletrack/triage/RaceSink.h"

#include <atomic>
#include <cassert>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

namespace sampletrack {

// RaceReport now lives with the triage subsystem (its identity layer);
// sampletrack/triage/RaceSignature.h defines it and this header re-exposes
// it unchanged for every existing consumer.

/// Base class of every race-detection engine.
///
/// Subclasses implement the virtual handlers; the base records races,
/// metrics and the stream position. Handlers must be called in trace order.
/// Thread ids must be < the NumThreads given at construction.
///
/// Concurrency contract (the parallel-lane mode of api::AnalysisSession
/// relies on it): a detector instance is lane-local — all mutable state,
/// including the race buffer behind races()/racesTruncated(), belongs to
/// whichever thread is currently driving processEvent/processBatch, and
/// drivers must hand the instance off with a happens-before edge (a join,
/// or a mutex as SessionHooks uses). Nothing here is synchronized; running
/// K detectors on K threads is safe precisely because no two lanes share
/// an instance. Debug builds assert that no two threads are ever inside
/// one instance at the same time.
class Detector {
public:
  explicit Detector(size_t NumThreads) : NumThreads(NumThreads) {}
  virtual ~Detector() = default;

  /// Engine name as used in the paper ("FT", "ST", "SU", "SO", ...).
  virtual std::string name() const = 0;

  /// \p Sampled is the sampling decision for this access (membership in S).
  virtual void onRead(ThreadId T, VarId X, bool Sampled) = 0;
  virtual void onWrite(ThreadId T, VarId X, bool Sampled) = 0;

  virtual void onAcquire(ThreadId T, SyncId L) = 0;
  virtual void onRelease(ThreadId T, SyncId L) = 0;
  virtual void onFork(ThreadId Parent, ThreadId Child) = 0;
  virtual void onJoin(ThreadId Parent, ThreadId Child) = 0;

  /// Non-mutex synchronization (appendix A.2). Defaults map them onto the
  /// mutex-style handlers conservatively; the sampling engines override
  /// with the appendix's specialized treatment.
  virtual void onReleaseStore(ThreadId T, SyncId S) = 0;
  virtual void onReleaseJoin(ThreadId T, SyncId S) = 0;
  virtual void onAcquireLoad(ThreadId T, SyncId S) = 0;

  /// Sharded mode only: a *sampled* access owned by another shard. The
  /// access itself is analyzed exactly once (by the owning shard), but any
  /// per-thread side effect it would have had must replicate everywhere so
  /// each shard's clock state evolves exactly as an unsharded run's. For
  /// the sampling engines that side effect is the dirty bit gating the
  /// release-side epoch flush (Algorithm 2, Line 19); engines whose access
  /// handlers are purely variable-local (FT, Djit+, TC) keep the no-op.
  virtual void onForeignSampledAccess(ThreadId T) { (void)T; }

  /// Dispatches \p E to the right handler and advances the stream position.
  /// \p Sampled is ignored for non-access events.
  void processEvent(const Event &E, bool Sampled);

  /// Batched ingestion: dispatches Events[I] with decision Sampled[I]
  /// (nonzero = in S; only meaningful for access events). Bit-identical to
  /// calling \ref processEvent once per element; every engine overrides it
  /// with a devirtualized loop (\ref batchDispatch) that crosses the
  /// virtual boundary once per batch instead of once per event.
  virtual void processBatch(std::span<const Event> Events,
                            std::span<const uint8_t> Sampled);

  /// The per-event reference loop (what \ref processBatch does on a plain
  /// Detector). Kept separately callable so harnesses can differential-test
  /// an engine's batch override against it (SessionConfig::PerEventDispatch
  /// routes lanes here).
  void processBatchGeneric(std::span<const Event> Events,
                           std::span<const uint8_t> Sampled);

  /// Routes snapshot buffers through (or around) the engine's SnapshotPool.
  /// Engines without pooled state ignore it. Call before the first event;
  /// the differential harness runs pooled against unpooled lanes.
  virtual void setPoolingEnabled(bool) {}

  size_t numThreads() const { return NumThreads; }
  const Metrics &metrics() const { return Stats; }

  /// Deduplicated race reports: the *first* report per race signature, in
  /// first-seen order (the compatibility view over the triage sink that
  /// replaced the historical grow-only race list). Re-declarations of the
  /// same logical race bump a hit counter instead of appending — read
  /// \ref raceSink for the counts.
  const std::vector<RaceReport> &races() const { return Sink.exemplars(); }

  /// True iff the sink ran out of distinct-signature capacity, i.e. some
  /// logical race has no exemplar in \ref races. Duplicate declarations
  /// never truncate (they dedup); RacesDeclared counts every declaration
  /// either way. Lane-local like every other accessor: only meaningful on
  /// the driving thread, or after the run has been joined
  /// (api::AnalysisSession::finish reads it strictly after its lane
  /// workers exit).
  bool racesTruncated() const { return Sink.capped(); }

  /// Default distinct-signature capacity of the race sink (the truncation
  /// threshold the tests probe; RacesDeclared keeps counting past it).
  static constexpr size_t maxStoredRaces() {
    return triage::RaceSink::DefaultCapacity;
  }

  /// Number of distinct race signatures declared so far.
  uint64_t distinctRaces() const { return Sink.distinct(); }

  /// The dedup sink behind declareRace — hit counts, exemplars and the
  /// overflow accounting (feeds the warehouse via summary()).
  const triage::RaceSink &raceSink() const { return Sink; }

  /// Rebounds the sink's distinct-signature capacity. Must be called
  /// before the first event (api::AnalysisSession forwards
  /// SessionConfig::TriageCapacity here).
  void setRaceCapacity(size_t Capacity) { Sink.setCapacity(Capacity); }

  /// Transfers the stored exemplars out without copying. Leaves \ref races
  /// empty; read \ref racesTruncated and \ref raceSink before calling.
  std::vector<RaceReport> takeRaces() { return Sink.takeExemplars(); }

  /// Distinct memory locations on which at least one race was declared (the
  /// paper's "racy locations" of Fig. 6(a)).
  const std::unordered_set<VarId> &racyLocations() const {
    return RacyLocations;
  }

  /// Stream position (index of the next event).
  uint64_t position() const { return Position; }

  /// Configures this instance as shard \p Index of \p Count in a sharded
  /// single-engine run (api::AnalysisSession calls it for
  /// SessionConfig::Shards >= 2). The shard owns exactly the variables with
  /// VarId % Count == Index: it analyzes their accesses, replicates every
  /// sync event (so its per-thread clock state is byte-identical to an
  /// unsharded run's), and sees foreign sampled accesses only through
  /// \ref onForeignSampledAccess. Must be called before the first event.
  void setShard(uint32_t Index, uint32_t Count) {
    assert(Position == 0 && "shard layout must be fixed before any event");
    assert(Count >= 2 && Index < Count && "index out of range");
    ShardIdx = Index;
    ShardCnt = Count;
  }

  /// Shard count this instance was configured with; 0 when unsharded.
  uint32_t shardCount() const { return ShardCnt; }
  uint32_t shardIndex() const { return ShardIdx; }

protected:
  /// Dense per-shard slot of an owned VarId: only VarIds congruent to
  /// shardIndex() arrive at a shard's access handlers, so dividing by the
  /// shard count packs each shard's shadow table to ~1/Count the unsharded
  /// footprint instead of leaving Count-1 holes per owned variable.
  size_t varSlot(VarId X) const {
    return ShardCnt > 1 ? static_cast<size_t>(X) / ShardCnt
                        : static_cast<size_t>(X);
  }
  /// The devirtualized batch loop behind every engine's processBatch
  /// override: one lane-guard entry and one bulk stats update per batch,
  /// a direct switch on OpKind per event, and — when \p SkipUnsampled is
  /// set (engines whose access handlers no-op on unsampled events, i.e.
  /// the sampling engines and the tree-clock ablation) — an early fast
  /// path that skips the handler call entirely for the ~99%+ of accesses
  /// outside S. Handler calls are explicitly qualified with \p Concrete,
  /// the most-derived type, so they compile to direct (inlinable) calls;
  /// the virtual boundary is crossed once per batch by the processBatch
  /// override itself. Bit-identical to processEvent per element: the
  /// stream position still advances per event (declareRace records it),
  /// and the bulk counter updates commute.
  template <bool SkipUnsampled, typename Concrete>
  static void batchDispatch(Concrete &Self, std::span<const Event> Events,
                            std::span<const uint8_t> Sampled) {
    assert(Events.size() == Sampled.size() && "one decision per event");
#ifndef NDEBUG
    DriverScope Guard(Self);
#endif
    uint64_t Accesses = 0, SampledAccesses = 0;
    for (size_t I = 0, N = Events.size(); I < N; ++I) {
      const Event &E = Events[I];
      switch (E.Kind) {
      case OpKind::Read:
      case OpKind::Write: {
        ++Accesses;
        bool IsSampled = Sampled[I] != 0;
        SampledAccesses += IsSampled ? 1 : 0;
        if (SkipUnsampled && !IsSampled)
          break;
        if (E.Kind == OpKind::Read)
          Self.Concrete::onRead(E.Tid, E.var(), IsSampled);
        else
          Self.Concrete::onWrite(E.Tid, E.var(), IsSampled);
        break;
      }
      case OpKind::Acquire:
        Self.Concrete::onAcquire(E.Tid, E.sync());
        break;
      case OpKind::Release:
        Self.Concrete::onRelease(E.Tid, E.sync());
        break;
      case OpKind::Fork:
        Self.Concrete::onFork(E.Tid, E.childThread());
        break;
      case OpKind::Join:
        Self.Concrete::onJoin(E.Tid, E.childThread());
        break;
      case OpKind::ReleaseStore:
        Self.Concrete::onReleaseStore(E.Tid, E.sync());
        break;
      case OpKind::ReleaseJoin:
        Self.Concrete::onReleaseJoin(E.Tid, E.sync());
        break;
      case OpKind::AcquireLoad:
        Self.Concrete::onAcquireLoad(E.Tid, E.sync());
        break;
      }
      ++Self.Position;
    }
    Self.Stats.Events += Events.size();
    Self.Stats.Accesses += Accesses;
    Self.Stats.SampledAccesses += SampledAccesses;
  }

  /// \ref batchDispatch for a shard of a sharded run (shardCount() >= 2).
  /// Same devirtualization contract, different routing: an access event is
  /// dispatched only when this shard owns its variable (VarId % Count ==
  /// Index) — foreign sampled accesses collapse to the
  /// \ref onForeignSampledAccess side-effect hook — while sync events are
  /// replicated into every shard so the per-thread clock state evolves
  /// exactly as sequential. Metrics stay a field-wise *sum* over shards:
  /// access-side counters are naturally disjoint, and the replicated
  /// sync-side work is attributed to shard 0 only (the other shards run
  /// the handler for its state effect under a save/restore of Stats).
  /// Position still advances on *every* event, owned or not, so exemplar
  /// positions are globally comparable and the per-shard sink merge can
  /// reproduce sequential first-seen order (triage::mergeShardSummaries).
  template <bool SkipUnsampled, typename Concrete>
  static void batchDispatchSharded(Concrete &Self,
                                   std::span<const Event> Events,
                                   std::span<const uint8_t> Sampled) {
    assert(Events.size() == Sampled.size() && "one decision per event");
    assert(Self.ShardCnt >= 2 && "sharded dispatch on an unsharded lane");
#ifndef NDEBUG
    DriverScope Guard(Self);
#endif
    const uint32_t Count = Self.ShardCnt;
    const bool CountsSync = Self.ShardIdx == 0;
    uint64_t OwnedEvents = 0, Accesses = 0, SampledAccesses = 0;
    for (size_t I = 0, N = Events.size(); I < N; ++I) {
      const Event &E = Events[I];
      switch (E.Kind) {
      case OpKind::Read:
      case OpKind::Write: {
        bool IsSampled = Sampled[I] != 0;
        if (static_cast<uint32_t>(E.var() % Count) != Self.ShardIdx) {
          if (IsSampled)
            Self.Concrete::onForeignSampledAccess(E.Tid);
          break;
        }
        ++OwnedEvents;
        ++Accesses;
        SampledAccesses += IsSampled ? 1 : 0;
        if (SkipUnsampled && !IsSampled)
          break;
        if (E.Kind == OpKind::Read)
          Self.Concrete::onRead(E.Tid, E.var(), IsSampled);
        else
          Self.Concrete::onWrite(E.Tid, E.var(), IsSampled);
        break;
      }
      default: {
        Metrics Saved;
        if (!CountsSync)
          Saved = Self.Stats;
        switch (E.Kind) {
        case OpKind::Acquire:
          Self.Concrete::onAcquire(E.Tid, E.sync());
          break;
        case OpKind::Release:
          Self.Concrete::onRelease(E.Tid, E.sync());
          break;
        case OpKind::Fork:
          Self.Concrete::onFork(E.Tid, E.childThread());
          break;
        case OpKind::Join:
          Self.Concrete::onJoin(E.Tid, E.childThread());
          break;
        case OpKind::ReleaseStore:
          Self.Concrete::onReleaseStore(E.Tid, E.sync());
          break;
        case OpKind::ReleaseJoin:
          Self.Concrete::onReleaseJoin(E.Tid, E.sync());
          break;
        case OpKind::AcquireLoad:
          Self.Concrete::onAcquireLoad(E.Tid, E.sync());
          break;
        default:
          break; // Read/Write handled above.
        }
        if (!CountsSync)
          Self.Stats = Saved;
        else
          ++OwnedEvents;
        break;
      }
      }
      ++Self.Position;
    }
    Self.Stats.Events += OwnedEvents;
    Self.Stats.Accesses += Accesses;
    Self.Stats.SampledAccesses += SampledAccesses;
  }

  /// Records a race declaration at the current stream position. The hot
  /// path is allocation-free once the sink is warm (every distinct
  /// signature and racy location seen once): re-declarations are an O(1)
  /// probe + hit-count bump in the sink and a no-op set insert here.
  void declareRace(ThreadId T, VarId X, OpKind K) {
    ++Stats.RacesDeclared;
    RacyLocations.insert(X);
    Sink.insert(RaceReport{Position, T, X, K});
  }

  Metrics Stats;

private:
  /// The per-event reference loop body for one shard of a sharded run —
  /// what \ref processBatchGeneric calls per element when shardCount() >= 2
  /// (the sharded counterpart of \ref processEvent, virtual dispatch and
  /// all, so the differential harness can cross-check the devirtualized
  /// sharded batch loop against it).
  void processEventSharded(const Event &E, bool Sampled);

  size_t NumThreads;
  uint32_t ShardIdx = 0;
  uint32_t ShardCnt = 0; // 0 = unsharded.
  uint64_t Position = 0;
  triage::RaceSink Sink;
  std::unordered_set<VarId> RacyLocations;

  /// Lane-affinity guard: set while a thread is inside processEvent. Two
  /// overlapping drivers mean two lanes share one detector — the exact bug
  /// class parallel sessions must never exhibit. The member is present in
  /// every build (so the class layout never depends on NDEBUG); only the
  /// checking scope below is debug-only.
  std::atomic<bool> InHandler{false};

#ifndef NDEBUG
  struct DriverScope {
    explicit DriverScope(Detector &D) : D(D) {
      bool WasBusy = D.InHandler.exchange(true, std::memory_order_acquire);
      assert(!WasBusy &&
             "detector entered concurrently; each lane owns its detector");
      (void)WasBusy;
    }
    ~DriverScope() { D.InHandler.store(false, std::memory_order_release); }
    Detector &D;
  };
  friend struct DriverScope;
#endif
};

} // namespace sampletrack

#endif // SAMPLETRACK_DETECTORS_DETECTOR_H
