//===- sampletrack/detectors/SamplingOrderedListDetector.h - SO -*- C++ -*-==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The nearly optimal engine "SO" (Algorithm 4): sampling clocks stored in
/// ordered lists, shared between threads and locks by shallow reference with
/// copy-on-write, plus the scalar freshness check. A release is O(1); an
/// acquire traverses only the U_l - U_t(LR_l) freshest list entries
/// (Proposition 6). Total timestamping work is O(|S| T^2), independent of
/// the number of locks, and instance optimal up to a factor T (Lemma 9).
/// The race-check and snapshot passes (dominatesWithOverride,
/// toVectorClock) run over the list's SoA time array through the simd
/// clock kernels.
///
/// Two orthogonal options support the ablation benches:
/// - LocalEpochOpt (Section 6.1): the thread's own component travels next
///   to the shared list as a scalar, so publishing a new local epoch never
///   forces a deep copy. This is the "dirty epoch" optimization of the
///   RAPID experiments.
/// - The copy-on-write scheme itself is inherent to the algorithm and not
///   optional.
///
/// Non-mutex synchronization (appendix A.2): release-stores are handled
/// identically to releases — a shallow snapshot is always valid regardless
/// of monotonicity, which is why "the innovations of Algorithm 4 can always
/// be adopted". Release-joins convert the sync object to an owned blended
/// vector clock (multi-source) processed without skips.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_DETECTORS_SAMPLINGORDEREDLISTDETECTOR_H
#define SAMPLETRACK_DETECTORS_SAMPLINGORDEREDLISTDETECTOR_H

#include "sampletrack/detectors/SamplingBase.h"
#include "sampletrack/support/OrderedList.h"
#include "sampletrack/support/SnapshotPool.h"

namespace sampletrack {

/// SO: Algorithm 4, ordered lists with lazy copies.
///
/// Snapshot lifecycle (the zero-allocation hot path): a release publishes
/// the thread's list by reference (O(1) shallow copy); the owner's next
/// mutation re-owns it — in place when every published reference has since
/// been dropped (free), or by materializing a private copy into a
/// SnapshotPool buffer when a sync object still holds the snapshot (a
/// CowBreak; the pool recycles retired buffers so steady state allocates
/// nothing).
class SamplingOrderedListDetector final : public SamplingDetectorBase {
public:
  /// \p LocalEpochOpt toggles the Section 6.1 local-epoch optimization.
  explicit SamplingOrderedListDetector(size_t NumThreads,
                                       bool LocalEpochOpt = true,
                                       HistoryKind Histories =
                                           HistoryKind::VectorClocks);

  std::string name() const override { return "SO"; }

  void onAcquire(ThreadId T, SyncId L) override;
  void onRelease(ThreadId T, SyncId L) override;
  void onFork(ThreadId Parent, ThreadId Child) override;
  void onJoin(ThreadId Parent, ThreadId Child) override;
  void onReleaseStore(ThreadId T, SyncId S) override;
  void onReleaseJoin(ThreadId T, SyncId S) override;
  void onAcquireLoad(ThreadId T, SyncId S) override;

  void processBatch(std::span<const Event> Events,
                    std::span<const uint8_t> Sampled) override;
  void setPoolingEnabled(bool Enabled) override { Pool.setEnabled(Enabled); }

  /// The thread's ordered list (tests inspect structure and sharing).
  const OrderedList &orderedList(ThreadId T) const { return *Threads[T].O; }
  bool isListShared(ThreadId T) const { return Threads[T].SharedFlag; }
  const VectorClock &freshnessClock(ThreadId T) const { return Threads[T].U; }

  /// Effective component C_t(t'): list entry, except the thread's own
  /// component which may be carried out-of-line under LocalEpochOpt.
  ClockValue effectiveComponent(ThreadId T, ThreadId Of) const {
    return Of == T ? Threads[T].OwnTime : Threads[T].O->get(Of);
  }

protected:
  bool clockDominatesHistory(ThreadId T, const VectorClock &C) override {
    // The only possibly-stale list entry is the thread's own, and the
    // effective-epoch override replaces it anyway (e_t >= OwnTime).
    return Threads[T].O->dominatesWithOverride(C, T, Epochs[T]);
  }
  void snapshotEffectiveClock(ThreadId T, VectorClock &Out) override {
    Threads[T].O->toVectorClock(Out, T, Epochs[T]);
  }
  void publishLocalTime(ThreadId T, ClockValue Time) override;
  ClockValue effectiveClockComponent(ThreadId T, ThreadId Of) override {
    return Of == T ? Epochs[T] : Threads[T].O->get(Of);
  }

private:
  using ListRef = SnapshotPool<OrderedList>::Ref;
  /// Read-only view held by sync objects: published snapshots are
  /// immutable while shared, and this type makes that a compile error to
  /// violate.
  using ListSnapshot = SnapshotPool<OrderedList>::ConstRef;

  struct ThreadState {
    ListRef O;
    /// shared_t of Algorithm 4: the list may be referenced by sync objects
    /// and must be re-owned (in place, or by a pooled copy when still
    /// referenced) before mutation.
    bool SharedFlag = false;
    VectorClock U;
    /// The paper's C_t(t) (local time of the last sampled event). Under
    /// LocalEpochOpt this is authoritative and the list entry may lag.
    ClockValue OwnTime = 0;
  };

  struct SyncState {
    /// Single-source snapshot (immutable while shared) plus release-time
    /// scalars.
    ListSnapshot Ref;
    ThreadId LastReleaser = NoThread;
    /// U_l of Algorithm 4: the releaser's own freshness count at release.
    ClockValue UScalar = 0;
    /// The releaser's own component at release (C_t(t)); carried as a
    /// scalar so LocalEpochOpt releases stay O(1).
    ClockValue OwnTimeAtRelease = 0;
    /// Multi-source (release-join) content, processed without skips.
    bool MultiSource = false;
    VectorClock C, U;
  };

  SyncState &syncState(SyncId S);

  /// Re-owns the thread's list before mutation (lazy copy-on-write): in
  /// place when unique, else a pooled deep copy (a CowBreak).
  void ensureOwned(ThreadId T);

  /// Applies one foreign entry (\p Of, \p Val) to thread \p T's list.
  /// Returns 1 if the entry strictly increased, else 0.
  unsigned applyEntry(ThreadId T, ThreadId Of, ClockValue Val);

  /// The acquire fast/slow path against a single-source snapshot.
  void acquireLike(ThreadId T, SyncId L);

  /// The O(1) release: publish a shallow snapshot (Lines 24-27).
  void releaseLike(ThreadId T, SyncId L);

  /// Full join from an owned vector clock (multi-source syncs, fork/join).
  void joinFromVectorClock(ThreadId T, const VectorClock &C,
                           const VectorClock *U);

  /// Materializes a single-source snapshot into the sync's owned clocks,
  /// converting it to multi-source form.
  void convertToMultiSource(SyncState &S);

  bool LocalEpochOpt;
  SnapshotPool<OrderedList> Pool;
  std::vector<ThreadState> Threads;
  std::vector<SyncState> Syncs;
};

} // namespace sampletrack

#endif // SAMPLETRACK_DETECTORS_SAMPLINGORDEREDLISTDETECTOR_H
