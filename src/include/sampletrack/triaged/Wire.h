//===- sampletrack/triaged/Wire.h - Upload framing + summaries -*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The wire layer of the fleet ingestion service: what a `POST /v1/runs`
/// body actually contains, and the compact signature-summary artifact a CI
/// shard ships instead of a whole trace.
///
/// Two formats, both little-endian and FNV-1a checksummed with the same
/// rigor as the TriageStore format v2 (chop-every-prefix / flip-every-byte
/// negative-tested; a failed decode never yields partial data):
///
///  - **Signature summary** ("STSG"): a standalone rendering of one run's
///    deduplicated \ref triage::TriageSummary — signatures, hit counts,
///    exemplars, overflow accounting. ~30 bytes per *distinct* race, so a
///    shard that declared a million duplicates uploads kilobytes.
///    `tracegen_tool --summary` writes these next to binary traces.
///
///  - **Upload frame** ("STWF"): the length-prefixed envelope every
///    `POST /v1/runs` body wears. It names the payload kind (binary trace
///    or signature summary), carries the payload length and checksum, and
///    rejects truncation, padding, and bit flips before the server looks
///    at a single payload byte.
///
/// Layouts:
/// \code
///   summary := "STSG" u32(format=1) u64 fnv1a(payload) payload
///   payload := u32 sigVersion  u64 racesDeclared  u64 droppedDeclarations
///              u8 capped  u64 count
///              count * { u64 sig  u64 hits
///                        u64 exemplarEvent u32 exemplarTid
///                        u64 exemplarVar  u8 exemplarKind }
///
///   frame   := "STWF" u32(version=1) u8 content  u64 len  u64 fnv1a(body)
///              body[len]
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_TRIAGED_WIRE_H
#define SAMPLETRACK_TRIAGED_WIRE_H

#include "sampletrack/support/FileSystem.h"
#include "sampletrack/triage/RaceSink.h"

#include <string>
#include <string_view>

namespace sampletrack {
namespace triaged {

/// What an upload frame's body is. The server analyzes BinaryTrace bodies
/// through a full api::AnalysisSession; SignatureSummary bodies were
/// deduplicated client-side and merge directly.
enum class WireContent : uint8_t { BinaryTrace = 0, SignatureSummary = 1 };

const char *wireContentName(WireContent C);

// -- Signature summaries ("STSG") ---------------------------------------

/// Serializes \p S into the standalone summary format.
std::string encodeSummary(const triage::TriageSummary &S);

/// Parses an encoded summary. On any defect — bad magic, other format or
/// signature versions, truncation, bit flips, trailing garbage, duplicate
/// signatures, out-of-range op kinds — returns false, fills \p Error, and
/// leaves \p Out untouched.
bool decodeSummary(std::string_view Bytes, triage::TriageSummary &Out,
                   std::string *Error = nullptr);

/// Writes \ref encodeSummary atomically-on-failure (partial files are
/// removed). Returns false on I/O failure. The \p Fs overload is the seam
/// the fault-injection tests drive short-write and fail-at-Nth-op
/// schedules through; the path-only one uses the real filesystem.
bool writeSummaryFile(const std::string &Path, const triage::TriageSummary &S,
                      std::string *Error = nullptr);
bool writeSummaryFile(support::FileSystem &Fs, const std::string &Path,
                      const triage::TriageSummary &S,
                      std::string *Error = nullptr);

/// Reads and decodes a summary file.
bool readSummaryFile(const std::string &Path, triage::TriageSummary &Out,
                     std::string *Error = nullptr);
bool readSummaryFile(support::FileSystem &Fs, const std::string &Path,
                     triage::TriageSummary &Out,
                     std::string *Error = nullptr);

/// True if \p Bytes starts with the summary magic (cheap content sniff for
/// tools that accept either traces or summaries).
bool sniffSummary(std::string_view Bytes);

// -- Upload frames ("STWF") ---------------------------------------------

/// A parsed frame: the declared content kind and a view of the verified
/// payload (aliasing the input buffer — valid only while it lives).
struct WireFrame {
  WireContent Content = WireContent::BinaryTrace;
  std::string_view Payload;
};

/// Wraps \p Payload in an upload frame.
std::string frame(WireContent C, std::string_view Payload);

/// Verifies and unwraps one frame. Rejects bad magic, unknown frame
/// versions, unknown content kinds, length/buffer mismatches (both
/// truncation and trailing garbage), and payload checksum failures.
bool parseFrame(std::string_view Bytes, WireFrame &Out,
                std::string *Error = nullptr);

} // namespace triaged
} // namespace sampletrack

#endif // SAMPLETRACK_TRIAGED_WIRE_H
