//===- sampletrack/triaged/Server.h - Fleet ingestion service --*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `triaged`: the race warehouse's multi-user front door. A dependency-free
/// HTTP/1.1 service that accepts run uploads from every CI shard and
/// production instance of a fleet, merges them into one crash-only
/// TriageLog behind a single mutex-guarded writer, and serves the
/// warehouse views straight off the existing exporters.
///
/// Endpoints:
///
///   POST /v1/runs                 upload one run (framed body, see Wire.h:
///                                 a binary trace — analyzed server-side —
///                                 or a pre-deduplicated signature summary)
///   GET  /v1/ranked[?n=N]         ranked text report (triage::toText)
///   GET  /v1/runs/{id}/classified per-run new/known/regressed breakdown
///   GET  /v1/suppressions         active suppressions, loadable as a
///                                 suppression file
///   GET  /v1/sarif                SARIF 2.1.0 log (triage::toSarif)
///   GET  /v1/dashboard            dashboard JSON (triage::toJson)
///   GET  /v1/stats                service counters
///   GET  /healthz                 liveness probe
///
/// Concurrency model: N connection workers parse requests and (for trace
/// uploads) run the full analysis session in parallel; the *merge* is a
/// single-writer critical section, so the store is never torn. An upload
/// may carry an `X-Sampletrack-Sequence: k` header (k = 1, 2, ...): the
/// writer then admits merges strictly in sequence order, holding early
/// arrivals until their predecessors land — N concurrent sequenced clients
/// produce a store byte-identical to sequential ingestion, the determinism
/// contract the tests pin. A sequence gap past the configured timeout
/// answers 409 without merging.
///
/// Durability: with a configured StorePath the warehouse is a TriageLog
/// *directory* — each accepted merge appends one fsynced record to the run
/// journal (O(run), not O(store)) before the 200 goes out, so a kill -9 at
/// any instant loses nothing acknowledged; a background thread folds the
/// journal into a new base segment when it outgrows the configured ratio,
/// off the request path. A legacy single-file store at StorePath migrates
/// in place on start. Restart replays the journal, so
/// /v1/runs/{id}/classified keeps answering for every journaled run.
///
/// Idempotency: an upload may carry `X-Sampletrack-Run-Id: <token>`. A
/// run id the warehouse has already merged is NOT merged again — the
/// original run's breakdown is returned with `"deduplicated": true` — so a
/// client that lost the response to a crash or broken pipe can retry
/// blindly without double-counting its run.
///
/// Overload behavior: connections past the pending-queue bound are
/// answered `503 Retry-After: 1` and closed (shed, not queued without
/// bound); a request not fully received within the per-request deadline is
/// answered 408 and disconnected (slowloris defense).
///
/// Lifecycle: `start` binds and serves (port 0 picks an ephemeral port,
/// reported by `port()`); `drain` stops accepting and lets in-flight
/// requests finish (every acknowledged merge is already durable); `stop`
/// drains then joins every thread.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_TRIAGED_SERVER_H
#define SAMPLETRACK_TRIAGED_SERVER_H

#include "sampletrack/api/SessionConfig.h"
#include "sampletrack/prof/Profiler.h"
#include "sampletrack/support/FileSystem.h"
#include "sampletrack/support/LatencyHistogram.h"
#include "sampletrack/triage/TriageLog.h"
#include "sampletrack/triage/TriageStore.h"
#include "sampletrack/triaged/Http.h"
#include "sampletrack/triaged/Wire.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace sampletrack {
namespace triaged {

/// The canonical fleet analysis configuration: the engine pair and full
/// sampling the race_triage gate has always used. Server-side trace
/// analysis, `tracegen_tool --summary`, and the client-side summary path
/// must all agree on it, or the same trace would upload to different
/// signatures depending on the content type.
api::SessionConfig fleetAnalysisConfig();

struct ServerConfig {
  /// Loopback by default: triaged fronts a warehouse, not the internet.
  std::string BindAddress = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (see Server::port()).
  uint16_t Port = 0;
  /// Warehouse store *directory* (see triage::TriageLog). A legacy
  /// single-file store here migrates on start. Empty = in-memory only.
  std::string StorePath;
  /// Optional suppression list applied at start (one hex signature per
  /// line, '#' comments).
  std::string SuppressionFile;
  /// File-operations seam for the store; nullptr = the real filesystem
  /// (crash tests run the whole server against a FaultInjectionFs).
  support::FileSystem *Fs = nullptr;
  /// Journal-to-base ratio past which the background thread compacts.
  double CompactionRatio = 0.5;
  /// Journal floor below which compaction never triggers.
  uint64_t MinCompactionBytes = 64 << 10;
  /// SARIF driver version for /v1/sarif.
  std::string ToolVersion = "1.0.0";
  /// How binary-trace uploads are analyzed (engines, sampling). The triage
  /// knobs (store path, suppressions) are the *server's*, not this
  /// config's — its TriageStorePath/SuppressionFile are ignored.
  api::SessionConfig Analysis = fleetAnalysisConfig();
  /// Connection worker threads (>= 1).
  size_t NumWorkers = 4;
  HttpLimits Limits;
  /// Idle keep-alive connections (no request in progress) are closed after
  /// this long.
  uint64_t IdleTimeoutMillis = 5000;
  /// How long a sequenced upload waits for its predecessors before 409.
  uint64_t SequenceTimeoutMillis = 10000;
  /// Accepted connections waiting for a worker beyond this are shed with
  /// 503 + Retry-After instead of queued without bound. 0 = unbounded.
  size_t MaxQueueDepth = 256;
  /// Self-profiling: per-worker span trees (request/<route> spans with the
  /// upload stage breakdown underneath) and per-route request-latency
  /// histograms, both served by /v1/stats. On by default — the cost is one
  /// clock read per request stage, negligible at HTTP granularity.
  bool ProfilingEnabled = true;
};

/// Monotonic service counters, served by /v1/stats. Plain values — the
/// server keeps them in atomics and snapshots under the writer lock.
struct ServerStats {
  uint64_t ConnectionsAccepted = 0;
  uint64_t ConnectionsShed = 0;
  uint64_t RequestsServed = 0;
  uint64_t RequestTimeouts = 0;
  uint64_t UploadsAccepted = 0;
  uint64_t UploadsRejected = 0;
  uint64_t UploadsDeduplicated = 0;
  uint64_t TraceUploads = 0;
  uint64_t SummaryUploads = 0;
  uint64_t BytesIngested = 0;
  uint64_t EventsAnalyzed = 0;
  uint64_t RacesDeclared = 0;
  uint64_t BadRequests = 0;
  uint64_t NotFound = 0;
  uint64_t SequenceTimeouts = 0;
  /// From the TriageLog: journal bytes fsynced for accepted runs, bytes
  /// written by compactions, and compaction count.
  uint64_t BytesAppended = 0;
  uint64_t BytesCompacted = 0;
  uint64_t Compactions = 0;
};

/// What one accepted upload did to the warehouse — kept per run so
/// /v1/runs/{id}/classified can answer after the fact (rebuilt from the
/// journal on restart), and returned to the uploader as the POST response
/// body.
struct RunRecord {
  /// Store run index (1-based, matches TriageStore::runCount()).
  uint32_t Run = 0;
  /// The upload's X-Sampletrack-Run-Id, if it carried one.
  std::string RunId;
  WireContent Content = WireContent::BinaryTrace;
  /// True only in the response to a *retried* upload whose run id had
  /// already merged; stored records keep it false.
  bool Deduplicated = false;
  uint64_t Declared = 0;
  uint64_t Distinct = 0;
  uint64_t NewCount = 0;
  uint64_t KnownCount = 0;
  uint64_t RegressedCount = 0;
  uint64_t SuppressedCount = 0;
  /// Hex signatures classified New / Regressed by this run's merge.
  std::vector<std::string> NewSigs;
  std::vector<std::string> RegressedSigs;
};

class Server {
public:
  explicit Server(ServerConfig C);
  /// Stops the service if still running.
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Opens the store directory (creating, migrating, or recovering it),
  /// binds, listens, and spawns the accept loop, the connection workers,
  /// and the compaction thread. Returns false (filling \p Error) on a
  /// corrupt store, an unparsable suppression file, or a socket failure.
  bool start(std::string *Error = nullptr);
  bool running() const { return Running.load(std::memory_order_acquire); }
  /// The actually bound port (resolves Port = 0); 0 before start().
  uint16_t port() const { return BoundPort; }

  /// Stops accepting new connections and waits for in-flight requests to
  /// finish (open keep-alive connections are closed after their current
  /// request). Every acknowledged merge is already durable — there is no
  /// final save. Idempotent.
  void drain();
  /// drain() then join every thread and release the sockets. Idempotent;
  /// the server cannot be restarted afterwards.
  void stop();

  /// Copy of the warehouse under the writer lock (tests and tools).
  triage::TriageStore snapshotStore() const;
  ServerStats stats() const;
  /// The live self-profiler (null when ServerConfig::ProfilingEnabled is
  /// off). Trees are internally locked, so chrome-trace export is safe
  /// while the server runs.
  const prof::Profiler *profiler() const { return Prof.get(); }

private:
  /// Bounded route set for the latency histograms and the request spans
  /// (unknown paths fold into the last, "other", slot).
  static constexpr size_t NumRoutes = 9;

  void acceptLoop();
  void workerLoop(size_t Worker);
  void compactionLoop();
  void serveConnection(int Fd, prof::Tree *PT);
  /// Routes one parsed request to a rendered response. Sets \p Close when
  /// the connection must not be reused. \p PT is the serving worker's span
  /// tree (null when profiling is off).
  std::string handle(const HttpRequest &Req, bool &Close, prof::Tree *PT);

  std::string handleUpload(const HttpRequest &Req, bool KeepAlive,
                           prof::Tree *PT);
  std::string handleClassified(const std::string &Path, bool KeepAlive);
  std::string statsJson() const;

  /// Merges one decoded upload behind the single writer, honoring run-id
  /// idempotency and the sequence ordering, journaling the run durably,
  /// and recording it. Returns false with \p Status/\p Detail set on a
  /// sequence timeout or an append failure.
  bool mergeUpload(const triage::TriageSummary &S, WireContent Content,
                   uint64_t Sequence, const std::string &RunId,
                   RunRecord &Out, int &Status, std::string &Detail);

  ServerConfig Cfg;
  /// Atomic: drain() closes and invalidates it while the acceptor reads it.
  std::atomic<int> ListenFd{-1};
  uint16_t BoundPort = 0;

  std::atomic<bool> Running{false};
  std::atomic<bool> Draining{false};

  std::thread Acceptor;
  std::thread Compactor;
  std::vector<std::thread> Workers;

  /// Accepted connections waiting for a worker.
  std::mutex QueueMutex;
  std::condition_variable QueueCv;
  std::deque<int> Queue;
  size_t InFlight = 0; // Connections currently inside serveConnection.
  std::condition_variable IdleCv;

  /// The single-writer side: log, per-run records, sequence admission,
  /// run-id idempotency, compaction handoff.
  mutable std::mutex WriterMutex;
  std::condition_variable SequenceCv;
  std::condition_variable CompactionCv;
  bool StopCompactor = false;
  triage::TriageLog Log;
  std::vector<RunRecord> RunRecords;
  /// Run id -> index into RunRecords (the idempotency index; rebuilt from
  /// the journal on restart).
  std::unordered_map<std::string, size_t> RunIdIndex;
  /// Runs already folded into the base segment when this process opened
  /// the store (classified queries for those answer 404 — their per-run
  /// breakdown is gone by design).
  uint32_t LoadedRuns = 0;
  uint64_t NextSequence = 1;

  /// Self-profiler (null when disabled). Created in start() with locked
  /// trees: each worker records into its own tree, but /v1/stats and
  /// chrome-trace export read them mid-request.
  std::unique_ptr<prof::Profiler> Prof;
  /// Per-route request latency (request parse through response send),
  /// recorded lock-free; /v1/stats snapshots p50/p95/max.
  support::LatencyHistogram RouteLatency[NumRoutes];

  // Counters (relaxed atomics; snapshot() collates).
  std::atomic<uint64_t> CConnections{0}, CShed{0}, CRequests{0},
      CReqTimeouts{0}, CUploadsOk{0}, CUploadsBad{0}, CDeduplicated{0},
      CTraceUploads{0}, CSummaryUploads{0}, CBytes{0}, CEvents{0}, CRaces{0},
      CBadRequests{0}, CNotFound{0}, CSeqTimeouts{0};
};

} // namespace triaged
} // namespace sampletrack

#endif // SAMPLETRACK_TRIAGED_SERVER_H
