//===- sampletrack/triaged/Http.h - Minimal HTTP/1.1 codec -----*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dependency-free HTTP/1.1 request parser and response writer — just
/// enough protocol for the fleet ingestion service: request line + headers
/// + Content-Length bodies, incremental parsing over a growing receive
/// buffer, and hard limits that turn hostile inputs into clean 4xx/5xx
/// answers instead of unbounded buffering.
///
/// The parser is *incremental and prefix-safe*: feeding it any strict
/// prefix of a valid request yields NeedMore (never a spurious error), so
/// the server can read from the socket in arbitrary chunk sizes. A
/// malformed request yields Bad exactly once, with the HTTP status the
/// server should answer before closing:
///
///   400 syntactically broken request line / headers / Content-Length
///   413 body larger than the configured cap
///   431 header block larger than the configured cap
///   501 Transfer-Encoding (chunked bodies are not spoken here)
///   505 an HTTP version other than 1.0/1.1
///
/// Method validity (405) and path routing (404) are the server's business,
/// not the parser's.
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_TRIAGED_HTTP_H
#define SAMPLETRACK_TRIAGED_HTTP_H

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace sampletrack {
namespace triaged {

/// One parsed request. Header names are matched case-insensitively;
/// values keep their bytes (surrounding whitespace trimmed).
struct HttpRequest {
  std::string Method;
  /// Path component of the request target ("/v1/ranked").
  std::string Path;
  /// Query component without the '?' ("n=5"); empty if absent.
  std::string Query;
  /// "HTTP/1.1" or "HTTP/1.0".
  std::string Version;
  std::vector<std::pair<std::string, std::string>> Headers;
  std::string Body;

  /// Case-insensitive header lookup; nullptr if absent.
  const std::string *header(std::string_view Name) const;
  /// True if the connection should close after the response (HTTP/1.0
  /// default, or an explicit "Connection: close").
  bool wantsClose() const;
  /// First value of query parameter \p Key ("" if absent or valueless).
  std::string queryParam(std::string_view Key) const;
};

/// Parser limits. The body cap is the upload size ceiling — one oversized
/// POST must not balloon the server.
struct HttpLimits {
  size_t MaxHeaderBytes = 64 << 10;
  size_t MaxBodyBytes = 64 << 20;
  /// Total wall-clock budget for receiving one request, counted from its
  /// first byte. A client trickling bytes forever (slowloris) is answered
  /// 408 and disconnected when this elapses. 0 disables the deadline.
  uint64_t RequestDeadlineMillis = 10000;
};

enum class HttpParse : uint8_t {
  Ok,       ///< One full request parsed; Consumed tells how many bytes.
  NeedMore, ///< The buffer holds a valid prefix; read more and re-feed.
  Bad,      ///< Malformed; answer with the given status and close.
};

/// Attempts to parse one request from the front of \p Buffer.
/// On Ok, fills \p Out and sets \p Consumed (the caller erases that many
/// bytes and may find a pipelined next request behind them). On Bad, sets
/// \p Status (and \p Error with a one-line diagnostic).
HttpParse parseRequest(std::string_view Buffer, const HttpLimits &Limits,
                       HttpRequest &Out, size_t &Consumed, int &Status,
                       std::string *Error = nullptr);

/// Standard reason phrase ("OK", "Bad Request", ...).
const char *httpStatusText(int Status);

/// Serializes one response, Content-Length framed. \p KeepAlive picks the
/// Connection header ("keep-alive" / "close"). \p ExtraHeaders, when
/// non-empty, is spliced into the header block verbatim (each line
/// CRLF-terminated, e.g. "Retry-After: 1\r\n").
std::string renderResponse(int Status, std::string_view ContentType,
                           std::string_view Body, bool KeepAlive,
                           std::string_view ExtraHeaders = {});

/// Convenience: a small plain-text error body ("404 Not Found\n").
/// \p RetryAfterSeconds > 0 adds a Retry-After header — the 503 shedding
/// answer's backoff hint.
std::string renderError(int Status, std::string_view Detail, bool KeepAlive,
                        unsigned RetryAfterSeconds = 0);

} // namespace triaged
} // namespace sampletrack

#endif // SAMPLETRACK_TRIAGED_HTTP_H
