//===- sampletrack/triaged/Client.h - Blocking upload client ---*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The uploader side of the fleet service: a small blocking HTTP/1.1
/// client a CI shard (or the load bench, or a test) uses to ship runs to a
/// triaged server and pull the warehouse views back. One connection per
/// request — the client optimizes for simplicity and correctness; the
/// many-connection throughput story lives in bench_triaged_ingest.
///
/// \code
///   triaged::Client C("127.0.0.1", Port);
///   triaged::UploadOutcome Up;
///   std::string Err;
///   if (!C.uploadTrace(T, Up, &Err))       // or uploadSummary / uploadFile
///     die(Err);
///   if (Up.NewCount != 0) ...              // this run introduced races
///   triaged::Client::Response Sarif;
///   C.get("/v1/sarif", Sarif);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_TRIAGED_CLIENT_H
#define SAMPLETRACK_TRIAGED_CLIENT_H

#include "sampletrack/trace/Trace.h"
#include "sampletrack/triage/RaceSink.h"
#include "sampletrack/triaged/Wire.h"

#include <cstdint>
#include <string>

namespace sampletrack {
namespace triaged {

/// The server's answer to one upload, parsed from the POST response JSON.
struct UploadOutcome {
  /// Warehouse run index assigned to this upload.
  uint32_t Run = 0;
  /// The idempotency key the upload carried (caller-supplied or generated).
  std::string RunId;
  /// True when the server had already merged this run id — the breakdown
  /// is the original run's, and nothing was double-counted.
  bool Deduplicated = false;
  uint64_t Declared = 0;
  uint64_t Distinct = 0;
  uint64_t NewCount = 0;
  uint64_t KnownCount = 0;
  uint64_t RegressedCount = 0;
  uint64_t SuppressedCount = 0;
};

/// How uploads retry. Retries cover transport failures (connect refused,
/// the peer vanishing mid-exchange) and 5xx answers; 4xx rejections are
/// the caller's bug and never retry. Safe because every upload carries an
/// X-Sampletrack-Run-Id: a retry whose original actually merged — the
/// classic lost-200 window — answers the original breakdown, deduplicated
/// server-side.
struct RetryPolicy {
  /// Total tries (first attempt included). 1 = no retries.
  unsigned MaxAttempts = 4;
  /// Backoff before retry k is BaseDelayMillis << (k-1), capped at
  /// MaxDelayMillis, jittered down by up to half so a fleet of shards
  /// rejected together does not return together.
  uint64_t BaseDelayMillis = 50;
  uint64_t MaxDelayMillis = 2000;
  /// Jitter seed; 0 draws one from the system (tests pin it).
  uint64_t JitterSeed = 0;
};

/// Per-exchange I/O deadlines. Without them a stalled peer — a server that
/// accepts and then never answers, a connect black-holed by a dropped SYN —
/// parks the uploading CI shard forever; with them every phase of the
/// round-trip is bounded and a stall surfaces as a retryable transport
/// failure ("timed out"). 0 disables the corresponding deadline.
struct ClientConfig {
  /// Bound on establishing the TCP connection.
  uint64_t ConnectTimeoutMillis = 5000;
  /// Bound on writing the request once connected.
  uint64_t SendTimeoutMillis = 10000;
  /// Bound on the *whole* response read, not per-recv: a byte-per-second
  /// drip cannot stretch it.
  uint64_t RecvTimeoutMillis = 30000;
};

class Client {
public:
  Client(std::string Host, uint16_t Port)
      : Host(std::move(Host)), Port(Port) {}

  /// Upload retry knobs (public: tweak freely between calls).
  RetryPolicy Retry;

  /// I/O deadline knobs (public: tweak freely between calls). Tests point
  /// these at tens of milliseconds; production CI shards keep the lenient
  /// defaults.
  ClientConfig Config;

  struct Response {
    int Status = 0;
    std::string ContentType;
    std::string Body;
    /// Parsed Retry-After header (seconds), 0 if absent — the 503
    /// shedding answer's backoff hint.
    unsigned RetryAfterSeconds = 0;
  };

  /// One GET round-trip. Returns false only on transport failure (connect,
  /// send, malformed response) — an HTTP error status is a *successful*
  /// exchange with Out.Status set.
  bool get(const std::string &Path, Response &Out,
           std::string *Error = nullptr);

  /// One POST round-trip with an arbitrary body (no retry — the upload
  /// methods below own the retry loop). \p Sequence > 0 adds the
  /// X-Sampletrack-Sequence header (see Server.h's determinism contract);
  /// a non-empty \p RunId adds X-Sampletrack-Run-Id.
  bool post(const std::string &Path, const std::string &ContentType,
            std::string_view Body, Response &Out,
            std::string *Error = nullptr, uint64_t Sequence = 0,
            const std::string &RunId = {});

  // -- Uploads (POST /v1/runs) ------------------------------------------
  // All uploads retry per the RetryPolicy and carry a run id: a random one
  // per call (NOT payload-derived — two genuinely distinct runs of the
  // same workload may produce identical bytes and must both count), or
  // \p RunId when the caller pins its own key.

  /// Frames and uploads \p T as a binary trace (the server analyzes it).
  /// Returns false on transport failure or a non-200 answer.
  bool uploadTrace(const Trace &T, UploadOutcome &Out,
                   std::string *Error = nullptr, uint64_t Sequence = 0,
                   const std::string &RunId = {});
  /// Frames and uploads a client-side deduplicated summary.
  bool uploadSummary(const triage::TriageSummary &S, UploadOutcome &Out,
                     std::string *Error = nullptr, uint64_t Sequence = 0,
                     const std::string &RunId = {});
  /// Uploads a file, sniffing its kind: a "STSG" signature summary or a
  /// binary trace (anything else is rejected client-side).
  bool uploadFile(const std::string &Path, UploadOutcome &Out,
                  std::string *Error = nullptr, uint64_t Sequence = 0,
                  const std::string &RunId = {});

private:
  bool roundTrip(const std::string &Request, Response &Out,
                 std::string *Error);
  bool uploadFramed(WireContent Content, std::string_view Payload,
                    UploadOutcome &Out, std::string *Error,
                    uint64_t Sequence, const std::string &RunId);

  std::string Host;
  uint16_t Port;
};

} // namespace triaged
} // namespace sampletrack

#endif // SAMPLETRACK_TRIAGED_CLIENT_H
