//===- sampletrack/triaged/Client.h - Blocking upload client ---*- C++ -*-===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The uploader side of the fleet service: a small blocking HTTP/1.1
/// client a CI shard (or the load bench, or a test) uses to ship runs to a
/// triaged server and pull the warehouse views back. One connection per
/// request — the client optimizes for simplicity and correctness; the
/// many-connection throughput story lives in bench_triaged_ingest.
///
/// \code
///   triaged::Client C("127.0.0.1", Port);
///   triaged::UploadOutcome Up;
///   std::string Err;
///   if (!C.uploadTrace(T, Up, &Err))       // or uploadSummary / uploadFile
///     die(Err);
///   if (Up.NewCount != 0) ...              // this run introduced races
///   triaged::Client::Response Sarif;
///   C.get("/v1/sarif", Sarif);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef SAMPLETRACK_TRIAGED_CLIENT_H
#define SAMPLETRACK_TRIAGED_CLIENT_H

#include "sampletrack/trace/Trace.h"
#include "sampletrack/triage/RaceSink.h"
#include "sampletrack/triaged/Wire.h"

#include <cstdint>
#include <string>

namespace sampletrack {
namespace triaged {

/// The server's answer to one upload, parsed from the POST response JSON.
struct UploadOutcome {
  /// Warehouse run index assigned to this upload.
  uint32_t Run = 0;
  uint64_t Declared = 0;
  uint64_t Distinct = 0;
  uint64_t NewCount = 0;
  uint64_t KnownCount = 0;
  uint64_t RegressedCount = 0;
  uint64_t SuppressedCount = 0;
};

class Client {
public:
  Client(std::string Host, uint16_t Port)
      : Host(std::move(Host)), Port(Port) {}

  struct Response {
    int Status = 0;
    std::string ContentType;
    std::string Body;
  };

  /// One GET round-trip. Returns false only on transport failure (connect,
  /// send, malformed response) — an HTTP error status is a *successful*
  /// exchange with Out.Status set.
  bool get(const std::string &Path, Response &Out,
           std::string *Error = nullptr);

  /// One POST round-trip with an arbitrary body. \p Sequence > 0 adds the
  /// X-Sampletrack-Sequence header (see Server.h's determinism contract).
  bool post(const std::string &Path, const std::string &ContentType,
            std::string_view Body, Response &Out,
            std::string *Error = nullptr, uint64_t Sequence = 0);

  // -- Uploads (POST /v1/runs) ------------------------------------------
  /// Frames and uploads \p T as a binary trace (the server analyzes it).
  /// Returns false on transport failure or a non-200 answer.
  bool uploadTrace(const Trace &T, UploadOutcome &Out,
                   std::string *Error = nullptr, uint64_t Sequence = 0);
  /// Frames and uploads a client-side deduplicated summary.
  bool uploadSummary(const triage::TriageSummary &S, UploadOutcome &Out,
                     std::string *Error = nullptr, uint64_t Sequence = 0);
  /// Uploads a file, sniffing its kind: a "STSG" signature summary or a
  /// binary trace (anything else is rejected client-side).
  bool uploadFile(const std::string &Path, UploadOutcome &Out,
                  std::string *Error = nullptr, uint64_t Sequence = 0);

private:
  bool roundTrip(const std::string &Request, Response &Out,
                 std::string *Error);
  bool uploadFramed(WireContent Content, std::string_view Payload,
                    UploadOutcome &Out, std::string *Error,
                    uint64_t Sequence);

  std::string Host;
  uint16_t Port;
};

} // namespace triaged
} // namespace sampletrack

#endif // SAMPLETRACK_TRIAGED_CLIENT_H
