//===- triage/Exporters.cpp - Warehouse renderings --------------------------=//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/triage/Exporters.h"

#include <sstream>

using namespace sampletrack;
using namespace sampletrack::triage;

namespace {

std::string hexOf(uint64_t Sig) { return RaceSignature{Sig}.hex(); }

const char *roleName(ThreadId T) {
  return threadRole(T) == ThreadRole::Main ? "main" : "worker";
}

/// One human-readable line describing a record's exemplar.
std::string describe(const TriageStore::Record &R) {
  std::ostringstream OS;
  OS << (R.Exemplar.Kind == OpKind::Write ? "write" : "read") << " race on V"
     << R.Exemplar.Var << " by " << roleName(R.Exemplar.Tid) << " thread";
  return OS.str();
}

} // namespace

std::string sampletrack::triage::toText(const TriageStore &Store,
                                        size_t TopN) {
  std::ostringstream OS;
  std::vector<const TriageStore::Record *> Ranked = Store.ranked(TopN);
  OS << "race warehouse: " << Store.size() << " distinct signature(s) over "
     << Store.runCount() << " run(s)";
  if (TopN && Store.size() > TopN)
    OS << " (top " << TopN << " shown)";
  OS << "\n";
  OS << "  rank        hits  runs  signature         status      exemplar\n";
  size_t Rank = 0;
  for (const TriageStore::Record *R : Ranked) {
    char Line[160];
    // The classification of the record's latest sighting; a record absent
    // from the most recent run shows as "quiet" (it may be fixed — or the
    // next sighting will classify it regressed).
    const char *Status = R->Suppressed ? "suppressed"
                         : R->LastSeenRun < Store.runCount()
                             ? "quiet"
                             : raceStatusName(R->LastStatus);
    std::snprintf(Line, sizeof(Line),
                  "  %4zu  %10llu  %4u  %s  %-10s  %s\n", ++Rank,
                  static_cast<unsigned long long>(R->Hits), R->Runs,
                  hexOf(R->Signature).c_str(), Status,
                  describe(*R).c_str());
    OS << Line;
  }
  return OS.str();
}

std::string sampletrack::triage::toJson(const TriageStore &Store) {
  std::ostringstream OS;
  OS << "{\n"
     << "  \"signatureVersion\": " << RaceSignature::Version << ",\n"
     << "  \"runs\": " << Store.runCount() << ",\n"
     << "  \"distinctSignatures\": " << Store.size() << ",\n"
     << "  \"races\": [\n";
  std::vector<const TriageStore::Record *> Ranked = Store.ranked();
  for (size_t I = 0; I < Ranked.size(); ++I) {
    const TriageStore::Record &R = *Ranked[I];
    OS << "    {\"signature\": \"" << hexOf(R.Signature) << "\", \"hits\": "
       << R.Hits << ", \"runs\": " << R.Runs << ", \"firstSeenRun\": "
       << R.FirstSeenRun << ", \"lastSeenRun\": " << R.LastSeenRun
       << ", \"suppressed\": " << (R.Suppressed ? "true" : "false")
       << ", \"status\": \"" << raceStatusName(R.LastStatus)
       << "\", \"var\": " << R.Exemplar.Var << ", \"op\": \""
       << opKindName(R.Exemplar.Kind) << "\", \"threadRole\": \""
       << roleName(R.Exemplar.Tid) << "\", \"exemplarEvent\": "
       << R.Exemplar.EventIndex << ", \"exemplarThread\": " << R.Exemplar.Tid
       << "}" << (I + 1 < Ranked.size() ? "," : "") << "\n";
  }
  OS << "  ]\n}\n";
  return OS.str();
}

std::string sampletrack::triage::toSarif(const TriageStore &Store,
                                         const std::string &ToolVersion) {
  std::ostringstream OS;
  OS << "{\n"
     << "  \"$schema\": \"https://raw.githubusercontent.com/oasis-tcs/"
        "sarif-spec/master/Schemata/sarif-schema-2.1.0.json\",\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"runs\": [\n"
     << "    {\n"
     << "      \"tool\": {\n"
     << "        \"driver\": {\n"
     << "          \"name\": \"SampleTrack\",\n"
     << "          \"version\": \"" << ToolVersion << "\",\n"
     << "          \"rules\": [\n"
     << "            {\n"
     << "              \"id\": \"sampletrack/data-race\",\n"
     << "              \"name\": \"DataRace\",\n"
     << "              \"shortDescription\": {\"text\": \"Data race "
        "detected by sampling-based happens-before analysis\"}\n"
     << "            }\n"
     << "          ]\n"
     << "        }\n"
     << "      },\n"
     << "      \"results\": [\n";
  std::vector<const TriageStore::Record *> Ranked = Store.ranked();
  bool First = true;
  for (const TriageStore::Record *RP : Ranked) {
    const TriageStore::Record &R = *RP;
    if (R.Suppressed)
      continue; // Suppressions are the SARIF consumer's "dismissed" state.
    if (!First)
      OS << ",\n";
    First = false;
    OS << "        {\n"
       << "          \"ruleId\": \"sampletrack/data-race\",\n"
       << "          \"level\": \"warning\",\n"
       << "          \"message\": {\"text\": \"" << describe(R) << ": "
       << R.Hits << " declaration(s) across " << R.Runs << " run(s)\"},\n"
       << "          \"partialFingerprints\": {\"raceSignature/v"
       << RaceSignature::Version << "\": \"" << hexOf(R.Signature)
       << "\"},\n"
       << "          \"locations\": [\n"
       << "            {\"logicalLocations\": [{\"fullyQualifiedName\": "
          "\"var:"
       << R.Exemplar.Var << "\", \"kind\": \"variable\"}]}\n"
       << "          ],\n"
       << "          \"properties\": {\"hits\": " << R.Hits
       << ", \"runs\": " << R.Runs << ", \"firstSeenRun\": "
       << R.FirstSeenRun << ", \"lastSeenRun\": " << R.LastSeenRun
       << ", \"threadRole\": \"" << roleName(R.Exemplar.Tid)
       << "\", \"op\": \"" << opKindName(R.Exemplar.Kind) << "\"}\n"
       << "        }";
  }
  if (!First)
    OS << "\n";
  OS << "      ]\n"
     << "    }\n"
     << "  ]\n"
     << "}\n";
  return OS.str();
}
