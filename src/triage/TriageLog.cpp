//===- triage/TriageLog.cpp - Log-structured store --------------------------=//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/triage/TriageLog.h"

#include "sampletrack/support/Common.h"
#include "sampletrack/triage/RaceSignature.h"

#include <algorithm>
#include <unordered_set>

using namespace sampletrack;
using namespace sampletrack::triage;

//===----------------------------------------------------------------------===//
// Journal framing ("STTJ"). Little-endian, FNV-1a checksummed, same byte
// discipline as the store and wire formats; kept local — each format owns
// its framing.
//
//   header := "STTJ" u32(version=1) u64 fnv1a(tail)
//             tail := u32 sigVersion  u64 baseRuns
//   record := u32 len  u64 fnv1a(payload)  payload[len]
//   payload:= u32 runIndex  u8 content  u16 runIdLen  runId
//             u64 declared  u64 dropped  u8 capped  u64 count
//             count * { u64 sig  u64 hits
//                       u64 exemplarEvent u32 exemplarTid
//                       u64 exemplarVar  u8 exemplarKind }
//
// `runIndex` is the store run counter the record advances the store *to*;
// records must be contiguous from baseRuns+1. The 12-byte record preamble
// is the torn-tail detector: a final record with fewer bytes than `len`
// promises is the crash window and gets truncated; any complete record
// failing its checksum or structure is corruption and rejects the open.
//===----------------------------------------------------------------------===//

namespace {

constexpr char JournalMagic[4] = {'S', 'T', 'T', 'J'};
constexpr uint32_t JournalVersion = 1;
constexpr size_t JournalHeaderSize = 28;
constexpr size_t RecordPreambleSize = 12; // u32 len + u64 checksum
constexpr size_t MaxRunIdBytes = 256;

void putU16(std::string &S, uint16_t V) {
  S.push_back(static_cast<char>(V & 0xff));
  S.push_back(static_cast<char>((V >> 8) & 0xff));
}

void putU32(std::string &S, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    S.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putU64(std::string &S, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    S.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

uint64_t fnv1a(std::string_view Bytes) {
  Fnv1a H;
  H.bytes(Bytes.data(), Bytes.size());
  return H.value();
}

/// Bounds-checked little-endian reader over a byte view.
struct ViewReader {
  std::string_view Bytes;
  size_t Pos = 0;

  bool getU16(uint16_t &V) {
    if (Bytes.size() - Pos < 2)
      return false;
    V = static_cast<uint16_t>(
        static_cast<unsigned char>(Bytes[Pos]) |
        (static_cast<unsigned char>(Bytes[Pos + 1]) << 8));
    Pos += 2;
    return true;
  }

  bool getU32(uint32_t &V) {
    if (Bytes.size() - Pos < 4)
      return false;
    V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(static_cast<unsigned char>(Bytes[Pos + I]))
           << (8 * I);
    Pos += 4;
    return true;
  }

  bool getU64(uint64_t &V) {
    if (Bytes.size() - Pos < 8)
      return false;
    V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(static_cast<unsigned char>(Bytes[Pos + I]))
           << (8 * I);
    Pos += 8;
    return true;
  }

  bool getByte(uint8_t &V) {
    if (Pos >= Bytes.size())
      return false;
    V = static_cast<unsigned char>(Bytes[Pos++]);
    return true;
  }

  bool getBytes(std::string &Out, size_t Len) {
    if (Bytes.size() - Pos < Len)
      return false;
    Out.assign(Bytes.data() + Pos, Len);
    Pos += Len;
    return true;
  }

  bool exhausted() const { return Pos == Bytes.size(); }
};

bool fail(std::string *Error, const std::string &Msg) {
  if (Error)
    *Error = Msg;
  return false;
}

std::string journalHeader(uint64_t BaseRuns) {
  std::string Tail;
  putU32(Tail, RaceSignature::Version);
  putU64(Tail, BaseRuns);
  std::string Out;
  Out.reserve(JournalHeaderSize);
  Out.append(JournalMagic, 4);
  putU32(Out, JournalVersion);
  putU64(Out, fnv1a(Tail));
  Out += Tail;
  return Out;
}

std::string encodeRecord(uint32_t RunIndex, uint8_t Content,
                         const std::string &RunId, const TriageSummary &S) {
  std::string Payload;
  Payload.reserve(32 + RunId.size() + S.Entries.size() * 37);
  putU32(Payload, RunIndex);
  Payload.push_back(static_cast<char>(Content));
  putU16(Payload, static_cast<uint16_t>(RunId.size()));
  Payload += RunId;
  putU64(Payload, S.RacesDeclared);
  putU64(Payload, S.DroppedDeclarations);
  Payload.push_back(S.Capped ? 1 : 0);
  putU64(Payload, S.Entries.size());
  for (const TriageEntry &E : S.Entries) {
    putU64(Payload, E.Signature);
    putU64(Payload, E.Hits);
    putU64(Payload, E.Exemplar.EventIndex);
    putU32(Payload, E.Exemplar.Tid);
    putU64(Payload, E.Exemplar.Var);
    Payload.push_back(static_cast<char>(E.Exemplar.Kind));
  }
  std::string Out;
  Out.reserve(RecordPreambleSize + Payload.size());
  putU32(Out, static_cast<uint32_t>(Payload.size()));
  putU64(Out, fnv1a(Payload));
  Out += Payload;
  return Out;
}

/// Parses one verified record payload back into (RunInfo-sans-Merge,
/// TriageSummary), enforcing the same structural invariants decodeSummary
/// does — the journal stores exactly what was merged, so corruption must
/// not deserialize into a mergeable summary.
bool decodeRecordPayload(std::string_view Payload, uint32_t ExpectedRun,
                         TriageLog::RunInfo &Info, TriageSummary &S,
                         std::string *Error) {
  ViewReader Rd{Payload};
  uint32_t RunIndex = 0;
  uint8_t Content = 0;
  uint16_t RunIdLen = 0;
  if (!Rd.getU32(RunIndex) || !Rd.getByte(Content) || !Rd.getU16(RunIdLen))
    return fail(Error, "truncated record header");
  if (RunIndex != ExpectedRun)
    return fail(Error, "run index " + std::to_string(RunIndex) +
                           " out of sequence (expected " +
                           std::to_string(ExpectedRun) + ")");
  if (RunIdLen > MaxRunIdBytes)
    return fail(Error, "oversized run id (" + std::to_string(RunIdLen) +
                           " bytes)");
  std::string RunId;
  if (!Rd.getBytes(RunId, RunIdLen))
    return fail(Error, "truncated run id");
  uint8_t Capped = 0;
  uint64_t Count = 0;
  if (!Rd.getU64(S.RacesDeclared) || !Rd.getU64(S.DroppedDeclarations) ||
      !Rd.getByte(Capped) || !Rd.getU64(Count))
    return fail(Error, "truncated record counts");
  if (Capped > 1)
    return fail(Error, "bad capped flag");
  S.Capped = Capped != 0;
  std::unordered_set<uint64_t> Seen;
  S.Entries.reserve(Count < (1u << 20) ? Count : (1u << 20));
  uint64_t HitTotal = 0;
  for (uint64_t I = 0; I < Count; ++I) {
    TriageEntry E;
    uint32_t Tid = 0;
    uint8_t Kind = 0;
    if (!Rd.getU64(E.Signature) || !Rd.getU64(E.Hits) ||
        !Rd.getU64(E.Exemplar.EventIndex) || !Rd.getU32(Tid) ||
        !Rd.getU64(E.Exemplar.Var) || !Rd.getByte(Kind))
      return fail(Error, "truncated record entry");
    if (Kind > static_cast<uint8_t>(OpKind::AcquireLoad))
      return fail(Error, "bad op kind in record entry");
    if (E.Hits == 0)
      return fail(Error, "zero hit count in record entry");
    if (!Seen.insert(E.Signature).second)
      return fail(Error, "duplicate signature in record");
    E.Exemplar.Tid = Tid;
    E.Exemplar.Kind = static_cast<OpKind>(Kind);
    HitTotal += E.Hits;
    S.Entries.push_back(E);
  }
  if (!Rd.exhausted())
    return fail(Error, "trailing garbage after the last record entry");
  if (S.RacesDeclared < HitTotal + S.DroppedDeclarations)
    return fail(Error, "declaration counts inconsistent");
  if (S.Capped != (S.DroppedDeclarations != 0))
    return fail(Error, "capped flag inconsistent");
  Info.Run = RunIndex;
  Info.RunId = std::move(RunId);
  Info.Content = Content;
  Info.Declared = S.RacesDeclared;
  Info.Dropped = S.DroppedDeclarations;
  Info.Capped = S.Capped;
  Info.Distinct = S.Entries.size();
  return true;
}

/// Writes \p Bytes to \p Path (truncating) and fsyncs it. The name itself
/// becomes durable only at the caller's syncDirectory.
bool writeFileSynced(support::FileSystem &Fs, const std::string &Path,
                     std::string_view Bytes, std::string *Error) {
  std::unique_ptr<support::WritableFile> Os =
      Fs.openWrite(Path, /*Append=*/false);
  if (!Os)
    return fail(Error, "cannot write '" + Path + "'");
  if (!support::writeAll(*Os, Bytes) || !Os->sync() || !Os->close()) {
    Os->close();
    Fs.remove(Path);
    return fail(Error, "I/O error writing '" + Path + "'");
  }
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Lifecycle
//===----------------------------------------------------------------------===//

TriageLog::~TriageLog() {
  if (Journal)
    Journal->close();
}

support::FileSystem &TriageLog::fs() const {
  return Opts.Fs ? *Opts.Fs : support::FileSystem::real();
}

std::string TriageLog::basePath(uint64_t G) const {
  return Dir + "/base-" + std::to_string(G) + ".seg";
}

std::string TriageLog::journalPath(uint64_t G) const {
  return Dir + "/journal-" + std::to_string(G) + ".log";
}

bool TriageLog::open(const std::string &StoreDir, const Options &O,
                     std::string *Error) {
  // Reset so open() on a reused object starts clean.
  if (Journal)
    Journal->close();
  Journal.reset();
  Dir = StoreDir;
  Opts = O;
  Store = TriageStore();
  Runs.clear();
  Gen = 0;
  JournalSize = BaseSize = 0;
  BaseRunsAtOpen = 0;
  Poisoned = false;
  RecoveryNote.clear();

  if (Dir.empty())
    return fail(Error, "empty store directory path");

  support::FileSystem &F = fs();
  if (F.exists(Dir) && !F.isDirectory(Dir)) {
    // A legacy single-file "STTS" store: it becomes the first base segment
    // of a fresh directory.
    if (!migrateLegacyFile(Error))
      return false;
  } else if (!F.exists(Dir)) {
    if (F.isDirectory(Dir + ".migrate")) {
      // Crashed between "legacy file moved aside" and "directory moved
      // into place": the .migrate directory is complete and synced (that
      // ordering is the migration protocol), so finish the swap.
      if (!F.rename(Dir + ".migrate", Dir) ||
          !F.syncDirectory(support::parentDirOf(Dir)))
        return fail(Error, "cannot finish interrupted migration of '" + Dir +
                               "'");
      RecoveryNote = "finished interrupted legacy migration";
    } else {
      if (!initializeFresh(Error))
        return false;
    }
  }
  return openDirectory(O, Error);
}

bool TriageLog::initializeFresh(std::string *Error) {
  support::FileSystem &F = fs();
  // Build a fully-populated directory under a temp name, then rename it
  // into place: "the store directory exists" is then equivalent to "the
  // store directory is completely initialized", and a crash mid-create
  // leaves only a .init leftover that the next open discards here.
  const std::string Tmp = Dir + ".init";
  destroyTree(Tmp);
  if (!F.mkdir(Tmp))
    return fail(Error, "cannot create '" + Tmp + "'");
  TriageStore Empty;
  if (!writeFileSynced(F, Tmp + "/base-1.seg", Empty.serialize(), Error) ||
      !writeFileSynced(F, Tmp + "/journal-1.log", journalHeader(0), Error) ||
      !writeFileSynced(F, Tmp + "/CURRENT", "1\n", Error))
    return false;
  if (!F.syncDirectory(Tmp) || !F.rename(Tmp, Dir) ||
      !F.syncDirectory(support::parentDirOf(Dir)))
    return fail(Error, "cannot commit new store directory '" + Dir + "'");
  return true;
}

bool TriageLog::migrateLegacyFile(std::string *Error) {
  support::FileSystem &F = fs();
  TriageStore Legacy;
  if (!Legacy.load(F, Dir, Error))
    return false;

  // Same create-aside-then-swap shape as initializeFresh, with one extra
  // step: the legacy file must vacate the directory's name first. Order:
  //   1. build <dir>.migrate completely, fsync everything in it
  //   2. rename <dir> -> <dir>.legacy          (point of no return)
  //   3. rename <dir>.migrate -> <dir>
  // A crash after 2 leaves no <dir> but a complete .migrate — open()
  // finishes step 3. The .legacy file is kept as an operator rollback
  // (delete it once the new directory has proven itself).
  const std::string Mig = Dir + ".migrate";
  destroyTree(Mig);
  if (!F.mkdir(Mig))
    return fail(Error, "cannot create '" + Mig + "'");
  if (!writeFileSynced(F, Mig + "/base-1.seg", Legacy.serialize(), Error) ||
      !writeFileSynced(F, Mig + "/journal-1.log",
                       journalHeader(Legacy.runCount()), Error) ||
      !writeFileSynced(F, Mig + "/CURRENT", "1\n", Error))
    return false;
  const std::string Parent = support::parentDirOf(Dir);
  if (!F.syncDirectory(Mig) || !F.rename(Dir, Dir + ".legacy") ||
      !F.syncDirectory(Parent) || !F.rename(Mig, Dir) ||
      !F.syncDirectory(Parent))
    return fail(Error, "cannot commit migration of legacy store '" + Dir +
                           "'");
  RecoveryNote = "migrated legacy single-file store (kept as '" + Dir +
                 ".legacy')";
  return true;
}

bool TriageLog::openDirectory(const Options &, std::string *Error) {
  support::FileSystem &F = fs();

  // CURRENT names the live generation. The directory is only ever created
  // fully populated, so a missing or garbled CURRENT is real corruption.
  std::string Cur;
  if (!F.readFile(Dir + "/CURRENT", Cur, Error))
    return fail(Error, "'" + Dir + "': store directory has no readable "
                                   "CURRENT pointer (corrupt store?)");
  while (!Cur.empty() && (Cur.back() == '\n' || Cur.back() == '\r'))
    Cur.pop_back();
  uint64_t G = 0;
  if (Cur.empty() || Cur.size() > 19)
    return fail(Error, "'" + Dir + "': corrupt CURRENT pointer");
  for (char C : Cur) {
    if (C < '0' || C > '9')
      return fail(Error, "'" + Dir + "': corrupt CURRENT pointer");
    G = G * 10 + static_cast<uint64_t>(C - '0');
  }
  if (G == 0)
    return fail(Error, "'" + Dir + "': corrupt CURRENT pointer");
  Gen = G;

  // Base segment: a complete single-file store image, fully validated.
  if (!Store.load(F, basePath(Gen), Error))
    return false;
  if (!F.fileSize(basePath(Gen), BaseSize))
    return fail(Error, "'" + basePath(Gen) + "': cannot stat base segment");
  BaseRunsAtOpen = Store.runCount();

  // Suppressions apply between the base and the journal — the same point
  // the server applied them at ingest time, so the replayed classification
  // of every journaled run matches the original byte for byte. (The
  // suppression list is operator config, not store state: it reads from
  // the real filesystem even under an injected one.)
  if (!Opts.SuppressionFile.empty() &&
      !Store.loadSuppressionFile(Opts.SuppressionFile, Error))
    return false;

  // Replay the journal.
  std::string Bytes;
  if (!F.readFile(journalPath(Gen), Bytes, Error))
    return false;
  // The journal header is written and fsynced before the generation
  // becomes CURRENT, so a live generation always has a complete header;
  // anything less is corruption, not a tear.
  if (Bytes.size() < JournalHeaderSize)
    return fail(Error, "'" + journalPath(Gen) + "': truncated journal header");
  ViewReader Hd{Bytes};
  uint32_t Ver = 0;
  uint64_t Sum = 0, BaseRuns = 0, SigVer32 = 0;
  {
    for (int I = 0; I < 4; ++I)
      if (Bytes[I] != JournalMagic[I])
        return fail(Error, "'" + journalPath(Gen) +
                               "': not a triage journal (bad magic)");
    Hd.Pos = 4;
    uint32_t SigVer = 0;
    if (!Hd.getU32(Ver) || !Hd.getU64(Sum) || !Hd.getU32(SigVer) ||
        !Hd.getU64(BaseRuns))
      return fail(Error, "'" + journalPath(Gen) + "': truncated journal "
                                                  "header");
    SigVer32 = SigVer;
  }
  if (Ver != JournalVersion)
    return fail(Error, "'" + journalPath(Gen) +
                           "': unsupported journal version " +
                           std::to_string(Ver) + " (this build speaks " +
                           std::to_string(JournalVersion) + ")");
  if (fnv1a(std::string_view(Bytes).substr(16, 12)) != Sum)
    return fail(Error, "'" + journalPath(Gen) + "': journal header checksum "
                                                "mismatch");
  if (SigVer32 != RaceSignature::Version)
    return fail(Error, "'" + journalPath(Gen) +
                           "': race-signature version mismatch (journal has "
                           "v" + std::to_string(SigVer32) +
                           ", this build speaks v" +
                           std::to_string(RaceSignature::Version) + ")");
  if (BaseRuns != BaseRunsAtOpen)
    return fail(Error, "'" + journalPath(Gen) + "': journal expects a base "
                                                "of " +
                           std::to_string(BaseRuns) + " runs but '" +
                           basePath(Gen) + "' has " +
                           std::to_string(BaseRunsAtOpen));

  size_t Pos = JournalHeaderSize;
  while (Pos < Bytes.size()) {
    const size_t Remaining = Bytes.size() - Pos;
    bool Torn = Remaining < RecordPreambleSize;
    uint32_t Len = 0;
    uint64_t RecSum = 0;
    if (!Torn) {
      ViewReader Rd{std::string_view(Bytes).substr(Pos)};
      (void)Rd.getU32(Len);
      (void)Rd.getU64(RecSum);
      Torn = Len > Remaining - RecordPreambleSize;
    }
    if (Torn) {
      // A record with fewer bytes on disk than its preamble promises can
      // only be the final, interrupted append (fsync-before-ack means
      // everything earlier is complete). Cut it off and continue; the run
      // it would have been was never acknowledged.
      if (!F.truncate(journalPath(Gen), Pos))
        return fail(Error, "'" + journalPath(Gen) +
                               "': cannot truncate torn journal tail");
      RecoveryNote = "truncated torn journal tail (" +
                     std::to_string(Bytes.size() - Pos) + " bytes)";
      Bytes.resize(Pos);
      break;
    }
    std::string_view Payload =
        std::string_view(Bytes).substr(Pos + RecordPreambleSize, Len);
    if (fnv1a(Payload) != RecSum)
      return fail(Error, "'" + journalPath(Gen) + "': journal record at "
                                                  "offset " +
                             std::to_string(Pos) +
                             " checksum mismatch (corrupt journal)");
    RunInfo Info;
    TriageSummary S;
    std::string Err;
    if (!decodeRecordPayload(Payload, Store.runCount() + 1, Info, S, &Err))
      return fail(Error, "'" + journalPath(Gen) + "': corrupt journal "
                                                  "record at offset " +
                             std::to_string(Pos) + ": " + Err);
    Info.Merge = Store.mergeRun(S);
    Runs.push_back(std::move(Info));
    Pos += RecordPreambleSize + Len;
  }
  JournalSize = Bytes.size();

  removeStaleFiles();

  Journal = F.openWrite(journalPath(Gen), /*Append=*/true, Error);
  if (!Journal)
    return fail(Error, "'" + journalPath(Gen) + "': cannot open journal for "
                                                "append");
  return true;
}

void TriageLog::destroyTree(const std::string &D) {
  support::FileSystem &F = fs();
  if (!F.isDirectory(D)) {
    if (F.exists(D))
      F.remove(D);
    return;
  }
  std::vector<std::string> Names;
  if (F.list(D, Names))
    for (const std::string &N : Names) {
      const std::string Child = D + "/" + N;
      if (F.isDirectory(Child))
        destroyTree(Child);
      else
        F.remove(Child);
    }
  F.removeDir(D);
}

void TriageLog::removeStaleFiles() {
  // Leftovers from interrupted compactions or saves (other generations'
  // segments and journals, CURRENT.tmp, *.tmp.<pid>) are dead weight once
  // a generation is open: CURRENT is the only commit point, so anything it
  // does not reference can go. Best-effort — failing to clean is not an
  // open failure.
  support::FileSystem &F = fs();
  std::vector<std::string> Names;
  if (!F.list(Dir, Names))
    return;
  const std::string KeepBase = "base-" + std::to_string(Gen) + ".seg";
  const std::string KeepJournal = "journal-" + std::to_string(Gen) + ".log";
  for (const std::string &N : Names) {
    if (N == "CURRENT" || N == KeepBase || N == KeepJournal)
      continue;
    const std::string Child = Dir + "/" + N;
    if (F.isDirectory(Child))
      destroyTree(Child);
    else
      F.remove(Child);
  }
}

//===----------------------------------------------------------------------===//
// Ingest
//===----------------------------------------------------------------------===//

bool TriageLog::appendRun(const TriageSummary &S, const std::string &RunId,
                          uint8_t Content, TriageStore::MergeResult &Out,
                          std::string *Error) {
  if (RunId.size() > MaxRunIdBytes)
    return fail(Error, "run id exceeds " + std::to_string(MaxRunIdBytes) +
                           " bytes");
  if (inMemory()) {
    RunInfo Info;
    Info.Run = Store.runCount() + 1;
    Info.RunId = RunId;
    Info.Content = Content;
    Info.Declared = S.RacesDeclared;
    Info.Dropped = S.DroppedDeclarations;
    Info.Capped = S.Capped;
    Info.Distinct = S.Entries.size();
    Out = Store.mergeRun(S);
    Info.Merge = Out;
    Runs.push_back(std::move(Info));
    return true;
  }
  if (Poisoned)
    return fail(Error, "store is poisoned by an earlier append failure; "
                       "restart to recover");
  if (!Journal)
    return fail(Error, "store is not open");

  const uint32_t RunIndex = Store.runCount() + 1;
  const std::string Record = encodeRecord(RunIndex, Content, RunId, S);
  // fsync-before-ack: the record must be durable before the merge becomes
  // visible (and before the caller acknowledges the upload). If either
  // step fails, a torn record may sit on disk — poison the log so no
  // further append writes after it; a reopen truncates the tear.
  if (!support::writeAll(*Journal, Record) || !Journal->sync()) {
    Poisoned = true;
    return fail(Error, "I/O error appending to '" + journalPath(Gen) +
                           "' (store poisoned until reopen)");
  }
  JournalSize += Record.size();
  BytesAppended += Record.size();

  RunInfo Info;
  Info.Run = RunIndex;
  Info.RunId = RunId;
  Info.Content = Content;
  Info.Declared = S.RacesDeclared;
  Info.Dropped = S.DroppedDeclarations;
  Info.Capped = S.Capped;
  Info.Distinct = S.Entries.size();
  Out = Store.mergeRun(S);
  Info.Merge = Out;
  Runs.push_back(std::move(Info));
  return true;
}

//===----------------------------------------------------------------------===//
// Compaction
//===----------------------------------------------------------------------===//

bool TriageLog::needsCompaction() const {
  if (inMemory() || Poisoned)
    return false;
  const uint64_t LiveJournal =
      JournalSize > JournalHeaderSize ? JournalSize - JournalHeaderSize : 0;
  return LiveJournal >= Opts.MinCompactionBytes &&
         static_cast<double>(LiveJournal) >
             Opts.CompactionRatio * static_cast<double>(BaseSize);
}

bool TriageLog::beginCompaction(CompactionPlan &P) {
  if (inMemory() || Poisoned || !Journal)
    return false;
  P.Snapshot = Store;
  P.JournalOffset = JournalSize;
  P.Generation = Gen;
  P.Prepared = false;
  return true;
}

bool TriageLog::prepareCompaction(CompactionPlan &P, std::string *Error) {
  // Writes only generation G+1 files; appends keep landing in journal-G,
  // so this O(store) step is safe without the caller's writer lock.
  if (!P.Snapshot.save(fs(), basePath(P.Generation + 1), Error))
    return false;
  P.Prepared = true;
  return true;
}

bool TriageLog::commitCompaction(CompactionPlan &P, std::string *Error) {
  if (!P.Prepared)
    return fail(Error, "compaction plan was not prepared");
  if (P.Generation != Gen || Poisoned)
    return fail(Error, "compaction plan is stale");

  support::FileSystem &F = fs();
  const uint64_t NewGen = P.Generation + 1;

  // Records appended while the plan was being prepared carry over into the
  // new generation's journal verbatim (their run indices already continue
  // from the snapshot's run count).
  std::string Old;
  if (!F.readFile(journalPath(Gen), Old, Error))
    return false;
  if (Old.size() < P.JournalOffset)
    return fail(Error, "journal shrank during compaction");
  std::string NewJournal = journalHeader(P.Snapshot.runCount());
  NewJournal.append(Old, P.JournalOffset, std::string::npos);
  if (!writeFileSynced(F, journalPath(NewGen), NewJournal, Error))
    return false;
  // Make both new files' names durable before CURRENT can point at them.
  if (!F.syncDirectory(Dir))
    return fail(Error, "cannot sync '" + Dir + "'");

  // The commit point: CURRENT flips via the temp+fsync+rename dance. Until
  // the directory sync lands, a crash recovers the old generation; after
  // it, the new one. Never a mix.
  if (!writeFileSynced(F, Dir + "/CURRENT.tmp",
                       std::to_string(NewGen) + "\n", Error) ||
      !F.rename(Dir + "/CURRENT.tmp", Dir + "/CURRENT") ||
      !F.syncDirectory(Dir))
    return fail(Error, "cannot commit CURRENT pointer in '" + Dir + "'");

  Gen = NewGen;
  JournalSize = NewJournal.size();
  if (!F.fileSize(basePath(Gen), BaseSize))
    BaseSize = P.Snapshot.serialize().size();
  BytesCompacted += BaseSize + NewJournal.size();
  ++Compactions;
  // Runs folded into the new base no longer replay individually.
  const uint32_t Sealed = P.Snapshot.runCount();
  Runs.erase(std::remove_if(Runs.begin(), Runs.end(),
                            [&](const RunInfo &R) { return R.Run <= Sealed; }),
             Runs.end());

  // Re-point the append handle at the new journal. Failure here poisons:
  // the commit is durable, but we cannot append to the dead generation.
  if (Journal)
    Journal->close();
  Journal = F.openWrite(journalPath(Gen), /*Append=*/true);
  if (!Journal) {
    Poisoned = true;
    return fail(Error, "compaction committed but cannot reopen '" +
                           journalPath(Gen) + "' (store poisoned until "
                                              "reopen)");
  }

  // Old generation: dead weight now, gone best-effort.
  F.remove(basePath(P.Generation));
  F.remove(journalPath(P.Generation));
  return true;
}

bool TriageLog::compact(std::string *Error) {
  CompactionPlan P;
  if (!beginCompaction(P))
    return fail(Error, "store is in-memory, poisoned, or not open");
  if (!prepareCompaction(P, Error))
    return false;
  return commitCompaction(P, Error);
}
