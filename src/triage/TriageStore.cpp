//===- triage/TriageStore.cpp - Cross-run persistence -----------------------=//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/triage/TriageStore.h"

#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <fstream>

using namespace sampletrack;
using namespace sampletrack::triage;

const char *sampletrack::triage::raceStatusName(RaceStatus S) {
  switch (S) {
  case RaceStatus::New:
    return "new";
  case RaceStatus::Known:
    return "known";
  case RaceStatus::Regressed:
    return "regressed";
  case RaceStatus::Suppressed:
    return "suppressed";
  }
  return "?";
}

const TriageStore::Record *TriageStore::find(uint64_t Sig) const {
  auto It = Index.find(Sig);
  return It == Index.end() ? nullptr : &Records[It->second];
}

TriageStore::Record &TriageStore::findOrCreate(uint64_t Sig) {
  auto [It, New] = Index.try_emplace(Sig, Records.size());
  if (New) {
    Records.push_back(Record{});
    Records.back().Signature = Sig;
  }
  return Records[It->second];
}

TriageStore::MergeResult TriageStore::mergeRun(const TriageSummary &S) {
  ++RunCounter;
  MergeResult Out;
  for (const TriageEntry &E : S.Entries) {
    Record &R = findOrCreate(E.Signature);
    bool FirstEver = R.Runs == 0;
    // LastSeenRun < RunCounter - 1 means the signature skipped at least one
    // whole run and came back: a regression of a race that had gone quiet.
    bool CameBack = !FirstEver && R.LastSeenRun + 1 < RunCounter;
    R.Hits += E.Hits;
    R.Runs += 1;
    if (FirstEver) {
      R.FirstSeenRun = RunCounter;
      R.Exemplar = E.Exemplar;
    }
    R.LastSeenRun = RunCounter;
    if (R.Suppressed) {
      ++Out.SuppressedSignatures;
      R.LastStatus = RaceStatus::Suppressed;
    } else if (FirstEver) {
      ++Out.NewSignatures;
      Out.NewRaces.push_back(E);
      R.LastStatus = RaceStatus::New;
    } else if (CameBack) {
      ++Out.RegressedSignatures;
      Out.RegressedRaces.push_back(E);
      R.LastStatus = RaceStatus::Regressed;
    } else {
      ++Out.KnownSignatures;
      R.LastStatus = RaceStatus::Known;
    }
  }
  return Out;
}

void TriageStore::suppress(uint64_t Sig) { findOrCreate(Sig).Suppressed = true; }

bool TriageStore::isSuppressed(uint64_t Sig) const {
  const Record *R = find(Sig);
  return R && R->Suppressed;
}

bool TriageStore::loadSuppressionFile(const std::string &Path,
                                      std::string *Error) {
  std::ifstream Is(Path);
  if (!Is) {
    if (Error)
      *Error = "cannot open suppression file '" + Path + "'";
    return false;
  }
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(Is, Line)) {
    ++LineNo;
    // Strip a trailing comment and surrounding whitespace.
    size_t Hash = Line.find('#');
    if (Hash != std::string::npos)
      Line.resize(Hash);
    size_t B = Line.find_first_not_of(" \t\r");
    if (B == std::string::npos)
      continue;
    size_t E = Line.find_last_not_of(" \t\r");
    std::string Token = Line.substr(B, E - B + 1);
    std::optional<RaceSignature> Sig = RaceSignature::parseHex(Token);
    if (!Sig) {
      if (Error)
        *Error = Path + ":" + std::to_string(LineNo) +
                 ": not a hex race signature: '" + Token + "'";
      return false;
    }
    suppress(Sig->Value);
  }
  return true;
}

std::vector<const TriageStore::Record *>
TriageStore::ranked(size_t TopN) const {
  std::vector<const Record *> Out;
  Out.reserve(Records.size());
  for (const Record &R : Records)
    Out.push_back(&R);
  std::stable_sort(Out.begin(), Out.end(),
                   [](const Record *A, const Record *B) {
                     if (A->Suppressed != B->Suppressed)
                       return !A->Suppressed; // Suppressed sort last.
                     if (A->Hits != B->Hits)
                       return A->Hits > B->Hits;
                     return A->Signature < B->Signature;
                   });
  if (TopN && Out.size() > TopN)
    Out.resize(TopN);
  return Out;
}

//===----------------------------------------------------------------------===//
// Persistence: compact little-endian binary, versioned with the signature
// scheme and checksummed so corruption is rejected, never loaded.
//
// Layout (format version 2):
//   "STTS"  magic
//   u32     format version
//   u64     FNV-1a checksum of the payload that follows
//   payload: u32 signature version | u32 run counter | u64 record count |
//            records
//
// deserialize() verifies, in order: magic, format version (a clear message
// for stores written by other versions), checksum (any truncation or bit
// flip past the header fails here), then parses the payload with exact
// length accounting (trailing garbage is an error) and validates every
// record's structural invariants. A failed load leaves the store
// untouched.
//
// All file I/O goes through support::FileSystem so the crash tests can
// fail any operation; this same byte image doubles as the TriageLog base
// segment.
//===----------------------------------------------------------------------===//

namespace {

constexpr char Magic[4] = {'S', 'T', 'T', 'S'};
constexpr uint32_t FormatVersion = 2;

uint64_t fnv1a(const std::string &Bytes) {
  Fnv1a H;
  H.bytes(Bytes.data(), Bytes.size());
  return H.value();
}

void putU32(std::string &S, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    S.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

void putU64(std::string &S, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    S.push_back(static_cast<char>((V >> (8 * I)) & 0xff));
}

/// Bounds-checked little-endian reader over the in-memory payload.
struct PayloadReader {
  const std::string &Bytes;
  size_t Pos = 0;

  bool getU32(uint32_t &V) {
    if (Bytes.size() - Pos < 4)
      return false;
    V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(
               static_cast<unsigned char>(Bytes[Pos + I]))
           << (8 * I);
    Pos += 4;
    return true;
  }

  bool getU64(uint64_t &V) {
    if (Bytes.size() - Pos < 8)
      return false;
    V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(
               static_cast<unsigned char>(Bytes[Pos + I]))
           << (8 * I);
    Pos += 8;
    return true;
  }

  bool getByte(uint8_t &V) {
    if (Pos >= Bytes.size())
      return false;
    V = static_cast<unsigned char>(Bytes[Pos++]);
    return true;
  }

  bool exhausted() const { return Pos == Bytes.size(); }
};

} // namespace

std::string TriageStore::serialize() const {
  // The payload first so the header can carry its checksum.
  std::string Payload;
  Payload.reserve(16 + Records.size() * 46);
  putU32(Payload, RaceSignature::Version);
  putU32(Payload, RunCounter);
  putU64(Payload, Records.size());
  for (const Record &R : Records) {
    putU64(Payload, R.Signature);
    putU64(Payload, R.Hits);
    putU32(Payload, R.Runs);
    putU32(Payload, R.FirstSeenRun);
    putU32(Payload, R.LastSeenRun);
    Payload.push_back(R.Suppressed ? 1 : 0);
    Payload.push_back(static_cast<char>(R.LastStatus));
    putU64(Payload, R.Exemplar.EventIndex);
    putU32(Payload, R.Exemplar.Tid);
    putU64(Payload, R.Exemplar.Var);
    Payload.push_back(static_cast<char>(R.Exemplar.Kind));
  }

  std::string Out;
  Out.reserve(16 + Payload.size());
  Out.append(Magic, 4);
  putU32(Out, FormatVersion);
  putU64(Out, fnv1a(Payload));
  Out += Payload;
  return Out;
}

bool TriageStore::save(support::FileSystem &Fs, const std::string &Path,
                       std::string *Error) const {
  std::string Image = serialize();

  // Crash-safe save: write a temp file in the same directory (rename is
  // only atomic within one filesystem), fsync its *contents*, then rename
  // over the target and fsync the directory entry. A reader — or a crash —
  // at any point sees either the old complete store or the new complete
  // store, never a torn one. The fsync before the rename matters: rename
  // alone orders only the name change, so a crash after it could leave the
  // durable name pointing at bytes that never reached stable storage.
  std::string TmpPath =
      Path + ".tmp." + std::to_string(static_cast<unsigned>(::getpid()));
  auto FailTmp = [&](const std::string &Msg) {
    Fs.remove(TmpPath);
    if (Error)
      *Error = Msg;
    return false;
  };
  std::unique_ptr<support::WritableFile> Os =
      Fs.openWrite(TmpPath, /*Append=*/false);
  if (!Os) {
    if (Error)
      *Error = "cannot write '" + TmpPath + "'";
    return false;
  }
  if (!support::writeAll(*Os, Image))
    return FailTmp("I/O error writing '" + TmpPath + "'");
  if (!Os->sync())
    return FailTmp("cannot fsync '" + TmpPath + "'");
  if (!Os->close())
    return FailTmp("cannot close '" + TmpPath + "'");
  if (!Fs.rename(TmpPath, Path))
    return FailTmp("cannot rename '" + TmpPath + "' over '" + Path + "'");
  // Make the rename itself durable. The store is already atomically in
  // place at this point, so a failure here (exotic filesystems refusing
  // directory fsync) downgrades durability but must not fail the save or
  // touch the now-live file.
  (void)Fs.syncDirectory(support::parentDirOf(Path));
  return true;
}

bool TriageStore::save(const std::string &Path, std::string *Error) const {
  return save(support::FileSystem::real(), Path, Error);
}

bool TriageStore::deserialize(const std::string &Image, std::string *Error) {
  auto Fail = [&](const std::string &Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  if (Image.size() < 16 || std::memcmp(Image.data(), Magic, 4) != 0)
    return Fail("not a triage store (bad magic)");
  PayloadReader Hd{Image, 4};
  uint32_t Fmt = 0;
  uint64_t Sum = 0;
  if (!Hd.getU32(Fmt) || !Hd.getU64(Sum))
    return Fail("truncated header");
  if (Fmt != FormatVersion)
    return Fail("unsupported store format version " + std::to_string(Fmt) +
                " (this build reads version " +
                std::to_string(FormatVersion) + "); regenerate the store");

  // Verify the payload checksum before believing one byte of it: a chopped
  // file or a flipped bit anywhere past the header fails here instead of
  // parsing into garbage.
  std::string Bytes = Image.substr(16);
  if (fnv1a(Bytes) != Sum)
    return Fail("payload checksum mismatch (truncated or corrupted store)");

  PayloadReader Rd{Bytes};
  uint32_t SigVer = 0, Runs = 0;
  uint64_t Count = 0;
  if (!Rd.getU32(SigVer) || !Rd.getU32(Runs) || !Rd.getU64(Count))
    return Fail("truncated header");
  if (SigVer != RaceSignature::Version)
    return Fail("race-signature version mismatch; regenerate the store");
  std::vector<Record> Loaded;
  std::unordered_map<uint64_t, size_t> NewIndex;
  Loaded.reserve(Count < (1u << 20) ? Count : (1u << 20));
  for (uint64_t I = 0; I < Count; ++I) {
    Record R;
    uint32_t Tid = 0;
    uint8_t Flag = 0, Status = 0, Kind = 0;
    if (!Rd.getU64(R.Signature) || !Rd.getU64(R.Hits) ||
        !Rd.getU32(R.Runs) || !Rd.getU32(R.FirstSeenRun) ||
        !Rd.getU32(R.LastSeenRun) || !Rd.getByte(Flag) ||
        !Rd.getByte(Status) || !Rd.getU64(R.Exemplar.EventIndex) ||
        !Rd.getU32(Tid) || !Rd.getU64(R.Exemplar.Var) || !Rd.getByte(Kind))
      return Fail("truncated record");
    if (Kind > static_cast<uint8_t>(OpKind::AcquireLoad))
      return Fail("corrupt record (bad op kind)");
    if (Status > static_cast<uint8_t>(RaceStatus::Suppressed))
      return Fail("corrupt record (bad status)");
    R.Suppressed = Flag != 0;
    R.LastStatus = static_cast<RaceStatus>(Status);
    R.Exemplar.Tid = Tid;
    R.Exemplar.Kind = static_cast<OpKind>(Kind);
    // Structural invariants every mergeRun-produced record satisfies.
    if (R.Runs == 0) {
      // Only a pre-suppression placeholder has no sighting history.
      if (!R.Suppressed || R.Hits != 0 || R.FirstSeenRun != 0 ||
          R.LastSeenRun != 0)
        return Fail("corrupt record (history on an unseen signature)");
    } else {
      if (R.FirstSeenRun == 0 || R.FirstSeenRun > R.LastSeenRun ||
          R.LastSeenRun > Runs)
        return Fail("corrupt record (sighting runs out of range)");
      if (R.Runs > R.LastSeenRun - R.FirstSeenRun + 1 || R.Hits < R.Runs)
        return Fail("corrupt record (inconsistent sighting counts)");
    }
    if (!NewIndex.emplace(R.Signature, Loaded.size()).second)
      return Fail("corrupt store (duplicate signature)");
    Loaded.push_back(R);
  }
  if (!Rd.exhausted())
    return Fail("trailing garbage after the last record");
  RunCounter = Runs;
  Records = std::move(Loaded);
  Index = std::move(NewIndex);
  return true;
}

bool TriageStore::load(support::FileSystem &Fs, const std::string &Path,
                       std::string *Error) {
  std::string Image;
  std::string Err;
  if (!Fs.readFile(Path, Image, &Err)) {
    if (Error)
      *Error = Err;
    return false;
  }
  if (!deserialize(Image, &Err)) {
    if (Error)
      *Error = "'" + Path + "': " + Err;
    return false;
  }
  return true;
}

bool TriageStore::load(const std::string &Path, std::string *Error) {
  return load(support::FileSystem::real(), Path, Error);
}

bool TriageStore::loadIfExists(support::FileSystem &Fs,
                               const std::string &Path, std::string *Error) {
  if (!Fs.exists(Path)) {
    RunCounter = 0;
    Records.clear();
    Index.clear();
    return true; // Fresh store.
  }
  return load(Fs, Path, Error);
}

bool TriageStore::loadIfExists(const std::string &Path, std::string *Error) {
  return loadIfExists(support::FileSystem::real(), Path, Error);
}
