//===- triage/TriageStore.cpp - Cross-run persistence -----------------------=//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/triage/TriageStore.h"

#include <algorithm>
#include <cstring>
#include <fstream>

using namespace sampletrack;
using namespace sampletrack::triage;

const char *sampletrack::triage::raceStatusName(RaceStatus S) {
  switch (S) {
  case RaceStatus::New:
    return "new";
  case RaceStatus::Known:
    return "known";
  case RaceStatus::Regressed:
    return "regressed";
  case RaceStatus::Suppressed:
    return "suppressed";
  }
  return "?";
}

const TriageStore::Record *TriageStore::find(uint64_t Sig) const {
  auto It = Index.find(Sig);
  return It == Index.end() ? nullptr : &Records[It->second];
}

TriageStore::Record &TriageStore::findOrCreate(uint64_t Sig) {
  auto [It, New] = Index.try_emplace(Sig, Records.size());
  if (New) {
    Records.push_back(Record{});
    Records.back().Signature = Sig;
  }
  return Records[It->second];
}

TriageStore::MergeResult TriageStore::mergeRun(const TriageSummary &S) {
  ++RunCounter;
  MergeResult Out;
  for (const TriageEntry &E : S.Entries) {
    Record &R = findOrCreate(E.Signature);
    bool FirstEver = R.Runs == 0;
    // LastSeenRun < RunCounter - 1 means the signature skipped at least one
    // whole run and came back: a regression of a race that had gone quiet.
    bool CameBack = !FirstEver && R.LastSeenRun + 1 < RunCounter;
    R.Hits += E.Hits;
    R.Runs += 1;
    if (FirstEver) {
      R.FirstSeenRun = RunCounter;
      R.Exemplar = E.Exemplar;
    }
    R.LastSeenRun = RunCounter;
    if (R.Suppressed) {
      ++Out.SuppressedSignatures;
      R.LastStatus = RaceStatus::Suppressed;
    } else if (FirstEver) {
      ++Out.NewSignatures;
      Out.NewRaces.push_back(E);
      R.LastStatus = RaceStatus::New;
    } else if (CameBack) {
      ++Out.RegressedSignatures;
      Out.RegressedRaces.push_back(E);
      R.LastStatus = RaceStatus::Regressed;
    } else {
      ++Out.KnownSignatures;
      R.LastStatus = RaceStatus::Known;
    }
  }
  return Out;
}

void TriageStore::suppress(uint64_t Sig) { findOrCreate(Sig).Suppressed = true; }

bool TriageStore::isSuppressed(uint64_t Sig) const {
  const Record *R = find(Sig);
  return R && R->Suppressed;
}

bool TriageStore::loadSuppressionFile(const std::string &Path,
                                      std::string *Error) {
  std::ifstream Is(Path);
  if (!Is) {
    if (Error)
      *Error = "cannot open suppression file '" + Path + "'";
    return false;
  }
  std::string Line;
  size_t LineNo = 0;
  while (std::getline(Is, Line)) {
    ++LineNo;
    // Strip a trailing comment and surrounding whitespace.
    size_t Hash = Line.find('#');
    if (Hash != std::string::npos)
      Line.resize(Hash);
    size_t B = Line.find_first_not_of(" \t\r");
    if (B == std::string::npos)
      continue;
    size_t E = Line.find_last_not_of(" \t\r");
    std::string Token = Line.substr(B, E - B + 1);
    std::optional<RaceSignature> Sig = RaceSignature::parseHex(Token);
    if (!Sig) {
      if (Error)
        *Error = Path + ":" + std::to_string(LineNo) +
                 ": not a hex race signature: '" + Token + "'";
      return false;
    }
    suppress(Sig->Value);
  }
  return true;
}

std::vector<const TriageStore::Record *>
TriageStore::ranked(size_t TopN) const {
  std::vector<const Record *> Out;
  Out.reserve(Records.size());
  for (const Record &R : Records)
    Out.push_back(&R);
  std::stable_sort(Out.begin(), Out.end(),
                   [](const Record *A, const Record *B) {
                     if (A->Suppressed != B->Suppressed)
                       return !A->Suppressed; // Suppressed sort last.
                     if (A->Hits != B->Hits)
                       return A->Hits > B->Hits;
                     return A->Signature < B->Signature;
                   });
  if (TopN && Out.size() > TopN)
    Out.resize(TopN);
  return Out;
}

//===----------------------------------------------------------------------===//
// Persistence: compact little-endian binary, versioned with the signature
// scheme.
//===----------------------------------------------------------------------===//

namespace {

constexpr char Magic[4] = {'S', 'T', 'T', 'S'};
constexpr uint32_t FormatVersion = 1;

void putU32(std::ostream &Os, uint32_t V) {
  char B[4];
  for (int I = 0; I < 4; ++I)
    B[I] = static_cast<char>((V >> (8 * I)) & 0xff);
  Os.write(B, 4);
}

void putU64(std::ostream &Os, uint64_t V) {
  char B[8];
  for (int I = 0; I < 8; ++I)
    B[I] = static_cast<char>((V >> (8 * I)) & 0xff);
  Os.write(B, 8);
}

bool getU32(std::istream &Is, uint32_t &V) {
  char B[4];
  if (!Is.read(B, 4))
    return false;
  V = 0;
  for (int I = 0; I < 4; ++I)
    V |= static_cast<uint32_t>(static_cast<unsigned char>(B[I])) << (8 * I);
  return true;
}

bool getU64(std::istream &Is, uint64_t &V) {
  char B[8];
  if (!Is.read(B, 8))
    return false;
  V = 0;
  for (int I = 0; I < 8; ++I)
    V |= static_cast<uint64_t>(static_cast<unsigned char>(B[I])) << (8 * I);
  return true;
}

} // namespace

bool TriageStore::save(const std::string &Path, std::string *Error) const {
  std::ofstream Os(Path, std::ios::binary);
  if (!Os) {
    if (Error)
      *Error = "cannot write '" + Path + "'";
    return false;
  }
  Os.write(Magic, 4);
  putU32(Os, FormatVersion);
  putU32(Os, RaceSignature::Version);
  putU32(Os, RunCounter);
  putU64(Os, Records.size());
  for (const Record &R : Records) {
    putU64(Os, R.Signature);
    putU64(Os, R.Hits);
    putU32(Os, R.Runs);
    putU32(Os, R.FirstSeenRun);
    putU32(Os, R.LastSeenRun);
    Os.put(R.Suppressed ? 1 : 0);
    Os.put(static_cast<char>(R.LastStatus));
    putU64(Os, R.Exemplar.EventIndex);
    putU32(Os, R.Exemplar.Tid);
    putU64(Os, R.Exemplar.Var);
    Os.put(static_cast<char>(R.Exemplar.Kind));
  }
  Os.flush();
  if (!Os) {
    if (Error)
      *Error = "I/O error writing '" + Path + "'";
    return false;
  }
  return true;
}

bool TriageStore::load(const std::string &Path, std::string *Error) {
  std::ifstream Is(Path, std::ios::binary);
  if (!Is) {
    if (Error)
      *Error = "cannot open '" + Path + "'";
    return false;
  }
  auto Fail = [&](const char *Msg) {
    if (Error)
      *Error = "'" + Path + "': " + Msg;
    return false;
  };
  char M[4];
  if (!Is.read(M, 4) || std::memcmp(M, Magic, 4) != 0)
    return Fail("not a triage store (bad magic)");
  uint32_t Fmt = 0, SigVer = 0, Runs = 0;
  uint64_t Count = 0;
  if (!getU32(Is, Fmt) || !getU32(Is, SigVer) || !getU32(Is, Runs) ||
      !getU64(Is, Count))
    return Fail("truncated header");
  if (Fmt != FormatVersion)
    return Fail("unsupported store format version");
  if (SigVer != RaceSignature::Version)
    return Fail("race-signature version mismatch; regenerate the store");
  std::vector<Record> Loaded;
  Loaded.reserve(Count < (1u << 20) ? Count : (1u << 20));
  for (uint64_t I = 0; I < Count; ++I) {
    Record R;
    uint32_t Tid = 0;
    char Flag = 0, Status = 0, Kind = 0;
    if (!getU64(Is, R.Signature) || !getU64(Is, R.Hits) ||
        !getU32(Is, R.Runs) || !getU32(Is, R.FirstSeenRun) ||
        !getU32(Is, R.LastSeenRun) || !Is.get(Flag) || !Is.get(Status) ||
        !getU64(Is, R.Exemplar.EventIndex) || !getU32(Is, Tid) ||
        !getU64(Is, R.Exemplar.Var) || !Is.get(Kind))
      return Fail("truncated record");
    if (static_cast<unsigned char>(Kind) >
        static_cast<unsigned char>(OpKind::AcquireLoad))
      return Fail("corrupt record (bad op kind)");
    if (static_cast<unsigned char>(Status) >
        static_cast<unsigned char>(RaceStatus::Suppressed))
      return Fail("corrupt record (bad status)");
    R.Suppressed = Flag != 0;
    R.LastStatus = static_cast<RaceStatus>(Status);
    R.Exemplar.Tid = Tid;
    R.Exemplar.Kind = static_cast<OpKind>(Kind);
    Loaded.push_back(R);
  }
  RunCounter = Runs;
  Records = std::move(Loaded);
  Index.clear();
  for (size_t I = 0; I < Records.size(); ++I)
    Index.emplace(Records[I].Signature, I);
  return true;
}

bool TriageStore::loadIfExists(const std::string &Path, std::string *Error) {
  std::ifstream Probe(Path, std::ios::binary);
  if (!Probe) {
    RunCounter = 0;
    Records.clear();
    Index.clear();
    return true; // Fresh store.
  }
  Probe.close();
  return load(Path, Error);
}
