//===- triage/RaceSink.cpp - Dedup table at ingest --------------------------=//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/triage/RaceSink.h"

#include <algorithm>
#include <cassert>

using namespace sampletrack;
using namespace sampletrack::triage;

RaceSink::RaceSink(size_t Capacity) : Cap(Capacity ? Capacity : 1) {}

void RaceSink::setCapacity(size_t Capacity) {
  assert(Exemplars.empty() && Total == 0 &&
         "capacity must be set before the first insert");
  Cap = Capacity ? Capacity : 1;
}

size_t RaceSink::probe(uint64_t Sig) const {
  // The signature is already a mixed 64-bit value; masking it is as good a
  // bucket choice as rehashing it.
  size_t Mask = Slots.size() - 1;
  size_t I = static_cast<size_t>(Sig) & Mask;
  while (Slots[I].Idx != EmptyIdx && Slots[I].Sig != Sig)
    I = (I + 1) & Mask;
  return I;
}

void RaceSink::growTable() {
  // First insert: start small (a sink that never sees more than a handful
  // of distinct races should not pay megabytes); later: double. Either way
  // the slot count stays a power of two more than twice the entry count,
  // so probes terminate and stay short.
  size_t NewSize = Slots.empty() ? 1024 : Slots.size() * 2;
  std::vector<Slot> Old = std::move(Slots);
  Slots.assign(NewSize, Slot{});
  for (const Slot &S : Old)
    if (S.Idx != EmptyIdx)
      Slots[probe(S.Sig)] = S;
}

bool RaceSink::add(uint64_t Sig, const RaceReport &R, uint64_t HitCount) {
  if (!HitCount)
    return false;
  Total += HitCount;
  if (Slots.empty())
    growTable();
  size_t I = probe(Sig);
  if (Slots[I].Idx != EmptyIdx) {
    Hits[Slots[I].Idx] += HitCount; // Hot path: known key, no allocation.
    return false;
  }
  if (Exemplars.size() >= Cap) {
    Dropped += HitCount;
    return false;
  }
  Slots[I] = Slot{Sig, static_cast<uint32_t>(Exemplars.size())};
  Exemplars.push_back(R);
  Hits.push_back(HitCount);
  if (Exemplars.size() * 2 >= Slots.size())
    growTable();
  return true;
}

void RaceSink::absorb(const RaceSink &O) {
  for (size_t K = 0; K < O.Exemplars.size(); ++K)
    add(RaceSignature::of(O.Exemplars[K]).Value, O.Exemplars[K], O.Hits[K]);
  Total += O.Dropped;
  Dropped += O.Dropped;
}

uint64_t RaceSink::hitsFor(uint64_t Sig) const {
  if (Slots.empty())
    return 0;
  size_t I = probe(Sig);
  return Slots[I].Idx == EmptyIdx ? 0 : Hits[Slots[I].Idx];
}

TriageSummary RaceSink::summary() const {
  TriageSummary S;
  S.Entries.reserve(Exemplars.size());
  for (size_t I = 0; I < Exemplars.size(); ++I)
    S.Entries.push_back(TriageEntry{RaceSignature::of(Exemplars[I]).Value,
                                    Hits[I], Exemplars[I]});
  S.RacesDeclared = Total;
  S.DroppedDeclarations = Dropped;
  S.Capped = Dropped != 0;
  return S;
}

void RaceSink::clear() {
  Total = 0;
  Dropped = 0;
  Slots.clear();
  Exemplars.clear();
  Hits.clear();
}

TriageSummary
sampletrack::triage::mergeSummaries(const std::vector<TriageSummary> &Parts) {
  size_t Distinct = 0;
  for (const TriageSummary &P : Parts)
    Distinct += P.Entries.size();
  RaceSink Tmp(Distinct ? Distinct : 1);
  TriageSummary Out;
  for (const TriageSummary &P : Parts) {
    for (const TriageEntry &E : P.Entries)
      Tmp.add(E.Signature, E.Exemplar, E.Hits);
    Out.RacesDeclared += P.RacesDeclared;
    Out.DroppedDeclarations += P.DroppedDeclarations;
    Out.Capped = Out.Capped || P.Capped;
  }
  Out.Entries = Tmp.summary().Entries;
  return Out;
}

TriageSummary
sampletrack::triage::mergeShardSummaries(const std::vector<TriageSummary> &Shards,
                                         size_t Capacity) {
  // Interleave the shards' first-seen streams by exemplar position. Stable
  // for determinism's sake, though positions are unique: one event declares
  // at most one distinct (var, kind, role) triple.
  std::vector<TriageEntry> All;
  TriageSummary Out;
  for (const TriageSummary &S : Shards) {
    All.insert(All.end(), S.Entries.begin(), S.Entries.end());
    Out.RacesDeclared += S.RacesDeclared;
    Out.DroppedDeclarations += S.DroppedDeclarations;
    Out.Capped = Out.Capped || S.Capped;
  }
  std::stable_sort(All.begin(), All.end(),
                   [](const TriageEntry &A, const TriageEntry &B) {
                     return A.Exemplar.EventIndex < B.Exemplar.EventIndex;
                   });
  // Re-cap at the lane capacity. Shards partition the variable space, so
  // signatures are disjoint across shards up to 64-bit collisions — but a
  // collision must dedup here exactly as the sequential sink would have
  // (hits accumulate on the earliest exemplar), so probe through a sink.
  size_t LaneCap = Capacity ? Capacity : 1;
  RaceSink Tmp(LaneCap);
  for (const TriageEntry &E : All)
    Tmp.add(E.Signature, E.Exemplar, E.Hits);
  TriageSummary Merged = Tmp.summary();
  Out.Entries = std::move(Merged.Entries);
  Out.DroppedDeclarations += Merged.DroppedDeclarations;
  Out.Capped = Out.Capped || Merged.Capped;
  return Out;
}
