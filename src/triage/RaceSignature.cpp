//===- triage/RaceSignature.cpp - Stable race identity ----------------------=//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/triage/RaceSignature.h"

#include <cctype>
#include <cstdio>

using namespace sampletrack;
using namespace sampletrack::triage;

namespace {

/// SplitMix64's finalizer: a cheap, well-distributed 64-bit mixer. The
/// constants are part of the persisted format (see the stability contract
/// in the header) — do not retune without bumping RaceSignature::Version.
uint64_t mix64(uint64_t X) {
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ULL;
  X ^= X >> 27;
  X *= 0x94d049bb133111ebULL;
  X ^= X >> 31;
  return X;
}

} // namespace

RaceSignature RaceSignature::of(VarId Var, OpKind Kind, ThreadId Tid) {
  // Three mixing rounds, each folding in one component with a distinct odd
  // multiplier so (Var, Kind, Role) permutations cannot collide by
  // construction of the same sum.
  uint64_t H = mix64(Var * 0x9e3779b97f4a7c15ULL + 1);
  H = mix64(H ^ (static_cast<uint64_t>(Kind) * 0xc2b2ae3d27d4eb4fULL + 2));
  H = mix64(H ^ (static_cast<uint64_t>(threadRole(Tid)) *
                     0x165667b19e3779f9ULL +
                 3));
  return RaceSignature{H};
}

std::string RaceSignature::hex() const {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(Value));
  return Buf;
}

std::optional<RaceSignature> RaceSignature::parseHex(const std::string &S) {
  size_t Begin = 0;
  if (S.size() >= 2 && S[0] == '0' && (S[1] == 'x' || S[1] == 'X'))
    Begin = 2;
  if (Begin == S.size() || S.size() - Begin > 16)
    return std::nullopt;
  uint64_t V = 0;
  for (size_t I = Begin; I < S.size(); ++I) {
    char C = S[I];
    unsigned Digit;
    if (C >= '0' && C <= '9')
      Digit = C - '0';
    else if (C >= 'a' && C <= 'f')
      Digit = 10 + (C - 'a');
    else if (C >= 'A' && C <= 'F')
      Digit = 10 + (C - 'A');
    else
      return std::nullopt;
    V = (V << 4) | Digit;
  }
  return RaceSignature{V};
}
