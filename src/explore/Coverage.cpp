//===- explore/Coverage.cpp - Exploration coverage ---------------------------//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/explore/Coverage.h"

#include <cstdio>
#include <sstream>

using namespace sampletrack;
using namespace sampletrack::explore;

namespace {

/// Fixed-precision double rendering so equal rates are equal bytes.
std::string rate(double V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.4f", V);
  return Buf;
}

std::string hex16(uint64_t V) {
  char Buf[20];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

} // namespace

std::string sampletrack::explore::toJson(const ExploreReport &R) {
  std::ostringstream OS;
  OS << "{\n"
     << "  \"mode\": \"" << R.Mode << "\",\n"
     << "  \"seed\": " << R.Seed << ",\n"
     << "  \"schedulesRequested\": " << R.SchedulesRequested << ",\n"
     << "  \"schedulesRun\": " << R.SchedulesRun << ",\n"
     << "  \"deadlockedSchedules\": " << R.DeadlockedSchedules << ",\n"
     << "  \"duplicateSchedules\": " << R.DuplicateSchedules << ",\n"
     << "  \"eventsAnalyzed\": " << R.EventsAnalyzed << ",\n"
     << "  \"oracleDistinctSignatures\": " << R.OracleDistinctSignatures
     << ",\n"
     << "  \"oracleFullDistinctSignatures\": "
     << R.OracleFullDistinctSignatures << ",\n"
     << "  \"schedulesWithOracleRaces\": " << R.SchedulesWithOracleRaces
     << ",\n"
     << "  \"allAgreed\": " << (R.AllAgreed ? "true" : "false") << ",\n"
     << "  \"engines\": [\n";
  for (size_t I = 0; I < R.Engines.size(); ++I) {
    const EngineCoverage &E = R.Engines[I];
    OS << "    {\"engine\": \"" << E.Engine << "\", \"schedulesChecked\": "
       << E.SchedulesChecked << ", \"schedulesAgreed\": " << E.SchedulesAgreed
       << ", \"oracleRacySchedules\": " << E.OracleRacySchedules
       << ", \"detectedRacySchedules\": " << E.DetectedRacySchedules
       << ", \"distinctSignatures\": " << E.DistinctSignatures
       << ", \"detectionRate\": " << rate(E.DetectionRate) << "}"
       << (I + 1 < R.Engines.size() ? "," : "") << "\n";
  }
  OS << "  ],\n"
     << "  \"schedules\": [\n";
  for (size_t I = 0; I < R.Schedules.size(); ++I) {
    const ScheduleOutcome &S = R.Schedules[I];
    OS << "    {\"hash\": \"" << hex16(S.Hash) << "\", \"events\": "
       << S.Events << ", \"oracleSignatures\": " << S.OracleSignatures
       << ", \"oracleFullSignatures\": " << S.OracleFullSignatures
       << ", \"agreed\": " << (S.Agreed ? "true" : "false") << "}"
       << (I + 1 < R.Schedules.size() ? "," : "") << "\n";
  }
  OS << "  ]\n}\n";
  return OS.str();
}
