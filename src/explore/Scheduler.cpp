//===- explore/Scheduler.cpp - Interleaving enumeration ----------------------//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/explore/Scheduler.h"

#include <algorithm>
#include <cassert>

using namespace sampletrack;
using namespace sampletrack::explore;

const char *sampletrack::explore::exploreModeName(ExploreMode M) {
  switch (M) {
  case ExploreMode::Random:
    return "random";
  case ExploreMode::Pct:
    return "pct";
  case ExploreMode::Exhaustive:
    return "exhaustive";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Sim: the enabledness state machine. Every step is invertible, which is
// what lets the exhaustive DFS backtrack in O(1) instead of replaying.
//===----------------------------------------------------------------------===//

struct Scheduler::Sim {
  const Workload &W;
  std::vector<size_t> Pc;
  std::vector<uint8_t> Started;
  std::vector<ThreadId> LockOwner;
  size_t Remaining;

  explicit Sim(const Workload &W)
      : W(W), Pc(W.numThreads(), 0), Started(W.numThreads(), 1),
        LockOwner(W.numSyncs(), NoThread), Remaining(W.numOps()) {
    std::vector<uint8_t> Gated = W.forkTargets();
    for (size_t T = 0; T < Started.size(); ++T)
      if (Gated[T])
        Started[T] = 0;
  }

  bool finished(ThreadId T) const { return Pc[T] >= W.program(T).size(); }

  bool enabled(ThreadId T) const {
    if (!Started[T] || finished(T))
      return false;
    const Op &O = W.program(T)[Pc[T]];
    switch (O.Kind) {
    case OpKind::Acquire:
      return LockOwner[O.Target] == NoThread;
    case OpKind::Join:
      return Started[O.Target] && finished(static_cast<ThreadId>(O.Target));
    default:
      return true;
    }
  }

  /// Enabled threads in ascending id order (the deterministic choice base).
  void enabledThreads(std::vector<ThreadId> &Out) const {
    Out.clear();
    for (ThreadId T = 0; T < static_cast<ThreadId>(Pc.size()); ++T)
      if (enabled(T))
        Out.push_back(T);
  }

  /// Executes thread \p T's next op. Caller guarantees enabledness.
  void step(ThreadId T) {
    assert(enabled(T) && "stepping a disabled thread");
    const Op &O = W.program(T)[Pc[T]];
    switch (O.Kind) {
    case OpKind::Acquire:
      LockOwner[O.Target] = T;
      break;
    case OpKind::Release:
      assert(LockOwner[O.Target] == T && "release by non-owner");
      LockOwner[O.Target] = NoThread;
      break;
    case OpKind::Fork:
      Started[O.Target] = 1;
      break;
    default:
      break;
    }
    ++Pc[T];
    --Remaining;
  }

  /// Undoes the most recent step, which must have been thread \p T's.
  void unstep(ThreadId T) {
    assert(Pc[T] > 0 && "nothing to undo");
    --Pc[T];
    ++Remaining;
    const Op &O = W.program(T)[Pc[T]];
    switch (O.Kind) {
    case OpKind::Acquire:
      LockOwner[O.Target] = NoThread;
      break;
    case OpKind::Release:
      LockOwner[O.Target] = T;
      break;
    case OpKind::Fork:
      Started[O.Target] = 0;
      break;
    default:
      break;
    }
  }
};

//===----------------------------------------------------------------------===//
// Scheduler
//===----------------------------------------------------------------------===//

Scheduler::Scheduler(const Workload &W, ExploreConfig C)
    : W(W), Cfg(C) {
  assert((Cfg.Mode == ExploreMode::Exhaustive || Cfg.MaxSchedules > 0) &&
         "Random/Pct exploration needs a nonzero attempt budget");
  if (Cfg.Mode == ExploreMode::Exhaustive) {
    DfsSim = std::make_unique<Sim>(W);
    DfsStack.emplace_back();
    DfsSim->enabledThreads(DfsStack.back().Enabled);
  }
}

Scheduler::~Scheduler() = default;

uint64_t Scheduler::hashChoices(const std::vector<ThreadId> &Choices) {
  Fnv1a H;
  for (ThreadId T : Choices)
    H.u32(T);
  return H.value();
}

Trace Scheduler::materialize(const Workload &W,
                             const std::vector<ThreadId> &Choices) {
  Sim S(W);
  Trace T(W.numThreads(), W.numSyncs(), W.numVars());
  for (ThreadId C : Choices) {
    assert(C < W.numThreads() && "choice out of range");
    const Op &O = W.program(C)[S.Pc[C]];
    S.step(C);
    T.append(Event(C, O.Kind, O.Target));
  }
  assert(S.Remaining == 0 && "incomplete schedule");
  return T;
}

bool Scheduler::emit(std::vector<ThreadId> Choices, Schedule &Out) {
  uint64_t H = hashChoices(Choices);
  // Exhaustive DFS structurally never repeats a choice sequence, so skip
  // the dedup set there: it would only cost memory and expose completeness
  // to a hash collision between distinct schedules.
  if (Cfg.DedupSchedules && Cfg.Mode != ExploreMode::Exhaustive &&
      !Seen.insert(H).second) {
    ++Duplicates;
    return false;
  }
  Out.Index = Emitted++;
  Out.Choices = std::move(Choices);
  Out.Hash = H;
  return true;
}

bool Scheduler::runWalk(uint64_t AttemptSeed, std::vector<ThreadId> &Choices) {
  Sim S(W);
  SplitMix64 Rng(AttemptSeed);
  Choices.clear();
  Choices.reserve(W.numOps());
  std::vector<ThreadId> Enabled;

  if (Cfg.Mode == ExploreMode::Random) {
    while (S.Remaining > 0) {
      S.enabledThreads(Enabled);
      if (Enabled.empty())
        return false; // Deadlock.
      ThreadId T = Enabled[Rng.nextBelow(Enabled.size())];
      S.step(T);
      Choices.push_back(T);
    }
    return true;
  }

  // PCT walk: random initial priorities, highest-priority enabled thread
  // runs; crossing a change point demotes the running thread below all.
  size_t N = W.numThreads();
  std::vector<int64_t> Priority(N);
  for (size_t I = 0; I < N; ++I)
    Priority[I] = static_cast<int64_t>(I) + 1; // 1..N, higher runs first.
  // Fisher-Yates on the priority values.
  for (size_t I = N; I > 1; --I)
    std::swap(Priority[I - 1], Priority[Rng.nextBelow(I)]);
  // PCT wants d - 1 *distinct* change depths: drawing with replacement
  // would silently run some walks at a lower depth than configured.
  std::vector<uint8_t> IsChange(W.numOps(), 0);
  size_t Changes = std::min(Cfg.PriorityChangePoints, W.numOps());
  for (size_t C = 0; C < Changes; ++C) {
    size_t At;
    do
      At = Rng.nextBelow(W.numOps());
    while (IsChange[At]);
    IsChange[At] = 1;
  }
  int64_t LowWater = 0; // Demotions hand out 0, -1, -2, ...

  size_t Step = 0;
  while (S.Remaining > 0) {
    S.enabledThreads(Enabled);
    if (Enabled.empty())
      return false; // Deadlock.
    ThreadId Best = Enabled[0];
    for (ThreadId T : Enabled)
      if (Priority[T] > Priority[Best])
        Best = T;
    S.step(Best);
    Choices.push_back(Best);
    if (IsChange[Step])
      Priority[Best] = LowWater--;
    ++Step;
  }
  return true;
}

bool Scheduler::nextRandomLike(Schedule &Out) {
  while (Attempts < Cfg.MaxSchedules) {
    // Per-attempt seeding: attempt k is reproducible without replaying the
    // k - 1 attempts before it.
    uint64_t AttemptSeed =
        Cfg.Seed ^ (0x9e3779b97f4a7c15ULL * (Attempts + 1));
    ++Attempts;
    std::vector<ThreadId> Choices;
    if (!runWalk(AttemptSeed, Choices)) {
      ++Deadlocked;
      continue;
    }
    if (emit(std::move(Choices), Out))
      return true;
  }
  return false;
}

bool Scheduler::nextExhaustive(Schedule &Out) {
  if (DfsDone)
    return false;
  if (Cfg.MaxSchedules && Emitted >= Cfg.MaxSchedules) {
    DfsDone = true;
    return false;
  }
  // Resume the DFS: the stack holds one frame per depth, Choices the path.
  while (!DfsStack.empty()) {
    DfsFrame &F = DfsStack.back();
    if (F.NextAlt >= F.Enabled.size()) {
      // All alternatives at this depth explored (or none existed).
      if (F.Enabled.empty() && DfsSim->Remaining > 0)
        ++Deadlocked; // Dead branch: unfinished threads, nothing enabled.
      DfsStack.pop_back();
      if (!DfsChoices.empty()) {
        DfsSim->unstep(DfsChoices.back());
        DfsChoices.pop_back();
        // Advance the parent past the alternative we just finished.
        if (!DfsStack.empty())
          ++DfsStack.back().NextAlt;
      }
      continue;
    }
    ThreadId T = F.Enabled[F.NextAlt];
    DfsSim->step(T);
    DfsChoices.push_back(T);
    if (DfsSim->Remaining == 0) {
      // Complete schedule. Emit, then backtrack this leaf.
      bool Ok = emit(DfsChoices, Out);
      DfsSim->unstep(T);
      DfsChoices.pop_back();
      ++F.NextAlt;
      if (Ok) {
        if (Cfg.MaxSchedules && Emitted >= Cfg.MaxSchedules)
          DfsDone = true;
        return true;
      }
      continue;
    }
    DfsStack.emplace_back();
    DfsSim->enabledThreads(DfsStack.back().Enabled);
  }
  DfsDone = true;
  return false;
}

bool Scheduler::next(Schedule &Out) {
  if (W.numOps() == 0)
    return false; // Nothing to schedule.
  return Cfg.Mode == ExploreMode::Exhaustive ? nextExhaustive(Out)
                                             : nextRandomLike(Out);
}
