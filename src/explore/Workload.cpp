//===- explore/Workload.cpp - Schedulable programs ---------------------------//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/explore/Workload.h"

#include <algorithm>
#include <unordered_set>

using namespace sampletrack;
using namespace sampletrack::explore;

ThreadId explore::Workload::addThread() {
  Programs.emplace_back();
  return static_cast<ThreadId>(Programs.size() - 1);
}

size_t explore::Workload::numOps() const {
  size_t N = 0;
  for (const std::vector<Op> &P : Programs)
    N += P.size();
  return N;
}

void explore::Workload::append(ThreadId T, Op O) {
  if (static_cast<size_t>(T) >= Programs.size())
    Programs.resize(static_cast<size_t>(T) + 1);
  switch (O.Kind) {
  case OpKind::Read:
  case OpKind::Write:
    NumVars = std::max<size_t>(NumVars, O.Target + 1);
    break;
  case OpKind::Fork:
  case OpKind::Join:
    if (O.Target >= Programs.size())
      Programs.resize(O.Target + 1);
    break;
  default:
    NumSyncs = std::max<size_t>(NumSyncs, O.Target + 1);
    break;
  }
  Programs[T].push_back(O);
}

Workload explore::Workload::fromTrace(const Trace &T) {
  Workload W;
  W.Programs.resize(T.numThreads());
  W.NumSyncs = T.numSyncs();
  W.NumVars = T.numVars();
  for (const Event &E : T)
    W.Programs[E.Tid].push_back(Op{E.Kind, E.Target});
  return W;
}

std::vector<uint8_t> explore::Workload::forkTargets() const {
  std::vector<uint8_t> Out(Programs.size(), 0);
  for (const std::vector<Op> &P : Programs)
    for (const Op &O : P)
      if (O.Kind == OpKind::Fork)
        Out[O.Target] = 1;
  return Out;
}

bool explore::Workload::hasBlockingOps() const {
  for (const std::vector<Op> &P : Programs)
    for (const Op &O : P)
      if (O.Kind == OpKind::Acquire || O.Kind == OpKind::Join ||
          O.Kind == OpKind::Fork)
        return true;
  return false;
}

bool explore::Workload::hasAtomicOps() const {
  for (const std::vector<Op> &P : Programs)
    for (const Op &O : P)
      if (O.Kind == OpKind::ReleaseStore || O.Kind == OpKind::ReleaseJoin ||
          O.Kind == OpKind::AcquireLoad)
        return true;
  return false;
}

uint64_t explore::Workload::unconstrainedInterleavingCount() const {
  // Multinomial via incremental products: for each program of length k,
  // multiply C(running_total + i, i) piecewise, detecting overflow.
  uint64_t Result = 1;
  uint64_t Placed = 0;
  for (const std::vector<Op> &P : Programs) {
    for (uint64_t I = 1; I <= P.size(); ++I) {
      ++Placed;
      // Result *= Placed; Result /= I — exact at every step because the
      // running product of C(n, k) prefixes is always integral, but the
      // intermediate multiply can overflow, so check first.
      if (Result > UINT64_MAX / Placed)
        return UINT64_MAX;
      Result = Result * Placed / I;
    }
  }
  return Result;
}

bool explore::Workload::validate(std::string *Error) const {
  auto Fail = [&](std::string Msg) {
    if (Error)
      *Error = std::move(Msg);
    return false;
  };
  std::vector<uint8_t> Forked(Programs.size(), 0);
  for (size_t T = 0; T < Programs.size(); ++T) {
    std::unordered_set<SyncId> Held;
    for (size_t I = 0; I < Programs[T].size(); ++I) {
      const Op &O = Programs[T][I];
      std::string Where = "thread " + std::to_string(T) + ", op " +
                          std::to_string(I) + ": ";
      switch (O.Kind) {
      case OpKind::Read:
      case OpKind::Write:
        if (O.Target >= NumVars)
          return Fail(Where + "variable id out of range");
        break;
      case OpKind::Acquire:
        if (O.Target >= NumSyncs)
          return Fail(Where + "sync id out of range");
        if (!Held.insert(static_cast<SyncId>(O.Target)).second)
          return Fail(Where + "acquire of a lock already held in program "
                              "order (would self-deadlock)");
        break;
      case OpKind::Release:
        if (O.Target >= NumSyncs)
          return Fail(Where + "sync id out of range");
        if (Held.erase(static_cast<SyncId>(O.Target)) == 0)
          return Fail(Where + "release of a lock not held in program order");
        break;
      case OpKind::Fork:
      case OpKind::Join:
        if (O.Target >= Programs.size())
          return Fail(Where + "fork/join target out of range");
        if (O.Target == T)
          return Fail(Where + "self fork/join");
        if (O.Kind == OpKind::Fork) {
          if (Forked[O.Target])
            return Fail(Where + "thread forked twice");
          Forked[O.Target] = 1;
        }
        break;
      case OpKind::ReleaseStore:
      case OpKind::ReleaseJoin:
      case OpKind::AcquireLoad:
        if (O.Target >= NumSyncs)
          return Fail(Where + "sync id out of range");
        break;
      }
    }
  }
  return true;
}
