//===- api/AnalysisSession.cpp - Composable pipeline ------------------------=//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/api/AnalysisSession.h"

#include "sampletrack/trace/TraceIO.h"

#include <cassert>
#include <chrono>
#include <fstream>

using namespace sampletrack;
using namespace sampletrack::api;

namespace {

uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

const EngineRun *SessionResult::find(const std::string &Engine) const {
  for (const EngineRun &R : Engines)
    if (R.Engine == Engine)
      return &R;
  return nullptr;
}

AnalysisSession &AnalysisSession::configure(SessionConfig C) {
  assert(!Active && "cannot reconfigure a running session");
  Cfg = std::move(C);
  return *this;
}

AnalysisSession &AnalysisSession::addEngine(EngineKind K) {
  assert(!Active && "cannot add lanes to a running session");
  Cfg.Engines.push_back(K);
  return *this;
}

AnalysisSession &AnalysisSession::addEngines(std::span<const EngineKind> Ks) {
  for (EngineKind K : Ks)
    addEngine(K);
  return *this;
}

AnalysisSession &AnalysisSession::addDetector(Detector &D) {
  assert(!Active && "cannot add lanes to a running session");
  BorrowedDetectors.push_back(&D);
  return *this;
}

AnalysisSession &AnalysisSession::withSampler(Sampler &Sm) {
  assert(!Active && "cannot swap samplers on a running session");
  BorrowedSampler = &Sm;
  OwnedSampler.reset();
  return *this;
}

AnalysisSession &AnalysisSession::withSampler(std::unique_ptr<Sampler> Sm) {
  assert(!Active && "cannot swap samplers on a running session");
  OwnedSampler = std::move(Sm);
  BorrowedSampler = nullptr;
  return *this;
}

bool AnalysisSession::begin(size_t NumThreads, std::string *Error) {
  auto Fail = [&](const char *Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  if (Active)
    return Fail("session already active");
  if (Cfg.Engines.empty() && BorrowedDetectors.empty())
    return Fail("no engines or detectors configured");

  RunThreads = Cfg.NumThreads ? Cfg.NumThreads
                              : (NumThreads ? NumThreads : Cfg.MaxThreads);
  if (!RunThreads)
    return Fail("thread universe size is zero");

  Lanes.clear();
  for (EngineKind K : Cfg.Engines) {
    Lane L;
    L.Owned = createDetector(K, RunThreads);
    L.D = L.Owned.get();
    Lanes.push_back(std::move(L));
  }
  for (Detector *D : BorrowedDetectors) {
    Lane L;
    L.D = D;
    Lanes.push_back(std::move(L));
  }

  if (BorrowedSampler)
    S = BorrowedSampler;
  else {
    if (!OwnedSampler)
      OwnedSampler = Cfg.makeSampler();
    S = OwnedSampler.get();
  }

  SampleSize = 0;
  EventsProcessed = 0;
  StartNanos = nowNanos();
  Active = true;
  return true;
}

void AnalysisSession::process(std::span<const Event> Batch) {
  assert(Active && "begin() the session before feeding events");
  if (Batch.empty())
    return;

  // Draw the shared decision stream once, in trace order; every lane then
  // replays the same decisions, which is what makes K session lanes
  // byte-equivalent to K standalone runs over the same seed.
  Decisions.resize(Batch.size());
  for (size_t I = 0, N = Batch.size(); I < N; ++I) {
    bool Sampled = isAccess(Batch[I].Kind) && S->shouldSample(Batch[I]);
    Decisions[I] = Sampled ? 1 : 0;
    SampleSize += Sampled ? 1 : 0;
  }

  std::span<const uint8_t> Ds(Decisions.data(), Batch.size());
  for (Lane &L : Lanes) {
    uint64_t T0 = nowNanos();
    L.D->processBatch(Batch, Ds);
    L.Nanos += nowNanos() - T0;
  }
  EventsProcessed += Batch.size();
}

SessionResult AnalysisSession::finish() {
  assert(Active && "finish() without begin()");
  SessionResult R;
  R.EventsProcessed = EventsProcessed;
  R.NumThreads = RunThreads;
  R.WallNanos = nowNanos() - StartNanos;
  R.Engines.reserve(Lanes.size());
  for (Lane &L : Lanes) {
    EngineRun E;
    E.Engine = L.D->name();
    E.SamplerName = S->name();
    E.Stats = L.D->metrics();
    E.NumRaces = E.Stats.RacesDeclared;
    E.NumRacyLocations = L.D->racyLocations().size();
    E.SampleSize = SampleSize;
    E.WallNanos = L.Nanos;
    // Truncation must be read before the move below empties the list.
    E.RacesTruncated = L.D->racesTruncated();
    // Session-owned detectors die right after this loop, so steal their
    // (potentially million-entry) race lists. Borrowed detectors keep
    // theirs — the caller owns the detector and reads races() directly
    // (as rapid::run's callers do), so no copy is made here.
    if (L.Owned)
      E.Races = L.Owned->takeRaces();
    R.Engines.push_back(std::move(E));
  }

  // Lanes (and any session-owned detectors) are single-use; a later begin()
  // builds fresh ones. Borrowed detectors and samplers stay with their
  // owners and are dropped from the session's lists.
  Lanes.clear();
  BorrowedDetectors.clear();
  BorrowedSampler = nullptr;
  OwnedSampler.reset();
  S = nullptr;
  Active = false;
  return R;
}

bool AnalysisSession::runLoaded(const Trace &T, SessionResult &Out,
                                std::string *Error) {
  if (!begin(T.numThreads(), Error))
    return false;
  const std::vector<Event> &Events = T.events();
  size_t Step = Cfg.BatchSize ? Cfg.BatchSize : Events.size();
  for (size_t I = 0; I < Events.size(); I += Step)
    process(std::span<const Event>(Events.data() + I,
                                   std::min(Step, Events.size() - I)));
  Out = finish();
  return true;
}

SessionResult AnalysisSession::run(const Trace &T) {
  SessionResult R;
  runLoaded(T, R, nullptr); // Failure leaves R empty (no lanes configured).
  return R;
}

bool AnalysisSession::run(std::istream &Is, SessionResult &Out,
                          std::string *Error) {
  if (sniffBinaryTrace(Is)) {
    BinaryTraceReader Reader;
    if (!Reader.open(Is, Error))
      return false;
    if (!begin(Reader.numThreads(), Error))
      return false;
    std::vector<Event> Batch;
    while (!Reader.done()) {
      if (!Reader.read(Batch, Cfg.BatchSize ? Cfg.BatchSize : 4096, Error)) {
        finish(); // Abandon the partial run; lanes are single-use anyway.
        return false;
      }
      process(std::span<const Event>(Batch.data(), Batch.size()));
    }
    Out = finish();
    return true;
  }

  // The text format carries no machine-readable universe sizes, so stream
  // ingestion cannot size the detectors up front; load it in-memory.
  Trace T;
  if (!readTrace(Is, T, Error))
    return false;
  return runLoaded(T, Out, Error);
}

bool AnalysisSession::runFile(const std::string &Path, SessionResult &Out,
                              std::string *Error) {
  std::ifstream Is(Path, std::ios::binary);
  if (!Is) {
    if (Error)
      *Error = "cannot open '" + Path + "'";
    return false;
  }
  return run(Is, Out, Error);
}

//===----------------------------------------------------------------------===//
// SessionHooks
//===----------------------------------------------------------------------===//

ThreadId SessionHooks::registerThread() {
  std::lock_guard<std::mutex> G(M);
  assert(NextThread < Session.numThreads() &&
         "thread universe exhausted; begin() the session with more threads");
  return NextThread++;
}

SyncId SessionHooks::registerSync() {
  std::lock_guard<std::mutex> G(M);
  return NextSync++;
}

void SessionHooks::emit(const Event &E) {
  std::lock_guard<std::mutex> G(M);
  Session.process(E);
}

void SessionHooks::onRead(ThreadId T, VarId X) {
  emit(Event(T, OpKind::Read, X));
}
void SessionHooks::onWrite(ThreadId T, VarId X) {
  emit(Event(T, OpKind::Write, X));
}
void SessionHooks::onAcquire(ThreadId T, SyncId L) {
  emit(Event(T, OpKind::Acquire, L));
}
void SessionHooks::onRelease(ThreadId T, SyncId L) {
  emit(Event(T, OpKind::Release, L));
}
void SessionHooks::onFork(ThreadId Parent, ThreadId Child) {
  emit(Event(Parent, OpKind::Fork, Child));
}
void SessionHooks::onJoin(ThreadId Parent, ThreadId Child) {
  emit(Event(Parent, OpKind::Join, Child));
}
void SessionHooks::onReleaseStore(ThreadId T, SyncId Sy) {
  emit(Event(T, OpKind::ReleaseStore, Sy));
}
void SessionHooks::onReleaseJoin(ThreadId T, SyncId Sy) {
  emit(Event(T, OpKind::ReleaseJoin, Sy));
}
void SessionHooks::onAcquireLoad(ThreadId T, SyncId Sy) {
  emit(Event(T, OpKind::AcquireLoad, Sy));
}
