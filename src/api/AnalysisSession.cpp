//===- api/AnalysisSession.cpp - Composable pipeline ------------------------=//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/api/AnalysisSession.h"

#include "sampletrack/trace/TraceIO.h"

#include <array>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <fstream>
#include <thread>

using namespace sampletrack;
using namespace sampletrack::api;

namespace {

uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

//===----------------------------------------------------------------------===//
// ParallelExecutor
//===----------------------------------------------------------------------===//

/// Fans batches out to worker threads over a bounded broadcast ring.
///
/// The ingest thread fills a slot (events + the pre-drawn sampling
/// decisions — copies, because the caller's span may die on return) and
/// publishes it; every worker consumes every slot in publication order and
/// feeds it to the units it owns (unit I belongs to worker I % NumWorkers;
/// a unit is one detector drive — an unsharded lane, or one shard of a
/// sharded lane). A slot is recycled once the slowest worker has moved
/// past it, which bounds memory to RingSize batches and applies
/// back-pressure to the ingest thread. Each unit is driven by exactly one
/// thread for the whole run, in trace order, with the exact decision
/// stream sequential mode would use — so results are bit-identical by
/// construction, not by replayed luck.
class AnalysisSession::ParallelExecutor {
public:
  struct Slot {
    /// What the workers read. Either views caller memory directly (stable
    /// sources like an in-memory Trace, which outlives the run) or views
    /// \ref Storage (streamed sources, whose batch buffer is recycled).
    std::span<const Event> Events;
    std::vector<Event> Storage;
    std::vector<uint8_t> Decisions;
  };

  ParallelExecutor(std::vector<Unit> &Units, size_t NumWorkers,
                   prof::Profiler *Prof)
      : Units(Units), NumWorkers(NumWorkers), Prof(Prof),
        Consumed(NumWorkers, 0) {
    assert(NumWorkers > 0 && NumWorkers <= Units.size());
    Workers.reserve(NumWorkers);
    for (size_t W = 0; W < NumWorkers; ++W)
      Workers.emplace_back([this, W] { workerMain(W); });
  }

  ~ParallelExecutor() { shutdown(); }

  /// Blocks until a ring slot is free for the ingest thread to fill. The
  /// returned slot is untouched by workers until \ref publish.
  Slot &acquireSlot() {
    std::unique_lock<std::mutex> L(M);
    SpaceCv.wait(L, [this] { return Published - minConsumed() < RingSize; });
    return Ring[Published % RingSize];
  }

  /// Makes the slot filled after \ref acquireSlot visible to every worker.
  void publish() {
    {
      std::lock_guard<std::mutex> L(M);
      ++Published;
    }
    DataCv.notify_all();
  }

  /// Publishes end-of-stream and joins the workers (idempotent). After this
  /// returns, every lane has consumed every published batch.
  void shutdown() {
    {
      std::lock_guard<std::mutex> L(M);
      Eof = true;
    }
    DataCv.notify_all();
    for (std::thread &T : Workers)
      if (T.joinable())
        T.join();
    Workers.clear();
  }

private:
  uint64_t minConsumed() const {
    uint64_t Min = Consumed[0];
    for (uint64_t C : Consumed)
      Min = std::min(Min, C);
    return Min;
  }

  void workerMain(size_t W) {
    // Each worker records into its own tree; units intern their span under
    // the same session/analyze path the sequential mode uses, so the merged
    // report is identical in shape whichever thread drove the unit.
    if (Prof) {
      prof::Tree *T = Prof->makeTree("worker-" + std::to_string(W));
      for (size_t I = W; I < Units.size(); I += NumWorkers) {
        Unit &U = Units[I];
        U.PT = T;
        U.PNode = T->internPath({"session", "analyze", U.ProfLabel});
      }
    }
    uint64_t Mine = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> L(M);
        DataCv.wait(L, [&] { return Published > Mine || Eof; });
        if (Published == Mine)
          break; // Eof and fully drained.
      }
      // Safe without the lock: the producer never rewrites slot
      // Mine % RingSize until this worker's Consumed count passes it.
      Slot &S = Ring[Mine % RingSize];
      std::span<const Event> Events = S.Events;
      std::span<const uint8_t> Ds(S.Decisions);
      for (size_t I = W; I < Units.size(); I += NumWorkers) {
        Unit &U = Units[I];
        uint64_t T0 = nowNanos();
        U.feed(Events, Ds);
        uint64_t Dt = nowNanos() - T0;
        U.Nanos += Dt;
        // One measurement, two consumers: the EngineRun::WallNanos fold
        // above and the profile span. Non-primary shards add nanos only.
        if (U.PT)
          U.PT->addSample(U.PNode, Dt, U.CountsProfile ? 1 : 0);
      }
      {
        std::lock_guard<std::mutex> L(M);
        Consumed[W] = ++Mine;
      }
      SpaceCv.notify_one();
    }
  }

  static constexpr size_t RingSize = 8;

  std::vector<Unit> &Units;
  size_t NumWorkers;
  prof::Profiler *Prof;
  std::array<Slot, RingSize> Ring;

  std::mutex M;
  std::condition_variable SpaceCv; ///< Ingest thread waits for ring space.
  std::condition_variable DataCv;  ///< Workers wait for published batches.
  uint64_t Published = 0;
  bool Eof = false;
  std::vector<uint64_t> Consumed; ///< Batches fully processed, per worker.
  std::vector<std::thread> Workers;
};

AnalysisSession::AnalysisSession() = default;
AnalysisSession::AnalysisSession(SessionConfig C) : Cfg(std::move(C)) {}
AnalysisSession::~AnalysisSession() = default;

SessionResult sampletrack::api::stripTiming(SessionResult R) {
  R.WallNanos = 0;
  R.IngestNanos = 0;
  R.NumWorkers = 0;
  R.Shards = 0;
  for (EngineRun &E : R.Engines) {
    E.WallNanos = 0;
    E.Shards = 0;
  }
  R.Profile = prof::stripTiming(std::move(R.Profile));
  return R;
}

const EngineRun *SessionResult::find(const std::string &Engine) const {
  for (const EngineRun &R : Engines)
    if (R.Engine == Engine)
      return &R;
  return nullptr;
}

AnalysisSession &AnalysisSession::configure(SessionConfig C) {
  assert(!Active && "cannot reconfigure a running session");
  Cfg = std::move(C);
  return *this;
}

AnalysisSession &AnalysisSession::addEngine(EngineKind K) {
  assert(!Active && "cannot add lanes to a running session");
  Cfg.Engines.push_back(K);
  return *this;
}

AnalysisSession &AnalysisSession::addEngines(std::span<const EngineKind> Ks) {
  for (EngineKind K : Ks)
    addEngine(K);
  return *this;
}

AnalysisSession &AnalysisSession::addDetector(Detector &D) {
  assert(!Active && "cannot add lanes to a running session");
  BorrowedDetectors.push_back(&D);
  return *this;
}

AnalysisSession &AnalysisSession::withSampler(Sampler &Sm) {
  assert(!Active && "cannot swap samplers on a running session");
  BorrowedSampler = &Sm;
  OwnedSampler.reset();
  return *this;
}

AnalysisSession &AnalysisSession::withSampler(std::unique_ptr<Sampler> Sm) {
  assert(!Active && "cannot swap samplers on a running session");
  OwnedSampler = std::move(Sm);
  BorrowedSampler = nullptr;
  return *this;
}

bool AnalysisSession::begin(size_t NumThreads, std::string *Error) {
  auto Fail = [&](const char *Msg) {
    if (Error)
      *Error = Msg;
    return false;
  };
  if (Active)
    return Fail("session already active");
  if (Cfg.Engines.empty() && BorrowedDetectors.empty())
    return Fail("no engines or detectors configured");

  RunThreads = Cfg.NumThreads ? Cfg.NumThreads
                              : (NumThreads ? NumThreads : Cfg.MaxThreads);
  if (!RunThreads)
    return Fail("thread universe size is zero");

  Lanes.clear();
  Units.clear();
  // Fresh profiler per run: the previous run's timeline (if any) is owned
  // by whoever took it; pointers into the old trees die with the old units.
  Prof.reset();
  IngestTree = nullptr;
  if (Cfg.ProfilingEnabled) {
    Prof = std::make_unique<prof::Profiler>();
    IngestTree = Prof->makeTree("ingest");
    SessionNode = IngestTree->internPath({"session"});
    IngestNode = IngestTree->internPath({"session", "ingest"});
    DecodeNode = IngestTree->internPath({"session", "decode"});
    FinishNode = IngestTree->internPath({"session", "finish"});
  }

  // Shards < 2 means one detector per lane (1 shard is just sequential
  // with extra bookkeeping, so it is normalized away).
  size_t Shards = Cfg.Shards >= 2 ? Cfg.Shards : 0;
  for (EngineKind K : Cfg.Engines) {
    Lane L;
    L.Shards = Shards;
    L.FirstUnit = Units.size();
    L.NumUnits = Shards ? Shards : 1;
    for (size_t I = 0; I < L.NumUnits; ++I) {
      std::unique_ptr<Detector> D = createDetector(K, RunThreads);
      if (Shards)
        // Every shard keeps the full lane sink capacity: the merge re-caps
        // (triage::mergeShardSummaries), which is what makes truncation
        // land on exactly the signatures sequential would have dropped.
        D->setShard(static_cast<uint32_t>(I),
                    static_cast<uint32_t>(Shards));
      if (!Cfg.PoolingEnabled)
        D->setPoolingEnabled(false);
      if (Cfg.TriageCapacity)
        D->setRaceCapacity(Cfg.TriageCapacity);
      Unit U;
      U.D = D.get();
      U.PerEvent = Cfg.PerEventDispatch;
      // Only the lane's primary drive counts profile calls (shard-count
      // invariance); every drive contributes nanos.
      U.CountsProfile = I == 0;
      if (IngestTree)
        U.ProfLabel = D->name();
      Units.push_back(std::move(U));
      L.Owned.push_back(std::move(D));
    }
    Lanes.push_back(std::move(L));
  }
  for (Detector *D : BorrowedDetectors) {
    // Borrowed detectors keep their owner's pooling configuration — and
    // never shard (the caller reads races() off the full variable space).
    Lane L;
    L.Borrowed = D;
    L.FirstUnit = Units.size();
    L.NumUnits = 1;
    Unit U;
    U.D = D;
    U.PerEvent = Cfg.PerEventDispatch;
    U.CountsProfile = true;
    if (IngestTree)
      U.ProfLabel = D->name();
    Units.push_back(std::move(U));
    Lanes.push_back(std::move(L));
  }

  if (BorrowedSampler)
    S = BorrowedSampler;
  else {
    if (!OwnedSampler)
      OwnedSampler = Cfg.makeSampler();
    S = OwnedSampler.get();
  }

  SampleSize = 0;
  EventsProcessed = 0;
  IngestNanos = 0;
  RunWorkers = std::min(Cfg.NumWorkers, Units.size());
  if (IngestTree && !RunWorkers)
    // Sequential mode drives every unit on the ingest thread; the workers
    // intern the identical session/analyze/<engine> path into their own
    // trees, so the merged report's shape is mode-independent.
    for (Unit &U : Units) {
      U.PT = IngestTree;
      U.PNode = IngestTree->internPath({"session", "analyze", U.ProfLabel});
    }
  if (RunWorkers)
    Par = std::make_unique<ParallelExecutor>(Units, RunWorkers, Prof.get());
  StartNanos = nowNanos();
  Active = true;
  return true;
}

void AnalysisSession::process(std::span<const Event> Batch) {
  assert(Active && "begin() the session before feeding events");
  if (Batch.empty())
    return;

  // Draw the shared decision stream once, on this (the ingest) thread, in
  // trace order; every lane then replays the same decisions, which is what
  // makes K session lanes byte-equivalent to K standalone runs over the
  // same seed — sequential or parallel alike. One loop serves both modes
  // (only the destination buffer differs) so they cannot drift apart.
  uint64_t T0 = nowNanos();
  ParallelExecutor::Slot *Slot = Par ? &Par->acquireSlot() : nullptr;
  if (Slot) {
    if (StableSource) {
      // The source outlives the run (an in-memory Trace): workers can read
      // the caller's memory directly, no O(batch) copy on the ingest path.
      Slot->Events = Batch;
    } else {
      // The caller's span may be reused or freed the moment we return (the
      // streamed reader recycles its batch vector), so the hand-off copies.
      Slot->Storage.assign(Batch.begin(), Batch.end());
      Slot->Events = std::span<const Event>(Slot->Storage);
    }
  }
  std::vector<uint8_t> &Ds = Slot ? Slot->Decisions : Decisions;
  Ds.resize(Batch.size());
  for (size_t I = 0, N = Batch.size(); I < N; ++I) {
    bool Sampled = isAccess(Batch[I].Kind) && S->shouldSample(Batch[I]);
    Ds[I] = Sampled ? 1 : 0;
    SampleSize += Sampled ? 1 : 0;
  }
  if (Slot)
    Par->publish();
  uint64_t T1 = nowNanos();
  IngestNanos += T1 - T0;
  // The profile's session/ingest span is the same measurement IngestNanos
  // accumulates — folded, not re-measured.
  if (IngestTree)
    IngestTree->addSpan(IngestNode, T0, T1);
  if (!Slot) {
    std::span<const uint8_t> DsView(Decisions.data(), Batch.size());
    for (Unit &U : Units) {
      uint64_t T0Unit = nowNanos();
      U.feed(Batch, DsView);
      uint64_t Dt = nowNanos() - T0Unit;
      U.Nanos += Dt;
      if (U.PT)
        U.PT->addSample(U.PNode, Dt, U.CountsProfile ? 1 : 0);
    }
  }
  EventsProcessed += Batch.size();
}

SessionResult AnalysisSession::finish() {
  assert(Active && "finish() without begin()");
  if (Par) {
    Par->shutdown(); // Drains the ring; all lanes caught up after this.
    Par.reset();
  }
  SessionResult R;
  R.EventsProcessed = EventsProcessed;
  R.NumThreads = RunThreads;
  R.NumWorkers = RunWorkers;
  R.Shards = Cfg.Shards >= 2 ? Cfg.Shards : 0;
  R.IngestNanos = IngestNanos;
  R.WallNanos = nowNanos() - StartNanos;
  uint64_t FinishT0 = IngestTree ? nowNanos() : 0;
  R.Engines.reserve(Lanes.size());
  std::vector<triage::TriageSummary> LaneSummaries;
  LaneSummaries.reserve(Lanes.size());
  for (Lane &L : Lanes) {
    EngineRun E;
    Detector *Primary = L.primary();
    E.Engine = Primary->name();
    E.SamplerName = S->name();
    E.SampleSize = SampleSize;
    E.Shards = L.Shards;
    for (size_t I = 0; I < L.NumUnits; ++I)
      E.WallNanos += Units[L.FirstUnit + I].Nanos;
    if (!L.Shards) {
      E.Stats = Primary->metrics();
      E.NumRaces = E.Stats.RacesDeclared;
      E.NumRacyLocations = Primary->racyLocations().size();
      E.DistinctRaces = Primary->distinctRaces();
      // The warehouse summary and the truncation flag must both be read
      // before the move below empties the sink's exemplar list.
      LaneSummaries.push_back(Primary->raceSink().summary());
      E.RacesTruncated = Primary->racesTruncated();
      // Session-owned detectors die right after this loop, so steal their
      // (potentially million-entry) race lists. Borrowed detectors keep
      // theirs — the caller owns the detector and reads races() directly
      // (as rapid::run's callers do), so no copy is made here.
      if (!L.Owned.empty())
        E.Races = L.Owned.front()->takeRaces();
    } else {
      // Sharded lane: fold the shards back into exactly the unsharded
      // numbers. Metrics sum field-wise (the dispatch contract makes the
      // sum exact — see Detector::batchDispatchSharded), racy-location
      // sets are disjoint by construction, and the sinks merge through
      // the position-ordered re-capping of mergeShardSummaries.
      std::vector<triage::TriageSummary> ShardSummaries;
      ShardSummaries.reserve(L.NumUnits);
      for (std::unique_ptr<Detector> &D : L.Owned) {
        E.Stats += D->metrics();
        E.NumRacyLocations += D->racyLocations().size();
        ShardSummaries.push_back(D->raceSink().summary());
      }
      triage::TriageSummary Merged = triage::mergeShardSummaries(
          ShardSummaries, Primary->raceSink().capacity());
      E.NumRaces = E.Stats.RacesDeclared;
      E.DistinctRaces = Merged.distinct();
      E.RacesTruncated = Merged.Capped;
      E.Races.reserve(Merged.Entries.size());
      for (const triage::TriageEntry &Te : Merged.Entries)
        E.Races.push_back(Te.Exemplar);
      LaneSummaries.push_back(std::move(Merged));
    }
    R.Engines.push_back(std::move(E));
  }
  R.Triage = triage::mergeSummaries(LaneSummaries);

  if (IngestTree) {
    // session/finish covers the sink/metric merge above; the session root
    // covers the whole run (count 1) and carries the deterministic stream
    // counters.
    IngestTree->addSpan(FinishNode, FinishT0, nowNanos());
    IngestTree->addSpan(SessionNode, StartNanos, StartNanos + R.WallNanos);
    IngestTree->counterEvent(SessionNode, "events", EventsProcessed);
    IngestTree->counterEvent(SessionNode, "sampledAccesses", SampleSize);
    R.Profile = Prof->report();
    IngestTree = nullptr; // The profiler stays readable; recording is done.
  }

  // Lanes (and any session-owned detectors) are single-use; a later begin()
  // builds fresh ones. Borrowed detectors and samplers stay with their
  // owners and are dropped from the session's lists.
  Lanes.clear();
  Units.clear();
  BorrowedDetectors.clear();
  BorrowedSampler = nullptr;
  OwnedSampler.reset();
  S = nullptr;
  StableSource = false;
  Active = false;
  return R;
}

bool AnalysisSession::runLoaded(const Trace &T, SessionResult &Out,
                                std::string *Error) {
  if (!begin(T.numThreads(), Error))
    return false;
  StableSource = true; // T outlives the run; spans can cross the hand-off.
  const std::vector<Event> &Events = T.events();
  size_t Step = Cfg.BatchSize ? Cfg.BatchSize : Events.size();
  for (size_t I = 0; I < Events.size(); I += Step)
    process(std::span<const Event>(Events.data() + I,
                                   std::min(Step, Events.size() - I)));
  Out = finish();
  return true;
}

SessionResult AnalysisSession::run(const Trace &T) {
  SessionResult R;
  runLoaded(T, R, nullptr); // Failure leaves R empty (no lanes configured).
  return R;
}

bool AnalysisSession::run(std::istream &Is, SessionResult &Out,
                          std::string *Error) {
  if (sniffBinaryTrace(Is)) {
    BinaryTraceReader Reader;
    if (!Reader.open(Is, Error))
      return false;
    if (!begin(Reader.numThreads(), Error))
      return false;
    std::vector<Event> Batch;
    while (!Reader.done()) {
      uint64_t DecodeT0 = IngestTree ? nowNanos() : 0;
      if (!Reader.read(Batch, Cfg.BatchSize ? Cfg.BatchSize : 4096, Error)) {
        finish(); // Abandon the partial run; lanes are single-use anyway.
        return false;
      }
      if (IngestTree)
        IngestTree->addSpan(DecodeNode, DecodeT0, nowNanos());
      process(std::span<const Event>(Batch.data(), Batch.size()));
    }
    Out = finish();
    return true;
  }

  // The text format carries no machine-readable universe sizes, so stream
  // ingestion cannot size the detectors up front; load it in-memory.
  Trace T;
  if (!readTrace(Is, T, Error))
    return false;
  return runLoaded(T, Out, Error);
}

bool AnalysisSession::runFile(const std::string &Path, SessionResult &Out,
                              std::string *Error) {
  std::ifstream Is(Path, std::ios::binary);
  if (!Is) {
    if (Error)
      *Error = "cannot open '" + Path + "'";
    return false;
  }
  return run(Is, Out, Error);
}

//===----------------------------------------------------------------------===//
// SessionHooks
//===----------------------------------------------------------------------===//

ThreadId SessionHooks::registerThread() {
  std::lock_guard<std::mutex> G(M);
  assert(NextThread < Session.numThreads() &&
         "thread universe exhausted; begin() the session with more threads");
  return NextThread++;
}

SyncId SessionHooks::registerSync() {
  std::lock_guard<std::mutex> G(M);
  return NextSync++;
}

void SessionHooks::emit(const Event &E) {
  std::lock_guard<std::mutex> G(M);
  Session.process(E);
}

void SessionHooks::onRead(ThreadId T, VarId X) {
  emit(Event(T, OpKind::Read, X));
}
void SessionHooks::onWrite(ThreadId T, VarId X) {
  emit(Event(T, OpKind::Write, X));
}
void SessionHooks::onAcquire(ThreadId T, SyncId L) {
  emit(Event(T, OpKind::Acquire, L));
}
void SessionHooks::onRelease(ThreadId T, SyncId L) {
  emit(Event(T, OpKind::Release, L));
}
void SessionHooks::onFork(ThreadId Parent, ThreadId Child) {
  emit(Event(Parent, OpKind::Fork, Child));
}
void SessionHooks::onJoin(ThreadId Parent, ThreadId Child) {
  emit(Event(Parent, OpKind::Join, Child));
}
void SessionHooks::onReleaseStore(ThreadId T, SyncId Sy) {
  emit(Event(T, OpKind::ReleaseStore, Sy));
}
void SessionHooks::onReleaseJoin(ThreadId T, SyncId Sy) {
  emit(Event(T, OpKind::ReleaseJoin, Sy));
}
void SessionHooks::onAcquireLoad(ThreadId T, SyncId Sy) {
  emit(Event(T, OpKind::AcquireLoad, Sy));
}
