//===- api/Exploration.cpp - Schedule-space analysis -------------------------//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/api/Exploration.h"

#include "sampletrack/api/AnalysisSession.h"
#include "sampletrack/detectors/HBClosureOracle.h"

#include <unordered_set>

using namespace sampletrack;
using namespace sampletrack::api;
using namespace sampletrack::explore;

namespace {

/// How an engine's deduplicated race set is compared against the oracle.
enum class RefKind {
  FullExact,    ///< Event-exact vs dedup(declaredRaces(false)) — Djit+.
  FullLocations,///< Racy-location set vs the full reference — FT.
  MarkedExact,  ///< Event-exact vs dedup(declaredRaces(true)) — ST/SU/SO.
  MarkedMutexOnly, ///< MarkedExact, but only on atomics-free schedules — TC.
};

RefKind refKindFor(EngineKind K) {
  switch (K) {
  case EngineKind::Djit:
    return RefKind::FullExact;
  case EngineKind::FastTrack:
    return RefKind::FullLocations;
  case EngineKind::TreeClockFull:
    return RefKind::MarkedMutexOnly;
  case EngineKind::SamplingNaive:
  case EngineKind::SamplingU:
  case EngineKind::SamplingO:
  case EngineKind::SamplingONoEpochOpt:
    return RefKind::MarkedExact;
  }
  return RefKind::MarkedExact;
}

/// Signature of the oracle's declaration at trace position \p I.
uint64_t signatureAt(const Trace &T, size_t I) {
  const Event &E = T[I];
  return triage::RaceSignature::of(E.var(), E.Kind, E.Tid).Value;
}

std::unordered_set<VarId> varsOf(const Trace &T,
                                 const std::vector<size_t> &Events) {
  std::unordered_set<VarId> Out;
  for (size_t I : Events)
    Out.insert(T[I].var());
  return Out;
}

} // namespace

ExploreReport sampletrack::api::runExploration(const SessionConfig &Cfg,
                                               const Workload &W,
                                               const ExploreConfig &EC,
                                               prof::Profiler *Prof) {
  // Self-profiling: one tree for the exploration loop, split into the
  // enumeration/analysis/oracle phases per schedule. The inner sessions run
  // with profiling off — their results must not depend on it.
  prof::Tree *PT = Prof ? Prof->makeTree("explore") : nullptr;
  prof::NodeId EnumNode = 0, AnalyzeNode = 0, OracleNode = 0;
  if (PT) {
    EnumNode = PT->internPath({"explore", "enumerate"});
    AnalyzeNode = PT->internPath({"explore", "analyze"});
    OracleNode = PT->internPath({"explore", "oracle"});
  }

  std::vector<EngineKind> Kinds = Cfg.Engines;
  if (Kinds.empty())
    Kinds = {EngineKind::Djit,          EngineKind::FastTrack,
             EngineKind::SamplingNaive, EngineKind::SamplingU,
             EngineKind::SamplingO,     EngineKind::SamplingONoEpochOpt};

  ExploreReport R;
  R.Mode = exploreModeName(EC.Mode);
  R.Seed = EC.Seed;
  R.SchedulesRequested = EC.MaxSchedules;
  R.Engines.resize(Kinds.size());
  for (size_t I = 0; I < Kinds.size(); ++I)
    R.Engines[I].Engine = engineKindName(Kinds[I]);

  const bool WorkloadHasAtomics = W.hasAtomicOps();
  std::unordered_set<uint64_t> OracleMarkedUnion, OracleFullUnion;
  std::vector<std::unordered_set<uint64_t>> EngineUnion(Kinds.size());

  Scheduler Sched(W, EC);
  Schedule S;
  while (true) {
    uint64_t EnumT0 = PT ? prof::nowNanos() : 0;
    if (!Sched.next(S))
      break;
    Trace T = Scheduler::materialize(W, S.Choices);

    // Freeze this schedule's sample set into the trace so the lanes and
    // the oracle provably agree on S. The sampler restarts per schedule:
    // schedule k's decisions depend only on (Cfg, k-th trace shape).
    std::unique_ptr<Sampler> Sam = Cfg.makeSampler();
    for (size_t I = 0; I < T.size(); ++I)
      if (isAccess(T[I].Kind))
        T[I].Marked = Sam->shouldSample(T[I]);
    if (PT)
      PT->addSpan(EnumNode, EnumT0, prof::nowNanos());

    SessionConfig SC = Cfg;
    SC.Engines = Kinds;
    SC.Sampling = SamplerKind::Marked;
    SC.ProfilingEnabled = false;
    uint64_t AnalyzeT0 = PT ? prof::nowNanos() : 0;
    SessionResult Run = AnalysisSession(SC).run(T);
    if (PT)
      PT->addSpan(AnalyzeNode, AnalyzeT0, prof::nowNanos());

    uint64_t OracleT0 = PT ? prof::nowNanos() : 0;
    HBClosureOracle Oracle(T);
    std::vector<size_t> DedupMarked =
        dedupDeclaredRaces(T, Oracle.declaredRaces(/*MarkedOnly=*/true));
    std::vector<size_t> DedupFull =
        dedupDeclaredRaces(T, Oracle.declaredRaces(/*MarkedOnly=*/false));
    for (size_t I : DedupMarked)
      OracleMarkedUnion.insert(signatureAt(T, I));
    for (size_t I : DedupFull)
      OracleFullUnion.insert(signatureAt(T, I));

    ScheduleOutcome Out;
    Out.Hash = S.Hash;
    Out.Events = T.size();
    Out.OracleSignatures = DedupMarked.size();
    Out.OracleFullSignatures = DedupFull.size();
    if (!DedupFull.empty())
      ++R.SchedulesWithOracleRaces;

    for (size_t L = 0; L < Kinds.size(); ++L) {
      const EngineRun &Lane = Run.Engines[L];
      EngineCoverage &Cov = R.Engines[L];
      for (const RaceReport &Rep : Lane.Races)
        EngineUnion[L].insert(triage::RaceSignature::of(Rep).Value);

      RefKind Ref = refKindFor(Kinds[L]);
      if (Ref == RefKind::MarkedMutexOnly) {
        if (WorkloadHasAtomics)
          continue; // No exact reference for TC here; leave unchecked.
        Ref = RefKind::MarkedExact;
      }
      const std::vector<size_t> &RefEvents =
          (Ref == RefKind::MarkedExact) ? DedupMarked : DedupFull;

      bool Agreed;
      if (Ref == RefKind::FullLocations) {
        std::unordered_set<VarId> Got;
        for (const RaceReport &Rep : Lane.Races)
          Got.insert(Rep.Var);
        Agreed = !Lane.RacesTruncated && Got == varsOf(T, RefEvents);
      } else {
        std::vector<size_t> Got;
        Got.reserve(Lane.Races.size());
        for (const RaceReport &Rep : Lane.Races)
          Got.push_back(Rep.EventIndex);
        Agreed = !Lane.RacesTruncated && Got == RefEvents;
      }

      ++Cov.SchedulesChecked;
      if (Agreed)
        ++Cov.SchedulesAgreed;
      else
        Out.Agreed = false;
      if (!RefEvents.empty()) {
        ++Cov.OracleRacySchedules;
        if (!Lane.Races.empty())
          ++Cov.DetectedRacySchedules;
      }
    }

    R.AllAgreed = R.AllAgreed && Out.Agreed;
    R.EventsAnalyzed += T.size();
    R.Schedules.push_back(Out);
    if (PT)
      PT->addSpan(OracleNode, OracleT0, prof::nowNanos());
  }

  R.SchedulesRun = Sched.emitted();
  R.DeadlockedSchedules = Sched.deadlocked();
  R.DuplicateSchedules = Sched.duplicates();
  R.OracleDistinctSignatures = OracleMarkedUnion.size();
  R.OracleFullDistinctSignatures = OracleFullUnion.size();
  for (size_t L = 0; L < Kinds.size(); ++L) {
    EngineCoverage &Cov = R.Engines[L];
    Cov.DistinctSignatures = EngineUnion[L].size();
    Cov.DetectionRate =
        Cov.OracleRacySchedules
            ? static_cast<double>(Cov.DetectedRacySchedules) /
                  static_cast<double>(Cov.OracleRacySchedules)
            : 1.0;
  }
  return R;
}
