//===- api/Report.cpp - Session result reporters ---------------------------==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/api/Report.h"

#include "sampletrack/triage/Exporters.h"

#include <fstream>
#include <sstream>

using namespace sampletrack;
using namespace sampletrack::api;

namespace {

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

void emitMetrics(std::ostringstream &OS, const Metrics &M,
                 const char *Indent) {
  OS << Indent << "\"events\": " << M.Events << ",\n"
     << Indent << "\"accesses\": " << M.Accesses << ",\n"
     << Indent << "\"sampledAccesses\": " << M.SampledAccesses << ",\n"
     << Indent << "\"acquiresTotal\": " << M.AcquiresTotal << ",\n"
     << Indent << "\"acquiresSkipped\": " << M.AcquiresSkipped << ",\n"
     << Indent << "\"acquiresProcessed\": " << M.AcquiresProcessed << ",\n"
     << Indent << "\"releasesTotal\": " << M.ReleasesTotal << ",\n"
     << Indent << "\"releasesSkipped\": " << M.ReleasesSkipped << ",\n"
     << Indent << "\"releasesProcessed\": " << M.ReleasesProcessed << ",\n"
     << Indent << "\"shallowCopies\": " << M.ShallowCopies << ",\n"
     << Indent << "\"deepCopies\": " << M.DeepCopies << ",\n"
     << Indent << "\"poolHits\": " << M.PoolHits << ",\n"
     << Indent << "\"cowBreaks\": " << M.CowBreaks << ",\n"
     << Indent << "\"entriesTraversed\": " << M.EntriesTraversed << ",\n"
     << Indent << "\"traversalOpportunities\": " << M.TraversalOpportunities
     << ",\n"
     << Indent << "\"fullClockOps\": " << M.FullClockOps << ",\n"
     << Indent << "\"raceChecks\": " << M.RaceChecks << ",\n"
     << Indent << "\"racesDeclared\": " << M.RacesDeclared << "\n";
}

} // namespace

std::string sampletrack::api::toJson(const SessionResult &R,
                                     size_t MaxRaces) {
  std::ostringstream OS;
  OS << "{\n"
     << "  \"eventsProcessed\": " << R.EventsProcessed << ",\n"
     << "  \"numThreads\": " << R.NumThreads << ",\n"
     << "  \"numWorkers\": " << R.NumWorkers << ",\n"
     << "  \"shards\": " << R.Shards << ",\n"
     << "  \"wallNanos\": " << R.WallNanos << ",\n"
     << "  \"ingestNanos\": " << R.IngestNanos << ",\n"
     << "  \"engines\": [\n";
  for (size_t I = 0; I < R.Engines.size(); ++I) {
    const EngineRun &E = R.Engines[I];
    OS << "    {\n"
       << "      \"engine\": \"" << jsonEscape(E.Engine) << "\",\n"
       << "      \"sampler\": \"" << jsonEscape(E.SamplerName) << "\",\n"
       << "      \"races\": " << E.NumRaces << ",\n"
       << "      \"distinctRaces\": " << E.DistinctRaces << ",\n"
       << "      \"racyLocations\": " << E.NumRacyLocations << ",\n"
       << "      \"sampleSize\": " << E.SampleSize << ",\n"
       << "      \"shards\": " << E.Shards << ",\n"
       << "      \"wallNanos\": " << E.WallNanos << ",\n"
       << "      \"racesTruncated\": " << (E.RacesTruncated ? "true" : "false")
       << ",\n";
    if (MaxRaces) {
      OS << "      \"raceReports\": [\n";
      size_t N = std::min(MaxRaces, E.Races.size());
      for (size_t J = 0; J < N; ++J) {
        const RaceReport &Race = E.Races[J];
        OS << "        {\"event\": " << Race.EventIndex
           << ", \"thread\": " << Race.Tid << ", \"var\": " << Race.Var
           << ", \"op\": \"" << opKindName(Race.Kind) << "\"}"
           << (J + 1 < N ? "," : "") << "\n";
      }
      OS << "      ],\n";
    }
    OS << "      \"metrics\": {\n";
    emitMetrics(OS, E.Stats, "        ");
    OS << "      }\n"
       << "    }" << (I + 1 < R.Engines.size() ? "," : "") << "\n";
  }
  OS << "  ],\n";

  // The run's warehouse view: what the lanes' declarations dedup to.
  const triage::TriageSummary &T = R.Triage;
  OS << "  \"triage\": {\n"
     << "    \"distinctSignatures\": " << T.distinct() << ",\n"
     << "    \"racesDeclared\": " << T.RacesDeclared << ",\n"
     << "    \"droppedDeclarations\": " << T.DroppedDeclarations << ",\n"
     << "    \"capped\": " << (T.Capped ? "true" : "false") << "\n"
     << "  },\n"
     // The self-profile (empty array unless ProfilingEnabled): one object
     // per span in pre-order, path-flattened.
     << "  \"profile\": " << prof::toJsonArray(R.Profile) << "\n}\n";
  return OS.str();
}

std::string sampletrack::api::toCsv(const SessionResult &R) {
  std::ostringstream OS;
  OS << "engine,sampler,races,distinct_races,racy_locations,"
        "races_truncated,sample_size,shards,"
        "events,accesses,acquires_total,acquires_skipped,releases_total,"
        "releases_skipped,deep_copies,pool_hits,cow_breaks,"
        "entries_traversed,full_clock_ops,wall_nanos\n";
  for (const EngineRun &E : R.Engines) {
    const Metrics &M = E.Stats;
    OS << E.Engine << ',' << E.SamplerName << ',' << E.NumRaces << ','
       << E.DistinctRaces << ',' << E.NumRacyLocations << ','
       << (E.RacesTruncated ? 1 : 0) << ','
       << E.SampleSize << ',' << E.Shards << ',' << M.Events << ','
       << M.Accesses << ','
       << M.AcquiresTotal << ',' << M.AcquiresSkipped << ','
       << M.ReleasesTotal << ',' << M.ReleasesSkipped << ',' << M.DeepCopies
       << ',' << M.PoolHits << ',' << M.CowBreaks << ','
       << M.EntriesTraversed << ',' << M.FullClockOps << ','
       << E.WallNanos << '\n';
  }
  return OS.str();
}

std::string sampletrack::api::toProfileCsv(const SessionResult &R) {
  return prof::toCsv(R.Profile);
}

std::string sampletrack::api::toSarif(const SessionResult &R) {
  // A single-run SARIF log is the warehouse export of a one-run store.
  triage::TriageStore Once;
  Once.mergeRun(R.Triage);
  return triage::toSarif(Once);
}

bool sampletrack::api::runTriage(const SessionConfig &Cfg,
                                 const SessionResult &R, TriageOutcome &Out,
                                 std::string *Error) {
  Out.Store = triage::TriageStore();
  Out.Merge = triage::TriageStore::MergeResult();
  if (!Cfg.TriageStorePath.empty() &&
      !Out.Store.loadIfExists(Cfg.TriageStorePath, Error))
    return false;
  if (!Cfg.SuppressionFile.empty() &&
      !Out.Store.loadSuppressionFile(Cfg.SuppressionFile, Error))
    return false;
  Out.Merge = Out.Store.mergeRun(R.Triage);
  if (!Cfg.TriageStorePath.empty() &&
      !Out.Store.save(Cfg.TriageStorePath, Error))
    return false;
  return true;
}

bool sampletrack::api::writeFile(const std::string &Path,
                                 const std::string &Content) {
  std::ofstream Os(Path, std::ios::binary);
  if (!Os)
    return false;
  Os << Content;
  return static_cast<bool>(Os);
}
