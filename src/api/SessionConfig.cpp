//===- api/SessionConfig.cpp - Pipeline configuration ----------------------==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/api/SessionConfig.h"

using namespace sampletrack;
using namespace sampletrack::api;

const char *sampletrack::api::samplerKindName(SamplerKind K) {
  switch (K) {
  case SamplerKind::Always:
    return "always";
  case SamplerKind::Never:
    return "never";
  case SamplerKind::Bernoulli:
    return "bernoulli";
  case SamplerKind::Periodic:
    return "periodic";
  case SamplerKind::Marked:
    return "marked";
  }
  return "?";
}

std::unique_ptr<Sampler> SessionConfig::makeSampler() const {
  switch (Sampling) {
  case SamplerKind::Always:
    return std::make_unique<AlwaysSampler>();
  case SamplerKind::Never:
    return std::make_unique<NeverSampler>();
  case SamplerKind::Bernoulli:
    if (SamplingRate >= 1.0)
      return std::make_unique<AlwaysSampler>();
    return std::make_unique<BernoulliSampler>(SamplingRate, Seed);
  case SamplerKind::Periodic:
    return std::make_unique<PeriodicSampler>(SamplePeriod);
  case SamplerKind::Marked:
    return std::make_unique<MarkedSampler>();
  }
  return std::make_unique<AlwaysSampler>();
}

rt::Config SessionConfig::runtimeConfig(rt::Mode M) const {
  rt::Config C;
  C.AnalysisMode = M;
  C.SamplingRate = SamplingRate;
  C.Seed = Seed;
  C.MaxThreads = MaxThreads;
  C.ShadowCells = ShadowCells;
  C.ShadowShards = ShadowShards;
  C.RecordTrace = RecordTrace;
  C.PoolingEnabled = PoolingEnabled;
  C.TriageCapacity = TriageCapacity;
  C.ProfilingEnabled = ProfilingEnabled;
  return C;
}
