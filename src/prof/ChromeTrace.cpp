//===- prof/ChromeTrace.cpp - Trace Event Format export --------------------=//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/prof/ChromeTrace.h"

#include "sampletrack/prof/Profiler.h"

#include <algorithm>
#include <cstdio>

namespace sampletrack {
namespace prof {

namespace {

std::string jsonEscape(std::string_view S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '"')
      Out += "\\\"";
    else if (C == '\\')
      Out += "\\\\";
    else if (static_cast<unsigned char>(C) < 0x20)
      Out += ' ';
    else
      Out += C;
  }
  return Out;
}

/// Microseconds with sub-µs precision, relative to \p Base.
std::string micros(uint64_t Nanos, uint64_t Base) {
  char Buf[40];
  uint64_t Rel = Nanos >= Base ? Nanos - Base : 0;
  std::snprintf(Buf, sizeof(Buf), "%llu.%03llu",
                static_cast<unsigned long long>(Rel / 1000),
                static_cast<unsigned long long>(Rel % 1000));
  return Buf;
}

} // namespace

std::string toChromeTrace(std::span<const TraceSource> Sources) {
  uint64_t Base = ~0ull;
  for (const TraceSource &S : Sources)
    if (S.Prof)
      Base = std::min(Base, S.Prof->epochNanos());
  if (Base == ~0ull)
    Base = 0;

  std::string Out = "{\"traceEvents\": [\n";
  bool First = true;
  auto emit = [&](const std::string &Event) {
    if (!First)
      Out += ",\n";
    First = false;
    Out += "  " + Event;
  };

  for (size_t P = 0; P < Sources.size(); ++P) {
    const TraceSource &Src = Sources[P];
    if (!Src.Prof)
      continue;
    std::string Pid = std::to_string(P + 1);
    emit("{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": " + Pid +
         ", \"tid\": 0, \"args\": {\"name\": \"" +
         jsonEscape(Src.ProcessName) + "\"}}");
    std::vector<const Tree *> Trees = Src.Prof->trees();
    for (size_t T = 0; T < Trees.size(); ++T) {
      const Tree *Tr = Trees[T];
      std::string Tid = std::to_string(T + 1);
      emit("{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": " + Pid +
           ", \"tid\": " + Tid + ", \"args\": {\"name\": \"" +
           jsonEscape(Tr->name()) + "\"}}");
      for (const TimelineEvent &E : Tr->timeline()) {
        uint64_t Dur = E.EndNanos > E.StartNanos ? E.EndNanos - E.StartNanos
                                                 : 0;
        char DurBuf[40];
        std::snprintf(DurBuf, sizeof(DurBuf), "%llu.%03llu",
                      static_cast<unsigned long long>(Dur / 1000),
                      static_cast<unsigned long long>(Dur % 1000));
        emit("{\"ph\": \"X\", \"name\": \"" +
             jsonEscape(Tr->nodeName(E.Node)) + "\", \"cat\": \"" +
             jsonEscape(Src.ProcessName) + "\", \"pid\": " + Pid +
             ", \"tid\": " + Tid +
             ", \"ts\": " + micros(E.StartNanos, Base) +
             ", \"dur\": " + DurBuf + "}");
      }
      for (const CounterSample &C : Tr->counterSamples())
        emit("{\"ph\": \"C\", \"name\": \"" + jsonEscape(C.Name) +
             "\", \"pid\": " + Pid + ", \"tid\": " + Tid +
             ", \"ts\": " + micros(C.Nanos, Base) + ", \"args\": {\"" +
             jsonEscape(C.Name) + "\": " + std::to_string(C.Value) + "}}");
    }
  }
  Out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return Out;
}

std::string toChromeTrace(const Profiler &P, std::string_view ProcessName) {
  TraceSource Src{&P, std::string(ProcessName)};
  return toChromeTrace(std::span<const TraceSource>(&Src, 1));
}

} // namespace prof
} // namespace sampletrack
