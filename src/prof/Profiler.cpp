//===- prof/Profiler.cpp - Hierarchical self-profiler ----------------------=//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/prof/Profiler.h"

#include <cassert>

namespace sampletrack {
namespace prof {

namespace {

/// Locks \p Mu only when the tree was created in locked mode.
class MaybeLock {
public:
  MaybeLock(std::mutex &Mu, bool Locked) : Mu(Mu), Engaged(Locked) {
    if (Engaged)
      Mu.lock();
  }
  ~MaybeLock() {
    if (Engaged)
      Mu.unlock();
  }

private:
  std::mutex &Mu;
  bool Engaged;
};

} // namespace

Tree::Tree(std::string Name, bool Locked)
    : TreeName(std::move(Name)), Locked(Locked) {
  Nodes.emplace_back(); // The unnamed root.
  Stack.push_back(0);
}

NodeId Tree::internLocked(NodeId Parent, std::string_view Name) {
  for (NodeId C : Nodes[Parent].Children)
    if (Nodes[C].Name == Name)
      return C;
  NodeId Id = static_cast<NodeId>(Nodes.size());
  Nodes[Parent].Children.push_back(Id);
  NodeData N;
  N.Name = std::string(Name);
  N.Parent = Parent;
  Nodes.push_back(std::move(N));
  return Id;
}

NodeId Tree::intern(NodeId Parent, std::string_view Name) {
  MaybeLock L(Mu, Locked);
  return internLocked(Parent, Name);
}

NodeId Tree::internPath(std::initializer_list<std::string_view> Path) {
  MaybeLock L(Mu, Locked);
  NodeId Cur = 0;
  for (std::string_view Name : Path)
    Cur = internLocked(Cur, Name);
  return Cur;
}

NodeId Tree::push(std::string_view Name) {
  MaybeLock L(Mu, Locked);
  NodeId Id = internLocked(Stack.back(), Name);
  Stack.push_back(Id);
  return Id;
}

void Tree::pop(NodeId Id, uint64_t StartNanos, uint64_t EndNanos) {
  MaybeLock L(Mu, Locked);
  assert(Stack.size() > 1 && Stack.back() == Id && "unbalanced Scope nesting");
  Stack.pop_back();
  NodeData &N = Nodes[Id];
  N.Count += 1;
  N.Nanos += EndNanos - StartNanos;
  if (Timeline.size() < MaxTimelineEvents)
    Timeline.push_back({Id, StartNanos, EndNanos});
  else
    ++TimelineDropped;
}

void Tree::addSample(NodeId Id, uint64_t Nanos, uint64_t Count) {
  MaybeLock L(Mu, Locked);
  NodeData &N = Nodes[Id];
  N.Count += Count;
  N.Nanos += Nanos;
}

void Tree::addSpan(NodeId Id, uint64_t StartNanos, uint64_t EndNanos,
                   uint64_t Count) {
  MaybeLock L(Mu, Locked);
  NodeData &N = Nodes[Id];
  N.Count += Count;
  N.Nanos += EndNanos - StartNanos;
  if (Timeline.size() < MaxTimelineEvents)
    Timeline.push_back({Id, StartNanos, EndNanos});
  else
    ++TimelineDropped;
}

void Tree::addCounter(NodeId Id, std::string_view Name, uint64_t Delta) {
  MaybeLock L(Mu, Locked);
  for (auto &C : Nodes[Id].Counters)
    if (C.first == Name) {
      C.second += Delta;
      return;
    }
  Nodes[Id].Counters.emplace_back(std::string(Name), Delta);
}

void Tree::counterEvent(NodeId Id, std::string_view Name, uint64_t Value) {
  MaybeLock L(Mu, Locked);
  bool Found = false;
  for (auto &C : Nodes[Id].Counters)
    if (C.first == Name) {
      C.second += Value;
      Found = true;
      break;
    }
  if (!Found)
    Nodes[Id].Counters.emplace_back(std::string(Name), Value);
  if (CounterTrack.size() < MaxCounterSamples)
    CounterTrack.push_back({std::string(Name), nowNanos(), Value});
}

void Tree::mergeInto(ReportMergeNode &Root) const {
  MaybeLock L(Mu, Locked);
  // Recursive walk without recursion: (tree node, merge node) pairs.
  std::vector<std::pair<NodeId, ReportMergeNode *>> Work;
  Work.emplace_back(0, &Root);
  while (!Work.empty()) {
    auto [Id, M] = Work.back();
    Work.pop_back();
    const NodeData &N = Nodes[Id];
    M->Count += N.Count;
    M->Nanos += N.Nanos;
    for (const auto &C : N.Counters)
      M->Counters[C.first] += C.second;
    for (NodeId Child : N.Children)
      Work.emplace_back(Child, &M->Children[Nodes[Child].Name]);
  }
}

Tree *Profiler::makeTree(std::string Name) {
  std::lock_guard<std::mutex> L(Mu);
  Trees.push_back(
      std::unique_ptr<Tree>(new Tree(std::move(Name), LockTrees)));
  return Trees.back().get();
}

std::vector<const Tree *> Profiler::trees() const {
  std::lock_guard<std::mutex> L(Mu);
  std::vector<const Tree *> Out;
  Out.reserve(Trees.size());
  for (const auto &T : Trees)
    Out.push_back(T.get());
  return Out;
}

namespace {

ReportNode toReportNode(std::string Name, const ReportMergeNode &M) {
  ReportNode N;
  N.Name = std::move(Name);
  N.Count = M.Count;
  N.InclusiveNanos = M.Nanos;
  N.Counters.assign(M.Counters.begin(), M.Counters.end());
  uint64_t ChildNanos = 0;
  for (const auto &[CName, Child] : M.Children) {
    N.Children.push_back(toReportNode(CName, Child));
    ChildNanos += Child.Nanos;
  }
  N.ExclusiveNanos = M.Nanos > ChildNanos ? M.Nanos - ChildNanos : 0;
  return N;
}

} // namespace

Report Profiler::report() const {
  ReportMergeNode Root;
  {
    std::lock_guard<std::mutex> L(Mu);
    for (const auto &T : Trees)
      T->mergeInto(Root);
  }
  Report R;
  R.Root = toReportNode("", Root);
  return R;
}

} // namespace prof
} // namespace sampletrack
