//===- prof/Report.cpp - Merged span-tree report renderers -----------------=//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/prof/Report.h"

#include <cstdio>

namespace sampletrack {
namespace prof {

namespace {

void stripNode(ReportNode &N) {
  N.InclusiveNanos = 0;
  N.ExclusiveNanos = 0;
  for (ReportNode &C : N.Children)
    stripNode(C);
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string fmtNanos(uint64_t Nanos) {
  char Buf[32];
  if (Nanos >= 1000000000ull)
    std::snprintf(Buf, sizeof(Buf), "%.2fs", Nanos / 1e9);
  else if (Nanos >= 1000000ull)
    std::snprintf(Buf, sizeof(Buf), "%.2fms", Nanos / 1e6);
  else if (Nanos >= 1000ull)
    std::snprintf(Buf, sizeof(Buf), "%.2fus", Nanos / 1e3);
  else
    std::snprintf(Buf, sizeof(Buf), "%lluns",
                  static_cast<unsigned long long>(Nanos));
  return Buf;
}

void textNode(const ReportNode &N, size_t Depth, std::string &Out) {
  Out.append(2 * Depth, ' ');
  Out += N.Name;
  Out += "  count=" + std::to_string(N.Count);
  Out += "  incl=" + fmtNanos(N.InclusiveNanos);
  Out += "  excl=" + fmtNanos(N.ExclusiveNanos);
  for (const auto &[Name, Value] : N.Counters)
    Out += "  " + Name + "=" + std::to_string(Value);
  Out += '\n';
  for (const ReportNode &C : N.Children)
    textNode(C, Depth + 1, Out);
}

void jsonNode(const ReportNode &N, const std::string &Prefix, bool &First,
              std::string &Out) {
  std::string Path = Prefix.empty() ? N.Name : Prefix + "/" + N.Name;
  if (!First)
    Out += ", ";
  First = false;
  Out += "{\"path\": \"";
  Out += jsonEscape(Path);
  Out += "\", \"count\": ";
  Out += std::to_string(N.Count);
  Out += ", \"inclusiveNanos\": ";
  Out += std::to_string(N.InclusiveNanos);
  Out += ", \"exclusiveNanos\": ";
  Out += std::to_string(N.ExclusiveNanos);
  if (!N.Counters.empty()) {
    Out += ", \"counters\": {";
    for (size_t I = 0; I < N.Counters.size(); ++I) {
      if (I)
        Out += ", ";
      Out += '"';
      Out += jsonEscape(N.Counters[I].first);
      Out += "\": ";
      Out += std::to_string(N.Counters[I].second);
    }
    Out += "}";
  }
  Out += "}";
  for (const ReportNode &C : N.Children)
    jsonNode(C, Path, First, Out);
}

void csvNode(const ReportNode &N, const std::string &Prefix,
             std::string &Out) {
  std::string Path = Prefix.empty() ? N.Name : Prefix + "/" + N.Name;
  Out += Path + "," + std::to_string(N.Count) + "," +
         std::to_string(N.InclusiveNanos) + "," +
         std::to_string(N.ExclusiveNanos) + "\n";
  for (const ReportNode &C : N.Children)
    csvNode(C, Path, Out);
}

} // namespace

Report stripTiming(Report R) {
  stripNode(R.Root);
  return R;
}

std::string toText(const Report &R) {
  std::string Out;
  for (const ReportNode &C : R.Root.Children)
    textNode(C, 0, Out);
  return Out;
}

std::string toJsonArray(const Report &R) {
  std::string Out = "[";
  bool First = true;
  for (const ReportNode &C : R.Root.Children)
    jsonNode(C, "", First, Out);
  Out += "]";
  return Out;
}

std::string toCsv(const Report &R) {
  std::string Out = "path,count,inclusiveNanos,exclusiveNanos\n";
  for (const ReportNode &C : R.Root.Children)
    csvNode(C, "", Out);
  return Out;
}

} // namespace prof
} // namespace sampletrack
