//===- workload/Workload.cpp - OLTP workload driver ---------------------------/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/workload/Workload.h"

#include "sampletrack/support/Rng.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>

using namespace sampletrack;
using namespace sampletrack::workload;

const std::vector<BenchmarkSpec> &sampletrack::workload::benchbaseSuite() {
  static const std::vector<BenchmarkSpec> Suite = [] {
    std::vector<BenchmarkSpec> V;
    auto Add = [&V](const char *Name, size_t Tables, size_t Rows, size_t OpsMin,
                    size_t OpsMax, double WriteFrac, double Zipf,
                    double SecondLock, double Unprot, unsigned Compute) {
      BenchmarkSpec S;
      S.Name = Name;
      S.NumTables = Tables;
      S.RowsPerTable = Rows;
      S.OpsMin = OpsMin;
      S.OpsMax = OpsMax;
      S.WriteFraction = WriteFrac;
      S.ZipfTheta = Zipf;
      S.SecondLockProb = SecondLock;
      S.UnprotectedProb = Unprot;
      S.ComputePerOp = Compute;
      V.push_back(S);
    };
    // Profiles follow the qualitative character of the BenchBase workloads:
    // contention (Zipf), write share, transaction length, lock nesting.
    Add("auctionmark", 24, 512, 10, 40, 0.35, 0.9, 0.30, 0.01, 4);
    Add("epinions", 16, 512, 6, 24, 0.20, 0.7, 0.15, 0.01, 4);
    Add("seats", 24, 256, 12, 48, 0.40, 1.0, 0.35, 0.01, 4);
    Add("sibench", 2, 64, 4, 8, 0.50, 0.2, 0.00, 0.00, 2);
    Add("smallbank", 8, 256, 4, 12, 0.50, 0.8, 0.25, 0.01, 2);
    Add("tatp", 8, 512, 3, 8, 0.20, 0.6, 0.05, 0.00, 2);
    Add("tpcc", 16, 256, 16, 64, 0.45, 1.2, 0.45, 0.01, 6);
    Add("twitter", 16, 1024, 4, 16, 0.15, 1.1, 0.10, 0.01, 3);
    Add("voter", 4, 128, 3, 8, 0.60, 1.0, 0.05, 0.00, 2);
    Add("wikipedia", 24, 1024, 8, 32, 0.10, 0.9, 0.20, 0.01, 4);
    Add("ycsb", 8, 2048, 4, 16, 0.30, 0.99, 0.00, 0.01, 2);
    Add("tpch", 8, 2048, 32, 96, 0.02, 0.3, 0.10, 0.00, 8);
    return V;
  }();
  return Suite;
}

const BenchmarkSpec *
sampletrack::workload::findBenchmark(const std::string &Name) {
  for (const BenchmarkSpec &S : benchbaseSuite())
    if (S.Name == Name)
      return &S;
  return nullptr;
}

namespace {

constexpr size_t RowGroups = 8;

/// Shared immutable run context.
struct Context {
  const BenchmarkSpec &Spec;
  rt::Runtime &Rt;
  std::vector<std::unique_ptr<rt::Mutex>> TableLocks;
  /// Fine-grained row-group locks: 8 groups per table.
  std::vector<std::unique_ptr<rt::Mutex>> RowLocks;
  std::vector<std::vector<uint64_t>> Tables;
  std::vector<uint64_t> Scratch;
  ZipfDistribution TableDist;

  Context(const BenchmarkSpec &Spec, rt::Runtime &Rt)
      : Spec(Spec), Rt(Rt), Scratch(std::max<size_t>(1, Spec.ScratchCells), 0),
        TableDist(Spec.NumTables, Spec.ZipfTheta) {
    TableLocks.reserve(Spec.NumTables);
    for (size_t T = 0; T < Spec.NumTables; ++T)
      TableLocks.push_back(std::make_unique<rt::Mutex>(Rt));
    RowLocks.reserve(Spec.NumTables * RowGroups);
    for (size_t T = 0; T < Spec.NumTables * RowGroups; ++T)
      RowLocks.push_back(std::make_unique<rt::Mutex>(Rt));
    Tables.assign(Spec.NumTables,
                  std::vector<uint64_t>(Spec.RowsPerTable, 0));
  }
};

/// A little CPU work between accesses; the result feeds a sink so the
/// compiler cannot elide it.
inline uint64_t burn(uint64_t X, unsigned Iters) {
  for (unsigned I = 0; I < Iters; ++I) {
    X ^= X << 13;
    X ^= X >> 7;
    X ^= X << 17;
  }
  return X;
}

/// One client thread's request loop.
void clientLoop(Context &Ctx, ThreadId Tid, uint64_t Seed, size_t Requests,
                std::chrono::steady_clock::time_point Deadline,
                bool UseDeadline, std::vector<double> &LatenciesNs) {
  SplitMix64 Rng(Seed);
  const BenchmarkSpec &Spec = Ctx.Spec;
  rt::Runtime &Rt = Ctx.Rt;
  uint64_t Sink = 0;
  LatenciesNs.reserve(Requests);

  for (size_t R = 0; UseDeadline || R < Requests; ++R) {
    auto Start = std::chrono::steady_clock::now();
    if (UseDeadline && Start >= Deadline)
      break;

    size_t T1 = Ctx.TableDist.sample(Rng);
    size_t T2 = SIZE_MAX;
    // A second lock is taken in table-id order to stay deadlock-free.
    if (Rng.nextBool(Spec.SecondLockProb)) {
      size_t Cand = Ctx.TableDist.sample(Rng);
      if (Cand != T1) {
        T2 = std::max(T1, Cand);
        T1 = std::min(T1, Cand);
      }
    }

    Ctx.TableLocks[T1]->lock(Tid);
    if (T2 != SIZE_MAX)
      Ctx.TableLocks[T2]->lock(Tid);

    size_t Ops = Spec.OpsMin + Rng.nextBelow(Spec.OpsMax - Spec.OpsMin + 1);
    for (size_t Op = 0; Op < Ops; ++Op) {
      size_t Table = (T2 != SIZE_MAX && (Op & 1)) ? T2 : T1;
      size_t RowIdx = Rng.nextBelow(Spec.RowsPerTable);
      // Two-level locking: the table lock is already held; optionally also
      // take the row-group lock, as a real storage engine would.
      rt::Mutex *RowLock = nullptr;
      if (Rng.nextBool(Spec.RowLockProb)) {
        RowLock = Ctx.RowLocks[Table * RowGroups +
                               RowIdx * RowGroups / Spec.RowsPerTable]
                      .get();
        RowLock->lock(Tid);
      }
      size_t Fields = std::max<size_t>(1, Spec.FieldsPerOp);
      for (size_t F = 0; F < Fields; ++F) {
        size_t Idx = (RowIdx + F) % Spec.RowsPerTable;
        uint64_t &Field = Ctx.Tables[Table][Idx];
        uint64_t FieldAddr = reinterpret_cast<uint64_t>(&Field);
        if (Rng.nextBool(Spec.WriteFraction)) {
          Rt.onWrite(Tid, FieldAddr);
          Field = Sink + Op;
        } else {
          Rt.onRead(Tid, FieldAddr);
          Sink += Field;
        }
      }
      if (RowLock)
        RowLock->unlock(Tid);
      Sink = burn(Sink | 1, Spec.ComputePerOp);
    }

    if (T2 != SIZE_MAX)
      Ctx.TableLocks[T2]->unlock(Tid);
    Ctx.TableLocks[T1]->unlock(Tid);

    // Occasional unprotected touches of shared scratch: deliberate races.
    if (Rng.nextBool(Spec.UnprotectedProb)) {
      for (size_t U = 0; U < Spec.UnprotectedOpsPerTxn; ++U) {
        uint64_t &Cell = Ctx.Scratch[Rng.nextBelow(Ctx.Scratch.size())];
        uint64_t Addr = reinterpret_cast<uint64_t>(&Cell);
        Rt.onWrite(Tid, Addr);
        reinterpret_cast<std::atomic<uint64_t> &>(Cell).fetch_add(
            1, std::memory_order_relaxed);
      }
    }

    auto End = std::chrono::steady_clock::now();
    LatenciesNs.push_back(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(End - Start)
            .count()));
  }
  // Publish the sink so the optimizer keeps the computation.
  reinterpret_cast<std::atomic<uint64_t> &>(Ctx.Scratch[0]).fetch_xor(
      Sink, std::memory_order_relaxed);
}

} // namespace

RunStats sampletrack::workload::runBenchmark(
    const BenchmarkSpec &Spec, const RunConfig &Config,
    std::unique_ptr<rt::Runtime> *RtOut) {
  auto RtOwned = std::make_unique<rt::Runtime>(Config.Rt);
  rt::Runtime &Rt = *RtOwned;
  Context Ctx(Spec, Rt);

  std::vector<std::vector<double>> Latencies(Config.NumClients);
  std::vector<std::thread> Threads;
  Threads.reserve(Config.NumClients);

  auto Start = std::chrono::steady_clock::now();
  bool UseDeadline = Config.TimeBudgetSec > 0.0;
  auto Deadline = Start + std::chrono::microseconds(static_cast<int64_t>(
                              Config.TimeBudgetSec * 1e6));
  std::vector<ThreadId> Tids;
  for (size_t C = 0; C < Config.NumClients; ++C) {
    ThreadId Tid = Rt.registerThread();
    Rt.onFork(0, Tid);
    Tids.push_back(Tid);
  }
  for (size_t C = 0; C < Config.NumClients; ++C) {
    Threads.emplace_back([&, C] {
      clientLoop(Ctx, Tids[C], Config.Seed * 1000003 + C,
                 Config.RequestsPerClient, Deadline, UseDeadline,
                 Latencies[C]);
    });
  }
  for (size_t C = 0; C < Config.NumClients; ++C) {
    Threads[C].join();
    Rt.onJoin(0, Tids[C]);
  }
  auto End = std::chrono::steady_clock::now();

  RunStats R;
  R.Benchmark = Spec.Name;
  R.ModeLabel = rt::modeName(Config.Rt.AnalysisMode);
  if (rt::isSamplingMode(Config.Rt.AnalysisMode)) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%s%.3g%%", R.ModeLabel.c_str(),
                  Config.Rt.SamplingRate * 100.0);
    R.ModeLabel = Buf;
  }
  std::vector<double> All;
  for (auto &L : Latencies)
    All.insert(All.end(), L.begin(), L.end());
  R.TotalRequests = All.size();
  R.LatencyNs = Summary::of(std::move(All));
  R.Races = Rt.raceCount();
  R.RacyLocations = Rt.racyLocationCount();
  R.DistinctRaces = Rt.distinctRaceCount();
  R.Stats = Rt.aggregatedMetrics();
  R.WallNanos = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(End - Start)
          .count());
  if (Config.Rt.RecordTrace)
    R.Recorded = Rt.recordedTrace();
  if (RtOut)
    *RtOut = std::move(RtOwned);
  return R;
}

explore::Workload sampletrack::workload::recordPrograms(
    const BenchmarkSpec &Spec, RunConfig Config, RunStats *Stats) {
  Config.Rt.RecordTrace = true;
  RunStats R = runBenchmark(Spec, Config);
  explore::Workload W = explore::Workload::fromTrace(R.Recorded);
  if (Stats)
    *Stats = std::move(R);
  return W;
}
