//===- workload/StorageEngine.cpp - Mini storage engine ----------------------=/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/workload/StorageEngine.h"

#include <algorithm>
#include <cstring>
#include <optional>

using namespace sampletrack;
using namespace sampletrack::db;

//===----------------------------------------------------------------------===//
// BufferPool
//===----------------------------------------------------------------------===//

BufferPool::BufferPool(rt::Runtime &Rt, size_t Capacity, size_t DiskPages)
    : Rt(Rt), MapLatch(Rt), Disk(DiskPages) {
  assert(Capacity >= 4 && "pool too small for latch crabbing");
  for (size_t I = 0; I < Capacity; ++I)
    Frames.emplace_back(Rt);
}

PageId BufferPool::allocatePage(ThreadId T) {
  MapLatch.lock(T);
  assert(NextPage < Disk.size() && "disk full; raise DiskPages");
  PageId Id = NextPage++;
  MapLatch.unlock(T);
  return Id;
}

Frame *BufferPool::findVictim() {
  // Free frame first; otherwise the unpinned frame with the oldest stamp.
  Frame *Victim = nullptr;
  for (Frame &F : Frames) {
    if (F.Id == NoPage)
      return &F;
    if (F.Pins == 0 && (!Victim || F.LruStamp < Victim->LruStamp))
      Victim = &F;
  }
  assert(Victim && "all frames pinned; raise pool capacity");
  return Victim;
}

Frame &BufferPool::pin(ThreadId T, PageId Id) {
  MapLatch.lock(T);
  auto It = PageTable.find(Id);
  if (It != PageTable.end()) {
    Frame &F = *It->second;
    ++F.Pins;
    F.LruStamp = ++LruClock;
    ++Hits;
    MapLatch.unlock(T);
    return F;
  }
  ++Misses;
  Frame *F = findVictim();
  if (F->Id != NoPage) {
    // Evict: write back if dirty. The victim is unpinned, and every past
    // user's unpin went through MapLatch, so this access is ordered after
    // all of them (one representative instrumented word keeps hook volume
    // bounded).
    ++Evictions;
    if (F->Dirty) {
      Rt.onRead(T, reinterpret_cast<uint64_t>(&F->Data.Words[0]));
      Rt.onWrite(T, reinterpret_cast<uint64_t>(&Disk[F->Id].Words[0]));
      Disk[F->Id] = F->Data;
    }
    PageTable.erase(F->Id);
  }
  Rt.onRead(T, reinterpret_cast<uint64_t>(&Disk[Id].Words[0]));
  F->Data = Disk[Id];
  Rt.onWrite(T, reinterpret_cast<uint64_t>(&F->Data.Words[0]));
  F->Id = Id;
  F->Dirty = false;
  F->Pins = 1;
  F->LruStamp = ++LruClock;
  PageTable[Id] = F;
  MapLatch.unlock(T);
  return *F;
}

void BufferPool::unpin(ThreadId T, Frame &F, bool Dirtied) {
  MapLatch.lock(T);
  assert(F.Pins > 0 && "unpin without pin");
  --F.Pins;
  if (Dirtied)
    F.Dirty = true;
  MapLatch.unlock(T);
}

//===----------------------------------------------------------------------===//
// BTree node layout helpers
//===----------------------------------------------------------------------===//

namespace {

/// CLRS B-tree geometry: minimum degree MinDeg, max keys 2*MinDeg - 1.
constexpr size_t MinDeg = 8;
constexpr size_t MaxKeys = 2 * MinDeg - 1; // 15 <= BTree::Fanout

// Word offsets inside a page.
constexpr size_t OffLeaf = 0;
constexpr size_t OffCount = 1;
constexpr size_t OffKeys = 2;
constexpr size_t OffVals = OffKeys + MaxKeys;
constexpr size_t OffKids = OffVals + MaxKeys;
static_assert(OffKids + MaxKeys + 1 <= Page::NumWords, "page too small");

/// Instrumented word accessors: every node access is a real memory access
/// plus the corresponding runtime hook.
uint64_t rd(rt::Runtime &Rt, ThreadId T, Frame &F, size_t Idx) {
  Rt.onRead(T, reinterpret_cast<uint64_t>(&F.Data.Words[Idx]));
  return F.Data.Words[Idx];
}

void wr(rt::Runtime &Rt, ThreadId T, Frame &F, size_t Idx, uint64_t V) {
  Rt.onWrite(T, reinterpret_cast<uint64_t>(&F.Data.Words[Idx]));
  F.Data.Words[Idx] = V;
}

uint64_t key(rt::Runtime &Rt, ThreadId T, Frame &F, size_t I) {
  return rd(Rt, T, F, OffKeys + I);
}
uint64_t val(rt::Runtime &Rt, ThreadId T, Frame &F, size_t I) {
  return rd(Rt, T, F, OffVals + I);
}
PageId kid(rt::Runtime &Rt, ThreadId T, Frame &F, size_t I) {
  return static_cast<PageId>(rd(Rt, T, F, OffKids + I));
}
bool isLeaf(rt::Runtime &Rt, ThreadId T, Frame &F) {
  return rd(Rt, T, F, OffLeaf) != 0;
}
size_t count(rt::Runtime &Rt, ThreadId T, Frame &F) {
  return static_cast<size_t>(rd(Rt, T, F, OffCount));
}

} // namespace

//===----------------------------------------------------------------------===//
// BTree
//===----------------------------------------------------------------------===//

/// RAII pinned-and-latched frame. Movable so the crabbing loop can hand the
/// child guard into the parent slot.
struct BTree::Guard {
  BufferPool *Pool = nullptr;
  ThreadId T = 0;
  Frame *F = nullptr;
  bool Dirtied = false;

  Guard() = default;
  Guard(BufferPool &Pool, ThreadId T, PageId Id) : Pool(&Pool), T(T) {
    F = &Pool.pin(T, Id);
    F->Latch.lock(T);
  }
  Guard(Guard &&O) noexcept
      : Pool(O.Pool), T(O.T), F(O.F), Dirtied(O.Dirtied) {
    O.F = nullptr;
  }
  Guard &operator=(Guard &&O) noexcept {
    release();
    Pool = O.Pool;
    T = O.T;
    F = O.F;
    Dirtied = O.Dirtied;
    O.F = nullptr;
    return *this;
  }
  Guard(const Guard &) = delete;
  Guard &operator=(const Guard &) = delete;
  ~Guard() { release(); }

  void release() {
    if (!F)
      return;
    F->Latch.unlock(T);
    Pool->unpin(T, *F, Dirtied);
    F = nullptr;
  }

  Frame &frame() { return *F; }
  explicit operator bool() const { return F != nullptr; }
};

BTree::BTree(BufferPool &Pool, ThreadId Creator)
    : Pool(Pool), RootLatch(Pool.runtime()) {
  RootId = Pool.allocatePage(Creator);
  Guard Root(Pool, Creator, RootId);
  rt::Runtime &Rt = Pool.runtime();
  wr(Rt, Creator, Root.frame(), OffLeaf, 1);
  wr(Rt, Creator, Root.frame(), OffCount, 0);
  Root.Dirtied = true;
}

void BTree::splitChild(ThreadId T, Frame &Parent, size_t ChildIdx) {
  PageId LeftId = kid(Pool.runtime(), T, Parent, ChildIdx);
  Guard Left(Pool, T, LeftId);
  Left.Dirtied = true;
  splitChildLatched(T, Parent, ChildIdx, Left.frame());
}

void BTree::splitChildLatched(ThreadId T, Frame &Parent, size_t ChildIdx,
                              Frame &LeftFrame) {
  rt::Runtime &Rt = Pool.runtime();
  assert(count(Rt, T, LeftFrame) == MaxKeys && "split of non-full child");

  PageId RightId = Pool.allocatePage(T);
  Guard Right(Pool, T, RightId);
  bool Leaf = isLeaf(Rt, T, LeftFrame);

  // Right takes the upper MinDeg-1 keys/values (and MinDeg children).
  wr(Rt, T, Right.frame(), OffLeaf, Leaf ? 1 : 0);
  wr(Rt, T, Right.frame(), OffCount, MinDeg - 1);
  for (size_t I = 0; I < MinDeg - 1; ++I) {
    wr(Rt, T, Right.frame(), OffKeys + I, key(Rt, T, LeftFrame, I + MinDeg));
    wr(Rt, T, Right.frame(), OffVals + I, val(Rt, T, LeftFrame, I + MinDeg));
  }
  if (!Leaf)
    for (size_t I = 0; I < MinDeg; ++I)
      wr(Rt, T, Right.frame(), OffKids + I,
         kid(Rt, T, LeftFrame, I + MinDeg));

  // The median moves up into the parent at ChildIdx.
  uint64_t MedianKey = key(Rt, T, LeftFrame, MinDeg - 1);
  uint64_t MedianVal = val(Rt, T, LeftFrame, MinDeg - 1);
  wr(Rt, T, LeftFrame, OffCount, MinDeg - 1);

  size_t N = count(Rt, T, Parent);
  for (size_t I = N; I > ChildIdx; --I) {
    wr(Rt, T, Parent, OffKeys + I, key(Rt, T, Parent, I - 1));
    wr(Rt, T, Parent, OffVals + I, val(Rt, T, Parent, I - 1));
  }
  for (size_t I = N + 1; I > ChildIdx + 1; --I)
    wr(Rt, T, Parent, OffKids + I, kid(Rt, T, Parent, I - 1));
  wr(Rt, T, Parent, OffKeys + ChildIdx, MedianKey);
  wr(Rt, T, Parent, OffVals + ChildIdx, MedianVal);
  wr(Rt, T, Parent, OffKids + ChildIdx + 1, RightId);
  wr(Rt, T, Parent, OffCount, N + 1);
  Right.Dirtied = true;
}

void BTree::put(ThreadId T, uint64_t Key, uint64_t Value) {
  rt::Runtime &Rt = Pool.runtime();
  RootLatch.lock(T);
  std::optional<Guard> Cur(std::in_place, Pool, T, RootId);

  // Grow the tree if the root is full (CLRS): a new root above the old
  // one. The old root's latch is held across the split — releasing it
  // first would let a racing writer insert into a node that is about to
  // stop being the root.
  if (count(Rt, T, Cur->frame()) == MaxKeys) {
    PageId NewRootId = Pool.allocatePage(T);
    Guard NewRoot(Pool, T, NewRootId);
    wr(Rt, T, NewRoot.frame(), OffLeaf, 0);
    wr(Rt, T, NewRoot.frame(), OffCount, 0);
    wr(Rt, T, NewRoot.frame(), OffKids + 0, RootId);
    Cur->Dirtied = true;
    splitChildLatched(T, NewRoot.frame(), 0, Cur->frame());
    NewRoot.Dirtied = true;
    RootId = NewRootId;
    // Continue the descent from the new root; its latch is already ours.
    Cur.reset();
    Cur.emplace(std::move(NewRoot));
  }
  RootLatch.unlock(T);

  // Crab down, splitting full children preemptively so the parent always
  // has room for a promoted median.
  while (true) {
    Frame &Node = Cur->frame();
    size_t N = count(Rt, T, Node);
    if (isLeaf(Rt, T, Node)) {
      // Find position; overwrite if the key exists.
      size_t I = 0;
      while (I < N && key(Rt, T, Node, I) < Key)
        ++I;
      if (I < N && key(Rt, T, Node, I) == Key) {
        wr(Rt, T, Node, OffVals + I, Value);
      } else {
        for (size_t J = N; J > I; --J) {
          wr(Rt, T, Node, OffKeys + J, key(Rt, T, Node, J - 1));
          wr(Rt, T, Node, OffVals + J, val(Rt, T, Node, J - 1));
        }
        wr(Rt, T, Node, OffKeys + I, Key);
        wr(Rt, T, Node, OffVals + I, Value);
        wr(Rt, T, Node, OffCount, N + 1);
      }
      Cur->Dirtied = true;
      return;
    }

    size_t I = 0;
    while (I < N && key(Rt, T, Node, I) < Key)
      ++I;
    if (I < N && key(Rt, T, Node, I) == Key) {
      // Internal overwrite.
      wr(Rt, T, Node, OffVals + I, Value);
      Cur->Dirtied = true;
      return;
    }
    // Preemptive split keeps the invariant that Cur is never full.
    {
      Guard Child(Pool, T, kid(Rt, T, Node, I));
      if (count(Rt, T, Child.frame()) == MaxKeys) {
        Child.release();
        splitChild(T, Node, I);
        Cur->Dirtied = true;
        uint64_t Median = key(Rt, T, Node, I);
        if (Key == Median) {
          wr(Rt, T, Node, OffVals + I, Value);
          return;
        }
        if (Key > Median)
          ++I;
        Child = Guard(Pool, T, kid(Rt, T, Node, I));
      }
      // Hand-over-hand: child latched, now drop the parent.
      *Cur = std::move(Child);
    }
  }
}

bool BTree::get(ThreadId T, uint64_t Key, uint64_t &Value) {
  rt::Runtime &Rt = Pool.runtime();
  RootLatch.lock(T);
  Guard Cur(Pool, T, RootId);
  RootLatch.unlock(T);

  while (true) {
    Frame &Node = Cur.frame();
    size_t N = count(Rt, T, Node);
    size_t I = 0;
    while (I < N && key(Rt, T, Node, I) < Key)
      ++I;
    if (I < N && key(Rt, T, Node, I) == Key) {
      Value = val(Rt, T, Node, I);
      return true;
    }
    if (isLeaf(Rt, T, Node))
      return false;
    Guard Child(Pool, T, kid(Rt, T, Node, I));
    Cur = std::move(Child);
  }
}

size_t BTree::scanLeaf(ThreadId T, uint64_t Lo, size_t Limit,
                       std::vector<uint64_t> &Out) {
  rt::Runtime &Rt = Pool.runtime();
  RootLatch.lock(T);
  Guard Cur(Pool, T, RootId);
  RootLatch.unlock(T);

  while (!isLeaf(Rt, T, Cur.frame())) {
    Frame &Node = Cur.frame();
    size_t N = count(Rt, T, Node);
    size_t I = 0;
    while (I < N && key(Rt, T, Node, I) < Lo)
      ++I;
    Guard Child(Pool, T, kid(Rt, T, Node, I));
    Cur = std::move(Child);
  }
  Frame &Leaf = Cur.frame();
  size_t N = count(Rt, T, Leaf);
  size_t Taken = 0;
  for (size_t I = 0; I < N && Taken < Limit; ++I) {
    if (key(Rt, T, Leaf, I) < Lo)
      continue;
    Out.push_back(val(Rt, T, Leaf, I));
    ++Taken;
  }
  return Taken;
}

size_t BTree::height(ThreadId T) {
  rt::Runtime &Rt = Pool.runtime();
  RootLatch.lock(T);
  Guard Cur(Pool, T, RootId);
  RootLatch.unlock(T);
  size_t H = 1;
  while (!isLeaf(Rt, T, Cur.frame())) {
    Guard Child(Pool, T, kid(Rt, T, Cur.frame(), 0));
    Cur = std::move(Child);
    ++H;
  }
  return H;
}

//===----------------------------------------------------------------------===//
// WriteAheadLog
//===----------------------------------------------------------------------===//

WriteAheadLog::WriteAheadLog(rt::Runtime &Rt, size_t Slots)
    : Rt(Rt), Latch(Rt), Ring(Slots * 3, 0) {}

uint64_t WriteAheadLog::append(ThreadId T, uint64_t TableId, uint64_t Key,
                               uint64_t Value) {
  Latch.lock(T);
  uint64_t MyLsn = Lsn++;
  size_t Base = (MyLsn % (Ring.size() / 3)) * 3;
  Rt.onWrite(T, reinterpret_cast<uint64_t>(&Ring[Base]));
  Ring[Base] = TableId;
  Rt.onWrite(T, reinterpret_cast<uint64_t>(&Ring[Base + 1]));
  Ring[Base + 1] = Key;
  Rt.onWrite(T, reinterpret_cast<uint64_t>(&Ring[Base + 2]));
  Ring[Base + 2] = Value;
  Latch.unlock(T);
  return MyLsn;
}

uint64_t WriteAheadLog::commit(ThreadId T) {
  return append(T, UINT64_MAX, 0, 0);
}

//===----------------------------------------------------------------------===//
// Database
//===----------------------------------------------------------------------===//

Database::Database(rt::Runtime &Rt, size_t NumTables, size_t PoolFrames,
                   size_t DiskPages)
    : Pool(Rt, PoolFrames, DiskPages), Wal(Rt) {
  for (size_t I = 0; I < NumTables; ++I)
    Trees.push_back(std::make_unique<BTree>(Pool, /*Creator=*/0));
}

void Database::put(ThreadId T, size_t Table, uint64_t Key, uint64_t Value) {
  assert(Table < Trees.size());
  Wal.append(T, Table, Key, Value);
  Trees[Table]->put(T, Key, Value);
  Wal.commit(T);
}

bool Database::get(ThreadId T, size_t Table, uint64_t Key,
                   uint64_t &Value) {
  assert(Table < Trees.size());
  return Trees[Table]->get(T, Key, Value);
}

size_t Database::scan(ThreadId T, size_t Table, uint64_t Lo, size_t Limit) {
  assert(Table < Trees.size());
  std::vector<uint64_t> Out;
  return Trees[Table]->scanLeaf(T, Lo, Limit, Out);
}
