//===- rapid/Engine.cpp - Offline analysis engine ------------------------===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
// The legacy single-engine entry points, re-expressed as one-lane
// api::AnalysisSession pipelines so both APIs share one traversal loop.
//
//===----------------------------------------------------------------------===//

#include "sampletrack/rapid/Engine.h"

#include "sampletrack/api/AnalysisSession.h"

using namespace sampletrack;
using namespace sampletrack::rapid;

RunResult sampletrack::rapid::fromEngineRun(const api::EngineRun &E) {
  RunResult R;
  R.Engine = E.Engine;
  R.SamplerName = E.SamplerName;
  R.Stats = E.Stats;
  R.NumRaces = E.NumRaces;
  R.NumRacyLocations = E.NumRacyLocations;
  R.DistinctRaces = E.DistinctRaces;
  R.SampleSize = E.SampleSize;
  R.WallNanos = E.WallNanos;
  R.RacesTruncated = E.RacesTruncated;
  return R;
}

RunResult sampletrack::rapid::run(const Trace &T, Detector &D, Sampler &S) {
  api::AnalysisSession Session;
  Session.addDetector(D).withSampler(S);
  api::SessionResult R = Session.run(T);
  return fromEngineRun(R.Engines.front());
}

RunResult sampletrack::rapid::runEngine(const Trace &T, EngineKind K,
                                        double Rate, uint64_t Seed) {
  api::SessionConfig C;
  C.Engines = {K};
  C.Sampling = api::SamplerKind::Bernoulli;
  C.SamplingRate = Rate;
  C.Seed = Seed;
  api::SessionResult R = api::AnalysisSession(std::move(C)).run(T);
  return fromEngineRun(R.Engines.front());
}

void sampletrack::rapid::markTrace(Trace &T, double Rate, uint64_t Seed) {
  BernoulliSampler S(Rate, Seed);
  for (size_t I = 0; I < T.size(); ++I) {
    Event &E = T[I];
    if (isAccess(E.Kind))
      E.Marked = Rate >= 1.0 ? true : S.shouldSample(E);
  }
}
