//===- rapid/Engine.cpp - Offline analysis engine ------------------------===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/rapid/Engine.h"

#include <chrono>

using namespace sampletrack;
using namespace sampletrack::rapid;

RunResult sampletrack::rapid::run(const Trace &T, Detector &D, Sampler &S) {
  RunResult R;
  R.Engine = D.name();
  R.SamplerName = S.name();

  auto Start = std::chrono::steady_clock::now();
  for (const Event &E : T) {
    bool Sampled = false;
    if (isAccess(E.Kind)) {
      Sampled = S.shouldSample(E);
      if (Sampled)
        ++R.SampleSize;
    }
    D.processEvent(E, Sampled);
  }
  auto End = std::chrono::steady_clock::now();

  R.WallNanos = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(End - Start)
          .count());
  R.Stats = D.metrics();
  R.NumRaces = D.metrics().RacesDeclared;
  R.NumRacyLocations = D.racyLocations().size();
  return R;
}

RunResult sampletrack::rapid::runEngine(const Trace &T, EngineKind K,
                                        double Rate, uint64_t Seed) {
  std::unique_ptr<Detector> D = createDetector(K, T.numThreads());
  if (Rate >= 1.0) {
    AlwaysSampler S;
    return run(T, *D, S);
  }
  BernoulliSampler S(Rate, Seed);
  return run(T, *D, S);
}

void sampletrack::rapid::markTrace(Trace &T, double Rate, uint64_t Seed) {
  BernoulliSampler S(Rate, Seed);
  for (size_t I = 0; I < T.size(); ++I) {
    Event &E = T[I];
    if (isAccess(E.Kind))
      E.Marked = Rate >= 1.0 ? true : S.shouldSample(E);
  }
}
