//===- runtime/Runtime.cpp - Online instrumented runtime ---------------------=/
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/runtime/Runtime.h"

#include "sampletrack/support/SnapshotPool.h"

#include <atomic>
#include <cassert>

using namespace sampletrack;
using namespace sampletrack::rt;

const char *sampletrack::rt::modeName(Mode M) {
  switch (M) {
  case Mode::NT:
    return "NT";
  case Mode::ET:
    return "ET";
  case Mode::FT:
    return "FT";
  case Mode::ST:
    return "ST";
  case Mode::SU:
    return "SU";
  case Mode::SO:
    return "SO";
  }
  return "?";
}

namespace {

/// Mixes an address into a shadow-cell index.
inline uint64_t hashAddress(uint64_t Addr) {
  Addr *= 0x9e3779b97f4a7c15ULL;
  return Addr ^ (Addr >> 29);
}

/// Per-thread race-sink capacity when Config::TriageCapacity is 0. Online
/// runs hash addresses into ShadowCells (<= 64K by default), so 64K
/// distinct signatures per thread is effectively unbounded.
constexpr size_t DefaultThreadSinkCapacity = 1 << 16;

} // namespace

namespace {

/// Pooled snapshot reference types of the online hot path: SO's shared
/// ordered lists (recycled whenever a newer release overwrites the last
/// snapshot reference) and the lazily allocated shadow-history clocks.
using ListRef = SnapshotPool<OrderedList>::Ref;
/// Read-only view for published list snapshots (immutable while shared;
/// const-enforced, as the old shared_ptr<const OrderedList> was).
using ListSnapshot = SnapshotPool<OrderedList>::ConstRef;
using ClockRef = SnapshotPool<VectorClock>::Ref;

} // namespace

/// Per-thread analysis state. Owned by its thread: only the owner mutates
/// it, so no locking is needed. Padded against false sharing.
struct Runtime::ThreadState {
  bool Registered = false;

  /// Self-profiling (null unless Config::ProfilingEnabled): this thread's
  /// span tree plus pre-interned node ids, one per hook. Access hooks fold
  /// aggregate samples (no timeline event — far too hot); sync hooks emit
  /// timed spans.
  prof::Tree *PT = nullptr;
  prof::NodeId PRead = 0, PWrite = 0;
  prof::NodeId PAcquire = 0, PRelease = 0, PFork = 0, PJoin = 0;
  prof::NodeId PReleaseStore = 0, PReleaseJoin = 0;

  /// FT: the full FastTrack clock (bottom[t -> 1]). ST/SU: the sampling
  /// clock C_t (bottom). Unused by SO.
  VectorClock C;
  /// Freshness clock U_t (SU and SO).
  VectorClock U;
  /// SO: the ordered list, shared copy-on-write (pooled).
  ListRef O;
  bool ListShared = false;

  /// Sampling live epoch e_t and the paper's C_t(t) (SO carries it
  /// out-of-line; see the local-epoch optimization).
  ClockValue Epoch = 1;
  ClockValue OwnTime = 0;
  bool Dirty = false;

  /// Per-thread sampling RNG and counters (merged at the end).
  SplitMix64 Rng{0};
  double SamplingRate = 0;
  Metrics Stats;
  uint64_t EtCounter = 0;

  /// This thread's shard of the race warehouse: declarations dedup here
  /// lock-free (single-writer, like every other ThreadState member) and
  /// Runtime::triageSummary merges the shards when the run is quiescent.
  triage::RaceSink Sink;

  /// Scratch clock for snapshots (avoids allocation in hooks).
  VectorClock Scratch;

  alignas(64) char Pad[64] = {};

  bool sampleNext() { return Rng.nextBool(SamplingRate); }
};

/// Per-sync-object state, guarded by its own mutex. The analysis work done
/// while holding M nests inside the application's critical section.
struct Runtime::SyncState {
  std::mutex M;
  /// FT/ST: the sync clock. SU: sync clock plus freshness clock.
  VectorClock C, U;
  ThreadId LastReleaser = NoThread;
  /// SO: immutable snapshot reference plus release-time scalars.
  ListSnapshot Ref;
  ClockValue UScalar = 0;
  ClockValue OwnTimeAtRelease = 0;
  bool Initialized = false;
  /// A.2 state: release-joined content blends multiple threads; for SO the
  /// C/U clocks (otherwise unused) hold the blend. AcquiredSince[t] tracks
  /// whether t observed the current content (SU's monotonicity guard).
  bool MultiSource = false;
  std::vector<bool> AcquiredSince;
};

/// One shadow cell: FastTrack epochs for FT mode, vector-clock access
/// histories for the sampling modes (allocated lazily — only sampled
/// accesses ever need them).
struct Runtime::Shadow {
  /// Direct-mapped ownership: the address whose history this cell holds
  /// (0 = never claimed; real addresses are never 0). Cells are a hash
  /// table over addresses, so unrelated addresses can collide; comparing
  /// an access against a *stranger's* history fabricates races real
  /// TSan's 1:1 shadow mapping cannot produce. On an owner mismatch the
  /// newcomer reclaims the cell and its history is forgotten — a
  /// false-negative-only approximation, exactly like TSan's own shadow
  /// eviction.
  uint64_t Owner = 0;
  // FT epochs.
  ThreadId WTid = 0;
  ClockValue WClk = 0;
  ThreadId RTid = 0;
  ClockValue RClk = 0;
  bool ReadShared = false;
  ClockRef RVC;
  // Sampling histories (Cw_x / Cr_x of Algorithm 2).
  ClockRef SW, SR;
};

struct Runtime::Impl {
  explicit Impl(const Config &C)
      : Threads(C.MaxThreads), Syncs(MaxSyncs), Cells(C.ShadowCells),
        Shards(C.ShadowShards) {
    ListPool.setEnabled(C.PoolingEnabled);
    ClockPool.setEnabled(C.PoolingEnabled);
    if (C.ProfilingEnabled)
      Prof = std::make_unique<prof::Profiler>();
  }

  /// Self-profiler (null unless Config::ProfilingEnabled). Trees are
  /// per-thread and single-writer; makeTree itself is mutex-protected, so
  /// concurrent registerThread calls are fine.
  std::unique_ptr<prof::Profiler> Prof;

  static constexpr size_t MaxSyncs = 1 << 14;

  /// Declared before the state tables: the tables' outstanding references
  /// drain back into the pools on destruction.
  SnapshotPool<OrderedList> ListPool;
  SnapshotPool<VectorClock> ClockPool;

  /// A zeroed pooled clock of \p NumThreads components, charging the pool
  /// hit (if any) to \p Stats.
  ClockRef acquireClock(size_t NumThreads, Metrics &Stats) {
    bool Reused = false;
    ClockRef R = ClockPool.acquire(&Reused);
    Stats.PoolHits += Reused ? 1 : 0;
    if (R->size() < NumThreads)
      R->resize(NumThreads);
    R->clear();
    return R;
  }

  std::vector<ThreadState> Threads;
  std::vector<SyncState> Syncs;
  std::vector<Shadow> Cells;
  std::vector<std::mutex> Shards;

  std::atomic<uint32_t> NextThread{0};
  std::atomic<uint32_t> NextSync{0};
  std::atomic<uint64_t> Races{0};

  std::mutex RacyMu;
  std::unordered_set<uint64_t> RacyCells;

  std::mutex RecMu;
  std::vector<Event> Recorded;
};

Runtime::Runtime(const Config &C) : Cfg(C), I(std::make_unique<Impl>(C)) {
  assert(Cfg.ShadowShards > 0 && Cfg.ShadowCells >= Cfg.ShadowShards);
  // Pre-register the main thread as thread 0.
  registerThread();
}

Runtime::~Runtime() = default;

ThreadId Runtime::registerThread() {
  uint32_t T = I->NextThread.fetch_add(1, std::memory_order_relaxed);
  assert(T < Cfg.MaxThreads && "thread limit exceeded; raise MaxThreads");
  ThreadState &TS = I->Threads[T];
  TS.Registered = true;
  size_t NT = Cfg.MaxThreads;
  switch (Cfg.AnalysisMode) {
  case Mode::NT:
  case Mode::ET:
    break;
  case Mode::FT:
    TS.C = VectorClock(NT);
    TS.C.set(T, 1);
    TS.Scratch = VectorClock(NT);
    break;
  case Mode::ST:
    TS.C = VectorClock(NT);
    TS.Scratch = VectorClock(NT);
    break;
  case Mode::SU:
    TS.C = VectorClock(NT);
    TS.U = VectorClock(NT);
    TS.Scratch = VectorClock(NT);
    break;
  case Mode::SO:
    TS.O = I->ListPool.acquire();
    TS.O->reset(NT);
    TS.U = VectorClock(NT);
    TS.Scratch = VectorClock(NT);
    break;
  }
  TS.Rng = SplitMix64(Cfg.Seed ^ (0x5851f42d4c957f2dULL * (T + 1)));
  TS.SamplingRate = Cfg.SamplingRate;
  TS.Sink.setCapacity(Cfg.TriageCapacity ? Cfg.TriageCapacity
                                         : DefaultThreadSinkCapacity);
  if (I->Prof) {
    TS.PT = I->Prof->makeTree("rt-thread-" + std::to_string(T));
    TS.PRead = TS.PT->internPath({"runtime", "access", "read"});
    TS.PWrite = TS.PT->internPath({"runtime", "access", "write"});
    TS.PAcquire = TS.PT->internPath({"runtime", "sync", "acquire"});
    TS.PRelease = TS.PT->internPath({"runtime", "sync", "release"});
    TS.PFork = TS.PT->internPath({"runtime", "sync", "fork"});
    TS.PJoin = TS.PT->internPath({"runtime", "sync", "join"});
    TS.PReleaseStore = TS.PT->internPath({"runtime", "sync", "releaseStore"});
    TS.PReleaseJoin = TS.PT->internPath({"runtime", "sync", "releaseJoin"});
    // Acquire-loads delegate to onAcquire and are accounted there.
  }
  return T;
}

SyncId Runtime::registerSync() {
  uint32_t S = I->NextSync.fetch_add(1, std::memory_order_relaxed);
  assert(S < Impl::MaxSyncs && "sync limit exceeded");
  return S;
}

uint64_t Runtime::raceCount() const {
  return I->Races.load(std::memory_order_relaxed);
}

triage::TriageSummary Runtime::triageSummary() const {
  // Merge the per-thread shards in thread order (deterministic given a
  // quiescent runtime — the same contract as aggregatedMetrics).
  size_t Distinct = 0;
  for (const ThreadState &TS : I->Threads)
    if (TS.Registered)
      Distinct += TS.Sink.distinct();
  triage::RaceSink Merged(Distinct ? Distinct : 1);
  for (const ThreadState &TS : I->Threads)
    if (TS.Registered)
      Merged.absorb(TS.Sink);
  return Merged.summary();
}

uint64_t Runtime::distinctRaceCount() const {
  return triageSummary().distinct();
}

size_t Runtime::racyLocationCount() const {
  std::lock_guard<std::mutex> G(I->RacyMu);
  return I->RacyCells.size();
}

prof::Report Runtime::profileReport() const {
  return I->Prof ? I->Prof->report() : prof::Report();
}

const prof::Profiler *Runtime::profiler() const { return I->Prof.get(); }

Metrics Runtime::aggregatedMetrics() const {
  Metrics Out;
  for (const ThreadState &TS : I->Threads) {
    if (!TS.Registered)
      continue;
    const Metrics &S = TS.Stats;
    Out.Events += S.Events;
    Out.Accesses += S.Accesses;
    Out.SampledAccesses += S.SampledAccesses;
    Out.AcquiresTotal += S.AcquiresTotal;
    Out.AcquiresSkipped += S.AcquiresSkipped;
    Out.AcquiresProcessed += S.AcquiresProcessed;
    Out.ReleasesTotal += S.ReleasesTotal;
    Out.ReleasesSkipped += S.ReleasesSkipped;
    Out.ReleasesProcessed += S.ReleasesProcessed;
    Out.ShallowCopies += S.ShallowCopies;
    Out.DeepCopies += S.DeepCopies;
    Out.PoolHits += S.PoolHits;
    Out.CowBreaks += S.CowBreaks;
    Out.EntriesTraversed += S.EntriesTraversed;
    Out.TraversalOpportunities += S.TraversalOpportunities;
    Out.FullClockOps += S.FullClockOps;
    Out.RaceChecks += S.RaceChecks;
    Out.RacesDeclared += S.RacesDeclared;
  }
  return Out;
}

namespace {

/// RAII helper locking the shard that guards a shadow cell.
struct ShardLock {
  ShardLock(std::vector<std::mutex> &Shards, size_t Cell)
      : G(Shards[Cell % Shards.size()]) {}
  std::lock_guard<std::mutex> G;
};

/// Times one access-hook body into the thread's span tree, aggregate-only:
/// access hooks fire millions of times per run, so no per-invocation
/// timeline event is recorded. One branch when profiling is off.
struct HookSample {
  prof::Tree *PT;
  prof::NodeId Id;
  uint64_t T0;
  HookSample(prof::Tree *PT, prof::NodeId Id)
      : PT(PT), Id(Id), T0(PT ? prof::nowNanos() : 0) {}
  ~HookSample() {
    if (PT)
      PT->addSample(Id, prof::nowNanos() - T0, 1);
  }
};

/// Times one sync-hook body as a real span (aggregate plus a timeline
/// event, capped per tree): sync hooks are rare enough to afford it.
struct HookSpan {
  prof::Tree *PT;
  prof::NodeId Id;
  uint64_t T0;
  HookSpan(prof::Tree *PT, prof::NodeId Id)
      : PT(PT), Id(Id), T0(PT ? prof::nowNanos() : 0) {}
  ~HookSpan() {
    if (PT)
      PT->addSpan(Id, T0, prof::nowNanos());
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// Internal helpers
//===----------------------------------------------------------------------===//

void Runtime::record(const Event &E) {
  std::lock_guard<std::mutex> G(I->RecMu);
  I->Recorded.push_back(E);
}

Trace Runtime::recordedTrace() const {
  Trace T;
  std::lock_guard<std::mutex> G(I->RecMu);
  for (const Event &E : I->Recorded)
    T.append(E);
  return T;
}

void Runtime::reportRace(ThreadId T, uint64_t Cell, bool OnWrite) {
  ThreadState &TS = I->Threads[T];
  ++TS.Stats.RacesDeclared;
  // Dedup into the thread's own warehouse shard: no lock, no allocation
  // once the shard has seen this signature. The exemplar position is the
  // thread-local event count (online streams have no global order).
  TS.Sink.insert(RaceReport{TS.Stats.Events, T, Cell,
                            OnWrite ? OpKind::Write : OpKind::Read});
  I->Races.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> G(I->RacyMu);
  I->RacyCells.insert(Cell);
}

bool Runtime::dominatesHistory(ThreadId T, const VectorClock &H) {
  ThreadState &TS = I->Threads[T];
  if (Cfg.AnalysisMode == Mode::SO)
    return TS.O->dominatesWithOverride(H, T, TS.Epoch);
  return H.leqWithOverride(TS.C, T, TS.Epoch);
}

void Runtime::snapshotEffective(ThreadId T, VectorClock &Out) {
  ThreadState &TS = I->Threads[T];
  if (Cfg.AnalysisMode == Mode::SO) {
    TS.O->toVectorClock(Out, T, TS.Epoch);
    return;
  }
  Out.copyFrom(TS.C);
  Out.set(T, TS.Epoch);
}

void Runtime::flushLocalEpoch(ThreadId T) {
  ThreadState &TS = I->Threads[T];
  if (!TS.Dirty)
    return;
  TS.Dirty = false;
  ClockValue Time = TS.Epoch++;
  switch (Cfg.AnalysisMode) {
  case Mode::ST:
    TS.C.set(T, Time);
    break;
  case Mode::SU:
    TS.C.set(T, Time);
    TS.U.bump(T);
    break;
  case Mode::SO:
    // Local-epoch optimization: the own component lives out-of-line, so no
    // deep copy is needed here.
    TS.OwnTime = Time;
    TS.U.bump(T);
    break;
  default:
    break;
  }
}

void Runtime::reclaimCell(Shadow &Sh, uint64_t Addr) {
  if (Sh.Owner == Addr)
    return;
  Sh.Owner = Addr;
  Sh.WTid = 0;
  Sh.WClk = 0;
  Sh.RTid = 0;
  Sh.RClk = 0;
  Sh.ReadShared = false;
  // Retired history clocks go back to the pool; the next cell needing one
  // reuses the buffer.
  Sh.RVC.reset();
  Sh.SW.reset();
  Sh.SR.reset();
}

unsigned Runtime::soApplyEntry(ThreadId T, ThreadId Of, ClockValue Val) {
  if (Of == T)
    return 0;
  ThreadState &TS = I->Threads[T];
  if (Val <= TS.O->get(Of))
    return 0;
  if (TS.ListShared) {
    if (TS.O.unique()) {
      // All snapshot references were overwritten by newer releases; only
      // the owner can mint new ones, so in-place mutation is safe and the
      // copy is never owed. (A stale >1 reading merely costs one extra
      // copy; it can never miss a live reader.)
      TS.ListShared = false;
    } else {
      ++TS.Stats.CowBreaks;
      bool Reused = false;
      ListRef Copy = I->ListPool.acquire(&Reused);
      TS.Stats.PoolHits += Reused ? 1 : 0;
      *Copy = *TS.O; // Flat copy; readers keep the immutable snapshot.
      TS.O = std::move(Copy);
      TS.ListShared = false;
      ++TS.Stats.DeepCopies;
      ++TS.Stats.FullClockOps;
    }
  }
  TS.O->set(Of, Val);
  return 1;
}

//===----------------------------------------------------------------------===//
// Access hooks
//===----------------------------------------------------------------------===//

void Runtime::onRead(ThreadId T, uint64_t Addr) {
  ThreadState &TS = I->Threads[T];
  if (Cfg.AnalysisMode == Mode::NT)
    return;
  HookSample PS(TS.PT, TS.PRead);
  ++TS.Stats.Accesses;
  uint64_t Cell = hashAddress(Addr) % Cfg.ShadowCells;
  bool Sampling = isSamplingMode(Cfg.AnalysisMode);
  bool Sampled = Sampling && Cfg.AnalysisMode != Mode::ET && TS.sampleNext();
  if (Cfg.RecordTrace)
    record(Event(T, OpKind::Read, Cell, Sampled));
  if (Cfg.AnalysisMode == Mode::ET) {
    // Empty-TSan still computes and touches shadow state (that is most of
    // TSan's instrumentation cost); it just runs no analysis. ET mode never
    // writes cells, so this unsynchronized read is safe.
    TS.EtCounter += Cell + I->Cells[Cell].WClk;
    return;
  }

  if (Cfg.AnalysisMode == Mode::FT) {
    Shadow &Sh = I->Cells[Cell];
    ShardLock G(I->Shards, Cell);
    reclaimCell(Sh, Addr);
    ClockValue MyClk = TS.C.get(T);
    // Same-epoch fast path.
    if (!Sh.ReadShared && Sh.RTid == T && Sh.RClk == MyClk)
      return;
    if (Sh.ReadShared && Sh.RVC->get(T) == MyClk)
      return;
    ++TS.Stats.RaceChecks;
    if (Sh.WClk > TS.C.get(Sh.WTid))
      reportRace(T, Cell, /*OnWrite=*/false);
    if (Sh.ReadShared) {
      Sh.RVC->set(T, MyClk);
    } else if (Sh.RClk <= TS.C.get(Sh.RTid)) {
      Sh.RTid = T;
      Sh.RClk = MyClk;
    } else {
      if (!Sh.RVC)
        Sh.RVC = I->acquireClock(Cfg.MaxThreads, TS.Stats);
      else
        Sh.RVC->clear();
      ++TS.Stats.FullClockOps;
      Sh.RVC->set(Sh.RTid, Sh.RClk);
      Sh.RVC->set(T, MyClk);
      Sh.ReadShared = true;
    }
    return;
  }

  // Sampling modes: unsampled accesses are skipped entirely.
  if (!Sampled)
    return;
  ++TS.Stats.SampledAccesses;
  TS.Dirty = true;
  Shadow &Sh = I->Cells[Cell];
  ShardLock G(I->Shards, Cell);
  reclaimCell(Sh, Addr);
  ++TS.Stats.RaceChecks;
  if (Sh.SW && !dominatesHistory(T, *Sh.SW))
    reportRace(T, Cell, /*OnWrite=*/false);
  if (!Sh.SR)
    Sh.SR = I->acquireClock(Cfg.MaxThreads, TS.Stats);
  Sh.SR->set(T, TS.Epoch);
}

void Runtime::onWrite(ThreadId T, uint64_t Addr) {
  ThreadState &TS = I->Threads[T];
  if (Cfg.AnalysisMode == Mode::NT)
    return;
  HookSample PS(TS.PT, TS.PWrite);
  ++TS.Stats.Accesses;
  uint64_t Cell = hashAddress(Addr) % Cfg.ShadowCells;
  bool Sampling = isSamplingMode(Cfg.AnalysisMode);
  bool Sampled = Sampling && TS.sampleNext();
  if (Cfg.RecordTrace)
    record(Event(T, OpKind::Write, Cell, Sampled));
  if (Cfg.AnalysisMode == Mode::ET) {
    // Empty-TSan still computes and touches shadow state (that is most of
    // TSan's instrumentation cost); it just runs no analysis. ET mode never
    // writes cells, so this unsynchronized read is safe.
    TS.EtCounter += Cell + I->Cells[Cell].WClk;
    return;
  }

  if (Cfg.AnalysisMode == Mode::FT) {
    Shadow &Sh = I->Cells[Cell];
    ShardLock G(I->Shards, Cell);
    reclaimCell(Sh, Addr);
    ClockValue MyClk = TS.C.get(T);
    if (Sh.WTid == T && Sh.WClk == MyClk)
      return;
    ++TS.Stats.RaceChecks;
    if (Sh.WClk > TS.C.get(Sh.WTid))
      reportRace(T, Cell, /*OnWrite=*/true);
    if (Sh.ReadShared) {
      ++TS.Stats.FullClockOps;
      if (!Sh.RVC->leq(TS.C))
        reportRace(T, Cell, /*OnWrite=*/true);
      Sh.RVC->clear();
      Sh.RTid = 0;
      Sh.RClk = 0;
      Sh.ReadShared = false;
    } else if (Sh.RClk > TS.C.get(Sh.RTid)) {
      reportRace(T, Cell, /*OnWrite=*/true);
    }
    Sh.WTid = T;
    Sh.WClk = MyClk;
    return;
  }

  if (!Sampled)
    return;
  ++TS.Stats.SampledAccesses;
  TS.Dirty = true;
  Shadow &Sh = I->Cells[Cell];
  ShardLock G(I->Shards, Cell);
  reclaimCell(Sh, Addr);
  ++TS.Stats.RaceChecks;
  if ((Sh.SR && !dominatesHistory(T, *Sh.SR)) ||
      (Sh.SW && !dominatesHistory(T, *Sh.SW)))
    reportRace(T, Cell, /*OnWrite=*/true);
  if (!Sh.SW)
    Sh.SW = I->acquireClock(Cfg.MaxThreads, TS.Stats);
  snapshotEffective(T, *Sh.SW);
  ++TS.Stats.FullClockOps;
}

//===----------------------------------------------------------------------===//
// Synchronization hooks
//===----------------------------------------------------------------------===//

void Runtime::onAcquire(ThreadId T, SyncId L) {
  ThreadState &TS = I->Threads[T];
  if (Cfg.AnalysisMode == Mode::NT)
    return;
  HookSpan PS(TS.PT, TS.PAcquire);
  if (Cfg.RecordTrace)
    record(Event(T, OpKind::Acquire, L));
  if (Cfg.AnalysisMode == Mode::ET) {
    TS.EtCounter += L;
    return;
  }
  ++TS.Stats.AcquiresTotal;
  SyncState &S = I->Syncs[L];

  switch (Cfg.AnalysisMode) {
  case Mode::FT:
  case Mode::ST: {
    std::lock_guard<std::mutex> G(S.M);
    if (!S.Initialized) {
      ++TS.Stats.AcquiresSkipped;
      return;
    }
    ++TS.Stats.AcquiresProcessed;
    ++TS.Stats.FullClockOps;
    TS.C.joinWith(S.C);
    return;
  }
  case Mode::SU: {
    std::lock_guard<std::mutex> G(S.M);
    if (!S.Initialized) {
      ++TS.Stats.AcquiresSkipped;
      return;
    }
    if (S.AcquiredSince.empty())
      S.AcquiredSince.assign(Cfg.MaxThreads, false);
    S.AcquiredSince[T] = true;
    if (!S.MultiSource) {
      if (S.LastReleaser == NoThread ||
          S.U.get(S.LastReleaser) <= TS.U.get(S.LastReleaser)) {
        ++TS.Stats.AcquiresSkipped;
        return;
      }
    }
    // Multi-source content disables the scalar skip (A.2).
    ++TS.Stats.AcquiresProcessed;
    TS.U.joinWith(S.U);
    ++TS.Stats.FullClockOps;
    unsigned Changed = TS.C.joinCountingChanges(S.C);
    ++TS.Stats.FullClockOps;
    TS.U.bump(T, Changed);
    return;
  }
  case Mode::SO: {
    // Only the O(1) snapshot read happens under the sync mutex; the prefix
    // traversal works on immutable data and thread-owned state.
    ListSnapshot Ref;
    ThreadId LR;
    ClockValue UScalar, OwnAtRel;
    {
      std::lock_guard<std::mutex> G(S.M);
      if (!S.Initialized || (!S.MultiSource && S.LastReleaser == NoThread)) {
        ++TS.Stats.AcquiresSkipped;
        return;
      }
      if (S.MultiSource) {
        // Blended content: unoptimized full join under the sync mutex
        // (A.2 — "no innovations can be adopted" on this path).
        ++TS.Stats.AcquiresProcessed;
        TS.U.joinWith(S.U);
        ++TS.Stats.FullClockOps;
        unsigned Changed = 0;
        for (ThreadId Of = 0; Of < Cfg.MaxThreads; ++Of) {
          ++TS.Stats.EntriesTraversed;
          Changed += soApplyEntry(T, Of, S.C.get(Of));
        }
        TS.Stats.TraversalOpportunities += Cfg.MaxThreads;
        ++TS.Stats.FullClockOps;
        TS.U.bump(T, Changed);
        return;
      }
      Ref = S.Ref;
      LR = S.LastReleaser;
      UScalar = S.UScalar;
      OwnAtRel = S.OwnTimeAtRelease;
    }
    ClockValue Known = TS.U.get(LR);
    if (UScalar <= Known) {
      ++TS.Stats.AcquiresSkipped;
      return;
    }
    ++TS.Stats.AcquiresProcessed;
    ClockValue D = UScalar - Known;
    TS.U.set(LR, UScalar);
    unsigned Changed = 0;
    ++TS.Stats.EntriesTraversed;
    Changed += soApplyEntry(T, LR, OwnAtRel);
    Ref->visitPrefix(static_cast<size_t>(D),
                     [&](ThreadId Of, ClockValue Val) {
                       ++TS.Stats.EntriesTraversed;
                       Changed += soApplyEntry(T, Of, Val);
                     });
    TS.Stats.TraversalOpportunities += Cfg.MaxThreads;
    TS.U.bump(T, Changed);
    return;
  }
  default:
    return;
  }
}

void Runtime::onRelease(ThreadId T, SyncId L) {
  ThreadState &TS = I->Threads[T];
  if (Cfg.AnalysisMode == Mode::NT)
    return;
  HookSpan PS(TS.PT, TS.PRelease);
  if (Cfg.RecordTrace)
    record(Event(T, OpKind::Release, L));
  if (Cfg.AnalysisMode == Mode::ET) {
    TS.EtCounter += L;
    return;
  }
  ++TS.Stats.ReleasesTotal;
  SyncState &S = I->Syncs[L];

  switch (Cfg.AnalysisMode) {
  case Mode::FT: {
    {
      std::lock_guard<std::mutex> G(S.M);
      if (!S.Initialized) {
        S.C = VectorClock(Cfg.MaxThreads);
        S.Initialized = true;
      }
      ++TS.Stats.ReleasesProcessed;
      ++TS.Stats.FullClockOps;
      S.C.copyFrom(TS.C);
    }
    TS.C.bump(T);
    return;
  }
  case Mode::ST: {
    flushLocalEpoch(T);
    std::lock_guard<std::mutex> G(S.M);
    if (!S.Initialized) {
      S.C = VectorClock(Cfg.MaxThreads);
      S.Initialized = true;
    }
    ++TS.Stats.ReleasesProcessed;
    ++TS.Stats.FullClockOps;
    S.C.copyFrom(TS.C);
    return;
  }
  case Mode::SU: {
    flushLocalEpoch(T);
    std::lock_guard<std::mutex> G(S.M);
    if (!S.Initialized) {
      S.C = VectorClock(Cfg.MaxThreads);
      S.U = VectorClock(Cfg.MaxThreads);
      S.Initialized = true;
    }
    S.LastReleaser = T;
    S.MultiSource = false;
    // Mutex discipline: this thread acquired the lock beforehand, so the
    // copy is monotone and the skip is sound even after release-joins.
    if (TS.U.get(T) == S.U.get(T)) {
      ++TS.Stats.ReleasesSkipped;
      return;
    }
    ++TS.Stats.ReleasesProcessed;
    TS.Stats.FullClockOps += 2;
    S.C.copyFrom(TS.C);
    S.U.copyFrom(TS.U);
    S.AcquiredSince.assign(Cfg.MaxThreads, false);
    S.AcquiredSince[T] = true;
    return;
  }
  case Mode::SO: {
    flushLocalEpoch(T);
    // Publish-then-mark-shared must be atomic w.r.t. acquirers, but both
    // writes are thread/sync local: the snapshot goes under the sync mutex,
    // the shared flag is thread-owned.
    TS.ListShared = true;
    ++TS.Stats.ShallowCopies;
    std::lock_guard<std::mutex> G(S.M);
    S.Ref = TS.O;
    S.LastReleaser = T;
    S.UScalar = TS.U.get(T);
    S.OwnTimeAtRelease = TS.OwnTime;
    S.MultiSource = false;
    S.Initialized = true;
    return;
  }
  default:
    return;
  }
}

void Runtime::onFork(ThreadId Parent, ThreadId Child) {
  // The child is not running yet: direct access to both states is safe.
  if (Cfg.RecordTrace && Cfg.AnalysisMode != Mode::NT)
    record(Event(Parent, OpKind::Fork, Child));
  ThreadState &P = I->Threads[Parent];
  ThreadState &C = I->Threads[Child];
  HookSpan PS(Cfg.AnalysisMode == Mode::NT ? nullptr : P.PT, P.PFork);
  switch (Cfg.AnalysisMode) {
  case Mode::NT:
    return;
  case Mode::ET:
    ++P.EtCounter;
    return;
  case Mode::FT:
    ++P.Stats.ReleasesTotal;
    ++P.Stats.ReleasesProcessed;
    ++P.Stats.FullClockOps;
    C.C.joinWith(P.C);
    P.C.bump(Parent);
    return;
  case Mode::ST:
    ++P.Stats.ReleasesTotal;
    ++P.Stats.ReleasesProcessed;
    flushLocalEpoch(Parent);
    ++P.Stats.FullClockOps;
    C.C.joinWith(P.C);
    return;
  case Mode::SU: {
    ++P.Stats.ReleasesTotal;
    ++P.Stats.ReleasesProcessed;
    flushLocalEpoch(Parent);
    C.U.joinWith(P.U);
    unsigned Changed = C.C.joinCountingChanges(P.C);
    P.Stats.FullClockOps += 2;
    C.U.bump(Child, Changed);
    return;
  }
  case Mode::SO: {
    ++P.Stats.ReleasesTotal;
    ++P.Stats.ReleasesProcessed;
    flushLocalEpoch(Parent);
    C.U.joinWith(P.U);
    ++P.Stats.FullClockOps;
    unsigned Changed = 0;
    for (ThreadId Of = 0; Of < Cfg.MaxThreads; ++Of) {
      ClockValue Val = (Of == Parent) ? P.OwnTime : P.O->get(Of);
      Changed += soApplyEntry(Child, Of, Val);
    }
    P.Stats.EntriesTraversed += Cfg.MaxThreads;
    P.Stats.TraversalOpportunities += Cfg.MaxThreads;
    C.U.bump(Child, Changed);
    return;
  }
  }
}

void Runtime::onJoin(ThreadId Parent, ThreadId Child) {
  // The child has been pthread-joined: direct access is safe.
  if (Cfg.RecordTrace && Cfg.AnalysisMode != Mode::NT)
    record(Event(Parent, OpKind::Join, Child));
  ThreadState &P = I->Threads[Parent];
  ThreadState &C = I->Threads[Child];
  HookSpan PS(Cfg.AnalysisMode == Mode::NT ? nullptr : P.PT, P.PJoin);
  switch (Cfg.AnalysisMode) {
  case Mode::NT:
    return;
  case Mode::ET:
    ++P.EtCounter;
    return;
  case Mode::FT:
    ++P.Stats.AcquiresTotal;
    ++P.Stats.AcquiresProcessed;
    ++P.Stats.FullClockOps;
    P.C.joinWith(C.C);
    C.C.bump(Child);
    return;
  case Mode::ST:
    ++P.Stats.AcquiresTotal;
    ++P.Stats.AcquiresProcessed;
    flushLocalEpoch(Child);
    ++P.Stats.FullClockOps;
    P.C.joinWith(C.C);
    return;
  case Mode::SU: {
    ++P.Stats.AcquiresTotal;
    ++P.Stats.AcquiresProcessed;
    flushLocalEpoch(Child);
    P.U.joinWith(C.U);
    unsigned Changed = P.C.joinCountingChanges(C.C);
    P.Stats.FullClockOps += 2;
    P.U.bump(Parent, Changed);
    return;
  }
  case Mode::SO: {
    ++P.Stats.AcquiresTotal;
    ++P.Stats.AcquiresProcessed;
    flushLocalEpoch(Child);
    P.U.joinWith(C.U);
    ++P.Stats.FullClockOps;
    unsigned Changed = 0;
    for (ThreadId Of = 0; Of < Cfg.MaxThreads; ++Of) {
      ClockValue Val = (Of == Child) ? C.OwnTime : C.O->get(Of);
      Changed += soApplyEntry(Parent, Of, Val);
    }
    P.Stats.EntriesTraversed += Cfg.MaxThreads;
    P.Stats.TraversalOpportunities += Cfg.MaxThreads;
    P.U.bump(Parent, Changed);
    return;
  }
  }
}


//===----------------------------------------------------------------------===//
// Non-mutex synchronization hooks (appendix A.2)
//===----------------------------------------------------------------------===//

void Runtime::onReleaseStore(ThreadId T, SyncId Sid) {
  ThreadState &TS = I->Threads[T];
  if (Cfg.AnalysisMode == Mode::NT)
    return;
  HookSpan PS(TS.PT, TS.PReleaseStore);
  if (Cfg.RecordTrace)
    record(Event(T, OpKind::ReleaseStore, Sid));
  if (Cfg.AnalysisMode == Mode::ET) {
    TS.EtCounter += Sid;
    return;
  }
  ++TS.Stats.ReleasesTotal;
  SyncState &S = I->Syncs[Sid];

  switch (Cfg.AnalysisMode) {
  case Mode::FT: {
    {
      std::lock_guard<std::mutex> G(S.M);
      if (!S.Initialized) {
        S.C = VectorClock(Cfg.MaxThreads);
        S.Initialized = true;
      }
      ++TS.Stats.ReleasesProcessed;
      ++TS.Stats.FullClockOps;
      S.C.copyFrom(TS.C);
      S.MultiSource = false;
    }
    TS.C.bump(T);
    return;
  }
  case Mode::ST: {
    flushLocalEpoch(T);
    std::lock_guard<std::mutex> G(S.M);
    if (!S.Initialized) {
      S.C = VectorClock(Cfg.MaxThreads);
      S.Initialized = true;
    }
    ++TS.Stats.ReleasesProcessed;
    ++TS.Stats.FullClockOps;
    S.C.copyFrom(TS.C);
    S.MultiSource = false;
    return;
  }
  case Mode::SU: {
    flushLocalEpoch(T);
    std::lock_guard<std::mutex> G(S.M);
    if (!S.Initialized) {
      S.C = VectorClock(Cfg.MaxThreads);
      S.U = VectorClock(Cfg.MaxThreads);
      S.Initialized = true;
    }
    if (S.AcquiredSince.empty())
      S.AcquiredSince.assign(Cfg.MaxThreads, false);
    // The skip rule requires a monotone update: this thread must have
    // observed the object's current content (A.2).
    bool Monotone = !S.MultiSource && S.AcquiredSince[T];
    if (Monotone && TS.U.get(T) == S.U.get(T)) {
      ++TS.Stats.ReleasesSkipped;
      S.LastReleaser = T;
      S.AcquiredSince[T] = true;
      return;
    }
    ++TS.Stats.ReleasesProcessed;
    TS.Stats.FullClockOps += 2;
    S.C.copyFrom(TS.C);
    S.U.copyFrom(TS.U);
    S.LastReleaser = T;
    S.MultiSource = false;
    S.AcquiredSince.assign(Cfg.MaxThreads, false);
    S.AcquiredSince[T] = true;
    return;
  }
  case Mode::SO:
    // A shallow snapshot has replacement semantics by construction, so the
    // mutex-release path applies unchanged ("the innovations of Algorithm 4
    // can always be adopted").
    flushLocalEpoch(T);
    TS.ListShared = true;
    ++TS.Stats.ShallowCopies;
    {
      std::lock_guard<std::mutex> G(S.M);
      S.Ref = TS.O;
      S.LastReleaser = T;
      S.UScalar = TS.U.get(T);
      S.OwnTimeAtRelease = TS.OwnTime;
      S.MultiSource = false;
      S.Initialized = true;
    }
    return;
  default:
    return;
  }
}

void Runtime::onReleaseJoin(ThreadId T, SyncId Sid) {
  ThreadState &TS = I->Threads[T];
  if (Cfg.AnalysisMode == Mode::NT)
    return;
  HookSpan PS(TS.PT, TS.PReleaseJoin);
  if (Cfg.RecordTrace)
    record(Event(T, OpKind::ReleaseJoin, Sid));
  if (Cfg.AnalysisMode == Mode::ET) {
    TS.EtCounter += Sid;
    return;
  }
  ++TS.Stats.ReleasesTotal;
  ++TS.Stats.ReleasesProcessed;
  SyncState &S = I->Syncs[Sid];

  switch (Cfg.AnalysisMode) {
  case Mode::FT: {
    {
      std::lock_guard<std::mutex> G(S.M);
      if (!S.Initialized) {
        S.C = VectorClock(Cfg.MaxThreads);
        S.Initialized = true;
      }
      ++TS.Stats.FullClockOps;
      S.C.joinWith(TS.C);
    }
    TS.C.bump(T);
    return;
  }
  case Mode::ST: {
    flushLocalEpoch(T);
    std::lock_guard<std::mutex> G(S.M);
    if (!S.Initialized) {
      S.C = VectorClock(Cfg.MaxThreads);
      S.Initialized = true;
    }
    ++TS.Stats.FullClockOps;
    S.C.joinWith(TS.C);
    return;
  }
  case Mode::SU: {
    flushLocalEpoch(T);
    std::lock_guard<std::mutex> G(S.M);
    if (!S.Initialized) {
      S.C = VectorClock(Cfg.MaxThreads);
      S.U = VectorClock(Cfg.MaxThreads);
      S.Initialized = true;
    }
    S.C.joinWith(TS.C);
    S.U.joinWith(TS.U);
    TS.Stats.FullClockOps += 2;
    S.MultiSource = true;
    S.LastReleaser = T;
    // Nobody is known to dominate the blended content anymore.
    S.AcquiredSince.assign(Cfg.MaxThreads, false);
    return;
  }
  case Mode::SO: {
    flushLocalEpoch(T);
    std::lock_guard<std::mutex> G(S.M);
    if (S.C.size() == 0) {
      S.C = VectorClock(Cfg.MaxThreads);
      S.U = VectorClock(Cfg.MaxThreads);
    }
    if (!S.MultiSource) {
      // Materialize any single-source snapshot into the owned blend.
      if (S.Ref) {
        S.Ref->toVectorClock(S.C, S.LastReleaser, S.OwnTimeAtRelease);
        S.U.clear();
        S.U.set(S.LastReleaser, S.UScalar);
        TS.Stats.FullClockOps += 2;
        S.Ref.reset();
      } else {
        S.C.clear();
        S.U.clear();
      }
      S.MultiSource = true;
    }
    // Blend this thread's effective clock.
    for (ThreadId Of = 0; Of < Cfg.MaxThreads; ++Of) {
      ClockValue Val = (Of == T) ? TS.OwnTime : TS.O->get(Of);
      if (Val > S.C.get(Of))
        S.C.set(Of, Val);
    }
    S.U.joinWith(TS.U);
    TS.Stats.FullClockOps += 2;
    S.Initialized = true;
    return;
  }
  default:
    return;
  }
}

void Runtime::onAcquireLoad(ThreadId T, SyncId Sid) { onAcquire(T, Sid); }
