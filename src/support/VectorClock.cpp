//===- support/VectorClock.cpp - Vector timestamp implementation ---------===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/support/VectorClock.h"

#include <sstream>

using namespace sampletrack;

std::string VectorClock::str() const {
  std::ostringstream OS;
  OS << '<';
  for (size_t I = 0, E = Values.size(); I != E; ++I) {
    if (I)
      OS << ',';
    OS << Values[I];
  }
  OS << '>';
  return OS.str();
}
