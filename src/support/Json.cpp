//===- support/Json.cpp - Minimal JSON DOM parser --------------------------=//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/support/Json.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace sampletrack {
namespace support {

namespace {

class Parser {
public:
  Parser(std::string_view Text) : Text(Text) {}

  bool parse(JsonValue &Out, std::string *Error) {
    skipWs();
    if (!value(Out))
      return fail(Error);
    skipWs();
    if (Pos != Text.size()) {
      Msg = "trailing characters after document";
      return fail(Error);
    }
    return true;
  }

private:
  bool fail(std::string *Error) {
    if (Error)
      *Error = Msg.empty() ? "malformed JSON" : Msg;
    if (Error)
      *Error += " (at byte " + std::to_string(Pos) + ")";
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool literal(std::string_view Lit) {
    if (Text.substr(Pos, Lit.size()) != Lit)
      return false;
    Pos += Lit.size();
    return true;
  }

  bool value(JsonValue &Out) {
    if (Pos >= Text.size()) {
      Msg = "unexpected end of input";
      return false;
    }
    char C = Text[Pos];
    switch (C) {
    case 'n':
      Out.K = JsonValue::Kind::Null;
      return literal("null");
    case 't':
      Out.K = JsonValue::Kind::Bool;
      Out.Bool = true;
      return literal("true");
    case 'f':
      Out.K = JsonValue::Kind::Bool;
      Out.Bool = false;
      return literal("false");
    case '"':
      Out.K = JsonValue::Kind::String;
      return string(Out.Str);
    case '[':
      return array(Out);
    case '{':
      return object(Out);
    default:
      return number(Out);
    }
  }

  bool string(std::string &Out) {
    ++Pos; // opening quote
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C == '\\') {
        if (Pos >= Text.size())
          break;
        char E = Text[Pos++];
        switch (E) {
        case '"':
        case '\\':
        case '/':
          Out += E;
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'u': {
          if (Pos + 4 > Text.size()) {
            Msg = "truncated \\u escape";
            return false;
          }
          unsigned V = 0;
          for (int I = 0; I < 4; ++I) {
            char H = Text[Pos++];
            V <<= 4;
            if (H >= '0' && H <= '9')
              V |= static_cast<unsigned>(H - '0');
            else if (H >= 'a' && H <= 'f')
              V |= static_cast<unsigned>(H - 'a' + 10);
            else if (H >= 'A' && H <= 'F')
              V |= static_cast<unsigned>(H - 'A' + 10);
            else {
              Msg = "bad \\u escape";
              return false;
            }
          }
          // Latin-1 passes through; anything wider degrades to '?' (the
          // repo's own documents are ASCII).
          Out += V < 0x100 ? static_cast<char>(V) : '?';
          break;
        }
        default:
          Msg = "bad escape";
          return false;
        }
      } else {
        Out += C;
      }
    }
    Msg = "unterminated string";
    return false;
  }

  bool number(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && (Text[Pos] == '-' || Text[Pos] == '+'))
      ++Pos;
    bool Digits = false;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-')) {
      if (std::isdigit(static_cast<unsigned char>(Text[Pos])))
        Digits = true;
      ++Pos;
    }
    if (!Digits) {
      Msg = "expected a value";
      Pos = Start;
      return false;
    }
    Out.K = JsonValue::Kind::Number;
    Out.Number = std::strtod(std::string(Text.substr(Start, Pos - Start)).c_str(),
                             nullptr);
    return true;
  }

  bool array(JsonValue &Out) {
    Out.K = JsonValue::Kind::Array;
    ++Pos; // '['
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      JsonValue V;
      skipWs();
      if (!value(V))
        return false;
      Out.Array.push_back(std::move(V));
      skipWs();
      if (Pos >= Text.size()) {
        Msg = "unterminated array";
        return false;
      }
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      Msg = "expected ',' or ']'";
      return false;
    }
  }

  bool object(JsonValue &Out) {
    Out.K = JsonValue::Kind::Object;
    ++Pos; // '{'
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"') {
        Msg = "expected object key";
        return false;
      }
      std::string Key;
      if (!string(Key))
        return false;
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != ':') {
        Msg = "expected ':'";
        return false;
      }
      ++Pos;
      skipWs();
      JsonValue V;
      if (!value(V))
        return false;
      Out.Object.emplace_back(std::move(Key), std::move(V));
      skipWs();
      if (Pos >= Text.size()) {
        Msg = "unterminated object";
        return false;
      }
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      Msg = "expected ',' or '}'";
      return false;
    }
  }

  std::string_view Text;
  size_t Pos = 0;
  std::string Msg;
};

} // namespace

const JsonValue *JsonValue::get(std::string_view Key) const {
  if (K != Kind::Object)
    return nullptr;
  const JsonValue *Found = nullptr;
  for (const auto &[Name, V] : Object)
    if (Name == Key)
      Found = &V;
  return Found;
}

double JsonValue::getNumber(std::string_view Key, double Default,
                            bool *Found) const {
  const JsonValue *V = get(Key);
  bool Ok = V && V->isNumber();
  if (Found)
    *Found = Ok;
  return Ok ? V->Number : Default;
}

std::string JsonValue::getString(std::string_view Key,
                                 std::string Default) const {
  const JsonValue *V = get(Key);
  return V && V->isString() ? V->Str : Default;
}

bool JsonValue::parse(std::string_view Text, JsonValue &Out,
                      std::string *Error) {
  Out = JsonValue();
  return Parser(Text).parse(Out, Error);
}

bool JsonValue::parseFile(const std::string &Path, JsonValue &Out,
                          std::string *Error) {
  std::ifstream Is(Path, std::ios::binary);
  if (!Is) {
    if (Error)
      *Error = "cannot open " + Path;
    return false;
  }
  std::ostringstream Os;
  Os << Is.rdbuf();
  return parse(Os.str(), Out, Error);
}

} // namespace support
} // namespace sampletrack
