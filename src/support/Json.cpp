//===- support/Json.cpp - Minimal JSON DOM parser --------------------------=//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/support/Json.h"

#include <cctype>
#include <charconv>
#include <fstream>
#include <locale>
#include <sstream>

namespace sampletrack {
namespace support {

namespace {

class Parser {
public:
  Parser(std::string_view Text) : Text(Text) {}

  bool parse(JsonValue &Out, std::string *Error) {
    skipWs();
    if (!value(Out))
      return fail(Error);
    skipWs();
    if (Pos != Text.size()) {
      Msg = "trailing characters after document";
      return fail(Error);
    }
    return true;
  }

private:
  bool fail(std::string *Error) {
    if (Error)
      *Error = Msg.empty() ? "malformed JSON" : Msg;
    if (Error)
      *Error += " (at byte " + std::to_string(Pos) + ")";
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool literal(std::string_view Lit) {
    if (Text.substr(Pos, Lit.size()) != Lit)
      return false;
    Pos += Lit.size();
    return true;
  }

  bool value(JsonValue &Out) {
    if (Pos >= Text.size()) {
      Msg = "unexpected end of input";
      return false;
    }
    char C = Text[Pos];
    switch (C) {
    case 'n':
      Out.K = JsonValue::Kind::Null;
      return literal("null");
    case 't':
      Out.K = JsonValue::Kind::Bool;
      Out.Bool = true;
      return literal("true");
    case 'f':
      Out.K = JsonValue::Kind::Bool;
      Out.Bool = false;
      return literal("false");
    case '"':
      Out.K = JsonValue::Kind::String;
      return string(Out.Str);
    case '[':
      return array(Out);
    case '{':
      return object(Out);
    default:
      return number(Out);
    }
  }

  bool string(std::string &Out) {
    ++Pos; // opening quote
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C == '\\') {
        if (Pos >= Text.size())
          break;
        char E = Text[Pos++];
        switch (E) {
        case '"':
        case '\\':
        case '/':
          Out += E;
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'u': {
          if (Pos + 4 > Text.size()) {
            Msg = "truncated \\u escape";
            return false;
          }
          unsigned V = 0;
          for (int I = 0; I < 4; ++I) {
            char H = Text[Pos++];
            V <<= 4;
            if (H >= '0' && H <= '9')
              V |= static_cast<unsigned>(H - '0');
            else if (H >= 'a' && H <= 'f')
              V |= static_cast<unsigned>(H - 'a' + 10);
            else if (H >= 'A' && H <= 'F')
              V |= static_cast<unsigned>(H - 'A' + 10);
            else {
              Msg = "bad \\u escape";
              return false;
            }
          }
          // Latin-1 passes through; anything wider degrades to '?' (the
          // repo's own documents are ASCII).
          Out += V < 0x100 ? static_cast<char>(V) : '?';
          break;
        }
        default:
          Msg = "bad escape";
          return false;
        }
      } else {
        Out += C;
      }
    }
    Msg = "unterminated string";
    return false;
  }

  bool digit() const {
    return Pos < Text.size() &&
           std::isdigit(static_cast<unsigned char>(Text[Pos]));
  }

  /// Lexes exactly the RFC 8259 number grammar:
  ///   -? (0 | [1-9][0-9]*) ('.' [0-9]+)? ([eE] [+-]? [0-9]+)?
  /// Anything looser ("+1", "01", "1.", ".5", "1e", "1e+") is rejected with
  /// the position of the offending byte; "1-2" stops after the "1" so the
  /// caller reports the stray "-" instead of silently folding it in.
  bool number(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    if (!digit()) {
      Msg = "expected a value";
      Pos = Start;
      return false;
    }
    // int part: no leading zeros ("0" itself is fine, "00"/"01" are not).
    if (Text[Pos] == '0')
      ++Pos;
    else
      while (digit())
        ++Pos;
    if (digit()) {
      Msg = "leading zeros are not allowed in numbers";
      return false;
    }
    if (Pos < Text.size() && Text[Pos] == '.') {
      ++Pos;
      if (!digit()) {
        Msg = "expected digit after decimal point";
        return false;
      }
      while (digit())
        ++Pos;
    }
    if (Pos < Text.size() && (Text[Pos] == 'e' || Text[Pos] == 'E')) {
      ++Pos;
      if (Pos < Text.size() && (Text[Pos] == '+' || Text[Pos] == '-'))
        ++Pos;
      if (!digit()) {
        Msg = "expected digit in exponent";
        return false;
      }
      while (digit())
        ++Pos;
    }
    Out.K = JsonValue::Kind::Number;
    return convert(Text.substr(Start, Pos - Start), Out.Number);
  }

  /// Converts an already-validated number token, independent of the
  /// process's LC_NUMERIC locale (std::strtod is locale-sensitive: under a
  /// comma-decimal locale it stops at the '.' and silently truncates).
  bool convert(std::string_view Token, double &Out) {
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
    const char *First = Token.data(), *Last = Token.data() + Token.size();
    auto [Ptr, Ec] = std::from_chars(First, Last, Out);
    if (Ec == std::errc() && Ptr == Last)
      return true;
    if (Ec == std::errc::result_out_of_range) {
      // Saturate like strtod: huge magnitudes become +/-HUGE_VAL, tiny
      // ones underflow toward zero. from_chars leaves Out unspecified, so
      // recompute through the locale-proof stream path below.
    }
#endif
    // Fallback for toolchains without floating-point from_chars (and for
    // out-of-range saturation): a stream imbued with the classic locale is
    // immune to LC_NUMERIC too.
    std::istringstream Is{std::string(Token)};
    Is.imbue(std::locale::classic());
    Is >> Out;
    if (!Is.fail() && Is.eof())
      return true;
    // Out-of-range streams fail after setting the saturated value on
    // C++11-conforming libraries; accept that shape rather than reject a
    // grammatically valid number.
    if (Is.fail() && Is.eof())
      return true;
    Msg = "unconvertible number";
    Pos = Token.data() + Token.size() - Text.data();
    return false;
  }

  bool array(JsonValue &Out) {
    Out.K = JsonValue::Kind::Array;
    ++Pos; // '['
    skipWs();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      JsonValue V;
      skipWs();
      if (!value(V))
        return false;
      Out.Array.push_back(std::move(V));
      skipWs();
      if (Pos >= Text.size()) {
        Msg = "unterminated array";
        return false;
      }
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      Msg = "expected ',' or ']'";
      return false;
    }
  }

  bool object(JsonValue &Out) {
    Out.K = JsonValue::Kind::Object;
    ++Pos; // '{'
    skipWs();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"') {
        Msg = "expected object key";
        return false;
      }
      std::string Key;
      if (!string(Key))
        return false;
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != ':') {
        Msg = "expected ':'";
        return false;
      }
      ++Pos;
      skipWs();
      JsonValue V;
      if (!value(V))
        return false;
      Out.Object.emplace_back(std::move(Key), std::move(V));
      skipWs();
      if (Pos >= Text.size()) {
        Msg = "unterminated object";
        return false;
      }
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      if (Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      Msg = "expected ',' or '}'";
      return false;
    }
  }

  std::string_view Text;
  size_t Pos = 0;
  std::string Msg;
};

} // namespace

const JsonValue *JsonValue::get(std::string_view Key) const {
  if (K != Kind::Object)
    return nullptr;
  const JsonValue *Found = nullptr;
  for (const auto &[Name, V] : Object)
    if (Name == Key)
      Found = &V;
  return Found;
}

double JsonValue::getNumber(std::string_view Key, double Default,
                            bool *Found) const {
  const JsonValue *V = get(Key);
  bool Ok = V && V->isNumber();
  if (Found)
    *Found = Ok;
  return Ok ? V->Number : Default;
}

std::string JsonValue::getString(std::string_view Key,
                                 std::string Default) const {
  const JsonValue *V = get(Key);
  return V && V->isString() ? V->Str : Default;
}

bool JsonValue::parse(std::string_view Text, JsonValue &Out,
                      std::string *Error) {
  Out = JsonValue();
  return Parser(Text).parse(Out, Error);
}

bool JsonValue::parseFile(const std::string &Path, JsonValue &Out,
                          std::string *Error) {
  std::ifstream Is(Path, std::ios::binary);
  if (!Is) {
    if (Error)
      *Error = "cannot open " + Path;
    return false;
  }
  std::ostringstream Os;
  Os << Is.rdbuf();
  return parse(Os.str(), Out, Error);
}

} // namespace support
} // namespace sampletrack
