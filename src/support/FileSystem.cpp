//===- support/FileSystem.cpp - POSIX file-ops backend ----------------------=//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/support/FileSystem.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

using namespace sampletrack;
using namespace sampletrack::support;

bool sampletrack::support::writeAll(WritableFile &File,
                                    std::string_view Bytes) {
  size_t Off = 0;
  while (Off < Bytes.size()) {
    long N = File.write(Bytes.data() + Off, Bytes.size() - Off);
    if (N < 0)
      return false;
    if (N == 0)
      return false; // A writer that makes no progress never will.
    Off += static_cast<size_t>(N);
  }
  return true;
}

std::string sampletrack::support::parentDirOf(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  if (Slash == std::string::npos)
    return ".";
  if (Slash == 0)
    return "/";
  return Path.substr(0, Slash);
}

namespace {

bool fail(std::string *Error, const std::string &Msg) {
  if (Error)
    *Error = Msg;
  return false;
}

/// Unbuffered fd-backed writable file. No stdio layer between the
/// durability code and the kernel: write() maps to ::write (with EINTR
/// retried here — a *short* count is still passed up to the caller's
/// loop), sync() to ::fsync.
class PosixWritableFile final : public WritableFile {
public:
  explicit PosixWritableFile(int Fd) : Fd(Fd) {}
  ~PosixWritableFile() override { close(); }

  long write(const char *Data, size_t Len) override {
    if (Fd < 0)
      return -1;
    for (;;) {
      ssize_t N = ::write(Fd, Data, Len);
      if (N < 0 && errno == EINTR)
        continue;
      return static_cast<long>(N);
    }
  }

  bool sync() override { return Fd >= 0 && ::fsync(Fd) == 0; }

  bool close() override {
    if (Fd < 0)
      return true;
    int Rc = ::close(Fd);
    Fd = -1;
    return Rc == 0;
  }

private:
  int Fd;
};

class PosixFileSystem final : public FileSystem {
public:
  bool readFile(const std::string &Path, std::string &Out,
                std::string *Error) override {
    int Fd = ::open(Path.c_str(), O_RDONLY | O_CLOEXEC);
    if (Fd < 0)
      return fail(Error, "cannot open '" + Path + "': " +
                             std::strerror(errno));
    std::string Bytes;
    char Chunk[64 << 10];
    for (;;) {
      ssize_t N = ::read(Fd, Chunk, sizeof(Chunk));
      if (N < 0) {
        if (errno == EINTR)
          continue;
        int E = errno;
        ::close(Fd);
        return fail(Error, "read '" + Path + "': " + std::strerror(E));
      }
      if (N == 0)
        break;
      Bytes.append(Chunk, static_cast<size_t>(N));
    }
    ::close(Fd);
    Out = std::move(Bytes);
    return true;
  }

  std::unique_ptr<WritableFile> openWrite(const std::string &Path,
                                          bool Append,
                                          std::string *Error) override {
    int Flags = O_WRONLY | O_CREAT | O_CLOEXEC | (Append ? O_APPEND : O_TRUNC);
    int Fd = ::open(Path.c_str(), Flags, 0644);
    if (Fd < 0) {
      fail(Error, "cannot write '" + Path + "': " + std::strerror(errno));
      return nullptr;
    }
    return std::make_unique<PosixWritableFile>(Fd);
  }

  bool exists(const std::string &Path) override {
    struct stat St;
    return ::stat(Path.c_str(), &St) == 0;
  }

  bool isDirectory(const std::string &Path) override {
    struct stat St;
    return ::stat(Path.c_str(), &St) == 0 && S_ISDIR(St.st_mode);
  }

  bool mkdir(const std::string &Path) override {
    return ::mkdir(Path.c_str(), 0755) == 0;
  }

  bool rename(const std::string &From, const std::string &To) override {
    return ::rename(From.c_str(), To.c_str()) == 0;
  }

  bool remove(const std::string &Path) override {
    return ::unlink(Path.c_str()) == 0;
  }

  bool removeDir(const std::string &Path) override {
    return ::rmdir(Path.c_str()) == 0;
  }

  bool truncate(const std::string &Path, uint64_t Size) override {
    return ::truncate(Path.c_str(), static_cast<off_t>(Size)) == 0;
  }

  bool syncDirectory(const std::string &Path) override {
    int Fd = ::open(Path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (Fd < 0)
      return false;
    int Rc = ::fsync(Fd);
    ::close(Fd);
    return Rc == 0;
  }

  bool list(const std::string &Path,
            std::vector<std::string> &Names) override {
    DIR *D = ::opendir(Path.c_str());
    if (!D)
      return false;
    Names.clear();
    while (dirent *E = ::readdir(D)) {
      std::string Name = E->d_name;
      if (Name != "." && Name != "..")
        Names.push_back(std::move(Name));
    }
    ::closedir(D);
    return true;
  }

  bool fileSize(const std::string &Path, uint64_t &Size) override {
    struct stat St;
    if (::stat(Path.c_str(), &St) != 0 || !S_ISREG(St.st_mode))
      return false;
    Size = static_cast<uint64_t>(St.st_size);
    return true;
  }
};

} // namespace

FileSystem &FileSystem::real() {
  static PosixFileSystem Fs;
  return Fs;
}
