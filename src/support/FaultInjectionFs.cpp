//===- support/FaultInjectionFs.cpp - Crash testing backend -----------------=//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/support/FaultInjectionFs.h"

#include <algorithm>
#include <iterator>
#include <type_traits>

using namespace sampletrack;
using namespace sampletrack::support;

namespace {

bool fail(std::string *Error, const std::string &Msg) {
  if (Error)
    *Error = Msg;
  return false;
}

bool isUnder(const std::string &Path, const std::string &Dir) {
  return Path.size() > Dir.size() + 1 && Path.compare(0, Dir.size(), Dir) == 0 &&
         Path[Dir.size()] == '/';
}

} // namespace

//===----------------------------------------------------------------------===//
// Handle
//===----------------------------------------------------------------------===//

/// A writable handle into one inode. Writes append (openWrite(Append=false)
/// already truncated the inode); sync() advances the durable snapshot.
class FaultInjectionFs::Handle final : public WritableFile {
public:
  Handle(FaultInjectionFs &Fs, std::shared_ptr<Inode> I)
      : Fs(Fs), I(std::move(I)) {}

  long write(const char *Data, size_t Len) override {
    std::lock_guard<std::mutex> L(Fs.M);
    if (!I)
      return -1;
    if (Fs.faultOp()) {
      // A torn final write: some prefix still lands before the error.
      size_t Torn = std::min(Fs.Faults.TornWriteBytes, Len);
      I->Bytes.append(Data, Torn);
      return -1;
    }
    if (Fs.Faults.MaxWriteBytes)
      Len = std::min(Len, Fs.Faults.MaxWriteBytes);
    I->Bytes.append(Data, Len);
    return static_cast<long>(Len);
  }

  bool sync() override {
    std::lock_guard<std::mutex> L(Fs.M);
    if (!I || Fs.faultOp())
      return false;
    I->Durable = I->Bytes;
    return true;
  }

  bool close() override {
    I.reset();
    return true;
  }

private:
  FaultInjectionFs &Fs;
  std::shared_ptr<Inode> I;
};

//===----------------------------------------------------------------------===//
// FileSystem operations
//===----------------------------------------------------------------------===//

bool FaultInjectionFs::faultOp() {
  // Caller holds M.
  ++Ops;
  if (Fired && Faults.StayDown)
    return true;
  if (Faults.FailAtOp != 0 && Ops == Faults.FailAtOp) {
    Fired = true;
    return true;
  }
  return false;
}

bool FaultInjectionFs::isDirLocked(const std::string &Path) const {
  return Path == "." || Path == "/" || Dirs.count(Path) != 0;
}

bool FaultInjectionFs::readFile(const std::string &Path, std::string &Out,
                                std::string *Error) {
  std::lock_guard<std::mutex> L(M);
  if (faultOp())
    return fail(Error, "injected fault reading '" + Path + "'");
  auto It = Files.find(Path);
  if (It == Files.end())
    return fail(Error, "cannot open '" + Path + "': no such file");
  Out = It->second->Bytes;
  return true;
}

std::unique_ptr<WritableFile>
FaultInjectionFs::openWrite(const std::string &Path, bool Append,
                            std::string *Error) {
  std::lock_guard<std::mutex> L(M);
  if (faultOp()) {
    fail(Error, "injected fault opening '" + Path + "'");
    return nullptr;
  }
  if (!isDirLocked(parentDirOf(Path))) {
    fail(Error, "cannot write '" + Path + "': no such directory");
    return nullptr;
  }
  if (Dirs.count(Path)) {
    fail(Error, "cannot write '" + Path + "': is a directory");
    return nullptr;
  }
  auto It = Files.find(Path);
  std::shared_ptr<Inode> I;
  if (It == Files.end()) {
    I = std::make_shared<Inode>();
    Files[Path] = I;
  } else {
    I = It->second;
    if (!Append)
      I->Bytes.clear();
  }
  return std::make_unique<Handle>(*this, std::move(I));
}

bool FaultInjectionFs::exists(const std::string &Path) {
  std::lock_guard<std::mutex> L(M);
  return Files.count(Path) != 0 || isDirLocked(Path);
}

bool FaultInjectionFs::isDirectory(const std::string &Path) {
  std::lock_guard<std::mutex> L(M);
  return isDirLocked(Path);
}

bool FaultInjectionFs::mkdir(const std::string &Path) {
  std::lock_guard<std::mutex> L(M);
  if (faultOp())
    return false;
  if (!isDirLocked(parentDirOf(Path)) || isDirLocked(Path) ||
      Files.count(Path))
    return false;
  Dirs.insert(Path);
  return true;
}

bool FaultInjectionFs::rename(const std::string &From, const std::string &To) {
  std::lock_guard<std::mutex> L(M);
  if (faultOp())
    return false;
  if (Dirs.count(From)) {
    // Directory rename: the whole subtree moves. Children's directory
    // entries live inside the moved directory, so they follow it in the
    // durable view too; only the top-level name swap itself is the atomic
    // step (a crash sees the tree under the old name or the new one).
    if (Files.count(To) || Dirs.count(To))
      return false; // Target must not exist for a directory rename.
    auto Rewrite = [&](auto &Map) {
      constexpr bool IsSet = std::is_same_v<std::decay_t<decltype(Map)>,
                                            std::set<std::string>>;
      std::decay_t<decltype(Map)> Moved;
      for (auto It = Map.begin(); It != Map.end();) {
        std::string Key;
        if constexpr (IsSet)
          Key = *It;
        else
          Key = It->first;
        if (Key == From || isUnder(Key, From)) {
          std::string NewKey = To + Key.substr(From.size());
          if constexpr (IsSet)
            Moved.insert(NewKey);
          else
            Moved.emplace(NewKey, It->second);
          It = Map.erase(It);
        } else {
          ++It;
        }
      }
      Map.merge(Moved);
    };
    Rewrite(Files);
    Rewrite(DurableFiles);
    Rewrite(Dirs);
    Rewrite(DurableDirs);
    return true;
  }
  auto It = Files.find(From);
  if (It == Files.end() || Dirs.count(To))
    return false;
  if (!isDirLocked(parentDirOf(To)))
    return false;
  std::shared_ptr<Inode> I = It->second;
  Files.erase(It);
  Files[To] = std::move(I);
  // Not durable until the parent directory is synced: powerCut() before
  // that reverts to the old names.
  return true;
}

bool FaultInjectionFs::remove(const std::string &Path) {
  std::lock_guard<std::mutex> L(M);
  if (faultOp())
    return false;
  return Files.erase(Path) != 0;
}

bool FaultInjectionFs::removeDir(const std::string &Path) {
  std::lock_guard<std::mutex> L(M);
  if (faultOp())
    return false;
  if (!Dirs.count(Path))
    return false;
  for (const auto &[P, I] : Files)
    if (isUnder(P, Path))
      return false; // Not empty.
  for (const std::string &D : Dirs)
    if (isUnder(D, Path))
      return false;
  Dirs.erase(Path);
  return true;
}

bool FaultInjectionFs::truncate(const std::string &Path, uint64_t Size) {
  std::lock_guard<std::mutex> L(M);
  if (faultOp())
    return false;
  auto It = Files.find(Path);
  if (It == Files.end() || Size > It->second->Bytes.size())
    return false;
  It->second->Bytes.resize(Size);
  return true;
}

bool FaultInjectionFs::syncDirectory(const std::string &Path) {
  std::lock_guard<std::mutex> L(M);
  if (faultOp())
    return false;
  if (!isDirLocked(Path))
    return false;
  auto ParentIs = [&](const std::string &P) {
    return parentDirOf(P) == Path;
  };
  // Directory entries under Path become durable: creations and renames
  // commit, removals commit.
  for (const auto &[P, I] : Files)
    if (ParentIs(P))
      DurableFiles[P] = I;
  for (auto It = DurableFiles.begin(); It != DurableFiles.end();)
    It = ParentIs(It->first) && !Files.count(It->first)
             ? DurableFiles.erase(It)
             : std::next(It);
  for (const std::string &D : Dirs)
    if (ParentIs(D))
      DurableDirs.insert(D);
  for (auto It = DurableDirs.begin(); It != DurableDirs.end();)
    It = ParentIs(*It) && !Dirs.count(*It) ? DurableDirs.erase(It)
                                           : std::next(It);
  return true;
}

bool FaultInjectionFs::list(const std::string &Path,
                            std::vector<std::string> &Names) {
  std::lock_guard<std::mutex> L(M);
  if (!isDirLocked(Path))
    return false;
  Names.clear();
  auto Tail = [&](const std::string &P) {
    return P.substr(P.find_last_of('/') + 1);
  };
  for (const auto &[P, I] : Files)
    if (parentDirOf(P) == Path)
      Names.push_back(Tail(P));
  for (const std::string &D : Dirs)
    if (parentDirOf(D) == Path)
      Names.push_back(Tail(D));
  std::sort(Names.begin(), Names.end());
  return true;
}

bool FaultInjectionFs::fileSize(const std::string &Path, uint64_t &Size) {
  std::lock_guard<std::mutex> L(M);
  auto It = Files.find(Path);
  if (It == Files.end())
    return false;
  Size = It->second->Bytes.size();
  return true;
}

//===----------------------------------------------------------------------===//
// Fault schedule + power cut
//===----------------------------------------------------------------------===//

void FaultInjectionFs::setFaults(const FaultConfig &C) {
  std::lock_guard<std::mutex> L(M);
  Faults = C;
  Fired = false;
}

void FaultInjectionFs::clearFaults() {
  std::lock_guard<std::mutex> L(M);
  Faults = FaultConfig{};
  Fired = false;
}

uint64_t FaultInjectionFs::opCount() const {
  std::lock_guard<std::mutex> L(M);
  return Ops;
}

bool FaultInjectionFs::faultFired() const {
  std::lock_guard<std::mutex> L(M);
  return Fired;
}

void FaultInjectionFs::powerCut(size_t KeepUnsyncedBytes) {
  std::lock_guard<std::mutex> L(M);
  Files = DurableFiles;
  Dirs = DurableDirs;
  for (auto &[P, I] : Files) {
    // Appended-but-unsynced bytes: any prefix may have reached the platter.
    // Everything else (in-place rewrites, truncations) reverts wholesale.
    if (I->Bytes.size() >= I->Durable.size() &&
        I->Bytes.compare(0, I->Durable.size(), I->Durable) == 0) {
      size_t Unsynced = I->Bytes.size() - I->Durable.size();
      I->Bytes.resize(I->Durable.size() +
                      std::min(KeepUnsyncedBytes, Unsynced));
    } else {
      I->Bytes = I->Durable;
    }
  }
}

std::vector<std::string> FaultInjectionFs::allFiles() const {
  std::lock_guard<std::mutex> L(M);
  std::vector<std::string> Out;
  for (const auto &[P, I] : Files)
    Out.push_back(P);
  return Out;
}
