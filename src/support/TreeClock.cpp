//===- support/TreeClock.cpp - Tree clock implementation -----------------===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/support/TreeClock.h"

#include <sstream>

using namespace sampletrack;

void TreeClock::detach(ThreadId T) {
  Node &N = Nodes[T];
  if (!N.Attached)
    return;
  if (N.Parent != NoThread) {
    if (Nodes[N.Parent].HeadChild == T)
      Nodes[N.Parent].HeadChild = N.NextSib;
  }
  if (N.PrevSib != NoThread)
    Nodes[N.PrevSib].NextSib = N.NextSib;
  if (N.NextSib != NoThread)
    Nodes[N.NextSib].PrevSib = N.PrevSib;
  N.Parent = NoThread;
  N.PrevSib = N.NextSib = NoThread;
  N.Attached = false;
}

void TreeClock::attachAsHeadChild(ThreadId Parent, ThreadId Child) {
  Node &P = Nodes[Parent];
  Node &C = Nodes[Child];
  C.Parent = Parent;
  C.PrevSib = NoThread;
  C.NextSib = P.HeadChild;
  if (P.HeadChild != NoThread)
    Nodes[P.HeadChild].PrevSib = Child;
  P.HeadChild = Child;
  C.Attached = true;
}

unsigned TreeClock::joinFrom(const TreeClock &Other) {
  assert(Nodes.size() == Other.Nodes.size() && "clock size mismatch");
  if (&Other == this)
    return 0;
  ThreadId OtherRoot = Other.Root;
  if (OtherRoot == NoThread)
    return 0;
  // Fast path: everything the other clock knows about its own root is
  // already known here, which (by the tree clock invariant) means the whole
  // other timestamp is subsumed.
  if (Other.Nodes[OtherRoot].Clk <= Nodes[OtherRoot].Clk)
    return 0;

  unsigned Examined = 0;
  // Collect updated nodes in post-order (children before parents). The
  // traversal reads only *pre-update* values of this clock.
  std::vector<ThreadId> Stack;
  // Iterative DFS mirroring the recursive getUpdatedNodesJoin of the tree
  // clock paper. Frame = (node in Other, next child cursor).
  struct Frame {
    ThreadId U;
    ThreadId NextChild;
  };
  std::vector<Frame> Dfs;
  Dfs.push_back({OtherRoot, Other.Nodes[OtherRoot].HeadChild});
  ++Examined; // The root itself is examined.
  while (!Dfs.empty()) {
    Frame &F = Dfs.back();
    bool Descended = false;
    while (F.NextChild != NoThread) {
      ThreadId V = F.NextChild;
      F.NextChild = Other.Nodes[V].NextSib;
      ++Examined;
      if (Other.Nodes[V].Clk > Nodes[V].Clk) {
        Dfs.push_back({V, Other.Nodes[V].HeadChild});
        Descended = true;
        break;
      }
      // Children are in nonincreasing attachment-time order: once we see an
      // attachment no fresher than what we already know of U, all remaining
      // siblings are older still and can be pruned.
      if (Other.Nodes[V].Aclk <= Nodes[F.U].Clk)
        break;
    }
    if (Descended)
      continue;
    Stack.push_back(F.U);
    Dfs.pop_back();
  }

  // Detach every updated node from its current position.
  for (ThreadId T : Stack)
    if (T != Root)
      detach(T);

  // Reattach in reverse collection order (parents first; among siblings,
  // oldest first so that head-insertion restores recency order).
  for (size_t I = Stack.size(); I-- > 0;) {
    ThreadId T = Stack[I];
    const Node &Src = Other.Nodes[T];
    Node &Dst = Nodes[T];
    Dst.Clk = Src.Clk;
    if (T == OtherRoot) {
      // The other root attaches under this root with the current root time.
      Dst.Aclk = Nodes[Root].Clk;
      attachAsHeadChild(Root, T);
      continue;
    }
    Dst.Aclk = Src.Aclk;
    assert(Src.Parent != NoThread && "non-root node must have a parent");
    assert(Nodes[Src.Parent].Attached && "parent must be attached");
    attachAsHeadChild(Src.Parent, T);
  }
  return Examined;
}

bool TreeClock::checkStructure() const {
  if (Nodes.empty())
    return Root == NoThread;
  if (Root == NoThread || !Nodes[Root].Attached)
    return false;
  if (Nodes[Root].Parent != NoThread)
    return false;

  // Walk the tree from the root, checking links and attachment-order
  // invariants; every attached node must be reached exactly once.
  size_t Reached = 0;
  std::vector<ThreadId> Work = {Root};
  std::vector<bool> Seen(Nodes.size(), false);
  while (!Work.empty()) {
    ThreadId U = Work.back();
    Work.pop_back();
    if (Seen[U])
      return false;
    Seen[U] = true;
    ++Reached;
    ThreadId Prev = NoThread;
    ClockValue PrevAclk = 0;
    for (ThreadId C = Nodes[U].HeadChild; C != NoThread;
         C = Nodes[C].NextSib) {
      const Node &CN = Nodes[C];
      if (!CN.Attached || CN.Parent != U || CN.PrevSib != Prev)
        return false;
      if (CN.Aclk > Nodes[U].Clk)
        return false;
      if (Prev != NoThread && CN.Aclk > PrevAclk)
        return false;
      Prev = C;
      PrevAclk = CN.Aclk;
      Work.push_back(C);
    }
  }
  for (size_t I = 0; I < Nodes.size(); ++I)
    if (Nodes[I].Attached != Seen[I])
      return false;
  return Reached >= 1;
}

std::string TreeClock::str() const {
  std::ostringstream OS;
  // Render as a nested S-expression via DFS.
  struct Printer {
    const TreeClock &TC;
    std::ostringstream &OS;
    void visit(ThreadId U) {
      OS << 't' << U << ':' << TC.Nodes[U].Clk;
      if (U != TC.Root)
        OS << '@' << TC.Nodes[U].Aclk;
      if (TC.Nodes[U].HeadChild == NoThread)
        return;
      OS << " [";
      bool First = true;
      for (ThreadId C = TC.Nodes[U].HeadChild; C != NoThread;
           C = TC.Nodes[C].NextSib) {
        if (!First)
          OS << ' ';
        First = false;
        visit(C);
      }
      OS << ']';
    }
  };
  OS << '(';
  if (Root != NoThread)
    Printer{*this, OS}.visit(Root);
  OS << ')';
  return OS.str();
}
