//===- support/Table.cpp - Result table printing -------------------------===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/support/Table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

using namespace sampletrack;

Table::Table(std::vector<std::string> Header) : Header(std::move(Header)) {}

void Table::addRow(std::vector<std::string> Cells) {
  Cells.resize(Header.size());
  Rows.push_back(std::move(Cells));
}

std::string Table::fmt(double V, int Precision) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Precision, V);
  return Buf;
}

void Table::print() const {
  std::vector<size_t> Widths(Header.size(), 0);
  for (size_t C = 0; C < Header.size(); ++C)
    Widths[C] = Header[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C < Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto PrintRow = [&](const std::vector<std::string> &Cells) {
    for (size_t C = 0; C < Cells.size(); ++C)
      std::printf("%-*s%s", static_cast<int>(Widths[C]), Cells[C].c_str(),
                  C + 1 == Cells.size() ? "" : "  ");
    std::printf("\n");
  };

  PrintRow(Header);
  size_t Total = 0;
  for (size_t W : Widths)
    Total += W + 2;
  std::string Rule(Total > 2 ? Total - 2 : Total, '-');
  std::printf("%s\n", Rule.c_str());
  for (const auto &Row : Rows)
    PrintRow(Row);
}

bool Table::writeCsv(const std::string &Path) const {
  std::ofstream OS(Path);
  if (!OS)
    return false;
  auto WriteRow = [&](const std::vector<std::string> &Cells) {
    for (size_t C = 0; C < Cells.size(); ++C) {
      if (C)
        OS << ',';
      OS << Cells[C];
    }
    OS << '\n';
  };
  WriteRow(Header);
  for (const auto &Row : Rows)
    WriteRow(Row);
  return static_cast<bool>(OS);
}

Summary Summary::of(std::vector<double> Samples) {
  Summary S;
  if (Samples.empty())
    return S;
  std::sort(Samples.begin(), Samples.end());
  double Sum = 0;
  for (double V : Samples)
    Sum += V;
  S.Mean = Sum / static_cast<double>(Samples.size());
  S.Min = Samples.front();
  S.Max = Samples.back();
  auto Pct = [&](double P) {
    size_t Idx = static_cast<size_t>(P * static_cast<double>(Samples.size() - 1));
    return Samples[Idx];
  };
  S.P50 = Pct(0.50);
  S.P95 = Pct(0.95);
  return S;
}
