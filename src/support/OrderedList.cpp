//===- support/OrderedList.cpp - Ordered-list implementation -------------===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/support/OrderedList.h"

#include <sstream>

using namespace sampletrack;

bool OrderedList::checkStructure() const {
  if (Nodes.empty())
    return Head == NoThread && Tail == NoThread;
  if (Head == NoThread || Tail == NoThread)
    return false;
  if (Nodes[Head].Prev != NoThread || Nodes[Tail].Next != NoThread)
    return false;

  std::vector<bool> Seen(Nodes.size(), false);
  ThreadId Cur = Head;
  ThreadId Prev = NoThread;
  size_t Count = 0;
  while (Cur != NoThread) {
    if (Cur >= Nodes.size() || Seen[Cur])
      return false;
    Seen[Cur] = true;
    if (Nodes[Cur].Prev != Prev)
      return false;
    Prev = Cur;
    Cur = Nodes[Cur].Next;
    ++Count;
  }
  return Prev == Tail && Count == Nodes.size();
}

std::string OrderedList::str() const {
  std::ostringstream OS;
  OS << '[';
  ThreadId Cur = Head;
  bool First = true;
  while (Cur != NoThread) {
    if (!First)
      OS << ' ';
    First = false;
    OS << 't' << Cur << ':' << Nodes[Cur].Time;
    Cur = Nodes[Cur].Next;
  }
  OS << ']';
  return OS.str();
}
