//===- support/OrderedList.cpp - Ordered-list implementation -------------===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/support/OrderedList.h"

#include <sstream>

using namespace sampletrack;

bool OrderedList::checkStructure() const {
  if (Times.empty())
    return Head == NoThread && Tail == NoThread;
  if (PrevLink.size() != Times.size() || NextLink.size() != Times.size())
    return false;
  if (Head == NoThread || Tail == NoThread)
    return false;
  if (PrevLink[Head] != NoThread || NextLink[Tail] != NoThread)
    return false;

  std::vector<bool> Seen(Times.size(), false);
  ThreadId Cur = Head;
  ThreadId Prev = NoThread;
  size_t Count = 0;
  while (Cur != NoThread) {
    if (Cur >= Times.size() || Seen[Cur])
      return false;
    Seen[Cur] = true;
    if (PrevLink[Cur] != Prev)
      return false;
    Prev = Cur;
    Cur = NextLink[Cur];
    ++Count;
  }
  return Prev == Tail && Count == Times.size();
}

std::string OrderedList::str() const {
  std::ostringstream OS;
  OS << '[';
  ThreadId Cur = Head;
  bool First = true;
  while (Cur != NoThread) {
    if (!First)
      OS << ' ';
    First = false;
    OS << 't' << Cur << ':' << Times[Cur];
    Cur = NextLink[Cur];
  }
  OS << ']';
  return OS.str();
}
