//===- support/simd/ClockKernels.cpp - SIMD clock kernel tiers -------------=//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
//
// Tier implementations and the runtime dispatch. Every kernel here must be
// bit-identical to the scalar tier: max and <= are exact lane-wise
// functions, the change count is lane-order independent, and the sum is a
// mod-2^64 reduction where addition commutes. The differential fuzz
// harness's SimdTier axis and ClockTest's width-boundary property cases
// hold every tier to that contract.
//
// uint64 lanes need care on both ISAs: AVX2 has no unsigned 64-bit compare
// or max, so comparisons run as signed compares after flipping the sign
// bit (x ^ 2^63 maps unsigned order onto signed order), and max is a
// compare + blend. NEON (AArch64) has vcgtq_u64 but likewise no 64-bit
// max, so the same compare + bit-select shape applies.
//
//===----------------------------------------------------------------------===//

#include "sampletrack/support/simd/ClockKernels.h"

#include <cstdlib>

#if defined(__x86_64__) || defined(_M_X64)
#define SAMPLETRACK_SIMD_X86 1
#include <immintrin.h>
#endif

#if defined(__aarch64__)
#define SAMPLETRACK_SIMD_NEON 1
#include <arm_neon.h>
#endif

using namespace sampletrack;
using namespace sampletrack::simd;

//===----------------------------------------------------------------------===//
// Scalar tier — the reference semantics.
//===----------------------------------------------------------------------===//

namespace {

void joinMaxScalar(ClockValue *Dst, const ClockValue *Src, size_t N) {
  for (size_t I = 0; I < N; ++I)
    if (Src[I] > Dst[I])
      Dst[I] = Src[I];
}

unsigned joinMaxCountScalar(ClockValue *Dst, const ClockValue *Src,
                            size_t N) {
  unsigned Changed = 0;
  for (size_t I = 0; I < N; ++I)
    if (Src[I] > Dst[I]) {
      Dst[I] = Src[I];
      ++Changed;
    }
  return Changed;
}

bool allLeqScalar(const ClockValue *A, const ClockValue *B, size_t N) {
  for (size_t I = 0; I < N; ++I)
    if (A[I] > B[I])
      return false;
  return true;
}

ClockValue sumScalar(const ClockValue *V, size_t N) {
  ClockValue S = 0;
  for (size_t I = 0; I < N; ++I)
    S += V[I];
  return S;
}

constexpr detail::KernelTable ScalarTable = {
    joinMaxScalar, joinMaxCountScalar, allLeqScalar, sumScalar, Tier::Scalar};

//===----------------------------------------------------------------------===//
// AVX2 tier (x86-64). Compiled with a function-level target attribute so
// the translation unit itself needs no -mavx2; cpuid gates every call.
//===----------------------------------------------------------------------===//

#if SAMPLETRACK_SIMD_X86

/// Unsigned 64-bit a > b as a lane mask: flip sign bits, signed compare.
__attribute__((target("avx2"))) inline __m256i gtU64(__m256i A, __m256i B) {
  const __m256i Flip = _mm256_set1_epi64x(static_cast<long long>(1ull << 63));
  return _mm256_cmpgt_epi64(_mm256_xor_si256(A, Flip),
                            _mm256_xor_si256(B, Flip));
}

__attribute__((target("avx2"))) void joinMaxAvx2(ClockValue *Dst,
                                                 const ClockValue *Src,
                                                 size_t N) {
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    __m256i D =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Dst + I));
    __m256i S =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Src + I));
    __m256i Gt = gtU64(S, D);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Dst + I),
                        _mm256_blendv_epi8(D, S, Gt));
  }
  for (; I < N; ++I)
    if (Src[I] > Dst[I])
      Dst[I] = Src[I];
}

__attribute__((target("avx2"))) unsigned
joinMaxCountAvx2(ClockValue *Dst, const ClockValue *Src, size_t N) {
  unsigned Changed = 0;
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    __m256i D =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Dst + I));
    __m256i S =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Src + I));
    __m256i Gt = gtU64(S, D);
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(Dst + I),
                        _mm256_blendv_epi8(D, S, Gt));
    // Each increased lane contributes 8 set mask bytes.
    Changed += static_cast<unsigned>(
        __builtin_popcount(static_cast<unsigned>(_mm256_movemask_epi8(Gt))) /
        8);
  }
  for (; I < N; ++I)
    if (Src[I] > Dst[I]) {
      Dst[I] = Src[I];
      ++Changed;
    }
  return Changed;
}

__attribute__((target("avx2"))) bool
allLeqAvx2(const ClockValue *A, const ClockValue *B, size_t N) {
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    __m256i Va = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(A + I));
    __m256i Vb = _mm256_loadu_si256(reinterpret_cast<const __m256i *>(B + I));
    if (_mm256_movemask_epi8(gtU64(Va, Vb)) != 0)
      return false;
  }
  for (; I < N; ++I)
    if (A[I] > B[I])
      return false;
  return true;
}

__attribute__((target("avx2"))) ClockValue sumAvx2(const ClockValue *V,
                                                   size_t N) {
  __m256i Acc = _mm256_setzero_si256();
  size_t I = 0;
  for (; I + 4 <= N; I += 4)
    Acc = _mm256_add_epi64(
        Acc, _mm256_loadu_si256(reinterpret_cast<const __m256i *>(V + I)));
  alignas(32) ClockValue Lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i *>(Lanes), Acc);
  ClockValue S = Lanes[0] + Lanes[1] + Lanes[2] + Lanes[3];
  for (; I < N; ++I)
    S += V[I];
  return S;
}

constexpr detail::KernelTable Avx2Table = {joinMaxAvx2, joinMaxCountAvx2,
                                           allLeqAvx2, sumAvx2, Tier::Avx2};

#endif // SAMPLETRACK_SIMD_X86

//===----------------------------------------------------------------------===//
// NEON tier (AArch64; Advanced SIMD is baseline, no runtime gate needed).
//===----------------------------------------------------------------------===//

#if SAMPLETRACK_SIMD_NEON

void joinMaxNeon(ClockValue *Dst, const ClockValue *Src, size_t N) {
  size_t I = 0;
  for (; I + 2 <= N; I += 2) {
    uint64x2_t D = vld1q_u64(Dst + I);
    uint64x2_t S = vld1q_u64(Src + I);
    vst1q_u64(Dst + I, vbslq_u64(vcgtq_u64(S, D), S, D));
  }
  for (; I < N; ++I)
    if (Src[I] > Dst[I])
      Dst[I] = Src[I];
}

unsigned joinMaxCountNeon(ClockValue *Dst, const ClockValue *Src, size_t N) {
  unsigned Changed = 0;
  size_t I = 0;
  for (; I + 2 <= N; I += 2) {
    uint64x2_t D = vld1q_u64(Dst + I);
    uint64x2_t S = vld1q_u64(Src + I);
    uint64x2_t Gt = vcgtq_u64(S, D);
    vst1q_u64(Dst + I, vbslq_u64(Gt, S, D));
    // Each increased lane is all-ones; shift to 1 and add both lanes.
    Changed += static_cast<unsigned>(
        vaddvq_u64(vshrq_n_u64(Gt, 63)));
  }
  for (; I < N; ++I)
    if (Src[I] > Dst[I]) {
      Dst[I] = Src[I];
      ++Changed;
    }
  return Changed;
}

bool allLeqNeon(const ClockValue *A, const ClockValue *B, size_t N) {
  size_t I = 0;
  for (; I + 2 <= N; I += 2) {
    uint64x2_t Gt = vcgtq_u64(vld1q_u64(A + I), vld1q_u64(B + I));
    if (vgetq_lane_u64(Gt, 0) | vgetq_lane_u64(Gt, 1))
      return false;
  }
  for (; I < N; ++I)
    if (A[I] > B[I])
      return false;
  return true;
}

ClockValue sumNeon(const ClockValue *V, size_t N) {
  uint64x2_t Acc = vdupq_n_u64(0);
  size_t I = 0;
  for (; I + 2 <= N; I += 2)
    Acc = vaddq_u64(Acc, vld1q_u64(V + I));
  ClockValue S = vgetq_lane_u64(Acc, 0) + vgetq_lane_u64(Acc, 1);
  for (; I < N; ++I)
    S += V[I];
  return S;
}

constexpr detail::KernelTable NeonTable = {joinMaxNeon, joinMaxCountNeon,
                                           allLeqNeon, sumNeon, Tier::Neon};

#endif // SAMPLETRACK_SIMD_NEON

//===----------------------------------------------------------------------===//
// Dispatch.
//===----------------------------------------------------------------------===//

bool hostSupports(Tier T) {
  switch (T) {
  case Tier::Scalar:
    return true;
  case Tier::Avx2:
#if SAMPLETRACK_SIMD_X86
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
  case Tier::Neon:
#if SAMPLETRACK_SIMD_NEON
    return true;
#else
    return false;
#endif
  }
  return false;
}

const detail::KernelTable *tableFor(Tier T) {
  switch (T) {
#if SAMPLETRACK_SIMD_X86
  case Tier::Avx2:
    return &Avx2Table;
#endif
#if SAMPLETRACK_SIMD_NEON
  case Tier::Neon:
    return &NeonTable;
#endif
  default:
    return &ScalarTable;
  }
}

/// True when SAMPLETRACK_FORCE_SCALAR is set to anything but "" or "0".
bool forceScalarFromEnv() {
  const char *V = std::getenv("SAMPLETRACK_FORCE_SCALAR");
  return V && V[0] != '\0' && !(V[0] == '0' && V[1] == '\0');
}

const detail::KernelTable *resolveBest() {
  if (forceScalarFromEnv())
    return &ScalarTable;
  if (hostSupports(Tier::Avx2))
    return tableFor(Tier::Avx2);
  if (hostSupports(Tier::Neon))
    return tableFor(Tier::Neon);
  return &ScalarTable;
}

/// The active table. Resolved once (racing resolvers agree on the answer,
/// so the relaxed publish is benign); forceTier swaps it between runs.
std::atomic<const detail::KernelTable *> ActiveTable{nullptr};

} // namespace

const detail::KernelTable *simd::detail::table() {
  const detail::KernelTable *T = ActiveTable.load(std::memory_order_acquire);
  if (T)
    return T;
  T = resolveBest();
  ActiveTable.store(T, std::memory_order_release);
  return T;
}

const char *simd::tierName(Tier T) {
  switch (T) {
  case Tier::Scalar:
    return "scalar";
  case Tier::Avx2:
    return "avx2";
  case Tier::Neon:
    return "neon";
  }
  return "unknown";
}

Tier simd::activeTier() { return detail::table()->T; }

bool simd::forceTier(Tier T) {
  if (!hostSupports(T))
    return false;
  ActiveTable.store(tableFor(T), std::memory_order_release);
  return true;
}
