//===- tests/OracleTest.cpp - Hand-verified happens-before -----------------==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Anchors the reference oracle itself: tiny hand-constructed executions
/// whose happens-before relation is derived on paper, checked edge by edge.
/// Everything else in the test pyramid leans on this oracle, so these are
/// the ground-truth tests of the repository.
///
//===----------------------------------------------------------------------===//

#include "sampletrack/detectors/HBClosureOracle.h"

#include <gtest/gtest.h>

using namespace sampletrack;

TEST(Oracle, ProgramOrderAndReflexivity) {
  Trace T;
  T.write(0, 0); // e0
  T.read(0, 1);  // e1
  T.write(1, 2); // e2
  HBClosureOracle O(T);
  EXPECT_TRUE(O.happensBefore(0, 0));
  EXPECT_TRUE(O.happensBefore(0, 1)) << "program order";
  EXPECT_FALSE(O.happensBefore(0, 2)) << "no inter-thread edge";
  EXPECT_FALSE(O.happensBefore(1, 2));
}

TEST(Oracle, ReleaseAcquireCreatesEdge) {
  Trace T;
  T.write(0, 7);    // e0
  T.acquire(0, 0);  // e1
  T.release(0, 0);  // e2
  T.acquire(1, 0);  // e3
  T.write(1, 7);    // e4
  HBClosureOracle O(T);
  EXPECT_TRUE(O.happensBefore(2, 3)) << "rel -> acq";
  EXPECT_TRUE(O.happensBefore(0, 4)) << "transitive through the lock";
  EXPECT_TRUE(O.allRacePairs().empty());
}

TEST(Oracle, NoEdgeFromAcquireBackward) {
  // t1's acquire of a never-released lock learns nothing; the two writes
  // race.
  Trace T;
  T.acquire(0, 0); // e0
  T.write(0, 7);   // e1
  T.release(0, 0); // e2
  T.acquire(1, 1); // e3: different lock
  T.write(1, 7);   // e4
  T.release(1, 1); // e5
  HBClosureOracle O(T);
  EXPECT_FALSE(O.happensBefore(1, 4));
  auto Pairs = O.allRacePairs();
  ASSERT_EQ(Pairs.size(), 1u);
  EXPECT_EQ(Pairs[0], (std::pair<size_t, size_t>{1, 4}));
}

TEST(Oracle, LockChainOrdersThirdParty) {
  // t0 -> l0 -> t1 -> l1 -> t2: transitive cross-thread chain.
  Trace T;
  T.write(0, 9);   // e0
  T.acquire(0, 0); // e1
  T.release(0, 0); // e2
  T.acquire(1, 0); // e3
  T.acquire(1, 1); // e4
  T.release(1, 1); // e5
  T.release(1, 0); // e6
  T.acquire(2, 1); // e7
  T.read(2, 9);    // e8
  HBClosureOracle O(T);
  EXPECT_TRUE(O.happensBefore(0, 8)) << "t0 -> l0 -> t1 -> l1 -> t2";
  EXPECT_TRUE(O.allRacePairs().empty());
}

TEST(Oracle, ForkJoinEdges) {
  Trace T;
  T.write(0, 3); // e0
  T.fork(0, 1);  // e1
  T.read(1, 3);  // e2: ordered after parent's pre-fork write
  T.write(1, 4); // e3
  T.write(0, 5); // e4: concurrent with child
  T.join(0, 1);  // e5
  T.read(0, 4);  // e6: ordered after child's write via join
  HBClosureOracle O(T);
  EXPECT_TRUE(O.happensBefore(0, 2)) << "fork edge";
  EXPECT_TRUE(O.happensBefore(3, 6)) << "join edge";
  EXPECT_FALSE(O.happensBefore(2, 4)) << "child concurrent with parent";
  EXPECT_FALSE(O.happensBefore(4, 3));
  EXPECT_TRUE(O.allRacePairs().empty());
}

TEST(Oracle, ParentWritesAfterForkRaceWithChild) {
  Trace T;
  T.fork(0, 1);  // e0
  T.write(0, 3); // e1: after the fork
  T.write(1, 3); // e2: child access, unordered with e1
  T.join(0, 1);  // e3
  HBClosureOracle O(T);
  EXPECT_FALSE(O.happensBefore(1, 2));
  ASSERT_EQ(O.allRacePairs().size(), 1u);
}

TEST(Oracle, ReleaseStoreAcquireLoadMessagePassing) {
  Trace T;
  T.write(0, 1);        // e0: payload
  T.releaseStore(0, 0); // e1: publish
  T.acquireLoad(1, 0);  // e2: consume
  T.read(1, 1);         // e3: ordered read
  HBClosureOracle O(T);
  EXPECT_TRUE(O.happensBefore(0, 3));
  EXPECT_TRUE(O.allRacePairs().empty());
}

TEST(Oracle, ReleaseStoreReplacesNotAccumulates) {
  // t0 publishes, then t1 overwrites the sync with its own (ignorant)
  // clock; t2's acquire-load therefore does NOT learn about t0.
  Trace T;
  T.write(0, 1);        // e0
  T.releaseStore(0, 0); // e1
  T.releaseStore(1, 0); // e2: replacement by t1
  T.acquireLoad(2, 0);  // e3
  T.write(2, 1);        // e4: races with e0
  HBClosureOracle O(T);
  EXPECT_FALSE(O.happensBefore(0, 4)) << "replacement dropped t0's clock";
  ASSERT_EQ(O.allRacePairs().size(), 1u);
}

TEST(Oracle, ReleaseJoinAccumulates) {
  // Same shape but with release-joins: the sync blends both publishers, so
  // the reader is ordered after both.
  Trace T;
  T.write(0, 1);       // e0
  T.releaseJoin(0, 0); // e1
  T.releaseJoin(1, 0); // e2: blends, does not replace
  T.acquireLoad(2, 0); // e3
  T.write(2, 1);       // e4
  HBClosureOracle O(T);
  EXPECT_TRUE(O.happensBefore(0, 4)) << "blend kept t0's clock";
  EXPECT_TRUE(O.allRacePairs().empty());
}

TEST(Oracle, LocalTimesCountReleases) {
  Trace T;
  T.acquire(0, 0);
  T.write(0, 0);   // L_FT = 1 (no release yet)
  T.release(0, 0); // L_FT = 1 at the release event itself
  T.write(0, 1);   // L_FT = 2 (one release before)
  HBClosureOracle O(T);
  EXPECT_EQ(O.localTime(1), 1u);
  EXPECT_EQ(O.localTime(2), 1u);
  EXPECT_EQ(O.localTime(3), 2u);
}

TEST(Oracle, SamplingLocalTimesOnlyCountFlushes) {
  // Two critical sections; only the first contains a marked event, so only
  // its release advances L_sam (Eq. 6).
  Trace T;
  T.acquire(0, 0);
  T.write(0, 0, /*Marked=*/true);
  T.release(0, 0); // RelAfter_S: flushes
  T.acquire(0, 0);
  T.write(0, 0); // unmarked
  T.release(0, 0); // not in RelAfter_S
  T.write(0, 1);
  HBClosureOracle O(T);
  std::vector<ClockValue> L = O.samplingLocalTimes();
  EXPECT_EQ(L[1], 1u);
  EXPECT_EQ(L[4], 2u) << "after the flushing release";
  EXPECT_EQ(L[6], 2u) << "the second release did not flush";
}

TEST(Oracle, MarkedRacePairsRestrictBothEndpoints) {
  Trace T;
  T.write(0, 0, /*Marked=*/true); // e0
  T.write(1, 0);                  // e1: unmarked
  T.write(1, 0, /*Marked=*/true); // e2
  HBClosureOracle O(T);
  // (e0,e1) and (e0,e2) conflict and are unordered; (e1,e2) share a thread.
  EXPECT_EQ(O.allRacePairs().size(), 2u);
  // Only (e0, e2) has both endpoints marked.
  auto Marked = O.markedRacePairs();
  ASSERT_EQ(Marked.size(), 1u);
  EXPECT_EQ(Marked[0], (std::pair<size_t, size_t>{0, 2}));
}
