//===- tests/RecordReplayTest.cpp - Online/offline cross-validation --------==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Integration tests that close the loop between the two halves of the
/// system: the online runtime records its execution as an offline trace
/// (with the exact sample set it used), and the offline engines replay it.
/// Well-synchronized executions must replay race-free; seeded races must
/// replay as races at the same locations.
///
//===----------------------------------------------------------------------===//

#include "sampletrack/SampleTrack.h"

#include <gtest/gtest.h>

#include <thread>

using namespace sampletrack;
using namespace sampletrack::rt;

namespace {

Config recordingConfig(Mode M, double Rate = 1.0) {
  Config C;
  C.AnalysisMode = M;
  C.SamplingRate = Rate;
  C.MaxThreads = 8;
  C.RecordTrace = true;
  C.Seed = 11;
  return C;
}

} // namespace

TEST(RecordReplay, RecordedTraceIsWellFormed) {
  Runtime Rt(recordingConfig(Mode::FT));
  Mutex L1(Rt), L2(Rt);
  uint64_t A = 0, B = 0;
  ThreadId T1 = Rt.registerThread();
  ThreadId T2 = Rt.registerThread();
  Rt.onFork(0, T1);
  Rt.onFork(0, T2);
  auto Work = [&](ThreadId T) {
    for (int I = 0; I < 100; ++I) {
      L1.lock(T);
      Rt.onWrite(T, reinterpret_cast<uint64_t>(&A));
      A++;
      L1.unlock(T);
      L2.lock(T);
      Rt.onRead(T, reinterpret_cast<uint64_t>(&B));
      L2.unlock(T);
    }
  };
  std::thread W1([&] { Work(T1); });
  std::thread W2([&] { Work(T2); });
  W1.join();
  W2.join();
  Rt.onJoin(0, T1);
  Rt.onJoin(0, T2);

  Trace T = Rt.recordedTrace();
  std::string Err;
  EXPECT_TRUE(T.validate(&Err)) << Err;
  EXPECT_EQ(T.countKind(OpKind::Acquire), 400u);
  EXPECT_EQ(T.countKind(OpKind::Release), 400u);
  EXPECT_EQ(T.countKind(OpKind::Fork), 2u);
  EXPECT_EQ(T.countKind(OpKind::Join), 2u);
}

TEST(RecordReplay, WellSynchronizedReplayIsRaceFree) {
  for (Mode M : {Mode::FT, Mode::SO}) {
    Runtime Rt(recordingConfig(M, 0.8));
    Mutex Lock(Rt);
    uint64_t Counter = 0;
    constexpr size_t Workers = 4;
    std::vector<ThreadId> Tids;
    for (size_t W = 0; W < Workers; ++W) {
      ThreadId T = Rt.registerThread();
      Rt.onFork(0, T);
      Tids.push_back(T);
    }
    std::vector<std::thread> Ws;
    for (size_t W = 0; W < Workers; ++W)
      Ws.emplace_back([&, W] {
        for (int I = 0; I < 200; ++I) {
          Lock.lock(Tids[W]);
          Rt.onRead(Tids[W], reinterpret_cast<uint64_t>(&Counter));
          uint64_t V = Counter;
          Rt.onWrite(Tids[W], reinterpret_cast<uint64_t>(&Counter));
          Counter = V + 1;
          Lock.unlock(Tids[W]);
        }
      });
    for (size_t W = 0; W < Workers; ++W) {
      Ws[W].join();
      Rt.onJoin(0, Tids[W]);
    }
    EXPECT_EQ(Rt.raceCount(), 0u);

    // Offline replay with the recorded sample set must also be race-free,
    // under every offline engine.
    Trace T = Rt.recordedTrace();
    ASSERT_TRUE(T.validate());
    for (EngineKind K : {EngineKind::Djit, EngineKind::FastTrack,
                         EngineKind::SamplingNaive, EngineKind::SamplingU,
                         EngineKind::SamplingO}) {
      std::unique_ptr<Detector> D = createDetector(K, T.numThreads());
      MarkedSampler S;
      rapid::run(T, *D, S);
      EXPECT_EQ(D->metrics().RacesDeclared, 0u)
          << engineKindName(K) << " found a phantom race in the replay of "
          << modeName(M);
    }
  }
}

TEST(RecordReplay, SeededRaceReplaysAtSameLocation) {
  Runtime Rt(recordingConfig(Mode::SO, 1.0));
  uint64_t Shared = 0;
  ThreadId A = Rt.registerThread();
  ThreadId B = Rt.registerThread();
  Rt.onFork(0, A);
  Rt.onFork(0, B);
  std::thread Ta([&] {
    Rt.onWrite(A, reinterpret_cast<uint64_t>(&Shared));
    reinterpret_cast<std::atomic<uint64_t> &>(Shared).fetch_add(1);
  });
  std::thread Tb([&] {
    Rt.onWrite(B, reinterpret_cast<uint64_t>(&Shared));
    reinterpret_cast<std::atomic<uint64_t> &>(Shared).fetch_add(1);
  });
  Ta.join();
  Tb.join();
  Rt.onJoin(0, A);
  Rt.onJoin(0, B);
  ASSERT_GE(Rt.raceCount(), 1u);

  Trace T = Rt.recordedTrace();
  SamplingOrderedListDetector D(T.numThreads());
  MarkedSampler S;
  rapid::run(T, D, S);
  ASSERT_EQ(D.racyLocations().size(), 1u);
  // The recorded VarId is the shadow cell of &Shared; the online report
  // used the same cell space, so the location matches by construction.
  EXPECT_EQ(Rt.racyLocationCount(), D.racyLocations().size());
}

TEST(RecordReplay, RecordedWorkloadProgramsAreExplorable) {
  // Close the third loop: the online OLTP simulator records one execution
  // (workload::recordPrograms forces RecordTrace on), the projection turns
  // it into per-thread schedule-point programs, and the explorer replays
  // *other* interleavings of the same programs through the offline
  // engines, cross-checked against the oracle on every schedule.
  workload::BenchmarkSpec Spec = *workload::findBenchmark("smallbank");
  Spec.RowsPerTable = 16;
  Spec.OpsMin = 2;
  Spec.OpsMax = 4;
  Spec.UnprotectedProb = 0.2; // Seed real races so exploration finds some.

  workload::RunConfig Config;
  Config.NumClients = 2;
  Config.RequestsPerClient = 4;
  Config.Rt = recordingConfig(Mode::SO, 1.0);
  Config.Seed = 5;

  workload::RunStats Stats;
  explore::Workload W = workload::recordPrograms(Spec, Config, &Stats);
  ASSERT_TRUE(Stats.Recorded.validate());
  ASSERT_EQ(W.numOps(), Stats.Recorded.size());
  std::string Err;
  ASSERT_TRUE(W.validate(&Err)) << Err;

  // The recorded interleaving itself is reachable: its tid sequence
  // materializes back to the recorded trace.
  std::vector<ThreadId> Identity;
  for (const Event &E : Stats.Recorded)
    Identity.push_back(E.Tid);
  Trace Back = explore::Scheduler::materialize(W, Identity);
  ASSERT_EQ(Back.size(), Stats.Recorded.size());
  for (size_t I = 0; I < Back.size(); ++I)
    EXPECT_EQ(Back[I].Target, Stats.Recorded[I].Target);

  // Re-scheduled neighbors analyze clean: engines match the oracle on
  // every explored interleaving of the recorded programs.
  api::SessionConfig Cfg;
  Cfg.Engines = {EngineKind::Djit, EngineKind::SamplingNaive,
                 EngineKind::SamplingO};
  Cfg.Sampling = api::SamplerKind::Bernoulli;
  Cfg.SamplingRate = 0.5;
  Cfg.Seed = 13;

  explore::ExploreConfig EC;
  EC.Mode = explore::ExploreMode::Random;
  EC.MaxSchedules = 4;
  EC.Seed = 99;
  explore::ExploreReport R = api::runExploration(Cfg, W, EC);
  ASSERT_GT(R.SchedulesRun, 0u);
  EXPECT_TRUE(R.AllAgreed);
  EXPECT_EQ(R.EventsAnalyzed, R.SchedulesRun * W.numOps());
}

TEST(RecordReplay, RecordingRoundTripsThroughTraceFiles) {
  Runtime Rt(recordingConfig(Mode::SU, 0.3));
  Mutex Lock(Rt);
  uint64_t X = 0;
  ThreadId T1 = Rt.registerThread();
  Rt.onFork(0, T1);
  for (int I = 0; I < 500; ++I) {
    Lock.lock(T1);
    Rt.onWrite(T1, reinterpret_cast<uint64_t>(&X));
    X++;
    Lock.unlock(T1);
  }
  Rt.onJoin(0, T1);

  Trace T = Rt.recordedTrace();
  ASSERT_GT(T.size(), 1000u);
  std::string Path = "/tmp/sampletrack_record_replay.bin";
  ASSERT_TRUE(writeTraceFileBinary(Path, T));
  Trace Back;
  std::string Err;
  ASSERT_TRUE(readTraceFile(Path, Back, &Err)) << Err;
  ASSERT_EQ(T.size(), Back.size());
  for (size_t I = 0; I < T.size(); ++I)
    ASSERT_EQ(T[I], Back[I]);
  std::remove(Path.c_str());
}
