//===- tests/SamplerStreamTest.cpp - Shared decision-stream contract -------==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
// Regression guard for the stateful-sampler contract of Sampler.h: the
// session consults shouldSample exactly once per access event, never for
// synchronization events, in trace order — regardless of how ingestion is
// batched across span boundaries, whether the per-event shim is used, and
// whether the lanes run sequentially or on parallel workers (the decision
// stream is always drawn once, on the ingest thread, and shipped with the
// batch).
//
//===----------------------------------------------------------------------===//

#include "sampletrack/api/AnalysisSession.h"

#include "sampletrack/trace/SuiteGen.h"

#include <gtest/gtest.h>

#include <memory>

using namespace sampletrack;

namespace {

/// Wraps another sampler and records every event it is consulted on, in
/// consultation order. Stateful by construction: any double-consultation or
/// reordering shifts the inner sampler's stream and the recorded sequence.
class RecordingSampler final : public Sampler {
public:
  explicit RecordingSampler(std::unique_ptr<Sampler> Inner)
      : Inner(std::move(Inner)) {}

  bool shouldSample(const Event &E) override {
    Consulted.push_back(E);
    bool Decision = Inner->shouldSample(E);
    Decisions.push_back(Decision);
    return Decision;
  }

  std::string name() const override {
    return "recording(" + Inner->name() + ")";
  }

  std::vector<Event> Consulted;
  std::vector<bool> Decisions;

private:
  std::unique_ptr<Sampler> Inner;
};

/// A mid-sized trace with every event kind (accesses, locks, fork/join,
/// atomics) so "never consulted for synchronization" actually bites.
Trace testTrace() { return generateSuiteTrace("bufwriter", 0.1, 11); }

std::vector<Event> accessEventsInOrder(const Trace &T) {
  std::vector<Event> Out;
  for (const Event &E : T)
    if (isAccess(E.Kind))
      Out.push_back(E);
  return Out;
}

/// Feeds T through a session in \p Step-sized spans with \p Workers lane
/// workers, using a RecordingSampler around periodic(3), and returns the
/// consultation log plus the session result.
std::pair<RecordingSampler, api::SessionResult>
feed(const Trace &T, size_t Step, size_t Workers, bool PerEventShim = false) {
  api::SessionConfig Cfg;
  Cfg.Engines = {EngineKind::SamplingO, EngineKind::SamplingNaive};
  Cfg.NumWorkers = Workers;

  RecordingSampler Rec(std::make_unique<PeriodicSampler>(3));
  api::AnalysisSession Session(Cfg);
  Session.withSampler(Rec);
  EXPECT_TRUE(Session.begin(T.numThreads()));
  const std::vector<Event> &Events = T.events();
  if (PerEventShim) {
    for (const Event &E : Events)
      Session.process(E);
  } else {
    for (size_t I = 0; I < Events.size(); I += Step)
      Session.process(std::span<const Event>(
          Events.data() + I, std::min(Step, Events.size() - I)));
  }
  api::SessionResult R = Session.finish();
  return {std::move(Rec), std::move(R)};
}

} // namespace

TEST(SamplerStream, ConsultedOncePerAccessInTraceOrderAcrossBatchSizes) {
  Trace T = testTrace();
  std::vector<Event> Expected = accessEventsInOrder(T);
  ASSERT_FALSE(Expected.empty());
  ASSERT_LT(Expected.size(), T.size()); // Sync events exist to skip.

  // Batch sizes straddling every boundary shape: single events, sizes
  // coprime to the trace length, and one giant span.
  for (size_t Step : {size_t(1), size_t(3), size_t(17), size_t(4096),
                      T.size()}) {
    SCOPED_TRACE("step=" + std::to_string(Step));
    auto [Rec, R] = feed(T, Step, /*Workers=*/0);
    // Exactly once per access — never zero, never per-lane — in order.
    EXPECT_EQ(Rec.Consulted, Expected);
    // And the decisions actually reached the lanes: periodic(3) samples
    // ceil(N/3) accesses, identically in both lanes.
    uint64_t Sampled = 0;
    for (bool D : Rec.Decisions)
      Sampled += D;
    ASSERT_EQ(R.Engines.size(), 2u);
    EXPECT_EQ(R.Engines[0].SampleSize, Sampled);
    EXPECT_EQ(R.Engines[0].Stats.SampledAccesses, Sampled);
    EXPECT_EQ(R.Engines[1].Stats.SampledAccesses, Sampled);
  }
}

TEST(SamplerStream, PerEventShimConsultsIdentically) {
  Trace T = testTrace();
  std::vector<Event> Expected = accessEventsInOrder(T);
  auto [Rec, R] = feed(T, /*Step=*/1, /*Workers=*/0, /*PerEventShim=*/true);
  EXPECT_EQ(Rec.Consulted, Expected);
  EXPECT_EQ(R.EventsProcessed, T.size());
}

TEST(SamplerStream, ParallelLanesNeverTouchTheSampler) {
  // With K lanes on worker threads, a buggy implementation that let lanes
  // re-consult the sampler would multiply (or reorder) consultations. The
  // stream must stay exactly one-per-access, in trace order, drawn on the
  // ingest thread.
  Trace T = testTrace();
  std::vector<Event> Expected = accessEventsInOrder(T);
  auto [SeqRec, SeqR] = feed(T, /*Step=*/777, /*Workers=*/0);
  for (size_t Workers : {size_t(1), size_t(2), size_t(8)}) {
    SCOPED_TRACE("workers=" + std::to_string(Workers));
    auto [Rec, R] = feed(T, /*Step=*/777, Workers);
    EXPECT_EQ(Rec.Consulted, Expected);
    EXPECT_EQ(Rec.Decisions, SeqRec.Decisions);
    EXPECT_TRUE(api::stripTiming(R) == api::stripTiming(SeqR));
  }
}

TEST(SamplerStream, BatchBoundariesDoNotShiftAStatefulSampler) {
  // periodic(3) keys decisions off the running access count alone; if the
  // session ever consulted per-batch state (reset, double-draw at span
  // edges), differently-chopped ingestion would select different samples.
  Trace T = testTrace();
  auto [RecA, A] = feed(T, /*Step=*/5, /*Workers=*/0);
  auto [RecB, B] = feed(T, /*Step=*/1009, /*Workers=*/2);
  EXPECT_EQ(RecA.Decisions, RecB.Decisions);
  EXPECT_TRUE(api::stripTiming(A) == api::stripTiming(B));
}
