//===- tests/WorkBoundTest.cpp - Complexity-bound tests --------------------==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks the asymptotic claims of the paper as concrete counter bounds:
///  - Lemma 8: SO performs O(|S| T) deep copies and O(|S| T^2) + O(N)
///    traversal work; its timestamping work does not scale with the trace
///    length N or the number of locks L when |S| is fixed.
///  - Lemma 7 observation: SU's thread/lock clocks change at most |S| T
///    times, so processed acquires are bounded by |S| T^2 and processed
///    releases by |S| T L.
///  - ST by contrast pays a full clock op for every sync event.
///
//===----------------------------------------------------------------------===//

#include "sampletrack/detectors/DetectorFactory.h"
#include "sampletrack/rapid/Engine.h"
#include "sampletrack/trace/TraceGen.h"

#include <gtest/gtest.h>

using namespace sampletrack;

namespace {

/// Generates a trace and marks exactly the accesses chosen by a periodic
/// schedule so |S| is controlled precisely.
Trace markedPeriodic(size_t NumEvents, size_t NumLocks, size_t TargetSamples,
                     uint64_t Seed) {
  GenConfig C;
  C.NumThreads = 8;
  C.NumLocks = NumLocks;
  C.NumVars = 256;
  C.NumEvents = NumEvents;
  C.Seed = Seed;
  Trace T = generateWorkload(C);
  size_t Accesses = T.countKind(OpKind::Read) + T.countKind(OpKind::Write);
  size_t Period = std::max<size_t>(1, Accesses / std::max<size_t>(
                                                     1, TargetSamples));
  size_t Counter = 0;
  for (size_t I = 0; I < T.size(); ++I)
    if (isAccess(T[I].Kind))
      T[I].Marked = (Counter++ % Period) == 0;
  return T;
}

Metrics runMarked(const Trace &T, EngineKind K) {
  std::unique_ptr<Detector> D = createDetector(K, T.numThreads());
  MarkedSampler S;
  rapid::run(T, *D, S);
  return D->metrics();
}

} // namespace

TEST(WorkBounds, SoDeepCopiesBoundedBySampleTimesThreads) {
  for (uint64_t Seed : {1u, 2u, 3u}) {
    Trace T = markedPeriodic(40000, 16, 60, Seed);
    uint64_t S = T.countMarked();
    uint64_t NT = T.numThreads();
    Metrics M = runMarked(T, EngineKind::SamplingO);
    // Each deep copy requires a prior change to some thread's list; lists
    // change at most |S| T times overall (plus T initial epochs).
    EXPECT_LE(M.DeepCopies, S * NT + NT) << "seed " << Seed;
  }
}

TEST(WorkBounds, SoTraversalWorkBoundedBySampleTimesThreadsSquared) {
  for (uint64_t Seed : {1u, 2u, 3u}) {
    Trace T = markedPeriodic(40000, 16, 60, Seed);
    uint64_t S = T.countMarked();
    uint64_t NT = T.numThreads();
    Metrics M = runMarked(T, EngineKind::SamplingO);
    // O(|S| T^2) with a small constant; the +T^2 absorbs fork/join edges
    // and startup.
    EXPECT_LE(M.EntriesTraversed, 4 * S * NT * NT + NT * NT)
        << "seed " << Seed;
    // Each (acquirer, releaser) pair processes at most one acquire per
    // version of the releaser's clock, and versions number O(|S|): the
    // total is O(|S| T^2), not O(|S| T).
    EXPECT_LE(M.AcquiresProcessed, 2 * S * NT * NT + NT) << "seed " << Seed;
  }
}

TEST(WorkBounds, SoWorkIndependentOfTraceLength) {
  // Same structure, fixed |S| = ~60, trace 4x longer: SO's timestamping
  // work must stay in the same ballpark while ST's quadruples.
  Trace Short = markedPeriodic(30000, 16, 60, 7);
  Trace Long = markedPeriodic(120000, 16, 60, 7);
  ASSERT_NEAR(static_cast<double>(Short.countMarked()),
              static_cast<double>(Long.countMarked()), 8.0);

  Metrics SoShort = runMarked(Short, EngineKind::SamplingO);
  Metrics SoLong = runMarked(Long, EngineKind::SamplingO);
  Metrics StShort = runMarked(Short, EngineKind::SamplingNaive);
  Metrics StLong = runMarked(Long, EngineKind::SamplingNaive);

  double SoGrowth = static_cast<double>(SoLong.totalTimestampingWork() + 1) /
                    static_cast<double>(SoShort.totalTimestampingWork() + 1);
  double StGrowth = static_cast<double>(StLong.totalTimestampingWork() + 1) /
                    static_cast<double>(StShort.totalTimestampingWork() + 1);
  EXPECT_LT(SoGrowth, 2.0) << "SO work should not scale with N";
  EXPECT_GT(StGrowth, 3.0) << "ST work scales linearly with N";
}

TEST(WorkBounds, SoWorkIndependentOfLockCount) {
  // |S| fixed, 4 locks vs 64 locks: SO's traversal work must not grow with
  // L (Lemma 8's improvement over Lemma 7).
  Trace FewLocks = markedPeriodic(60000, 4, 60, 9);
  Trace ManyLocks = markedPeriodic(60000, 64, 60, 9);
  Metrics SoFew = runMarked(FewLocks, EngineKind::SamplingO);
  Metrics SoMany = runMarked(ManyLocks, EngineKind::SamplingO);
  double Growth = static_cast<double>(SoMany.totalTimestampingWork() + 1) /
                  static_cast<double>(SoFew.totalTimestampingWork() + 1);
  EXPECT_LT(Growth, 2.5) << "SO work should not scale with L";
}

TEST(WorkBounds, StPaysFullOpPerSyncEvent) {
  Trace T = markedPeriodic(30000, 16, 60, 4);
  Metrics M = runMarked(T, EngineKind::SamplingNaive);
  uint64_t Syncs = M.AcquiresTotal + M.ReleasesTotal;
  EXPECT_GE(M.FullClockOps, Syncs) << "ST never skips";
  EXPECT_EQ(M.AcquiresSkipped, 0u);
  EXPECT_EQ(M.ReleasesSkipped, 0u);
}

TEST(WorkBounds, MetricAccountingInvariants) {
  for (EngineKind K : {EngineKind::SamplingU, EngineKind::SamplingO,
                       EngineKind::SamplingNaive, EngineKind::Djit,
                       EngineKind::FastTrack, EngineKind::TreeClockFull}) {
    Trace T = markedPeriodic(20000, 8, 200, 11);
    Metrics M = runMarked(T, K);
    EXPECT_EQ(M.AcquiresSkipped + M.AcquiresProcessed, M.AcquiresTotal)
        << engineKindName(K);
    EXPECT_LE(M.ReleasesSkipped + M.ReleasesProcessed, M.ReleasesTotal + 1)
        << engineKindName(K);
    EXPECT_LE(M.EntriesTraversed,
              M.TraversalOpportunities + M.AcquiresProcessed)
        << engineKindName(K);
  }
}

TEST(WorkBounds, SkipRatesRiseAsSamplingRateFalls) {
  // The qualitative Fig. 6(b)/Fig. 7 trend: fewer samples => more skips.
  GenConfig C;
  C.NumThreads = 8;
  C.NumLocks = 8;
  C.NumEvents = 60000;
  C.Seed = 21;
  Trace Base = generateWorkload(C);

  double PrevSkipRatio = -1.0;
  for (double Rate : {1.0, 0.1, 0.01, 0.001}) {
    Trace T = Base;
    rapid::markTrace(T, Rate, 77);
    Metrics M = runMarked(T, EngineKind::SamplingU);
    double Ratio = static_cast<double>(M.AcquiresSkipped) /
                   static_cast<double>(M.AcquiresTotal);
    EXPECT_GE(Ratio, PrevSkipRatio - 0.05)
        << "skip ratio should not fall as the rate drops (rate " << Rate
        << ")";
    PrevSkipRatio = Ratio;
  }
}
