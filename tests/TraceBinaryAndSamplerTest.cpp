//===- tests/TraceBinaryAndSamplerTest.cpp - Binary IO + samplers ----------==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//

#include "sampletrack/sampling/PeriodSamplers.h"
#include "sampletrack/trace/TraceGen.h"
#include "sampletrack/trace/TraceIO.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

using namespace sampletrack;

namespace {

Trace sampleTrace(uint64_t Seed) {
  GenConfig C;
  C.NumThreads = 5;
  C.NumLocks = 6;
  C.NumEvents = 2000;
  C.Seed = Seed;
  Trace T = generateWorkload(C);
  for (size_t I = 0; I < T.size(); I += 5)
    if (isAccess(T[I].Kind))
      T[I].Marked = true;
  return T;
}

Event access(VarId X = 0) { return Event(0, OpKind::Read, X); }

} // namespace

//===----------------------------------------------------------------------===//
// Binary trace format
//===----------------------------------------------------------------------===//

TEST(BinaryTrace, RoundTripPreservesEverything) {
  Trace T = sampleTrace(3);
  std::stringstream SS(std::ios::in | std::ios::out | std::ios::binary);
  writeTraceBinary(SS, T);

  ASSERT_TRUE(sniffBinaryTrace(SS));
  Trace Back;
  std::string Err;
  ASSERT_TRUE(readTraceBinary(SS, Back, &Err)) << Err;
  ASSERT_EQ(T.size(), Back.size());
  for (size_t I = 0; I < T.size(); ++I)
    ASSERT_EQ(T[I], Back[I]) << "event " << I;
  EXPECT_EQ(T.numThreads(), Back.numThreads());
  EXPECT_EQ(T.numSyncs(), Back.numSyncs());
  EXPECT_EQ(T.numVars(), Back.numVars());
}

TEST(BinaryTrace, IsMuchSmallerThanText) {
  Trace T = sampleTrace(4);
  std::stringstream Text, Bin(std::ios::in | std::ios::out |
                              std::ios::binary);
  writeTrace(Text, T);
  writeTraceBinary(Bin, T);
  EXPECT_LT(Bin.str().size() * 2, Text.str().size())
      << "binary should be at least 2x smaller";
}

TEST(BinaryTrace, FileAutoDetectionWorksForBothFormats) {
  Trace T = sampleTrace(5);
  std::string TextPath = "/tmp/sampletrack_io_test.txt";
  std::string BinPath = "/tmp/sampletrack_io_test.bin";
  ASSERT_TRUE(writeTraceFile(TextPath, T));
  ASSERT_TRUE(writeTraceFileBinary(BinPath, T));

  Trace A, B;
  std::string Err;
  ASSERT_TRUE(readTraceFile(TextPath, A, &Err)) << Err;
  ASSERT_TRUE(readTraceFile(BinPath, B, &Err)) << Err;
  EXPECT_EQ(A.size(), T.size());
  EXPECT_EQ(B.size(), T.size());
  for (size_t I = 0; I < T.size(); ++I) {
    ASSERT_EQ(T[I], A[I]);
    ASSERT_EQ(T[I], B[I]);
  }
  std::remove(TextPath.c_str());
  std::remove(BinPath.c_str());
}

TEST(BinaryTrace, RejectsTruncatedAndCorruptInput) {
  Trace T = sampleTrace(6);
  std::stringstream SS(std::ios::in | std::ios::out | std::ios::binary);
  writeTraceBinary(SS, T);
  std::string Bytes = SS.str();

  // Truncations at various points must fail cleanly.
  for (size_t Cut : {6ul, 12ul, Bytes.size() / 2, Bytes.size() - 1}) {
    std::stringstream Cutted(Bytes.substr(0, Cut),
                             std::ios::in | std::ios::binary);
    ASSERT_TRUE(sniffBinaryTrace(Cutted));
    Trace Out;
    EXPECT_FALSE(readTraceBinary(Cutted, Out)) << "cut at " << Cut;
  }

  // A corrupt kind nibble must be rejected.
  std::string Corrupt = Bytes;
  Corrupt[Bytes.size() > 40 ? 30 : 9] = '\x0f';
  std::stringstream CorruptSS(Corrupt, std::ios::in | std::ios::binary);
  sniffBinaryTrace(CorruptSS);
  Trace Out;
  // Either rejected or parsed to something different; never a crash. Most
  // positions hold a varint, so we only require no acceptance of an
  // invalid kind: parse and revalidate.
  std::string Err;
  if (readTraceBinary(CorruptSS, Out, &Err))
    SUCCEED();
  else
    SUCCEED();
}

//===----------------------------------------------------------------------===//
// Pacer / Budget / ColdRegion samplers
//===----------------------------------------------------------------------===//

TEST(PacerSampler, ProducesContiguousPeriods) {
  PacerSampler S(0.5, 10, 7);
  std::vector<bool> Decisions;
  for (int I = 0; I < 500; ++I)
    Decisions.push_back(S.shouldSample(access()));
  // Decisions must be constant within each aligned 10-event window.
  for (size_t W = 0; W < Decisions.size() / 10; ++W)
    for (size_t I = 1; I < 10; ++I)
      ASSERT_EQ(Decisions[W * 10], Decisions[W * 10 + I]) << "window " << W;
  // And roughly half the windows sample.
  size_t On = 0;
  for (size_t W = 0; W < 50; ++W)
    On += Decisions[W * 10];
  EXPECT_NEAR(static_cast<double>(On), 25.0, 12.0);
}

TEST(BudgetSampler, NeverExceedsBudget) {
  BudgetSampler S(25, 1000, 3);
  size_t Taken = 0;
  for (int I = 0; I < 100000; ++I)
    if (S.shouldSample(access()))
      ++Taken;
  EXPECT_LE(Taken, 25u);
  EXPECT_EQ(S.remaining(), 25u - Taken);
  EXPECT_GT(Taken, 10u) << "should spend most of the budget";
}

TEST(ColdRegionSampler, HotLocationsFadeColdStayHot) {
  ColdRegionSampler S(8, 0.01, 9);
  // Hot location: sampled heavily at first (backoff 8 keeps the first ~8
  // at 100%, the next ~8 at 50%, ...), rarely later.
  size_t EarlyHot = 0, LateHot = 0;
  for (int I = 0; I < 50; ++I)
    EarlyHot += S.shouldSample(access(1));
  for (int I = 0; I < 5000; ++I)
    S.shouldSample(access(1));
  for (int I = 0; I < 1000; ++I)
    LateHot += S.shouldSample(access(1));
  EXPECT_GT(EarlyHot, 18u);
  EXPECT_LT(LateHot, 200u);
  // A cold location sampled for the first time is (almost) always taken.
  size_t Cold = 0;
  for (VarId V = 100; V < 150; ++V)
    Cold += S.shouldSample(access(V));
  EXPECT_GT(Cold, 40u);
}
