//===- tests/RuntimeAtomicsTest.cpp - Online A.2 synchronization -----------==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Online tests for the appendix A.2 synchronization paths: message passing
/// over release-store/acquire-load must order accesses (no false
/// positives), barriers built on release-join must order whole phases, and
/// removing the synchronization must surface the race.
///
//===----------------------------------------------------------------------===//

#include "sampletrack/runtime/Runtime.h"

#include <gtest/gtest.h>

#include <thread>

using namespace sampletrack;
using namespace sampletrack::rt;

namespace {

Config makeConfig(Mode M, double Rate = 1.0) {
  Config C;
  C.AnalysisMode = M;
  C.SamplingRate = Rate;
  C.MaxThreads = 16;
  C.Seed = 3;
  return C;
}

class AnalysisModes : public ::testing::TestWithParam<Mode> {};

} // namespace

TEST_P(AnalysisModes, MessagePassingIsRaceFree) {
  Mode M = GetParam();
  Runtime Rt(makeConfig(M));
  AtomicFlag Flag(Rt);
  uint64_t Payload = 0;
  uint64_t Addr = reinterpret_cast<uint64_t>(&Payload);

  ThreadId A = Rt.registerThread();
  ThreadId B = Rt.registerThread();
  Rt.onFork(0, A);
  Rt.onFork(0, B);

  std::thread Producer([&] {
    Rt.onWrite(A, Addr);
    Payload = 42;
    Flag.store(A, 1); // Release the payload.
  });
  std::thread Consumer([&] {
    while (Flag.load(B) == 0) // Acquire; spin until published.
      std::this_thread::yield();
    Rt.onRead(B, Addr);
    EXPECT_EQ(Payload, 42u);
  });
  Producer.join();
  Consumer.join();
  Rt.onJoin(0, A);
  Rt.onJoin(0, B);

  EXPECT_EQ(Rt.raceCount(), 0u)
      << "false positive across release/acquire in mode " << modeName(M);
}

TEST_P(AnalysisModes, BarrierOrdersPhases) {
  Mode M = GetParam();
  Runtime Rt(makeConfig(M));
  constexpr size_t Workers = 4;
  Barrier Bar(Rt, Workers);
  // Each worker writes its own slot in phase 1, then reads every slot in
  // phase 2: race-free iff the barrier establishes all-to-all ordering.
  uint64_t Slots[Workers] = {0, 0, 0, 0};

  std::vector<ThreadId> Tids;
  for (size_t W = 0; W < Workers; ++W) {
    ThreadId T = Rt.registerThread();
    Rt.onFork(0, T);
    Tids.push_back(T);
  }
  std::vector<std::thread> Threads;
  for (size_t W = 0; W < Workers; ++W) {
    Threads.emplace_back([&, W] {
      ThreadId T = Tids[W];
      Rt.onWrite(T, reinterpret_cast<uint64_t>(&Slots[W]));
      Slots[W] = W + 1;
      Bar.arriveAndWait(T);
      uint64_t Sum = 0;
      for (size_t V = 0; V < Workers; ++V) {
        Rt.onRead(T, reinterpret_cast<uint64_t>(&Slots[V]));
        Sum += Slots[V];
      }
      EXPECT_EQ(Sum, Workers * (Workers + 1) / 2);
    });
  }
  for (size_t W = 0; W < Workers; ++W) {
    Threads[W].join();
    Rt.onJoin(0, Tids[W]);
  }

  EXPECT_EQ(Rt.raceCount(), 0u)
      << "false positive across barrier in mode " << modeName(M);
}

TEST_P(AnalysisModes, UnsynchronizedMessagePassingRaces) {
  // Same as MessagePassingIsRaceFree but WITHOUT instrumenting the flag:
  // the analysis must now see the payload accesses as racing.
  Mode M = GetParam();
  if (M == Mode::NT || M == Mode::ET)
    GTEST_SKIP() << "no analysis in this mode";
  Runtime Rt(makeConfig(M));
  std::atomic<uint64_t> Flag{0};
  uint64_t Payload = 0;
  uint64_t Addr = reinterpret_cast<uint64_t>(&Payload);

  ThreadId A = Rt.registerThread();
  ThreadId B = Rt.registerThread();
  Rt.onFork(0, A);
  Rt.onFork(0, B);
  std::thread Producer([&] {
    Rt.onWrite(A, Addr);
    Payload = 42;
    Flag.store(1, std::memory_order_release);
  });
  std::thread Consumer([&] {
    while (Flag.load(std::memory_order_acquire) == 0)
      std::this_thread::yield();
    Rt.onRead(B, Addr); // The runtime saw no sync edge: a race.
  });
  Producer.join();
  Consumer.join();
  Rt.onJoin(0, A);
  Rt.onJoin(0, B);

  EXPECT_GE(Rt.raceCount(), 1u) << modeName(M);
}

TEST_P(AnalysisModes, RepeatedBarrierRoundsStayRaceFree) {
  Mode M = GetParam();
  Runtime Rt(makeConfig(M, /*Rate=*/0.5));
  constexpr size_t Workers = 3;
  constexpr size_t Rounds = 50;
  Barrier Bar(Rt, Workers);
  uint64_t Grid[2][Workers] = {};

  std::vector<ThreadId> Tids;
  for (size_t W = 0; W < Workers; ++W) {
    ThreadId T = Rt.registerThread();
    Rt.onFork(0, T);
    Tids.push_back(T);
  }
  std::vector<std::thread> Threads;
  for (size_t W = 0; W < Workers; ++W) {
    Threads.emplace_back([&, W] {
      ThreadId T = Tids[W];
      for (size_t R = 0; R < Rounds; ++R) {
        // Read a neighbor's previous-round cell, write our current cell.
        if (R > 0) {
          size_t N = (W + 1) % Workers;
          Rt.onRead(T, reinterpret_cast<uint64_t>(&Grid[(R + 1) % 2][N]));
        }
        Rt.onWrite(T, reinterpret_cast<uint64_t>(&Grid[R % 2][W]));
        Grid[R % 2][W] = R;
        Bar.arriveAndWait(T);
      }
    });
  }
  for (size_t W = 0; W < Workers; ++W) {
    Threads[W].join();
    Rt.onJoin(0, Tids[W]);
  }
  EXPECT_EQ(Rt.raceCount(), 0u) << modeName(M);
}

INSTANTIATE_TEST_SUITE_P(Modes, AnalysisModes,
                         ::testing::Values(Mode::NT, Mode::ET, Mode::FT,
                                           Mode::ST, Mode::SU, Mode::SO),
                         [](const ::testing::TestParamInfo<Mode> &Info) {
                           return modeName(Info.param);
                         });
