//===- tests/JsonNumberTest.cpp - JSON number lexing and locale safety ----===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
// Two regressions pinned here:
//
// 1. The number lexer used to accept any run of digit/./e/+/- characters
//    and hand it to strtod — "1-2" parsed as 1, "1e+" as 1, "--" crashed
//    through as 0. It now lexes exactly the RFC 8259 grammar and carries
//    the offending byte position in the error.
//
// 2. Conversion used std::strtod, which honors LC_NUMERIC: under a
//    comma-decimal locale (de_DE, fr_FR, ...) "1.5" silently truncated to
//    1.0 — a wrong bench baseline, a wrong gate verdict. Conversion is now
//    locale-independent (std::from_chars, with a classic-locale stream
//    fallback for toolchains without floating-point from_chars).
//
//===----------------------------------------------------------------------===//

#include "sampletrack/support/Json.h"

#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <string>

using namespace sampletrack;
using support::JsonValue;

namespace {

double parseNumber(const std::string &Text) {
  JsonValue V;
  std::string Err;
  EXPECT_TRUE(JsonValue::parse(Text, V, &Err)) << Text << ": " << Err;
  EXPECT_TRUE(V.isNumber()) << Text;
  return V.Number;
}

std::string parseError(const std::string &Text) {
  JsonValue V;
  std::string Err;
  EXPECT_FALSE(JsonValue::parse(Text, V, &Err))
      << "'" << Text << "' should be rejected";
  return Err;
}

} // namespace

TEST(JsonNumber, AcceptsTheJsonGrammar) {
  EXPECT_EQ(parseNumber("0"), 0.0);
  EXPECT_EQ(parseNumber("-0"), 0.0);
  EXPECT_EQ(parseNumber("123"), 123.0);
  EXPECT_EQ(parseNumber("-17"), -17.0);
  EXPECT_EQ(parseNumber("1.5"), 1.5);
  EXPECT_EQ(parseNumber("0.0625"), 0.0625);
  EXPECT_EQ(parseNumber("-2.75e-3"), -2.75e-3);
  EXPECT_EQ(parseNumber("1E+10"), 1e10);
  EXPECT_EQ(parseNumber("9e2"), 900.0);
  // Inside containers too (the lexer must stop at the right byte).
  JsonValue V;
  std::string Err;
  ASSERT_TRUE(JsonValue::parse("[1.25, -3, 4e1]", V, &Err)) << Err;
  ASSERT_EQ(V.Array.size(), 3u);
  EXPECT_EQ(V.Array[0].Number, 1.25);
  EXPECT_EQ(V.Array[1].Number, -3.0);
  EXPECT_EQ(V.Array[2].Number, 40.0);
}

TEST(JsonNumber, RejectsWhatTheOldLexerSwallowed) {
  // Each of these slid through the old any-of-[0-9.eE+-] scan.
  parseError("1-2");  // Stray '-' after a complete number.
  parseError("1+1");
  parseError("1e+");  // Exponent with no digits.
  parseError("1e");
  parseError("1.");   // Decimal point with no fraction digits.
  parseError(".5");   // No integer part.
  parseError("+1");   // JSON forbids a leading plus.
  parseError("01");   // Leading zeros.
  parseError("00");
  parseError("-");    // Sign alone.
  parseError("--1");
  parseError("1.2.3");
  parseError("1e2e3");
}

TEST(JsonNumber, ErrorsCarryBytePositions) {
  EXPECT_NE(parseError("[1, 1e+]").find("(at byte"), std::string::npos);
  EXPECT_NE(parseError("01").find("(at byte"), std::string::npos);
  // The position points into the bad token, not at byte 0.
  std::string Err = parseError("{\"x\": 1.}");
  EXPECT_NE(Err.find("(at byte"), std::string::npos) << Err;
  EXPECT_EQ(Err.find("(at byte 0)"), std::string::npos) << Err;
}

TEST(JsonNumber, ParsesIndependentlyOfLcNumeric) {
  // Force a comma-decimal locale if the host has one installed; the parse
  // result must not change. (strtod under de_DE reads "1.5" as 1.0.)
  const char *Candidates[] = {"de_DE.UTF-8", "de_DE.utf8", "de_DE",
                              "fr_FR.UTF-8", "fr_FR.utf8", "fr_FR",
                              "es_ES.UTF-8", "it_IT.UTF-8"};
  const char *Old = std::setlocale(LC_NUMERIC, nullptr);
  std::string Saved = Old ? Old : "C";
  const char *Forced = nullptr;
  for (const char *Cand : Candidates)
    if (std::setlocale(LC_NUMERIC, Cand)) {
      Forced = Cand;
      break;
    }
  if (!Forced)
    GTEST_SKIP() << "no comma-decimal locale installed on this host; "
                    "grammar coverage above still applies";
  // Sanity: the locale really uses ',' — otherwise the exercise is moot.
  struct lconv *Lc = std::localeconv();
  bool CommaDecimal = Lc && Lc->decimal_point && Lc->decimal_point[0] == ',';
  double Got = parseNumber("1.5");
  double GotExp = parseNumber("2.5e-1");
  std::setlocale(LC_NUMERIC, Saved.c_str());
  if (!CommaDecimal)
    GTEST_SKIP() << "locale " << Forced << " does not use ',' decimals";
  EXPECT_EQ(Got, 1.5) << "number parse truncated under " << Forced;
  EXPECT_EQ(GotExp, 0.25);
}

TEST(JsonNumber, DocumentsStillRoundTrip) {
  // A shape like the BENCH_*.json rows this parser actually feeds.
  const char *Doc = "{\"bench\": \"fig5b\", \"scale\": 0.25, "
                    "\"rows\": [{\"ns\": 12693491, \"rate\": 0.003}]}";
  JsonValue V;
  std::string Err;
  ASSERT_TRUE(JsonValue::parse(Doc, V, &Err)) << Err;
  EXPECT_EQ(V.getNumber("scale", -1), 0.25);
  const JsonValue *Rows = V.get("rows");
  ASSERT_NE(Rows, nullptr);
  ASSERT_EQ(Rows->Array.size(), 1u);
  EXPECT_EQ(Rows->Array[0].getNumber("ns", 0), 12693491.0);
  EXPECT_EQ(Rows->Array[0].getNumber("rate", 0), 0.003);
}
