//===- tests/ExploreTest.cpp - Schedule exploration ------------------------==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The schedule-exploration subsystem's contract tests: exhaustive
/// enumeration is complete (closed-form counts), the cooperative scheduler
/// respects enabledness (locks serialize, forks gate, deadlocks are counted
/// and never emitted), exploration is deterministic in the seed down to the
/// report's bytes, and — the per-schedule correctness gate — every engine's
/// deduplicated race set matches the HBClosureOracle's on every explored
/// interleaving.
///
/// Schedule budgets scale with SAMPLETRACK_EXPLORE_SCHEDULES (the `explore`
/// ctest label): CI smoke keeps the defaults, nightly goes deep.
///
//===----------------------------------------------------------------------===//

#include "sampletrack/api/Exploration.h"
#include "sampletrack/detectors/HBClosureOracle.h"
#include "sampletrack/trace/TraceGen.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>

using namespace sampletrack;
using namespace sampletrack::explore;

namespace {

/// Schedule budget for one exploration loop: \p Default, unless
/// SAMPLETRACK_EXPLORE_SCHEDULES overrides it (nightly CI goes deeper).
size_t exploreSchedules(size_t Default) {
  if (const char *V = std::getenv("SAMPLETRACK_EXPLORE_SCHEDULES"))
    return std::max(1, std::atoi(V));
  return Default;
}

/// Drains a scheduler into a list of choice sequences.
std::vector<std::vector<ThreadId>> enumerate(const Workload &W,
                                             const ExploreConfig &C) {
  Scheduler S(W, C);
  std::vector<std::vector<ThreadId>> Out;
  Schedule Sch;
  while (S.next(Sch))
    Out.push_back(Sch.Choices);
  return Out;
}

/// 2 threads x 3 lock-free writes each: C(6,3) = 20 interleavings.
Workload lockFreePair() {
  Workload W;
  ThreadId A = W.addThread(), B = W.addThread();
  for (int I = 0; I < 3; ++I) {
    W.write(A, 0);
    W.write(B, 1);
  }
  return W;
}

/// The schedule-dependent race: T0 publishes V0 via a release-store that T1
/// may or may not acquire-load before its own write. Of the C(4,2) = 6
/// interleavings, exactly the one executing st before ld is race-free.
Workload atomicPublishPair() {
  Workload W;
  ThreadId A = W.addThread(), B = W.addThread();
  W.write(A, 0);
  W.releaseStore(A, 0);
  W.acquireLoad(B, 0);
  W.write(B, 0);
  return W;
}

ExploreConfig exhaustiveAll() {
  ExploreConfig C;
  C.Mode = ExploreMode::Exhaustive;
  C.MaxSchedules = 0;
  return C;
}

} // namespace

//===----------------------------------------------------------------------===//
// Exhaustive enumeration: completeness and enabledness.
//===----------------------------------------------------------------------===//

TEST(ExhaustiveMode, LockFreeCountMatchesClosedForm) {
  Workload W = lockFreePair();
  EXPECT_EQ(W.unconstrainedInterleavingCount(), 20u);
  EXPECT_FALSE(W.hasBlockingOps());

  std::vector<std::vector<ThreadId>> All = enumerate(W, exhaustiveAll());
  EXPECT_EQ(All.size(), 20u);
  // All distinct, all complete, all well-formed.
  std::set<std::vector<ThreadId>> Distinct(All.begin(), All.end());
  EXPECT_EQ(Distinct.size(), All.size());
  for (const std::vector<ThreadId> &Choices : All) {
    ASSERT_EQ(Choices.size(), W.numOps());
    Trace T = Scheduler::materialize(W, Choices);
    std::string Err;
    EXPECT_TRUE(T.validate(&Err)) << Err;
  }

  // Three threads x two ops: 6! / (2! 2! 2!) = 90.
  Workload W3;
  for (ThreadId T = 0; T < 3; ++T) {
    W3.addThread();
    W3.write(T, T);
    W3.read(T, T);
  }
  EXPECT_EQ(W3.unconstrainedInterleavingCount(), 90u);
  EXPECT_EQ(enumerate(W3, exhaustiveAll()).size(), 90u);
}

TEST(ExhaustiveMode, MutexCriticalSectionsSerialize) {
  // Two threads contending for one lock around their whole program: the
  // only schedule freedom is who enters first.
  Workload W;
  ThreadId A = W.addThread(), B = W.addThread();
  for (ThreadId T : {A, B}) {
    W.acquire(T, 0);
    W.write(T, 0);
    W.release(T, 0);
  }
  std::vector<std::vector<ThreadId>> All = enumerate(W, exhaustiveAll());
  EXPECT_EQ(All.size(), 2u);
  for (const std::vector<ThreadId> &Choices : All) {
    Trace T = Scheduler::materialize(W, Choices);
    std::string Err;
    EXPECT_TRUE(T.validate(&Err)) << Err;
  }
}

TEST(ExhaustiveMode, ForkJoinGatesLeaveOneSchedule) {
  // Parent forks the child, joins it, then writes: the child's write is
  // pinned between fork and join, so exactly one interleaving exists.
  Workload W;
  ThreadId P = W.addThread(), C = W.addThread();
  W.fork(P, C);
  W.join(P, C);
  W.write(P, 0);
  W.write(C, 0);
  std::vector<std::vector<ThreadId>> All = enumerate(W, exhaustiveAll());
  ASSERT_EQ(All.size(), 1u);
  EXPECT_EQ(All[0], (std::vector<ThreadId>{P, C, P, P}));
  // And the join edge makes it race-free on every engine's reference.
  Trace T = Scheduler::materialize(W, All[0]);
  HBClosureOracle Oracle(T);
  EXPECT_TRUE(Oracle.declaredRaces(/*MarkedOnly=*/false).empty());
}

TEST(ExhaustiveMode, MaxSchedulesCapsEnumeration) {
  Workload W = lockFreePair();
  ExploreConfig C = exhaustiveAll();
  C.MaxSchedules = 5;
  EXPECT_EQ(enumerate(W, C).size(), 5u);
}

TEST(Scheduler, DeadlockedBranchesAreCountedNeverEmitted) {
  // Classic ABBA: each emitted schedule must fully serialize one thread's
  // nested section before the other enters both locks.
  Workload W;
  ThreadId A = W.addThread(), B = W.addThread();
  W.acquire(A, 0);
  W.acquire(A, 1);
  W.release(A, 1);
  W.release(A, 0);
  W.acquire(B, 1);
  W.acquire(B, 0);
  W.release(B, 0);
  W.release(B, 1);
  ASSERT_TRUE(W.validate());

  Scheduler S(W, exhaustiveAll());
  Schedule Sch;
  size_t Complete = 0;
  while (S.next(Sch)) {
    ++Complete;
    ASSERT_EQ(Sch.Choices.size(), W.numOps());
    Trace T = Scheduler::materialize(W, Sch.Choices);
    std::string Err;
    EXPECT_TRUE(T.validate(&Err)) << Err;
  }
  EXPECT_GT(Complete, 0u);
  EXPECT_GT(S.deadlocked(), 0u); // The ABBA branches dead-ended.

  // Random mode hits the same deadlocks; they consume budget, never emit.
  ExploreConfig RC;
  RC.Mode = ExploreMode::Random;
  RC.MaxSchedules = 50;
  Scheduler SR(W, RC);
  size_t Emitted = 0;
  while (SR.next(Sch))
    ++Emitted;
  EXPECT_EQ(SR.attempts(), 50u);
  EXPECT_EQ(Emitted + SR.deadlocked() + SR.duplicates(), SR.attempts());
}

//===----------------------------------------------------------------------===//
// Workload model: projection and static validation.
//===----------------------------------------------------------------------===//

TEST(ExploreWorkload, FromTraceIdentityScheduleReproducesTheTrace) {
  GenConfig G;
  G.NumThreads = 4;
  G.NumLocks = 3;
  G.NumEvents = 400;
  G.Seed = 97;
  Trace T = generateWorkload(G);
  ASSERT_TRUE(T.validate());

  Workload W = Workload::fromTrace(T);
  ASSERT_TRUE(W.validate());
  EXPECT_EQ(W.numOps(), T.size());
  EXPECT_EQ(W.numThreads(), T.numThreads());
  EXPECT_EQ(W.numSyncs(), T.numSyncs());
  EXPECT_EQ(W.numVars(), T.numVars());

  // The trace's own tid sequence is a schedule of its projection, and
  // materializing it reproduces the trace (modulo Marked bits).
  std::vector<ThreadId> Identity;
  Identity.reserve(T.size());
  for (const Event &E : T)
    Identity.push_back(E.Tid);
  Trace Back = Scheduler::materialize(W, Identity);
  ASSERT_EQ(Back.size(), T.size());
  for (size_t I = 0; I < T.size(); ++I) {
    EXPECT_EQ(Back[I].Tid, T[I].Tid);
    EXPECT_EQ(Back[I].Kind, T[I].Kind);
    EXPECT_EQ(Back[I].Target, T[I].Target);
  }
}

TEST(ExploreWorkload, ValidateRejectsUnschedulablePrograms) {
  std::string Err;
  { // Re-acquiring a held lock self-deadlocks.
    Workload W;
    ThreadId A = W.addThread();
    W.acquire(A, 0);
    W.acquire(A, 0);
    EXPECT_FALSE(W.validate(&Err));
  }
  { // Releasing a lock never acquired.
    Workload W;
    ThreadId A = W.addThread();
    W.release(A, 0);
    EXPECT_FALSE(W.validate(&Err));
  }
  { // Forking the same thread twice.
    Workload W;
    ThreadId A = W.addThread(), B = W.addThread();
    W.fork(A, B);
    W.fork(A, B);
    EXPECT_FALSE(W.validate(&Err));
  }
  { // Self-join.
    Workload W;
    ThreadId A = W.addThread();
    W.join(A, A);
    EXPECT_FALSE(W.validate(&Err));
  }
  { // The happy path still validates.
    Workload W;
    ThreadId A = W.addThread(), B = W.addThread();
    W.fork(A, B);
    W.acquire(B, 0);
    W.write(B, 3);
    W.release(B, 0);
    W.join(A, B);
    EXPECT_TRUE(W.validate(&Err)) << Err;
  }
}

//===----------------------------------------------------------------------===//
// Determinism: the seed pins the schedule set and the report bytes.
//===----------------------------------------------------------------------===//

TEST(ExploreDeterminism, SameSeedSameScheduleSet) {
  Trace T = generateWorkload([] {
    GenConfig G;
    G.NumThreads = 5;
    G.NumEvents = 300;
    G.Seed = 11;
    return G;
  }());
  Workload W = Workload::fromTrace(T);

  for (ExploreMode M : {ExploreMode::Random, ExploreMode::Pct}) {
    ExploreConfig C;
    C.Mode = M;
    C.Seed = 1234;
    C.MaxSchedules = exploreSchedules(8);
    std::vector<std::vector<ThreadId>> A = enumerate(W, C);
    std::vector<std::vector<ThreadId>> B = enumerate(W, C);
    EXPECT_EQ(A, B) << exploreModeName(M);
    ASSERT_FALSE(A.empty());

    // A different seed walks a different region of the (astronomically
    // large) schedule space.
    C.Seed = 99;
    EXPECT_NE(A, enumerate(W, C)) << exploreModeName(M);
  }
}

TEST(ExploreDeterminism, ReportIsByteIdenticalAcrossRunsAndWorkerCounts) {
  Trace T = generateProducerConsumer(2, 2, 25, 77);
  Workload W = Workload::fromTrace(T);

  api::SessionConfig Cfg;
  Cfg.Sampling = api::SamplerKind::Bernoulli;
  Cfg.SamplingRate = 0.25;
  Cfg.Seed = 21;

  ExploreConfig EC;
  EC.Mode = ExploreMode::Random;
  EC.Seed = 5;
  EC.MaxSchedules = exploreSchedules(6);

  ExploreReport R1 = api::runExploration(Cfg, W, EC);
  ExploreReport R2 = api::runExploration(Cfg, W, EC);
  EXPECT_TRUE(R1 == R2);
  EXPECT_EQ(toJson(R1), toJson(R2));

  // Lane workers change nothing but wall clock — and the report carries no
  // wall clock, so it is bit-identical across worker counts too.
  api::SessionConfig Par = Cfg;
  Par.NumWorkers = 2;
  ExploreReport R3 = api::runExploration(Par, W, EC);
  EXPECT_EQ(toJson(R1), toJson(R3));
}

//===----------------------------------------------------------------------===//
// The injected schedule-dependent race, measured.
//===----------------------------------------------------------------------===//

TEST(ExploreCoverage, AtomicPublishRaceIsExposedByFiveOfSixSchedules) {
  Workload W = atomicPublishPair();
  api::SessionConfig Cfg;
  Cfg.Sampling = api::SamplerKind::Always;

  ExploreReport R = api::runExploration(Cfg, W, exhaustiveAll());
  EXPECT_EQ(R.SchedulesRun, 6u);
  EXPECT_EQ(R.DeadlockedSchedules, 0u);
  // Only the schedule that executes the release-store before the
  // acquire-load orders the two writes; every other interleaving races.
  EXPECT_EQ(R.SchedulesWithOracleRaces, 5u);
  size_t RaceFree = 0;
  for (const ScheduleOutcome &S : R.Schedules)
    RaceFree += S.OracleFullSignatures == 0 ? 1 : 0;
  EXPECT_EQ(RaceFree, 1u);

  // At full sampling every engine sees what the oracle sees, per schedule.
  EXPECT_TRUE(R.AllAgreed);
  ASSERT_EQ(R.Engines.size(), 6u);
  for (const EngineCoverage &E : R.Engines) {
    EXPECT_EQ(E.SchedulesChecked, 6u) << E.Engine;
    EXPECT_EQ(E.SchedulesAgreed, 6u) << E.Engine;
    EXPECT_EQ(E.OracleRacySchedules, 5u) << E.Engine;
    EXPECT_EQ(E.DetectedRacySchedules, 5u) << E.Engine;
    EXPECT_DOUBLE_EQ(E.DetectionRate, 1.0) << E.Engine;
  }
}

//===----------------------------------------------------------------------===//
// The per-schedule engine-vs-oracle gate, across workload families, modes,
// sampling rates and worker counts.
//===----------------------------------------------------------------------===//

TEST(ExploreAgreement, AllSixEnginesMatchOracleOnEverySchedule) {
  struct Case {
    const char *Name;
    Trace T;
  };
  std::vector<Case> Cases;
  Cases.push_back({"gen", generateWorkload([] {
                     GenConfig G;
                     G.NumThreads = 4;
                     G.NumLocks = 4;
                     G.NumEvents = 250;
                     G.UnprotectedFraction = 0.08;
                     G.Seed = 31;
                     return G;
                   }())});
  Cases.push_back({"prodcons", generateProducerConsumer(2, 2, 20, 32)});
  Cases.push_back({"forkjoin", generateForkJoin(2, 6, 33, true)});
  Cases.push_back({"pingpong", generatePingPong(3, 2, 15, 34)});
  Cases.push_back({"barrier", generateBarrierRounds(3, 3, 4, 35)});

  const size_t Budget = exploreSchedules(6);
  for (const Case &C : Cases) {
    ASSERT_TRUE(C.T.validate()) << C.Name;
    Workload W = Workload::fromTrace(C.T);
    for (ExploreMode M : {ExploreMode::Random, ExploreMode::Pct}) {
      for (double Rate : {0.15, 1.0}) {
        SCOPED_TRACE(std::string(C.Name) + ", " + exploreModeName(M) +
                     ", rate=" + std::to_string(Rate));
        api::SessionConfig Cfg;
        Cfg.Sampling = api::SamplerKind::Bernoulli;
        Cfg.SamplingRate = Rate;
        Cfg.Seed = 7;
        Cfg.NumWorkers = (M == ExploreMode::Pct) ? 2 : 0;

        ExploreConfig EC;
        EC.Mode = M;
        EC.Seed = 42;
        EC.MaxSchedules = Budget;

        ExploreReport R = api::runExploration(Cfg, W, EC);
        ASSERT_GT(R.SchedulesRun, 0u);
        EXPECT_TRUE(R.AllAgreed);
        for (const EngineCoverage &E : R.Engines) {
          EXPECT_EQ(E.SchedulesChecked, R.SchedulesRun) << E.Engine;
          EXPECT_EQ(E.SchedulesAgreed, E.SchedulesChecked) << E.Engine;
        }
      }
    }
  }
}

TEST(ExploreAgreement, TreeClockLaneIsGatedToMutexOnlySchedules) {
  api::SessionConfig Cfg;
  Cfg.Sampling = api::SamplerKind::Always;
  Cfg.Engines = {EngineKind::SamplingO, EngineKind::TreeClockFull};

  // Atomics present: the TC lane still runs, but has no exact reference,
  // so it is never checked (and never counted against agreement).
  Workload Atomic = atomicPublishPair();
  ExploreReport RA = api::runExploration(Cfg, Atomic, exhaustiveAll());
  ASSERT_EQ(RA.Engines.size(), 2u);
  EXPECT_EQ(RA.Engines[1].SchedulesChecked, 0u);
  EXPECT_EQ(RA.Engines[0].SchedulesChecked, RA.SchedulesRun);
  EXPECT_TRUE(RA.AllAgreed);

  // Mutex-only workloads check the TC lane on every schedule.
  Workload Mutex = Workload::fromTrace(generatePingPong(2, 2, 8, 9));
  ASSERT_FALSE(Mutex.hasAtomicOps());
  ExploreConfig EC;
  EC.Mode = ExploreMode::Random;
  EC.MaxSchedules = exploreSchedules(5);
  ExploreReport RM = api::runExploration(Cfg, Mutex, EC);
  ASSERT_GT(RM.SchedulesRun, 0u);
  EXPECT_EQ(RM.Engines[1].SchedulesChecked, RM.SchedulesRun);
  EXPECT_EQ(RM.Engines[1].SchedulesAgreed, RM.SchedulesRun);
  EXPECT_TRUE(RM.AllAgreed);
}
