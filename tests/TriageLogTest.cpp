//===- tests/TriageLogTest.cpp - Log-structured store tests ----------------==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
// The TriageLog directory format against an in-memory fault-injection
// filesystem: fresh creation, O(run) appends and byte-exact replay on
// reopen, legacy single-file migration, torn-tail truncation, the
// chop-every-prefix / flip-every-byte corruption sweeps over the journal,
// compaction (inline and three-phase, with concurrent appends carried
// across the generation swap), and append-failure poisoning. The
// crash-schedule sweeps (a fault at *every* operation index) live in
// CrashRecoveryTest.
//
//===----------------------------------------------------------------------===//

#include "sampletrack/support/FaultInjectionFs.h"
#include "sampletrack/triage/RaceSink.h"
#include "sampletrack/triage/TriageLog.h"
#include "sampletrack/triage/TriageStore.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace sampletrack;
using namespace sampletrack::triage;
using support::FaultInjectionFs;

namespace {

/// A deduplicated one-run summary with the given per-var hit counts.
TriageSummary runWith(
    std::initializer_list<std::pair<VarId, uint64_t>> VarHits) {
  RaceSink Sink;
  uint64_t Pos = 0;
  for (auto [Var, N] : VarHits)
    for (uint64_t I = 0; I < N; ++I)
      Sink.insert(RaceReport{Pos++, 1, Var, OpKind::Write});
  return Sink.summary();
}

/// A deterministic R-run ingest sequence with cross-run overlap (shared
/// var 7) so classification varies: New on first sight, Known while
/// consecutive, Regressed after a gap.
std::vector<TriageSummary> ingestSequence(size_t R) {
  std::vector<TriageSummary> Runs;
  for (size_t I = 0; I < R; ++I) {
    if (I % 3 == 2)
      Runs.push_back(runWith({{200, 1}})); // Var 7 goes quiet: a gap.
    else
      Runs.push_back(runWith({{static_cast<VarId>(100 + I * 10),
                               static_cast<uint64_t>(I) + 1},
                              {7, 2}}));
  }
  return Runs;
}

TriageLog::Options opts(FaultInjectionFs &Fs) {
  TriageLog::Options O;
  O.Fs = &Fs;
  return O;
}

} // namespace

TEST(TriageLog, FreshOpenCreatesAWellFormedDirectory) {
  FaultInjectionFs Fs;
  TriageLog L;
  std::string Err;
  ASSERT_TRUE(L.open("store", opts(Fs), &Err)) << Err;
  EXPECT_FALSE(L.inMemory());
  EXPECT_FALSE(L.poisoned());
  EXPECT_TRUE(L.recoveryNote().empty());
  EXPECT_EQ(L.generation(), 1u);
  EXPECT_EQ(L.store().runCount(), 0u);
  EXPECT_EQ(L.baseRunsAtOpen(), 0u);

  std::vector<std::string> Expected = {"store/CURRENT", "store/base-1.seg",
                                       "store/journal-1.log"};
  EXPECT_EQ(Fs.allFiles(), Expected);

  // Creation is durable: a power cut right after open loses nothing.
  Fs.powerCut();
  EXPECT_EQ(Fs.allFiles(), Expected);
  TriageLog Back;
  ASSERT_TRUE(Back.open("store", opts(Fs), &Err)) << Err;
  EXPECT_EQ(Back.store().runCount(), 0u);
}

TEST(TriageLog, AppendsMergeAndReopenReplaysByteIdentically) {
  FaultInjectionFs Fs;
  std::vector<TriageSummary> Runs = ingestSequence(6);

  TriageLog L;
  std::string Err;
  ASSERT_TRUE(L.open("store", opts(Fs), &Err)) << Err;

  // Reference: the same summaries merged into a plain store.
  TriageStore Ref;
  for (size_t I = 0; I < Runs.size(); ++I) {
    TriageStore::MergeResult Expected = Ref.mergeRun(Runs[I]);
    TriageStore::MergeResult Got;
    ASSERT_TRUE(L.appendRun(Runs[I], "run-" + std::to_string(I), 1, Got,
                            &Err))
        << "run " << I << ": " << Err;
    EXPECT_EQ(Got.NewSignatures, Expected.NewSignatures) << "run " << I;
    EXPECT_EQ(Got.KnownSignatures, Expected.KnownSignatures) << "run " << I;
    EXPECT_EQ(Got.RegressedSignatures, Expected.RegressedSignatures)
        << "run " << I;
  }
  EXPECT_TRUE(L.store() == Ref);
  EXPECT_GT(L.bytesAppended(), 0u);

  // Reopen (same directory, fresh object): the journal replay must rebuild
  // the identical store and the per-run metadata.
  TriageLog Back;
  ASSERT_TRUE(Back.open("store", opts(Fs), &Err)) << Err;
  EXPECT_TRUE(Back.recoveryNote().empty());
  EXPECT_TRUE(Back.store() == Ref);
  EXPECT_EQ(Back.store().serialize(), Ref.serialize());
  ASSERT_EQ(Back.journalRuns().size(), Runs.size());
  for (size_t I = 0; I < Runs.size(); ++I) {
    const TriageLog::RunInfo &Info = Back.journalRuns()[I];
    EXPECT_EQ(Info.Run, I + 1);
    EXPECT_EQ(Info.RunId, "run-" + std::to_string(I));
    EXPECT_EQ(Info.Content, 1);
    EXPECT_EQ(Info.Declared, Runs[I].RacesDeclared);
  }

  // And the replay classification matches the original merges.
  TriageStore Replay;
  for (size_t I = 0; I < Runs.size(); ++I) {
    TriageStore::MergeResult M = Replay.mergeRun(Runs[I]);
    EXPECT_EQ(Back.journalRuns()[I].Merge.NewSignatures, M.NewSignatures);
    EXPECT_EQ(Back.journalRuns()[I].Merge.RegressedSignatures,
              M.RegressedSignatures);
  }
}

TEST(TriageLog, InMemoryModeMergesWithoutAnyIo) {
  TriageLog L;
  EXPECT_TRUE(L.inMemory());
  TriageStore::MergeResult M;
  std::string Err;
  ASSERT_TRUE(L.appendRun(runWith({{10, 2}}), "id-1", 0, M, &Err)) << Err;
  EXPECT_EQ(M.NewSignatures, 1u);
  EXPECT_EQ(L.store().runCount(), 1u);
  EXPECT_EQ(L.bytesAppended(), 0u);
  EXPECT_FALSE(L.needsCompaction());
}

TEST(TriageLog, LegacySingleFileStoreMigratesInPlace) {
  FaultInjectionFs Fs;
  std::vector<TriageSummary> Runs = ingestSequence(4);
  TriageStore Legacy;
  for (const TriageSummary &S : Runs)
    Legacy.mergeRun(S);
  std::string Err;
  ASSERT_TRUE(Legacy.save(Fs, "store", &Err)) << Err;

  // Opening the file path as a TriageLog migrates: the file becomes the
  // first base segment, the original is kept as store.legacy.
  TriageLog L;
  ASSERT_TRUE(L.open("store", opts(Fs), &Err)) << Err;
  EXPECT_TRUE(L.store() == Legacy);
  EXPECT_EQ(L.baseRunsAtOpen(), Legacy.runCount());
  EXPECT_TRUE(L.journalRuns().empty());
  std::vector<std::string> Files = Fs.allFiles();
  EXPECT_NE(std::find(Files.begin(), Files.end(), "store.legacy"),
            Files.end())
      << "the pre-migration store was not preserved";
  EXPECT_NE(std::find(Files.begin(), Files.end(), "store/CURRENT"),
            Files.end());

  // The migrated store keeps ingesting and surviving reopens.
  TriageStore::MergeResult M;
  ASSERT_TRUE(L.appendRun(runWith({{7, 1}}), "post-migrate", 0, M, &Err))
      << Err;
  TriageLog Back;
  ASSERT_TRUE(Back.open("store", opts(Fs), &Err)) << Err;
  EXPECT_TRUE(Back.store() == L.store());
  EXPECT_EQ(Back.store().runCount(), Legacy.runCount() + 1);
}

TEST(TriageLog, TornTailIsTruncatedAndHealedOnReopen) {
  FaultInjectionFs Fs;
  std::vector<TriageSummary> Runs = ingestSequence(3);
  std::string Err;
  std::string JournalPath;
  {
    TriageLog L;
    ASSERT_TRUE(L.open("store", opts(Fs), &Err)) << Err;
    TriageStore::MergeResult M;
    for (size_t I = 0; I < Runs.size(); ++I)
      ASSERT_TRUE(L.appendRun(Runs[I], {}, 0, M, &Err)) << Err;
    JournalPath = "store/journal-" + std::to_string(L.generation()) + ".log";
  }

  // Chop bytes off the last record: the canonical torn append.
  uint64_t Full = 0;
  ASSERT_TRUE(Fs.fileSize(JournalPath, Full));
  ASSERT_TRUE(Fs.truncate(JournalPath, Full - 3));

  TriageLog Back;
  ASSERT_TRUE(Back.open("store", opts(Fs), &Err)) << Err;
  EXPECT_FALSE(Back.recoveryNote().empty());
  EXPECT_EQ(Back.store().runCount(), 2u) << "torn run not truncated";
  TriageStore Ref;
  Ref.mergeRun(Runs[0]);
  Ref.mergeRun(Runs[1]);
  EXPECT_TRUE(Back.store() == Ref);

  // The truncation healed the file: appends work and the next reopen is
  // clean.
  TriageStore::MergeResult M;
  ASSERT_TRUE(Back.appendRun(Runs[2], {}, 0, M, &Err)) << Err;
  TriageLog Again;
  ASSERT_TRUE(Again.open("store", opts(Fs), &Err)) << Err;
  EXPECT_TRUE(Again.recoveryNote().empty());
  EXPECT_EQ(Again.store().runCount(), 3u);
}

TEST(TriageLog, EveryJournalPrefixRecoversToARunPrefix) {
  // Chop-every-prefix over the journal: any length must either refuse to
  // open (impossible after a real crash — the header is fsynced at
  // creation) or recover to an exact prefix of the runs. Never garbage.
  FaultInjectionFs Fs;
  std::vector<TriageSummary> Runs = ingestSequence(4);
  std::string Err;
  std::string JournalPath = "store/journal-1.log";
  {
    TriageLog L;
    ASSERT_TRUE(L.open("store", opts(Fs), &Err)) << Err;
    TriageStore::MergeResult M;
    for (const TriageSummary &S : Runs)
      ASSERT_TRUE(L.appendRun(S, {}, 0, M, &Err)) << Err;
  }
  std::string FullJournal;
  ASSERT_TRUE(Fs.readFile(JournalPath, FullJournal));

  std::vector<TriageStore> Prefixes(Runs.size() + 1);
  for (size_t I = 0; I < Runs.size(); ++I) {
    Prefixes[I + 1] = Prefixes[I];
    Prefixes[I + 1].mergeRun(Runs[I]);
  }

  for (size_t Len = 0; Len < FullJournal.size(); ++Len) {
    auto F = Fs.openWrite(JournalPath, /*Append=*/false);
    ASSERT_NE(F, nullptr);
    ASSERT_TRUE(support::writeAll(*F, FullJournal.substr(0, Len)));
    F.reset();

    TriageLog L;
    if (!L.open("store", opts(Fs), &Err))
      continue; // A chopped header refuses loudly: acceptable.
    uint32_t Count = L.store().runCount();
    ASSERT_LE(Count, Runs.size()) << "prefix of " << Len << " bytes";
    EXPECT_TRUE(L.store() == Prefixes[Count])
        << "prefix of " << Len << " bytes recovered to a non-prefix store";
  }
}

TEST(TriageLog, EveryJournalByteFlipIsRejectedOrTruncatesToAPrefix) {
  // Flip-every-byte over the whole journal. A flip is either *detected* —
  // open fails (checksum, structural invariant) — or indistinguishable
  // from a torn append (a corrupted final length prefix), in which case
  // recovery must fall back to an exact run prefix. What it may never do
  // is serve silently wrong data.
  FaultInjectionFs Fs;
  std::vector<TriageSummary> Runs = ingestSequence(3);
  std::string Err;
  std::string JournalPath = "store/journal-1.log";
  {
    TriageLog L;
    ASSERT_TRUE(L.open("store", opts(Fs), &Err)) << Err;
    TriageStore::MergeResult M;
    for (const TriageSummary &S : Runs)
      ASSERT_TRUE(L.appendRun(S, {}, 0, M, &Err)) << Err;
  }
  std::string FullJournal;
  ASSERT_TRUE(Fs.readFile(JournalPath, FullJournal));

  std::vector<TriageStore> Prefixes(Runs.size() + 1);
  for (size_t I = 0; I < Runs.size(); ++I) {
    Prefixes[I + 1] = Prefixes[I];
    Prefixes[I + 1].mergeRun(Runs[I]);
  }

  size_t Rejected = 0;
  for (size_t I = 0; I < FullJournal.size(); ++I) {
    std::string Corrupt = FullJournal;
    Corrupt[I] ^= 0x01;
    auto F = Fs.openWrite(JournalPath, /*Append=*/false);
    ASSERT_NE(F, nullptr);
    ASSERT_TRUE(support::writeAll(*F, Corrupt));

    TriageLog L;
    if (!L.open("store", opts(Fs), &Err)) {
      ++Rejected;
      continue;
    }
    uint32_t Count = L.store().runCount();
    ASSERT_LT(Count, Runs.size())
        << "flip at byte " << I << " went completely unnoticed";
    EXPECT_TRUE(L.store() == Prefixes[Count])
        << "flip at byte " << I << " recovered to a non-prefix store";
  }
  EXPECT_GT(Rejected, 0u) << "no flip was ever detected as corruption";
}

TEST(TriageLog, CompactionFoldsTheJournalIntoANewGeneration) {
  FaultInjectionFs Fs;
  std::vector<TriageSummary> Runs = ingestSequence(5);
  TriageLog::Options O = opts(Fs);
  O.CompactionRatio = 0.25;
  O.MinCompactionBytes = 1;

  TriageLog L;
  std::string Err;
  ASSERT_TRUE(L.open("store", O, &Err)) << Err;
  TriageStore::MergeResult M;
  for (const TriageSummary &S : Runs)
    ASSERT_TRUE(L.appendRun(S, {}, 0, M, &Err)) << Err;
  EXPECT_TRUE(L.needsCompaction());
  TriageStore Before = L.store();

  ASSERT_TRUE(L.compact(&Err)) << Err;
  EXPECT_EQ(L.generation(), 2u);
  EXPECT_TRUE(L.store() == Before) << "compaction changed the warehouse";
  EXPECT_TRUE(L.journalRuns().empty());
  EXPECT_EQ(L.compactions(), 1u);
  EXPECT_GT(L.bytesCompacted(), 0u);
  EXPECT_FALSE(L.needsCompaction()) << "a fresh journal retriggered";

  // The old generation's files are gone; the new one is complete.
  std::vector<std::string> Expected = {"store/CURRENT", "store/base-2.seg",
                                       "store/journal-2.log"};
  EXPECT_EQ(Fs.allFiles(), Expected);

  // The swap is durable and the compacted store replays identically.
  Fs.powerCut();
  TriageLog Back;
  ASSERT_TRUE(Back.open("store", O, &Err)) << Err;
  EXPECT_EQ(Back.generation(), 2u);
  EXPECT_TRUE(Back.store() == Before);
  EXPECT_EQ(Back.baseRunsAtOpen(), Before.runCount());

  // Ingest continues on the new generation.
  ASSERT_TRUE(Back.appendRun(runWith({{7, 1}}), {}, 0, M, &Err)) << Err;
  EXPECT_EQ(Back.store().runCount(), Before.runCount() + 1);
}

TEST(TriageLog, ThreePhaseCompactionCarriesConcurrentAppends) {
  FaultInjectionFs Fs;
  std::vector<TriageSummary> Runs = ingestSequence(6);
  TriageLog L;
  std::string Err;
  ASSERT_TRUE(L.open("store", opts(Fs), &Err)) << Err;
  TriageStore::MergeResult M;
  for (size_t I = 0; I < 4; ++I)
    ASSERT_TRUE(L.appendRun(Runs[I], "pre-" + std::to_string(I), 0, M,
                            &Err))
        << Err;

  // begin snapshots runs 1-4; two more land while prepare writes the new
  // base (the off-critical-path window the server uses).
  TriageLog::CompactionPlan P;
  ASSERT_TRUE(L.beginCompaction(P));
  ASSERT_TRUE(L.appendRun(Runs[4], "during-1", 0, M, &Err)) << Err;
  ASSERT_TRUE(L.prepareCompaction(P, &Err)) << Err;
  ASSERT_TRUE(L.appendRun(Runs[5], "during-2", 0, M, &Err)) << Err;
  ASSERT_TRUE(L.commitCompaction(P, &Err)) << Err;

  // The two concurrent appends survived the generation swap, still
  // individually replayable.
  EXPECT_EQ(L.generation(), 2u);
  ASSERT_EQ(L.journalRuns().size(), 2u);
  EXPECT_EQ(L.journalRuns()[0].RunId, "during-1");
  EXPECT_EQ(L.journalRuns()[1].RunId, "during-2");

  TriageStore Ref;
  for (const TriageSummary &S : Runs)
    Ref.mergeRun(S);
  EXPECT_TRUE(L.store() == Ref);

  TriageLog Back;
  ASSERT_TRUE(Back.open("store", opts(Fs), &Err)) << Err;
  EXPECT_TRUE(Back.store() == Ref);
  EXPECT_EQ(Back.baseRunsAtOpen(), 4u);
  ASSERT_EQ(Back.journalRuns().size(), 2u);
  EXPECT_EQ(Back.journalRuns()[0].RunId, "during-1");
}

TEST(TriageLog, AppendFailurePoisonsUntilReopenHeals) {
  FaultInjectionFs Fs;
  TriageLog L;
  std::string Err;
  ASSERT_TRUE(L.open("store", opts(Fs), &Err)) << Err;
  TriageStore::MergeResult M;
  ASSERT_TRUE(L.appendRun(runWith({{10, 1}}), "ok-1", 0, M, &Err)) << Err;

  // The next fallible operation dies (transiently — the *filesystem*
  // recovers, but the log must not trust its own tail anymore).
  FaultInjectionFs::FaultConfig C;
  C.FailAtOp = Fs.opCount() + 1;
  C.StayDown = false;
  C.TornWriteBytes = 5; // The failed append leaves a torn record behind.
  Fs.setFaults(C);
  EXPECT_FALSE(L.appendRun(runWith({{20, 1}}), "lost", 0, M, &Err));
  EXPECT_TRUE(L.poisoned());
  EXPECT_EQ(L.store().runCount(), 1u) << "failed append reached the store";

  // Poisoned means poisoned: even with the disk healthy again, appends
  // are refused until a reopen truncates the torn tail.
  Fs.clearFaults();
  EXPECT_FALSE(L.appendRun(runWith({{30, 1}}), "refused", 0, M, &Err));

  TriageLog Back;
  ASSERT_TRUE(Back.open("store", opts(Fs), &Err)) << Err;
  EXPECT_FALSE(Back.recoveryNote().empty()) << "torn record not healed";
  EXPECT_EQ(Back.store().runCount(), 1u);
  ASSERT_TRUE(Back.appendRun(runWith({{30, 1}}), "ok-2", 0, M, &Err))
      << Err;
  EXPECT_EQ(Back.store().runCount(), 2u);
}

TEST(TriageLog, OversizedRunIdIsRejectedWithoutPoisoning) {
  FaultInjectionFs Fs;
  TriageLog L;
  std::string Err;
  ASSERT_TRUE(L.open("store", opts(Fs), &Err)) << Err;
  TriageStore::MergeResult M;
  EXPECT_FALSE(L.appendRun(runWith({{10, 1}}), std::string(300, 'x'), 0, M,
                           &Err));
  EXPECT_FALSE(L.poisoned()) << "validation failure must not poison";
  ASSERT_TRUE(L.appendRun(runWith({{10, 1}}), std::string(256, 'x'), 0, M,
                          &Err))
      << Err;
  EXPECT_EQ(L.store().runCount(), 1u);
}

TEST(TriageLog, MidLogCorruptionOfTheBaseSegmentFailsOpen) {
  FaultInjectionFs Fs;
  TriageLog L;
  std::string Err;
  ASSERT_TRUE(L.open("store", opts(Fs), &Err)) << Err;
  TriageStore::MergeResult M;
  ASSERT_TRUE(L.appendRun(runWith({{10, 3}}), {}, 0, M, &Err)) << Err;
  ASSERT_TRUE(L.compact(&Err)) << Err; // Put real data into the base.

  std::string Base;
  ASSERT_TRUE(Fs.readFile("store/base-2.seg", Base));
  Base[Base.size() / 2] ^= 0x40;
  auto F = Fs.openWrite("store/base-2.seg", /*Append=*/false);
  ASSERT_NE(F, nullptr);
  ASSERT_TRUE(support::writeAll(*F, Base));

  TriageLog Back;
  EXPECT_FALSE(Back.open("store", opts(Fs), &Err))
      << "a corrupt base segment must fail open, not serve garbage";
  EXPECT_FALSE(Err.empty());
}
