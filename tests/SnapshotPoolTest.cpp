//===- tests/SnapshotPoolTest.cpp - Pooled CoW snapshot buffers ------------==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for SnapshotPool: refcount semantics, free-list recycling,
/// the lazy-CoW unique() contract, pool death with outstanding references,
/// cross-thread release safety, and the detector-level integration (pooled
/// and unpooled runs bit-identical modulo PoolHits; recycling actually
/// observed on CoW-heavy traces).
///
//===----------------------------------------------------------------------===//

#include "sampletrack/detectors/DetectorFactory.h"
#include "sampletrack/rapid/Engine.h"
#include "sampletrack/support/SnapshotPool.h"
#include "sampletrack/support/VectorClock.h"
#include "sampletrack/trace/Trace.h"

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

using namespace sampletrack;

TEST(SnapshotPool, AcquireStartsUniqueAndMisses) {
  SnapshotPool<VectorClock> P;
  bool Reused = true;
  auto R = P.acquire(&Reused);
  EXPECT_FALSE(Reused) << "empty pool cannot serve from the free list";
  EXPECT_TRUE(static_cast<bool>(R));
  EXPECT_TRUE(R.unique());
  EXPECT_EQ(P.hits(), 0u);
  EXPECT_EQ(P.misses(), 1u);
  EXPECT_EQ(P.freeCount(), 0u);
}

TEST(SnapshotPool, LastReleaseRecyclesAndNextAcquireReuses) {
  SnapshotPool<VectorClock> P;
  auto R = P.acquire();
  R->resize(4);
  R->set(2, 42);
  VectorClock *Raw = R.get();
  R.reset();
  EXPECT_EQ(P.freeCount(), 1u);

  bool Reused = false;
  auto R2 = P.acquire(&Reused);
  EXPECT_TRUE(Reused);
  EXPECT_EQ(R2.get(), Raw) << "free list returned the same buffer";
  EXPECT_EQ(R2->get(2), 42u) << "recycled contents are stale by contract";
  EXPECT_EQ(P.hits(), 1u);
  EXPECT_EQ(P.freeCount(), 0u);
}

TEST(SnapshotPool, UniqueTracksReferenceCount) {
  SnapshotPool<VectorClock> P;
  auto Owner = P.acquire();
  EXPECT_TRUE(Owner.unique());
  {
    auto Snapshot = Owner; // Publish: a sync object now holds it.
    EXPECT_FALSE(Owner.unique());
    EXPECT_TRUE(Snapshot == Owner);
  }
  // Snapshot dropped (overwritten by a newer release): owner may mutate in
  // place again — the lazy-CoW fast path.
  EXPECT_TRUE(Owner.unique());
  EXPECT_EQ(P.freeCount(), 0u) << "buffer still referenced, not recycled";
}

TEST(SnapshotPool, CopyAndMoveSemantics) {
  SnapshotPool<VectorClock> P;
  auto A = P.acquire();
  auto B = A;
  auto C = std::move(A);
  EXPECT_FALSE(static_cast<bool>(A));
  EXPECT_TRUE(B == C);
  auto &BAlias = B;
  B = BAlias; // Self-assignment must not drop the buffer.
  EXPECT_TRUE(static_cast<bool>(B));
  C.reset();
  EXPECT_TRUE(B.unique());
  B.reset();
  EXPECT_EQ(P.freeCount(), 1u);
}

TEST(SnapshotPool, DisabledPoolNeverReuses) {
  SnapshotPool<VectorClock> P;
  P.setEnabled(false);
  auto R = P.acquire();
  R.reset();
  EXPECT_EQ(P.freeCount(), 0u) << "disabled pool deletes instead of parking";
  bool Reused = true;
  auto R2 = P.acquire(&Reused);
  EXPECT_FALSE(Reused);
  EXPECT_EQ(P.hits(), 0u);
}

TEST(SnapshotPool, DisablingDrainsTheFreeList) {
  SnapshotPool<VectorClock> P;
  auto A = P.acquire();
  auto B = P.acquire();
  A.reset();
  B.reset();
  EXPECT_EQ(P.freeCount(), 2u);
  P.setEnabled(false);
  EXPECT_EQ(P.freeCount(), 0u);
}

TEST(SnapshotPool, OutstandingRefsSurviveThePool) {
  SnapshotPool<VectorClock>::Ref Survivor;
  {
    SnapshotPool<VectorClock> P;
    Survivor = P.acquire();
    Survivor->resize(3);
    Survivor->set(1, 7);
    auto Parked = P.acquire();
    Parked.reset(); // One buffer on the free list when the pool dies.
  }
  ASSERT_TRUE(static_cast<bool>(Survivor));
  EXPECT_EQ(Survivor->get(1), 7u) << "buffer outlives its pool";
  Survivor.reset(); // Falls back to plain deletion; must not crash/leak.
}

TEST(SnapshotPool, CrossThreadReleaseIsSafe) {
  // The online Runtime drops snapshot references on whichever thread
  // overwrites the sync object; acquire+release must tolerate that.
  SnapshotPool<VectorClock> P;
  constexpr int N = 64;
  std::vector<SnapshotPool<VectorClock>::Ref> Refs;
  Refs.reserve(N);
  for (int I = 0; I < N; ++I)
    Refs.push_back(P.acquire());
  std::vector<std::thread> Threads;
  for (int W = 0; W < 4; ++W)
    Threads.emplace_back([&Refs, W] {
      for (int I = W; I < N; I += 4)
        Refs[I].reset();
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(P.freeCount(), static_cast<size_t>(N));
  bool Reused = false;
  auto R = P.acquire(&Reused);
  EXPECT_TRUE(Reused);
}

//===----------------------------------------------------------------------===//
// Detector-level integration
//===----------------------------------------------------------------------===//

namespace {

/// Two threads cross-publishing over two locks with sampled writes: each
/// thread acquires the *other* thread's lock right after releasing its own,
/// so every join mutates a list whose snapshot is still referenced by the
/// thread's own lock — a CoW break per round, the recycling steady state.
/// (A single shared lock would never break: its snapshot is overwritten
/// before the owner mutates, which the lazy unique() check turns into a
/// free in-place re-own.)
Trace cowHeavyTrace(int Rounds) {
  Trace T;
  for (int I = 0; I < Rounds; ++I) {
    T.write(0, 0, /*Marked=*/true);
    T.release(0, 0);
    T.write(1, 1, /*Marked=*/true);
    T.release(1, 1);
    T.acquire(0, 1);
    T.acquire(1, 0);
  }
  return T;
}

} // namespace

TEST(SnapshotPoolIntegration, PooledRunRecyclesBuffersOnCowHeavyTrace) {
  Trace T = cowHeavyTrace(200);
  rapid::RunResult R = rapid::runEngine(T, EngineKind::SamplingO, 1.0, 1);
  EXPECT_GT(R.Stats.CowBreaks, 0u) << "trace must actually contend";
  EXPECT_EQ(R.Stats.CowBreaks, R.Stats.DeepCopies)
      << "on the lazy path every deep copy is a CoW break";
  EXPECT_GT(R.Stats.PoolHits, 0u) << "steady state must reuse buffers";
  // After warm-up (one buffer per thread in flight plus one per sync), all
  // breaks are served by the free list.
  EXPECT_GE(R.Stats.PoolHits + 4, R.Stats.CowBreaks);
}

TEST(SnapshotPoolIntegration, PooledAndUnpooledRunsAreBitIdentical) {
  Trace T = cowHeavyTrace(100);
  rapid::markTrace(T, 0.5, 99);
  for (EngineKind K : {EngineKind::SamplingO, EngineKind::SamplingONoEpochOpt,
                       EngineKind::TreeClockFull}) {
    std::unique_ptr<Detector> Pooled = createDetector(K, T.numThreads());
    std::unique_ptr<Detector> Unpooled = createDetector(K, T.numThreads());
    Unpooled->setPoolingEnabled(false);
    MarkedSampler S1, S2;
    rapid::run(T, *Pooled, S1);
    rapid::run(T, *Unpooled, S2);

    EXPECT_EQ(Pooled->races(), Unpooled->races());
    EXPECT_EQ(Unpooled->metrics().PoolHits, 0u);
    Metrics A = Pooled->metrics(), B = Unpooled->metrics();
    A.PoolHits = B.PoolHits = 0; // The only counter pooling may move.
    EXPECT_EQ(A, B) << engineKindName(K);
  }
}
