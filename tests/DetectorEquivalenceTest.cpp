//===- tests/DetectorEquivalenceTest.cpp - Engine equivalence -------------==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The central correctness tests: Lemmas 4, 7 and 8 state that ST, SU and SO
/// declare races on exactly the same events, and that those events are
/// exactly the ones a last-access-history detector with perfect
/// happens-before information would flag. These tests sweep randomized
/// traces and sampling rates and check both claims, plus the full-detection
/// baselines against the oracle.
///
//===----------------------------------------------------------------------===//

#include "sampletrack/detectors/DetectorFactory.h"
#include "sampletrack/detectors/HBClosureOracle.h"
#include "sampletrack/rapid/Engine.h"
#include "sampletrack/trace/TraceGen.h"

#include <gtest/gtest.h>

using namespace sampletrack;

namespace {

/// Runs engine \p K over pre-marked trace \p T and returns the indices of
/// events where a race was declared.
std::vector<size_t> declaredEvents(const Trace &T, EngineKind K) {
  std::unique_ptr<Detector> D = createDetector(K, T.numThreads());
  MarkedSampler S;
  rapid::run(T, *D, S);
  std::vector<size_t> Out;
  for (const RaceReport &R : D->races())
    Out.push_back(R.EventIndex);
  return Out;
}

/// A small racy mutex-structured trace (acquire/release plus protected and
/// unprotected accesses).
Trace mixedTrace(uint64_t Seed) {
  GenConfig C;
  C.NumThreads = 4;
  C.NumLocks = 3;
  C.NumVars = 24;
  C.NumEvents = 600;
  C.UnprotectedFraction = 0.08;
  C.RacyVars = 3;
  C.Seed = Seed;
  return generateWorkload(C);
}

struct SweepParam {
  uint64_t Seed;
  double Rate;
};

class EquivalenceSweep : public ::testing::TestWithParam<SweepParam> {};

} // namespace

//===----------------------------------------------------------------------===//
// Lemmas 7 and 8: ST, SU, SO (and SO without the local-epoch optimization)
// declare races on exactly the same events, given the same sample set.
//===----------------------------------------------------------------------===//

TEST_P(EquivalenceSweep, SamplingEnginesAgreeEventwise) {
  SweepParam P = GetParam();
  Trace T = mixedTrace(P.Seed);
  ASSERT_TRUE(T.validate());
  rapid::markTrace(T, P.Rate, P.Seed * 7919 + 13);

  std::vector<size_t> ST = declaredEvents(T, EngineKind::SamplingNaive);
  std::vector<size_t> SU = declaredEvents(T, EngineKind::SamplingU);
  std::vector<size_t> SO = declaredEvents(T, EngineKind::SamplingO);
  std::vector<size_t> SON = declaredEvents(T, EngineKind::SamplingONoEpochOpt);

  EXPECT_EQ(ST, SU) << "SU diverged from ST (Lemma 7)";
  EXPECT_EQ(ST, SO) << "SO diverged from ST (Lemma 8)";
  EXPECT_EQ(ST, SON) << "SO-noepoch diverged from ST";
}

//===----------------------------------------------------------------------===//
// Lemma 4: the sampling engines match the declarative last-access-history
// semantics computed with exact happens-before.
//===----------------------------------------------------------------------===//

TEST_P(EquivalenceSweep, SamplingEnginesMatchOracle) {
  SweepParam P = GetParam();
  Trace T = mixedTrace(P.Seed);
  rapid::markTrace(T, P.Rate, P.Seed * 104729 + 7);

  HBClosureOracle Oracle(T);
  // The detectors warehouse duplicates (first declaration per signature),
  // so the oracle's full declaration list is deduped the same way.
  std::vector<size_t> Expected =
      dedupDeclaredRaces(T, Oracle.declaredRaces(/*MarkedOnly=*/true));

  EXPECT_EQ(Expected, declaredEvents(T, EngineKind::SamplingNaive));
  EXPECT_EQ(Expected, declaredEvents(T, EngineKind::SamplingU));
  EXPECT_EQ(Expected, declaredEvents(T, EngineKind::SamplingO));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EquivalenceSweep,
    ::testing::Values(SweepParam{1, 0.0}, SweepParam{1, 0.03},
                      SweepParam{1, 0.3}, SweepParam{1, 1.0},
                      SweepParam{2, 0.03}, SweepParam{2, 0.3},
                      SweepParam{3, 0.1}, SweepParam{4, 0.1},
                      SweepParam{5, 0.03}, SweepParam{5, 1.0},
                      SweepParam{6, 0.5}, SweepParam{7, 0.05},
                      SweepParam{8, 0.2}, SweepParam{9, 0.03},
                      SweepParam{10, 0.3}, SweepParam{11, 1.0},
                      SweepParam{12, 0.02}, SweepParam{13, 0.15},
                      SweepParam{14, 0.08}, SweepParam{15, 0.6}));

//===----------------------------------------------------------------------===//
// Full-detection baselines against the oracle.
//===----------------------------------------------------------------------===//

namespace {

class FullDetectionSweep : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(FullDetectionSweep, DjitMatchesOracleEventwise) {
  Trace T = mixedTrace(GetParam());
  HBClosureOracle Oracle(T);
  std::vector<size_t> Expected =
      dedupDeclaredRaces(T, Oracle.declaredRaces(/*MarkedOnly=*/false));
  EXPECT_EQ(Expected, declaredEvents(T, EngineKind::Djit));
}

TEST_P(FullDetectionSweep, FastTrackFindsSameRacyLocationsAsDjit) {
  Trace T = mixedTrace(GetParam());
  std::unique_ptr<Detector> Djit = createDetector(EngineKind::Djit,
                                                  T.numThreads());
  std::unique_ptr<Detector> FT = createDetector(EngineKind::FastTrack,
                                                T.numThreads());
  AlwaysSampler S;
  rapid::run(T, *Djit, S);
  AlwaysSampler S2;
  rapid::run(T, *FT, S2);
  EXPECT_EQ(Djit->racyLocations(), FT->racyLocations());
}

TEST_P(FullDetectionSweep, SamplingAt100PercentMatchesDjitVerdicts) {
  Trace T = mixedTrace(GetParam());
  rapid::markTrace(T, 1.0, 0);
  std::vector<size_t> Djit = declaredEvents(T, EngineKind::Djit);
  EXPECT_EQ(Djit, declaredEvents(T, EngineKind::SamplingNaive));
  EXPECT_EQ(Djit, declaredEvents(T, EngineKind::SamplingO));
}

TEST_P(FullDetectionSweep, RacyLocationsCoverAllRacyPairs) {
  // Location-level completeness: every location with an HB-race pair is
  // reported by the history-based detector.
  Trace T = mixedTrace(GetParam());
  HBClosureOracle Oracle(T);
  std::unordered_set<VarId> PairLocations;
  for (auto [I, J] : Oracle.allRacePairs())
    PairLocations.insert(T[J].var());

  std::unique_ptr<Detector> D = createDetector(EngineKind::Djit,
                                               T.numThreads());
  AlwaysSampler S;
  rapid::run(T, *D, S);
  EXPECT_EQ(PairLocations, D->racyLocations());
}

INSTANTIATE_TEST_SUITE_P(Sweep, FullDetectionSweep,
                         ::testing::Range<uint64_t>(1, 13));

//===----------------------------------------------------------------------===//
// Tree-clock ablation engine: full-HB timestamps imply it must agree with
// the sampling engines' verdicts on mutex/fork-join traces.
//===----------------------------------------------------------------------===//

//===----------------------------------------------------------------------===//
// Structured traces with fork/join and non-mutex synchronization
// (appendix A.2 paths).
//===----------------------------------------------------------------------===//

namespace {

std::vector<Trace> structuredTraces(uint64_t Seed) {
  std::vector<Trace> Out;
  Out.push_back(generateProducerConsumer(3, 3, 40, Seed));
  Out.push_back(generateForkJoin(3, 10, Seed));
  Out.push_back(generateBarrierRounds(4, 8, 6, Seed));
  Out.push_back(generatePipeline(2, 3, 60, Seed));
  Out.push_back(generatePingPong(4, 3, 50, Seed));
  return Out;
}

} // namespace

TEST(StructuredTraces, SamplingEnginesAgreeAndMatchOracle) {
  for (uint64_t Seed : {1u, 2u, 3u}) {
    size_t Idx = 0;
    for (Trace &T : structuredTraces(Seed)) {
      ASSERT_TRUE(T.validate()) << "trace " << Idx;
      for (double Rate : {0.05, 0.5, 1.0}) {
        rapid::markTrace(T, Rate, Seed + Idx * 31);
        HBClosureOracle Oracle(T);
        std::vector<size_t> Expected =
            Oracle.declaredRaces(/*MarkedOnly=*/true);
        EXPECT_EQ(Expected, declaredEvents(T, EngineKind::SamplingNaive))
            << "ST trace " << Idx << " rate " << Rate << " seed " << Seed;
        EXPECT_EQ(Expected, declaredEvents(T, EngineKind::SamplingU))
            << "SU trace " << Idx << " rate " << Rate << " seed " << Seed;
        EXPECT_EQ(Expected, declaredEvents(T, EngineKind::SamplingO))
            << "SO trace " << Idx << " rate " << Rate << " seed " << Seed;
      }
      ++Idx;
    }
  }
}

TEST(StructuredTraces, DjitMatchesOracleWithAtomicsAndForkJoin) {
  for (uint64_t Seed : {1u, 2u}) {
    for (Trace &T : structuredTraces(Seed)) {
      HBClosureOracle Oracle(T);
      EXPECT_EQ(Oracle.declaredRaces(false),
                declaredEvents(T, EngineKind::Djit));
    }
  }
}

TEST(StructuredTraces, WellSynchronizedTracesAreRaceFree) {
  // Producer/consumer, fork/join trees, barriers and pipelines are fully
  // synchronized by construction: no engine may report a race.
  for (uint64_t Seed : {1u, 2u, 3u, 4u}) {
    for (Trace &T : structuredTraces(Seed)) {
      rapid::markTrace(T, 1.0, Seed);
      EXPECT_TRUE(declaredEvents(T, EngineKind::Djit).empty());
      EXPECT_TRUE(declaredEvents(T, EngineKind::SamplingO).empty());
    }
  }
}

TEST(TreeClockEngine, MatchesSamplingVerdictsOnMutexTraces) {
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    Trace T = mixedTrace(Seed);
    rapid::markTrace(T, 0.2, Seed);
    std::vector<size_t> SO = declaredEvents(T, EngineKind::SamplingO);
    std::vector<size_t> TC = declaredEvents(T, EngineKind::TreeClockFull);
    EXPECT_EQ(SO, TC) << "seed " << Seed;
  }
}
