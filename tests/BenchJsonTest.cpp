//===- tests/BenchJsonTest.cpp - Bench trajectory JSON hygiene ------------===//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
// The BENCH_*.json perf-trajectory files are diffed and re-read by CI, so
// every row the bench harness emits must stay parseable arithmetic: a
// zero-event row (empty trace, skipped config) reports nsPerEvent 0
// instead of inf/nan, and the shared ratio helper applies the same
// convention to the derived speedup/mean columns.
//
//===----------------------------------------------------------------------===//

#include "../bench/BenchCommon.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

using namespace sampletrack;
using namespace stbench;

namespace {

std::string slurp(const std::string &Path) {
  std::ifstream Is(Path, std::ios::binary);
  std::ostringstream Os;
  Os << Is.rdbuf();
  return Os.str();
}

} // namespace

TEST(BenchJson, ZeroEventRowsEmitZeroNsPerEventNotInfOrNan) {
  Options O;
  O.JsonPath = testing::TempDir() + "bench_json_zero_events.json";

  JsonReport Json("unit", O);
  Metrics M;
  // The degenerate row: zero events with nonzero wall time. Unguarded this
  // is W/0 = inf, and snprintf would print "inf" — unparseable JSON.
  Json.addRow("empty-trace", "FT", 1.0, /*Events=*/0, /*WallNanos=*/12345,
              M);
  // Zero over zero would be nan. Same guard, same answer.
  Json.addRow("empty-trace", "SO", 1.0, /*Events=*/0, /*WallNanos=*/0, M);
  // A live row for contrast: 1000ns over 4 events = 250.00 ns/event.
  Json.addRow("real", "SU", 0.03, /*Events=*/4, /*WallNanos=*/1000, M);
  ASSERT_TRUE(Json.writeIfRequested(O));

  std::string Doc = slurp(O.JsonPath);
  std::remove(O.JsonPath.c_str());
  ASSERT_FALSE(Doc.empty());

  EXPECT_EQ(Doc.find("inf"), std::string::npos) << Doc;
  EXPECT_EQ(Doc.find("nan"), std::string::npos) << Doc;
  EXPECT_NE(Doc.find("\"events\": 0, \"wallNanos\": 12345, "
                     "\"nsPerEvent\": 0.00"),
            std::string::npos)
      << Doc;
  EXPECT_NE(Doc.find("\"nsPerEvent\": 250.00"), std::string::npos) << Doc;
}

TEST(BenchJson, SafeRatioGuardsDegenerateDenominators) {
  // The derived-column helper (speedup = base/current, mean = sum/count):
  // degenerate denominators report 0, never inf/nan.
  EXPECT_DOUBLE_EQ(safeRatio(10.0, 4.0), 2.5);
  EXPECT_DOUBLE_EQ(safeRatio(10.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(safeRatio(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(safeRatio(10.0, -1.0), 0.0);
  EXPECT_FALSE(std::isnan(safeRatio(0.0, 0.0)));
  EXPECT_FALSE(std::isinf(safeRatio(1.0, 0.0)));
}
