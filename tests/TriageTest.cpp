//===- tests/TriageTest.cpp - Race warehouse subsystem tests ---------------==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
// The triage subsystem end to end: signature stability (golden values —
// changing them is a persisted-format break), sink dedup/capacity/merge
// semantics, the allocation-free warm hot path, store round-trips,
// suppression, new/known/regressed classification, the exporters, and the
// api::runTriage workflow driven by SessionConfig knobs.
//
//===----------------------------------------------------------------------===//

#include "sampletrack/api/Report.h"
#include "sampletrack/rapid/Engine.h"
#include "sampletrack/runtime/Runtime.h"
#include "sampletrack/trace/TraceGen.h"
#include "sampletrack/triage/Exporters.h"
#include "sampletrack/triage/TriageStore.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <unistd.h>

using namespace sampletrack;
using namespace sampletrack::triage;

//===----------------------------------------------------------------------===//
// Allocation counting: global new/delete replacements so the warm-sink
// no-allocation contract is verifiable, not aspirational.
//===----------------------------------------------------------------------===//

static std::atomic<uint64_t> GAllocCount{0};

void *operator new(std::size_t Size) {
  GAllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Size))
    return P;
  throw std::bad_alloc();
}

void *operator new[](std::size_t Size) {
  GAllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Size))
    return P;
  throw std::bad_alloc();
}

void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }

namespace {

RaceReport report(uint64_t Event, ThreadId Tid, VarId Var, OpKind K) {
  return RaceReport{Event, Tid, Var, K};
}

/// A temp-file path unique to this test binary run.
std::string tmpPath(const char *Name) {
  return std::string("/tmp/sampletrack_triagetest_") + Name + "_" +
         std::to_string(::getpid());
}

} // namespace

//===----------------------------------------------------------------------===//
// RaceSignature
//===----------------------------------------------------------------------===//

TEST(RaceSignature, GoldenValuesPinThePersistedFormat) {
  // These exact values are written into stores and suppression files; a
  // change here is a format break and must bump RaceSignature::Version.
  EXPECT_EQ(RaceSignature::of(/*Var=*/0, OpKind::Read, /*Tid=*/0).Value,
            0xa55bdf37c08724b5ULL);
  EXPECT_EQ(RaceSignature::of(/*Var=*/0, OpKind::Write, /*Tid=*/0).Value,
            0x549d43472c0c8480ULL);
  EXPECT_EQ(RaceSignature::of(/*Var=*/7, OpKind::Write, /*Tid=*/1).Value,
            0x629a1338e77c71d2ULL);
  EXPECT_EQ(RaceSignature::of(/*Var=*/123456789, OpKind::Read, /*Tid=*/3)
                .Value,
            0x808fe172cea267e1ULL);
}

TEST(RaceSignature, NormalizesThreadRoleNotThreadId) {
  // Two workers tripping the same racy pair dedup; main-vs-worker stays
  // distinct; position never matters.
  RaceSignature W1 = RaceSignature::of(report(10, 1, 42, OpKind::Write));
  RaceSignature W2 = RaceSignature::of(report(99999, 7, 42, OpKind::Write));
  RaceSignature Main = RaceSignature::of(report(10, 0, 42, OpKind::Write));
  EXPECT_EQ(W1, W2);
  EXPECT_FALSE(W1 == Main);

  // Distinct locations and distinct op kinds stay distinct.
  EXPECT_FALSE(W1 == RaceSignature::of(report(10, 1, 43, OpKind::Write)));
  EXPECT_FALSE(W1 == RaceSignature::of(report(10, 1, 42, OpKind::Read)));
}

TEST(RaceSignature, HexRoundTrips) {
  RaceSignature S = RaceSignature::of(7, OpKind::Write, 1);
  std::optional<RaceSignature> Back = RaceSignature::parseHex(S.hex());
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(Back->Value, S.Value);
  EXPECT_EQ(RaceSignature::parseHex("0x" + S.hex())->Value, S.Value);
  EXPECT_FALSE(RaceSignature::parseHex("").has_value());
  EXPECT_FALSE(RaceSignature::parseHex("xyz").has_value());
  EXPECT_FALSE(RaceSignature::parseHex("123456789012345678").has_value());
}

//===----------------------------------------------------------------------===//
// RaceSink
//===----------------------------------------------------------------------===//

TEST(RaceSink, DedupsBySignatureKeepingFirstExemplar) {
  RaceSink Sink;
  EXPECT_TRUE(Sink.insert(report(5, 1, 42, OpKind::Write)));
  EXPECT_FALSE(Sink.insert(report(9, 2, 42, OpKind::Write))); // Same sig.
  EXPECT_TRUE(Sink.insert(report(11, 1, 43, OpKind::Write)));
  EXPECT_FALSE(Sink.insert(report(20, 3, 42, OpKind::Write)));

  EXPECT_EQ(Sink.distinct(), 2u);
  EXPECT_EQ(Sink.totalDeclared(), 4u);
  EXPECT_FALSE(Sink.capped());
  ASSERT_EQ(Sink.exemplars().size(), 2u);
  // First occurrence wins, in first-seen order.
  EXPECT_EQ(Sink.exemplars()[0], report(5, 1, 42, OpKind::Write));
  EXPECT_EQ(Sink.exemplars()[1], report(11, 1, 43, OpKind::Write));
  EXPECT_EQ(Sink.hitsAt(0), 3u);
  EXPECT_EQ(Sink.hitsAt(1), 1u);
  uint64_t Sig = RaceSignature::of(report(5, 1, 42, OpKind::Write)).Value;
  EXPECT_EQ(Sink.hitsFor(Sig), 3u);
  EXPECT_EQ(Sink.hitsFor(~Sig), 0u);
}

TEST(RaceSink, CapsDistinctSignaturesNotDuplicates) {
  RaceSink Sink(4);
  for (VarId V = 0; V < 10; ++V)
    Sink.insert(report(V, 1, V, OpKind::Write));
  EXPECT_EQ(Sink.distinct(), 4u);
  EXPECT_TRUE(Sink.capped());
  EXPECT_EQ(Sink.droppedDeclarations(), 6u);
  EXPECT_EQ(Sink.totalDeclared(), 10u);

  // Duplicates of stored signatures still count, never drop.
  for (int I = 0; I < 100; ++I)
    Sink.insert(report(100 + I, 2, 0, OpKind::Write));
  EXPECT_EQ(Sink.hitsAt(0), 101u);
  EXPECT_EQ(Sink.droppedDeclarations(), 6u);
}

TEST(RaceSink, WarmSinkInsertsDoNotAllocate) {
  // The acceptance criterion: after warm-up (every distinct signature seen
  // once), the declareRace hot path performs zero allocations.
  RaceSink Sink(1 << 10);
  for (VarId V = 0; V < 100; ++V)
    Sink.insert(report(V, 1, V, OpKind::Write));

  uint64_t Before = GAllocCount.load(std::memory_order_relaxed);
  for (int Round = 0; Round < 1000; ++Round)
    for (VarId V = 0; V < 100; ++V)
      Sink.insert(report(12345 + Round, 2, V, OpKind::Write));
  EXPECT_EQ(GAllocCount.load(std::memory_order_relaxed), Before)
      << "warm RaceSink::insert allocated";
  EXPECT_EQ(Sink.totalDeclared(), 100u + 100000u);
}

TEST(RaceSink, WarmDetectorDeclareRaceDoesNotAllocate) {
  // Same contract one layer up, through a real engine: run a racy pattern
  // once to warm the sink (and the detector's lazy var state), then replay
  // the same accesses and require zero allocations from the whole
  // processBatch path. FastTrack keeps racing on every conflicting access,
  // so the second half re-declares the same signatures continuously.
  Trace Warm(3, 0, 8);
  for (int Round = 0; Round < 2; ++Round)
    for (VarId V = 0; V < 8; ++V) {
      Warm.write(1, V, /*Marked=*/true);
      Warm.write(2, V, /*Marked=*/true);
    }

  std::unique_ptr<Detector> D =
      createDetector(EngineKind::FastTrack, Warm.numThreads());
  std::vector<uint8_t> Ds(Warm.size(), 1);
  D->processBatch(std::span<const Event>(Warm.events()),
                  std::span<const uint8_t>(Ds));
  uint64_t DeclaredWarm = D->metrics().RacesDeclared;
  ASSERT_GT(DeclaredWarm, 0u);

  uint64_t Before = GAllocCount.load(std::memory_order_relaxed);
  D->processBatch(std::span<const Event>(Warm.events()),
                  std::span<const uint8_t>(Ds));
  EXPECT_EQ(GAllocCount.load(std::memory_order_relaxed), Before)
      << "warm declareRace path allocated";
  EXPECT_GT(D->metrics().RacesDeclared, DeclaredWarm);
}

TEST(RaceSink, AbsorbMergesShardsDeterministically) {
  RaceSink A, B;
  A.insert(report(1, 1, 10, OpKind::Write));
  A.insert(report(2, 1, 10, OpKind::Write));
  A.insert(report(3, 1, 11, OpKind::Read));
  B.insert(report(7, 2, 10, OpKind::Write)); // Same sig as A's first.
  B.insert(report(8, 2, 12, OpKind::Write));

  A.absorb(B);
  EXPECT_EQ(A.distinct(), 3u);
  EXPECT_EQ(A.totalDeclared(), 5u);
  uint64_t Sig10 = RaceSignature::of(10, OpKind::Write, 1).Value;
  EXPECT_EQ(A.hitsFor(Sig10), 3u);
  // A's exemplar (the first one absorbed) wins over B's.
  EXPECT_EQ(A.exemplars()[0], report(1, 1, 10, OpKind::Write));
}

TEST(RaceSink, SummariesMergeInOrder) {
  RaceSink A, B;
  A.insert(report(1, 1, 10, OpKind::Write));
  B.insert(report(2, 2, 10, OpKind::Write));
  B.insert(report(3, 2, 20, OpKind::Write));

  TriageSummary S = mergeSummaries({A.summary(), B.summary()});
  EXPECT_EQ(S.distinct(), 2u);
  EXPECT_EQ(S.RacesDeclared, 3u);
  EXPECT_EQ(S.Entries[0].Hits, 2u);
  EXPECT_EQ(S.Entries[0].Exemplar, report(1, 1, 10, OpKind::Write));
  EXPECT_EQ(S.Entries[1].Hits, 1u);
}

//===----------------------------------------------------------------------===//
// TriageStore
//===----------------------------------------------------------------------===//

namespace {

/// A one-signature summary with \p Hits declarations on \p Var.
TriageSummary runWith(std::initializer_list<std::pair<VarId, uint64_t>>
                          VarHits) {
  RaceSink Sink;
  uint64_t Pos = 0;
  for (auto [Var, N] : VarHits)
    for (uint64_t I = 0; I < N; ++I)
      Sink.insert(report(Pos++, 1, Var, OpKind::Write));
  return Sink.summary();
}

uint64_t sigOfVar(VarId Var) {
  return RaceSignature::of(Var, OpKind::Write, 1).Value;
}

} // namespace

TEST(TriageStore, ClassifiesNewKnownRegressed) {
  TriageStore Store;

  // Run 1: two races, both new.
  TriageStore::MergeResult R1 = Store.mergeRun(runWith({{10, 5}, {20, 2}}));
  EXPECT_EQ(R1.NewSignatures, 2u);
  EXPECT_EQ(R1.KnownSignatures, 0u);
  EXPECT_EQ(R1.RegressedSignatures, 0u);
  ASSERT_EQ(R1.NewRaces.size(), 2u);

  // Run 2: var 10 persists (known), var 20 goes quiet.
  TriageStore::MergeResult R2 = Store.mergeRun(runWith({{10, 3}}));
  EXPECT_EQ(R2.NewSignatures, 0u);
  EXPECT_EQ(R2.KnownSignatures, 1u);
  EXPECT_EQ(R2.RegressedSignatures, 0u);

  // Run 3: var 20 comes back after a whole quiet run — regressed — and a
  // brand-new var 30 appears.
  TriageStore::MergeResult R3 =
      Store.mergeRun(runWith({{20, 1}, {30, 4}}));
  EXPECT_EQ(R3.NewSignatures, 1u);
  EXPECT_EQ(R3.RegressedSignatures, 1u);
  ASSERT_EQ(R3.RegressedRaces.size(), 1u);
  EXPECT_EQ(R3.RegressedRaces[0].Signature, sigOfVar(20));
  ASSERT_EQ(R3.NewRaces.size(), 1u);
  EXPECT_EQ(R3.NewRaces[0].Signature, sigOfVar(30));

  // Accumulated bookkeeping, including the last-sighting classification
  // the ranked report prints.
  const TriageStore::Record *V10 = Store.find(sigOfVar(10));
  ASSERT_NE(V10, nullptr);
  EXPECT_EQ(V10->Hits, 8u);
  EXPECT_EQ(V10->Runs, 2u);
  EXPECT_EQ(V10->FirstSeenRun, 1u);
  EXPECT_EQ(V10->LastSeenRun, 2u);
  EXPECT_EQ(V10->LastStatus, RaceStatus::Known);
  EXPECT_EQ(Store.find(sigOfVar(20))->LastStatus, RaceStatus::Regressed);
  EXPECT_EQ(Store.find(sigOfVar(30))->LastStatus, RaceStatus::New);
  EXPECT_EQ(Store.runCount(), 3u);
}

TEST(TriageStore, SaveLoadRoundTripsEverything) {
  TriageStore Store;
  Store.mergeRun(runWith({{10, 5}, {20, 2}}));
  Store.mergeRun(runWith({{10, 1}, {30, 9}}));
  Store.suppress(sigOfVar(20));

  std::string Path = tmpPath("store");
  std::string Err;
  ASSERT_TRUE(Store.save(Path, &Err)) << Err;

  TriageStore Back;
  ASSERT_TRUE(Back.load(Path, &Err)) << Err;
  EXPECT_TRUE(Back == Store);
  EXPECT_EQ(Back.runCount(), 2u);
  EXPECT_TRUE(Back.isSuppressed(sigOfVar(20)));
  // The index survives the round-trip (find goes through it).
  ASSERT_NE(Back.find(sigOfVar(30)), nullptr);
  EXPECT_EQ(Back.find(sigOfVar(30))->Hits, 9u);
  std::remove(Path.c_str());

  // Corrupt and missing files are errors for load, and loadIfExists treats
  // only the missing file as a fresh store.
  TriageStore Fresh;
  EXPECT_FALSE(Fresh.load(Path, &Err));
  EXPECT_TRUE(Fresh.loadIfExists(Path, &Err)) << Err;
  EXPECT_TRUE(Fresh.empty());
  ASSERT_TRUE(api::writeFile(Path, "not a store"));
  EXPECT_FALSE(Fresh.loadIfExists(Path, &Err));
  EXPECT_NE(Err.find("magic"), std::string::npos);
  std::remove(Path.c_str());
}

namespace {

/// Slurps a file written by TriageStore::save.
std::string readFileBytes(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  EXPECT_NE(F, nullptr) << Path;
  std::string Out;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  std::fclose(F);
  return Out;
}

/// The store format's payload checksum (FNV-1a 64) — duplicated here on
/// purpose: the negative tests below craft corrupt-but-checksummed files to
/// prove the *structural* validation fires even when the checksum passes.
uint64_t fnv1a(const std::string &Bytes) {
  uint64_t H = 0xcbf29ce484222325ULL;
  for (char C : Bytes) {
    H ^= static_cast<unsigned char>(C);
    H *= 0x100000001b3ULL;
  }
  return H;
}

void putLeU32(std::string &S, size_t At, uint32_t V) {
  for (int I = 0; I < 4; ++I)
    S[At + I] = static_cast<char>((V >> (8 * I)) & 0xff);
}

void putLeU64(std::string &S, size_t At, uint64_t V) {
  for (int I = 0; I < 8; ++I)
    S[At + I] = static_cast<char>((V >> (8 * I)) & 0xff);
}

/// Rewrites the container checksum to match a (tampered) payload, so the
/// tamper reaches the structural checks.
std::string refreshChecksum(std::string File) {
  putLeU64(File, 8, fnv1a(File.substr(16)));
  return File;
}

/// A saved multi-record store plus its bytes, shared by the negative tests.
std::string savedStoreBytes(const std::string &Path) {
  TriageStore Store;
  Store.mergeRun(runWith({{10, 5}, {20, 2}}));
  Store.mergeRun(runWith({{10, 1}, {30, 9}}));
  Store.suppress(sigOfVar(40));
  std::string Err;
  EXPECT_TRUE(Store.save(Path, &Err)) << Err;
  return readFileBytes(Path);
}

/// Expects load() to reject \p Bytes and to leave preexisting content
/// untouched.
void expectRejected(const std::string &Path, const std::string &Bytes,
                    const char *Why) {
  ASSERT_TRUE(api::writeFile(Path, Bytes));
  TriageStore Probe;
  Probe.mergeRun(runWith({{99, 1}}));
  std::string Err;
  EXPECT_FALSE(Probe.load(Path, &Err)) << Why;
  EXPECT_FALSE(Err.empty()) << Why;
  // A failed load is atomic: the store still holds what it held.
  EXPECT_EQ(Probe.runCount(), 1u) << Why;
  EXPECT_NE(Probe.find(sigOfVar(99)), nullptr) << Why;
}

} // namespace

TEST(TriageStore, LoadRejectsByteChoppedStores) {
  std::string Path = tmpPath("chopped");
  std::string Bytes = savedStoreBytes(Path);
  ASSERT_GT(Bytes.size(), 16u);
  // Every proper prefix — header cuts, mid-record cuts, missing trailing
  // records — must be rejected, never silently parsed into garbage.
  for (size_t Len = 0; Len < Bytes.size(); ++Len)
    expectRejected(Path, Bytes.substr(0, Len),
                   ("chopped to " + std::to_string(Len)).c_str());
  std::remove(Path.c_str());
}

TEST(TriageStore, LoadRejectsBitFlippedStores) {
  std::string Path = tmpPath("bitflip");
  std::string Bytes = savedStoreBytes(Path);
  // One flipped bit per byte, rotating through bit positions so sign bits,
  // low bits and flag bytes all get hit: magic flips fail the magic check,
  // header flips the version/checksum checks, payload flips the checksum.
  for (size_t I = 0; I < Bytes.size(); ++I) {
    std::string Bad = Bytes;
    Bad[I] = static_cast<char>(Bad[I] ^ (1u << (I % 8)));
    expectRejected(Path, Bad, ("bit flip in byte " + std::to_string(I)).c_str());
  }
  std::remove(Path.c_str());
}

TEST(TriageStore, LoadRejectsWrongVersionsAndCraftedCorruption) {
  std::string Path = tmpPath("crafted");
  std::string Bytes = savedStoreBytes(Path);
  std::string Err;
  TriageStore Probe;

  // A version-1-era store (no checksum field) reports the version, not a
  // parse explosion.
  {
    std::string V1 = Bytes;
    putLeU32(V1, 4, 1);
    ASSERT_TRUE(api::writeFile(Path, V1));
    EXPECT_FALSE(Probe.load(Path, &Err));
    EXPECT_NE(Err.find("unsupported store format version 1"),
              std::string::npos)
        << Err;
  }

  // Trailing garbage with a *matching* checksum still fails: the record
  // count bounds the payload exactly.
  {
    std::string Padded = refreshChecksum(Bytes + std::string(1, '\0'));
    ASSERT_TRUE(api::writeFile(Path, Padded));
    EXPECT_FALSE(Probe.load(Path, &Err));
    EXPECT_NE(Err.find("trailing garbage"), std::string::npos) << Err;
  }

  // Payload layout: 16-byte container header, then a 16-byte payload
  // header (sigver u32, runs u32, count u64), then 51-byte records
  // starting with the u64 signature.
  const size_t Rec0 = 16 + 16, RecSize = 51;

  // Two records with the same signature (a merge invariant violation).
  {
    std::string Dup = Bytes;
    uint64_t Sig0 = sigOfVar(10);
    putLeU64(Dup, Rec0 + RecSize, Sig0); // Record 1's signature := record 0's.
    ASSERT_TRUE(api::writeFile(Path, refreshChecksum(Dup)));
    EXPECT_FALSE(Probe.load(Path, &Err));
    EXPECT_NE(Err.find("duplicate signature"), std::string::npos) << Err;
  }

  // A sighting window beyond the store's run counter.
  {
    std::string Late = Bytes;
    putLeU32(Late, Rec0 + 24, 7); // LastSeenRun := 7 > RunCounter (2).
    ASSERT_TRUE(api::writeFile(Path, refreshChecksum(Late)));
    EXPECT_FALSE(Probe.load(Path, &Err));
    EXPECT_NE(Err.find("sighting runs out of range"), std::string::npos)
        << Err;
  }
  std::remove(Path.c_str());
}

TEST(TriageStore, SuppressionsSilenceNewRaces) {
  TriageStore Store;
  Store.suppress(sigOfVar(10)); // Suppression predating first occurrence.

  TriageStore::MergeResult R = Store.mergeRun(runWith({{10, 5}, {20, 1}}));
  EXPECT_EQ(R.SuppressedSignatures, 1u);
  EXPECT_EQ(R.NewSignatures, 1u);
  ASSERT_EQ(R.NewRaces.size(), 1u);
  EXPECT_EQ(R.NewRaces[0].Signature, sigOfVar(20));

  // Suppression files: hex lines, comments, blanks; bad lines fail.
  std::string Path = tmpPath("supp");
  ASSERT_TRUE(api::writeFile(
      Path, "# suppressions\n\n  " + RaceSignature{sigOfVar(30)}.hex() +
                "  # trailing comment\n"));
  std::string Err;
  ASSERT_TRUE(Store.loadSuppressionFile(Path, &Err)) << Err;
  EXPECT_TRUE(Store.isSuppressed(sigOfVar(30)));
  ASSERT_TRUE(api::writeFile(Path, "zz-not-hex\n"));
  EXPECT_FALSE(Store.loadSuppressionFile(Path, &Err));
  EXPECT_NE(Err.find("not a hex race signature"), std::string::npos);
  std::remove(Path.c_str());
}

TEST(TriageStore, RankingIsByHitsThenSignatureWithSuppressedLast) {
  TriageStore Store;
  Store.mergeRun(runWith({{10, 5}, {20, 9}, {30, 9}, {40, 1}}));
  Store.suppress(sigOfVar(20));

  std::vector<const TriageStore::Record *> All = Store.ranked();
  ASSERT_EQ(All.size(), 4u);
  EXPECT_EQ(All[0]->Signature, sigOfVar(30)); // 9 hits, unsuppressed.
  EXPECT_EQ(All[1]->Signature, sigOfVar(10)); // 5 hits.
  EXPECT_EQ(All[2]->Signature, sigOfVar(40)); // 1 hit.
  EXPECT_TRUE(All[3]->Suppressed);

  EXPECT_EQ(Store.ranked(2).size(), 2u);
}

//===----------------------------------------------------------------------===//
// Exporters
//===----------------------------------------------------------------------===//

TEST(Exporters, TextJsonAndSarifCarryTheWarehouse) {
  TriageStore Store;
  Store.mergeRun(runWith({{10, 5}, {20, 2}}));
  Store.suppress(sigOfVar(20));

  std::string Text = toText(Store, 10);
  EXPECT_NE(Text.find("2 distinct signature(s)"), std::string::npos);
  EXPECT_NE(Text.find(RaceSignature{sigOfVar(10)}.hex()), std::string::npos);
  EXPECT_NE(Text.find("suppressed"), std::string::npos);

  std::string Json = triage::toJson(Store);
  EXPECT_NE(Json.find("\"distinctSignatures\": 2"), std::string::npos);
  EXPECT_NE(Json.find("\"suppressed\": true"), std::string::npos);
  EXPECT_NE(Json.find("\"status\": \"new\""), std::string::npos);
  EXPECT_NE(Json.find("\"hits\": 5"), std::string::npos);

  // Cross-run statuses surface in the ranked text: a regressed signature
  // prints "regressed", one absent from the latest run prints "quiet".
  TriageStore Runs;
  Runs.mergeRun(runWith({{10, 1}, {20, 1}}));
  Runs.mergeRun(runWith({{10, 1}}));
  Runs.mergeRun(runWith({{20, 1}}));
  std::string RunsText = toText(Runs, 10);
  EXPECT_NE(RunsText.find("regressed"), std::string::npos); // var 20.
  EXPECT_NE(RunsText.find("quiet"), std::string::npos);     // var 10.

  std::string Sarif = toSarif(Store);
  EXPECT_NE(Sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(Sarif.find("sarif-schema-2.1.0.json"), std::string::npos);
  EXPECT_NE(Sarif.find("sampletrack/data-race"), std::string::npos);
  EXPECT_NE(Sarif.find("\"raceSignature/v1\": \"" +
                       RaceSignature{sigOfVar(10)}.hex() + "\""),
            std::string::npos);
  // Suppressed records stay out of SARIF results.
  EXPECT_EQ(Sarif.find(RaceSignature{sigOfVar(20)}.hex()),
            std::string::npos);
  EXPECT_NE(Sarif.find("\"fullyQualifiedName\": \"var:10\""),
            std::string::npos);
}

TEST(Exporters, GoldenSarifDocumentIsPinned) {
  // One warehouse, rendered to one byte-exact SARIF 2.1.0 document: any
  // exporter change — schema fields, fingerprint key, message wording,
  // whitespace — shows up as a golden diff here instead of a surprise in a
  // consumer's code-scanning UI. The suppressed var-20 record must stay out
  // of the results.
  TriageStore Store;
  Store.mergeRun(runWith({{10, 5}, {20, 2}}));
  Store.suppress(sigOfVar(20));

  const char *Expected = R"sarif({
  "$schema": "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
  "version": "2.1.0",
  "runs": [
    {
      "tool": {
        "driver": {
          "name": "SampleTrack",
          "version": "1.2.3",
          "rules": [
            {
              "id": "sampletrack/data-race",
              "name": "DataRace",
              "shortDescription": {"text": "Data race detected by sampling-based happens-before analysis"}
            }
          ]
        }
      },
      "results": [
        {
          "ruleId": "sampletrack/data-race",
          "level": "warning",
          "message": {"text": "write race on V10 by worker thread: 5 declaration(s) across 1 run(s)"},
          "partialFingerprints": {"raceSignature/v1": "4b621cf676431f58"},
          "locations": [
            {"logicalLocations": [{"fullyQualifiedName": "var:10", "kind": "variable"}]}
          ],
          "properties": {"hits": 5, "runs": 1, "firstSeenRun": 1, "lastSeenRun": 1, "threadRole": "worker", "op": "w"}
        }
      ]
    }
  ]
}
)sarif";
  EXPECT_EQ(toSarif(Store, "1.2.3"), Expected);
  // The pinned fingerprint is the real signature, not a frozen accident.
  EXPECT_EQ(RaceSignature{sigOfVar(10)}.hex(), "4b621cf676431f58");
}

//===----------------------------------------------------------------------===//
// Session + runtime integration
//===----------------------------------------------------------------------===//

namespace {

/// A deterministic racy trace shared by the integration tests.
Trace racyTrace(uint64_t Seed) {
  GenConfig C;
  C.NumThreads = 4;
  C.NumLocks = 3;
  C.NumVars = 32;
  C.NumEvents = 2000;
  C.UnprotectedFraction = 0.1;
  C.RacyVars = 4;
  C.Seed = Seed;
  return generateWorkload(C);
}

} // namespace

TEST(TriageSession, SessionSummaryMergesLanesAndFeedsTheStoreWorkflow) {
  Trace T = racyTrace(3);

  api::SessionConfig Cfg;
  Cfg.Engines = {EngineKind::FastTrack, EngineKind::SamplingO};
  Cfg.Sampling = api::SamplerKind::Always;
  Cfg.TriageStorePath = tmpPath("workflow");
  api::SessionResult R1 = api::AnalysisSession(Cfg).run(T);
  ASSERT_GT(R1.Triage.distinct(), 0u);

  // The merged summary covers both lanes: each lane's distinct set is a
  // subset, and hits accumulate across lanes.
  uint64_t LaneDeclared = 0;
  for (const api::EngineRun &E : R1.Engines) {
    EXPECT_LE(E.DistinctRaces, R1.Triage.distinct());
    LaneDeclared += E.NumRaces;
  }
  EXPECT_EQ(R1.Triage.RacesDeclared, LaneDeclared);

  // Day 1: everything is new; the store persists.
  api::TriageOutcome Day1;
  std::string Err;
  ASSERT_TRUE(api::runTriage(Cfg, R1, Day1, &Err)) << Err;
  EXPECT_EQ(Day1.Merge.NewSignatures, R1.Triage.distinct());

  // Day 2: the same deployment re-analyzed — zero new races.
  api::SessionResult R2 = api::AnalysisSession(Cfg).run(T);
  api::TriageOutcome Day2;
  ASSERT_TRUE(api::runTriage(Cfg, R2, Day2, &Err)) << Err;
  EXPECT_EQ(Day2.Merge.NewSignatures, 0u);
  EXPECT_EQ(Day2.Merge.KnownSignatures, R1.Triage.distinct());
  EXPECT_EQ(Day2.Store.runCount(), 2u);

  // Day 3: one injected racy pair on a fresh location — exactly one new.
  Trace Patched = T;
  Patched.write(1, 1000, /*Marked=*/true);
  Patched.write(2, 1000, /*Marked=*/true);
  api::SessionResult R3 = api::AnalysisSession(Cfg).run(Patched);
  api::TriageOutcome Day3;
  ASSERT_TRUE(api::runTriage(Cfg, R3, Day3, &Err)) << Err;
  EXPECT_EQ(Day3.Merge.NewSignatures, 1u);

  std::remove(Cfg.TriageStorePath.c_str());
}

TEST(TriageSession, SarifExportOfASessionResult) {
  Trace T = racyTrace(5);
  api::SessionConfig Cfg;
  Cfg.Engines = {EngineKind::FastTrack};
  Cfg.Sampling = api::SamplerKind::Always;
  api::SessionResult R = api::AnalysisSession(Cfg).run(T);
  ASSERT_GT(R.Triage.distinct(), 0u);

  std::string Sarif = api::toSarif(R);
  EXPECT_NE(Sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(Sarif.find(
                RaceSignature{R.Triage.Entries[0].Signature}.hex()),
            std::string::npos);
}

TEST(TriageRuntime, OnlineShardsMergeIntoOneSummary) {
  // Drive the online runtime single-threadedly (deterministic) with races
  // from two registered threads on a shared address.
  rt::Config C;
  C.AnalysisMode = rt::Mode::FT;
  C.MaxThreads = 8;
  rt::Runtime Rt(C);
  ThreadId T1 = Rt.registerThread();
  ThreadId T2 = Rt.registerThread();
  for (int I = 0; I < 50; ++I) {
    Rt.onWrite(T1, 0x1000);
    Rt.onWrite(T2, 0x1000);
  }
  ASSERT_GT(Rt.raceCount(), 0u);

  TriageSummary S = Rt.triageSummary();
  EXPECT_EQ(S.RacesDeclared, Rt.raceCount());
  EXPECT_EQ(S.distinct(), Rt.distinctRaceCount());
  // Both threads are workers writing the same cell: one signature.
  EXPECT_EQ(S.distinct(), 1u);
  EXPECT_FALSE(S.Capped);
}
