//===- tests/ClientDeadlineTest.cpp - Client I/O deadline tests ------------=//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
//===----------------------------------------------------------------------===//
//
// The triaged::Client must never park a CI shard on a stalled peer. Each
// test here stands up a deliberately hostile fake server — accepts and
// never answers, answers half a header and stalls, or never accepts at all
// — and asserts the round-trip fails in bounded time with a "timed out"
// transport error. Before the poll()-based deadlines these scenarios hung
// the old recv-until-EOF loop forever.
//
//===----------------------------------------------------------------------===//

#include "sampletrack/triaged/Client.h"

#include "gtest/gtest.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

using namespace sampletrack;
using Clock = std::chrono::steady_clock;

namespace {

/// A loopback listener whose accept loop is scripted per test: it reads
/// the request (so the client's send completes) and then either stalls
/// silently or dribbles a partial response before stalling. close() both
/// unblocks the accept loop and ends every open conversation.
class StallingServer {
public:
  enum class Script {
    AcceptThenStall,    // Read the request, never write a byte.
    PartialHeaderStall, // Write half a status line, then go silent.
  };

  explicit StallingServer(Script S) : S(S) {
    ListenFd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    EXPECT_GE(ListenFd, 0) << std::strerror(errno);
    int One = 1;
    ::setsockopt(ListenFd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    Addr.sin_port = 0; // Ephemeral.
    EXPECT_EQ(::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
                     sizeof(Addr)),
              0)
        << std::strerror(errno);
    socklen_t Len = sizeof(Addr);
    EXPECT_EQ(::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
                            &Len),
              0);
    BoundPort = ntohs(Addr.sin_port);
    EXPECT_EQ(::listen(ListenFd, 8), 0);
    Acceptor = std::thread([this] { run(); });
  }

  ~StallingServer() { close(); }

  uint16_t port() const { return BoundPort; }

  void close() {
    if (Closing.exchange(true))
      return;
    ::shutdown(ListenFd, SHUT_RDWR);
    ::close(ListenFd);
    if (Acceptor.joinable())
      Acceptor.join();
    for (int Fd : Conns)
      ::close(Fd);
    Conns.clear();
  }

private:
  void run() {
    while (!Closing.load()) {
      int Fd = ::accept(ListenFd, nullptr, nullptr);
      if (Fd < 0)
        return; // close() shut the listener down.
      // Drain whatever request arrives so the client's send phase
      // succeeds and it is squarely inside the receive phase when we
      // stall.
      char Buf[4096];
      ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
      (void)N;
      if (S == Script::PartialHeaderStall) {
        const char Half[] = "HTTP/1.1 20"; // Mid-status-code, no CRLF.
        (void)!::send(Fd, Half, sizeof(Half) - 1, MSG_NOSIGNAL);
      }
      Conns.push_back(Fd); // Keep open: the stall, not a RST.
    }
  }

  Script S;
  int ListenFd = -1;
  uint16_t BoundPort = 0;
  std::thread Acceptor;
  std::vector<int> Conns;
  std::atomic<bool> Closing{false};
};

/// Asserts one GET against \p Port fails within [a few ms, \p BoundMillis]
/// and that the error names a timeout.
void expectBoundedTimeout(uint16_t Port, uint64_t RecvTimeoutMillis,
                          uint64_t BoundMillis) {
  triaged::Client C("127.0.0.1", Port);
  C.Config.RecvTimeoutMillis = RecvTimeoutMillis;
  C.Config.ConnectTimeoutMillis = BoundMillis;
  C.Config.SendTimeoutMillis = BoundMillis;
  triaged::Client::Response R;
  std::string Err;
  Clock::time_point T0 = Clock::now();
  bool Ok = C.get("/v1/stats", R, &Err);
  auto Ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                Clock::now() - T0)
                .count();
  EXPECT_FALSE(Ok) << "a silent server must be a transport failure";
  EXPECT_NE(Err.find("timed out"), std::string::npos) << Err;
  // Generous upper bound: the deadline plus scheduler slack, far below
  // the forever the pre-deadline client would have taken.
  EXPECT_LT(Ms, static_cast<long long>(BoundMillis))
      << "round-trip did not respect the receive deadline: " << Err;
}

TEST(ClientDeadlineTest, RecvDeadlineOnSilentServer) {
  StallingServer Srv(StallingServer::Script::AcceptThenStall);
  expectBoundedTimeout(Srv.port(), /*RecvTimeoutMillis=*/100,
                       /*BoundMillis=*/5000);
}

TEST(ClientDeadlineTest, RecvDeadlineCoversPartialHeaderDrip) {
  // A peer that sends *some* bytes then stalls must hit the same overall
  // deadline — the budget is per response, not per recv.
  StallingServer Srv(StallingServer::Script::PartialHeaderStall);
  expectBoundedTimeout(Srv.port(), /*RecvTimeoutMillis=*/100,
                       /*BoundMillis=*/5000);
}

TEST(ClientDeadlineTest, UploadRetriesStillBounded) {
  // The retry loop multiplies the per-attempt deadline; with short
  // timeouts and two attempts the whole upload must still fail fast and
  // carry the timeout in its final error.
  StallingServer Srv(StallingServer::Script::AcceptThenStall);
  triaged::Client C("127.0.0.1", Srv.port());
  C.Config.RecvTimeoutMillis = 80;
  C.Retry.MaxAttempts = 2;
  C.Retry.BaseDelayMillis = 10;
  C.Retry.MaxDelayMillis = 20;
  C.Retry.JitterSeed = 7;
  Trace T;
  triaged::UploadOutcome Up;
  std::string Err;
  Clock::time_point T0 = Clock::now();
  EXPECT_FALSE(C.uploadTrace(T, Up, &Err));
  auto Ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                Clock::now() - T0)
                .count();
  EXPECT_NE(Err.find("timed out"), std::string::npos) << Err;
  EXPECT_LT(Ms, 5000) << Err;
}

TEST(ClientDeadlineTest, StatusParseRejectsGarbage) {
  // A "server" that answers a non-numeric status code: the bounds-checked
  // parse must report a malformed status, not atoi it to 0.
  int ListenFd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(ListenFd, 0);
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
                   sizeof(Addr)),
            0);
  socklen_t Len = sizeof(Addr);
  ASSERT_EQ(
      ::getsockname(ListenFd, reinterpret_cast<sockaddr *>(&Addr), &Len), 0);
  ASSERT_EQ(::listen(ListenFd, 1), 0);
  std::thread Server([ListenFd] {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      return;
    char Buf[4096];
    (void)!::recv(Fd, Buf, sizeof(Buf), 0);
    const char Bad[] = "HTTP/1.1 XYZ Nope\r\nContent-Length: 0\r\n\r\n";
    (void)!::send(Fd, Bad, sizeof(Bad) - 1, MSG_NOSIGNAL);
    ::close(Fd);
  });
  triaged::Client C("127.0.0.1", ntohs(Addr.sin_port));
  C.Config.RecvTimeoutMillis = 2000;
  triaged::Client::Response R;
  std::string Err;
  EXPECT_FALSE(C.get("/v1/stats", R, &Err));
  EXPECT_NE(Err.find("status"), std::string::npos) << Err;
  Server.join();
  ::close(ListenFd);
}

} // namespace
