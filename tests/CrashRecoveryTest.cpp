//===- tests/CrashRecoveryTest.cpp - Crash-point schedule sweeps -----------==//
//
// Part of the SampleTrack project.
// SPDX-License-Identifier: Apache-2.0
//
// The crash-only contract, proven by exhaustion: an ingest sequence
// (including forced compactions) is driven once per *failpoint* — every
// fallible filesystem operation index gets its turn to die — then the
// machine "loses power" (keeping 0, 1, 7, or all bytes of unsynced
// appends), and a fresh TriageLog reopens the directory. Every schedule
// must recover to an exact, byte-identical prefix of the run sequence
// containing at least every acknowledged run, and keep ingesting. The
// same sweep covers legacy-file migration and the Wire summary writer's
// short-write loops.
//
// Carries the "crash" CTest label. Env knobs for the nightly deep loop:
//
//   SAMPLETRACK_FAULT_ROUNDS  randomized schedules in the Randomized test
//                             (default 25; nightly CI goes to thousands)
//   SAMPLETRACK_FAULT_SEED    seed for those schedules (default: random;
//                             always printed so any failure replays)
//
//===----------------------------------------------------------------------===//

#include "sampletrack/support/FaultInjectionFs.h"
#include "sampletrack/support/Rng.h"
#include "sampletrack/triage/RaceSink.h"
#include "sampletrack/triage/TriageLog.h"
#include "sampletrack/triage/TriageStore.h"
#include "sampletrack/triaged/Wire.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>

using namespace sampletrack;
using namespace sampletrack::triage;
using support::FaultInjectionFs;

namespace {

TriageSummary runWith(
    std::initializer_list<std::pair<VarId, uint64_t>> VarHits) {
  RaceSink Sink;
  uint64_t Pos = 0;
  for (auto [Var, N] : VarHits)
    for (uint64_t I = 0; I < N; ++I)
      Sink.insert(RaceReport{Pos++, 1, Var, OpKind::Write});
  return Sink.summary();
}

/// The canonical ingest sequence: overlapping signature (var 7) with a
/// gap, so New/Known/Regressed all occur and a wrong replay can't hide.
std::vector<TriageSummary> ingestSequence(size_t R) {
  std::vector<TriageSummary> Runs;
  for (size_t I = 0; I < R; ++I) {
    if (I % 3 == 2)
      Runs.push_back(runWith({{200, 1}}));
    else
      Runs.push_back(runWith({{static_cast<VarId>(100 + I * 10),
                               static_cast<uint64_t>(I) + 1},
                              {7, 2}}));
  }
  return Runs;
}

/// Reference stores after merging each prefix of \p Runs.
std::vector<TriageStore> prefixStores(const std::vector<TriageSummary> &R) {
  std::vector<TriageStore> P(R.size() + 1);
  for (size_t I = 0; I < R.size(); ++I) {
    P[I + 1] = P[I];
    P[I + 1].mergeRun(R[I]);
  }
  return P;
}

/// Aggressive compaction so the failpoint space covers the generation
/// swap, not just appends.
TriageLog::Options aggressiveOpts(FaultInjectionFs &Fs) {
  TriageLog::Options O;
  O.Fs = &Fs;
  O.CompactionRatio = 0.25;
  O.MinCompactionBytes = 1;
  return O;
}

/// Drives the full ingest sequence against \p Fs, compacting whenever the
/// ratio says so (the server's behavior, inlined). Failures anywhere are
/// tolerated — that is the point. Returns how many runs were acknowledged
/// (appendRun returned true; everything acked was fsynced).
uint32_t driveIngest(FaultInjectionFs &Fs,
                     const std::vector<TriageSummary> &Runs) {
  TriageLog L;
  if (!L.open("store", aggressiveOpts(Fs)))
    return 0;
  uint32_t Acked = 0;
  TriageStore::MergeResult M;
  for (size_t I = 0; I < Runs.size(); ++I) {
    if (L.appendRun(Runs[I], "run-" + std::to_string(I), 0, M))
      ++Acked;
    if (L.needsCompaction())
      L.compact(); // May fail under faults; ingest carries on.
  }
  return Acked;
}

/// The invariant every crash schedule must satisfy: reopening after the
/// power cut yields exactly a prefix of the run sequence, at least
/// \p Acked runs long, byte-identical to a sequential reference merge —
/// and the healed log accepts the next run.
void expectCleanPrefix(FaultInjectionFs &Fs,
                       const std::vector<TriageSummary> &Runs,
                       const std::vector<TriageStore> &Prefixes,
                       uint32_t Acked) {
  std::string Err;
  TriageLog L;
  ASSERT_TRUE(L.open("store", aggressiveOpts(Fs), &Err))
      << "recovery failed: " << Err;
  uint32_t Count = L.store().runCount();
  ASSERT_GE(Count, Acked) << "an acknowledged (fsynced) run was lost";
  ASSERT_LE(Count, Runs.size());
  ASSERT_TRUE(L.store() == Prefixes[Count])
      << "recovered store is not the " << Count << "-run prefix";
  ASSERT_EQ(L.store().serialize(), Prefixes[Count].serialize());

  TriageStore::MergeResult M;
  ASSERT_TRUE(L.appendRun(Runs[0], "post-crash", 0, M, &Err))
      << "healed log refused to ingest: " << Err;
}

uint64_t envU64(const char *Name, uint64_t Default) {
  const char *V = std::getenv(Name);
  if (!V || !*V)
    return Default;
  return std::strtoull(V, nullptr, 10);
}

} // namespace

TEST(CrashRecovery, EveryFailpointOfTheIngestSequenceRecoversToAPrefix) {
  std::vector<TriageSummary> Runs = ingestSequence(6);
  std::vector<TriageStore> Prefixes = prefixStores(Runs);

  // Clean run: measure the failpoint space and pin full success.
  uint64_t Total;
  {
    FaultInjectionFs Fs;
    ASSERT_EQ(driveIngest(Fs, Runs), Runs.size());
    Total = Fs.opCount();
    Fs.powerCut();
    expectCleanPrefix(Fs, Runs, Prefixes, Runs.size());
  }
  ASSERT_GT(Total, 20u) << "suspiciously few fallible operations";

  // Every operation index dies once; a real power cut may keep any prefix
  // of unsynced appends, so sweep representative keep amounts too.
  const size_t Keeps[] = {0, 1, 7, static_cast<size_t>(-1)};
  for (uint64_t N = 1; N <= Total; ++N) {
    for (size_t Keep : Keeps) {
      SCOPED_TRACE("failpoint " + std::to_string(N) + ", keep " +
                   std::to_string(Keep));
      FaultInjectionFs Fs;
      FaultInjectionFs::FaultConfig C;
      C.FailAtOp = N;
      C.TornWriteBytes = N % 5; // Failing writes leave varied torn tails.
      Fs.setFaults(C);
      uint32_t Acked = driveIngest(Fs, Runs);
      EXPECT_TRUE(Fs.faultFired());

      Fs.clearFaults(); // The next process boots on a healthy disk...
      Fs.powerCut(Keep); // ...after the machine lost power.
      expectCleanPrefix(Fs, Runs, Prefixes, Acked);
    }
  }
}

TEST(CrashRecovery, EveryFailpointOfALegacyMigrationPreservesTheStore) {
  std::vector<TriageSummary> Runs = ingestSequence(4);
  TriageStore Legacy;
  for (const TriageSummary &S : Runs)
    Legacy.mergeRun(S);

  // Clean migration: measure its op count.
  uint64_t Base, Total;
  {
    FaultInjectionFs Fs;
    std::string Err;
    ASSERT_TRUE(Legacy.save(Fs, "store", &Err)) << Err;
    Base = Fs.opCount();
    TriageLog L;
    ASSERT_TRUE(L.open("store", aggressiveOpts(Fs), &Err)) << Err;
    ASSERT_TRUE(L.store() == Legacy);
    Total = Fs.opCount() - Base;
  }

  for (uint64_t N = 1; N <= Total; ++N) {
    SCOPED_TRACE("migration failpoint " + std::to_string(N));
    FaultInjectionFs Fs;
    std::string Err;
    ASSERT_TRUE(Legacy.save(Fs, "store", &Err)) << Err;
    FaultInjectionFs::FaultConfig C;
    C.FailAtOp = Fs.opCount() + N;
    Fs.setFaults(C);
    {
      TriageLog L;
      L.open("store", aggressiveOpts(Fs)); // Allowed to fail.
    }
    Fs.clearFaults();
    Fs.powerCut();

    // However far the migration got, no run may be lost: reopening either
    // finds the legacy file (and migrates now) or the migrated directory.
    TriageLog Back;
    ASSERT_TRUE(Back.open("store", aggressiveOpts(Fs), &Err))
        << "migration crash at op " << N << " bricked the store: " << Err;
    ASSERT_TRUE(Back.store() == Legacy);
  }
}

TEST(CrashRecovery, SummaryWriterSurvivesShortWritesAndFailpoints) {
  // The Wire summary writer through the same lens: short-write schedules
  // (every write capped, so writeAll's loop actually loops) must still
  // produce a byte-perfect file, and any failpoint must leave either the
  // complete file or nothing — never a readable partial.
  TriageSummary S = runWith({{10, 5}, {20, 2}, {7, 1}});

  for (size_t Cap : {1u, 3u, 7u}) {
    FaultInjectionFs Fs;
    FaultInjectionFs::FaultConfig C;
    C.MaxWriteBytes = Cap;
    Fs.setFaults(C);
    std::string Err;
    ASSERT_TRUE(triaged::writeSummaryFile(Fs, "s.sum", S, &Err))
        << "cap " << Cap << ": " << Err;
    TriageSummary Back;
    ASSERT_TRUE(triaged::readSummaryFile(Fs, "s.sum", Back, &Err)) << Err;
    EXPECT_TRUE(Back == S) << "short-write schedule corrupted the summary";
  }

  uint64_t Total;
  {
    FaultInjectionFs Fs;
    ASSERT_TRUE(triaged::writeSummaryFile(Fs, "s.sum", S));
    Total = Fs.opCount();
  }
  for (uint64_t N = 1; N <= Total; ++N) {
    SCOPED_TRACE("failpoint " + std::to_string(N));
    FaultInjectionFs Fs;
    FaultInjectionFs::FaultConfig C;
    C.FailAtOp = N;
    C.TornWriteBytes = N % 3;
    Fs.setFaults(C);
    EXPECT_FALSE(triaged::writeSummaryFile(Fs, "s.sum", S));
    Fs.clearFaults();
    Fs.powerCut();
    TriageSummary Back;
    if (triaged::readSummaryFile(Fs, "s.sum", Back)) {
      EXPECT_TRUE(Back == S) << "a partial summary file decoded";
    }
  }
}

TEST(CrashRecovery, RandomizedSchedulesDeep) {
  // The nightly loop: randomized failpoints, torn/short writes, and keep
  // amounts over randomized run counts. The seed is always printed so a
  // red nightly replays locally with SAMPLETRACK_FAULT_SEED.
  uint64_t Rounds = envU64("SAMPLETRACK_FAULT_ROUNDS", 25);
  uint64_t Seed = envU64("SAMPLETRACK_FAULT_SEED", 0);
  if (Seed == 0)
    Seed = (static_cast<uint64_t>(std::random_device{}()) << 32) ^
           std::random_device{}();
  std::cout << "SAMPLETRACK_FAULT_SEED=" << Seed
            << " SAMPLETRACK_FAULT_ROUNDS=" << Rounds << "\n";
  SplitMix64 G(Seed);

  for (uint64_t Round = 0; Round < Rounds; ++Round) {
    SCOPED_TRACE("round " + std::to_string(Round) + " (SAMPLETRACK_FAULT_SEED=" +
                 std::to_string(Seed) + ")");
    std::vector<TriageSummary> Runs =
        ingestSequence(3 + G.nextBelow(6));
    std::vector<TriageStore> Prefixes = prefixStores(Runs);

    FaultInjectionFs Fs;
    FaultInjectionFs::FaultConfig C;
    C.FailAtOp = 1 + G.nextBelow(120);
    C.StayDown = G.nextBelow(4) != 0; // Mostly dead disks, some blips.
    C.TornWriteBytes = G.nextBelow(24);
    if (G.nextBelow(3) == 0)
      C.MaxWriteBytes = 1 + G.nextBelow(16);
    Fs.setFaults(C);
    uint32_t Acked = driveIngest(Fs, Runs);

    Fs.clearFaults();
    size_t Keep = G.nextBelow(4) == 0 ? static_cast<size_t>(-1)
                                      : G.nextBelow(32);
    Fs.powerCut(Keep);
    expectCleanPrefix(Fs, Runs, Prefixes, Acked);
  }
}
